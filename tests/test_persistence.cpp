// Crash-safe plan persistence tests (core/plan_serde.h, core/plan_store.h,
// docs/persistence.md).
//
// Four layers:
//  * serde round-trip — serialize/deserialize/re-serialize is byte-
//    identical on every execution path, with equal bytes() accounting and
//    a clean verifier report on the loaded plan;
//  * corruption corpus — six mutation classes (payload bit-flip,
//    truncation, section-id swap, section-offset lie, section-length lie,
//    checksum lie) against EVERY section of the file, plus header lies,
//    a truncation sweep, stale-version/ABI tags, and garbage files: each
//    must be rejected with a structured kCorruptPlanFile /
//    kStalePlanVersion Status — never a crash (this file runs under
//    ASan/UBSan in CI);
//  * PlanStore mechanics — crash-safe save, key cross-check, discard,
//    write-behind flush, stats counters, and the three injected fault
//    sites (store-write, store-read, store-checksum);
//  * facade restart warm-start — a fresh SymbolicContext pointed at the
//    store loads the persisted plan (no replanning transpose), factors
//    bit-identically to the cold plan, and a corrupted file takes rung 5:
//    discard + replan + rewrite, recorded in the FactorReport.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "api/solver.h"
#include "core/inspector.h"
#include "core/pattern_key.h"
#include "core/plan_serde.h"
#include "core/plan_store.h"
#include "core/planner.h"
#include "core/workspace.h"
#include "gen/generators.h"
#include "parallel/schedule.h"
#include "util/crc32c.h"
#include "util/fault.h"
#include "util/status.h"
#include "verify/verify.h"

#ifdef SYMPILER_HAS_OPENMP
#include <omp.h>
#endif

namespace sympiler {
namespace {

using core::CholeskyPlan;
using core::ExecutionPath;
using core::PatternKey;
using core::Planner;
using core::PlannerConfig;
using core::PlanStore;
using core::TriSolvePlan;
using util::FaultInjector;
using util::FaultSite;

struct FaultGuard {
  FaultGuard() { FaultInjector::reset(); }
  ~FaultGuard() { FaultInjector::reset(); }
};

/// Unique on-disk store directory, removed on scope exit.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/sympiler-store-XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "/tmp/sympiler-store-fallback";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

void expect_bits_equal(const std::vector<value_t>& got,
                       const std::vector<value_t>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << "first bit difference at index " << i;
}

// ------------------------------------------------------------ plan builders

PlannerConfig sequential_config(double vs_gate) {
  PlannerConfig cfg;
  cfg.options.vsblock_min_avg_size = vs_gate;
  cfg.options.vsblock_min_avg_width = vs_gate > 0.0 ? vs_gate : 0.0;
  cfg.options.verify_plan = false;
  cfg.enable_parallel = false;
  return cfg;
}

CholeskyPlan simplicial_plan(const CscMatrix& a) {
  return Planner(sequential_config(1e9)).plan_cholesky(a);
}

CholeskyPlan supernodal_plan(const CscMatrix& a) {
  return Planner(sequential_config(0.0)).plan_cholesky(a);
}

/// Manually assembled coarsened parallel plan (the schedule builders are
/// pure pattern functions, so this path serializes in every build): every
/// section of the file format is non-trivial here.
CholeskyPlan coarsened_cholesky_plan(const CscMatrix& a) {
  core::SympilerOptions opt;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;
  CholeskyPlan plan;
  plan.key = core::cholesky_pattern_key(a, opt);
  plan.options = opt;
  plan.sets = core::inspect_cholesky(a, opt);
  plan.schedule = parallel::level_schedule_supernodes(plan.sets.blocks,
                                                      plan.sets.sym.parent);
  plan.solve_update_map = parallel::update_slots_supernodes(plan.sets.layout);
  plan.workspace = core::cholesky_workspace_dims(plan.sets.layout);
  plan.workspace.need_dense = false;
  plan.workspace.update_slots = plan.solve_update_map.slots();
  plan.path = ExecutionPath::ParallelSupernodal;
  std::vector<index_t> dep_src(plan.sets.updates.refs.size());
  for (std::size_t u = 0; u < dep_src.size(); ++u)
    dep_src[u] = plan.sets.updates.refs[u].d;
  plan.agg = parallel::coarsen_schedule_supernodes(
      plan.sets.blocks, plan.sets.sym.parent, plan.sets.updates.ptr, dep_src,
      plan.schedule);
  return plan;
}

TriSolvePlan coarsened_trisolve_plan(const CscMatrix& l,
                                     std::span<const index_t> beta) {
  core::SympilerOptions opt;
  opt.vsblock_min_avg_size = 1e9;
  opt.vsblock_min_avg_width = 1e9;
  TriSolvePlan plan;
  plan.key = core::trisolve_pattern_key(l, beta, opt);
  plan.options = opt;
  plan.sets = core::inspect_trisolve(l, beta, opt);
  plan.schedule = parallel::level_schedule_columns(l);
  plan.update_map = parallel::update_slots_columns(l, plan.sets.reach);
  plan.workspace.n = l.cols();
  plan.workspace.need_map = false;
  plan.workspace.need_dense = false;
  plan.workspace.update_slots = plan.update_map.slots();
  plan.workspace.rhs_block = core::kRhsBlockWidth;
  plan.path = ExecutionPath::ParallelTriSolve;
  plan.agg = parallel::coarsen_schedule_columns(l, plan.schedule);
  return plan;
}

CscMatrix factor_pattern(const CscMatrix& a) {
  core::SympilerOptions opt;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;
  return core::inspect_cholesky(a, opt).sym.l_pattern;
}

std::vector<index_t> dense_beta(index_t n) {
  std::vector<index_t> beta(static_cast<std::size_t>(n));
  std::iota(beta.begin(), beta.end(), 0);
  return beta;
}

// ------------------------------------------------- file-image manipulation
//
// Byte-level view of the plan_serde layout (documented in
// docs/persistence.md): fixed 104-byte header (CRC over [0, 96)), then
// section_count 24-byte table entries {id, crc, offset, length} plus a
// table CRC, then the 8-aligned section payloads.

constexpr std::size_t kHeaderCrcOffset = 96;
constexpr std::size_t kTableOffset = 104;
constexpr std::size_t kEntrySize = 24;
constexpr std::size_t kSectionCountOffset = 22;

template <typename T>
T rd(const std::vector<std::uint8_t>& b, std::size_t off) {
  T v{};
  std::memcpy(&v, b.data() + off, sizeof(T));
  return v;
}

template <typename T>
void wr(std::vector<std::uint8_t>& b, std::size_t off, T v) {
  std::memcpy(b.data() + off, &v, sizeof(T));
}

void fix_header_crc(std::vector<std::uint8_t>& b) {
  wr<std::uint32_t>(b, kHeaderCrcOffset,
                    core::serde_crc32(b.data(), kHeaderCrcOffset));
}

void fix_table_crc(std::vector<std::uint8_t>& b) {
  const auto n = rd<std::uint16_t>(b, kSectionCountOffset);
  wr<std::uint32_t>(b, kTableOffset + n * kEntrySize,
                    core::serde_crc32(b.data() + kTableOffset,
                                      n * kEntrySize));
}

struct Entry {
  std::uint32_t id = 0;
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

std::vector<Entry> read_table(const std::vector<std::uint8_t>& b) {
  const auto n = rd<std::uint16_t>(b, kSectionCountOffset);
  std::vector<Entry> table(n);
  for (std::uint16_t s = 0; s < n; ++s) {
    const std::size_t off = kTableOffset + s * kEntrySize;
    table[s].id = rd<std::uint32_t>(b, off);
    table[s].crc = rd<std::uint32_t>(b, off + 4);
    table[s].offset = rd<std::uint64_t>(b, off + 8);
    table[s].length = rd<std::uint64_t>(b, off + 16);
  }
  return table;
}

void write_entry(std::vector<std::uint8_t>& b, std::size_t s,
                 const Entry& e) {
  const std::size_t off = kTableOffset + s * kEntrySize;
  wr<std::uint32_t>(b, off, e.id);
  wr<std::uint32_t>(b, off + 4, e.crc);
  wr<std::uint64_t>(b, off + 8, e.offset);
  wr<std::uint64_t>(b, off + 16, e.length);
}

Status load_image(const std::vector<std::uint8_t>& bytes, CholeskyPlan*) {
  CholeskyPlan out;
  return core::deserialize_plan(std::span<const std::uint8_t>(bytes), &out);
}

Status load_image(const std::vector<std::uint8_t>& bytes, TriSolvePlan*) {
  TriSolvePlan out;
  return core::deserialize_plan(std::span<const std::uint8_t>(bytes), &out);
}

/// Every mutation must be rejected with one of the two persistence codes;
/// anything else (kOk, a crash, a sanitizer finding) fails the corpus.
template <typename Plan>
void expect_rejected(const std::vector<std::uint8_t>& bytes,
                     const std::string& what) {
  const Status status = load_image(bytes, static_cast<Plan*>(nullptr));
  EXPECT_FALSE(status.ok()) << what << ": corruption loaded cleanly";
  EXPECT_TRUE(status.code == ErrorCode::kCorruptPlanFile ||
              status.code == ErrorCode::kStalePlanVersion)
      << what << ": unexpected code in " << status.to_string();
}

/// The six-class per-section corpus: run every class against every
/// section of `image` and require a structured rejection each time.
template <typename Plan>
void run_section_corpus(const std::vector<std::uint8_t>& image,
                        const char* image_name) {
  const std::vector<Entry> table = read_table(image);
  ASSERT_FALSE(table.empty());
  for (std::size_t s = 0; s < table.size(); ++s) {
    const Entry& e = table[s];
    const std::string label =
        std::string(image_name) + " section " + std::to_string(e.id);
    ASSERT_GE(e.length, 8u) << label;  // count-prefixed payloads

    {  // 1. payload bit-flip (caught by the section CRC)
      std::vector<std::uint8_t> b = image;
      b[static_cast<std::size_t>(e.offset + e.length / 2)] ^= 0x10;
      expect_rejected<Plan>(b, label + ": payload bit-flip");
    }
    {  // 2. truncation mid-section (caught by the file_bytes check)
      std::vector<std::uint8_t> b = image;
      b.resize(static_cast<std::size_t>(e.offset + e.length / 2));
      expect_rejected<Plan>(b, label + ": truncation");
    }
    {  // 3. section-id swap, CRCs fixed up: the payloads still checksum
      //    clean but parse as the wrong section. Pick a partner whose
      //    payload BYTES differ — two empty sections serialize to
      //    identical count-prefix runs, and swapping identical payloads
      //    is a no-op, not a corruption.
      std::size_t partner = table.size();
      for (std::size_t t = 0; t < table.size(); ++t) {
        if (t == s) continue;
        const bool same =
            table[t].length == e.length &&
            std::memcmp(image.data() + table[t].offset,
                        image.data() + e.offset,
                        static_cast<std::size_t>(e.length)) == 0;
        if (!same) {
          partner = t;
          break;
        }
      }
      if (partner < table.size()) {
        std::vector<std::uint8_t> b = image;
        Entry x = table[s];
        Entry z = table[partner];
        std::swap(x.id, z.id);
        write_entry(b, s, x);
        write_entry(b, partner, z);
        fix_table_crc(b);
        expect_rejected<Plan>(b, label + ": id swap");
      }
    }
    {  // 4. offset lie pointing past the file, table CRC fixed up
      std::vector<std::uint8_t> b = image;
      Entry lie = e;
      lie.offset = b.size();
      lie.length = 64;
      write_entry(b, s, lie);
      fix_table_crc(b);
      expect_rejected<Plan>(b, label + ": offset lie");
    }
    {  // 5. length lie growing the section into its neighbor
      std::vector<std::uint8_t> b = image;
      Entry lie = e;
      lie.length += 8;
      write_entry(b, s, lie);
      fix_table_crc(b);
      expect_rejected<Plan>(b, label + ": length lie");
    }
    {  // 6. checksum lie: stored section CRC no longer matches the payload
      std::vector<std::uint8_t> b = image;
      Entry lie = e;
      lie.crc ^= 0x5A5A5A5Au;
      write_entry(b, s, lie);
      fix_table_crc(b);
      expect_rejected<Plan>(b, label + ": checksum lie");
    }
  }
}

// ---------------------------------------------------------- serde round-trip

// ---------------------------------------------------------------- checksum

// The format's checksum is CRC-32C. Pin the function itself (the
// published check value over "123456789") and the dispatch: the hardware
// SSE4.2 path and the portable slicing-by-8 fallback must agree on every
// length and alignment, or a plan written on one machine would be
// "corrupt" on another.
TEST(Crc32c, MatchesThePublishedCheckValue) {
  const char digits[] = "123456789";
  EXPECT_EQ(util::crc32c(digits, 9), 0xE3069283u);
  EXPECT_EQ(util::crc32c_software(digits, 9), 0xE3069283u);
  EXPECT_EQ(util::crc32c("", 0), 0x00000000u);
}

TEST(Crc32c, HardwareAndSoftwarePathsAgreeAcrossLengthsAndAlignments) {
  std::vector<std::uint8_t> buf(4096 + 64);
  std::uint32_t state = 0x12345678u;  // deterministic xorshift fill
  for (std::uint8_t& b : buf) {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    b = static_cast<std::uint8_t>(state);
  }
  for (const std::size_t len : {std::size_t{1}, std::size_t{3},
                                std::size_t{7}, std::size_t{8},
                                std::size_t{9}, std::size_t{63},
                                std::size_t{64}, std::size_t{1021},
                                std::size_t{4096}}) {
    for (std::size_t align = 0; align < 8; ++align) {
      const std::uint8_t* p = buf.data() + align;
      EXPECT_EQ(util::crc32c(p, len), util::crc32c_software(p, len))
          << "len=" << len << " align=" << align;
    }
  }
}

template <typename Plan>
void expect_round_trip(const Plan& fresh, const char* name) {
  const std::vector<std::uint8_t> image = core::serialize_plan(fresh);
  Plan loaded;
  const Status status =
      core::deserialize_plan(std::span<const std::uint8_t>(image), &loaded);
  ASSERT_TRUE(status.ok()) << name << ": " << status.to_string();
  EXPECT_TRUE(loaded.key == fresh.key) << name;
  EXPECT_EQ(loaded.path, fresh.path) << name;
  EXPECT_EQ(loaded.bytes(), fresh.bytes())
      << name << ": bytes() accounting diverged across the round trip";
  // The strongest structural check: re-serializing the loaded plan must
  // reproduce the original file byte for byte.
  EXPECT_EQ(core::serialize_plan(loaded), image) << name;
}

TEST(PlanSerde, CholeskyRoundTripIsByteIdentical) {
  const CscMatrix a = gen::grid2d_laplacian(30, 30);
  expect_round_trip(simplicial_plan(a), "simplicial");
  expect_round_trip(supernodal_plan(a), "supernodal");
  expect_round_trip(coarsened_cholesky_plan(a), "coarsened");
}

TEST(PlanSerde, TriSolveRoundTripIsByteIdentical) {
  const CscMatrix l = factor_pattern(gen::grid2d_laplacian(25, 25));
  const std::vector<index_t> sparse_beta = {0};
  const std::vector<index_t> full_beta = dense_beta(l.cols());
  expect_round_trip(
      Planner(sequential_config(1e9)).plan_trisolve(l, sparse_beta),
      "pruned");
  expect_round_trip(
      Planner(sequential_config(0.0)).plan_trisolve(l, sparse_beta),
      "blocked");
  expect_round_trip(coarsened_trisolve_plan(l, full_beta), "coarsened");
}

TEST(PlanSerde, LoadedPlanVerifiesCleanWithZeroFindings) {
  const CscMatrix a = gen::grid2d_laplacian(30, 30);
  const CholeskyPlan fresh = coarsened_cholesky_plan(a);
  const std::vector<std::uint8_t> image = core::serialize_plan(fresh);
  CholeskyPlan loaded;
  ASSERT_TRUE(core::deserialize_plan(std::span<const std::uint8_t>(image),
                                     &loaded)
                  .ok());
  const verify::Report report = verify::verify_plan(loaded);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.findings.size(), 0u);

  const CscMatrix l = factor_pattern(a);
  const std::vector<index_t> beta = dense_beta(l.cols());
  const TriSolvePlan tfresh = coarsened_trisolve_plan(l, beta);
  const std::vector<std::uint8_t> timage = core::serialize_plan(tfresh);
  TriSolvePlan tloaded;
  ASSERT_TRUE(core::deserialize_plan(std::span<const std::uint8_t>(timage),
                                     &tloaded)
                  .ok());
  const verify::Report treport = verify::verify_plan(tloaded, l, beta);
  EXPECT_TRUE(treport.ok()) << treport.to_string();
  EXPECT_EQ(treport.findings.size(), 0u);
}

// --------------------------------------------------------- corruption corpus

TEST(CorruptionCorpus, EverySectionOfEveryKindRejectsSixClasses) {
  const CscMatrix a = gen::grid2d_laplacian(20, 20);
  // Coarsened parallel + sequential simplicial together exercise every
  // section with a non-trivial payload (rowpat is simplicial-only).
  run_section_corpus<CholeskyPlan>(
      core::serialize_plan(coarsened_cholesky_plan(a)), "chol-coarsened");
  run_section_corpus<CholeskyPlan>(core::serialize_plan(simplicial_plan(a)),
                                   "chol-simplicial");

  const CscMatrix l = factor_pattern(a);
  const std::vector<index_t> sparse_beta = {0};
  run_section_corpus<TriSolvePlan>(
      core::serialize_plan(coarsened_trisolve_plan(l, dense_beta(l.cols()))),
      "tri-coarsened");
  run_section_corpus<TriSolvePlan>(
      core::serialize_plan(
          Planner(sequential_config(0.0)).plan_trisolve(l, sparse_beta)),
      "tri-blocked");
}

TEST(CorruptionCorpus, HeaderLiesAreRejectedWithFixedUpChecksums) {
  const CscMatrix a = gen::grid2d_laplacian(20, 20);
  const std::vector<std::uint8_t> image =
      core::serialize_plan(supernodal_plan(a));

  struct Lie {
    const char* what;
    std::size_t offset;
    std::uint64_t value;
    std::size_t width;
    ErrorCode expect;
  };
  const Lie lies[] = {
      {"format version bump", 8, 99, 4, ErrorCode::kStalePlanVersion},
      {"foreign endianness", 12, 0x04030201u, 4,
       ErrorCode::kStalePlanVersion},
      {"index ABI", 16, 8, 2, ErrorCode::kStalePlanVersion},
      {"value ABI", 18, 4, 2, ErrorCode::kStalePlanVersion},
      {"kind swap", 20, 2, 2, ErrorCode::kCorruptPlanFile},
      {"section count", kSectionCountOffset, 3, 2,
       ErrorCode::kCorruptPlanFile},
      {"options hash", 24, 0xDEADBEEFull, 8, ErrorCode::kCorruptPlanFile},
      {"file bytes", 88, 128, 8, ErrorCode::kCorruptPlanFile},
  };
  for (const Lie& lie : lies) {
    std::vector<std::uint8_t> b = image;
    if (lie.width == 2) {
      wr<std::uint16_t>(b, lie.offset, static_cast<std::uint16_t>(lie.value));
    } else if (lie.width == 4) {
      wr<std::uint32_t>(b, lie.offset, static_cast<std::uint32_t>(lie.value));
    } else {
      wr<std::uint64_t>(b, lie.offset, lie.value);
    }
    fix_header_crc(b);
    CholeskyPlan out;
    const Status status =
        core::deserialize_plan(std::span<const std::uint8_t>(b), &out);
    EXPECT_EQ(status.code, lie.expect)
        << lie.what << ": " << status.to_string();
  }

  {  // an UNfixed header flip is caught by the header CRC itself
    std::vector<std::uint8_t> b = image;
    b[40] ^= 0x01;  // key.cols
    expect_rejected<CholeskyPlan>(b, "header bit-flip without CRC fixup");
  }
}

TEST(CorruptionCorpus, TruncationSweepAndGarbageFiles) {
  const CscMatrix a = gen::grid2d_laplacian(16, 16);
  const std::vector<std::uint8_t> image =
      core::serialize_plan(simplicial_plan(a));
  const std::size_t cuts[] = {0,
                              1,
                              7,
                              kHeaderCrcOffset,
                              kTableOffset - 1,
                              kTableOffset + kEntrySize,
                              image.size() / 2,
                              image.size() - 1};
  for (const std::size_t cut : cuts) {
    std::vector<std::uint8_t> b(image.begin(),
                                image.begin() + static_cast<long>(cut));
    expect_rejected<CholeskyPlan>(b,
                                  "truncated to " + std::to_string(cut));
  }
  expect_rejected<CholeskyPlan>(std::vector<std::uint8_t>(256, 0xAB),
                                "garbage bytes");
  expect_rejected<TriSolvePlan>(image,
                                "cholesky image read as a trisolve plan");
}

// ----------------------------------------------------------- PlanStore disk

TEST(PlanStoreDisk, SaveLoadRoundTripWithStats) {
  TempDir dir;
  const CscMatrix a = gen::grid2d_laplacian(20, 20);
  const CholeskyPlan fresh = supernodal_plan(a);
  PlanStore store(dir.path);
  ASSERT_TRUE(store.save(fresh).ok());
  EXPECT_TRUE(std::filesystem::exists(store.path_for(fresh.key, true)));

  CholeskyPlan loaded;
  const PlanStore::Loaded got = store.load(fresh.key, &loaded);
  ASSERT_TRUE(got.ok()) << got.status.to_string();
  EXPECT_EQ(core::serialize_plan(loaded), core::serialize_plan(fresh));
  EXPECT_EQ(loaded.bytes(), fresh.bytes());

  const PlanStore::Stats st = store.stats();
  EXPECT_EQ(st.writes, 1u);
  EXPECT_EQ(st.loads, 1u);
  EXPECT_EQ(st.load_failures, 0u);
  EXPECT_EQ(st.write_failures, 0u);

  // Missing key: a plain cold miss, not an error.
  PatternKey other = fresh.key;
  other.structure_hash ^= 1;
  CholeskyPlan none;
  const PlanStore::Loaded miss = store.load(other, &none);
  EXPECT_FALSE(miss.found);
  EXPECT_TRUE(miss.status.ok());

  store.discard(fresh.key, true);
  EXPECT_EQ(store.stats().discards, 1u);
  const PlanStore::Loaded after = store.load(fresh.key, &none);
  EXPECT_FALSE(after.found);
}

TEST(PlanStoreDisk, OnDiskCorruptionIsRejectedNotServed) {
  TempDir dir;
  const CscMatrix a = gen::grid2d_laplacian(20, 20);
  const CholeskyPlan fresh = supernodal_plan(a);
  PlanStore store(dir.path);
  ASSERT_TRUE(store.save(fresh).ok());

  const std::string path = store.path_for(fresh.key, true);
  {  // flip one payload byte in place
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(f.tellg());
    f.seekp(static_cast<long>(size - 9));
    char byte = 0;
    f.seekg(static_cast<long>(size - 9));
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<long>(size - 9));
    f.write(&byte, 1);
  }
  CholeskyPlan out;
  const PlanStore::Loaded got = store.load(fresh.key, &out);
  EXPECT_TRUE(got.found);
  EXPECT_EQ(got.status.code, ErrorCode::kCorruptPlanFile)
      << got.status.to_string();
  EXPECT_EQ(store.stats().load_failures, 1u);
}

TEST(PlanStoreDisk, FileForTheWrongKeyIsRejectedByTheKeyCrossCheck) {
  TempDir dir;
  const CscMatrix a = gen::grid2d_laplacian(20, 20);
  const CscMatrix b = gen::grid2d_laplacian(21, 21);
  const CholeskyPlan plan_a = supernodal_plan(a);
  const CholeskyPlan plan_b = supernodal_plan(b);
  PlanStore store(dir.path);
  ASSERT_TRUE(store.save(plan_a).ok());

  // A renamed (or hash-colliding) file: plan A's bytes at plan B's path.
  std::filesystem::copy_file(store.path_for(plan_a.key, true),
                             store.path_for(plan_b.key, true));
  CholeskyPlan out;
  const PlanStore::Loaded got = store.load(plan_b.key, &out);
  EXPECT_TRUE(got.found);
  EXPECT_EQ(got.status.code, ErrorCode::kCorruptPlanFile);
  EXPECT_NE(got.status.message.find("requested"), std::string::npos);
}

TEST(PlanStoreDisk, StrayTempFilesAreInvisibleToLoad) {
  TempDir dir;
  const CscMatrix a = gen::grid2d_laplacian(20, 20);
  const CholeskyPlan fresh = supernodal_plan(a);
  PlanStore store(dir.path);
  // Simulate a crash mid-save: only a temp exists, never the final name.
  std::filesystem::create_directories(dir.path);
  std::ofstream(store.path_for(fresh.key, true) + ".tmp.999.0")
      << "torn write";
  CholeskyPlan out;
  const PlanStore::Loaded got = store.load(fresh.key, &out);
  EXPECT_FALSE(got.found);
  EXPECT_TRUE(got.status.ok());
}

TEST(PlanStoreDisk, WriteBehindFlushDrainsTheQueue) {
  TempDir dir;
  const CscMatrix a = gen::grid2d_laplacian(20, 20);
  PlanStore store(dir.path);
  auto plan = std::make_shared<const CholeskyPlan>(supernodal_plan(a));
  store.save_async(plan);
  store.flush();
  EXPECT_EQ(store.stats().writes, 1u);
  EXPECT_TRUE(std::filesystem::exists(store.path_for(plan->key, true)));
}

// ---------------------------------------------------- profitability gate

TEST(PlanStoreGate, ShouldPersistTruthTable) {
  // At or under the 4 MiB floor: persisted unconditionally, regardless of
  // how fast the plan was built or how it was planned (deterministic
  // across machines).
  EXPECT_TRUE(PlanStore::should_persist(1024, 0.0, false));
  EXPECT_TRUE(PlanStore::should_persist(1024, 0.0, true));
  EXPECT_TRUE(PlanStore::should_persist(std::size_t{4} << 20, 0.0, false));
  // Above the floor, a memory-bound planner (simplicial pattern fill)
  // never persists — loading the bytes back cannot beat re-filling them,
  // whatever the noisy build timer claimed.
  EXPECT_FALSE(PlanStore::should_persist(std::size_t{64} << 20, 10.0, true));
  // Compute-bound planning is estimated-load vs measured-build: 64 MiB
  // loads in ~32 ms at the assumed 2 GB/s, so a plan built in 1 ms
  // declines (loading would cost 32x the replan it replaces) and a plan
  // built in 1 s persists easily.
  EXPECT_FALSE(
      PlanStore::should_persist(std::size_t{64} << 20, 0.001, false));
  EXPECT_TRUE(PlanStore::should_persist(std::size_t{64} << 20, 1.0, false));
}

TEST(PlanStoreGate, UnprofitablePlansAreDeclinedNotWritten) {
  TempDir dir;
  const CscMatrix a = gen::grid2d_laplacian(20, 20);
  PlanStore store(dir.path);

  // Inflate the plan past the 4 MiB floor with a near-zero build time:
  // the gate must decline it, leaving no file and no writer work.
  CholeskyPlan big = supernodal_plan(a);
  big.sets.rowpat.resize((std::size_t{8} << 20) / sizeof(index_t), 0);
  big.evidence.build_seconds = 0.0;
  store.save_async_if_profitable(
      std::make_shared<const CholeskyPlan>(big));
  store.flush();
  EXPECT_EQ(store.stats().declines, 1u);
  EXPECT_EQ(store.stats().writes, 0u);
  EXPECT_FALSE(std::filesystem::exists(store.path_for(big.key, true)));

  // The same bytes with an honest (expensive) build time persist: the
  // estimated load is now far cheaper than replanning.
  big.evidence.build_seconds = 60.0;
  store.save_async_if_profitable(
      std::make_shared<const CholeskyPlan>(std::move(big)));
  store.flush();
  const PlanStore::Stats st = store.stats();
  EXPECT_EQ(st.declines, 1u);
  EXPECT_EQ(st.writes, 1u);
}

TEST(PlanStoreDisk, TriSolvePlansPersistIndependently) {
  TempDir dir;
  const CscMatrix l = factor_pattern(gen::grid2d_laplacian(16, 16));
  const std::vector<index_t> beta = {0};
  const TriSolvePlan fresh =
      Planner(sequential_config(0.0)).plan_trisolve(l, beta);
  PlanStore store(dir.path);
  ASSERT_TRUE(store.save(fresh).ok());
  TriSolvePlan loaded;
  const PlanStore::Loaded got = store.load(fresh.key, &loaded);
  ASSERT_TRUE(got.ok()) << got.status.to_string();
  EXPECT_EQ(core::serialize_plan(loaded), core::serialize_plan(fresh));
}

// ------------------------------------------------------- injected faults

TEST(PlanStoreFaults, StoreWriteFaultDegradesToUnpersisted) {
  FaultGuard fg;
  TempDir dir;
  const CscMatrix a = gen::grid2d_laplacian(20, 20);
  const CholeskyPlan fresh = supernodal_plan(a);
  PlanStore store(dir.path);
  FaultInjector::arm(FaultSite::kStoreWrite, 1);
  const Status status = store.save(fresh);
  EXPECT_EQ(status.code, ErrorCode::kResourceExhausted);
  EXPECT_EQ(store.stats().write_failures, 1u);
  EXPECT_FALSE(std::filesystem::exists(store.path_for(fresh.key, true)));
  FaultInjector::reset();
  EXPECT_TRUE(store.save(fresh).ok());  // and the store recovers
}

TEST(PlanStoreFaults, StoreReadAndChecksumFaultsRejectTheLoad) {
  FaultGuard fg;
  TempDir dir;
  const CscMatrix a = gen::grid2d_laplacian(20, 20);
  const CholeskyPlan fresh = supernodal_plan(a);
  PlanStore store(dir.path);
  ASSERT_TRUE(store.save(fresh).ok());

  CholeskyPlan out;
  FaultInjector::arm(FaultSite::kStoreRead, 1);
  PlanStore::Loaded got = store.load(fresh.key, &out);
  EXPECT_TRUE(got.found);
  EXPECT_EQ(got.status.code, ErrorCode::kCorruptPlanFile);
  EXPECT_NE(got.status.message.find("injected store-read"),
            std::string::npos);

  FaultInjector::arm(FaultSite::kStoreChecksum, 1);
  got = store.load(fresh.key, &out);
  EXPECT_TRUE(got.found);
  EXPECT_EQ(got.status.code, ErrorCode::kCorruptPlanFile);
  EXPECT_NE(got.status.message.find("checksum"), std::string::npos);

  FaultInjector::reset();
  EXPECT_TRUE(store.load(fresh.key, &out).ok());
}

// ------------------------------------------------- facade restart warm-start

/// Factor `a` through a Solver rooted in a FRESH SymbolicContext (a
/// simulated process restart: the in-memory cache starts empty, only the
/// store directory persists) and return the solve result.
std::vector<value_t> restart_factor_solve(const CscMatrix& a,
                                          const api::SolverConfig& config,
                                          api::FactorReport* report) {
  auto context = std::make_shared<api::SymbolicContext>();
  api::Solver solver(config, context);
  solver.factor(a);
  *report = solver.report();
  std::vector<value_t> x = gen::dense_rhs(a.cols(), 77);
  solver.solve(x);
  return x;
}

TEST(RestartWarmStart, LoadedPlanFactorsBitIdenticallyWithoutReplanning) {
  TempDir dir;
  const CscMatrix a = gen::grid2d_laplacian(30, 30);
  api::SolverConfig config;
  config.enable_parallel = false;
  config.options.plan_store_dir = dir.path;

  // Hold the store open so the write-behind instance (and its counters)
  // survives across the simulated restarts.
  auto store = PlanStore::open(dir.path);

  api::FactorReport cold;
  const std::vector<value_t> want = restart_factor_solve(a, config, &cold);
  EXPECT_FALSE(cold.store_loaded);
  store->flush();
  ASSERT_EQ(store->stats().writes, 1u);

  const std::uint64_t transposes_before = core::planner_transpose_count();
  api::FactorReport warm;
  const std::vector<value_t> got = restart_factor_solve(a, config, &warm);
  EXPECT_TRUE(warm.store_loaded) << warm.to_string();
  EXPECT_FALSE(warm.store_recovered);
  EXPECT_FALSE(warm.degraded());
  EXPECT_NE(warm.to_string().find("loaded from store"), std::string::npos);
  EXPECT_EQ(core::planner_transpose_count(), transposes_before)
      << "a store-loaded factor must not replan (no inspector transpose)";
  expect_bits_equal(got, want);
}

#ifdef SYMPILER_HAS_OPENMP
TEST(RestartWarmStart, ParallelPathBitIdenticalAtOneTwoFourThreads) {
  TempDir dir;
  const CscMatrix a = gen::grid2d_laplacian(40, 40);
  api::SolverConfig config;
  config.enable_parallel = true;
  config.parallel_min_supernodes = 1;
  config.parallel_min_avg_level_width = 0.0;
  config.options.plan_store_dir = dir.path;

  auto store = PlanStore::open(dir.path);
  const int original_threads = omp_get_max_threads();
  for (const int threads : {1, 2, 4}) {
    omp_set_num_threads(threads);
    api::FactorReport cold;
    const std::vector<value_t> want = restart_factor_solve(a, config, &cold);
    store->flush();
    api::FactorReport warm;
    const std::vector<value_t> got = restart_factor_solve(a, config, &warm);
    EXPECT_TRUE(warm.store_loaded)
        << threads << " threads: " << warm.to_string();
    expect_bits_equal(got, want);
  }
  omp_set_num_threads(original_threads);
}
#endif  // SYMPILER_HAS_OPENMP

TEST(RestartWarmStart, CorruptedFileTakesRungFiveDiscardReplanRewrite) {
  TempDir dir;
  const CscMatrix a = gen::grid2d_laplacian(30, 30);
  api::SolverConfig config;
  config.enable_parallel = false;
  config.options.plan_store_dir = dir.path;

  auto store = PlanStore::open(dir.path);
  api::FactorReport cold;
  const std::vector<value_t> want = restart_factor_solve(a, config, &cold);
  store->flush();

  // Find the persisted file and corrupt one byte of it on disk.
  std::string path;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path))
    if (entry.path().extension() == ".plan") path = entry.path().string();
  ASSERT_FALSE(path.empty());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-9, std::ios::end);
    const char byte = 0x7F;
    f.write(&byte, 1);
  }

  api::FactorReport recovered;
  const std::vector<value_t> got =
      restart_factor_solve(a, config, &recovered);
  EXPECT_TRUE(recovered.store_recovered) << recovered.to_string();
  EXPECT_TRUE(recovered.degraded());
  EXPECT_NE(recovered.to_string().find("store->replan"), std::string::npos);
  EXPECT_NE(recovered.last_error.code, ErrorCode::kOk);
  expect_bits_equal(got, want);  // rung 5 still factors correctly

  // ...and rewrote the store: the next restart warm-starts cleanly.
  store->flush();
  api::FactorReport rewarmed;
  const std::vector<value_t> again =
      restart_factor_solve(a, config, &rewarmed);
  EXPECT_TRUE(rewarmed.store_loaded) << rewarmed.to_string();
  EXPECT_FALSE(rewarmed.degraded());
  expect_bits_equal(again, want);
}

TEST(RestartWarmStart, TriangularSolverWarmStartsFromTheStore) {
  TempDir dir;
  api::SolverConfig chol_config;
  chol_config.enable_parallel = false;
  api::Solver chol(chol_config, nullptr);
  const CscMatrix a = gen::grid2d_laplacian(24, 24);
  chol.factor(a);
  const CscMatrix l = chol.factor_csc();
  const std::vector<index_t> beta = dense_beta(l.cols());

  api::SolverConfig config;
  config.enable_parallel = false;
  config.options.plan_store_dir = dir.path;
  auto store = PlanStore::open(dir.path);

  std::vector<value_t> want = gen::dense_rhs(l.cols(), 41);
  {
    auto context = std::make_shared<api::SymbolicContext>();
    api::TriangularSolver tri(l, beta, config, context);
    EXPECT_FALSE(tri.report().store_loaded);
    tri.solve(want);
  }
  store->flush();
  ASSERT_GE(store->stats().writes, 1u);

  std::vector<value_t> got = gen::dense_rhs(l.cols(), 41);
  {
    auto context = std::make_shared<api::SymbolicContext>();
    api::TriangularSolver tri(l, beta, config, context);
    EXPECT_TRUE(tri.report().store_loaded) << tri.report().to_string();
    tri.solve(got);
  }
  expect_bits_equal(got, want);
}

TEST(RestartWarmStart, StoreWriteFaultLeavesFactorUndegradedButUnpersisted) {
  FaultGuard fg;
  TempDir dir;
  const CscMatrix a = gen::grid2d_laplacian(30, 30);
  api::SolverConfig config;
  config.enable_parallel = false;
  config.options.plan_store_dir = dir.path;

  auto store = PlanStore::open(dir.path);
  FaultInjector::arm(FaultSite::kStoreWrite, 1);
  api::FactorReport report;
  const std::vector<value_t> x = restart_factor_solve(a, config, &report);
  store->flush();
  FaultInjector::reset();

  // The factor itself succeeded; only persistence was lost (absorbed into
  // the store's failure counter — write-behind has no caller to throw to).
  for (const value_t v : x) ASSERT_EQ(v, v);
  EXPECT_EQ(store->stats().writes, 0u);
  EXPECT_EQ(store->stats().write_failures, 1u);
  EXPECT_TRUE(std::filesystem::is_empty(dir.path));
}

}  // namespace
}  // namespace sympiler
