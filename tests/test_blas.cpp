// Tests for the mini-BLAS kernels against straightforward dense references.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <span>
#include <utility>
#include <vector>

#include "blas/bundle.h"
#include "blas/kernels.h"
#include "sparse/dense.h"
#include "util/common.h"

namespace sympiler {
namespace {

/// Random SPD dense matrix: A = B B^T + n * I (column-major, lda = n).
std::vector<value_t> random_spd_dense(index_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(n) * n);
  for (auto& v : b) v = dist(rng);
  std::vector<value_t> a(static_cast<std::size_t>(n) * n, 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      value_t s = 0.0;
      for (index_t k = 0; k < n; ++k) s += b[i + k * n] * b[j + k * n];
      a[i + j * n] = s + (i == j ? n : 0.0);
    }
  return a;
}

std::vector<value_t> random_vec(index_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
  std::vector<value_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = dist(rng);
  return v;
}

class PotrfTest : public ::testing::TestWithParam<index_t> {};

TEST_P(PotrfTest, FactorReconstructsMatrix) {
  const index_t n = GetParam();
  const std::vector<value_t> a = random_spd_dense(n, 100 + n);
  std::vector<value_t> l = a;
  blas::potrf_lower(n, l.data(), n);
  // Check L L^T == A on the lower triangle.
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      value_t s = 0.0;
      for (index_t k = 0; k <= j; ++k) s += l[i + k * n] * l[j + k * n];
      EXPECT_NEAR(s, a[i + j * n], 1e-9 * n) << "(" << i << "," << j << ")";
    }
  }
}

TEST_P(PotrfTest, SmallDispatchMatchesGeneric) {
  const index_t n = GetParam();
  const std::vector<value_t> a = random_spd_dense(n, 200 + n);
  std::vector<value_t> l1 = a, l2 = a;
  blas::potrf_lower(n, l1.data(), n);
  blas::potrf_lower_small(n, l2.data(), n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      EXPECT_NEAR(l1[i + j * n], l2[i + j * n], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PotrfTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 13, 32,
                                           100));

TEST(Potrf, ThrowsOnNonSpd) {
  std::vector<value_t> a = {1.0, 2.0, 2.0, 1.0};  // indefinite 2x2
  EXPECT_THROW(blas::potrf_lower(2, a.data(), 2), numerical_error);
  std::vector<value_t> z = {0.0};
  EXPECT_THROW(blas::potrf_lower(1, z.data(), 1), numerical_error);
}

class TrsvTest : public ::testing::TestWithParam<index_t> {};

TEST_P(TrsvTest, SolvesLowerSystem) {
  const index_t n = GetParam();
  std::vector<value_t> l = random_spd_dense(n, 300 + n);
  blas::potrf_lower(n, l.data(), n);
  const std::vector<value_t> xref = random_vec(n, 301);
  // b = L xref
  std::vector<value_t> b(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j <= i; ++j) b[i] += l[i + j * n] * xref[j];
  blas::trsv_lower(n, l.data(), n, b.data());
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], xref[i], 1e-9 * n);
}

TEST_P(TrsvTest, SmallDispatchMatchesGeneric) {
  const index_t n = GetParam();
  std::vector<value_t> l = random_spd_dense(n, 400 + n);
  blas::potrf_lower(n, l.data(), n);
  std::vector<value_t> x1 = random_vec(n, 401);
  std::vector<value_t> x2 = x1;
  blas::trsv_lower(n, l.data(), n, x1.data());
  blas::trsv_lower_small(n, l.data(), n, x2.data());
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-12);
}

TEST_P(TrsvTest, TransposeSolveInvertsTransposeProduct) {
  const index_t n = GetParam();
  std::vector<value_t> l = random_spd_dense(n, 500 + n);
  blas::potrf_lower(n, l.data(), n);
  const std::vector<value_t> xref = random_vec(n, 501);
  // b = L^T xref
  std::vector<value_t> b(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i; j < n; ++j) b[i] += l[j + i * n] * xref[j];
  blas::trsv_lower_transpose(n, l.data(), n, b.data());
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], xref[i], 1e-9 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TrsvTest,
                         ::testing::Values(1, 2, 4, 7, 8, 9, 20, 64));

TEST(Trsm, RightLowerTransposeMatchesPerRowTrsv) {
  const index_t n = 9, m = 14;
  std::vector<value_t> l = random_spd_dense(n, 600);
  blas::potrf_lower(n, l.data(), n);
  std::vector<value_t> b = random_vec(m * n, 601);
  std::vector<value_t> x = b;
  blas::trsm_right_lower_trans(m, n, l.data(), n, x.data(), m);
  // Row i of X solves L X(i,:)^T = B(i,:)^T  (since X L^T = B).
  for (index_t i = 0; i < m; ++i) {
    std::vector<value_t> row(static_cast<std::size_t>(n));
    for (index_t j = 0; j < n; ++j) row[j] = b[i + j * m];
    blas::trsv_lower(n, l.data(), n, row.data());
    for (index_t j = 0; j < n; ++j)
      EXPECT_NEAR(x[i + j * m], row[j], 1e-9 * n) << i << "," << j;
  }
}

TEST(Gemm, NtMinusMatchesReference) {
  const index_t m = 11, n = 7, k = 5;
  const std::vector<value_t> a = random_vec(m * k, 700);
  const std::vector<value_t> b = random_vec(n * k, 701);
  std::vector<value_t> c = random_vec(m * n, 702);
  std::vector<value_t> cref = c;
  blas::gemm_nt_minus(m, n, k, a.data(), m, b.data(), n, c.data(), m);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      value_t s = 0.0;
      for (index_t p = 0; p < k; ++p) s += a[i + p * m] * b[j + p * n];
      cref[i + j * m] -= s;
    }
  for (std::size_t t = 0; t < c.size(); ++t)
    EXPECT_NEAR(c[t], cref[t], 1e-12);
}

TEST(Gemm, HandlesDegenerateShapes) {
  std::vector<value_t> c = {1.0, 1.0, 1.0, 1.0};
  blas::gemm_nt_minus(0, 0, 0, nullptr, 1, nullptr, 1, c.data(), 1);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  // k = 0: no-op on C.
  const std::vector<value_t> a(4, 2.0);
  blas::gemm_nt_minus(2, 2, 0, a.data(), 2, a.data(), 2, c.data(), 2);
  for (const value_t v : c) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Syrk, LowerMinusMatchesGemmOnLowerTriangle) {
  const index_t n = 8, k = 6;
  const std::vector<value_t> a = random_vec(n * k, 800);
  std::vector<value_t> c1 = random_vec(n * n, 801);
  std::vector<value_t> c2 = c1;
  blas::syrk_lower_minus(n, k, a.data(), n, c1.data(), n);
  blas::gemm_nt_minus(n, n, k, a.data(), n, a.data(), n, c2.data(), n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      EXPECT_NEAR(c1[i + j * n], c2[i + j * n], 1e-12);
}

TEST(Gemv, MinusAndTransposeMinus) {
  const index_t m = 10, n = 6;
  const std::vector<value_t> a = random_vec(m * n, 900);
  const std::vector<value_t> x = random_vec(n, 901);
  std::vector<value_t> y = random_vec(m, 902);
  std::vector<value_t> yref = y;
  blas::gemv_minus(m, n, a.data(), m, x.data(), y.data());
  for (index_t i = 0; i < m; ++i) {
    value_t s = 0.0;
    for (index_t j = 0; j < n; ++j) s += a[i + j * m] * x[j];
    yref[i] -= s;
  }
  for (index_t i = 0; i < m; ++i) EXPECT_NEAR(y[i], yref[i], 1e-12);

  const std::vector<value_t> xt = random_vec(m, 903);
  std::vector<value_t> z = random_vec(n, 904);
  std::vector<value_t> zref = z;
  blas::gemv_trans_minus(m, n, a.data(), m, xt.data(), z.data());
  for (index_t j = 0; j < n; ++j) {
    value_t s = 0.0;
    for (index_t i = 0; i < m; ++i) s += a[i + j * m] * xt[i];
    zref[j] -= s;
  }
  for (index_t j = 0; j < n; ++j) EXPECT_NEAR(z[j], zref[j], 1e-12);
}

// ---------------------------------------------------------------------------
// Bit-identity: the register-blocked kernels must reproduce the _ref scalar
// kernels exactly (same per-element operation sequence), for every shape
// 1..64 and with ragged leading dimensions. EXPECT_EQ on doubles is exact.
// ---------------------------------------------------------------------------

/// Random buffer with a ragged leading dimension: rows*cols values live in
/// an lda-strided buffer, padding poisoned with NaN to catch overreads.
std::vector<value_t> ragged(index_t rows, index_t lda, index_t cols,
                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
  std::vector<value_t> a(static_cast<std::size_t>(lda) * cols,
                         std::numeric_limits<value_t>::quiet_NaN());
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < rows; ++i) a[i + j * lda] = dist(rng);
  return a;
}

void expect_bits_equal(std::span<const value_t> a, std::span<const value_t> b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (std::isnan(a[t]) && std::isnan(b[t])) continue;  // padding
    ASSERT_EQ(a[t], b[t]) << what << " differs at flat index " << t;
  }
}

TEST(BitIdentity, GemmAllShapes) {
  for (const index_t k : {1, 2, 5, 16}) {
    for (index_t m = 1; m <= 64; m += (m < 12 ? 1 : 7)) {
      for (index_t n = 1; n <= 64; n += (n < 12 ? 1 : 7)) {
        const index_t lda = m + 3, ldb = n + 1, ldc = m + 5;
        const std::vector<value_t> a = ragged(m, lda, k, 1000 + m + n + k);
        const std::vector<value_t> b = ragged(n, ldb, k, 2000 + m + n + k);
        std::vector<value_t> c1 = ragged(m, ldc, n, 3000 + m + n + k);
        std::vector<value_t> c2 = c1;
        blas::gemm_nt_minus_ref(m, n, k, a.data(), lda, b.data(), ldb,
                                c1.data(), ldc);
        blas::gemm_nt_minus(m, n, k, a.data(), lda, b.data(), ldb, c2.data(),
                            ldc);
        expect_bits_equal(c1, c2, "gemm");
      }
    }
  }
}

TEST(BitIdentity, SyrkAllShapes) {
  for (const index_t k : {1, 3, 9}) {
    for (index_t n = 1; n <= 64; ++n) {
      const index_t lda = n + 2, ldc = n + 4;
      const std::vector<value_t> a = ragged(n, lda, k, 4000 + n + k);
      std::vector<value_t> c1 = ragged(n, ldc, n, 5000 + n + k);
      std::vector<value_t> c2 = c1;
      blas::syrk_lower_minus_ref(n, k, a.data(), lda, c1.data(), ldc);
      blas::syrk_lower_minus(n, k, a.data(), lda, c2.data(), ldc);
      expect_bits_equal(c1, c2, "syrk");
    }
  }
}

TEST(BitIdentity, PotrfAllSizes) {
  for (index_t n = 1; n <= 64; ++n) {
    const index_t lda = n + (n % 3);
    std::vector<value_t> a(static_cast<std::size_t>(lda) * n,
                           std::numeric_limits<value_t>::quiet_NaN());
    const std::vector<value_t> spd = random_spd_dense(n, 6000 + n);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i) a[i + j * lda] = spd[i + j * n];
    std::vector<value_t> l1 = a, l2 = a;
    blas::potrf_lower_ref(n, l1.data(), lda);
    blas::potrf_lower(n, l2.data(), lda);
    expect_bits_equal(l1, l2, "potrf");
  }
}

TEST(BitIdentity, TrsvAndTransposeAllSizes) {
  for (index_t n = 1; n <= 64; ++n) {
    const index_t lda = n + (n % 5);
    std::vector<value_t> l(static_cast<std::size_t>(lda) * n, 0.0);
    const std::vector<value_t> spd = random_spd_dense(n, 7000 + n);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i) l[i + j * lda] = spd[i + j * n];
    blas::potrf_lower(n, l.data(), lda);
    std::vector<value_t> x1 = random_vec(n, 7100 + n);
    std::vector<value_t> x2 = x1;
    blas::trsv_lower_ref(n, l.data(), lda, x1.data());
    blas::trsv_lower(n, l.data(), lda, x2.data());
    expect_bits_equal(x1, x2, "trsv");
    blas::trsv_lower_transpose_ref(n, l.data(), lda, x1.data());
    blas::trsv_lower_transpose(n, l.data(), lda, x2.data());
    expect_bits_equal(x1, x2, "trsv^T");
  }
}

TEST(BitIdentity, TrsmAllShapes) {
  for (index_t n = 1; n <= 24; ++n) {
    for (const index_t m : {1, 2, 7, 16, 33, 64}) {
      const index_t ldl = n + 1, ldb = m + 2;
      std::vector<value_t> l(static_cast<std::size_t>(ldl) * n, 0.0);
      const std::vector<value_t> spd = random_spd_dense(n, 8000 + n + m);
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < n; ++i) l[i + j * ldl] = spd[i + j * n];
      blas::potrf_lower(n, l.data(), ldl);
      std::vector<value_t> b1 = ragged(m, ldb, n, 8100 + n + m);
      std::vector<value_t> b2 = b1;
      blas::trsm_right_lower_trans_ref(m, n, l.data(), ldl, b1.data(), ldb);
      blas::trsm_right_lower_trans(m, n, l.data(), ldl, b2.data(), ldb);
      expect_bits_equal(b1, b2, "trsm");
    }
  }
}

TEST(BitIdentity, GemvAllShapes) {
  for (index_t m = 1; m <= 64; m += (m < 12 ? 1 : 5)) {
    for (index_t n = 1; n <= 17; ++n) {
      const index_t lda = m + 1;
      const std::vector<value_t> a = ragged(m, lda, n, 9000 + m + n);
      const std::vector<value_t> x = random_vec(std::max(m, n), 9100 + m + n);
      std::vector<value_t> y1 = random_vec(std::max(m, n), 9200 + m + n);
      std::vector<value_t> y2 = y1;
      blas::gemv_minus_ref(m, n, a.data(), lda, x.data(), y1.data());
      blas::gemv_minus(m, n, a.data(), lda, x.data(), y2.data());
      expect_bits_equal(y1, y2, "gemv");
      blas::gemv_trans_minus_ref(m, n, a.data(), lda, x.data(), y1.data());
      blas::gemv_trans_minus(m, n, a.data(), lda, x.data(), y2.data());
      expect_bits_equal(y1, y2, "gemv^T");
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-RHS kernels: per RHS column, bit-identical to the single-RHS kernel.
// ---------------------------------------------------------------------------

TEST(MultiRhs, PackRoundTripAndKernelsMatchLoopedSingle) {
  for (const index_t n : {1, 5, 16, 40}) {
    for (const index_t nrhs : {1, 2, 7, 8, 31, 32}) {
      std::vector<value_t> l = random_spd_dense(n, 10000 + n + nrhs);
      blas::potrf_lower(n, l.data(), n);
      // Column-major batch, packed copy, and the ragged pack stride.
      const index_t ldp = nrhs + 1;
      const std::vector<value_t> base =
          random_vec(n * nrhs, 10100 + n + nrhs);
      std::vector<value_t> cols = base;
      std::vector<value_t> packed(static_cast<std::size_t>(n) * ldp, -7.0);
      blas::pack_rhs(n, nrhs, cols.data(), n, packed.data(), ldp);
      std::vector<value_t> round(cols.size(), 0.0);
      blas::unpack_rhs(n, nrhs, packed.data(), ldp, round.data(), n);
      expect_bits_equal(cols, round, "pack/unpack");

      // trsm_lower_multi vs per-column trsv_lower.
      blas::trsm_lower_multi(n, nrhs, l.data(), n, packed.data(), ldp);
      for (index_t r = 0; r < nrhs; ++r)
        blas::trsv_lower(n, l.data(), n, cols.data() + r * n);
      std::vector<value_t> unpacked(cols.size());
      blas::unpack_rhs(n, nrhs, packed.data(), ldp, unpacked.data(), n);
      expect_bits_equal(cols, unpacked, "trsm_lower_multi");

      // trsm_lower_transpose_multi vs per-column trsv_lower_transpose.
      blas::trsm_lower_transpose_multi(n, nrhs, l.data(), n, packed.data(),
                                       ldp);
      for (index_t r = 0; r < nrhs; ++r)
        blas::trsv_lower_transpose(n, l.data(), n, cols.data() + r * n);
      blas::unpack_rhs(n, nrhs, packed.data(), ldp, unpacked.data(), n);
      expect_bits_equal(cols, unpacked, "trsm_lower_transpose_multi");

      // gemm_minus_multi vs per-column gemv_minus (m x n panel).
      const index_t m = n + 3;
      const std::vector<value_t> a = ragged(m, m, n, 10200 + n + nrhs);
      std::vector<value_t> ycols = random_vec(m * nrhs, 10300 + n + nrhs);
      std::vector<value_t> ypacked(static_cast<std::size_t>(m) * ldp, 0.0);
      blas::pack_rhs(m, nrhs, ycols.data(), m, ypacked.data(), ldp);
      blas::gemm_minus_multi(m, n, nrhs, a.data(), m, packed.data(), ldp,
                             ypacked.data(), ldp);
      for (index_t r = 0; r < nrhs; ++r)
        blas::gemv_minus(m, n, a.data(), m, cols.data() + r * n,
                         ycols.data() + r * m);
      std::vector<value_t> yunpacked(ycols.size());
      blas::unpack_rhs(m, nrhs, ypacked.data(), ldp, yunpacked.data(), m);
      expect_bits_equal(ycols, yunpacked, "gemm_minus_multi");

      // gemm_trans_minus_multi vs per-column gemv_trans_minus.
      blas::gemm_trans_minus_multi(m, n, nrhs, a.data(), m, ypacked.data(),
                                   ldp, packed.data(), ldp);
      for (index_t r = 0; r < nrhs; ++r)
        blas::gemv_trans_minus(m, n, a.data(), m, ycols.data() + r * m,
                               cols.data() + r * n);
      blas::unpack_rhs(n, nrhs, packed.data(), ldp, unpacked.data(), n);
      expect_bits_equal(cols, unpacked, "gemm_trans_minus_multi");
    }
  }
}

// ------------------- SIMD bundle kernels + ISA dispatch (blas/bundle.h)

/// Synthetic same-shape bundle: `lanes` consecutive columns 0..lanes-1,
/// each with a diagonal + `outcount` off-diagonal values and `incount`
/// incoming terms. The compact off-diagonal slot bases colptr[j] - j are
/// consecutive, and a shuffled slot array makes the scatter a real one.
struct BundleFixture {
  std::vector<index_t> cols, colptr, slot, row_ptr;
  std::vector<value_t> Lx, x, terms;
};

BundleFixture make_bundle(index_t lanes, index_t incount, index_t outcount,
                          std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(0.5, 2.0);
  BundleFixture f;
  for (index_t j = 0; j < lanes; ++j) {
    f.cols.push_back(j);
    f.colptr.push_back(j * (1 + outcount));
    f.row_ptr.push_back(j * incount);
  }
  f.colptr.push_back(lanes * (1 + outcount));
  f.Lx.resize(static_cast<std::size_t>(lanes) * (1 + outcount));
  for (auto& v : f.Lx) v = dist(rng);
  f.x.resize(static_cast<std::size_t>(lanes));
  for (auto& v : f.x) v = dist(rng);
  // Terms buffer: the incoming region [0, lanes*incount) holds random
  // privatized terms; the scatter region after it receives the updates
  // through a shuffled slot permutation.
  const index_t nin = lanes * incount;
  const index_t nout = lanes * outcount;
  f.terms.resize(static_cast<std::size_t>(nin + nout));
  for (index_t t = 0; t < nin; ++t)
    f.terms[static_cast<std::size_t>(t)] = dist(rng);
  for (index_t t = 0; t < nout; ++t) f.slot.push_back(nin + t);
  std::shuffle(f.slot.begin(), f.slot.end(), rng);
  return f;
}

TEST(Bundle, EveryIsaTierMatchesScalarReferenceBitwise) {
  // The two-tier contract for the bundle kernels: whatever tier cpuid
  // dispatch lands on, the bits must equal the serial-lane reference —
  // across every lane count the coarsener emits and shapes with and
  // without incoming terms / updates.
  const blas::BundleIsa best = blas::bundle_isa_best();
  const std::pair<index_t, index_t> shapes[] = {{0, 0}, {0, 5}, {1, 1},
                                                {3, 0}, {5, 2}, {7, 9}};
  for (index_t lanes = 1; lanes <= blas::kBundleLanesMax; ++lanes) {
    for (const auto& [incount, outcount] : shapes) {
      const BundleFixture f = make_bundle(
          lanes, incount, outcount,
          900 + static_cast<std::uint64_t>(lanes) * 100 +
              static_cast<std::uint64_t>(incount) * 10 +
              static_cast<std::uint64_t>(outcount));
      std::vector<value_t> x_ref = f.x, terms_ref = f.terms;
      blas::trisolve_bundle_ref(lanes, incount, outcount, f.cols.data(),
                                f.colptr.data(), f.Lx.data(), f.slot.data(),
                                f.row_ptr.data(), x_ref.data(),
                                terms_ref.data());
      for (const blas::BundleIsa isa :
           {blas::BundleIsa::kScalar, blas::BundleIsa::kAvx2,
            blas::BundleIsa::kAvx512}) {
        blas::bundle_isa_force(isa);  // clamped to CPU support
        std::vector<value_t> x = f.x, terms = f.terms;
        blas::trisolve_bundle(lanes, incount, outcount, f.cols.data(),
                              f.colptr.data(), f.Lx.data(), f.slot.data(),
                              f.row_ptr.data(), x.data(), terms.data());
        expect_bits_equal(x_ref, x, blas::to_string(blas::bundle_isa_active()));
        expect_bits_equal(terms_ref, terms,
                          blas::to_string(blas::bundle_isa_active()));
      }
    }
  }
  blas::bundle_isa_force(best);  // restore auto dispatch
}

TEST(Bundle, IsaForceSelectsEachSupportedTierAndClampsAboveCpu) {
  const blas::BundleIsa best = blas::bundle_isa_best();
  // Scalar is always forcible; active dispatch follows the force.
  EXPECT_EQ(blas::bundle_isa_force(blas::BundleIsa::kScalar),
            blas::BundleIsa::kScalar);
  EXPECT_EQ(blas::bundle_isa_active(), blas::BundleIsa::kScalar);
  // Every tier at or below the CPU's best is selected exactly; wider
  // requests clamp to best (kAvx512 is the widest tier, so the clamp of
  // forcing it is best itself on every machine).
  for (const blas::BundleIsa isa :
       {blas::BundleIsa::kScalar, blas::BundleIsa::kAvx2,
        blas::BundleIsa::kAvx512}) {
    const blas::BundleIsa got = blas::bundle_isa_force(isa);
    if (static_cast<int>(isa) <= static_cast<int>(best))
      EXPECT_EQ(got, isa) << blas::to_string(isa);
    else
      EXPECT_EQ(got, best) << blas::to_string(isa);
    EXPECT_EQ(blas::bundle_isa_active(), got);
  }
  EXPECT_EQ(blas::bundle_isa_force(blas::BundleIsa::kAvx512), best);
  // Tier names are stable (bench table keys).
  EXPECT_STREQ(blas::to_string(blas::BundleIsa::kScalar), "scalar");
  EXPECT_STREQ(blas::to_string(blas::BundleIsa::kAvx2), "avx2");
  EXPECT_STREQ(blas::to_string(blas::BundleIsa::kAvx512), "avx512");
  // Restore auto dispatch for the rest of the suite.
  EXPECT_EQ(blas::bundle_isa_force(best), best);
  EXPECT_EQ(blas::bundle_isa_active(), best);
}

TEST(Trsv, ZeroDiagonalThrows) {
  std::vector<value_t> l = {0.0, 1.0, 0.0, 1.0};
  std::vector<value_t> x = {1.0, 1.0};
  EXPECT_THROW(blas::trsv_lower(2, l.data(), 2, x.data()), numerical_error);
  EXPECT_THROW(blas::trsm_right_lower_trans(1, 2, l.data(), 2, x.data(), 1),
               numerical_error);
}

}  // namespace
}  // namespace sympiler
