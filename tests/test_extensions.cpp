// Tests for the section-3.3 extensions: Gilbert-Peierls LU, incomplete
// Cholesky IC(0), and the level-set parallel executors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/inspector.h"
#include "gen/generators.h"
#include "lu/ic0.h"
#include "lu/lu.h"
#include "parallel/levelset.h"
#include "solvers/simplicial.h"
#include "solvers/trisolve.h"
#include "sparse/dense.h"
#include "sparse/ops.h"

namespace sympiler {
namespace {

// --- LU -------------------------------------------------------------------

class LuCases : public ::testing::TestWithParam<int> {};

CscMatrix lu_matrix(int c) {
  // Unsymmetric variants built from symmetric generators plus a skew
  // perturbation that preserves diagonal dominance.
  CscMatrix lower = [&] {
    switch (c) {
      case 0: return gen::grid2d_laplacian(9, 9);
      case 1: return gen::random_spd(120, 2.0, 31);
      case 2: return gen::power_grid(150, 30, 3);
      default: return gen::banded_spd(80, 5, 8);
    }
  }();
  CscMatrix full = symmetric_full_from_lower(lower);
  // Scale strictly-upper entries to break symmetry.
  for (index_t j = 0; j < full.cols(); ++j)
    for (index_t p = full.col_begin(j); p < full.col_end(j); ++p)
      if (full.rowind[p] < j) full.values[p] *= 0.75;
  return full;
}

TEST_P(LuCases, FactorReconstructsMatrix) {
  const CscMatrix a = lu_matrix(GetParam());
  lu::LuFactor f(a);
  f.factorize(a);
  // Dense check of L*U == A (cases are small).
  const DenseMatrix dl = DenseMatrix::from_csc(f.lower());
  const DenseMatrix du = DenseMatrix::from_csc(f.upper());
  const DenseMatrix da = DenseMatrix::from_csc(a);
  const index_t n = a.cols();
  double err = 0.0;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      value_t s = 0.0;
      for (index_t k = 0; k <= std::min(i, j); ++k) s += dl(i, k) * du(k, j);
      err = std::max(err, std::abs(s - da(i, j)));
    }
  EXPECT_LT(err, 1e-8);
}

TEST_P(LuCases, SolveResidual) {
  const CscMatrix a = lu_matrix(GetParam());
  lu::LuFactor f(a);
  f.factorize(a);
  const std::vector<value_t> b = gen::dense_rhs(a.cols(), 5);
  std::vector<value_t> x(b);
  f.solve(x);
  EXPECT_LT(residual_inf_norm(a, x, b), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Cases, LuCases, ::testing::Range(0, 4));

TEST(Lu, UnitLowerDiagonal) {
  const CscMatrix a = lu_matrix(0);
  lu::LuFactor f(a);
  f.factorize(a);
  for (index_t j = 0; j < a.cols(); ++j)
    EXPECT_DOUBLE_EQ(f.lower().at(j, j), 1.0);
}

TEST(Lu, SymmetricSpdMatchesCholeskyPattern) {
  // On an SPD matrix (symmetrized), nnz(L_lu) must equal nnz(L_chol): GP
  // reachability and the etree fill theory agree.
  const CscMatrix lower = gen::grid2d_laplacian(8, 8);
  const CscMatrix full = symmetric_full_from_lower(lower);
  lu::LuFactor f(full);
  const SymbolicFactor sym = symbolic_cholesky(lower);
  EXPECT_EQ(f.lower().nnz(), sym.fill_nnz);
}

TEST(Lu, ZeroPivotThrows) {
  // Singular: elimination drives the second pivot to exactly zero.
  std::vector<Triplet> trip = {{0, 0, 1.0}, {1, 1, 1.0}, {1, 0, 1.0},
                               {0, 1, 1.0}};
  const CscMatrix a = CscMatrix::from_triplets(2, 2, trip);
  lu::LuFactor f(a);
  EXPECT_THROW(f.factorize(a), numerical_error);
}

TEST(Lu, RefactorizeWithNewValues) {
  CscMatrix a = lu_matrix(2);
  lu::LuFactor f(a);
  f.factorize(a);
  for (auto& v : a.values) v *= 3.0;
  f.factorize(a);
  const std::vector<value_t> b = gen::dense_rhs(a.cols(), 9);
  std::vector<value_t> x(b);
  f.solve(x);
  EXPECT_LT(residual_inf_norm(a, x, b), 1e-8);
}

// --- IC(0) ------------------------------------------------------------

TEST(Ic0, ExactOnNoFillMatrix) {
  // A tridiagonal SPD matrix factors with zero fill, so IC(0) == complete.
  const CscMatrix a = gen::banded_spd(50, 1, 3);
  lu::IncompleteCholesky0 ic(a);
  ic.factorize(a);
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  ASSERT_TRUE(ic.factor().same_pattern(chol.factor()));
  for (index_t p = 0; p < ic.factor().nnz(); ++p)
    EXPECT_NEAR(ic.factor().values[p], chol.factor().values[p], 1e-10);
}

TEST(Ic0, PatternIsExactlyTrilA) {
  const CscMatrix a = gen::grid2d_laplacian(10, 10);
  lu::IncompleteCholesky0 ic(a);
  ic.factorize(a);
  EXPECT_TRUE(ic.factor().same_pattern(a));
}

TEST(Ic0, MatchesFactorOnStoredPattern) {
  // On the stored pattern, LL^T must reproduce A exactly (the defining
  // property of IC(0) for M-matrices).
  const CscMatrix a = gen::grid2d_laplacian(9, 9);
  lu::IncompleteCholesky0 ic(a);
  ic.factorize(a);
  const CscMatrix& l = ic.factor();
  const CscMatrix lt = transpose(l);
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      const index_t i = a.rowind[p];
      // (L L^T)(i,j) = sum_k L(i,k) L(j,k).
      value_t s = 0.0;
      for (index_t q = lt.col_begin(j); q < lt.col_end(j); ++q) {
        const index_t k = lt.rowind[q];
        s += l.at(i, k) * lt.values[q];
      }
      EXPECT_NEAR(s, a.values[p], 1e-9) << i << "," << j;
    }
  }
}

TEST(Ic0, PreconditionedResidualDecreases) {
  // One application of the IC(0) preconditioner must reduce the residual
  // of a Richardson step dramatically on a diagonally dominant system.
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  lu::IncompleteCholesky0 ic(a);
  ic.factorize(a);
  const index_t n = a.cols();
  const std::vector<value_t> b = gen::dense_rhs(n, 2);
  std::vector<value_t> z(b);
  ic.apply(z);  // z ~ A^{-1} b
  EXPECT_LT(residual_inf_norm_symmetric_lower(a, z, b),
            0.5 * *std::max_element(b.begin(), b.end(),
                                    [](value_t p, value_t q) {
                                      return std::abs(p) < std::abs(q);
                                    }));
}

// --- Level-set parallel executors --------------------------------------

TEST(LevelSet, ColumnScheduleIsValidTopologicalPartition) {
  const CscMatrix a = gen::grid2d_laplacian(11, 11);
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  const CscMatrix& l = chol.factor();
  const parallel::LevelSchedule s = parallel::level_schedule_columns(l);
  ASSERT_EQ(static_cast<index_t>(s.items.size()), l.cols());
  std::vector<index_t> level_of(static_cast<std::size_t>(l.cols()));
  for (index_t lev = 0; lev < s.levels(); ++lev)
    for (index_t t = s.level_ptr[lev]; t < s.level_ptr[lev + 1]; ++t)
      level_of[s.items[t]] = lev;
  for (index_t j = 0; j < l.cols(); ++j)
    for (index_t p = l.col_begin(j) + 1; p < l.col_end(j); ++p)
      EXPECT_LT(level_of[j], level_of[l.rowind[p]]);
}

TEST(LevelSet, ParallelTrisolveMatchesSequentialBitwise) {
  const CscMatrix a = gen::grid2d_laplacian(15, 15);
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  const CscMatrix& l = chol.factor();
  const parallel::LevelSchedule s = parallel::level_schedule_columns(l);
  const parallel::UpdateSlotMap umap = parallel::update_slots_columns(l);
  std::vector<value_t> terms(static_cast<std::size_t>(umap.slots()));
  const std::vector<value_t> b = gen::dense_rhs(l.cols(), 4);
  std::vector<value_t> x_par(b), x_seq(b);
  parallel::parallel_trisolve(l, s, umap, x_par, terms);
  solvers::trisolve_naive(l, x_seq);
  // Level-private accumulation folds each row's updates in the serial
  // column order: the parallel solve is bit-identical, not merely close.
  for (index_t i = 0; i < l.cols(); ++i) EXPECT_EQ(x_par[i], x_seq[i]) << i;
}

TEST(LevelSet, ParallelCholeskyMatchesSequential) {
  for (int c = 0; c < 3; ++c) {
    const CscMatrix a = c == 0   ? gen::grid2d_laplacian(14, 14)
                        : c == 1 ? gen::block_structural(7, 7, 3, 5)
                                 : gen::random_spd(200, 3.0, 9);
    core::SympilerOptions opt;
    opt.vsblock_min_avg_size = 0.0;
    opt.vsblock_min_avg_width = 0.0;
    const core::CholeskySets sets = core::inspect_cholesky(a, opt);
    const parallel::LevelSchedule sched = parallel::level_schedule_supernodes(
        sets.blocks, sets.sym.parent);
    std::vector<value_t> panels(
        static_cast<std::size_t>(sets.layout.total_values()));
    parallel::parallel_cholesky(sets, sched, a, panels);
    const CscMatrix l = panels_to_csc(sets.layout, panels);
    solvers::SimplicialCholesky ref(a);
    ref.factorize(a);
    ASSERT_TRUE(l.same_pattern(ref.factor()));
    for (index_t p = 0; p < l.nnz(); ++p)
      ASSERT_NEAR(l.values[p], ref.factor().values[p], 1e-8)
          << "case " << c << " nz " << p;
  }
}

TEST(LevelSet, SupernodeScheduleRespectsEtree) {
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  const core::CholeskySets sets = core::inspect_cholesky(a);
  const parallel::LevelSchedule sched = parallel::level_schedule_supernodes(
      sets.blocks, sets.sym.parent);
  const std::vector<index_t> sparent =
      supernode_etree(sets.blocks, sets.sym.parent);
  std::vector<index_t> level_of(sparent.size());
  for (index_t lev = 0; lev < sched.levels(); ++lev)
    for (index_t t = sched.level_ptr[lev]; t < sched.level_ptr[lev + 1]; ++t)
      level_of[sched.items[t]] = lev;
  for (std::size_t s = 0; s < sparent.size(); ++s)
    if (sparent[s] != -1) EXPECT_LT(level_of[s], level_of[sparent[s]]);
}

}  // namespace
}  // namespace sympiler
