// End-to-end codegen tests: the generated C must compile (via the JIT) and
// produce bit-identical results to the executor path, across option
// combinations and pattern regimes.
#include <gtest/gtest.h>

#include "api/solver.h"
#include "core/cholesky_executor.h"
#include "core/codegen.h"
#include "core/jit.h"
#include "core/plan_compiler.h"
#include "core/symbolic_cache.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "solvers/simplicial.h"
#include "solvers/trisolve.h"
#include "sparse/ops.h"

#ifdef SYMPILER_HAS_OPENMP
#include <omp.h>
#endif

namespace sympiler::core {
namespace {

CscMatrix factor_of(const CscMatrix& a) {
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  return chol.factor();
}

TEST(Codegen, TrisolveSourceShape) {
  const CscMatrix a = gen::grid2d_laplacian(8, 8);
  const CscMatrix l = factor_of(a);
  const std::vector<value_t> b = gen::sparse_rhs(l.cols(), 2, 7);
  std::vector<index_t> beta;
  for (index_t i = 0; i < l.cols(); ++i)
    if (b[i] != 0.0) beta.push_back(i);

  SympilerOptions opt;
  opt.vs_block = false;
  const GeneratedKernel k = generate_trisolve(l, beta, opt);
  EXPECT_NE(k.source.find("static const int pruneSet"), std::string::npos);
  EXPECT_NE(k.source.find("extern \"C\" void sym_trisolve"),
            std::string::npos);
  EXPECT_NE(k.source.find("peeled iteration"), std::string::npos);
}

struct CodegenCase {
  int matrix_case;
  bool vs_block;
  bool low_level;
};

CscMatrix codegen_matrix(int c) {
  switch (c) {
    case 0: return gen::grid2d_laplacian(9, 9);
    case 1: return gen::block_structural(5, 5, 3, 3);
    case 2: return gen::random_spd(120, 2.0, 11);
    default: return gen::banded_spd(60, 7, 2);
  }
}

class TrisolveJit : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TrisolveJit, GeneratedCodeMatchesExecutor) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  const auto [c, combo] = GetParam();
  const CscMatrix a = codegen_matrix(c);
  const CscMatrix l = factor_of(a);
  const index_t n = l.cols();
  const std::vector<value_t> b = gen::sparse_rhs(n, 1 + n / 40, 31 + c);
  std::vector<index_t> beta;
  for (index_t i = 0; i < n; ++i)
    if (b[i] != 0.0) beta.push_back(i);

  SympilerOptions opt;
  opt.vs_block = combo & 1;
  opt.low_level = combo & 2;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;  // force VS-Block on when enabled

  const GeneratedKernel k = generate_trisolve(l, beta, opt);
  const JitModule mod = JitModule::compile(k.source, k.symbol);
  const auto fn = mod.entry<TriSolveFn>();

  std::vector<value_t> x_jit(b);
  fn(l.colptr.data(), l.rowind.data(), l.values.data(), x_jit.data());

  TriSolveExecutor exec(l, beta, opt);
  std::vector<value_t> x_exec(b);
  exec.solve(x_exec);

  for (index_t i = 0; i < n; ++i) {
    if (!opt.low_level) {
      // Identical schedule => bit-identical results.
      ASSERT_EQ(x_jit[i], x_exec[i])
          << "case " << c << " combo " << combo << " at " << i;
    } else {
      // The executor's low-level tail kernel pairs columns (reassociates
      // the sums); agreement up to rounding.
      ASSERT_NEAR(x_jit[i], x_exec[i], 1e-12 + 1e-12 * std::abs(x_exec[i]))
          << "case " << c << " combo " << combo << " at " << i;
    }
  }
  EXPECT_LT(residual_inf_norm(l, x_jit, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TrisolveJit,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

class CholeskyJit : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CholeskyJit, GeneratedCodeMatchesExecutor) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  const auto [c, combo] = GetParam();
  const CscMatrix a = codegen_matrix(c);

  SympilerOptions opt;
  opt.vs_block = combo & 1;
  opt.low_level = combo & 2;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;

  const CholeskySets sets = inspect_cholesky(a, opt);
  const GeneratedKernel k = generate_cholesky(sets, opt);
  const JitModule mod = JitModule::compile(k.source, k.symbol);
  const auto fn = mod.entry<CholeskyFn>();

  const index_t n = a.cols();
  CscMatrix l_jit;
  if (sets.vs_block_profitable) {
    std::vector<value_t> panels(
        static_cast<std::size_t>(sets.layout.total_values()));
    index_t max_m = 0, max_w = 0;
    for (index_t s = 0; s < sets.layout.nsuper(); ++s) {
      max_m = std::max(max_m, sets.layout.nrows(s));
      max_w = std::max(max_w, sets.layout.width(s));
    }
    std::vector<value_t> work(static_cast<std::size_t>(max_m) * max_w);
    std::vector<int> map(static_cast<std::size_t>(n));
    ASSERT_EQ(fn(a.colptr.data(), a.rowind.data(), a.values.data(),
                 panels.data(), work.data(), map.data()),
              0);
    l_jit = panels_to_csc(sets.layout, panels);
  } else {
    CscMatrix l = sets.sym.l_pattern;
    std::vector<value_t> f(static_cast<std::size_t>(n), 0.0);
    std::vector<int> next(static_cast<std::size_t>(n), 0);
    ASSERT_EQ(fn(a.colptr.data(), a.rowind.data(), a.values.data(),
                 l.values.data(), f.data(), next.data()),
              0);
    l_jit = std::move(l);
  }

  CholeskyExecutor exec(a, opt);
  exec.factorize(a);
  const CscMatrix l_exec = exec.factor_csc();
  ASSERT_TRUE(l_jit.same_pattern(l_exec));
  for (index_t p = 0; p < l_jit.nnz(); ++p)
    ASSERT_NEAR(l_jit.values[p], l_exec.values[p], 1e-10)
        << "case " << c << " combo " << combo << " nz " << p;
  EXPECT_LT(llt_residual_inf_norm(l_jit, a), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CholeskyJit,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

TEST(CholeskyJitErrors, NonSpdReturnsMinusOne) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  std::vector<Triplet> trip = {{0, 0, 1.0}, {1, 0, 5.0}, {1, 1, 1.0}};
  const CscMatrix a = CscMatrix::from_triplets(2, 2, trip);
  SympilerOptions opt;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;
  const CholeskySets sets = inspect_cholesky(a, opt);
  const GeneratedKernel k = generate_cholesky(sets, opt);
  const JitModule mod = JitModule::compile(k.source, k.symbol);
  const auto fn = mod.entry<CholeskyFn>();
  std::vector<value_t> panels(
      static_cast<std::size_t>(sets.layout.total_values()));
  std::vector<value_t> work(16);
  std::vector<int> map(2);
  EXPECT_EQ(fn(a.colptr.data(), a.rowind.data(), a.values.data(),
               panels.data(), work.data(), map.data()),
            -1);
}

// ---------------------------------------------------------------------------
// Plan-compiled kernels (plan_compiler.h): lowering a cached ExecutionPlan
// to pattern-specialized C must be bit-identical to interpreting the same
// plan — the interpreter-vs-JIT equivalence gate of the repo's bit-identity
// contract.

std::shared_ptr<const CholeskyPlan> sequential_cholesky_plan(
    const CscMatrix& a, const SympilerOptions& opt) {
  PlannerConfig config;
  config.options = opt;
  config.enable_parallel = false;
  return std::make_shared<const CholeskyPlan>(
      Planner(config).plan_cholesky(a));
}

std::shared_ptr<const TriSolvePlan> sequential_trisolve_plan(
    const CscMatrix& l, std::span<const index_t> beta,
    const SympilerOptions& opt) {
  PlannerConfig config;
  config.options = opt;
  config.enable_parallel = false;
  return std::make_shared<const TriSolvePlan>(
      Planner(config).plan_trisolve(l, beta));
}

class PlanCompiledCholesky
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlanCompiledCholesky, KernelBitIdenticalToInterpreter) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  const auto [c, combo] = GetParam();
  const CscMatrix a = codegen_matrix(c);
  const index_t n = a.cols();

  SympilerOptions opt;
  opt.vs_block = combo & 1;
  opt.low_level = combo & 2;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;  // force VS-Block on when enabled

  const auto plan = sequential_cholesky_plan(a, opt);
  ASSERT_TRUE(plan->evidence.jit_eligible);
  ASSERT_TRUE(PlanCompiler::eligible(*plan));
  CholeskyExecutor exec(plan);

  // Interpreter baselines first: factor values, one solve, one batch.
  exec.factorize(a);
  const CscMatrix l_interp = exec.factor_csc();
  const std::vector<value_t> b = gen::dense_rhs(n, 7 + c);
  std::vector<value_t> x_interp(b);
  exec.solve(x_interp);
  constexpr index_t kRhs = 3;
  std::vector<value_t> batch_base;
  for (index_t r = 0; r < kRhs; ++r) {
    const std::vector<value_t> col = gen::dense_rhs(n, 100 + r);
    batch_base.insert(batch_base.end(), col.begin(), col.end());
  }
  std::vector<value_t> batch_interp(batch_base);
  exec.solve_batch(batch_interp, kRhs);

  // Lower the plan; the same executor adopts the kernel on its next call.
  const auto kernel = PlanCompiler::compile(*plan);
  ASSERT_NE(kernel, nullptr) << plan->jit->failure();
  exec.factorize(a);
  const CscMatrix l_jit = exec.factor_csc();
  ASSERT_TRUE(l_jit.same_pattern(l_interp));
  for (index_t p = 0; p < l_jit.nnz(); ++p)
    ASSERT_EQ(l_jit.values[p], l_interp.values[p])
        << "case " << c << " combo " << combo << " nz " << p;

  std::vector<value_t> x_jit(b);
  exec.solve(x_jit);
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(x_jit[i], x_interp[i]);
  std::vector<value_t> batch_jit(batch_base);
  exec.solve_batch(batch_jit, kRhs);
  for (std::size_t i = 0; i < batch_jit.size(); ++i)
    ASSERT_EQ(batch_jit[i], batch_interp[i]);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlanCompiledCholesky,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

class PlanCompiledTriSolve
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlanCompiledTriSolve, KernelBitIdenticalToInterpreter) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  const auto [c, combo] = GetParam();
  const CscMatrix a = codegen_matrix(c);
  const CscMatrix l = factor_of(a);
  const index_t n = l.cols();
  const std::vector<value_t> b = gen::sparse_rhs(n, 1 + n / 40, 31 + c);
  std::vector<index_t> beta;
  for (index_t i = 0; i < n; ++i)
    if (b[i] != 0.0) beta.push_back(i);

  SympilerOptions opt;
  opt.vs_block = combo & 1;
  opt.low_level = combo & 2;
  // Tie VI-Prune to the low-level bit: the four combos then cover all four
  // emitted shapes — naive, blocked-unpruned, pruned, blocked+pruned.
  opt.vi_prune = (combo & 2) != 0;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;

  const auto plan = sequential_trisolve_plan(l, beta, opt);
  ASSERT_TRUE(plan->evidence.jit_eligible);
  TriSolveExecutor exec(plan, l);

  std::vector<value_t> x_interp(b);
  exec.solve(x_interp);
  constexpr index_t kRhs = 3;
  std::vector<value_t> batch_base;
  for (index_t r = 0; r < kRhs; ++r)
    for (index_t i = 0; i < n; ++i)
      batch_base.push_back(b[i] * static_cast<value_t>(r + 1));
  std::vector<value_t> batch_interp(batch_base);
  exec.solve_batch(batch_interp, kRhs);

  const auto kernel = PlanCompiler::compile(*plan, l);
  ASSERT_NE(kernel, nullptr) << plan->jit->failure();
  std::vector<value_t> x_jit(b);
  exec.solve(x_jit);
  for (index_t i = 0; i < n; ++i)
    ASSERT_EQ(x_jit[i], x_interp[i])
        << "case " << c << " combo " << combo << " at " << i;
  std::vector<value_t> batch_jit(batch_base);
  exec.solve_batch(batch_jit, kRhs);
  for (std::size_t i = 0; i < batch_jit.size(); ++i)
    ASSERT_EQ(batch_jit[i], batch_interp[i]);
  EXPECT_LT(residual_inf_norm(l, x_jit, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlanCompiledTriSolve,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

TEST(PlanCompiledDispatch, FacadeBitIdenticalToInterpreterAcrossThreads) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  for (int c = 0; c < 4; ++c) {
    const CscMatrix a = codegen_matrix(c);
    const index_t n = a.cols();
    const std::vector<value_t> b = gen::dense_rhs(n, 13 + c);

    // Private contexts so the two solvers cannot share a plan: the
    // baseline must actually interpret.
    api::SolverConfig off;
    api::Solver interp(off, std::make_shared<api::SymbolicContext>());
    interp.factor(a);
    const CscMatrix l_interp = interp.factor_csc();
    std::vector<value_t> x_interp(b);
    interp.solve(x_interp);

    api::SolverConfig jit;
    jit.options.jit = core::JitMode::kAlways;
    api::Solver compiled(jit, std::make_shared<api::SymbolicContext>());
    for (const int threads : {1, 2, 4}) {
#ifdef SYMPILER_HAS_OPENMP
      omp_set_num_threads(threads);
#else
      (void)threads;
#endif
      compiled.factor(a);
      if (compiled.plan()->evidence.jit_eligible)
        ASSERT_NE(compiled.plan()->jit->kernel(), nullptr)
            << compiled.plan()->jit->failure();
      const CscMatrix l_jit = compiled.factor_csc();
      ASSERT_TRUE(l_jit.same_pattern(l_interp));
      for (index_t p = 0; p < l_jit.nnz(); ++p)
        ASSERT_EQ(l_jit.values[p], l_interp.values[p])
            << "case " << c << " threads " << threads << " nz " << p;
      std::vector<value_t> x_jit(b);
      compiled.solve(x_jit);
      for (index_t i = 0; i < n; ++i)
        ASSERT_EQ(x_jit[i], x_interp[i])
            << "case " << c << " threads " << threads << " row " << i;
    }
  }
}

TEST(PlanCompiledDispatch, WarmModeCompilesAtConfiguredUseCount) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  const CscMatrix a = codegen_matrix(0);
  api::SolverConfig config;
  config.options.jit = core::JitMode::kWarm;
  config.options.jit_warm_calls = 2;
  api::Solver solver(config, std::make_shared<api::SymbolicContext>());
  solver.factor(a);
  ASSERT_TRUE(solver.plan()->evidence.jit_eligible);
  EXPECT_EQ(solver.plan()->jit->kernel(), nullptr)
      << "kWarm must interpret the cold call";
  solver.factor(a);
  EXPECT_NE(solver.plan()->jit->kernel(), nullptr)
      << solver.plan()->jit->failure();
}

TEST(PlanCompiledDispatch, OffModeNeverCompiles) {
  const CscMatrix a = codegen_matrix(0);
  api::Solver solver({}, std::make_shared<api::SymbolicContext>());
  for (int i = 0; i < 3; ++i) solver.factor(a);
  EXPECT_EQ(solver.plan()->jit->kernel(), nullptr);
  EXPECT_FALSE(solver.plan()->jit->failed());
}

TEST(PlanCompiledDispatch, SourceCapRecordsPermanentFailure) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  const CscMatrix a = codegen_matrix(0);
  const auto plan = sequential_cholesky_plan(a, {});
  EXPECT_EQ(PlanCompiler::compile(*plan, /*max_source_bytes=*/64), nullptr);
  EXPECT_TRUE(plan->jit->failed());
  EXPECT_NE(plan->jit->failure().find("exceeds"), std::string::npos);
  // Failure is permanent: an uncapped retry must not override it.
  EXPECT_EQ(PlanCompiler::compile(*plan), nullptr);
}

TEST(PlanCompiledCache, RefreshBytesWeighsArtifactWithPlan) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  const CscMatrix a = codegen_matrix(2);
  PlannerConfig config;
  config.enable_parallel = false;
  const Planner planner(config);
  const PatternKey key = planner.cholesky_key(a);

  CholeskyCache cache(CholeskyCache::kDefaultByteBudget, 1);
  auto lookup = cache.get_or_build(key, [&] { return planner.plan_cholesky(a); });
  const std::size_t before = cache.resident_bytes();
  const auto kernel = PlanCompiler::compile(*lookup.plan);
  ASSERT_NE(kernel, nullptr) << lookup.plan->jit->failure();
  // The entry weight was sampled at insert; publishing grew the plan but
  // the ledger does not see it until refresh.
  EXPECT_EQ(cache.resident_bytes(), before);
  cache.refresh_bytes(key);
  EXPECT_EQ(cache.resident_bytes(), lookup.plan->bytes());
  EXPECT_GE(cache.resident_bytes(), before + kernel->bytes());
}

TEST(PlanCompiledCache, EvictionDropsArtifactWithItsPlan) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  const CscMatrix a = codegen_matrix(0);
  const CscMatrix a2 = codegen_matrix(3);
  PlannerConfig config;
  config.enable_parallel = false;
  const Planner planner(config);
  const PatternKey key = planner.cholesky_key(a);
  const PatternKey key2 = planner.cholesky_key(a2);

  // Tiny budget, one shard: any second entry forces an eviction, and the
  // MRU rule makes the older (compiled) entry the victim.
  CholeskyCache cache(/*byte_budget=*/4096, /*shards=*/1);
  std::weak_ptr<const CompiledKernel> observed;
  {
    auto lookup =
        cache.get_or_build(key, [&] { return planner.plan_cholesky(a); });
    auto kernel = PlanCompiler::compile(*lookup.plan);
    ASSERT_NE(kernel, nullptr) << lookup.plan->jit->failure();
    cache.refresh_bytes(key);
    observed = kernel;
    EXPECT_FALSE(observed.expired());
  }
  auto lookup2 =
      cache.get_or_build(key2, [&] { return planner.plan_cholesky(a2); });
  EXPECT_FALSE(cache.find(key).hit) << "compiled plan should have been evicted";
  // All borrower references are gone and the cache dropped the plan, so
  // the dlopen'd artifact must have been released with it.
  EXPECT_TRUE(observed.expired());
}

TEST(PlanCompilerSource, SimplicialBakesReplayedCursors) {
  const CscMatrix a = codegen_matrix(0);
  SympilerOptions opt;
  opt.vs_block = false;
  const auto plan = sequential_cholesky_plan(a, opt);
  ASSERT_EQ(plan->path, ExecutionPath::Simplicial);
  const std::string source = PlanCompiler::emit(*plan);
  EXPECT_NE(source.find("updStart"), std::string::npos);
  EXPECT_NE(source.find(PlanCompiler::kCholeskySymbol), std::string::npos);
  EXPECT_NE(source.find("-ffp-contract=off"), std::string::npos);
}

TEST(Jit, CompileErrorSurfacesCompilerMessage) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  EXPECT_THROW(
      { auto m = JitModule::compile("this is not C++", "nope"); },
      std::runtime_error);
}

TEST(Jit, MissingSymbolThrows) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  EXPECT_THROW(
      {
        auto m = JitModule::compile("extern \"C\" void f() {}", "missing");
      },
      std::runtime_error);
}

}  // namespace
}  // namespace sympiler::core
