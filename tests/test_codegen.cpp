// End-to-end codegen tests: the generated C must compile (via the JIT) and
// produce bit-identical results to the executor path, across option
// combinations and pattern regimes.
#include <gtest/gtest.h>

#include "core/cholesky_executor.h"
#include "core/codegen.h"
#include "core/jit.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "solvers/simplicial.h"
#include "solvers/trisolve.h"
#include "sparse/ops.h"

namespace sympiler::core {
namespace {

CscMatrix factor_of(const CscMatrix& a) {
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  return chol.factor();
}

TEST(Codegen, TrisolveSourceShape) {
  const CscMatrix a = gen::grid2d_laplacian(8, 8);
  const CscMatrix l = factor_of(a);
  const std::vector<value_t> b = gen::sparse_rhs(l.cols(), 2, 7);
  std::vector<index_t> beta;
  for (index_t i = 0; i < l.cols(); ++i)
    if (b[i] != 0.0) beta.push_back(i);

  SympilerOptions opt;
  opt.vs_block = false;
  const GeneratedKernel k = generate_trisolve(l, beta, opt);
  EXPECT_NE(k.source.find("static const int pruneSet"), std::string::npos);
  EXPECT_NE(k.source.find("extern \"C\" void sym_trisolve"),
            std::string::npos);
  EXPECT_NE(k.source.find("peeled iteration"), std::string::npos);
}

struct CodegenCase {
  int matrix_case;
  bool vs_block;
  bool low_level;
};

CscMatrix codegen_matrix(int c) {
  switch (c) {
    case 0: return gen::grid2d_laplacian(9, 9);
    case 1: return gen::block_structural(5, 5, 3, 3);
    case 2: return gen::random_spd(120, 2.0, 11);
    default: return gen::banded_spd(60, 7, 2);
  }
}

class TrisolveJit : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TrisolveJit, GeneratedCodeMatchesExecutor) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  const auto [c, combo] = GetParam();
  const CscMatrix a = codegen_matrix(c);
  const CscMatrix l = factor_of(a);
  const index_t n = l.cols();
  const std::vector<value_t> b = gen::sparse_rhs(n, 1 + n / 40, 31 + c);
  std::vector<index_t> beta;
  for (index_t i = 0; i < n; ++i)
    if (b[i] != 0.0) beta.push_back(i);

  SympilerOptions opt;
  opt.vs_block = combo & 1;
  opt.low_level = combo & 2;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;  // force VS-Block on when enabled

  const GeneratedKernel k = generate_trisolve(l, beta, opt);
  const JitModule mod = JitModule::compile(k.source, k.symbol);
  const auto fn = mod.entry<TriSolveFn>();

  std::vector<value_t> x_jit(b);
  fn(l.colptr.data(), l.rowind.data(), l.values.data(), x_jit.data());

  TriSolveExecutor exec(l, beta, opt);
  std::vector<value_t> x_exec(b);
  exec.solve(x_exec);

  for (index_t i = 0; i < n; ++i) {
    if (!opt.low_level) {
      // Identical schedule => bit-identical results.
      ASSERT_EQ(x_jit[i], x_exec[i])
          << "case " << c << " combo " << combo << " at " << i;
    } else {
      // The executor's low-level tail kernel pairs columns (reassociates
      // the sums); agreement up to rounding.
      ASSERT_NEAR(x_jit[i], x_exec[i], 1e-12 + 1e-12 * std::abs(x_exec[i]))
          << "case " << c << " combo " << combo << " at " << i;
    }
  }
  EXPECT_LT(residual_inf_norm(l, x_jit, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TrisolveJit,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

class CholeskyJit : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CholeskyJit, GeneratedCodeMatchesExecutor) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  const auto [c, combo] = GetParam();
  const CscMatrix a = codegen_matrix(c);

  SympilerOptions opt;
  opt.vs_block = combo & 1;
  opt.low_level = combo & 2;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;

  const CholeskySets sets = inspect_cholesky(a, opt);
  const GeneratedKernel k = generate_cholesky(sets, opt);
  const JitModule mod = JitModule::compile(k.source, k.symbol);
  const auto fn = mod.entry<CholeskyFn>();

  const index_t n = a.cols();
  CscMatrix l_jit;
  if (sets.vs_block_profitable) {
    std::vector<value_t> panels(
        static_cast<std::size_t>(sets.layout.total_values()));
    index_t max_m = 0, max_w = 0;
    for (index_t s = 0; s < sets.layout.nsuper(); ++s) {
      max_m = std::max(max_m, sets.layout.nrows(s));
      max_w = std::max(max_w, sets.layout.width(s));
    }
    std::vector<value_t> work(static_cast<std::size_t>(max_m) * max_w);
    std::vector<int> map(static_cast<std::size_t>(n));
    ASSERT_EQ(fn(a.colptr.data(), a.rowind.data(), a.values.data(),
                 panels.data(), work.data(), map.data()),
              0);
    l_jit = panels_to_csc(sets.layout, panels);
  } else {
    CscMatrix l = sets.sym.l_pattern;
    std::vector<value_t> f(static_cast<std::size_t>(n), 0.0);
    std::vector<int> next(static_cast<std::size_t>(n), 0);
    ASSERT_EQ(fn(a.colptr.data(), a.rowind.data(), a.values.data(),
                 l.values.data(), f.data(), next.data()),
              0);
    l_jit = std::move(l);
  }

  CholeskyExecutor exec(a, opt);
  exec.factorize(a);
  const CscMatrix l_exec = exec.factor_csc();
  ASSERT_TRUE(l_jit.same_pattern(l_exec));
  for (index_t p = 0; p < l_jit.nnz(); ++p)
    ASSERT_NEAR(l_jit.values[p], l_exec.values[p], 1e-10)
        << "case " << c << " combo " << combo << " nz " << p;
  EXPECT_LT(llt_residual_inf_norm(l_jit, a), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CholeskyJit,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

TEST(CholeskyJitErrors, NonSpdReturnsMinusOne) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  std::vector<Triplet> trip = {{0, 0, 1.0}, {1, 0, 5.0}, {1, 1, 1.0}};
  const CscMatrix a = CscMatrix::from_triplets(2, 2, trip);
  SympilerOptions opt;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;
  const CholeskySets sets = inspect_cholesky(a, opt);
  const GeneratedKernel k = generate_cholesky(sets, opt);
  const JitModule mod = JitModule::compile(k.source, k.symbol);
  const auto fn = mod.entry<CholeskyFn>();
  std::vector<value_t> panels(
      static_cast<std::size_t>(sets.layout.total_values()));
  std::vector<value_t> work(16);
  std::vector<int> map(2);
  EXPECT_EQ(fn(a.colptr.data(), a.rowind.data(), a.values.data(),
               panels.data(), work.data(), map.data()),
            -1);
}

TEST(Jit, CompileErrorSurfacesCompilerMessage) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  EXPECT_THROW(
      { auto m = JitModule::compile("this is not C++", "nope"); },
      std::runtime_error);
}

TEST(Jit, MissingSymbolThrows) {
  if (!JitModule::compiler_available()) GTEST_SKIP() << "no host compiler";
  EXPECT_THROW(
      {
        auto m = JitModule::compile("extern \"C\" void f() {}", "missing");
      },
      std::runtime_error);
}

}  // namespace
}  // namespace sympiler::core
