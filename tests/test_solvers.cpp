// Tests for the library baselines: triangular solve variants (Figure 1)
// and the simplicial / supernodal Cholesky factorizations.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "gen/generators.h"
#include "graph/reach.h"
#include "graph/symbolic.h"
#include "solvers/simplicial.h"
#include "solvers/supernodal.h"
#include "solvers/trisolve.h"
#include "sparse/ops.h"

namespace sympiler {
namespace {

/// A small well-conditioned lower-triangular matrix from a Cholesky factor
/// of a generated SPD matrix.
CscMatrix small_factor(index_t grid, std::uint64_t /*seed*/) {
  const CscMatrix a = gen::grid2d_laplacian(grid, grid);
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  return chol.factor();
}

TEST(TriSolve, AllVariantsAgreeOnSparseRhs) {
  const CscMatrix l = small_factor(9, 0);
  const index_t n = l.cols();
  const std::vector<value_t> b = gen::sparse_rhs(n, 3, 13);

  std::vector<value_t> x_naive(b), x_lib(b), x_dec(b);
  solvers::trisolve_naive(l, x_naive);
  solvers::trisolve_library(l, x_lib);
  const std::vector<index_t> rs = reach_from_dense(l, b);
  solvers::trisolve_decoupled(l, rs, x_dec);

  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x_lib[i], x_naive[i], 1e-12);
    EXPECT_NEAR(x_dec[i], x_naive[i], 1e-12);
  }
  EXPECT_LT(residual_inf_norm(l, x_naive, b), 1e-10);
}

TEST(TriSolve, SolutionPatternEqualsReachSet) {
  const CscMatrix l = small_factor(8, 0);
  const index_t n = l.cols();
  const std::vector<value_t> b = gen::sparse_rhs(n, 2, 99);
  std::vector<value_t> x(b);
  solvers::trisolve_naive(l, x);
  const std::vector<index_t> rs = reach_from_dense(l, b);
  std::vector<char> in_reach(static_cast<std::size_t>(n), 0);
  for (const index_t j : rs) in_reach[j] = 1;
  for (index_t i = 0; i < n; ++i) {
    if (!in_reach[i])
      EXPECT_EQ(x[i], 0.0) << "nonzero outside the reach-set at " << i;
  }
}

TEST(TriSolve, TransposeSolve) {
  const CscMatrix l = small_factor(7, 0);
  const index_t n = l.cols();
  const std::vector<value_t> xref = gen::dense_rhs(n, 3);
  // b = L^T xref
  std::vector<value_t> b(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j)
    for (index_t p = l.col_begin(j); p < l.col_end(j); ++p)
      b[j] += l.values[p] * xref[l.rowind[p]];
  std::vector<value_t> x(b);
  solvers::trisolve_transpose(l, x);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xref[i], 1e-9);
}

TEST(TriSolve, ZeroDiagonalThrows) {
  std::vector<Triplet> trip = {{0, 0, 0.0}, {1, 1, 1.0}};
  const CscMatrix l = CscMatrix::from_triplets(2, 2, trip);
  std::vector<value_t> x = {1.0, 1.0};
  EXPECT_THROW(solvers::trisolve_naive(l, x), numerical_error);
}

TEST(TriSolve, FlopCount) {
  // Column 0 with two offdiagonals: 1 + 2*2 = 5 flops; column 1 diag only:
  // 1 flop.
  std::vector<Triplet> trip = {
      {0, 0, 1.0}, {2, 0, 1.0}, {3, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0},
      {3, 3, 1.0}};
  const CscMatrix l = CscMatrix::from_triplets(4, 4, trip);
  const std::vector<index_t> rs = {0, 1};
  EXPECT_DOUBLE_EQ(solvers::trisolve_flops(l, rs), 6.0);
}

// --- Cholesky baselines --------------------------------------------------

struct CholCase {
  const char* name;
  CscMatrix a;
};

std::vector<CholCase> cholesky_cases() {
  std::vector<CholCase> cases;
  cases.push_back({"grid2d_nd", gen::grid2d_laplacian(13, 13)});
  cases.push_back({"grid2d_natural",
                   gen::grid2d_laplacian(11, 17, gen::GridOrder::Natural)});
  cases.push_back({"grid3d", gen::grid3d_laplacian(6, 6, 6)});
  cases.push_back({"block_structural", gen::block_structural(7, 7, 3, 42)});
  cases.push_back({"random_spd", gen::random_spd(150, 3.0, 7)});
  cases.push_back({"banded", gen::banded_spd(120, 9, 21)});
  cases.push_back({"power_grid", gen::power_grid(200, 40, 5)});
  cases.push_back({"tiny", gen::grid2d_laplacian(2, 2)});
  return cases;
}

class CholeskyBaselines : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyBaselines, SimplicialFactorSatisfiesLLt) {
  CholCase c = cholesky_cases()[static_cast<std::size_t>(GetParam())];
  solvers::SimplicialCholesky chol(c.a);
  chol.factorize(c.a);
  EXPECT_LT(llt_residual_inf_norm(chol.factor(), c.a), 1e-8) << c.name;
}

TEST_P(CholeskyBaselines, SupernodalMatchesSimplicial) {
  CholCase c = cholesky_cases()[static_cast<std::size_t>(GetParam())];
  solvers::SimplicialCholesky simp(c.a);
  simp.factorize(c.a);
  solvers::SupernodalCholesky super(c.a);
  super.factorize(c.a);
  const CscMatrix ls = super.factor_csc();
  ls.validate();
  EXPECT_TRUE(ls.same_pattern(simp.factor())) << c.name;
  for (index_t p = 0; p < ls.nnz(); ++p)
    ASSERT_NEAR(ls.values[p], simp.factor().values[p], 1e-8)
        << c.name << " value index " << p;
}

TEST_P(CholeskyBaselines, SolveProducesSmallResidual) {
  CholCase c = cholesky_cases()[static_cast<std::size_t>(GetParam())];
  const index_t n = c.a.cols();
  const std::vector<value_t> b = gen::dense_rhs(n, 17);

  std::vector<value_t> x1(b);
  solvers::SimplicialCholesky simp(c.a);
  simp.factorize(c.a);
  simp.solve(x1);
  EXPECT_LT(residual_inf_norm_symmetric_lower(c.a, x1, b), 1e-8) << c.name;

  std::vector<value_t> x2(b);
  solvers::SupernodalCholesky super(c.a);
  super.factorize(c.a);
  super.solve(x2);
  EXPECT_LT(residual_inf_norm_symmetric_lower(c.a, x2, b), 1e-8) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Cases, CholeskyBaselines, ::testing::Range(0, 8));

TEST(Cholesky, NonSpdThrows) {
  // Indefinite: diagonal too small for the off-diagonal couplings.
  std::vector<Triplet> trip = {
      {0, 0, 1.0}, {1, 0, 5.0}, {1, 1, 1.0}};
  const CscMatrix a = CscMatrix::from_triplets(2, 2, trip);
  solvers::SimplicialCholesky simp(a);
  EXPECT_THROW(simp.factorize(a), numerical_error);
  solvers::SupernodalCholesky super(a);
  EXPECT_THROW(super.factorize(a), numerical_error);
}

TEST(Cholesky, SolveBeforeFactorizeThrows) {
  const CscMatrix a = gen::grid2d_laplacian(3, 3);
  solvers::SimplicialCholesky simp(a);
  std::vector<value_t> b(9, 1.0);
  EXPECT_THROW(simp.solve(b), invalid_matrix_error);
  solvers::SupernodalCholesky super(a);
  EXPECT_THROW(super.solve(b), invalid_matrix_error);
}

TEST(Cholesky, RefactorizeWithNewValuesSamePattern) {
  // The static-sparsity workflow of the paper: analyze once, refactor with
  // changed values.
  CscMatrix a = gen::grid2d_laplacian(8, 8);
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  const value_t before = chol.factor().values[0];
  for (auto& v : a.values) v *= 4.0;  // scale: L scales by 2
  chol.factorize(a);
  EXPECT_NEAR(chol.factor().values[0], 2.0 * before, 1e-12);
  EXPECT_LT(llt_residual_inf_norm(chol.factor(), a), 1e-9);
}

TEST(Supernodal, UpdateListsCoverEveryOffBlockRow) {
  const CscMatrix a = gen::grid2d_laplacian(10, 10);
  const SymbolicFactor sym = symbolic_cholesky(a);
  const SupernodePartition part =
      supernodes_cholesky(sym.parent, sym.colcount);
  const solvers::SupernodalLayout layout =
      solvers::SupernodalLayout::build(sym, part);
  const solvers::UpdateLists lists = solvers::compute_update_lists(layout);
  // Each descendant's below-diagonal rows must be covered exactly once by
  // its UpdateRefs, in order.
  std::vector<std::vector<std::pair<index_t, index_t>>> segs(
      static_cast<std::size_t>(layout.nsuper()));
  for (index_t s = 0; s < layout.nsuper(); ++s)
    for (index_t u = lists.ptr[s]; u < lists.ptr[s + 1]; ++u) {
      const solvers::UpdateRef r = lists.refs[u];
      segs[r.d].push_back({r.p1, r.p2});
      // All rows in [p1, p2) must belong to supernode s.
      const index_t* rows = layout.srows.data() + layout.srow_ptr[r.d];
      for (index_t p = r.p1; p < r.p2; ++p)
        EXPECT_EQ(layout.sn.col_to_super[rows[p]], s);
    }
  for (index_t d = 0; d < layout.nsuper(); ++d) {
    auto& v = segs[d];
    std::sort(v.begin(), v.end());
    index_t expect_start = layout.width(d);
    for (const auto& [p1, p2] : v) {
      EXPECT_EQ(p1, expect_start) << "gap in descendant " << d;
      expect_start = p2;
    }
    EXPECT_EQ(expect_start, layout.nrows(d)) << "descendant " << d;
  }
}

TEST(Supernodal, PanelsToCscRoundTrip) {
  const CscMatrix a = gen::block_structural(5, 5, 2, 3);
  solvers::SupernodalCholesky chol(a);
  chol.factorize(a);
  const CscMatrix l = chol.factor_csc();
  l.validate();
  EXPECT_TRUE(l.is_lower_triangular());
  EXPECT_EQ(l.nnz(), chol.layout().colcount[0] > 0
                         ? l.nnz()
                         : -1);  // smoke: nnz consistent with colcounts
  index_t total = 0;
  for (const index_t cc : chol.layout().colcount) total += cc;
  EXPECT_EQ(l.nnz(), total);
}

}  // namespace
}  // namespace sympiler
