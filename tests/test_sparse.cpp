// Unit tests for the CSC container, structural ops, and Matrix Market I/O.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "sparse/csc.h"
#include "sparse/dense.h"
#include "sparse/io_mm.h"
#include "sparse/ops.h"

namespace sympiler {
namespace {

TEST(Csc, EmptyMatrix) {
  CscMatrix a(3, 4);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_NO_THROW(a.validate());
}

TEST(Csc, FromTripletsSortsAndSumsDuplicates) {
  const std::vector<Triplet> trip = {
      {2, 0, 1.0}, {0, 0, 5.0}, {2, 0, 2.5}, {1, 1, -1.0}, {0, 1, 4.0}};
  const CscMatrix a = CscMatrix::from_triplets(3, 2, trip);
  a.validate();
  EXPECT_EQ(a.nnz(), 4);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 3.5);  // duplicates summed
  EXPECT_DOUBLE_EQ(a.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 0.0);  // absent entry reads as zero
}

TEST(Csc, FromTripletsRejectsOutOfRange) {
  const std::vector<Triplet> bad = {{3, 0, 1.0}};
  EXPECT_THROW(CscMatrix::from_triplets(3, 2, bad), invalid_matrix_error);
  const std::vector<Triplet> neg = {{-1, 0, 1.0}};
  EXPECT_THROW(CscMatrix::from_triplets(3, 2, neg), invalid_matrix_error);
}

TEST(Csc, ValidateCatchesBrokenInvariants) {
  CscMatrix a(2, 2, 2);
  a.colptr = {0, 1, 2};
  a.rowind = {0, 5};  // out of range
  EXPECT_THROW(a.validate(), invalid_matrix_error);
  a.rowind = {1, 0};
  a.colptr = {0, 2, 2};  // unsorted rows within column 0
  EXPECT_THROW(a.validate(), invalid_matrix_error);
}

TEST(Csc, Identity) {
  const CscMatrix i3 = CscMatrix::identity(3);
  i3.validate();
  EXPECT_EQ(i3.nnz(), 3);
  EXPECT_TRUE(i3.is_lower_triangular());
  EXPECT_DOUBLE_EQ(i3.at(2, 2), 1.0);
}

TEST(Ops, TransposeRoundTrip) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<index_t> idx(0, 9);
  std::uniform_real_distribution<value_t> val(-2.0, 2.0);
  std::vector<Triplet> trip;
  for (int k = 0; k < 40; ++k) trip.push_back({idx(rng), idx(rng), val(rng)});
  const CscMatrix a = CscMatrix::from_triplets(10, 10, trip);
  const CscMatrix att = transpose(transpose(a));
  EXPECT_TRUE(a.equals(att));
}

TEST(Ops, TransposeValuesLandCorrectly) {
  const std::vector<Triplet> trip = {{1, 0, 2.0}, {2, 1, 3.0}, {0, 2, 4.0}};
  const CscMatrix a = CscMatrix::from_triplets(3, 3, trip);
  const CscMatrix at = transpose(a);
  at.validate();
  EXPECT_DOUBLE_EQ(at.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(at.at(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(at.at(2, 0), 4.0);
}

TEST(Ops, LowerTriangleExtraction) {
  const std::vector<Triplet> trip = {
      {0, 0, 1.0}, {1, 0, 2.0}, {0, 1, 3.0}, {1, 1, 4.0}};
  const CscMatrix a = CscMatrix::from_triplets(2, 2, trip);
  const CscMatrix l = lower_triangle(a);
  EXPECT_EQ(l.nnz(), 3);
  EXPECT_TRUE(l.is_lower_triangular());
  const CscMatrix u = upper_triangle_strict(a);
  EXPECT_EQ(u.nnz(), 1);
  EXPECT_DOUBLE_EQ(u.at(0, 1), 3.0);
}

TEST(Ops, SymmetricFullFromLower) {
  const std::vector<Triplet> trip = {{0, 0, 2.0}, {1, 0, -1.0}, {1, 1, 2.0}};
  const CscMatrix lower = CscMatrix::from_triplets(2, 2, trip);
  const CscMatrix full = symmetric_full_from_lower(lower);
  EXPECT_EQ(full.nnz(), 4);
  EXPECT_DOUBLE_EQ(full.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(full.at(1, 0), -1.0);
}

TEST(Ops, SymmetricFullRejectsUpperEntries) {
  const std::vector<Triplet> trip = {{0, 1, 1.0}};
  const CscMatrix notlower = CscMatrix::from_triplets(2, 2, trip);
  EXPECT_THROW(symmetric_full_from_lower(notlower), invalid_matrix_error);
}

TEST(Ops, PermuteSymmetricLowerKeepsSymmetricMatrix) {
  // 3x3 SPD-ish: A = [4 -1 0; -1 4 -2; 0 -2 4] stored lower.
  const std::vector<Triplet> trip = {
      {0, 0, 4.0}, {1, 0, -1.0}, {1, 1, 4.0}, {2, 1, -2.0}, {2, 2, 4.0}};
  const CscMatrix lower = CscMatrix::from_triplets(3, 3, trip);
  const std::vector<index_t> perm = {2, 0, 1};  // old->new
  const CscMatrix p = permute_symmetric_lower(lower, perm);
  p.validate();
  EXPECT_TRUE(p.is_lower_triangular());
  // A(1,0) = -1 must appear at (perm[1], perm[0]) = (0, 2) -> stored (2,0).
  EXPECT_DOUBLE_EQ(p.at(2, 0), -1.0);
  // A(2,1) = -2 -> (perm[2], perm[1]) = (1, 0).
  EXPECT_DOUBLE_EQ(p.at(1, 0), -2.0);
  EXPECT_DOUBLE_EQ(p.at(0, 0), 4.0);  // old diag 2
}

TEST(Ops, MatvecAgainstDense) {
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<index_t> idx(0, 7);
  std::uniform_real_distribution<value_t> val(-1.0, 1.0);
  std::vector<Triplet> trip;
  for (int k = 0; k < 30; ++k) trip.push_back({idx(rng), idx(rng), val(rng)});
  const CscMatrix a = CscMatrix::from_triplets(8, 8, trip);
  const DenseMatrix d = DenseMatrix::from_csc(a);
  std::vector<value_t> x(8), y(8), yref(8, 0.0);
  for (auto& v : x) v = val(rng);
  matvec(a, x, y);
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 8; ++j) yref[i] += d(i, j) * x[j];
  for (index_t i = 0; i < 8; ++i) EXPECT_NEAR(y[i], yref[i], 1e-14);
}

TEST(Ops, SymmetricMatvecMatchesFullMatvec) {
  const std::vector<Triplet> trip = {
      {0, 0, 4.0}, {1, 0, -1.0}, {1, 1, 4.0}, {2, 1, -2.0}, {2, 2, 4.0}};
  const CscMatrix lower = CscMatrix::from_triplets(3, 3, trip);
  const CscMatrix full = symmetric_full_from_lower(lower);
  const std::vector<value_t> x = {1.0, 2.0, 3.0};
  std::vector<value_t> y1(3), y2(3);
  matvec(full, x, y1);
  matvec_symmetric_lower(lower, x, y2);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-14);
}

TEST(Ops, PermutationHelpers) {
  const std::vector<index_t> perm = {2, 0, 1};
  EXPECT_TRUE(is_permutation(perm));
  const std::vector<index_t> inv = invert_permutation(perm);
  EXPECT_EQ(inv, (std::vector<index_t>{1, 2, 0}));
  const std::vector<index_t> bad = {0, 0, 1};
  EXPECT_FALSE(is_permutation(bad));
  EXPECT_THROW(invert_permutation(bad), invalid_matrix_error);
}

TEST(IoMm, RoundTripGeneral) {
  const std::vector<Triplet> trip = {{1, 0, 2.5}, {0, 1, -3.0}, {2, 2, 1.0}};
  const CscMatrix a = CscMatrix::from_triplets(3, 3, trip);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const CscMatrix b = read_matrix_market(ss);
  EXPECT_TRUE(a.equals(b));
}

TEST(IoMm, SymmetricReadsAsLower) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment line\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "3 3 5.0\n"
      "2 3 7.0\n");  // upper entry: must be mirrored to (3,2)
  const CscMatrix a = read_matrix_market(ss);
  EXPECT_TRUE(a.is_lower_triangular());
  EXPECT_DOUBLE_EQ(a.at(2, 1), 7.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
}

TEST(IoMm, PatternMatrixGetsUnitValues) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 1\n");
  const CscMatrix a = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
}

TEST(IoMm, RejectsMalformedHeader) {
  std::stringstream ss("%%NotMatrixMarket matrix coordinate real general\n");
  EXPECT_THROW(read_matrix_market(ss), invalid_matrix_error);
  std::stringstream ss2(
      "%%MatrixMarket matrix array real general\n2 2 1\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(ss2), invalid_matrix_error);
}

TEST(IoMm, RejectsTruncatedEntries) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(ss), invalid_matrix_error);
}

TEST(Dense, FromCscAndMaxAbsDiff) {
  const std::vector<Triplet> trip = {{0, 0, 1.0}, {1, 1, 2.0}};
  const CscMatrix a = CscMatrix::from_triplets(2, 2, trip);
  DenseMatrix d = DenseMatrix::from_csc(a);
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
  DenseMatrix e(2, 2);
  e(0, 0) = 1.0;
  e(1, 1) = 2.5;
  EXPECT_DOUBLE_EQ(d.max_abs_diff(e), 0.5);
}

TEST(Ops, LltResidualOnHandFactor) {
  // L = [1 0; 2 1], L L^T = [1 2; 2 5].
  const std::vector<Triplet> ltrip = {{0, 0, 1.0}, {1, 0, 2.0}, {1, 1, 1.0}};
  const CscMatrix l = CscMatrix::from_triplets(2, 2, ltrip);
  const std::vector<Triplet> atrip = {{0, 0, 1.0}, {1, 0, 2.0}, {1, 1, 5.0}};
  const CscMatrix a = CscMatrix::from_triplets(2, 2, atrip);
  EXPECT_NEAR(llt_residual_inf_norm(l, a), 0.0, 1e-15);
  // Perturb A and expect the residual to show it.
  const std::vector<Triplet> btrip = {{0, 0, 1.0}, {1, 0, 2.0}, {1, 1, 6.0}};
  const CscMatrix b = CscMatrix::from_triplets(2, 2, btrip);
  EXPECT_NEAR(llt_residual_inf_norm(l, b), 1.0, 1e-15);
}

}  // namespace
}  // namespace sympiler
