// Property tests for the Sympiler executors: every combination of
// inspector-guided and low-level transformations must agree with the
// library baselines on every generator regime.
#include <gtest/gtest.h>

#include <tuple>

#include "core/cholesky_executor.h"
#include "core/inspector.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "graph/reach.h"
#include "solvers/simplicial.h"
#include "solvers/trisolve.h"
#include "sparse/ops.h"

namespace sympiler {
namespace {

CscMatrix case_matrix(int c) {
  switch (c) {
    case 0: return gen::grid2d_laplacian(13, 13);
    case 1: return gen::grid2d_laplacian(9, 40, gen::GridOrder::Natural);
    case 2: return gen::grid3d_laplacian(6, 6, 6);
    case 3: return gen::block_structural(8, 8, 3, 42);
    case 4: return gen::random_spd(180, 2.5, 7);
    case 5: return gen::banded_spd(100, 12, 21);
    case 6: return gen::power_grid(250, 60, 5);
    default: return gen::grid2d_laplacian(3, 3);
  }
}
constexpr int kNumCases = 8;

core::SympilerOptions make_options(bool vs, bool vi, bool low) {
  core::SympilerOptions opt;
  opt.vs_block = vs;
  opt.vi_prune = vi;
  opt.low_level = low;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;  // force VS-Block on when requested
  return opt;
}

using ExecParam = std::tuple<int, int>;  // (case, option combo 0..7)

class TriSolveExec : public ::testing::TestWithParam<ExecParam> {};

TEST_P(TriSolveExec, MatchesNaiveSolve) {
  const auto [c, combo] = GetParam();
  const CscMatrix a = case_matrix(c);
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  const CscMatrix& l = chol.factor();
  const index_t n = l.cols();

  const std::vector<value_t> b = gen::sparse_rhs(n, 1 + n / 50, 1234 + c);
  const core::SympilerOptions opt =
      make_options(combo & 1, combo & 2, combo & 4);
  core::TriSolveExecutor exec(l, {}, opt);  // empty beta replaced below

  // Re-inspect with the real beta.
  std::vector<index_t> beta;
  for (index_t i = 0; i < n; ++i)
    if (b[i] != 0.0) beta.push_back(i);
  core::TriSolveExecutor exec2(l, beta, opt);

  std::vector<value_t> x(b), xref(b);
  exec2.solve(x);
  solvers::trisolve_naive(l, xref);
  for (index_t i = 0; i < n; ++i)
    ASSERT_NEAR(x[i], xref[i], 1e-11)
        << "case " << c << " combo " << combo << " at " << i;
  EXPECT_LT(residual_inf_norm(l, x, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TriSolveExec,
    ::testing::Combine(::testing::Range(0, kNumCases),
                       ::testing::Range(0, 8)));

class CholeskyExec : public ::testing::TestWithParam<ExecParam> {};

TEST_P(CholeskyExec, MatchesSimplicialBaseline) {
  const auto [c, combo] = GetParam();
  const CscMatrix a = case_matrix(c);
  const core::SympilerOptions opt =
      make_options(combo & 1, combo & 2, combo & 4);

  core::CholeskyExecutor exec(a, opt);
  exec.factorize(a);
  const CscMatrix l = exec.factor_csc();
  l.validate();

  solvers::SimplicialCholesky ref(a);
  ref.factorize(a);
  ASSERT_TRUE(l.same_pattern(ref.factor()))
      << "case " << c << " combo " << combo;
  for (index_t p = 0; p < l.nnz(); ++p)
    ASSERT_NEAR(l.values[p], ref.factor().values[p], 1e-8)
        << "case " << c << " combo " << combo << " at nz " << p;
}

TEST_P(CholeskyExec, SolveResidualSmall) {
  const auto [c, combo] = GetParam();
  const CscMatrix a = case_matrix(c);
  const core::SympilerOptions opt =
      make_options(combo & 1, combo & 2, combo & 4);
  core::CholeskyExecutor exec(a, opt);
  exec.factorize(a);
  const std::vector<value_t> b = gen::dense_rhs(a.cols(), 5);
  std::vector<value_t> x(b);
  exec.solve(x);
  EXPECT_LT(residual_inf_norm_symmetric_lower(a, x, b), 1e-8)
      << "case " << c << " combo " << combo;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CholeskyExec,
    ::testing::Combine(::testing::Range(0, kNumCases),
                       ::testing::Range(0, 8)));

TEST(CholeskyExecutor, VsBlockThresholdControlsPath) {
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  core::SympilerOptions opt;
  opt.vsblock_min_avg_size = 1e9;  // unreachable threshold
  core::CholeskyExecutor simplicial_path(a, opt);
  EXPECT_FALSE(simplicial_path.vs_block_applied());
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;
  core::CholeskyExecutor supernodal_path(a, opt);
  EXPECT_TRUE(supernodal_path.vs_block_applied());
}

TEST(CholeskyExecutor, RefactorizeReusesInspection) {
  CscMatrix a = gen::block_structural(6, 6, 3, 9);
  core::CholeskyExecutor exec(a, make_options(true, true, true));
  exec.factorize(a);
  const value_t before = exec.factor_csc().values[0];
  for (auto& v : a.values) v *= 9.0;
  exec.factorize(a);
  EXPECT_NEAR(exec.factor_csc().values[0], 3.0 * before, 1e-10);
}

TEST(CholeskyExecutor, NonSpdThrows) {
  std::vector<Triplet> trip = {{0, 0, 1.0}, {1, 0, 5.0}, {1, 1, 1.0}};
  const CscMatrix a = CscMatrix::from_triplets(2, 2, trip);
  core::CholeskyExecutor exec(a, make_options(true, true, true));
  EXPECT_THROW(exec.factorize(a), numerical_error);
  core::CholeskyExecutor simp(a, make_options(false, true, true));
  EXPECT_THROW(simp.factorize(a), numerical_error);
}

TEST(TriSolveExecutor, SupernodePruneSetIsSuffixConsistent) {
  // The supernode-level prune set must cover exactly the reach columns.
  const CscMatrix a = gen::grid2d_laplacian(11, 11);
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  const CscMatrix& l = chol.factor();
  const std::vector<value_t> b = gen::sparse_rhs(l.cols(), 3, 17);
  core::SympilerOptions opt;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;
  const core::TriSolveSets sets = core::inspect_trisolve_dense_rhs(l, b, opt);

  std::vector<char> covered(static_cast<std::size_t>(l.cols()), 0);
  for (std::size_t k = 0; k < sets.sn_reach.size(); ++k) {
    const index_t s = sets.sn_reach[k];
    for (index_t j = sets.sn_first_col[k]; j < sets.blocks.start[s + 1]; ++j)
      covered[j] = 1;
  }
  for (const index_t j : sets.reach)
    EXPECT_TRUE(covered[j]) << "reach column " << j << " not covered";
}

TEST(TriSolveExecutor, FlopsMatchReachColumns) {
  const CscMatrix a = gen::grid2d_laplacian(8, 8);
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  const CscMatrix& l = chol.factor();
  const std::vector<value_t> b = gen::sparse_rhs(l.cols(), 2, 3);
  std::vector<index_t> beta;
  for (index_t i = 0; i < l.cols(); ++i)
    if (b[i] != 0.0) beta.push_back(i);
  core::TriSolveExecutor exec(l, beta);
  EXPECT_DOUBLE_EQ(exec.flops(),
                   solvers::trisolve_flops(l, exec.sets().reach));
  EXPECT_GT(exec.flops(), 0.0);
}

}  // namespace
}  // namespace sympiler
