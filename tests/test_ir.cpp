// Unit tests for the IR: expression building, printing, folding,
// substitution, and the transformation passes on the trisolve kernel AST.
#include <gtest/gtest.h>

#include "core/ir.h"
#include "core/kernels.h"
#include "core/passes.h"

namespace sympiler::core {
namespace {

TEST(Ir, ExpressionPrinting) {
  const ExprPtr e = add(load("Lp", var("j")), icon(1));
  EXPECT_EQ(to_c(e), "(Lp[j] + 1)");
  const ExprPtr m = mul(load("Lx", var("p")), load("x", var("j")));
  EXPECT_EQ(to_c(m), "(Lx[p] * x[j])");
}

TEST(Ir, StatementPrinting) {
  LoopInfo li;
  li.var = "i";
  li.lo = icon(0);
  li.hi = icon(4);
  const StmtPtr s = for_loop(li, {store("x", var("i"), fcon(0.0))});
  const std::string c = to_c(s);
  EXPECT_NE(c.find("for (int i = 0; i < 4; ++i)"), std::string::npos);
  EXPECT_NE(c.find("x[i] = 0;"), std::string::npos);
}

TEST(Ir, VectorizeAnnotationEmitsPragma) {
  LoopInfo li;
  li.var = "i";
  li.lo = icon(0);
  li.hi = icon(4);
  li.vectorize = true;
  const StmtPtr s = for_loop(li, {store("x", var("i"), fcon(0.0))});
  EXPECT_NE(to_c(s).find("#pragma omp simd"), std::string::npos);
}

TEST(Ir, FoldBinaryConstants) {
  Bindings b;
  EXPECT_EQ(eval_int(fold(add(icon(2), icon(3)), b)), 5);
  EXPECT_EQ(eval_int(fold(mul(sub(icon(7), icon(2)), icon(4)), b)), 20);
}

TEST(Ir, FoldThroughBoundArray) {
  const std::vector<index_t> lp = {0, 3, 7};
  Bindings b;
  b.bind("Lp", lp);
  EXPECT_EQ(eval_int(fold(load("Lp", icon(1)), b)), 3);
  EXPECT_EQ(eval_int(fold(add(load("Lp", icon(2)), icon(1)), b)), 8);
  // Unbound array stays a load (but with a folded index).
  const ExprPtr e = fold(load("Lx", add(icon(1), icon(1))), b);
  EXPECT_EQ(to_c(e), "Lx[2]");
  // Out-of-range stays unfolded rather than reading garbage.
  const ExprPtr oor = fold(load("Lp", icon(9)), b);
  EXPECT_EQ(oor->kind, ExprKind::Load);
}

TEST(Ir, SubstituteVariable) {
  const ExprPtr e = add(var("j"), load("Lp", var("j")));
  const ExprPtr s = substitute(e, "j", icon(5));
  Bindings b;
  const std::vector<index_t> lp = {0, 1, 2, 3, 4, 10};
  b.bind("Lp", lp);
  EXPECT_EQ(eval_int(fold(s, b)), 15);
}

TEST(Ir, SubstituteRespectsLoopShadowing) {
  LoopInfo li;
  li.var = "j";  // shadows the outer j
  li.lo = icon(0);
  li.hi = var("j");  // header still refers to the outer j... by convention
  StmtPtr loop = for_loop(li, {store("x", var("j"), fcon(1.0))});
  const StmtPtr sub = substitute(loop, "j", icon(3));
  // The loop with the same variable is left untouched (shadowing).
  EXPECT_NE(to_c(sub).find("x[j]"), std::string::npos);
}

TEST(Passes, ViPruneRewritesCandidateLoop) {
  const StmtPtr ast = build_trisolve_ast();
  EXPECT_EQ(count_loops(ast), 2);
  const StmtPtr pruned = apply_vi_prune(ast, "pruneSet", "pruneSetSize");
  const std::string c = to_c(pruned);
  EXPECT_NE(c.find("j0_p < pruneSetSize"), std::string::npos);
  EXPECT_NE(c.find("const int j0 = pruneSet[j0_p];"), std::string::npos);
  // Original AST untouched.
  EXPECT_EQ(to_c(ast).find("pruneSetSize"), std::string::npos);
}

TEST(Passes, ViPruneThrowsWithoutCandidate) {
  LoopInfo li;
  li.var = "i";
  li.lo = icon(0);
  li.hi = icon(4);
  const StmtPtr plain = block({for_loop(li, {})});
  EXPECT_THROW(apply_vi_prune(plain, "s", "n"), invalid_matrix_error);
}

TEST(Passes, VsBlockReplacesCandidate) {
  const StmtPtr ast = build_trisolve_ast();
  const StmtPtr blocked = apply_vs_block(ast, build_blocked_trisolve_ast());
  const std::string c = to_c(blocked);
  EXPECT_NE(c.find("snStart"), std::string::npos);
  EXPECT_NE(c.find("tail"), std::string::npos);
}

TEST(Passes, PeelProducesLiteralIterations) {
  // Tiny L: columns 0..2; pruneSet = {0, 2}; peel position 0.
  const std::vector<index_t> prune_set = {0, 2};
  const std::vector<index_t> lp = {0, 3, 4, 6};
  const std::vector<index_t> li_arr = {0, 1, 2, 1, 2, 2};
  Bindings b;
  b.bind("pruneSet", prune_set);
  b.bind("Lp", lp);
  b.bind("Li", li_arr);

  StmtPtr ast = build_trisolve_ast();
  ast = apply_vi_prune(ast, "pruneSet", "pruneSetSize");
  const std::vector<std::int64_t> pos = {0};
  ast = apply_peel(ast, "j0_p", pos, b, 16);
  const std::string c = to_c(ast);
  // Peeled column 0: diagonal at Lx[0], fully unrolled updates with
  // literal row indices x[1], x[2] (Figure 1e shape).
  EXPECT_NE(c.find("peeled iteration 0"), std::string::npos);
  EXPECT_NE(c.find("x[0] /= Lx[0];"), std::string::npos);
  EXPECT_NE(c.find("x[1] -= (Lx[1] * x[0]);"), std::string::npos);
  EXPECT_NE(c.find("x[2] -= (Lx[2] * x[0]);"), std::string::npos);
  // Residual loop covers positions 1..pruneSetSize.
  EXPECT_NE(c.find("= 1; j0_p < pruneSetSize"), std::string::npos);
}

TEST(Passes, UnrollAndFoldFullyUnrollsConstantLoops) {
  LoopInfo li;
  li.var = "i";
  li.lo = icon(0);
  li.hi = icon(3);
  const StmtPtr loop =
      block({for_loop(li, {store("x", var("i"), fcon(1.0))})});
  Bindings b;
  const StmtPtr unrolled = apply_unroll_and_fold(loop, b, 4);
  EXPECT_EQ(count_loops(unrolled), 0);
  const std::string c = to_c(unrolled);
  EXPECT_NE(c.find("x[0] = 1;"), std::string::npos);
  EXPECT_NE(c.find("x[2] = 1;"), std::string::npos);
}

TEST(Passes, UnrollLimitRespected) {
  LoopInfo li;
  li.var = "i";
  li.lo = icon(0);
  li.hi = icon(100);
  const StmtPtr loop =
      block({for_loop(li, {store("x", var("i"), fcon(1.0))})});
  Bindings b;
  EXPECT_EQ(count_loops(apply_unroll_and_fold(loop, b, 4)), 1);
}

TEST(Passes, ConstantLetPropagates) {
  // { let c = 5; x[c] = 1.0; } folds to x[5] with the let removed.
  const StmtPtr s =
      block({let("c", icon(5)), store("x", var("c"), fcon(1.0))});
  Bindings b;
  const StmtPtr f = apply_unroll_and_fold(s, b, 0);
  const std::string c = to_c(f);
  EXPECT_NE(c.find("x[5] = 1;"), std::string::npos);
  EXPECT_EQ(c.find("const int c"), std::string::npos);
}

TEST(Passes, AnnotateVectorizeMarksInnermostOnly) {
  const StmtPtr ast = annotate_vectorize(build_trisolve_ast());
  // Outer loop (contains inner loop) not marked; inner marked.
  const std::string c = to_c(ast);
  const auto first_pragma = c.find("#pragma omp simd");
  ASSERT_NE(first_pragma, std::string::npos);
  // The pragma must come after the outer for.
  EXPECT_GT(first_pragma, c.find("for (int j0"));
}

TEST(Passes, CholeskyAstHasBothCandidates) {
  const StmtPtr ast = build_cholesky_ast();
  const std::string c = to_c(ast);
  EXPECT_NE(c.find("scatter_column"), std::string::npos);
  // VI-Prune applies to the update loop.
  const StmtPtr pruned = apply_vi_prune(ast, "rowPattern", "rowPatternSize");
  EXPECT_NE(to_c(pruned).find("rowPattern"), std::string::npos);
}

}  // namespace
}  // namespace sympiler::core
