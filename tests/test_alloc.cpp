// Zero-steady-state-allocation regression: once a Solver is warm (plan
// resident, workspaces grown), factor() + solve() + solve_batch() must not
// touch the heap — every numeric scratch lives in a plan-sized
// core::Workspace. Pinned by counting global operator new calls.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <span>
#include <vector>

#include "api/solver.h"
#include "core/workspace.h"
#include "gen/generators.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

// Global operator new/delete replacements: count every allocation in the
// process (this test binary links the whole library).
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sympiler {
namespace {

std::vector<value_t> random_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
  std::vector<value_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

/// Allocations performed by fn().
template <class Fn>
std::uint64_t allocations_in(Fn&& fn) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

void check_zero_warm_allocations(const CscMatrix& a,
                                 api::SolverConfig config) {
  api::Solver solver(config, nullptr);
  const auto n = static_cast<std::size_t>(a.cols());
  const index_t nrhs = 40;  // crosses one packed-block boundary
  std::vector<value_t> xs =
      random_vec(n * static_cast<std::size_t>(nrhs), 11);
  std::vector<value_t> x1 = random_vec(n, 12);
  // Warm up: plan built and cached, executor workspaces grown, per-thread
  // batch workspaces grown (and under OpenMP, the thread team spawned).
  solver.factor(a);
  solver.solve(x1);
  solver.solve_batch(xs, nrhs);
  solver.factor(a);
  // Steady state: a warm factor + single solve + batched solve must not
  // allocate at all.
  const std::uint64_t during = allocations_in([&] {
    solver.factor(a);
    solver.solve(x1);
    solver.solve_batch(xs, nrhs);
  });
  EXPECT_EQ(during, 0u) << "warm factor()+solve()+solve_batch() allocated";
}

TEST(ZeroAllocation, WarmSupernodalFactorAndBatchSolve) {
  api::SolverConfig config;
  config.enable_parallel = false;
  check_zero_warm_allocations(gen::grid2d_laplacian(40, 40), config);
}

TEST(ZeroAllocation, WarmSimplicialFactorAndBatchSolve) {
  api::SolverConfig config;
  config.enable_parallel = false;
  config.options.vs_block = false;
  check_zero_warm_allocations(gen::grid2d_laplacian(24, 24), config);
}

TEST(ZeroAllocation, WarmTriangularSolveBatch) {
  api::SolverConfig config;
  config.enable_parallel = false;
  api::Solver chol(config, nullptr);
  const CscMatrix a = gen::grid2d_laplacian(40, 40);
  chol.factor(a);
  const CscMatrix l = chol.factor_csc();
  std::vector<index_t> beta(static_cast<std::size_t>(l.cols()));
  for (index_t j = 0; j < l.cols(); ++j) beta[j] = j;
  api::TriangularSolver tri(l, beta, config, nullptr);
  ASSERT_EQ(tri.path(), api::ExecutionPath::BlockedTriSolve);
  const auto n = static_cast<std::size_t>(l.cols());
  const index_t nrhs = 40;
  std::vector<value_t> xs = random_vec(n * static_cast<std::size_t>(nrhs), 3);
  std::vector<value_t> x1 = random_vec(n, 4);
  tri.solve(x1);
  tri.solve_batch(xs, nrhs);  // grows the packed workspace once
  const std::uint64_t during = g_allocations.load();
  tri.solve(x1);
  tri.solve_batch(xs, nrhs);
  EXPECT_EQ(g_allocations.load() - during, 0u)
      << "warm triangular solve/solve_batch allocated";
}

#ifndef NDEBUG
TEST(WorkspaceGuard, ConcurrentBorrowIsLoudInDebugBuilds) {
  // The PR 3 breaking note — solve() borrows the owner's workspace and is
  // not concurrency-safe on one instance — is now a throw-on-concurrent-
  // entry guard, not a README footnote. A second borrow while one is live
  // must throw (always in debug builds; release builds only when opted in
  // below).
  core::Workspace ws;
  const core::Workspace::Borrow first(ws);
  EXPECT_THROW(core::Workspace::Borrow{ws}, resource_exhausted_error);
}
#endif

TEST(WorkspaceGuard, OptInGuardWorksInEveryBuild) {
  // SympilerOptions::guard_workspace promotes the borrow guard to release
  // builds: set_guard(true) must make a concurrent borrow throw a
  // kResourceExhausted error regardless of NDEBUG.
  core::Workspace ws;
  ws.set_guard(true);
  const core::Workspace::Borrow first(ws);
  try {
    const core::Workspace::Borrow second(ws);
    FAIL() << "second borrow did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
  }
}

TEST(WorkspaceGuard, SequentialBorrowsAreFine) {
  core::Workspace ws;
  ws.set_guard(true);
  { const core::Workspace::Borrow one(ws); }
  { const core::Workspace::Borrow two(ws); }  // released, re-borrowable
}

#ifdef SYMPILER_HAS_OPENMP
TEST(ZeroAllocation, WarmParallelFactorAndBatchSolve) {
  // The level-set parallel interpreter keeps one grow-only workspace per
  // OS thread; once the team and workspaces are warm, a parallel factor +
  // batched solve is allocation-free too (OpenMP runtime included — it
  // reuses its thread team after the warm-up region).
  api::SolverConfig config;
  config.enable_parallel = true;
  config.parallel_min_supernodes = 1;
  config.parallel_min_avg_level_width = 0.0;
  check_zero_warm_allocations(gen::grid2d_laplacian(40, 40), config);
}

TEST(ZeroAllocation, WarmParallelTriangularSolveBatch) {
  // Level-set parallel trisolve: the privatized terms buffer is pre-grown
  // at construction and the packed batch block on the first solve_batch;
  // warm parallel solves touch the heap not at all.
  api::SolverConfig config;
  config.enable_parallel = true;
  config.parallel_min_avg_level_width = 0.0;
  config.options.vsblock_min_avg_size = 1e9;  // pruned -> parallel trisolve
  api::Solver chol(config, nullptr);
  const CscMatrix a = gen::grid2d_laplacian(30, 30);
  chol.factor(a);
  const CscMatrix l = chol.factor_csc();
  std::vector<index_t> beta(static_cast<std::size_t>(l.cols()));
  for (index_t j = 0; j < l.cols(); ++j) beta[j] = j;
  api::TriangularSolver tri(l, beta, config, nullptr);
  ASSERT_EQ(tri.path(), api::ExecutionPath::ParallelTriSolve);
  const auto n = static_cast<std::size_t>(l.cols());
  const index_t nrhs = 40;
  std::vector<value_t> xs = random_vec(n * static_cast<std::size_t>(nrhs), 5);
  std::vector<value_t> x1 = random_vec(n, 6);
  tri.solve(x1);
  tri.solve_batch(xs, nrhs);  // grows the packed block + thread team once
  const std::uint64_t during = allocations_in([&] {
    tri.solve(x1);
    tri.solve_batch(xs, nrhs);
  });
  EXPECT_EQ(during, 0u) << "warm parallel triangular solves allocated";
}
#endif

}  // namespace
}  // namespace sympiler
