// Blocked multi-RHS solves: solve_batch(nrhs) must be bit-identical to
// nrhs looped solve() calls on every execution path — the packed-block
// kernels change data movement (panel reuse, unit-stride SIMD across RHS),
// never any column's operation sequence. That includes the level-set
// parallel paths: their level-private update slots replay the serial
// update order (levelset.h), so even the OpenMP interpreters are
// bit-stable and compared exactly here.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <span>
#include <vector>

#include "api/solver.h"
#include "gen/generators.h"

namespace sympiler {
namespace {

std::vector<value_t> random_vec(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
  std::vector<value_t> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

void expect_bits_equal(std::span<const value_t> a, std::span<const value_t> b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t)
    ASSERT_EQ(a[t], b[t]) << what << " differs at flat index " << t;
}

/// Factor `a` under `config`, then check solve_batch == looped solve for a
/// batch width sweep that crosses the packed-block boundary.
void check_solver_batch(const CscMatrix& a, api::SolverConfig config,
                        api::ExecutionPath expected_path) {
  api::Solver solver(config, nullptr);
  solver.factor(a);
  ASSERT_EQ(solver.path(), expected_path);
  const auto n = static_cast<std::size_t>(a.cols());
  for (const index_t nrhs : {1, 3, 32, 33, 64}) {
    const std::vector<value_t> base =
        random_vec(n * static_cast<std::size_t>(nrhs), 42 + nrhs);
    std::vector<value_t> looped = base;
    for (index_t r = 0; r < nrhs; ++r)
      solver.solve(
          std::span<value_t>(looped).subspan(static_cast<std::size_t>(r) * n,
                                             n));
    std::vector<value_t> batched = base;
    solver.solve_batch(batched, nrhs);
    expect_bits_equal(looped, batched, api::to_string(expected_path));
  }
}

TEST(SolverBatch, SupernodalPathBitIdenticalToLoopedSolve) {
  api::SolverConfig config;
  config.enable_parallel = false;
  check_solver_batch(gen::grid2d_laplacian(40, 40), config,
                     api::ExecutionPath::Supernodal);
}

TEST(SolverBatch, SimplicialPathBitIdenticalToLoopedSolve) {
  api::SolverConfig config;
  config.enable_parallel = false;
  config.options.vs_block = false;
  check_solver_batch(gen::grid2d_laplacian(24, 24), config,
                     api::ExecutionPath::Simplicial);
}

TEST(SolverBatch, ParallelPathBitIdenticalToLoopedSolve) {
  // Open the parallel gates: under OpenMP builds this plans the level-set
  // parallel path (deterministic by construction — each panel's updates
  // are applied by its owning thread in static schedule order); without
  // OpenMP the planner keeps the sequential supernodal path.
  api::SolverConfig config;
  config.enable_parallel = true;
  config.parallel_min_supernodes = 1;
  config.parallel_min_avg_level_width = 0.0;
  const api::ExecutionPath expected =
#ifdef SYMPILER_HAS_OPENMP
      api::ExecutionPath::ParallelSupernodal;
#else
      api::ExecutionPath::Supernodal;
#endif
  check_solver_batch(gen::grid2d_laplacian(40, 40), config, expected);
}

TEST(SolverBatch, VectorOfColumnsOverloadMatchesSpanBatch) {
  api::SolverConfig config;
  config.enable_parallel = false;
  api::Solver solver(config, nullptr);
  const CscMatrix a = gen::grid2d_laplacian(30, 30);
  solver.factor(a);
  const auto n = static_cast<std::size_t>(a.cols());
  const index_t nrhs = 5;
  const std::vector<value_t> base = random_vec(n * nrhs, 7);
  std::vector<value_t> flat = base;
  solver.solve_batch(flat, nrhs);
  std::vector<std::vector<value_t>> cols;
  for (index_t r = 0; r < nrhs; ++r)
    cols.emplace_back(base.begin() + static_cast<std::ptrdiff_t>(r * n),
                      base.begin() + static_cast<std::ptrdiff_t>((r + 1) * n));
  solver.solve_batch(cols);
  for (index_t r = 0; r < nrhs; ++r)
    expect_bits_equal(
        std::span<const value_t>(flat).subspan(static_cast<std::size_t>(r) * n,
                                               n),
        cols[static_cast<std::size_t>(r)], "vector-of-columns");
}

/// TriangularSolver batch check against looped solves.
void check_trisolve_batch(const CscMatrix& a, api::SolverConfig config,
                          api::ExecutionPath expected_path) {
  api::Solver chol(config, nullptr);
  chol.factor(a);
  const CscMatrix l = chol.factor_csc();
  std::vector<index_t> beta(static_cast<std::size_t>(l.cols()));
  for (index_t j = 0; j < l.cols(); ++j) beta[j] = j;  // dense RHS pattern
  api::TriangularSolver tri(l, beta, config, nullptr);
  ASSERT_EQ(tri.path(), expected_path);
  const auto n = static_cast<std::size_t>(l.cols());
  for (const index_t nrhs : {1, 3, 32, 33, 64}) {
    const std::vector<value_t> base =
        random_vec(n * static_cast<std::size_t>(nrhs), 99 + nrhs);
    std::vector<value_t> looped = base;
    for (index_t r = 0; r < nrhs; ++r)
      tri.solve(
          std::span<value_t>(looped).subspan(static_cast<std::size_t>(r) * n,
                                             n));
    std::vector<value_t> batched = base;
    tri.solve_batch(batched, nrhs);
    expect_bits_equal(looped, batched, api::to_string(expected_path));
  }
}

TEST(TriSolveBatch, BlockedPathBitIdenticalToLoopedSolve) {
  api::SolverConfig config;
  config.enable_parallel = false;
  check_trisolve_batch(gen::grid2d_laplacian(40, 40), config,
                       api::ExecutionPath::BlockedTriSolve);
}

TEST(TriSolveBatch, PrunedPathBitIdenticalToLoopedSolve) {
  api::SolverConfig config;
  config.enable_parallel = false;
  config.options.vs_block = false;
  check_trisolve_batch(gen::grid2d_laplacian(24, 24), config,
                       api::ExecutionPath::PrunedTriSolve);
}

TEST(TriSolveBatch, ParallelPathBitIdenticalToLoopedSolve) {
  api::SolverConfig config;
  config.enable_parallel = true;
  config.parallel_min_supernodes = 1;
  config.parallel_min_avg_level_width = 0.0;
  config.options.vs_block = false;  // keep VS-Block off so pruned+parallel
  const api::ExecutionPath expected =
#ifdef SYMPILER_HAS_OPENMP
      api::ExecutionPath::ParallelTriSolve;
#else
      api::ExecutionPath::PrunedTriSolve;
#endif
  check_trisolve_batch(gen::grid2d_laplacian(24, 24), config, expected);
}

TEST(SolverBatch, SolutionsActuallySolveTheSystem) {
  // Sanity beyond self-consistency: A x == b for a batched solve.
  api::SolverConfig config;
  config.enable_parallel = false;
  api::Solver solver(config, nullptr);
  const CscMatrix a = gen::grid2d_laplacian(20, 20);
  solver.factor(a);
  const auto n = static_cast<std::size_t>(a.cols());
  const index_t nrhs = 9;
  const std::vector<value_t> b = random_vec(n * nrhs, 17);
  std::vector<value_t> x = b;
  solver.solve_batch(x, nrhs);
  for (index_t r = 0; r < nrhs; ++r) {
    const value_t* xr = x.data() + static_cast<std::size_t>(r) * n;
    const value_t* br = b.data() + static_cast<std::size_t>(r) * n;
    // y = A xr from the stored lower triangle (A = L_A + L_A^T - diag).
    std::vector<value_t> y(n, 0.0);
    for (index_t j = 0; j < a.cols(); ++j)
      for (index_t p = a.col_begin(j); p < a.col_end(j); ++p) {
        const index_t i = a.rowind[p];
        y[static_cast<std::size_t>(i)] += a.values[p] * xr[j];
        if (i != j) y[static_cast<std::size_t>(j)] += a.values[p] * xr[i];
      }
    for (std::size_t t = 0; t < n; ++t)
      ASSERT_NEAR(y[t], br[t], 1e-8) << "rhs " << r << " row " << t;
  }
}

}  // namespace
}  // namespace sympiler
