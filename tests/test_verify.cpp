// Tests for the static plan verifier (verify/verify.h).
//
// Three layers:
//  * mutation-kill matrix — verify::PlanMutator seeds every corruption
//    class into plans on every execution path (simplicial, supernodal,
//    parallel-flat, coarsened; pruned/blocked/parallel trisolve); the
//    verifier must flag 100% of the applicable (corruption x path) cells;
//  * clean-pass sweep — every plan the Planner builds over the generator
//    suite, at three option configurations, verifies clean with the
//    emitted-code audit on for jit-eligible paths;
//  * wiring — the Planner throws kPlanInvalid on findings (driven through
//    the kVerify fault site), records verify time in the plan evidence,
//    keeps verify_plan out of the cache key, and a warm facade factor()
//    neither re-verifies nor allocates.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/solver.h"
#include "core/compiled_kernel.h"
#include "core/inspector.h"
#include "core/pattern_key.h"
#include "core/planner.h"
#include "core/workspace.h"
#include "gen/generators.h"
#include "parallel/schedule.h"
#include "util/fault.h"
#include "util/status.h"
#include "verify/mutate.h"
#include "verify/verify.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

// Global operator new/delete replacements: count every allocation in the
// process (this binary links the whole library), for the warm zero-alloc
// regression below.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace sympiler {
namespace {

using core::CholeskyPlan;
using core::ExecutionPath;
using core::Planner;
using core::PlannerConfig;
using core::TriSolvePlan;
using verify::Corruption;
using verify::PlanMutator;
using verify::Report;
using verify::VerifyOptions;

constexpr Corruption kAllCorruptions[] = {
    Corruption::kDepViolation,         Corruption::kAliasedSlot,
    Corruption::kReorderedFold,        Corruption::kCrossDependentBundle,
    Corruption::kOutOfBoundsIndex,     Corruption::kWorkspaceTrim,
    Corruption::kScheduleGap,          Corruption::kChainReorder,
};

/// Allocations performed by fn().
template <class Fn>
std::uint64_t allocations_in(Fn&& fn) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

struct FaultGuard {
  FaultGuard() { util::FaultInjector::reset(); }
  ~FaultGuard() { util::FaultInjector::reset(); }
};

// ------------------------------------------------------- plan variants

PlannerConfig sequential_config(double vs_gate) {
  PlannerConfig cfg;
  cfg.options.vsblock_min_avg_size = vs_gate;
  cfg.options.vsblock_min_avg_width = vs_gate > 0.0 ? vs_gate : 0.0;
  cfg.options.verify_plan = true;  // planner self-checks every build here
  cfg.enable_parallel = false;
  return cfg;
}

CholeskyPlan simplicial_plan() {
  const CscMatrix a = gen::random_spd(150, 2.5, 7);
  return Planner(sequential_config(1e9)).plan_cholesky(a);
}

CholeskyPlan supernodal_plan() {
  const CscMatrix a = gen::grid2d_laplacian(30, 30);
  return Planner(sequential_config(0.0)).plan_cholesky(a);
}

/// Manually assembled parallel / coarsened plans: the schedule builders
/// are pure pattern functions available in every build (with or without
/// OpenMP), so the kill matrix always exercises the parallel paths.
CholeskyPlan parallel_cholesky_plan(bool coarsen) {
  const CscMatrix a = gen::grid2d_laplacian(40, 40);
  core::SympilerOptions opt;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;
  CholeskyPlan plan;
  plan.options = opt;
  plan.sets = core::inspect_cholesky(a, opt);
  plan.schedule = parallel::level_schedule_supernodes(plan.sets.blocks,
                                                      plan.sets.sym.parent);
  plan.solve_update_map =
      parallel::update_slots_supernodes(plan.sets.layout);
  plan.workspace = core::cholesky_workspace_dims(plan.sets.layout);
  plan.workspace.need_dense = false;
  plan.workspace.update_slots = plan.solve_update_map.slots();
  plan.path = ExecutionPath::ParallelSupernodal;
  if (coarsen) {
    std::vector<index_t> dep_src(plan.sets.updates.refs.size());
    for (std::size_t u = 0; u < dep_src.size(); ++u)
      dep_src[u] = plan.sets.updates.refs[u].d;
    plan.agg = parallel::coarsen_schedule_supernodes(
        plan.sets.blocks, plan.sets.sym.parent, plan.sets.updates.ptr,
        dep_src, plan.schedule);
  }
  return plan;
}

/// A realistic supernodal lower factor pattern to drive trisolve plans:
/// the Cholesky inspector's L pattern (the verifier never reads values).
CscMatrix factor_pattern(const CscMatrix& a) {
  core::SympilerOptions opt;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;
  return core::inspect_cholesky(a, opt).sym.l_pattern;
}

TriSolvePlan pruned_plan(const CscMatrix& l, std::span<const index_t> beta) {
  return Planner(sequential_config(1e9)).plan_trisolve(l, beta);
}

TriSolvePlan blocked_plan(const CscMatrix& l, std::span<const index_t> beta) {
  return Planner(sequential_config(0.0)).plan_trisolve(l, beta);
}

TriSolvePlan parallel_trisolve_plan(const CscMatrix& l,
                                    std::span<const index_t> beta,
                                    bool coarsen) {
  core::SympilerOptions opt;
  opt.vsblock_min_avg_size = 1e9;  // column-level solve
  opt.vsblock_min_avg_width = 1e9;
  TriSolvePlan plan;
  plan.options = opt;
  plan.sets = core::inspect_trisolve(l, beta, opt);
  plan.schedule = parallel::level_schedule_columns(l);
  plan.update_map = parallel::update_slots_columns(l, plan.sets.reach);
  plan.workspace.n = l.cols();
  plan.workspace.need_map = false;
  plan.workspace.need_dense = false;
  plan.workspace.update_slots = plan.update_map.slots();
  plan.workspace.rhs_block = core::kRhsBlockWidth;
  plan.path = ExecutionPath::ParallelTriSolve;
  if (coarsen) plan.agg = parallel::coarsen_schedule_columns(l, plan.schedule);
  return plan;
}

std::vector<index_t> dense_beta(index_t n) {
  std::vector<index_t> beta(static_cast<std::size_t>(n));
  std::iota(beta.begin(), beta.end(), 0);
  return beta;
}

// --------------------------------------------------- mutation-kill matrix

struct KillTally {
  int applicable = 0;
  std::set<Corruption> applied;
  std::set<Corruption> killed;
};

void expect_killed(const char* path, Corruption c, const Report& report,
                   KillTally& tally) {
  ++tally.applicable;
  tally.applied.insert(c);
  EXPECT_FALSE(report.ok())
      << path << " x " << verify::to_string(c)
      << ": corruption survived verification";
  if (!report.ok()) tally.killed.insert(c);
}

TEST(VerifyKillMatrix, CholeskyPathsCatchEveryApplicableCorruption) {
  const std::vector<std::pair<const char*, CholeskyPlan>> variants = [] {
    std::vector<std::pair<const char*, CholeskyPlan>> v;
    v.emplace_back("simplicial", simplicial_plan());
    v.emplace_back("supernodal", supernodal_plan());
    v.emplace_back("parallel-flat", parallel_cholesky_plan(false));
    v.emplace_back("coarsened", parallel_cholesky_plan(true));
    return v;
  }();

  KillTally tally;
  for (const auto& [name, base] : variants) {
    // Every base plan must verify clean before corruption.
    const Report clean = verify::verify_plan(base);
    ASSERT_TRUE(clean.ok()) << name << ": " << clean.to_string();

    int applicable_here = 0;
    for (const Corruption c : kAllCorruptions) {
      CholeskyPlan mutant = base;
      if (!PlanMutator::apply(mutant, c)) continue;
      ++applicable_here;
      expect_killed(name, c, verify::verify_plan(mutant), tally);
    }
    EXPECT_GE(applicable_here, 4)
        << name << ": corruption classes stopped applying to this path";
  }
  // The coarsened variant must genuinely coarsen, or the agg cells above
  // were vacuous.
  EXPECT_FALSE(variants.back().second.agg.empty());
  EXPECT_GE(tally.applicable, 16);
  // 100% kill rate: every corruption class that applied was caught.
  EXPECT_EQ(tally.killed, tally.applied);
  EXPECT_GE(tally.applied.size(), 6u);
}

TEST(VerifyKillMatrix, TriSolvePathsCatchEveryApplicableCorruption) {
  const CscMatrix l = factor_pattern(gen::grid2d_laplacian(25, 25));
  const std::vector<index_t> sparse_beta = {0};
  const std::vector<index_t> full_beta = dense_beta(l.cols());

  struct Variant {
    const char* name;
    TriSolvePlan plan;
    std::span<const index_t> beta;
  };
  std::vector<Variant> variants;
  variants.push_back({"pruned", pruned_plan(l, sparse_beta), sparse_beta});
  variants.push_back({"blocked", blocked_plan(l, sparse_beta), sparse_beta});
  variants.push_back(
      {"parallel-flat", parallel_trisolve_plan(l, full_beta, false),
       full_beta});
  variants.push_back(
      {"coarsened", parallel_trisolve_plan(l, full_beta, true), full_beta});
  ASSERT_EQ(variants[0].plan.path, ExecutionPath::PrunedTriSolve);
  ASSERT_EQ(variants[1].plan.path, ExecutionPath::BlockedTriSolve);

  KillTally tally;
  for (const auto& variant : variants) {
    const Report clean = verify::verify_plan(variant.plan, l, variant.beta);
    ASSERT_TRUE(clean.ok()) << variant.name << ": " << clean.to_string();

    int applicable_here = 0;
    for (const Corruption c : kAllCorruptions) {
      TriSolvePlan mutant = variant.plan;
      if (!PlanMutator::apply(mutant, l, c)) continue;
      ++applicable_here;
      expect_killed(variant.name, c,
                    verify::verify_plan(mutant, l, variant.beta), tally);
    }
    EXPECT_GE(applicable_here, 4)
        << variant.name
        << ": corruption classes stopped applying to this path";
  }
  EXPECT_FALSE(variants.back().plan.agg.empty());
  EXPECT_GE(tally.applicable, 16);
  // 100% kill rate, and across the trisolve paths alone every corruption
  // class in the taxonomy must both apply somewhere and be caught.
  EXPECT_EQ(tally.killed, tally.applied);
  EXPECT_EQ(tally.applied.size(), std::size(kAllCorruptions));
}

// The races pass must diagnose an out-of-order chain as its own
// "races.chain-order" family (not just the flattened dependence view):
// adjacent chain members always carry a direct dependence edge (that is
// why the coarsener fused them), so swapping them breaks intra-chain
// sequencing in a way the slot-map happens-before replay must name.
TEST(VerifyKillMatrix, ChainReorderDiagnosedByRacesChainOrder) {
  CholeskyPlan chol = parallel_cholesky_plan(true);
  ASSERT_FALSE(chol.agg.empty());
  ASSERT_TRUE(PlanMutator::apply(chol, Corruption::kChainReorder));
  const Report chol_report = verify::verify_plan(chol);
  ASSERT_FALSE(chol_report.ok());
  bool chol_named = false;
  for (const auto& f : chol_report.findings)
    if (f.check == "races.chain-order") chol_named = true;
  EXPECT_TRUE(chol_named) << chol_report.to_string();

  const CscMatrix l = factor_pattern(gen::grid2d_laplacian(25, 25));
  const std::vector<index_t> beta = dense_beta(l.cols());
  TriSolvePlan tri = parallel_trisolve_plan(l, beta, true);
  ASSERT_FALSE(tri.agg.empty());
  ASSERT_TRUE(PlanMutator::apply(tri, l, Corruption::kChainReorder));
  const Report tri_report = verify::verify_plan(tri, l, beta);
  ASSERT_FALSE(tri_report.ok());
  bool tri_named = false;
  for (const auto& f : tri_report.findings)
    if (f.check == "races.chain-order") tri_named = true;
  EXPECT_TRUE(tri_named) << tri_report.to_string();
}

// ------------------------------------------------------ clean-pass sweep

std::vector<std::pair<const char*, CscMatrix>> suite() {
  std::vector<std::pair<const char*, CscMatrix>> s;
  s.emplace_back("grid2d", gen::grid2d_laplacian(24, 24));
  s.emplace_back("grid3d", gen::grid3d_laplacian(7, 7, 7));
  s.emplace_back("block", gen::block_structural(9, 9, 3, 11));
  s.emplace_back("random", gen::random_spd(300, 2.5, 3));
  s.emplace_back("banded", gen::banded_spd(200, 8, 5));
  s.emplace_back("power", gen::power_grid(400, 60, 9));
  return s;
}

std::vector<std::pair<const char*, PlannerConfig>> sweep_configs() {
  std::vector<std::pair<const char*, PlannerConfig>> configs;
  {
    PlannerConfig cfg;  // stock defaults
    cfg.options.verify_plan = true;
    configs.emplace_back("default", cfg);
  }
  {
    PlannerConfig cfg;  // everything open: supernodal/parallel + coarsening
    cfg.options.verify_plan = true;
    cfg.options.vsblock_min_avg_size = 0.0;
    cfg.options.vsblock_min_avg_width = 0.0;
    cfg.parallel_min_supernodes = 1;
    cfg.parallel_min_avg_level_width = 0.0;
    cfg.coarsen_schedule = true;
    configs.emplace_back("open-gates", cfg);
  }
  {
    PlannerConfig cfg;  // naive corner: no pruning, no low-level
    cfg.options.verify_plan = true;
    cfg.options.vi_prune = false;
    cfg.options.low_level = false;
    cfg.enable_parallel = false;
    configs.emplace_back("naive", cfg);
  }
  return configs;
}

TEST(VerifyCleanSweep, EveryGeneratorSuitePlanPasses) {
  for (const auto& [cfg_name, cfg] : sweep_configs()) {
    for (const auto& [mat_name, a] : suite()) {
      // Cholesky plan (the Planner itself verifies too — verify_plan is
      // set — so a finding would already have thrown).
      const CholeskyPlan cplan = Planner(cfg).plan_cholesky(a);
      VerifyOptions vo;
      vo.audit_emitted_code = cplan.evidence.jit_eligible;
      const Report creport = verify::verify_plan(cplan, vo);
      EXPECT_TRUE(creport.ok()) << cfg_name << "/" << mat_name
                                << " cholesky: " << creport.to_string();
      EXPECT_GT(creport.checks, 0);

      // Trisolve plans over the factor pattern, sparse and dense RHS.
      const CscMatrix l = cplan.sets.sym.l_pattern;
      const std::vector<index_t> sparse = {0, a.cols() / 2};
      const std::vector<index_t> dense = dense_beta(l.cols());
      for (const auto& beta : {sparse, dense}) {
        const TriSolvePlan tplan = Planner(cfg).plan_trisolve(l, beta);
        VerifyOptions tvo;
        tvo.audit_emitted_code = tplan.evidence.jit_eligible;
        const Report treport = verify::verify_plan(tplan, l, beta, tvo);
        EXPECT_TRUE(treport.ok())
            << cfg_name << "/" << mat_name << " trisolve (rhs "
            << beta.size() << "): " << treport.to_string();
        EXPECT_GT(treport.checks, 0);
      }
    }
  }
}

// -------------------------------------------------------------- wiring

TEST(VerifyWiring, PlannerThrowsPlanInvalidOnInjectedFinding) {
  const FaultGuard guard;
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  PlannerConfig cfg;
  cfg.options.verify_plan = true;
  util::FaultInjector::arm(util::FaultSite::kVerify, 1);
  try {
    const CholeskyPlan plan = Planner(cfg).plan_cholesky(a);
    FAIL() << "injected verification finding did not throw";
  } catch (const plan_verification_error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPlanInvalid);
    EXPECT_NE(std::string(e.what()).find("fault.injected"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(util::FaultInjector::fired(), 1u);
}

TEST(VerifyWiring, VerifySiteParsesFromEnvSpec) {
  util::FaultSite site{};
  std::uint64_t nth = 0, count = 0;
  ASSERT_TRUE(util::FaultInjector::parse("verify:2", &site, &nth, &count));
  EXPECT_EQ(site, util::FaultSite::kVerify);
  EXPECT_EQ(nth, 2u);
}

TEST(VerifyWiring, VerifyTimeRecordedInEvidenceOnlyWhenEnabled) {
  const CscMatrix a = gen::grid2d_laplacian(16, 16);
  PlannerConfig on;
  on.options.verify_plan = true;
  EXPECT_GT(Planner(on).plan_cholesky(a).evidence.phases.verify, 0.0);
  PlannerConfig off;
  off.options.verify_plan = false;
  EXPECT_EQ(Planner(off).plan_cholesky(a).evidence.phases.verify, 0.0);
}

TEST(VerifyWiring, VerifyPlanIsNotHashedIntoTheCacheKey) {
  core::SympilerOptions base, flipped;
  flipped.verify_plan = !base.verify_plan;
  EXPECT_EQ(core::hash_options(base), core::hash_options(flipped));
}

TEST(VerifyWiring, ReportToStringNamesPassAndCheck) {
  CholeskyPlan plan = supernodal_plan();
  ASSERT_TRUE(PlanMutator::apply(plan, Corruption::kOutOfBoundsIndex));
  const Report report = verify::verify_plan(plan);
  ASSERT_FALSE(report.ok());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("verify: FAIL"), std::string::npos) << text;
  EXPECT_NE(text.find("[structure]"), std::string::npos) << text;
}

// ------------------------------------------------------ emitted auditor

TEST(VerifyEmitted, CatchesDishonestSourceBytes) {
  const CholeskyPlan plan = simplicial_plan();
  ASSERT_TRUE(plan.evidence.jit_eligible);
  auto fake = std::make_shared<core::CompiledKernel>();
  fake->source_bytes = 17;  // nothing real is this small
  ASSERT_TRUE(plan.jit->publish(fake));
  VerifyOptions vo;
  vo.audit_emitted_code = true;
  const Report report = verify::verify_plan(plan, vo);
  ASSERT_FALSE(report.ok()) << report.to_string();
  EXPECT_EQ(report.findings.front().check, "emitted.source-bytes");
}

TEST(VerifyEmitted, CatchesDishonestCapAccounting) {
  const CholeskyPlan plan = simplicial_plan();
  plan.jit->mark_failed("source 17 bytes exceeds cap 5");
  VerifyOptions vo;
  vo.audit_emitted_code = true;
  const Report report = verify::verify_plan(plan, vo);
  ASSERT_FALSE(report.ok()) << report.to_string();
  EXPECT_EQ(report.findings.front().check, "emitted.cap-accounting");
}

TEST(VerifyEmitted, HonestSlotStatePassesTheAudit) {
  const CholeskyPlan plan = simplicial_plan();
  VerifyOptions vo;
  vo.audit_emitted_code = true;  // empty slot: nothing to cross-check
  const Report report = verify::verify_plan(plan, vo);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ------------------------------------------------- warm-path regression

TEST(VerifyAlloc, WarmFactorWithVerificationOnAllocatesNothing) {
  const CscMatrix a = gen::grid2d_laplacian(30, 30);
  api::SolverConfig cfg;
  cfg.options.verify_plan = true;  // verification rides the cold plan only
  api::Solver solver(cfg, nullptr);
  solver.factor(a);  // cold: plan, verify, size workspaces
  solver.factor(a);  // settle any lazy growth
  const double cold_verify = solver.plan()->evidence.phases.verify;
  EXPECT_GT(cold_verify, 0.0);
  const std::uint64_t allocs = allocations_in([&] { solver.factor(a); });
  EXPECT_EQ(allocs, 0u)
      << "warm factor() with verify_plan on touched the heap";
  // And the evidence still carries the single cold verification time.
  EXPECT_EQ(solver.plan()->evidence.phases.verify, cold_verify);
}

}  // namespace
}  // namespace sympiler
