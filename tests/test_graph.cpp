// Tests for the symbolic graph library: reach-sets (Gilbert-Peierls),
// elimination trees (Liu), row patterns (ereach), the fill pattern of L
// (paper Eq. 1), and supernode detection. Includes the paper's Figure 1
// worked example and brute-force cross-checks on random matrices.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "gen/generators.h"
#include "graph/etree.h"
#include "graph/reach.h"
#include "graph/supernodes.h"
#include "graph/symbolic.h"
#include "sparse/ops.h"

namespace sympiler {
namespace {

/// Lower-triangular L consistent with the paper's Figure 1 (0-based):
/// beta = {0, 5}, reach = {0, 5, 6, 7, 8, 9}, white nodes {1, 2, 3, 4}.
CscMatrix figure1_matrix() {
  std::vector<Triplet> trip;
  auto col = [&](index_t j, std::initializer_list<index_t> offdiag) {
    trip.push_back({j, j, 2.0});
    for (const index_t i : offdiag) trip.push_back({i, j, -1.0});
  };
  col(0, {5, 8});
  col(1, {2, 4});
  col(2, {3});
  col(3, {6});
  col(4, {6});
  col(5, {6, 8, 9});
  col(6, {7, 9});
  col(7, {8, 9});
  col(8, {9});
  col(9, {});
  return CscMatrix::from_triplets(10, 10, trip);
}

TEST(Reach, Figure1Example) {
  const CscMatrix l = figure1_matrix();
  const std::vector<index_t> beta = {0, 5};
  const std::vector<index_t> r = reach(l, beta);
  const std::set<index_t> got(r.begin(), r.end());
  const std::set<index_t> expected = {0, 5, 6, 7, 8, 9};
  EXPECT_EQ(got, expected);
  EXPECT_TRUE(is_topological_reach_order(l, r));
}

TEST(Reach, Figure1WhiteNodesSkipped) {
  const CscMatrix l = figure1_matrix();
  const std::vector<index_t> r = reach(l, std::vector<index_t>{0, 5});
  for (const index_t white : {1, 2, 3, 4})
    EXPECT_EQ(std::count(r.begin(), r.end(), white), 0);
}

TEST(Reach, SingleSourceChain) {
  // Bidiagonal L: reach from {0} is everything.
  std::vector<Triplet> trip;
  const index_t n = 6;
  for (index_t j = 0; j < n; ++j) {
    trip.push_back({j, j, 1.0});
    if (j + 1 < n) trip.push_back({j + 1, j, -1.0});
  }
  const CscMatrix l = CscMatrix::from_triplets(n, n, trip);
  const std::vector<index_t> r = reach(l, std::vector<index_t>{0});
  EXPECT_EQ(static_cast<index_t>(r.size()), n);
  EXPECT_TRUE(is_topological_reach_order(l, r));
}

TEST(Reach, EmptyBeta) {
  const CscMatrix l = figure1_matrix();
  EXPECT_TRUE(reach(l, std::vector<index_t>{}).empty());
}

TEST(Reach, OutOfRangeBetaThrows) {
  const CscMatrix l = figure1_matrix();
  EXPECT_THROW(reach(l, std::vector<index_t>{10}), invalid_matrix_error);
}

TEST(Reach, MatchesReferenceOnRandomLowerMatrices) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const index_t n = 50;
    std::vector<Triplet> trip;
    std::uniform_int_distribution<index_t> node(0, n - 1);
    for (index_t j = 0; j < n; ++j) trip.push_back({j, j, 1.0});
    for (int e = 0; e < 120; ++e) {
      index_t a = node(rng), b = node(rng);
      if (a == b) continue;
      trip.push_back({std::max(a, b), std::min(a, b), -0.5});
    }
    const CscMatrix l = CscMatrix::from_triplets(n, n, trip);
    std::vector<index_t> beta = {node(rng), node(rng), node(rng)};
    std::sort(beta.begin(), beta.end());
    beta.erase(std::unique(beta.begin(), beta.end()), beta.end());
    const std::vector<index_t> fast = reach(l, beta);
    const std::vector<index_t> ref = reach_reference(l, beta);
    EXPECT_EQ(std::set<index_t>(fast.begin(), fast.end()),
              std::set<index_t>(ref.begin(), ref.end()));
    EXPECT_TRUE(is_topological_reach_order(l, fast));
  }
}

// Hand-computed 6x6 example (see comments for the derivation).
// A lower pattern: diag + (1,0),(4,0),(3,1),(4,3),(5,2),(5,3).
CscMatrix hand_matrix() {
  std::vector<Triplet> trip;
  for (index_t j = 0; j < 6; ++j) trip.push_back({j, j, 4.0});
  trip.push_back({1, 0, -1.0});
  trip.push_back({4, 0, -1.0});
  trip.push_back({3, 1, -1.0});
  trip.push_back({4, 3, -1.0});
  trip.push_back({5, 2, -1.0});
  trip.push_back({5, 3, -1.0});
  return CscMatrix::from_triplets(6, 6, trip);
}

TEST(Etree, HandExample) {
  // parent[0]=1 (L(1,0)), parent[1]=3 (A(3,1)), parent[2]=5, parent[3]=4,
  // parent[4]=5 (fill via child 3), parent[5]=-1.
  const std::vector<index_t> parent = elimination_tree(hand_matrix());
  const std::vector<index_t> expected = {1, 3, 5, 4, 5, -1};
  EXPECT_EQ(parent, expected);
  EXPECT_TRUE(is_valid_etree(parent));
}

TEST(Etree, DiagonalMatrixIsForestOfRoots) {
  const CscMatrix d = CscMatrix::identity(5);
  const std::vector<index_t> parent = elimination_tree(d);
  for (const index_t p : parent) EXPECT_EQ(p, -1);
}

TEST(Etree, PostorderVisitsChildrenFirst) {
  const std::vector<index_t> parent = elimination_tree(hand_matrix());
  const std::vector<index_t> post = postorder(parent);
  EXPECT_EQ(post.size(), 6u);
  std::vector<index_t> position(6);
  for (index_t k = 0; k < 6; ++k) position[post[k]] = k;
  for (index_t v = 0; v < 6; ++v)
    if (parent[v] != -1) EXPECT_LT(position[v], position[parent[v]]);
}

TEST(Etree, ChildCountsAndLists) {
  const std::vector<index_t> parent = {1, 3, 5, 4, 5, -1};
  const std::vector<index_t> cc = child_counts(parent);
  EXPECT_EQ(cc, (std::vector<index_t>{0, 1, 0, 1, 1, 2}));
  const ChildLists cl = build_child_lists(parent);
  EXPECT_EQ(cl.roots, (std::vector<index_t>{5}));
  // children of 5 in ascending order: 2, 4
  EXPECT_EQ(cl.head[5], 2);
  EXPECT_EQ(cl.next[2], 4);
  EXPECT_EQ(cl.next[4], -1);
}

TEST(Etree, LevelsFromLeaves) {
  const std::vector<index_t> parent = {1, 3, 5, 4, 5, -1};
  const std::vector<index_t> lvl = levels_from_leaves(parent);
  // leaves 0,2: level 0; 1: 1; 3: 2; 4: 3; 5: 4.
  EXPECT_EQ(lvl, (std::vector<index_t>{0, 1, 0, 2, 3, 4}));
}

TEST(Symbolic, HandExampleColcountsAndFill) {
  const SymbolicFactor s = symbolic_cholesky(hand_matrix());
  EXPECT_EQ(s.colcount, (std::vector<index_t>{3, 3, 2, 3, 2, 1}));
  EXPECT_EQ(s.fill_nnz, 14);
  // Fill-in entries: L(4,1) and L(5,4).
  const CscMatrix& lp = s.l_pattern;
  auto has = [&](index_t i, index_t j) {
    for (index_t p = lp.col_begin(j); p < lp.col_end(j); ++p)
      if (lp.rowind[p] == i) return true;
    return false;
  };
  EXPECT_TRUE(has(4, 1));
  EXPECT_TRUE(has(5, 4));
  EXPECT_FALSE(has(5, 0));
}

/// Brute-force filled-graph computation by right-looking elimination on a
/// dense boolean matrix.
CscMatrix brute_force_fill(const CscMatrix& a_lower) {
  const index_t n = a_lower.cols();
  std::vector<std::vector<char>> b(n, std::vector<char>(n, 0));
  for (index_t j = 0; j < n; ++j)
    for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p) {
      b[a_lower.rowind[p]][j] = 1;
      b[j][a_lower.rowind[p]] = 1;
    }
  for (index_t j = 0; j < n; ++j) {
    std::vector<index_t> s;
    for (index_t i = j + 1; i < n; ++i)
      if (b[i][j]) s.push_back(i);
    for (std::size_t x = 0; x < s.size(); ++x)
      for (std::size_t y = x + 1; y < s.size(); ++y) {
        b[s[y]][s[x]] = 1;
        b[s[x]][s[y]] = 1;
      }
  }
  std::vector<Triplet> trip;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i)
      if (b[i][j] || i == j) trip.push_back({i, j, 0.0});
  return CscMatrix::from_triplets(n, n, trip);
}

/// The structural regimes the planner sees: meshes (both orderings), 3-D,
/// dof-blocks, irregular random, banded, tree-like, and degenerate.
std::vector<CscMatrix> generator_patterns() {
  std::vector<CscMatrix> mats;
  mats.push_back(gen::grid2d_laplacian(20, 20));
  mats.push_back(gen::grid2d_laplacian(17, 23, gen::GridOrder::Natural));
  mats.push_back(gen::grid3d_laplacian(7, 8, 6));
  mats.push_back(gen::block_structural(8, 9, 3, 42));
  mats.push_back(gen::random_spd(300, 3.0, 7));
  mats.push_back(gen::banded_spd(200, 11, 3));
  mats.push_back(gen::power_grid(400, 60, 9));
  mats.push_back(CscMatrix::identity(50));  // forest of roots, zero fill
  return mats;
}

TEST(Symbolic, GnpCountsMatchNaiveOnEveryGeneratorPattern) {
  // The GNP skeleton/LCA counts never materialize a row pattern; they must
  // nevertheless equal the count-every-ereach reference exactly.
  std::size_t idx = 0;
  for (const CscMatrix& a : generator_patterns()) {
    const SymbolicFactor naive = symbolic_cholesky_naive(a);
    const std::vector<index_t> post = postorder(naive.parent);
    const std::vector<index_t> counts =
        cholesky_counts(a, naive.parent, post);
    EXPECT_EQ(counts, naive.colcount) << "pattern " << idx;
    ++idx;
  }
}

TEST(Symbolic, FusedSweepMatchesNaiveBitForBitOnEveryGeneratorPattern) {
  // The fused one-transpose sweep must reproduce the naive two-pass
  // product exactly: same parent, counts, pattern order, values, flops.
  std::size_t idx = 0;
  for (const CscMatrix& a : generator_patterns()) {
    const SymbolicFactor fast = symbolic_cholesky(a);
    const SymbolicFactor naive = symbolic_cholesky_naive(a);
    EXPECT_EQ(fast.parent, naive.parent) << "pattern " << idx;
    EXPECT_EQ(fast.colcount, naive.colcount) << "pattern " << idx;
    EXPECT_EQ(fast.l_pattern.colptr, naive.l_pattern.colptr)
        << "pattern " << idx;
    EXPECT_EQ(fast.l_pattern.rowind, naive.l_pattern.rowind)
        << "pattern " << idx;  // exact emission order, not just the set
    EXPECT_EQ(fast.l_pattern.values, naive.l_pattern.values)
        << "pattern " << idx;
    EXPECT_EQ(fast.fill_nnz, naive.fill_nnz) << "pattern " << idx;
    EXPECT_EQ(fast.flops, naive.flops) << "pattern " << idx;
    ++idx;
  }
}

TEST(Symbolic, FillPatternSharedUpperAndRowHistogram) {
  const CscMatrix a = gen::grid2d_laplacian(15, 15);
  const CscMatrix upper = transpose(a);
  const SymbolicFactor via_upper = symbolic_cholesky(a, upper);
  const SymbolicFactor direct = symbolic_cholesky(a);
  EXPECT_TRUE(via_upper.l_pattern.equals(direct.l_pattern));

  // The row-offdiag histogram the sweep emits for free must equal the
  // off-diagonal row counts of the pattern's transpose.
  std::vector<index_t> row_off;
  const CscMatrix lp = cholesky_fill_pattern(
      upper, via_upper.parent, via_upper.colcount, /*with_values=*/false,
      &row_off);
  EXPECT_TRUE(lp.same_pattern(direct.l_pattern));
  EXPECT_TRUE(lp.values.empty());
  const CscMatrix lt = transpose(direct.l_pattern);
  for (index_t i = 0; i < a.cols(); ++i) {
    index_t expected = 0;
    for (index_t p = lt.col_begin(i); p < lt.col_end(i); ++p)
      if (lt.rowind[p] < i) ++expected;
    ASSERT_EQ(row_off[i], expected) << "row " << i;
  }
}

TEST(Etree, FromUpperMatchesTransposingVariant) {
  for (const CscMatrix& a : generator_patterns()) {
    EXPECT_EQ(elimination_tree_from_upper(transpose(a)),
              elimination_tree(a));
  }
}

TEST(Symbolic, MatchesBruteForceAndReferenceOnRandom) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const CscMatrix a = gen::random_spd(40, 2.5, 1000 + trial);
    const SymbolicFactor s = symbolic_cholesky(a);
    const CscMatrix brute = brute_force_fill(a);
    EXPECT_TRUE(s.l_pattern.same_pattern(brute))
        << "trial " << trial << ": ereach-based pattern != brute force";
    const CscMatrix ref = symbolic_cholesky_reference(a);
    EXPECT_TRUE(s.l_pattern.same_pattern(ref))
        << "trial " << trial << ": ereach-based pattern != Eq.1 reference";
  }
  (void)rng;
}

TEST(Symbolic, EtreeMatchesMinRowOfFactorPattern) {
  for (int trial = 0; trial < 10; ++trial) {
    const CscMatrix a = gen::random_spd(35, 2.0, 77 + trial);
    const SymbolicFactor s = symbolic_cholesky(a);
    for (index_t j = 0; j < a.cols(); ++j) {
      index_t min_row = -1;
      for (index_t p = s.l_pattern.col_begin(j) + 1;
           p < s.l_pattern.col_end(j); ++p) {
        min_row = s.l_pattern.rowind[p];
        break;
      }
      EXPECT_EQ(s.parent[j], min_row) << "column " << j;
    }
  }
}

TEST(Symbolic, RowPatternsAreTopologicalAndComplete) {
  const CscMatrix a = gen::random_spd(30, 2.0, 5);
  const SymbolicFactor s = symbolic_cholesky(a);
  ERreach er(a, s.parent);
  const CscMatrix lt = transpose(s.l_pattern);
  for (index_t i = 0; i < a.cols(); ++i) {
    const auto rp = er.row_pattern(i);
    // Must equal the off-diagonal pattern of row i of L.
    std::vector<index_t> expected;
    for (index_t p = lt.col_begin(i); p < lt.col_end(i); ++p)
      if (lt.rowind[p] < i) expected.push_back(lt.rowind[p]);
    ASSERT_EQ(rp.size(), expected.size()) << "row " << i;
    std::vector<index_t> got(rp.begin(), rp.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "row " << i;
  }
}

TEST(Supernodes, CholeskyRuleOnGrid) {
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  const SymbolicFactor s = symbolic_cholesky(a);
  const SupernodePartition sn = supernodes_cholesky(s.parent, s.colcount);
  EXPECT_TRUE(sn.valid(a.cols()));
  EXPECT_TRUE(supernodes_consistent(sn, s.l_pattern));
  // Nested dissection on a 12x12 grid must produce some wide supernodes.
  index_t max_w = 0;
  for (index_t i = 0; i < sn.count(); ++i) max_w = std::max(max_w, sn.width(i));
  EXPECT_GE(max_w, 4);
}

TEST(Supernodes, CholeskyRuleOnRandom) {
  for (int trial = 0; trial < 10; ++trial) {
    const CscMatrix a = gen::random_spd(60, 3.0, 900 + trial);
    const SymbolicFactor s = symbolic_cholesky(a);
    const SupernodePartition sn = supernodes_cholesky(s.parent, s.colcount);
    EXPECT_TRUE(supernodes_consistent(sn, s.l_pattern)) << "trial " << trial;
  }
}

TEST(Supernodes, WidthCapRespected) {
  const CscMatrix a = gen::banded_spd(64, 63, 9);  // fully dense: one block
  const SymbolicFactor s = symbolic_cholesky(a);
  SupernodeOptions opt;
  opt.max_width = 8;
  const SupernodePartition sn = supernodes_cholesky(s.parent, s.colcount, opt);
  for (index_t i = 0; i < sn.count(); ++i) EXPECT_LE(sn.width(i), 8);
  EXPECT_TRUE(supernodes_consistent(sn, s.l_pattern));
}

TEST(Supernodes, NodeEquivalenceOnFigure1) {
  const CscMatrix l = figure1_matrix();
  const SupernodePartition sn = supernodes_node_equivalence(l);
  EXPECT_TRUE(sn.valid(10));
  // Columns 8 and 9: offdiag(8) = {9} == pattern(9) = {9} -> same block.
  EXPECT_EQ(sn.col_to_super[8], sn.col_to_super[9]);
  // Columns 0 and 1 clearly differ.
  EXPECT_NE(sn.col_to_super[0], sn.col_to_super[1]);
  EXPECT_TRUE(supernodes_consistent(sn, l));
}

TEST(Supernodes, NodeEquivalenceMatchesCholeskyRuleOnFactors) {
  // On an actual Cholesky factor pattern, node-equivalence blocks must
  // also satisfy the supernodal invariant.
  const CscMatrix a = gen::grid2d_laplacian(10, 10);
  const SymbolicFactor s = symbolic_cholesky(a);
  const SupernodePartition ne = supernodes_node_equivalence(s.l_pattern);
  EXPECT_TRUE(supernodes_consistent(ne, s.l_pattern));
}

TEST(Supernodes, SupernodeEtreeIsForest) {
  const CscMatrix a = gen::grid2d_laplacian(9, 9);
  const SymbolicFactor s = symbolic_cholesky(a);
  const SupernodePartition sn = supernodes_cholesky(s.parent, s.colcount);
  const std::vector<index_t> sp = supernode_etree(sn, s.parent);
  for (index_t i = 0; i < sn.count(); ++i) {
    if (sp[i] != -1) EXPECT_GT(sp[i], i);
  }
}

TEST(Supernodes, RelaxedAmalgamationCoarsensPartition) {
  const CscMatrix a = gen::grid2d_laplacian(16, 16);
  const SymbolicFactor s = symbolic_cholesky(a);
  const SupernodePartition strict = supernodes_cholesky(s.parent, s.colcount);
  SupernodeOptions relax;
  relax.relax = true;
  relax.relax_ratio = 0.5;
  const SupernodePartition relaxed =
      supernodes_cholesky(s.parent, s.colcount, relax);
  EXPECT_LE(relaxed.count(), strict.count());
}

}  // namespace
}  // namespace sympiler
