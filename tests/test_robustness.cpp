// Failure-domain tests: the structured error taxonomy, deterministic
// fault injection at every instrumented site, and the facades'
// graceful-degradation ladder (docs/robustness.md).
//
// The recurring shape: arm a fault, run a pipeline stage, assert it
// surfaces a structured error OR a documented degraded success — then
// disarm and assert the SAME solver recovers, producing results
// bit-identical to a never-faulted run. That recovery check is the
// heart of the failure-domain contract: a contained failure leaves no
// residue in the workspace, the JIT slot, or the cache entry.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "api/solver.h"
#include "core/plan_store.h"
#include "gen/generators.h"
#include "sparse/io_mm.h"
#include "util/fault.h"
#include "util/status.h"

#ifdef SYMPILER_HAS_OPENMP
#include <omp.h>
#endif

namespace sympiler {
namespace {

using util::FaultInjector;
using util::FaultSite;

/// Disarm on scope exit so a failing assertion can never leak an armed
/// trigger into later tests.
struct FaultGuard {
  FaultGuard() { FaultInjector::reset(); }
  ~FaultGuard() { FaultInjector::reset(); }
};

void expect_bits_equal(const std::vector<value_t>& got,
                       const std::vector<value_t>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << "first bit difference at index " << i;
}

/// Clean-reference factor + solve under `config`.
std::vector<value_t> reference_solution(const CscMatrix& a,
                                        const api::SolverConfig& config) {
  api::Solver solver(config, nullptr);
  solver.factor(a);
  std::vector<value_t> x = gen::dense_rhs(a.cols(), 77);
  solver.solve(x);
  return x;
}

api::SolverConfig parallel_config() {
  api::SolverConfig config;
  config.enable_parallel = true;
  config.parallel_min_supernodes = 1;
  config.parallel_min_avg_level_width = 0.0;
  return config;
}

api::SolverConfig simplicial_config() {
  api::SolverConfig config;
  config.options.vsblock_min_avg_size = 1e9;  // VS-Block never profitable
  return config;
}

/// Copy of `a` with the diagonal of column `j` overwritten.
CscMatrix with_diagonal(const CscMatrix& a, index_t j, value_t d) {
  CscMatrix out = a;
  const index_t p = out.col_begin(j);
  EXPECT_EQ(out.rowind[static_cast<std::size_t>(p)], j);
  out.values[static_cast<std::size_t>(p)] = d;
  return out;
}

// ------------------------------------------------------ injector mechanics

TEST(FaultInjectorTest, ParsesSpecs) {
  FaultSite site{};
  std::uint64_t nth = 0, count = 0;
  ASSERT_TRUE(FaultInjector::parse("pivot:3", &site, &nth, &count));
  EXPECT_EQ(site, FaultSite::kPivot);
  EXPECT_EQ(nth, 3u);
  EXPECT_EQ(count, 1u);

  ASSERT_TRUE(FaultInjector::parse("alloc:2:5", &site, &nth, &count));
  EXPECT_EQ(site, FaultSite::kAlloc);
  EXPECT_EQ(nth, 2u);
  EXPECT_EQ(count, 5u);

  ASSERT_TRUE(FaultInjector::parse("jit-compile:1", &site, &nth, &count));
  EXPECT_EQ(site, FaultSite::kJitCompile);
  ASSERT_TRUE(FaultInjector::parse("jit-load:1", &site, &nth, &count));
  EXPECT_EQ(site, FaultSite::kJitLoad);
  ASSERT_TRUE(FaultInjector::parse("cache-insert:1", &site, &nth, &count));
  EXPECT_EQ(site, FaultSite::kCacheInsert);

  EXPECT_FALSE(FaultInjector::parse(nullptr, &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("pivot", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("pivot:0", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("unknown-site:1", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("pivot:abc", &site, &nth, &count));
}

TEST(FaultInjectorTest, ParsesPersistenceSites) {
  FaultSite site{};
  std::uint64_t nth = 0, count = 0;
  ASSERT_TRUE(FaultInjector::parse("store-write:1", &site, &nth, &count));
  EXPECT_EQ(site, FaultSite::kStoreWrite);
  ASSERT_TRUE(FaultInjector::parse("store-read:2:3", &site, &nth, &count));
  EXPECT_EQ(site, FaultSite::kStoreRead);
  EXPECT_EQ(nth, 2u);
  EXPECT_EQ(count, 3u);
  ASSERT_TRUE(FaultInjector::parse("store-checksum:1", &site, &nth, &count));
  EXPECT_EQ(site, FaultSite::kStoreChecksum);
}

// The spec grammar is strict: strtoull's whitespace/sign tolerance must
// not leak through ("pivot:-1" wrapping to ordinal 2^64-1 would arm a
// trigger that never fires — the typo'd spec silently testing the happy
// path the injector exists to avoid).
TEST(FaultInjectorTest, RejectsSloppyNumerals) {
  FaultSite site{};
  std::uint64_t nth = 0, count = 0;
  EXPECT_FALSE(FaultInjector::parse("pivot:-1", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("pivot:+1", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("pivot: 1", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("pivot:1 ", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("pivot:1:", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("pivot:1:-2", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("pivot:1: 2", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("pivot:1:2:3", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("pivot:1x", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse(":1", &site, &nth, &count));
  EXPECT_FALSE(FaultInjector::parse("PIVOT:1", &site, &nth, &count));
}

// A malformed SYMPILER_FAULT must reject loudly: injector disarmed and a
// sticky structured kInvalidInput naming the bad spec in env_status().
TEST(EnvFault, MalformedSpecRejectsWithStructuredStatus) {
  FaultGuard fg;
  const char* saved = std::getenv("SYMPILER_FAULT");
  const std::string saved_copy = saved != nullptr ? saved : "";

  ASSERT_EQ(setenv("SYMPILER_FAULT", "store-wrlte:1", 1), 0);
  EXPECT_FALSE(FaultInjector::arm_from_env());
  const Status bad = FaultInjector::env_status();
  EXPECT_EQ(bad.code, ErrorCode::kInvalidInput);
  EXPECT_NE(bad.message.find("store-wrlte:1"), std::string::npos);
  EXPECT_NE(bad.message.find("store-write"), std::string::npos)
      << "the diagnostic should list the valid site names";
  EXPECT_FALSE(FaultInjector::should_fail(FaultSite::kStoreWrite));

  // A clean spec (or an absent variable) clears the sticky status.
  ASSERT_EQ(setenv("SYMPILER_FAULT", "store-write:1", 1), 0);
  EXPECT_TRUE(FaultInjector::arm_from_env());
  EXPECT_TRUE(FaultInjector::env_status().ok());

  if (saved != nullptr) {
    ASSERT_EQ(setenv("SYMPILER_FAULT", saved_copy.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("SYMPILER_FAULT"), 0);
  }
  FaultInjector::reset();
}

TEST(FaultInjectorTest, FiresAtTheArmedOrdinalOnly) {
  FaultGuard fg;
  FaultInjector::arm(FaultSite::kPivot, 2, 2);
  EXPECT_FALSE(FaultInjector::should_fail(FaultSite::kPivot));  // pass 1
  EXPECT_TRUE(FaultInjector::should_fail(FaultSite::kPivot));   // pass 2
  EXPECT_TRUE(FaultInjector::should_fail(FaultSite::kPivot));   // pass 3
  EXPECT_FALSE(FaultInjector::should_fail(FaultSite::kPivot));  // pass 4
  // A different site never fires from this trigger.
  EXPECT_FALSE(FaultInjector::should_fail(FaultSite::kAlloc));
  EXPECT_EQ(FaultInjector::hits(FaultSite::kPivot), 4u);
  EXPECT_EQ(FaultInjector::fired(), 2u);

  FaultInjector::reset();
  EXPECT_FALSE(FaultInjector::should_fail(FaultSite::kPivot));
  EXPECT_EQ(FaultInjector::hits(FaultSite::kPivot), 0u);
  EXPECT_EQ(FaultInjector::fired(), 0u);
}

TEST(FaultInjectorTest, SiteNamesRoundTripThroughParse) {
  for (int s = 0; s < util::kFaultSiteCount; ++s) {
    const auto site = static_cast<FaultSite>(s);
    const std::string spec = std::string(FaultInjector::name(site)) + ":1";
    FaultSite parsed{};
    std::uint64_t nth = 0, count = 0;
    ASSERT_TRUE(FaultInjector::parse(spec.c_str(), &parsed, &nth, &count))
        << spec;
    EXPECT_EQ(parsed, site);
  }
}

// -------------------------------------------------------- input validation

TEST(Validation, RejectsNonSquareMatrix) {
  const std::vector<Triplet> trip = {{0, 0, 1.0}, {1, 1, 1.0}, {1, 2, 1.0}};
  const CscMatrix a = CscMatrix::from_triplets(2, 3, trip);
  api::Solver solver;
  try {
    solver.factor(a);
    FAIL() << "expected invalid_matrix_error";
  } catch (const invalid_matrix_error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
}

TEST(Validation, RejectsMissingDiagonal) {
  // Column 1 has no (1,1) entry: its first stored row is 2.
  const std::vector<Triplet> trip = {{0, 0, 4.0}, {2, 1, 1.0}, {2, 2, 4.0}};
  const CscMatrix a = CscMatrix::from_triplets(3, 3, trip);
  api::Solver solver;
  try {
    solver.factor(a);
    FAIL() << "expected invalid_matrix_error";
  } catch (const invalid_matrix_error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
    EXPECT_NE(std::string(e.what()).find("missing diagonal"),
              std::string::npos);
  }
}

TEST(Validation, RejectsUpperTriangleEntry) {
  const std::vector<Triplet> trip = {
      {0, 0, 4.0}, {0, 1, 1.0}, {1, 1, 4.0}, {2, 2, 4.0}};
  const CscMatrix a = CscMatrix::from_triplets(3, 3, trip);
  api::Solver solver;
  try {
    solver.factor(a);
    FAIL() << "expected invalid_matrix_error";
  } catch (const invalid_matrix_error& e) {
    EXPECT_NE(std::string(e.what()).find("above the diagonal"),
              std::string::npos);
  }
}

TEST(Validation, ValueScanRejectsNaN) {
  CscMatrix a = gen::grid2d_laplacian(6, 6);
  a.values[3] = std::nan("");
  api::SolverConfig config;
  config.options.scan_values = true;
  api::Solver scanning(config, nullptr);
  try {
    scanning.factor(a);
    FAIL() << "expected invalid_matrix_error";
  } catch (const invalid_matrix_error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
  }
  // Without the scan the NaN reaches the numeric phase, where the pivot
  // check classifies it as a numeric breakdown — different taxonomy code,
  // same structured surface.
  api::Solver lax;
  EXPECT_THROW(lax.factor(a), Error);
}

TEST(Validation, TriangularSolverRejectsOutOfRangeRhsPattern) {
  api::Solver chol;
  const CscMatrix a = gen::grid2d_laplacian(8, 8);
  chol.factor(a);
  const CscMatrix l = chol.factor_csc();
  const std::vector<index_t> beta = {0, l.cols()};  // second index past n-1
  try {
    const api::TriangularSolver tri(l, beta);
    FAIL() << "expected invalid_matrix_error";
  } catch (const invalid_matrix_error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
}

// ----------------------------------------------- pivot faults, serial paths

void check_pivot_fault_then_recovery(const api::SolverConfig& config,
                                     api::ExecutionPath expected_path) {
  FaultGuard fg;
  const CscMatrix a = gen::grid2d_laplacian(16, 16);
  const std::vector<value_t> want = reference_solution(a, config);

  api::Solver solver(config, nullptr);
  solver.factor(a);
  ASSERT_EQ(solver.path(), expected_path);

  FaultInjector::arm(FaultSite::kPivot, 1);
  try {
    solver.factor(a);
    FAIL() << "expected numerical_error";
  } catch (const numerical_error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNumericBreakdown);
    EXPECT_GE(e.pivot_index(), 0);
  }
  // The failed factor must not be reachable.
  std::vector<value_t> x = gen::dense_rhs(a.cols(), 77);
  EXPECT_THROW(solver.solve(x), invalid_matrix_error);

  // Factor-after-failure on the SAME solver: disarm, refactor, and the
  // solution must be bit-identical to a never-faulted run.
  FaultInjector::reset();
  solver.factor(a);
  EXPECT_FALSE(solver.report().degraded());
  x = gen::dense_rhs(a.cols(), 77);
  solver.solve(x);
  expect_bits_equal(x, want);
}

TEST(FaultSweep, PivotOnSupernodalPath) {
  check_pivot_fault_then_recovery(api::SolverConfig{},
                                  api::ExecutionPath::Supernodal);
}

TEST(FaultSweep, PivotOnSimplicialPath) {
  check_pivot_fault_then_recovery(simplicial_config(),
                                  api::ExecutionPath::Simplicial);
}

// --------------------------------------------------- allocation-site faults

TEST(FaultSweep, AllocFaultDuringColdPlanLeavesSolverReusable) {
  // The executor's workspace grows during prepare_symbolic: an allocation
  // fault there escapes as a structured resource error, and the solver's
  // symbolic state must not be left half-routed (the stale-key hazard) —
  // the next factor() of the same pattern must rebuild cleanly.
  FaultGuard fg;
  const CscMatrix a = gen::grid2d_laplacian(16, 16);
  const std::vector<value_t> want =
      reference_solution(a, api::SolverConfig{});

  api::Solver solver;
  FaultInjector::arm(FaultSite::kAlloc, 1);
  try {
    solver.factor(a);
    FAIL() << "expected resource_exhausted_error";
  } catch (const resource_exhausted_error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
  }

  FaultInjector::reset();
  solver.factor(a);
  std::vector<value_t> x = gen::dense_rhs(a.cols(), 77);
  solver.solve(x);
  expect_bits_equal(x, want);
}

// ------------------------------------------------------------- JIT faults

void check_jit_fault_degrades_to_interpreter(FaultSite site) {
  FaultGuard fg;
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  const std::vector<value_t> want =
      reference_solution(a, api::SolverConfig{});  // jit off: interpreter

  api::SolverConfig config;
  config.options.jit = core::JitMode::kAlways;
  api::Solver solver(config, nullptr);
  FaultInjector::arm(site, 1);
  solver.factor(a);  // must succeed via the interpreter rung
  EXPECT_TRUE(solver.report().jit_degraded);
  EXPECT_EQ(solver.report().last_error.code, ErrorCode::kJitUnavailable);
  std::vector<value_t> x = gen::dense_rhs(a.cols(), 77);
  solver.solve(x);
  expect_bits_equal(x, want);

  // The failure is sticky per plan: later factors keep degrading (no
  // retry storm) and stay bit-identical.
  FaultInjector::reset();
  solver.factor(a);
  EXPECT_TRUE(solver.report().jit_degraded);
  x = gen::dense_rhs(a.cols(), 77);
  solver.solve(x);
  expect_bits_equal(x, want);
}

TEST(FaultSweep, JitCompileFaultDegradesToInterpreter) {
  check_jit_fault_degrades_to_interpreter(FaultSite::kJitCompile);
}

TEST(FaultSweep, JitLoadFaultDegradesToInterpreter) {
  check_jit_fault_degrades_to_interpreter(FaultSite::kJitLoad);
}

TEST(FaultSweep, JitFaultOnTriangularSolver) {
  FaultGuard fg;
  api::Solver chol;
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  chol.factor(a);
  const CscMatrix l = chol.factor_csc();
  std::vector<index_t> beta(static_cast<std::size_t>(l.cols()));
  for (index_t j = 0; j < l.cols(); ++j) beta[j] = j;

  const std::vector<value_t> b = gen::dense_rhs(l.cols(), 31);
  std::vector<value_t> want = b;
  {
    const api::TriangularSolver tri(l, beta);  // jit off
    tri.solve(want);
  }

  api::SolverConfig config;
  config.options.jit = core::JitMode::kAlways;
  const api::TriangularSolver tri(l, beta, config, nullptr);
  if (!tri.plan()->evidence.jit_eligible)
    GTEST_SKIP() << "planned path is not JIT-eligible here";
  FaultInjector::arm(FaultSite::kJitCompile, 1);
  std::vector<value_t> x = b;
  tri.solve(x);
  EXPECT_TRUE(tri.report().jit_degraded);
  EXPECT_EQ(tri.report().last_error.code, ErrorCode::kJitUnavailable);
  expect_bits_equal(x, want);
}

// ------------------------------------------------------ cache-insert fault

TEST(FaultSweep, CacheInsertFaultDegradesToUncachedPlan) {
  FaultGuard fg;
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  auto context = std::make_shared<api::SymbolicContext>();

  FaultInjector::arm(FaultSite::kCacheInsert, 1);
  api::Solver first(api::SolverConfig{}, context);
  first.factor(a);  // plan built and used, insert dropped
  EXPECT_FALSE(first.symbolic_cached());
  std::vector<value_t> x = gen::dense_rhs(a.cols(), 77);
  first.solve(x);
  expect_bits_equal(x, reference_solution(a, api::SolverConfig{}));

  // The drop is one-shot: the next cold lookup rebuilds AND inserts, and
  // a third solver hits the cache as usual.
  FaultInjector::reset();
  api::Solver second(api::SolverConfig{}, context);
  second.factor(a);
  api::Solver third(api::SolverConfig{}, context);
  third.factor(a);
  EXPECT_TRUE(third.symbolic_cached());
}

// ------------------------------------------------------- shift-retry ladder

TEST(ShiftLadder, DisabledByDefaultSurfacesThePivot) {
  const CscMatrix a =
      with_diagonal(gen::grid2d_laplacian(8, 8), 0, -0.1);
  api::Solver solver;
  try {
    solver.factor(a);
    FAIL() << "expected numerical_error";
  } catch (const numerical_error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNumericBreakdown);
    EXPECT_EQ(e.pivot_index(), 0);
  }
}

TEST(ShiftLadder, RescuesANearSingularDiagonal) {
  const CscMatrix a =
      with_diagonal(gen::grid2d_laplacian(8, 8), 0, -0.1);
  api::SolverConfig config;
  config.options.shift_attempts = 6;
  api::Solver solver(config, nullptr);
  solver.factor(a);  // succeeds on some shifted attempt
  const api::FactorReport& report = solver.report();
  EXPECT_TRUE(report.degraded());
  EXPECT_GT(report.shift_attempts_used, 0);
  EXPECT_GT(report.shift_applied, 0.0);
  EXPECT_EQ(report.last_error.code, ErrorCode::kNumericBreakdown);
  EXPECT_NE(report.to_string().find("diagonal-shift"), std::string::npos);

  // The factorization is of A + sigma*I: solving must produce finite
  // numbers (the exact solution is of the perturbed system, by contract).
  std::vector<value_t> x = gen::dense_rhs(a.cols(), 77);
  solver.solve(x);
  for (const value_t v : x) EXPECT_TRUE(std::isfinite(v));
}

TEST(ShiftLadder, InjectedTransientPivotRetriesOnce) {
  // A one-shot injected pivot failure plus an enabled ladder: the retry
  // refactors (shifted) and succeeds — a degraded success instead of an
  // escaped exception.
  FaultGuard fg;
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  api::SolverConfig config;
  config.options.shift_attempts = 2;
  api::Solver solver(config, nullptr);
  FaultInjector::arm(FaultSite::kPivot, 1);
  solver.factor(a);
  EXPECT_EQ(solver.report().shift_attempts_used, 1);
  EXPECT_TRUE(solver.report().degraded());
}

TEST(ShiftLadder, GivesUpAfterTheConfiguredAttempts) {
  FaultGuard fg;
  const CscMatrix a = gen::grid2d_laplacian(8, 8);
  api::SolverConfig config;
  config.options.shift_attempts = 2;
  api::Solver solver(config, nullptr);
  // Fire on every pivot pass: no shift can rescue the injected failure.
  FaultInjector::arm(FaultSite::kPivot, 1,
                     std::numeric_limits<std::uint64_t>::max());
  EXPECT_THROW(solver.factor(a), numerical_error);
  FaultInjector::reset();
  solver.factor(a);  // and the same solver still recovers
  EXPECT_FALSE(solver.report().degraded());
}

// ----------------------------------------------- parallel-path degradation

#ifdef SYMPILER_HAS_OPENMP

TEST(ParallelDegradation, AllocFaultFallsBackToSerialFactor) {
  FaultGuard fg;
  const api::SolverConfig config = parallel_config();
  const CscMatrix a = gen::grid2d_laplacian(40, 40);
  const std::vector<value_t> want = reference_solution(a, config);

  api::Solver solver(config, nullptr);
  solver.factor(a);
  ASSERT_EQ(solver.path(), api::ExecutionPath::ParallelSupernodal);

  FaultInjector::arm(FaultSite::kAlloc, 1);
  solver.factor(a);  // degraded success: serial re-execution
  EXPECT_TRUE(solver.report().serial_fallback);
  EXPECT_EQ(solver.report().last_error.code, ErrorCode::kResourceExhausted);
  std::vector<value_t> x = gen::dense_rhs(a.cols(), 77);
  solver.solve(x);
  expect_bits_equal(x, want);

  FaultInjector::reset();
  solver.factor(a);
  EXPECT_FALSE(solver.report().degraded());
}

TEST(ParallelDegradation, PivotFaultPropagatesAndSolverRecovers) {
  // Containment, not degradation: a pivot failure inside the parallel
  // region must cross the region boundary as one exception (never
  // std::terminate) and propagate — a serial re-run would hit the same
  // data. Checked at 1, 2, and 4 threads.
  FaultGuard fg;
  const api::SolverConfig config = parallel_config();
  const CscMatrix a = gen::grid2d_laplacian(40, 40);
  const std::vector<value_t> want = reference_solution(a, config);
  const int original_threads = omp_get_max_threads();

  for (const int threads : {1, 2, 4}) {
    omp_set_num_threads(threads);
    api::Solver solver(config, nullptr);
    solver.factor(a);
    ASSERT_EQ(solver.path(), api::ExecutionPath::ParallelSupernodal);

    FaultInjector::arm(FaultSite::kPivot, 1);
    EXPECT_THROW(solver.factor(a), numerical_error) << threads << " threads";
    FaultInjector::reset();

    solver.factor(a);
    std::vector<value_t> x = gen::dense_rhs(a.cols(), 77);
    solver.solve(x);
    expect_bits_equal(x, want);
  }
  omp_set_num_threads(original_threads);
}

TEST(ParallelDegradation, BatchSolveFallsBackSerially) {
  FaultGuard fg;
  const api::SolverConfig config = parallel_config();
  const CscMatrix a = gen::grid2d_laplacian(40, 40);
  const auto n = static_cast<std::size_t>(a.cols());
  const index_t nrhs = 8;

  api::Solver solver(config, nullptr);
  solver.factor(a);
  ASSERT_EQ(solver.path(), api::ExecutionPath::ParallelSupernodal);
  std::vector<value_t> want = gen::dense_rhs(a.cols() * nrhs, 13);
  std::vector<value_t> got = want;
  solver.solve_batch(want, nrhs);  // clean run (grows the packed block)

  FaultInjector::arm(FaultSite::kPivot, 1);
  solver.solve_batch(got, nrhs);
  EXPECT_TRUE(solver.report().serial_fallback);
  expect_bits_equal(got, want);
  (void)n;
}

TEST(ParallelDegradation, TriSolveFaultsFallBackSerially) {
  FaultGuard fg;
  api::SolverConfig config = parallel_config();
  config.options.vsblock_min_avg_size = 1e9;  // pruned -> parallel trisolve
  api::Solver chol(config, nullptr);
  const CscMatrix a = gen::grid2d_laplacian(30, 30);
  chol.factor(a);
  const CscMatrix l = chol.factor_csc();
  std::vector<index_t> beta(static_cast<std::size_t>(l.cols()));
  for (index_t j = 0; j < l.cols(); ++j) beta[j] = j;

  const api::TriangularSolver tri(l, beta, config, nullptr);
  ASSERT_EQ(tri.path(), api::ExecutionPath::ParallelTriSolve);

  const std::vector<value_t> b = gen::dense_rhs(l.cols(), 31);
  std::vector<value_t> want = b;
  tri.solve(want);  // clean parallel run

  // Pivot fault mid-sweep: input restored from the snapshot, serial
  // re-sweep, bit-identical result.
  FaultInjector::arm(FaultSite::kPivot, 1);
  std::vector<value_t> x = b;
  tri.solve(x);
  EXPECT_TRUE(tri.report().serial_fallback);
  expect_bits_equal(x, want);
  FaultInjector::reset();

  // Allocation fault at the interpreter's entry: x untouched, the
  // sequential executor serves the call.
  FaultInjector::arm(FaultSite::kAlloc, 1);
  x = b;
  tri.solve(x);
  EXPECT_TRUE(tri.report().serial_fallback);
  EXPECT_EQ(tri.report().last_error.code, ErrorCode::kResourceExhausted);
  expect_bits_equal(x, want);
  FaultInjector::reset();

  // Batched variant: the failing block repacks from its pristine input
  // columns and re-sweeps serially.
  const index_t nrhs = 6;
  std::vector<value_t> bs = gen::dense_rhs(l.cols() * nrhs, 41);
  std::vector<value_t> want_batch = bs;
  tri.solve_batch(want_batch, nrhs);
  FaultInjector::arm(FaultSite::kPivot, 1);
  std::vector<value_t> got_batch = bs;
  tri.solve_batch(got_batch, nrhs);
  EXPECT_TRUE(tri.report().serial_fallback);
  expect_bits_equal(got_batch, want_batch);
}

#endif  // SYMPILER_HAS_OPENMP

// ------------------------------------------------------- environment arming

// These run under the CI fault-injection step (SYMPILER_FAULT=pivot:1 or
// alloc:1) and skip when the variable is absent, so a plain ctest pass
// stays green.
TEST(EnvFault, SpecArmsAndSurfacesAStructuredError) {
  FaultGuard fg;
  if (!FaultInjector::arm_from_env())
    GTEST_SKIP() << "SYMPILER_FAULT not set";
  FaultSite site{};
  std::uint64_t nth = 0, count = 0;
  ASSERT_TRUE(FaultInjector::parse(std::getenv("SYMPILER_FAULT"), &site, &nth,
                                   &count));
  // Store sites only fire when a plan store is attached — give the
  // solver one so SYMPILER_FAULT=store-*:n exercises the persistence
  // write path end-to-end from the environment.
  const bool store_site = site == FaultSite::kStoreWrite ||
                          site == FaultSite::kStoreRead ||
                          site == FaultSite::kStoreChecksum;
  api::SolverConfig config;
  char store_tmpl[] = "/tmp/sympiler-envfault-XXXXXX";
  std::shared_ptr<core::PlanStore> store;  // keeps the registry instance
                                           // (and its counters) alive
                                           // across the facade's use
  if (store_site) {
    ASSERT_NE(mkdtemp(store_tmpl), nullptr);
    config.options.plan_store_dir = store_tmpl;
    store = core::PlanStore::open(config.options.plan_store_dir);
  }
  api::Solver solver(config);
  const CscMatrix a = gen::grid2d_laplacian(16, 16);
  bool threw = false;
  try {
    solver.factor(a);
  } catch (const Error& e) {
    threw = true;
    EXPECT_NE(e.code(), ErrorCode::kOk);
  }
  if (store_site) {
    // Write-behind persistence faults must not degrade the factor: the
    // plan simply stays unpersisted, absorbed into the store counters
    // (rung 5's write direction) — never a throw at the caller.
    store->flush();
    EXPECT_FALSE(threw);
    if (FaultInjector::fired() > 0)
      EXPECT_GE(store->stats().write_failures, 1u);
  } else if (FaultInjector::fired() > 0) {
    EXPECT_TRUE(threw || solver.report().degraded() ||
                !solver.symbolic_cached())
        << "a fired fault must surface as a structured error or a "
           "documented degradation";
  }

  // Recovery on the same solver once disarmed.
  FaultInjector::reset();
  solver.factor(a);
  std::vector<value_t> x = gen::dense_rhs(a.cols(), 77);
  solver.solve(x);
  expect_bits_equal(x, reference_solution(a, api::SolverConfig{}));
  if (store_site) {
    std::error_code ec;
    std::filesystem::remove_all(store_tmpl, ec);
  }
}

// ------------------------------------------------- malformed MatrixMarket

TEST(MatrixMarket, RejectsBadBanner) {
  std::istringstream in("%%NotMatrixMarket matrix coordinate real general\n");
  EXPECT_THROW(read_matrix_market(in), invalid_matrix_error);
}

TEST(MatrixMarket, RejectsMissingSizeLine) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% only comments, then EOF\n");
  EXPECT_THROW(read_matrix_market(in), invalid_matrix_error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 3\n"
      "1 1 4.0\n"
      "2 2 4.0\n");
  try {
    (void)read_matrix_market(in);
    FAIL() << "expected invalid_matrix_error";
  } catch (const invalid_matrix_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(MatrixMarket, RejectsMalformedEntryTokens) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 4.0\n"
      "two two nan-sense\n");
  EXPECT_THROW(read_matrix_market(in), invalid_matrix_error);
}

TEST(MatrixMarket, RejectsOutOfRangeCoordinates) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "5 1 4.0\n");
  try {
    (void)read_matrix_market(in);
    FAIL() << "expected invalid_matrix_error";
  } catch (const invalid_matrix_error& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
}

TEST(MatrixMarket, RejectsDimensionsBeyondIndexRange) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3000000000 3000000000 1\n"
      "1 1 4.0\n");
  EXPECT_THROW(read_matrix_market(in), invalid_matrix_error);
}

TEST(MatrixMarket, LyingEntryCountDoesNotPreallocate) {
  // A hostile header claiming 10^12 entries must die on the truncated
  // first entry, not on a terabyte reserve.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 1000000000000\n"
      "1 1 4.0\n");
  EXPECT_THROW(read_matrix_market(in), invalid_matrix_error);
}

// -------------------------------------------------------- report plumbing

TEST(FactorReport, CleanRunReportsNoDegradation) {
  api::Solver solver;
  solver.factor(gen::grid2d_laplacian(8, 8));
  EXPECT_FALSE(solver.report().degraded());
  EXPECT_TRUE(solver.report().last_error.ok());
  EXPECT_EQ(solver.report().to_string(), "ok (no degradation)");
}

TEST(FactorReport, StatusToStringCarriesPivotDetail) {
  const Status st{ErrorCode::kNumericBreakdown, "non-positive pivot", 7,
                  -2.5};
  const std::string s = st.to_string();
  EXPECT_NE(s.find("NumericBreakdown"), std::string::npos);
  EXPECT_NE(s.find("index 7"), std::string::npos);
}

}  // namespace
}  // namespace sympiler
