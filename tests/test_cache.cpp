// Tests for the pattern-keyed plan cache and the Solver facade:
// key identity (values never matter, structure and options always do),
// sharded byte-budget LRU mechanics, thread-safety, and
// facade-vs-direct-executor equality.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/solver.h"
#include "core/cholesky_executor.h"
#include "core/execution_plan.h"
#include "core/inspector.h"
#include "core/pattern_key.h"
#include "core/symbolic_cache.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "solvers/simplicial.h"
#include "sparse/ops.h"

namespace sympiler {
namespace {

using core::CholeskyCache;
using core::CholeskyPlan;
using core::CholeskySets;
using core::PatternKey;
using core::SympilerOptions;

CscMatrix with_scaled_values(const CscMatrix& a, value_t scale) {
  CscMatrix out = a;
  for (value_t& v : out.values) v *= scale;
  return out;
}

/// Same pattern as `a` plus one extra off-diagonal nonzero (kept symmetric
/// in the lower triangle by adding a single strictly-lower entry).
CscMatrix with_extra_nonzero(const CscMatrix& a) {
  std::vector<Triplet> trip;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t p = a.col_begin(j); p < a.col_end(j); ++p)
      trip.push_back({a.rowind[p], j, a.values[p]});
  // Find an absent strictly-lower slot.
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = j + 1; i < a.rows(); ++i) {
      if (a.at(i, j) == 0.0) {
        trip.push_back({i, j, 1e-3});
        return CscMatrix::from_triplets(a.rows(), a.cols(), trip);
      }
    }
  }
  ADD_FAILURE() << "matrix is dense; cannot add a nonzero";
  return a;
}

TEST(PatternKey, SamePatternDifferentValuesIsEqual) {
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  const CscMatrix b = with_scaled_values(a, 3.75);
  const SympilerOptions opt;
  EXPECT_EQ(core::cholesky_pattern_key(a, opt),
            core::cholesky_pattern_key(b, opt));
}

TEST(PatternKey, ExtraNonzeroChangesKey) {
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  const CscMatrix b = with_extra_nonzero(a);
  const SympilerOptions opt;
  EXPECT_NE(core::cholesky_pattern_key(a, opt),
            core::cholesky_pattern_key(b, opt));
}

TEST(PatternKey, OptionsParticipate) {
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  SympilerOptions opt1;
  SympilerOptions opt2;
  opt2.vsblock_min_avg_size = 0.0;
  EXPECT_NE(core::cholesky_pattern_key(a, opt1),
            core::cholesky_pattern_key(a, opt2));
}

TEST(PatternKey, TrisolveRhsPatternParticipates) {
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  const CscMatrix l = chol.factor();
  const SympilerOptions opt;
  const std::vector<index_t> beta1 = {0, 5};
  const std::vector<index_t> beta2 = {0, 5, 9};
  EXPECT_EQ(core::trisolve_pattern_key(l, beta1, opt),
            core::trisolve_pattern_key(l, beta1, opt));
  EXPECT_NE(core::trisolve_pattern_key(l, beta1, opt),
            core::trisolve_pattern_key(l, beta2, opt));
}

TEST(PatternKey, CholeskyAndTrisolveDomainsNeverCollide) {
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  const SympilerOptions opt;
  EXPECT_NE(core::cholesky_pattern_key(a, opt),
            core::trisolve_pattern_key(a, {}, opt));
}

TEST(PatternKey, HashCollisionStillComparesUnequal) {
  // Hand-build two keys with identical container hash inputs forced equal:
  // even if the unordered-map hash collides, operator== must discriminate.
  PatternKey k1;
  k1.cols = 10;
  k1.nnz = 30;
  k1.structure_hash = 0x1234;
  PatternKey k2 = k1;
  k2.structure_hash2 = k1.structure_hash2 + 1;
  EXPECT_NE(k1, k2);  // map correctness never rests on the bucket hash
}

// -------------------------------------------------- sharded plan cache

PatternKey key_of(int variant) {
  PatternKey k;
  k.rows = k.cols = 8;
  k.nnz = 16;
  k.structure_hash = 0xabcd0000ULL + static_cast<std::uint64_t>(variant);
  k.structure_hash2 = ~k.structure_hash;
  return k;
}

/// A plan with a recognizable marker and a controllable bytes() weight
/// (padding lives in the simplicial row-pattern array).
CholeskyPlan plan_with_marker(double marker, std::size_t pad_bytes = 0) {
  CholeskyPlan p;
  p.sets.avg_supernode_size = marker;  // any distinguishable field works
  p.sets.rowpat.resize(pad_bytes / sizeof(index_t));
  return p;
}

TEST(PlanCache, HitsMissesAndSharing) {
  CholeskyCache cache;
  auto miss = cache.find(key_of(1));
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.plan, nullptr);

  auto built =
      cache.get_or_build(key_of(1), [] { return plan_with_marker(7); });
  EXPECT_FALSE(built.hit);
  auto again = cache.get_or_build(key_of(1), []() -> CholeskyPlan {
    ADD_FAILURE() << "hit must not rebuild";
    return {};
  });
  EXPECT_TRUE(again.hit);
  EXPECT_EQ(again.plan.get(), built.plan.get());  // one shared object

  const CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 2u);  // find() + the building get_or_build
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_DOUBLE_EQ(st.hit_rate(), 1.0 / 3.0);
}

TEST(PlanCache, ByteBudgetLruEviction) {
  // Three ~equal-weight plans in a budget that holds two: the
  // least-recently-used one is evicted.
  constexpr std::size_t kPad = 8 << 10;
  const std::size_t entry_bytes = plan_with_marker(0, kPad).bytes();
  CholeskyCache cache(2 * entry_bytes + entry_bytes / 2, /*shards=*/1);
  (void)cache.get_or_build(key_of(1), [] { return plan_with_marker(1, kPad); });
  (void)cache.get_or_build(key_of(2), [] { return plan_with_marker(2, kPad); });
  EXPECT_EQ(cache.resident_bytes(), 2 * entry_bytes);
  // Touch 1 so 2 becomes least-recently-used, then insert 3.
  EXPECT_TRUE(cache.find(key_of(1)).hit);
  (void)cache.get_or_build(key_of(3), [] { return plan_with_marker(3, kPad); });

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().evicted_bytes, entry_bytes);
  EXPECT_FALSE(cache.find(key_of(2)).hit);  // the LRU entry was evicted
  EXPECT_TRUE(cache.find(key_of(1)).hit);
  EXPECT_TRUE(cache.find(key_of(3)).hit);
}

TEST(PlanCache, EvictsLargestBytesAmongColdEntriesFirst) {
  // Acceptance: under pressure, the biggest (equal-recompute-cost) entry
  // in the LRU tail window goes first — eviction weighs bytes(), not
  // entry count or pure age.
  constexpr std::size_t kSmall = 1 << 10;
  constexpr std::size_t kLarge = 64 << 10;
  const std::size_t small_bytes = plan_with_marker(0, kSmall).bytes();
  const std::size_t large_bytes = plan_with_marker(0, kLarge).bytes();
  // Budget holds one large + one small entry; the third insert overflows.
  CholeskyCache cache(large_bytes + small_bytes + small_bytes / 2,
                      /*shards=*/1);
  // Insert order: small(1) oldest, then LARGE(2), then small(3). All have
  // equal rebuild cost (0.0), so score is proportional to bytes.
  (void)cache.insert(key_of(1), std::make_shared<const CholeskyPlan>(
                                    plan_with_marker(1, kSmall)));
  (void)cache.insert(key_of(2), std::make_shared<const CholeskyPlan>(
                                    plan_with_marker(2, kLarge)));
  (void)cache.insert(key_of(3), std::make_shared<const CholeskyPlan>(
                                    plan_with_marker(3, kSmall)));
  // Over budget now: the LARGE entry must be the victim even though the
  // oldest entry is small(1).
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().evicted_bytes, large_bytes);
  EXPECT_FALSE(cache.find(key_of(2)).hit);
  EXPECT_TRUE(cache.find(key_of(1)).hit);
  EXPECT_TRUE(cache.find(key_of(3)).hit);
}

TEST(PlanCache, ExpensivePlansOutliveCheapOnesUnderPressure) {
  // Equal bytes, unequal recompute cost: the cheap-to-rebuild plan is
  // evicted first (score = bytes / rebuild seconds).
  constexpr std::size_t kPad = 4 << 10;
  const std::size_t entry_bytes = plan_with_marker(0, kPad).bytes();
  CholeskyCache cache(2 * entry_bytes + entry_bytes / 2, /*shards=*/1);
  (void)cache.insert(key_of(1),
                     std::make_shared<const CholeskyPlan>(
                         plan_with_marker(1, kPad)),
                     /*rebuild_seconds=*/5.0);  // expensive, oldest
  (void)cache.insert(key_of(2),
                     std::make_shared<const CholeskyPlan>(
                         plan_with_marker(2, kPad)),
                     /*rebuild_seconds=*/0.0);  // cheap
  (void)cache.insert(key_of(3),
                     std::make_shared<const CholeskyPlan>(
                         plan_with_marker(3, kPad)),
                     /*rebuild_seconds=*/5.0);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.find(key_of(2)).hit);  // the cheap one went first
  EXPECT_TRUE(cache.find(key_of(1)).hit);
  EXPECT_TRUE(cache.find(key_of(3)).hit);
}

TEST(PlanCache, MruSurvivesEvenWhenOverBudget) {
  // A single plan larger than the whole budget is still served: the MRU
  // entry is never evicted.
  CholeskyCache cache(1, /*shards=*/1);
  (void)cache.get_or_build(key_of(1),
                           [] { return plan_with_marker(1, 1 << 10); });
  EXPECT_TRUE(cache.find(key_of(1)).hit);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, EvictedPlansSurviveThroughBorrowedPointer) {
  constexpr std::size_t kPad = 8 << 10;
  CholeskyCache cache(plan_with_marker(0, kPad).bytes(), /*shards=*/1);
  auto first =
      cache.get_or_build(key_of(1), [] { return plan_with_marker(42, kPad); });
  (void)cache.get_or_build(key_of(2),
                           [] { return plan_with_marker(43, kPad); });
  EXPECT_FALSE(cache.find(key_of(1)).hit);  // evicted...
  EXPECT_DOUBLE_EQ(first.plan->sets.avg_supernode_size, 42.0);  // ...but alive
}

TEST(PlanCache, KeysSpreadAcrossShards) {
  CholeskyCache cache;  // default geometry: 8 shards
  ASSERT_GT(cache.shard_count(), 1u);
  std::vector<int> population(cache.shard_count(), 0);
  for (int v = 0; v < 256; ++v)
    ++population[cache.shard_of(key_of(v))];
  int occupied = 0;
  for (const int p : population) occupied += p > 0 ? 1 : 0;
  // The hash must not collapse the stripe: most shards see traffic.
  EXPECT_GE(occupied, static_cast<int>(cache.shard_count()) / 2);
}

TEST(PlanCache, ConcurrentShardedLookupsKeepCountersConsistent) {
  // Acceptance: 8 threads hammering keys that land on different shards
  // keep aggregated hit + miss == lookups issued (per-shard atomics, no
  // lost updates), and every thread sees the canonical shared plan.
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  constexpr int kPatterns = 16;
  CholeskyCache cache;  // sharded default
  std::atomic<int> mismatches{0};
  std::vector<std::shared_ptr<const CholeskyPlan>> canonical(kPatterns);
  for (int v = 0; v < kPatterns; ++v)
    canonical[v] = cache
                       .get_or_build(key_of(v),
                                     [&] { return plan_with_marker(v); })
                       .plan;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int v = (t + i) % kPatterns;
        auto got = cache.get_or_build(key_of(v),
                                      [&] { return plan_with_marker(v); });
        if (got.plan.get() != canonical[v].get()) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  const CacheStats st = cache.stats();
  EXPECT_EQ(st.lookups(),
            static_cast<std::uint64_t>(kThreads) * kIters + kPatterns);
  EXPECT_EQ(st.hits, static_cast<std::uint64_t>(kThreads) * kIters);

  // Per-shard counters aggregate to the same totals (CacheStats::operator+).
  CacheStats summed;
  for (std::size_t s = 0; s < cache.shard_count(); ++s)
    summed += cache.shard_stats(s);
  EXPECT_EQ(summed.hits, st.hits);
  EXPECT_EQ(summed.misses, st.misses);
}

TEST(PlanCache, RacingBuildersConvergeOnFirstWriter) {
  constexpr int kThreads = 8;
  CholeskyCache cache;
  std::vector<std::shared_ptr<const CholeskyPlan>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[static_cast<std::size_t>(t)] =
          cache.get_or_build(key_of(9), [&] { return plan_with_marker(t); })
              .plan;
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(seen[static_cast<std::size_t>(t)].get(), seen[0].get());
  EXPECT_EQ(cache.size(), 1u);
}

// ------------------------------------------------------------------ facade

TEST(SolverFacade, MatchesDirectCholeskyExecutorBitwise) {
  for (const bool big_pattern : {false, true}) {
    const CscMatrix a = big_pattern ? gen::grid2d_laplacian(40, 40)
                                    : gen::random_spd(150, 2.5, 3);
    api::SolverConfig cfg;
    cfg.enable_parallel = false;  // compare against the sequential executor
    api::Solver solver(cfg, std::make_shared<api::SymbolicContext>());
    solver.factor(a);

    core::CholeskyExecutor direct(a, cfg.options);
    direct.factorize(a);

    const CscMatrix l_facade = solver.factor_csc();
    const CscMatrix l_direct = direct.factor_csc();
    ASSERT_TRUE(l_facade.equals(l_direct));  // bit-identical factor

    std::vector<value_t> b = gen::dense_rhs(a.cols(), 77);
    std::vector<value_t> x_facade(b), x_direct(b);
    solver.solve(x_facade);
    direct.solve(x_direct);
    for (index_t i = 0; i < a.cols(); ++i)
      ASSERT_EQ(x_facade[i], x_direct[i]) << "at " << i;
  }
}

TEST(SolverFacade, WarmFactorHitsCacheAndMatchesCold) {
  const CscMatrix a = gen::grid2d_laplacian(30, 30);
  const CscMatrix a2 = with_scaled_values(a, 1.5);
  auto context = std::make_shared<api::SymbolicContext>();
  api::SolverConfig cfg;
  cfg.enable_parallel = false;  // bitwise comparison against the executor

  api::Solver cold(cfg, context);
  cold.factor(a);
  EXPECT_FALSE(cold.symbolic_cached());

  api::Solver warm(cfg, context);  // a different Solver, same context
  warm.factor(a2);                 // same pattern, different values
  EXPECT_TRUE(warm.symbolic_cached());
  EXPECT_EQ(&warm.sets(), &cold.sets());  // literally the same sets object

  const CacheStats st = warm.cache_stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);

  // The cached symbolic state serves correct numerics for the new values.
  core::CholeskyExecutor direct(a2);
  direct.factorize(a2);
  ASSERT_TRUE(warm.factor_csc().equals(direct.factor_csc()));
}

TEST(SolverFacade, RefactorSamePatternSkipsSymbolic) {
  const CscMatrix a = gen::grid2d_laplacian(25, 25);
  auto context = std::make_shared<api::SymbolicContext>();
  api::SolverConfig cfg;
  cfg.enable_parallel = false;  // bitwise comparison against the executor
  api::Solver solver(cfg, context);
  solver.factor(a);
  EXPECT_FALSE(solver.symbolic_cached());
  const CscMatrix a2 = with_scaled_values(a, 0.5);
  solver.factor(a2);  // same key: no cache lookup, no inspection
  EXPECT_EQ(solver.cache_stats().lookups(), 1u);
  EXPECT_TRUE(solver.symbolic_cached());  // symbolic-free refactor counts

  core::CholeskyExecutor direct(a2);
  direct.factorize(a2);
  ASSERT_TRUE(solver.factor_csc().equals(direct.factor_csc()));
}

TEST(SolverFacade, ParallelEligiblePathStaysCorrect) {
  // Force the parallel gates open: under OpenMP builds this exercises the
  // level-set parallel Cholesky; otherwise the facade must refuse it and
  // stay sequential. Either way the factorization must be correct.
  const CscMatrix a = gen::grid2d_laplacian(40, 40);
  api::SolverConfig cfg;
  cfg.options.vsblock_min_avg_size = 0.0;
  cfg.options.vsblock_min_avg_width = 0.0;  // supernodal sets
  cfg.parallel_min_supernodes = 1;
  cfg.parallel_min_avg_level_width = 0.0;
  api::Solver solver(cfg, std::make_shared<api::SymbolicContext>());
  solver.factor(a);
#ifdef SYMPILER_HAS_OPENMP
  EXPECT_EQ(solver.path(), api::ExecutionPath::ParallelSupernodal);
#else
  EXPECT_EQ(solver.path(), api::ExecutionPath::Supernodal);
#endif
  EXPECT_LT(llt_residual_inf_norm(solver.factor_csc(), a), 1e-8);

  std::vector<value_t> x = gen::dense_rhs(a.cols(), 5);
  const std::vector<value_t> b = x;
  solver.solve(x);
  EXPECT_LT(residual_inf_norm_symmetric_lower(a, x, b), 1e-8);
}

TEST(SolverFacade, FailedRefactorInvalidatesFactorization) {
  const CscMatrix a = gen::grid2d_laplacian(10, 10);
  api::Solver solver({}, std::make_shared<api::SymbolicContext>());
  solver.factor(a);

  // Same pattern, non-SPD values: the numeric phase must throw, and the
  // half-overwritten factor must not stay reachable through solve().
  const CscMatrix bad = with_scaled_values(a, -1.0);
  EXPECT_THROW(solver.factor(bad), numerical_error);
  std::vector<value_t> x(static_cast<std::size_t>(a.cols()), 1.0);
  EXPECT_THROW(solver.solve(x), invalid_matrix_error);

  // Recovery: a successful refactor restores service.
  solver.factor(a);
  solver.solve(x);
}

TEST(SolverFacade, RejectsMismatchedRhsSizes) {
  const CscMatrix a = gen::grid2d_laplacian(10, 10);
  api::Solver solver({}, std::make_shared<api::SymbolicContext>());
  solver.factor(a);
  std::vector<value_t> short_rhs(static_cast<std::size_t>(a.cols()) - 1, 1.0);
  EXPECT_THROW(solver.solve(short_rhs), invalid_matrix_error);
  std::vector<std::vector<value_t>> batch = {short_rhs};
  EXPECT_THROW(solver.solve_batch(batch), invalid_matrix_error);
  std::vector<value_t> flat(static_cast<std::size_t>(a.cols()) * 2 - 1, 1.0);
  EXPECT_THROW(solver.solve_batch(flat, 2), invalid_matrix_error);
}

TEST(SolverFacade, PatternChangeReroutesAndMisses) {
  auto context = std::make_shared<api::SymbolicContext>();
  api::Solver solver({}, context);
  const CscMatrix a = gen::grid2d_laplacian(20, 20);
  const CscMatrix b = with_extra_nonzero(a);
  solver.factor(a);
  EXPECT_FALSE(solver.symbolic_cached());
  solver.factor(b);  // one extra nonzero => different key => miss
  EXPECT_FALSE(solver.symbolic_cached());
  EXPECT_EQ(solver.cache_stats().misses, 2u);
  solver.factor(a);  // back to the first pattern: served from cache
  EXPECT_TRUE(solver.symbolic_cached());
}

TEST(SolverFacade, SolveBatchMatchesSingleSolves) {
  const CscMatrix a = gen::random_spd(120, 2.0, 9);
  const index_t n = a.cols();
  api::Solver solver({}, std::make_shared<api::SymbolicContext>());
  solver.factor(a);

  constexpr index_t kNrhs = 5;
  std::vector<value_t> batch;
  std::vector<std::vector<value_t>> singles;
  for (index_t r = 0; r < kNrhs; ++r) {
    const std::vector<value_t> b = gen::dense_rhs(n, 100 + r);
    batch.insert(batch.end(), b.begin(), b.end());
    singles.push_back(b);
  }
  solver.solve_batch(batch, kNrhs);
  for (index_t r = 0; r < kNrhs; ++r) {
    solver.solve(singles[static_cast<std::size_t>(r)]);
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(batch[static_cast<std::size_t>(r) * n + i],
                singles[static_cast<std::size_t>(r)][i])
          << "rhs " << r << " at " << i;
  }
}

TEST(TriangularSolverFacade, MatchesDirectExecutorBitwise) {
  const CscMatrix a = gen::grid2d_laplacian(25, 25);
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  const CscMatrix l = chol.factor();
  const index_t n = l.cols();
  const std::vector<value_t> b = gen::sparse_rhs(n, 4, 11);
  std::vector<index_t> beta;
  for (index_t i = 0; i < n; ++i)
    if (b[i] != 0.0) beta.push_back(i);

  auto context = std::make_shared<api::SymbolicContext>();
  api::TriangularSolver facade(l, beta, {}, context);
  EXPECT_FALSE(facade.symbolic_cached());
  core::TriSolveExecutor direct(l, beta);

  std::vector<value_t> x_facade(b), x_direct(b);
  facade.solve(x_facade);
  direct.solve(x_direct);
  for (index_t i = 0; i < n; ++i)
    ASSERT_EQ(x_facade[i], x_direct[i]) << "at " << i;

  // A second facade over the same (L, beta) pattern is symbolic-free.
  api::TriangularSolver warm(l, beta, {}, context);
  EXPECT_TRUE(warm.symbolic_cached());
  EXPECT_EQ(&warm.sets(), &facade.sets());
  std::vector<value_t> x_warm(b);
  warm.solve(x_warm);
  for (index_t i = 0; i < n; ++i) ASSERT_EQ(x_warm[i], x_direct[i]);
}

}  // namespace
}  // namespace sympiler
