// Tests for the matrix generators (the Table-2 substitutes): structural
// validity, SPD-ness, the ordering modes, and the suite definitions.
#include <gtest/gtest.h>

#include <set>

#include "gen/generators.h"
#include "gen/suite.h"
#include "graph/symbolic.h"
#include "solvers/simplicial.h"
#include "sparse/ops.h"

namespace sympiler {
namespace {

void expect_valid_spd_lower(const CscMatrix& a) {
  a.validate();
  EXPECT_EQ(a.rows(), a.cols());
  EXPECT_TRUE(a.is_lower_triangular());
  // Diagonal present and positive in every column.
  for (index_t j = 0; j < a.cols(); ++j) {
    ASSERT_LT(a.col_begin(j), a.col_end(j)) << "empty column " << j;
    EXPECT_EQ(a.rowind[a.col_begin(j)], j) << "missing diagonal " << j;
    EXPECT_GT(a.values[a.col_begin(j)], 0.0);
  }
}

TEST(Generators, Grid2dShapeAndStencil) {
  const CscMatrix a = gen::grid2d_laplacian(7, 5);
  expect_valid_spd_lower(a);
  EXPECT_EQ(a.cols(), 35);
  // 5-point stencil: nnz(lower) = n + horizontal + vertical edges.
  EXPECT_EQ(a.nnz(), 35 + 6 * 5 + 7 * 4);
}

TEST(Generators, Grid2dNaturalVsNdSamePatternUpToPermutation) {
  const CscMatrix nat = gen::grid2d_laplacian(6, 6, gen::GridOrder::Natural);
  const CscMatrix nd =
      gen::grid2d_laplacian(6, 6, gen::GridOrder::NestedDissection);
  EXPECT_EQ(nat.nnz(), nd.nnz());
  // Same multiset of column counts of the *graph* (degree sequence).
  auto degrees = [](const CscMatrix& m) {
    std::vector<index_t> deg(static_cast<std::size_t>(m.cols()), 0);
    for (index_t j = 0; j < m.cols(); ++j)
      for (index_t p = m.col_begin(j); p < m.col_end(j); ++p) {
        if (m.rowind[p] == j) continue;
        ++deg[j];
        ++deg[m.rowind[p]];
      }
    std::sort(deg.begin(), deg.end());
    return deg;
  };
  EXPECT_EQ(degrees(nat), degrees(nd));
}

TEST(Generators, NdReducesFillOnGrids) {
  const CscMatrix nat = gen::grid2d_laplacian(24, 24, gen::GridOrder::Natural);
  const CscMatrix nd =
      gen::grid2d_laplacian(24, 24, gen::GridOrder::NestedDissection);
  EXPECT_LT(symbolic_cholesky(nd).fill_nnz, symbolic_cholesky(nat).fill_nnz);
}

TEST(Generators, Grid3dShape) {
  const CscMatrix a = gen::grid3d_laplacian(4, 5, 6);
  expect_valid_spd_lower(a);
  EXPECT_EQ(a.cols(), 120);
}

TEST(Generators, BlockStructuralHasDenseDofBlocks) {
  const index_t dofs = 3;
  const CscMatrix a = gen::block_structural(4, 4, dofs, 7);
  expect_valid_spd_lower(a);
  EXPECT_EQ(a.cols(), 4 * 4 * dofs);
  // In-node lower blocks are fully dense: column of dof 0 of any node
  // contains the node's other dofs.
  for (index_t node = 0; node < 16; ++node) {
    const index_t j = node * dofs;
    std::set<index_t> rows;
    for (index_t p = a.col_begin(j); p < a.col_end(j); ++p)
      rows.insert(a.rowind[p]);
    EXPECT_TRUE(rows.count(j + 1) && rows.count(j + 2))
        << "node " << node << " lacks dense dof coupling";
  }
}

TEST(Generators, GeneratorsAreDeterministic) {
  const CscMatrix a1 = gen::random_spd(100, 3.0, 42);
  const CscMatrix a2 = gen::random_spd(100, 3.0, 42);
  EXPECT_TRUE(a1.equals(a2));
  const CscMatrix b1 = gen::block_structural(5, 5, 2, 9);
  const CscMatrix b2 = gen::block_structural(5, 5, 2, 9);
  EXPECT_TRUE(b1.equals(b2));
}

TEST(Generators, SeedsChangeValuesNotValidity) {
  const CscMatrix a1 = gen::random_spd(80, 2.0, 1);
  const CscMatrix a2 = gen::random_spd(80, 2.0, 2);
  EXPECT_FALSE(a1.equals(a2));
  expect_valid_spd_lower(a1);
  expect_valid_spd_lower(a2);
}

TEST(Generators, AllGeneratorsFactorize) {
  // SPD by construction: Cholesky must succeed on every generator.
  const std::vector<CscMatrix> mats = {
      gen::grid2d_laplacian(9, 9),
      gen::grid3d_laplacian(5, 5, 5),
      gen::block_structural(6, 6, 3, 3),
      gen::random_spd(150, 3.0, 4),
      gen::banded_spd(100, 7, 5),
      gen::power_grid(200, 50, 6),
  };
  for (const CscMatrix& a : mats) {
    solvers::SimplicialCholesky chol(a);
    EXPECT_NO_THROW(chol.factorize(a));
    EXPECT_LT(llt_residual_inf_norm(chol.factor(), a), 1e-8);
  }
}

TEST(Generators, PowerGridIsConnectedTree) {
  const CscMatrix a = gen::power_grid(300, 0, 8);  // pure spanning tree
  // Tree + diagonal: nnz = n + (n-1).
  EXPECT_EQ(a.nnz(), 300 + 299);
}

TEST(Generators, RhsFromColumnMatchesPattern) {
  const CscMatrix a = gen::grid2d_laplacian(8, 8);
  const index_t j = 20;
  const std::vector<value_t> b = gen::rhs_from_column(a, j, 3);
  // Every stored row of column j must be a nonzero of b.
  for (index_t p = a.col_begin(j); p < a.col_end(j); ++p)
    EXPECT_NE(b[a.rowind[p]], 0.0);
}

TEST(Generators, SparseRhsCount) {
  const std::vector<value_t> b = gen::sparse_rhs(1000, 5, 7);
  index_t nnz = 0;
  for (const value_t v : b) nnz += v != 0.0;
  EXPECT_GE(nnz, 1);
  EXPECT_LE(nnz, 5);  // collisions allowed, never more
}

TEST(Generators, InvalidArgumentsThrow) {
  EXPECT_THROW(gen::grid2d_laplacian(0, 5), invalid_matrix_error);
  EXPECT_THROW(gen::random_spd(0, 2.0, 1), invalid_matrix_error);
  EXPECT_THROW(gen::power_grid(1, 0, 1), invalid_matrix_error);
  EXPECT_THROW(gen::banded_spd(-1, 2, 1), invalid_matrix_error);
}

TEST(Suite, HasElevenProblemsInTable2Order) {
  const auto& suite = gen::suite();
  ASSERT_EQ(suite.size(), 11u);
  for (std::size_t k = 0; k < suite.size(); ++k)
    EXPECT_EQ(suite[k].id, static_cast<int>(k) + 1);
  EXPECT_EQ(suite.front().paper_name, "cbuckle");
  EXPECT_EQ(suite.back().paper_name, "tmt_sym");
}

TEST(Suite, LookupByIdAndBounds) {
  EXPECT_EQ(gen::suite_problem(5).paper_name, "Dubcova2");
  EXPECT_THROW({ (void)gen::suite_problem(0); }, invalid_matrix_error);
  EXPECT_THROW({ (void)gen::suite_problem(12); }, invalid_matrix_error);
}

TEST(Suite, SmallProblemsGenerateValidSpd) {
  // Generate the three smallest problems end-to-end (the rest are
  // exercised by the benches; this keeps unit-test time bounded).
  for (const int id : {1, 2, 8}) {
    const CscMatrix a = gen::suite_problem(id).make();
    expect_valid_spd_lower(a);
  }
}

}  // namespace
}  // namespace sympiler
