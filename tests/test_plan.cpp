// Tests for the ExecutionPlan / Planner layer: path selection from
// profitability evidence, bit-identity between plan-driven executors and
// the direct-call paths (simplicial, supernodal, parallel), plan byte
// accounting, and the shared-context regression the plan refactor fixes —
// a warm factor() does zero schedule work.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#ifdef SYMPILER_HAS_OPENMP
#include <omp.h>
#endif

#include "api/solver.h"
#include "core/cholesky_executor.h"
#include "core/execution_plan.h"
#include "core/inspector.h"
#include "core/planner.h"
#include "core/trisolve_executor.h"
#include "gen/generators.h"
#include "parallel/levelset.h"
#include "solvers/simplicial.h"
#include "solvers/supernodal.h"
#include "sparse/ops.h"

namespace sympiler {
namespace {

using core::CholeskyPlan;
using core::ExecutionPath;
using core::Planner;
using core::PlannerConfig;
using core::TriSolvePlan;

PlannerConfig supernodal_config() {
  PlannerConfig config;
  config.options.vsblock_min_avg_size = 0.0;
  config.options.vsblock_min_avg_width = 0.0;
  config.enable_parallel = false;
  return config;
}

// ------------------------------------------------------------- planning

TEST(Planner, PicksSimplicialWhenVsBlockUnprofitable) {
  const CscMatrix a = gen::random_spd(80, 1.5, 3);
  PlannerConfig config;
  config.options.vsblock_min_avg_size = 1e9;  // force the gate shut
  const CholeskyPlan plan = Planner(config).plan_cholesky(a);
  EXPECT_EQ(plan.path, ExecutionPath::Simplicial);
  EXPECT_FALSE(plan.evidence.vs_block_profitable);
  EXPECT_TRUE(plan.schedule.empty());
}

TEST(Planner, PicksSupernodalWhenProfitableAndParallelDisabled) {
  const CscMatrix a = gen::grid2d_laplacian(30, 30);
  const CholeskyPlan plan = Planner(supernodal_config()).plan_cholesky(a);
  EXPECT_EQ(plan.path, ExecutionPath::Supernodal);
  EXPECT_TRUE(plan.evidence.vs_block_profitable);
  EXPECT_GT(plan.evidence.supernodes, 0);
  EXPECT_TRUE(plan.schedule.empty());  // no schedule unless parallel
}

TEST(Planner, ParallelPathCarriesScheduleOnlyUnderOpenMp) {
  const CscMatrix a = gen::grid2d_laplacian(40, 40);
  PlannerConfig config = supernodal_config();
  config.enable_parallel = true;
  config.parallel_min_supernodes = 1;
  config.parallel_min_avg_level_width = 0.0;
  const CholeskyPlan plan = Planner(config).plan_cholesky(a);
  if (Planner::parallel_enabled()) {
    EXPECT_EQ(plan.path, ExecutionPath::ParallelSupernodal);
    EXPECT_FALSE(plan.schedule.empty());
    EXPECT_GT(plan.evidence.levels, 0);
    EXPECT_GT(plan.evidence.avg_level_width, 0.0);
    // The schedule covers every supernode exactly once.
    EXPECT_EQ(static_cast<index_t>(plan.schedule.items.size()),
              plan.sets.layout.nsuper());
  } else {
    EXPECT_EQ(plan.path, ExecutionPath::Supernodal);
    EXPECT_TRUE(plan.schedule.empty());
  }
}

TEST(Planner, GateConfigParticipatesInPlanKey) {
  const CscMatrix a = gen::grid2d_laplacian(12, 12);
  PlannerConfig base;
  PlannerConfig gated = base;
  gated.parallel_min_supernodes = 7;
  EXPECT_NE(Planner(base).cholesky_key(a), Planner(gated).cholesky_key(a));
  // And the planner key differs from the raw pattern key (gates folded in).
  EXPECT_NE(Planner(base).cholesky_key(a),
            core::cholesky_pattern_key(a, base.options));
}

TEST(Planner, PlanBytesAccountForSetsAndSchedule) {
  const CscMatrix a = gen::grid2d_laplacian(25, 25);
  const CholeskyPlan plan = Planner(supernodal_config()).plan_cholesky(a);
  EXPECT_GT(plan.bytes(), plan.sets.bytes());
  EXPECT_GE(plan.sets.bytes(),
            plan.sets.sym.bytes() + plan.sets.layout.bytes());
  const std::string text = plan.summary();
  EXPECT_NE(text.find("supernodal"), std::string::npos);
  EXPECT_NE(text.find("plan bytes"), std::string::npos);
}

// ------------------------------------- plan-driven executor bit identity

TEST(ExecutionPlan, SimplicialInterpreterMatchesDirectPathBitwise) {
  const CscMatrix a = gen::random_spd(120, 2.0, 5);
  PlannerConfig config;
  config.options.vsblock_min_avg_size = 1e9;
  config.enable_parallel = false;
  auto plan = std::make_shared<const CholeskyPlan>(
      Planner(config).plan_cholesky(a));
  ASSERT_EQ(plan->path, ExecutionPath::Simplicial);

  core::CholeskyExecutor from_plan(plan);
  from_plan.factorize(a);
  core::CholeskyExecutor direct(a, config.options);
  direct.factorize(a);
  ASSERT_TRUE(from_plan.factor_csc().equals(direct.factor_csc()));

  std::vector<value_t> x1 = gen::dense_rhs(a.cols(), 3);
  std::vector<value_t> x2 = x1;
  from_plan.solve(x1);
  direct.solve(x2);
  for (index_t i = 0; i < a.cols(); ++i) ASSERT_EQ(x1[i], x2[i]) << i;
}

TEST(ExecutionPlan, SupernodalInterpreterMatchesDirectPathBitwise) {
  const CscMatrix a = gen::grid2d_laplacian(30, 30);
  const PlannerConfig config = supernodal_config();
  auto plan = std::make_shared<const CholeskyPlan>(
      Planner(config).plan_cholesky(a));
  ASSERT_EQ(plan->path, ExecutionPath::Supernodal);

  core::CholeskyExecutor from_plan(plan);
  from_plan.factorize(a);
  core::CholeskyExecutor direct(a, config.options);
  direct.factorize(a);
  ASSERT_TRUE(from_plan.factor_csc().equals(direct.factor_csc()));

  std::vector<value_t> x1 = gen::dense_rhs(a.cols(), 9);
  std::vector<value_t> x2 = x1;
  from_plan.solve(x1);
  direct.solve(x2);
  for (index_t i = 0; i < a.cols(); ++i) ASSERT_EQ(x1[i], x2[i]) << i;
}

TEST(ExecutionPlan, ParallelInterpreterMatchesDirectCallBitwise) {
  // The plan-driven parallel_cholesky must reproduce the direct
  // (sets, schedule) call bit for bit — in every build: without OpenMP
  // both run the same sequential interpretation.
  const CscMatrix a = gen::grid2d_laplacian(40, 40);
  core::SympilerOptions opt;
  opt.vsblock_min_avg_size = 0.0;
  opt.vsblock_min_avg_width = 0.0;

  auto plan = std::make_shared<CholeskyPlan>();
  plan->options = opt;
  plan->sets = core::inspect_cholesky(a, opt);
  plan->schedule = parallel::level_schedule_supernodes(plan->sets.blocks,
                                                       plan->sets.sym.parent);
  plan->path = ExecutionPath::ParallelSupernodal;

  std::vector<value_t> panels_plan(
      static_cast<std::size_t>(plan->sets.layout.total_values()), 0.0);
  std::vector<value_t> panels_direct = panels_plan;
  parallel::parallel_cholesky(*plan, a, panels_plan);
  parallel::parallel_cholesky(plan->sets, plan->schedule, a, panels_direct);
  ASSERT_EQ(panels_plan.size(), panels_direct.size());
  for (std::size_t i = 0; i < panels_plan.size(); ++i)
    ASSERT_EQ(panels_plan[i], panels_direct[i]) << "panel value " << i;

  // And the result is a correct factorization.
  const CscMatrix l = solvers::panels_to_csc(plan->sets.layout, panels_plan);
  EXPECT_LT(llt_residual_inf_norm(l, a), 1e-8);
}

TEST(ExecutionPlan, FacadeParallelPathMatchesDirectParallelCallBitwise) {
  const CscMatrix a = gen::grid2d_laplacian(40, 40);
  api::SolverConfig cfg;
  cfg.options.vsblock_min_avg_size = 0.0;
  cfg.options.vsblock_min_avg_width = 0.0;
  cfg.parallel_min_supernodes = 1;
  cfg.parallel_min_avg_level_width = 0.0;
  api::Solver solver(cfg, std::make_shared<api::SymbolicContext>());
  solver.factor(a);

  if (!core::Planner::parallel_enabled()) {
    EXPECT_EQ(solver.path(), ExecutionPath::Supernodal);
    return;  // parallel plans are never built in sequential builds
  }
  ASSERT_EQ(solver.path(), ExecutionPath::ParallelSupernodal);
  const CholeskyPlan& plan = *solver.plan();
  std::vector<value_t> panels(
      static_cast<std::size_t>(plan.sets.layout.total_values()), 0.0);
  parallel::parallel_cholesky(plan, a, panels);
  ASSERT_TRUE(solver.factor_csc().equals(
      solvers::panels_to_csc(plan.sets.layout, panels)));
}

// ------------------------------------------------- trisolve plan paths

TEST(ExecutionPlan, TriSolveInterpreterMatchesDirectPathBitwise) {
  const CscMatrix a = gen::grid2d_laplacian(25, 25);
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  const CscMatrix l = chol.factor();
  const index_t n = l.cols();
  const std::vector<value_t> b = gen::sparse_rhs(n, 5, 13);
  std::vector<index_t> beta;
  for (index_t i = 0; i < n; ++i)
    if (b[i] != 0.0) beta.push_back(i);

  for (const bool force_blocked : {false, true}) {
    PlannerConfig config;
    config.enable_parallel = false;
    if (force_blocked) {
      config.options.vsblock_min_avg_size = 0.0;
      config.options.vsblock_min_avg_width = 0.0;
    } else {
      config.options.vsblock_min_avg_size = 1e9;
    }
    auto plan = std::make_shared<const TriSolvePlan>(
        Planner(config).plan_trisolve(l, beta));
    EXPECT_EQ(plan->path, force_blocked ? ExecutionPath::BlockedTriSolve
                                        : ExecutionPath::PrunedTriSolve);

    core::TriSolveExecutor from_plan(plan, l);
    core::TriSolveExecutor direct(l, beta, config.options);
    std::vector<value_t> x1(b), x2(b);
    from_plan.solve(x1);
    direct.solve(x2);
    for (index_t i = 0; i < n; ++i)
      ASSERT_EQ(x1[i], x2[i]) << "blocked=" << force_blocked << " at " << i;
  }
}

TEST(ExecutionPlan, DenseRhsTriSolvePlanStaysCorrectOnEveryPath) {
  // With a dense RHS and the gates open, OpenMP builds plan the
  // ParallelTriSolve path (atomic updates: correct, not bit-stable);
  // sequential builds stay pruned. Either way the facade must solve
  // L x = b correctly.
  const CscMatrix a = gen::grid2d_laplacian(20, 20);
  solvers::SimplicialCholesky chol(a);
  chol.factorize(a);
  const CscMatrix l = chol.factor();
  const index_t n = l.cols();
  std::vector<index_t> beta(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) beta[static_cast<std::size_t>(i)] = i;

  api::SolverConfig cfg;
  cfg.options.vsblock_min_avg_size = 1e9;  // keep VS-Block out of the way
  cfg.parallel_min_avg_level_width = 0.0;
  api::TriangularSolver facade(l, beta, cfg,
                               std::make_shared<api::SymbolicContext>());
  if (core::Planner::parallel_enabled()) {
    EXPECT_EQ(facade.path(), ExecutionPath::ParallelTriSolve);
    EXPECT_FALSE(facade.plan()->schedule.empty());
  } else {
    EXPECT_EQ(facade.path(), ExecutionPath::PrunedTriSolve);
  }

  const std::vector<value_t> b = gen::dense_rhs(n, 21);
  std::vector<value_t> x(b);
  facade.solve(x);
  // Residual of L x = b.
  double err = 0.0;
  for (index_t j = 0; j < n; ++j) {
    double row = 0.0;
    for (index_t i = 0; i < n; ++i) row += l.at(j, i) * x[i];
    err = std::max(err, std::abs(row - b[static_cast<std::size_t>(j)]));
  }
  EXPECT_LT(err, 1e-8);
}

// ------------------------- parallel determinism (level-private updates)

/// Lower-triangular factor with maximally racy levels: columns 0..n-3 are
/// mutually independent (one wide level) and every one of them updates the
/// two shared rows n-2 and n-1. Under the old atomic scheme the update
/// order — and hence the result bits — depended on thread interleaving;
/// the level-private slots must replay the serial order exactly.
CscMatrix racy_arrowhead_lower(index_t n) {
  std::vector<Triplet> trips;
  for (index_t j = 0; j < n; ++j)
    trips.push_back({j, j, 2.0 + 0.01 * static_cast<value_t>(j)});
  for (index_t j = 0; j < n - 2; ++j) {
    trips.push_back({n - 2, j, 0.5 / (1.0 + static_cast<value_t>(j))});
    trips.push_back({n - 1, j, 0.25 / (2.0 + static_cast<value_t>(j))});
  }
  trips.push_back({n - 1, n - 2, 0.75});
  return CscMatrix::from_triplets(n, n, trips);
}

std::shared_ptr<const TriSolvePlan> racy_parallel_plan(const CscMatrix& l,
                                                       bool coarsen = true) {
  PlannerConfig config;
  config.options.vsblock_min_avg_size = 1e9;  // keep VS-Block out of the way
  config.enable_parallel = true;
  config.parallel_min_supernodes = 1;
  config.parallel_min_avg_level_width = 0.0;
  config.coarsen_schedule = coarsen;
  std::vector<index_t> beta(static_cast<std::size_t>(l.cols()));
  for (index_t i = 0; i < l.cols(); ++i) beta[static_cast<std::size_t>(i)] = i;
  return std::make_shared<const TriSolvePlan>(
      Planner(config).plan_trisolve(l, beta));
}

TEST(ParallelDeterminism, TrisolveBitIdenticalToSerialAtOneTwoFourThreads) {
  const index_t n = 257;
  const CscMatrix l = racy_arrowhead_lower(n);
  const auto plan = racy_parallel_plan(l);
  if (!Planner::parallel_enabled()) {
    EXPECT_EQ(plan->path, ExecutionPath::PrunedTriSolve);
    return;  // sequential builds never plan the parallel path
  }
  ASSERT_EQ(plan->path, ExecutionPath::ParallelTriSolve);
  // The racy structure is really there: one level holds all n-2
  // independent columns, each updating the shared rows n-2 and n-1.
  ASSERT_GE(plan->schedule.levels(), 2);
  EXPECT_EQ(plan->schedule.level_ptr[1] - plan->schedule.level_ptr[0], n - 2);
  EXPECT_FALSE(plan->update_map.empty());

  // Serial reference: the sequential pruned interpretation of the same
  // plan (what solve() runs in non-OpenMP builds).
  core::TriSolveExecutor serial(plan, l);
  const std::vector<value_t> b = gen::dense_rhs(n, 33);
  std::vector<value_t> x_ref(b);
  serial.solve(x_ref);

  core::Workspace ws;
  for (const int threads : {1, 2, 4}) {
#ifdef SYMPILER_HAS_OPENMP
    omp_set_num_threads(threads);
#endif
    // Twice per thread count: run-to-run determinism at a fixed count,
    // and bit identity with the serial solve across counts.
    for (int run = 0; run < 2; ++run) {
      std::vector<value_t> x(b);
      parallel::parallel_trisolve(l, *plan, x, ws);
      for (index_t i = 0; i < n; ++i)
        ASSERT_EQ(x[static_cast<std::size_t>(i)],
                  x_ref[static_cast<std::size_t>(i)])
            << "threads=" << threads << " run=" << run << " row " << i;
    }
  }
}

TEST(ParallelDeterminism, TrisolveBatchBitIdenticalToLoopedSerialAt4Threads) {
  const index_t n = 181;
  const CscMatrix l = racy_arrowhead_lower(n);
  const auto plan = racy_parallel_plan(l);
  if (!Planner::parallel_enabled()) return;
  ASSERT_EQ(plan->path, ExecutionPath::ParallelTriSolve);
#ifdef SYMPILER_HAS_OPENMP
  omp_set_num_threads(4);
#endif
  core::TriSolveExecutor serial(plan, l);
  core::Workspace ws;
  for (const index_t nrhs : {1, 5, 40}) {
    std::vector<value_t> base;
    for (index_t r = 0; r < nrhs; ++r) {
      const std::vector<value_t> col = gen::dense_rhs(n, 50 + r);
      base.insert(base.end(), col.begin(), col.end());
    }
    std::vector<value_t> looped = base;
    for (index_t r = 0; r < nrhs; ++r)
      serial.solve(std::span<value_t>(looped).subspan(
          static_cast<std::size_t>(r) * n, static_cast<std::size_t>(n)));
    std::vector<value_t> batched = base;
    parallel::parallel_trisolve_batch(l, *plan, batched, nrhs, ws);
    for (std::size_t t = 0; t < looped.size(); ++t)
      ASSERT_EQ(batched[t], looped[t]) << "nrhs=" << nrhs << " flat " << t;
  }
}

TEST(ParallelDeterminism, CholeskyAndBatchSolveStableAcrossThreadCounts) {
  // Level-set parallel Cholesky + the blocked level-set batch solve on a
  // pattern whose sibling supernodes share ancestor rows. Every thread
  // count must produce the same bits, twice.
  const CscMatrix a = gen::grid2d_laplacian(40, 40);
  api::SolverConfig cfg;
  cfg.options.vsblock_min_avg_size = 0.0;
  cfg.options.vsblock_min_avg_width = 0.0;
  cfg.parallel_min_supernodes = 1;
  cfg.parallel_min_avg_level_width = 0.0;
  api::Solver solver(cfg, std::make_shared<api::SymbolicContext>());
  if (!Planner::parallel_enabled()) return;

  const auto n = static_cast<std::size_t>(a.cols());
  const index_t nrhs = 7;
  std::vector<value_t> base;
  for (index_t r = 0; r < nrhs; ++r) {
    const std::vector<value_t> col = gen::dense_rhs(a.cols(), 70 + r);
    base.insert(base.end(), col.begin(), col.end());
  }
  CscMatrix l_ref;
  std::vector<value_t> x_ref;
  bool have_ref = false;
  for (const int threads : {1, 2, 4}) {
#ifdef SYMPILER_HAS_OPENMP
    omp_set_num_threads(threads);
#endif
    for (int run = 0; run < 2; ++run) {
      solver.factor(a);
      ASSERT_EQ(solver.path(), ExecutionPath::ParallelSupernodal);
      const CscMatrix l = solver.factor_csc();
      std::vector<value_t> x = base;
      solver.solve_batch(x, nrhs);
      if (!have_ref) {
        l_ref = l;
        x_ref = x;
        have_ref = true;
        // Looped single solves must give the batch bits too.
        std::vector<value_t> looped = base;
        for (index_t r = 0; r < nrhs; ++r)
          solver.solve(std::span<value_t>(looped).subspan(
              static_cast<std::size_t>(r) * n, n));
        ASSERT_EQ(looped, x_ref);
        continue;
      }
      ASSERT_TRUE(l.equals(l_ref)) << "threads=" << threads << " run=" << run;
      ASSERT_EQ(x, x_ref) << "threads=" << threads << " run=" << run;
    }
  }
}

// ----------------------- schedule coarsening (chains + SIMD bundles)

/// Full-band lower-triangular matrix: column j depends on every one of the
/// bw previous columns, so the flat level schedule is one column per level
/// (n levels, n - 1 barriers) — the worst case chain fusion exists for.
CscMatrix banded_full_lower(index_t n, index_t bw) {
  std::vector<Triplet> trips;
  for (index_t j = 0; j < n; ++j) {
    trips.push_back({j, j, 3.0 + 0.01 * static_cast<value_t>(j)});
    for (index_t i = j + 1; i < std::min<index_t>(n, j + bw + 1); ++i)
      trips.push_back(
          {i, j, 0.5 / (1.0 + static_cast<value_t>(i - j))});
  }
  return CscMatrix::from_triplets(n, n, trips);
}

TEST(ScheduleCoarsening, FullBandChainCollapsesToOneAggregateLevel) {
  const index_t n = 96;
  const CscMatrix l = banded_full_lower(n, 5);
  const auto plan = racy_parallel_plan(l);
  if (!Planner::parallel_enabled()) return;
  ASSERT_EQ(plan->path, ExecutionPath::ParallelTriSolve);
  // Flat: one column per level — the barrier cascade coarsening removes.
  ASSERT_EQ(plan->schedule.levels(), n);
  // Coarsened: the whole solve is one sequential chain, zero barriers.
  const auto& agg = plan->agg;
  ASSERT_FALSE(agg.empty());
  EXPECT_EQ(agg.levels(), 1);
  EXPECT_EQ(agg.tasks(), 1);
  EXPECT_EQ(agg.bundle[0], 0);
  ASSERT_EQ(static_cast<index_t>(agg.items.size()), n);
  for (index_t k = 0; k < n; ++k)
    ASSERT_EQ(agg.items[static_cast<std::size_t>(k)], k) << k;
  EXPECT_EQ(plan->evidence.agg_levels, 1);
  EXPECT_EQ(plan->evidence.agg_tasks, 1);
  EXPECT_EQ(plan->evidence.agg_bundles, 0);
}

TEST(ScheduleCoarsening, ArrowheadBundlesWideLevelAndFusesSharedTail) {
  const index_t n = 257;  // 255 independent same-shape columns = 31x8 + 7
  const CscMatrix l = racy_arrowhead_lower(n);
  const auto plan = racy_parallel_plan(l);
  if (!Planner::parallel_enabled()) return;
  const auto& agg = plan->agg;
  ASSERT_FALSE(agg.empty());
  ASSERT_EQ(agg.levels(), 2);
  ASSERT_EQ(static_cast<index_t>(agg.items.size()), n);

  // Level 0: the n - 2 independent columns share one sparsity shape
  // (no incoming terms, two updates), so they coarsen into width-8 SIMD
  // bundles plus one >= kBundleMin tail bundle — no singletons.
  const index_t t1 = agg.level_ptr[1];
  EXPECT_EQ(agg.task_ptr[t1] - agg.task_ptr[agg.level_ptr[0]], n - 2);
  for (index_t t = agg.level_ptr[0]; t < t1; ++t) {
    EXPECT_EQ(agg.bundle[static_cast<std::size_t>(t)], 1) << "task " << t;
    const index_t w = agg.task_ptr[t + 1] - agg.task_ptr[t];
    EXPECT_GE(w, parallel::kBundleMin) << "task " << t;
    EXPECT_LE(w, parallel::kBundleMax) << "task " << t;
  }
  EXPECT_EQ(agg.bundles(), (n - 2) / parallel::kBundleMax + 1);

  // Level 1: the two shared tail columns fuse into one chain — column
  // n-1's only level-1 dependence is n-2, the chain's last member.
  ASSERT_EQ(agg.level_ptr[2] - t1, 1);
  EXPECT_EQ(agg.bundle[static_cast<std::size_t>(t1)], 0);
  ASSERT_EQ(agg.task_ptr[t1 + 1] - agg.task_ptr[t1], 2);
  EXPECT_EQ(agg.items[static_cast<std::size_t>(agg.task_ptr[t1])], n - 2);
  EXPECT_EQ(agg.items[static_cast<std::size_t>(agg.task_ptr[t1]) + 1], n - 1);
  EXPECT_EQ(plan->evidence.agg_bundles, agg.bundles());
}

TEST(ScheduleCoarsening, CoarsenedTrisolveBitIdenticalToFlatAndSerial) {
  // The coarsening contract: chains, bundles, and the compacted slot map
  // change scheduling and data movement only — at 1/2/4 threads both the
  // coarsened and the flat interpretation must reproduce the serial
  // solve's exact bits (ASSERT_EQ on doubles, no tolerance).
  std::vector<CscMatrix> factors;
  factors.push_back(racy_arrowhead_lower(257));   // bundle-heavy
  factors.push_back(banded_full_lower(180, 7));   // chain-heavy
  for (const CscMatrix& l : factors) {
    const index_t n = l.cols();
    const auto coarse = racy_parallel_plan(l, /*coarsen=*/true);
    const auto flat = racy_parallel_plan(l, /*coarsen=*/false);
    if (!Planner::parallel_enabled()) {
      EXPECT_EQ(coarse->path, ExecutionPath::PrunedTriSolve);
      return;
    }
    ASSERT_EQ(coarse->path, ExecutionPath::ParallelTriSolve);
    ASSERT_EQ(flat->path, ExecutionPath::ParallelTriSolve);
    ASSERT_FALSE(coarse->agg.empty());
    ASSERT_TRUE(flat->agg.empty());  // coarsen_schedule=false keeps it flat

    core::TriSolveExecutor serial(coarse, l);
    const std::vector<value_t> b = gen::dense_rhs(n, 91);
    std::vector<value_t> x_ref(b);
    serial.solve(x_ref);

    core::Workspace ws_c, ws_f;
    for (const int threads : {1, 2, 4}) {
#ifdef SYMPILER_HAS_OPENMP
      omp_set_num_threads(threads);
#endif
      std::vector<value_t> x_c(b), x_f(b);
      parallel::parallel_trisolve(l, *coarse, x_c, ws_c);
      parallel::parallel_trisolve(l, *flat, x_f, ws_f);
      for (index_t i = 0; i < n; ++i) {
        ASSERT_EQ(x_c[static_cast<std::size_t>(i)],
                  x_ref[static_cast<std::size_t>(i)])
            << "coarse threads=" << threads << " row " << i;
        ASSERT_EQ(x_f[static_cast<std::size_t>(i)],
                  x_ref[static_cast<std::size_t>(i)])
            << "flat threads=" << threads << " row " << i;
      }
      // Batch path: the coarsened multi-RHS interpreter too.
      const index_t nrhs = 3;
      std::vector<value_t> base;
      for (index_t r = 0; r < nrhs; ++r) {
        const std::vector<value_t> col = gen::dense_rhs(n, 120 + r);
        base.insert(base.end(), col.begin(), col.end());
      }
      std::vector<value_t> looped = base;
      for (index_t r = 0; r < nrhs; ++r)
        serial.solve(std::span<value_t>(looped).subspan(
            static_cast<std::size_t>(r) * n, static_cast<std::size_t>(n)));
      std::vector<value_t> batched = base;
      parallel::parallel_trisolve_batch(l, *coarse, batched, nrhs, ws_c);
      for (std::size_t t = 0; t < looped.size(); ++t)
        ASSERT_EQ(batched[t], looped[t]) << "threads=" << threads;
    }
  }
}

TEST(ScheduleCoarsening, CoarsenedCholeskyBitIdenticalToFlatAcrossThreads) {
  // Supernodal chain fusion on the factorization and both panel-solve
  // sweeps: coarsen on vs off, 1/2/4 threads, all one set of bits. The
  // banded pattern makes thin levels (chain-heavy), the grid wide ones.
  std::vector<CscMatrix> mats;
  mats.push_back(gen::grid2d_laplacian(40, 40));
  mats.push_back(gen::banded_spd(180, 9, 3));
  for (const CscMatrix& a : mats) {
    api::SolverConfig cfg;
    cfg.options.vsblock_min_avg_size = 0.0;
    cfg.options.vsblock_min_avg_width = 0.0;
    cfg.parallel_min_supernodes = 1;
    cfg.parallel_min_avg_level_width = 0.0;
    api::SolverConfig cfg_flat = cfg;
    cfg_flat.coarsen_schedule = false;
    api::Solver on(cfg, std::make_shared<api::SymbolicContext>());
    api::Solver off(cfg_flat, std::make_shared<api::SymbolicContext>());
    if (!Planner::parallel_enabled()) return;

    const auto n = static_cast<std::size_t>(a.cols());
    const index_t nrhs = 5;
    std::vector<value_t> base;
    for (index_t r = 0; r < nrhs; ++r) {
      const std::vector<value_t> col = gen::dense_rhs(a.cols(), 140 + r);
      base.insert(base.end(), col.begin(), col.end());
    }
    CscMatrix l_ref;
    std::vector<value_t> x_ref;
    bool have_ref = false;
    for (const int threads : {1, 2, 4}) {
#ifdef SYMPILER_HAS_OPENMP
      omp_set_num_threads(threads);
#endif
      on.factor(a);
      off.factor(a);
      ASSERT_EQ(on.path(), ExecutionPath::ParallelSupernodal);
      ASSERT_FALSE(on.plan()->agg.empty());
      ASSERT_TRUE(off.plan()->agg.empty());
      // Compacted supernodal slot map: one entry per below-diagonal panel
      // row, the per-supernode diagonal-block prefixes squeezed out.
      EXPECT_EQ(on.plan()->solve_update_map.slot.size(),
                on.plan()->sets.layout.srows.size() - n);
      // Chain fusion must strictly reduce barriers on the banded pattern;
      // never increase them anywhere.
      EXPECT_LE(on.plan()->agg.levels(), on.plan()->schedule.levels());
      std::vector<value_t> x_on = base, x_off = base;
      on.solve_batch(x_on, nrhs);
      off.solve_batch(x_off, nrhs);
      if (!have_ref) {
        l_ref = on.factor_csc();
        x_ref = x_on;
        have_ref = true;
      }
      ASSERT_TRUE(on.factor_csc().equals(l_ref)) << "threads=" << threads;
      ASSERT_TRUE(off.factor_csc().equals(l_ref)) << "threads=" << threads;
      ASSERT_EQ(x_on, x_ref) << "threads=" << threads;
      ASSERT_EQ(x_off, x_ref) << "threads=" << threads;
    }
  }
}

TEST(ScheduleCoarsening, PlanBytesCountAggScheduleAndSlotMapIsCompact) {
  const index_t n = 129;
  const CscMatrix l = racy_arrowhead_lower(n);
  const auto coarse = racy_parallel_plan(l, /*coarsen=*/true);
  const auto flat = racy_parallel_plan(l, /*coarsen=*/false);
  if (!Planner::parallel_enabled()) return;
  ASSERT_EQ(coarse->path, ExecutionPath::ParallelTriSolve);
  // The compacted slot map holds exactly one entry per strictly-lower
  // nonzero — the always-(-1) diagonal prefix entries are gone.
  EXPECT_EQ(static_cast<index_t>(coarse->update_map.slot.size()),
            l.nnz() - n);
  EXPECT_EQ(coarse->update_map.slots(),
            static_cast<index_t>(coarse->update_map.slot.size()));
  // bytes() accounts for the aggregate schedule: the two plans differ in
  // nothing else.
  EXPECT_EQ(coarse->bytes() - flat->bytes(), coarse->agg.bytes());
  EXPECT_GT(coarse->agg.bytes(), 0u);
}

// ------------------------------- shared-context zero-schedule regression

TEST(ExecutionPlan, SecondSolverSharingContextDoesZeroScheduleWork) {
  // The per-Solver memoization bug class the plan refactor fixes: two
  // Solvers sharing a SymbolicContext used to recompute the supernodal
  // level schedule independently. Now the schedule lives in the cached
  // plan: the second Solver's factor() must do zero schedule work, proven
  // by plan pointer identity, cache hit counters, and the process-wide
  // schedule-build counter standing still.
  const CscMatrix a = gen::grid2d_laplacian(40, 40);
  api::SolverConfig cfg;
  cfg.options.vsblock_min_avg_size = 0.0;
  cfg.options.vsblock_min_avg_width = 0.0;
  cfg.parallel_min_supernodes = 1;
  cfg.parallel_min_avg_level_width = 0.0;
  auto context = std::make_shared<api::SymbolicContext>();

  api::Solver cold(cfg, context);
  cold.factor(a);
  EXPECT_FALSE(cold.symbolic_cached());

  const std::uint64_t builds_after_cold = parallel::level_schedule_builds();
  api::Solver warm(cfg, context);
  warm.factor(a);

  EXPECT_TRUE(warm.symbolic_cached());
  // Pointer identity: the whole plan — sets AND schedule AND path — is
  // one shared object, not a per-Solver recomputation.
  EXPECT_EQ(warm.plan().get(), cold.plan().get());
  // Zero schedule construction happened anywhere in the process during
  // the warm factor.
  EXPECT_EQ(parallel::level_schedule_builds(), builds_after_cold);
  const CacheStats st = warm.cache_stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);

  // Both Solvers produce the same factor bits from the shared plan.
  ASSERT_TRUE(warm.factor_csc().equals(cold.factor_csc()));
}

// ---------------------- cold-plan equivalence vs the naive reference

/// Patterns spanning the planner's structural regimes (mirrors
/// test_graph's generator_patterns).
std::vector<CscMatrix> plan_test_patterns() {
  std::vector<CscMatrix> mats;
  mats.push_back(gen::grid2d_laplacian(18, 18));
  mats.push_back(gen::grid2d_laplacian(14, 20, gen::GridOrder::Natural));
  mats.push_back(gen::grid3d_laplacian(6, 7, 5));
  mats.push_back(gen::block_structural(7, 8, 3, 42));
  mats.push_back(gen::random_spd(250, 3.0, 7));
  mats.push_back(gen::banded_spd(180, 9, 3));
  mats.push_back(gen::power_grid(350, 50, 9));
  return mats;
}

/// The planner configurations that exercise every path choice.
std::vector<PlannerConfig> plan_test_configs() {
  std::vector<PlannerConfig> configs;
  configs.push_back(PlannerConfig{});  // defaults: path depends on pattern
  PlannerConfig simplicial;
  simplicial.options.vsblock_min_avg_size = 1e9;  // force the gate shut
  configs.push_back(simplicial);
  PlannerConfig par;
  par.options.vsblock_min_avg_size = 0.0;
  par.options.vsblock_min_avg_width = 0.0;
  par.parallel_min_supernodes = 1;
  par.parallel_min_avg_level_width = 0.0;
  configs.push_back(par);
  return configs;
}

void expect_plans_bit_identical(const CholeskyPlan& fast,
                                const CholeskyPlan& naive,
                                const std::string& label) {
  EXPECT_TRUE(fast.key == naive.key) << label;
  EXPECT_EQ(fast.path, naive.path) << label;
  // Symbolic factor.
  EXPECT_EQ(fast.sets.sym.parent, naive.sets.sym.parent) << label;
  EXPECT_EQ(fast.sets.sym.colcount, naive.sets.sym.colcount) << label;
  EXPECT_EQ(fast.sets.sym.l_pattern.colptr, naive.sets.sym.l_pattern.colptr)
      << label;
  EXPECT_EQ(fast.sets.sym.l_pattern.rowind, naive.sets.sym.l_pattern.rowind)
      << label;  // exact order, not just the set
  EXPECT_EQ(fast.sets.sym.l_pattern.values, naive.sets.sym.l_pattern.values)
      << label;  // including presence: gated plans carry no zero array
  EXPECT_EQ(fast.sets.sym.fill_nnz, naive.sets.sym.fill_nnz) << label;
  EXPECT_EQ(fast.sets.sym.flops, naive.sets.sym.flops) << label;
  // Block-set + simplicial prune-sets.
  EXPECT_EQ(fast.sets.blocks.start, naive.sets.blocks.start) << label;
  EXPECT_EQ(fast.sets.blocks.col_to_super, naive.sets.blocks.col_to_super)
      << label;
  EXPECT_EQ(fast.sets.rowpat_ptr, naive.sets.rowpat_ptr) << label;
  EXPECT_EQ(fast.sets.rowpat, naive.sets.rowpat) << label;
  // Supernodal layout + static update schedule.
  EXPECT_EQ(fast.sets.layout.srow_ptr, naive.sets.layout.srow_ptr) << label;
  EXPECT_EQ(fast.sets.layout.srows, naive.sets.layout.srows) << label;
  EXPECT_EQ(fast.sets.layout.panel_ptr, naive.sets.layout.panel_ptr) << label;
  ASSERT_EQ(fast.sets.updates.ptr, naive.sets.updates.ptr) << label;
  ASSERT_EQ(fast.sets.updates.refs.size(), naive.sets.updates.refs.size())
      << label;
  for (std::size_t u = 0; u < fast.sets.updates.refs.size(); ++u) {
    EXPECT_EQ(fast.sets.updates.refs[u].d, naive.sets.updates.refs[u].d);
    EXPECT_EQ(fast.sets.updates.refs[u].p1, naive.sets.updates.refs[u].p1);
    EXPECT_EQ(fast.sets.updates.refs[u].p2, naive.sets.updates.refs[u].p2);
  }
  // Level schedule + privatized slot map (order included).
  EXPECT_EQ(fast.schedule.level_ptr, naive.schedule.level_ptr) << label;
  EXPECT_EQ(fast.schedule.items, naive.schedule.items) << label;
  EXPECT_EQ(fast.solve_update_map.slot, naive.solve_update_map.slot) << label;
  EXPECT_EQ(fast.solve_update_map.row_ptr, naive.solve_update_map.row_ptr)
      << label;
  // Coarsened aggregate schedule (chains + bundles, task-major order).
  EXPECT_EQ(fast.agg.level_ptr, naive.agg.level_ptr) << label;
  EXPECT_EQ(fast.agg.task_ptr, naive.agg.task_ptr) << label;
  EXPECT_EQ(fast.agg.items, naive.agg.items) << label;
  EXPECT_EQ(fast.agg.bundle, naive.agg.bundle) << label;
  // Workspace dims + byte accounting.
  EXPECT_EQ(fast.workspace.n, naive.workspace.n) << label;
  EXPECT_EQ(fast.workspace.max_panel_rows, naive.workspace.max_panel_rows)
      << label;
  EXPECT_EQ(fast.workspace.max_panel_width, naive.workspace.max_panel_width)
      << label;
  EXPECT_EQ(fast.workspace.max_tail, naive.workspace.max_tail) << label;
  EXPECT_EQ(fast.workspace.rhs_block, naive.workspace.rhs_block) << label;
  EXPECT_EQ(fast.workspace.update_slots, naive.workspace.update_slots)
      << label;
  EXPECT_EQ(fast.workspace.need_map, naive.workspace.need_map) << label;
  EXPECT_EQ(fast.workspace.need_dense, naive.workspace.need_dense) << label;
  EXPECT_EQ(fast.bytes(), naive.bytes()) << label;
}

TEST(Planner, ColdPlanBitIdenticalToNaiveReferenceOnEveryPattern) {
  // The tentpole contract: the GNP/fused/parallel cold pipeline changes
  // how plans are built, never what they contain. Every product — plan
  // bytes, schedule, slot order — must match the retained naive-serial
  // reference on every generator pattern under every path choice.
  const auto patterns = plan_test_patterns();
  const auto configs = plan_test_configs();
  for (std::size_t m = 0; m < patterns.size(); ++m) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const Planner planner(configs[c]);
      const CholeskyPlan fast = planner.plan_cholesky(patterns[m]);
      const CholeskyPlan naive = planner.plan_cholesky_naive(patterns[m]);
      expect_plans_bit_identical(
          fast, naive,
          "pattern " + std::to_string(m) + " config " + std::to_string(c));
    }
  }
}

TEST(Planner, GatedPlansCarryOnlyPathConsumedProducts) {
  const CscMatrix a = gen::grid2d_laplacian(30, 30);

  PlannerConfig sup = supernodal_config();
  const CholeskyPlan supernodal = Planner(sup).plan_cholesky(a);
  ASSERT_EQ(supernodal.path, ExecutionPath::Supernodal);
  // Supernodal plans carry the layout but neither the simplicial row
  // patterns nor the |L|-sized zero value array.
  EXPECT_FALSE(supernodal.sets.layout.srows.empty());
  EXPECT_FALSE(supernodal.sets.updates.ptr.empty());
  EXPECT_TRUE(supernodal.sets.rowpat_ptr.empty());
  EXPECT_TRUE(supernodal.sets.sym.l_pattern.values.empty());
  EXPECT_FALSE(supernodal.sets.sym.l_pattern.rowind.empty());

  PlannerConfig simp;
  simp.options.vsblock_min_avg_size = 1e9;
  const CholeskyPlan simplicial = Planner(simp).plan_cholesky(a);
  ASSERT_EQ(simplicial.path, ExecutionPath::Simplicial);
  // Simplicial plans carry rowpat + L values, no supernodal layout.
  EXPECT_FALSE(simplicial.sets.rowpat_ptr.empty());
  EXPECT_EQ(simplicial.sets.sym.l_pattern.values.size(),
            simplicial.sets.sym.l_pattern.rowind.size());
  EXPECT_TRUE(simplicial.sets.layout.srows.empty());
  EXPECT_TRUE(simplicial.sets.updates.refs.empty());

  // The ungated inspector contract is unchanged: everything present.
  const core::CholeskySets full = core::inspect_cholesky(a, sup.options);
  EXPECT_FALSE(full.rowpat_ptr.empty());
  EXPECT_FALSE(full.layout.srows.empty());
  EXPECT_EQ(full.sym.l_pattern.values.size(),
            full.sym.l_pattern.rowind.size());
}

// ------------------------------ planner transpose-count regression

TEST(Planner, ColdPlanDoesExactlyOneTransposeAndWarmDoesNone) {
  // The duplicate-work bug this pins: etree and ERreach used to each
  // privately transpose A, so a cold api::Solver build transposed more
  // than once. All symbolic consumers now share the planner's single
  // upper-triangle view.
  const CscMatrix a = gen::grid2d_laplacian(25, 25);
  for (const PlannerConfig& config : plan_test_configs()) {
    const std::uint64_t before = core::planner_transpose_count();
    const CholeskyPlan plan = Planner(config).plan_cholesky(a);
    EXPECT_EQ(core::planner_transpose_count() - before, 1u)
        << "path " << core::to_string(plan.path);
  }

  // Through the facade: one transpose on the cold factor, zero on warm.
  auto context = std::make_shared<api::SymbolicContext>();
  api::Solver cold({}, context);
  const std::uint64_t before_cold = core::planner_transpose_count();
  cold.factor(a);
  EXPECT_EQ(core::planner_transpose_count() - before_cold, 1u);
  api::Solver warm({}, context);
  const std::uint64_t before_warm = core::planner_transpose_count();
  warm.factor(a);
  EXPECT_TRUE(warm.symbolic_cached());
  EXPECT_EQ(core::planner_transpose_count() - before_warm, 0u);
}

}  // namespace
}  // namespace sympiler
