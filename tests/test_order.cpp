// Tests for the fill-reducing orderings (RCM, minimum degree).
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/symbolic.h"
#include "order/rcm.h"
#include "solvers/simplicial.h"
#include "sparse/ops.h"

namespace sympiler {
namespace {

std::int64_t fill_of(const CscMatrix& a_lower) {
  return symbolic_cholesky(a_lower).fill_nnz;
}

TEST(Rcm, ProducesValidPermutation) {
  const CscMatrix a = gen::random_spd(200, 3.0, 5);
  const std::vector<index_t> perm = order::rcm(a);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(Rcm, ReducesBandwidthOfShuffledBandedMatrix) {
  // Scramble a banded matrix with a random symmetric permutation; RCM must
  // recover a small profile.
  const CscMatrix banded = gen::banded_spd(300, 3, 9);
  std::vector<index_t> shuffle(300);
  for (index_t i = 0; i < 300; ++i) shuffle[i] = (i * 97) % 300;  // coprime
  ASSERT_TRUE(is_permutation(shuffle));
  const CscMatrix scrambled = permute_symmetric_lower(banded, shuffle);
  const std::vector<index_t> perm = order::rcm(scrambled);
  const CscMatrix restored = permute_symmetric_lower(scrambled, perm);

  auto max_bandwidth = [](const CscMatrix& m) {
    index_t bw = 0;
    for (index_t j = 0; j < m.cols(); ++j)
      for (index_t p = m.col_begin(j); p < m.col_end(j); ++p)
        bw = std::max(bw, m.rowind[p] - j);
    return bw;
  };
  EXPECT_LE(max_bandwidth(restored), 4 * max_bandwidth(banded));
  EXPECT_LT(max_bandwidth(restored), max_bandwidth(scrambled));
}

TEST(Rcm, HandlesDisconnectedComponents) {
  // Two disjoint paths: 0-1-2 and 3-4-5.
  std::vector<Triplet> trip;
  for (index_t j = 0; j < 6; ++j) trip.push_back({j, j, 2.0});
  trip.push_back({1, 0, -1.0});
  trip.push_back({2, 1, -1.0});
  trip.push_back({4, 3, -1.0});
  trip.push_back({5, 4, -1.0});
  const CscMatrix a = CscMatrix::from_triplets(6, 6, trip);
  const std::vector<index_t> perm = order::rcm(a);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(MinimumDegree, ProducesValidPermutation) {
  const CscMatrix a = gen::random_spd(150, 2.5, 11);
  const std::vector<index_t> perm = order::minimum_degree(a);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(MinimumDegree, ReducesFillOnGrid) {
  const CscMatrix a = gen::grid2d_laplacian(20, 20, gen::GridOrder::Natural);
  const std::vector<index_t> perm = order::minimum_degree(a);
  const CscMatrix reordered = permute_symmetric_lower(a, perm);
  EXPECT_LT(fill_of(reordered), fill_of(a));
}

TEST(MinimumDegree, ReducesFillOnRandomGraph) {
  const CscMatrix a = gen::random_spd(250, 2.0, 3);
  const std::vector<index_t> perm = order::minimum_degree(a);
  const CscMatrix reordered = permute_symmetric_lower(a, perm);
  EXPECT_LE(fill_of(reordered), fill_of(a));
}

TEST(Orderings, PermutedSystemSolvesToSameSolution) {
  // Solve A x = b directly and via P A P^T (P x) = P b; solutions must
  // agree after unpermuting.
  const CscMatrix a = gen::grid2d_laplacian(12, 12, gen::GridOrder::Natural);
  const index_t n = a.cols();
  const std::vector<value_t> b = gen::dense_rhs(n, 31);
  const std::vector<index_t> perm = order::minimum_degree(a);
  const CscMatrix pa = permute_symmetric_lower(a, perm);

  std::vector<value_t> x_direct(b);
  {
    solvers::SimplicialCholesky chol(a);
    chol.factorize(a);
    chol.solve(x_direct);
  }
  std::vector<value_t> pb(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) pb[perm[i]] = b[i];
  {
    solvers::SimplicialCholesky chol(pa);
    chol.factorize(pa);
    chol.solve(pb);
  }
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x_direct[i], pb[perm[i]], 1e-8);
}

}  // namespace
}  // namespace sympiler
