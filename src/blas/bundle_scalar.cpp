// Baseline-ISA bundle kernel TU, plus the ref twin and the runtime ISA
// dispatcher (see blas/bundle.h). This TU carries no vector flags, so the
// scalar tier is safe on every x86-64 (and non-x86) machine; the wider
// tiers live in bundle_avx2.cpp / bundle_avx512.cpp and are only ever
// reached through the cpuid-gated dispatch below.
#include <atomic>

#define SYMPILER_BUNDLE_FN trisolve_bundle_scalar
#include "blas/bundle_impl.inc"
#undef SYMPILER_BUNDLE_FN

namespace sympiler::blas {

namespace {

BundleIsa detect_best() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f")) return BundleIsa::kAvx512;
  if (__builtin_cpu_supports("avx2")) return BundleIsa::kAvx2;
#endif
  return BundleIsa::kScalar;
}

/// Forced tier, or -1 for auto (best supported). Relaxed is enough: any
/// published value is a valid tier and every tier is bit-identical.
std::atomic<int> g_forced{-1};

using BundleFn = void (*)(index_t, index_t, index_t, const index_t*,
                          const index_t*, const value_t*, const index_t*,
                          const index_t*, value_t*, value_t*);

constexpr BundleFn kTiers[] = {detail::trisolve_bundle_scalar,
                               detail::trisolve_bundle_avx2,
                               detail::trisolve_bundle_avx512};

}  // namespace

const char* to_string(BundleIsa isa) {
  switch (isa) {
    case BundleIsa::kScalar: return "scalar";
    case BundleIsa::kAvx2: return "avx2";
    case BundleIsa::kAvx512: return "avx512";
  }
  return "?";
}

BundleIsa bundle_isa_best() {
  // cpuid once, at first use — not at the build host's mercy.
  static const BundleIsa best = detect_best();
  return best;
}

BundleIsa bundle_isa_active() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  return forced < 0 ? bundle_isa_best() : static_cast<BundleIsa>(forced);
}

BundleIsa bundle_isa_force(BundleIsa isa) {
  // Clamp to the best supported tier: an unsupported forced tier would
  // fault on its first vector instruction, so the force degrades instead.
  if (static_cast<int>(isa) > static_cast<int>(bundle_isa_best()))
    isa = bundle_isa_best();
  g_forced.store(static_cast<int>(isa), std::memory_order_relaxed);
  return isa;
}

void trisolve_bundle(index_t lanes, index_t incount, index_t outcount,
                     const index_t* cols, const index_t* colptr,
                     const value_t* Lx, const index_t* slot,
                     const index_t* row_ptr, value_t* x, value_t* terms) {
  kTiers[static_cast<int>(bundle_isa_active())](lanes, incount, outcount, cols,
                                                colptr, Lx, slot, row_ptr, x,
                                                terms);
}

void trisolve_bundle_ref(index_t lanes, index_t incount, index_t outcount,
                         const index_t* cols, const index_t* colptr,
                         const value_t* Lx, const index_t* slot,
                         const index_t* row_ptr, value_t* x, value_t* terms) {
  // Lanes in series, each the exact scalar solve_column sequence — the
  // contract every dispatch tier is pinned against.
  for (index_t v = 0; v < lanes; ++v) {
    const index_t j = cols[v];
    const index_t r0 = row_ptr[j];
    value_t xj = x[j];
    for (index_t q = 0; q < incount; ++q) xj -= terms[r0 + q];
    const index_t p0 = colptr[j];
    xj /= Lx[p0];
    x[j] = xj;
    for (index_t p = 0; p < outcount; ++p)
      terms[slot[p0 - j + p]] = Lx[p0 + 1 + p] * xj;
  }
}

}  // namespace sympiler::blas
