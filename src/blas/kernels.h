// Mini-BLAS: the dense kernels the supernodal (VS-Block) code paths stand
// on. Substitutes for OpenBLAS 0.2.19 in the paper's setup (not available
// offline) and doubles as the mechanism behind the paper's claim that
// Sympiler "generates specialized and highly-efficient codes for small
// dense sub-kernels": sizes <= SYMPILER_SMALL_KERNEL_MAX dispatch to fully
// unrolled compile-time-sized kernels, larger sizes take generic blocked
// loops (the "call BLAS instead" path).
//
// All matrices are column-major. `lda` is the leading dimension.
#pragma once

#include "util/common.h"

namespace sympiler::blas {

/// Largest dimension handled by the unrolled specializations.
inline constexpr index_t kSmallKernelMax = 8;

/// Dense Cholesky of the lower triangle of the n-by-n matrix A (in place;
/// strictly-upper part untouched). Throws numerical_error on a non-positive
/// pivot. Generic blocked path.
void potrf_lower(index_t n, value_t* a, index_t lda);

/// potrf_lower that dispatches to unrolled kernels for n <= kSmallKernelMax.
void potrf_lower_small(index_t n, value_t* a, index_t lda);

/// Solve L x = b in place (x := L^{-1} x), L n-by-n lower, unit stride x.
void trsv_lower(index_t n, const value_t* l, index_t lda, value_t* x);

/// trsv_lower with unrolled dispatch for tiny n.
void trsv_lower_small(index_t n, const value_t* l, index_t lda, value_t* x);

/// Solve x^T L^T = b^T, i.e. x := L^{-T} x (backward substitution with the
/// transpose of a lower factor). Used by the full solve A x = b.
void trsv_lower_transpose(index_t n, const value_t* l, index_t lda,
                          value_t* x);

/// B := B * L^{-T} for an m-by-n panel B and n-by-n lower L.
/// This is the off-diagonal supernode update of Cholesky
/// (TRSM side=right, uplo=lower, trans=T, diag=non-unit).
void trsm_right_lower_trans(index_t m, index_t n, const value_t* l,
                            index_t ldl, value_t* b, index_t ldb);

/// C -= A * B^T, A m-by-k, B n-by-k, C m-by-n (GEMM, beta=1, alpha=-1).
void gemm_nt_minus(index_t m, index_t n, index_t k, const value_t* a,
                   index_t lda, const value_t* b, index_t ldb, value_t* c,
                   index_t ldc);

/// C -= A * A^T, lower triangle of C only (SYRK, beta=1, alpha=-1),
/// A n-by-k, C n-by-n.
void syrk_lower_minus(index_t n, index_t k, const value_t* a, index_t lda,
                      value_t* c, index_t ldc);

/// y -= A * x, A m-by-n (GEMV, alpha=-1, beta=1).
void gemv_minus(index_t m, index_t n, const value_t* a, index_t lda,
                const value_t* x, value_t* y);

/// y -= A^T * x, A m-by-n, x length m, y length n.
void gemv_trans_minus(index_t m, index_t n, const value_t* a, index_t lda,
                      const value_t* x, value_t* y);

}  // namespace sympiler::blas
