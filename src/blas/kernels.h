// Mini-BLAS: the dense kernels the supernodal (VS-Block) code paths stand
// on. Substitutes for OpenBLAS 0.2.19 in the paper's setup (not available
// offline) and doubles as the mechanism behind the paper's claim that
// Sympiler "generates specialized and highly-efficient codes for small
// dense sub-kernels".
//
// Two tiers per kernel:
//  * `_ref` reference kernels (kernels_ref.cpp, portable baseline flags) —
//    the original scalar loop nests. They define the arithmetic contract:
//    the exact per-element operation order every other tier must reproduce
//    bit-for-bit. The JIT-generated code (core/codegen.cpp, compiled with
//    -ffp-contract=off) shares this order, which is what keeps
//    executor-vs-generated results identical.
//  * blocked kernels (the public names; kernels.cpp, host vector ISA with
//    FMA contraction disabled) — register-blocked micro-kernel
//    implementations that hold C tiles / solution rows in registers across
//    the whole reduction and expose fixed-width unit-stride inner loops to
//    the vectorizer. They perform the same per-element operation sequence
//    as `_ref` (terms applied one at a time, in ascending reduction order),
//    so results are bit-identical — wider vector lanes and register
//    residency change data movement, never arithmetic — pinned by
//    tests/test_blas.cpp for all shapes 1..64 including ragged leading
//    dimensions.
//
// Multi-RHS kernels operate on an RHS-major packed block: X(i, r) lives at
// x[r + i * ldx] so the r-loop is unit-stride (the SIMD direction). Each
// RHS column's dependency chain runs the exact operation sequence of the
// corresponding single-RHS kernel, making a blocked solve_batch
// bit-identical to looped single solves.
//
// All matrices are column-major. `lda` is the leading dimension.
#pragma once

#include "util/common.h"

namespace sympiler::blas {

/// Largest dimension handled by the unrolled specializations.
inline constexpr index_t kSmallKernelMax = 8;

/// Largest RHS block width the multi-RHS kernels accept per call (callers
/// tile wider batches). Bounds the stack footprint of their accumulators
/// and sizes the plan-time RHS workspaces.
inline constexpr index_t kRhsBlockMax = 32;

// ---------------------------------------------------------------- potrf

/// Dense Cholesky of the lower triangle of the n-by-n matrix A (in place;
/// strictly-upper part untouched). Throws numerical_error on a non-positive
/// pivot. Blocked right-looking: unrolled diagonal blocks, panel TRSM, and
/// register-tiled SYRK trailing updates. Bit-identical to potrf_lower_ref.
void potrf_lower(index_t n, value_t* a, index_t lda);

/// Reference unblocked left-looking body (the arithmetic contract).
void potrf_lower_ref(index_t n, value_t* a, index_t lda);

/// potrf_lower that dispatches to unrolled kernels for n <= kSmallKernelMax.
void potrf_lower_small(index_t n, value_t* a, index_t lda);

// ----------------------------------------------------------------- trsv

/// Solve L x = b in place (x := L^{-1} x), L n-by-n lower, unit stride x.
/// Blocked forward substitution; bit-identical to trsv_lower_ref.
void trsv_lower(index_t n, const value_t* l, index_t lda, value_t* x);

/// Reference column-at-a-time body.
void trsv_lower_ref(index_t n, const value_t* l, index_t lda, value_t* x);

/// trsv_lower with unrolled dispatch for tiny n.
void trsv_lower_small(index_t n, const value_t* l, index_t lda, value_t* x);

/// Solve x^T L^T = b^T, i.e. x := L^{-T} x (backward substitution with the
/// transpose of a lower factor). Used by the full solve A x = b.
void trsv_lower_transpose(index_t n, const value_t* l, index_t lda,
                          value_t* x);

/// Reference body for the transpose solve (same loop nest — the backward
/// reduction is a serial accumulator chain that admits no reordering).
void trsv_lower_transpose_ref(index_t n, const value_t* l, index_t lda,
                              value_t* x);

// ----------------------------------------------------------------- trsm

/// B := B * L^{-T} for an m-by-n panel B and n-by-n lower L.
/// This is the off-diagonal supernode update of Cholesky
/// (TRSM side=right, uplo=lower, trans=T, diag=non-unit). Blocked over
/// column panels with register-tiled GEMM updates; bit-identical to
/// trsm_right_lower_trans_ref.
void trsm_right_lower_trans(index_t m, index_t n, const value_t* l,
                            index_t ldl, value_t* b, index_t ldb);

/// Reference column-at-a-time body.
void trsm_right_lower_trans_ref(index_t m, index_t n, const value_t* l,
                                index_t ldl, value_t* b, index_t ldb);

// ----------------------------------------------------------- gemm / syrk

/// C -= A * B^T, A m-by-k, B n-by-k, C m-by-n (GEMM, beta=1, alpha=-1).
/// Register-blocked micro-kernels (8x4 tiles held in registers across the
/// whole k reduction); bit-identical to gemm_nt_minus_ref.
void gemm_nt_minus(index_t m, index_t n, index_t k, const value_t* a,
                   index_t lda, const value_t* b, index_t ldb, value_t* c,
                   index_t ldc);

/// Reference body: terms subtracted one at a time in ascending p, matching
/// the loop the JIT-generated supernodal code runs.
void gemm_nt_minus_ref(index_t m, index_t n, index_t k, const value_t* a,
                       index_t lda, const value_t* b, index_t ldb, value_t* c,
                       index_t ldc);

/// C -= A * A^T, lower triangle of C only (SYRK, beta=1, alpha=-1),
/// A n-by-k, C n-by-n. Lower-wedge + register-tiled GEMM below the wedge;
/// bit-identical to syrk_lower_minus_ref.
void syrk_lower_minus(index_t n, index_t k, const value_t* a, index_t lda,
                      value_t* c, index_t ldc);

/// Reference body.
void syrk_lower_minus_ref(index_t n, index_t k, const value_t* a, index_t lda,
                          value_t* c, index_t ldc);

// ----------------------------------------------------------------- gemv

/// y -= A * x, A m-by-n (GEMV, alpha=-1, beta=1). Row tiles held in
/// registers across the column sweep; bit-identical to gemv_minus_ref.
void gemv_minus(index_t m, index_t n, const value_t* a, index_t lda,
                const value_t* x, value_t* y);

/// Reference body.
void gemv_minus_ref(index_t m, index_t n, const value_t* a, index_t lda,
                    const value_t* x, value_t* y);

/// y -= A^T * x, A m-by-n, x length m, y length n. Four accumulator chains
/// at a time; bit-identical to gemv_trans_minus_ref.
void gemv_trans_minus(index_t m, index_t n, const value_t* a, index_t lda,
                      const value_t* x, value_t* y);

/// Reference body.
void gemv_trans_minus_ref(index_t m, index_t n, const value_t* a, index_t lda,
                          const value_t* x, value_t* y);

// ------------------------------------------------------------- multi-RHS
//
// X is an RHS-major packed block: X(i, r) at x[r + i * ldx], nrhs <=
// kRhsBlockMax, ldx >= nrhs. pack_rhs/unpack_rhs convert between this and
// the public column-major dense batch layout.

/// Forward solve L X = B in place over a packed RHS block. Per RHS column,
/// bit-identical to trsv_lower on that column.
void trsm_lower_multi(index_t n, index_t nrhs, const value_t* l, index_t lda,
                      value_t* x, index_t ldx);

/// Backward solve L^T X = B in place over a packed RHS block. Per RHS
/// column, bit-identical to trsv_lower_transpose.
void trsm_lower_transpose_multi(index_t n, index_t nrhs, const value_t* l,
                                index_t lda, value_t* x, index_t ldx);

/// Y -= A * X over packed blocks, A m-by-n, X n rows, Y m rows. Per RHS
/// column, bit-identical to gemv_minus.
void gemm_minus_multi(index_t m, index_t n, index_t nrhs, const value_t* a,
                      index_t lda, const value_t* x, index_t ldx, value_t* y,
                      index_t ldy);

/// Y -= A^T * X over packed blocks, A m-by-n, X m rows, Y n rows. Per RHS
/// column, bit-identical to gemv_trans_minus.
void gemm_trans_minus_multi(index_t m, index_t n, index_t nrhs,
                            const value_t* a, index_t lda, const value_t* x,
                            index_t ldx, value_t* y, index_t ldy);

/// Pack nrhs column-major dense RHS columns (column stride `col_stride`)
/// into an RHS-major block with row stride ldp.
void pack_rhs(index_t n, index_t nrhs, const value_t* x, index_t col_stride,
              value_t* xp, index_t ldp);

/// Inverse of pack_rhs.
void unpack_rhs(index_t n, index_t nrhs, const value_t* xp, index_t ldp,
                value_t* x, index_t col_stride);

}  // namespace sympiler::blas
