// AVX-512 bundle kernel TU: the shared body compiled -mavx512f -mno-fma
// (flags applied in CMakeLists.txt when the compiler supports them;
// without them this TU is baseline code and the tier is merely
// redundant, never wrong). Reached only through the cpuid-gated
// dispatcher in bundle_scalar.cpp.
#define SYMPILER_BUNDLE_FN trisolve_bundle_avx512
#include "blas/bundle_impl.inc"
#undef SYMPILER_BUNDLE_FN
