// Reference kernels: the seed's scalar loop nests, compiled at the
// library's portable baseline flags (NO host-ISA opt-in — that is the
// point: they are the "old kernels" the blocked tier is benchmarked
// against, and the arithmetic contract it must reproduce bit-for-bit).
//
// Kept in their own TU so the blocked kernels' host-vector-ISA compile
// flags (see CMakeLists.txt) cannot leak into the baseline. Wider vector
// lanes change no arithmetic — every per-element operation is the same
// mul/sub sequence, and FP contraction is disabled in both TUs — so the
// two tiers stay bit-identical across the flag split (pinned by
// tests/test_blas.cpp for all shapes 1..64 including ragged lda).
#include <cmath>

#include "blas/kernels.h"

namespace sympiler::blas {

void potrf_lower_ref(index_t n, value_t* a, index_t lda) {
  // Unblocked left-looking; the loop the JIT-generated code runs.
  for (index_t j = 0; j < n; ++j) {
    value_t d = a[j + j * lda];
    const value_t* aj = a + j;
    for (index_t k = 0; k < j; ++k) d -= aj[k * lda] * aj[k * lda];
    if (!(d > 0.0)) throw numerical_error("potrf: non-positive pivot");
    const value_t djj = std::sqrt(d);
    a[j + j * lda] = djj;
    const value_t inv = 1.0 / djj;
    // Rank-j update of the sub-column, then scale.
    for (index_t k = 0; k < j; ++k) {
      const value_t ljk = a[j + k * lda];
      const value_t* col = a + k * lda;
      value_t* dst = a + j * lda;
      for (index_t i = j + 1; i < n; ++i) dst[i] -= col[i] * ljk;
    }
    value_t* dst = a + j * lda;
    for (index_t i = j + 1; i < n; ++i) dst[i] *= inv;
  }
}

void trsv_lower_ref(index_t n, const value_t* l, index_t lda, value_t* x) {
  for (index_t j = 0; j < n; ++j) {
    const value_t piv = l[j + j * lda];
    if (piv == 0.0) throw numerical_error("trsv: zero diagonal");
    const value_t xj = x[j] / piv;
    x[j] = xj;
    const value_t* col = l + j * lda;
    for (index_t i = j + 1; i < n; ++i) x[i] -= col[i] * xj;
  }
}

void trsv_lower_transpose_ref(index_t n, const value_t* l, index_t lda,
                              value_t* x) {
  for (index_t j = n - 1; j >= 0; --j) {
    const value_t* col = l + j * lda;
    value_t s = x[j];
    for (index_t i = j + 1; i < n; ++i) s -= col[i] * x[i];
    const value_t piv = col[j];
    if (piv == 0.0) throw numerical_error("trsv^T: zero diagonal");
    x[j] = s / piv;
  }
}

void trsm_right_lower_trans_ref(index_t m, index_t n, const value_t* l,
                                index_t ldl, value_t* b, index_t ldb) {
  // X L^T = B  =>  X(:,j) = (B(:,j) - sum_{k<j} X(:,k) L(j,k)) / L(j,j)
  for (index_t j = 0; j < n; ++j) {
    value_t* bj = b + j * ldb;
    for (index_t k = 0; k < j; ++k) {
      const value_t ljk = l[j + k * ldl];
      const value_t* bk = b + k * ldb;
      for (index_t i = 0; i < m; ++i) bj[i] -= ljk * bk[i];
    }
    const value_t piv = l[j + j * ldl];
    if (piv == 0.0) throw numerical_error("trsm: zero diagonal");
    const value_t inv = 1.0 / piv;
    for (index_t i = 0; i < m; ++i) bj[i] *= inv;
  }
}

void gemm_nt_minus_ref(index_t m, index_t n, index_t k, const value_t* a,
                       index_t lda, const value_t* b, index_t ldb, value_t* c,
                       index_t ldc) {
  // C(i,j) -= sum_p A(i,p) * B(j,p), terms subtracted one at a time in
  // ascending p — the order the JIT-generated supernodal code runs.
  for (index_t j = 0; j < n; ++j) {
    value_t* cj = c + j * ldc;
    for (index_t p = 0; p < k; ++p) {
      const value_t bv = b[j + p * ldb];
      const value_t* ap = a + p * lda;
      for (index_t i = 0; i < m; ++i) cj[i] -= ap[i] * bv;
    }
  }
}

void syrk_lower_minus_ref(index_t n, index_t k, const value_t* a, index_t lda,
                          value_t* c, index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    value_t* cj = c + j * ldc;
    for (index_t p = 0; p < k; ++p) {
      const value_t ajp = a[j + p * lda];
      const value_t* ap = a + p * lda;
      for (index_t i = j; i < n; ++i) cj[i] -= ap[i] * ajp;
    }
  }
}

void gemv_minus_ref(index_t m, index_t n, const value_t* a, index_t lda,
                    const value_t* x, value_t* y) {
  for (index_t j = 0; j < n; ++j) {
    const value_t xj = x[j];
    const value_t* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) y[i] -= col[i] * xj;
  }
}

void gemv_trans_minus_ref(index_t m, index_t n, const value_t* a, index_t lda,
                          const value_t* x, value_t* y) {
  for (index_t j = 0; j < n; ++j) {
    const value_t* col = a + j * lda;
    value_t s = 0.0;
    for (index_t i = 0; i < m; ++i) s += col[i] * x[i];
    y[j] -= s;
  }
}

}  // namespace sympiler::blas
