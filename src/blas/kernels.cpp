#include "blas/kernels.h"

#include <cmath>

// The blocked kernels below are written against one invariant: every
// element's value is produced by the exact operation sequence of the `_ref`
// kernel (terms applied one at a time, ascending reduction index, scale
// last). Register blocking changes *where* intermediate values live (tile
// accumulators instead of memory), never the per-element sequence, so the
// results are bit-identical on targets without FP contraction — and the
// build never enables -ffast-math or per-TU contraction differences.
#define SYMPILER_RESTRICT __restrict__

namespace sympiler::blas {

namespace {

// Micro-tile geometry. 8x4 double tiles keep the hot gemm loop inside the
// SSE2 register file (with predictable spills GCC schedules well) and give
// the vectorizer fixed-width unit-stride inner loops.
constexpr index_t kMr = 8;  ///< micro-tile rows (C / solution vectors)
constexpr index_t kNr = 4;  ///< micro-tile cols (C) / unrolled chains
constexpr index_t kDiagBlock = 8;  ///< potrf/trsv/trsm diagonal block size
constexpr index_t kRhsVec = 8;     ///< multi-RHS register-vector width

// ---------------------------------------------------------------------------
// Unrolled compile-time-sized kernels ("Sympiler-generated" small kernels).
// ---------------------------------------------------------------------------

template <int N>
void potrf_unrolled(value_t* a, index_t lda) {
  for (int j = 0; j < N; ++j) {
    value_t d = a[j + j * lda];
    for (int k = 0; k < j; ++k) d -= a[j + k * lda] * a[j + k * lda];
    if (!(d > 0.0)) throw numerical_error("potrf: non-positive pivot");
    const value_t djj = std::sqrt(d);
    a[j + j * lda] = djj;
    const value_t inv = 1.0 / djj;
    for (int i = j + 1; i < N; ++i) {
      value_t s = a[i + j * lda];
      for (int k = 0; k < j; ++k) s -= a[i + k * lda] * a[j + k * lda];
      a[i + j * lda] = s * inv;
    }
  }
}

template <int N>
void trsv_unrolled(const value_t* l, index_t lda, value_t* x) {
  for (int j = 0; j < N; ++j) {
    const value_t xj = x[j] / l[j + j * lda];
    x[j] = xj;
    for (int i = j + 1; i < N; ++i) x[i] -= l[i + j * lda] * xj;
  }
}

// ---------------------------------------------------------------------------
// GEMM micro-kernels: an MR x NR tile of C rides in registers across the
// whole k reduction; each accumulator element applies its terms one at a
// time in ascending p — the _ref order.
// ---------------------------------------------------------------------------

template <int MR, int NR>
void gemm_tile(index_t k, const value_t* SYMPILER_RESTRICT a, index_t lda,
               const value_t* SYMPILER_RESTRICT b, index_t ldb,
               value_t* SYMPILER_RESTRICT c, index_t ldc) {
  value_t acc[NR][MR];
  for (int j = 0; j < NR; ++j)
    for (int i = 0; i < MR; ++i) acc[j][i] = c[i + j * ldc];
  for (index_t p = 0; p < k; ++p) {
    const value_t* SYMPILER_RESTRICT ap = a + p * lda;
    value_t av[MR];
    for (int i = 0; i < MR; ++i) av[i] = ap[i];
    for (int j = 0; j < NR; ++j) {
      const value_t bv = b[j + p * ldb];
      for (int i = 0; i < MR; ++i) acc[j][i] -= av[i] * bv;
    }
  }
  for (int j = 0; j < NR; ++j)
    for (int i = 0; i < MR; ++i) c[i + j * ldc] = acc[j][i];
}

template <int NR>
void gemm_col_strip(index_t m, index_t k, const value_t* a, index_t lda,
                    const value_t* b, index_t ldb, value_t* c, index_t ldc) {
  index_t i = 0;
  for (; i + 2 * kMr <= m; i += 2 * kMr)
    gemm_tile<2 * kMr, NR>(k, a + i, lda, b, ldb, c + i, ldc);
  if (i + kMr <= m) {
    gemm_tile<kMr, NR>(k, a + i, lda, b, ldb, c + i, ldc);
    i += kMr;
  }
  if (i + 4 <= m) {
    gemm_tile<4, NR>(k, a + i, lda, b, ldb, c + i, ldc);
    i += 4;
  }
  if (i + 2 <= m) {
    gemm_tile<2, NR>(k, a + i, lda, b, ldb, c + i, ldc);
    i += 2;
  }
  if (i < m) gemm_tile<1, NR>(k, a + i, lda, b, ldb, c + i, ldc);
}

// Unblocked in-block bodies shared by the blocked triangular kernels.

void trsv_lower_unblocked(index_t n, const value_t* l, index_t lda,
                          value_t* x) {
  for (index_t j = 0; j < n; ++j) {
    const value_t piv = l[j + j * lda];
    if (piv == 0.0) throw numerical_error("trsv: zero diagonal");
    const value_t xj = x[j] / piv;
    x[j] = xj;
    const value_t* col = l + j * lda;
    for (index_t i = j + 1; i < n; ++i) x[i] -= col[i] * xj;
  }
}

void trsm_rlt_unblocked(index_t m, index_t n, const value_t* l, index_t ldl,
                        value_t* b, index_t ldb) {
  for (index_t j = 0; j < n; ++j) {
    value_t* SYMPILER_RESTRICT bj = b + j * ldb;
    for (index_t k = 0; k < j; ++k) {
      const value_t ljk = l[j + k * ldl];
      const value_t* SYMPILER_RESTRICT bk = b + k * ldb;
      for (index_t i = 0; i < m; ++i) bj[i] -= ljk * bk[i];
    }
    const value_t piv = l[j + j * ldl];
    if (piv == 0.0) throw numerical_error("trsm: zero diagonal");
    const value_t inv = 1.0 / piv;
    for (index_t i = 0; i < m; ++i) bj[i] *= inv;
  }
}

}  // namespace

// ------------------------------------------------------------------ potrf

void potrf_lower(index_t n, value_t* a, index_t lda) {
  // Blocked right-looking: unrolled diagonal factorization, panel TRSM,
  // register-tiled SYRK trailing update. Every element still receives its
  // rank-k terms in ascending k (blocks of kDiagBlock are contiguous
  // ascending ranges), then scales — the _ref order.
  for (index_t k0 = 0; k0 < n; k0 += kDiagBlock) {
    const index_t nb = std::min(kDiagBlock, n - k0);
    value_t* akk = a + k0 + k0 * lda;
    potrf_lower_small(nb, akk, lda);
    const index_t rem = n - k0 - nb;
    if (rem > 0) {
      value_t* apanel = a + (k0 + nb) + k0 * lda;
      trsm_right_lower_trans(rem, nb, akk, lda, apanel, lda);
      syrk_lower_minus(rem, nb, apanel, lda,
                       a + (k0 + nb) + (k0 + nb) * lda, lda);
    }
  }
}

void potrf_lower_small(index_t n, value_t* a, index_t lda) {
  switch (n) {
    case 0: return;
    case 1: return potrf_unrolled<1>(a, lda);
    case 2: return potrf_unrolled<2>(a, lda);
    case 3: return potrf_unrolled<3>(a, lda);
    case 4: return potrf_unrolled<4>(a, lda);
    case 5: return potrf_unrolled<5>(a, lda);
    case 6: return potrf_unrolled<6>(a, lda);
    case 7: return potrf_unrolled<7>(a, lda);
    case 8: return potrf_unrolled<8>(a, lda);
    default: return potrf_lower(n, a, lda);
  }
}

// ------------------------------------------------------------------- trsv

void trsv_lower(index_t n, const value_t* l, index_t lda, value_t* x) {
  // Blocked forward substitution: solve a diagonal block, push its
  // contribution into the remaining rows with the register-tiled gemv.
  for (index_t j0 = 0; j0 < n; j0 += kDiagBlock) {
    const index_t nb = std::min(kDiagBlock, n - j0);
    trsv_lower_unblocked(nb, l + j0 + j0 * lda, lda, x + j0);
    const index_t rem = n - j0 - nb;
    if (rem > 0)
      gemv_minus(rem, nb, l + (j0 + nb) + j0 * lda, lda, x + j0,
                 x + j0 + nb);
  }
}

void trsv_lower_small(index_t n, const value_t* l, index_t lda, value_t* x) {
  switch (n) {
    case 0: return;
    case 1:
      x[0] /= l[0];
      return;
    case 2: return trsv_unrolled<2>(l, lda, x);
    case 3: return trsv_unrolled<3>(l, lda, x);
    case 4: return trsv_unrolled<4>(l, lda, x);
    case 5: return trsv_unrolled<5>(l, lda, x);
    case 6: return trsv_unrolled<6>(l, lda, x);
    case 7: return trsv_unrolled<7>(l, lda, x);
    case 8: return trsv_unrolled<8>(l, lda, x);
    default: return trsv_lower(n, l, lda, x);
  }
}

void trsv_lower_transpose(index_t n, const value_t* l, index_t lda,
                          value_t* x) {
  // The backward reduction is one serial accumulator chain per element;
  // there is no reordering-free blocking to apply — same loop nest as the
  // reference, compiled with this TU's vector flags.
  for (index_t j = n - 1; j >= 0; --j) {
    const value_t* col = l + j * lda;
    value_t s = x[j];
    for (index_t i = j + 1; i < n; ++i) s -= col[i] * x[i];
    const value_t piv = col[j];
    if (piv == 0.0) throw numerical_error("trsv^T: zero diagonal");
    x[j] = s / piv;
  }
}

// ------------------------------------------------------------------- trsm

void trsm_right_lower_trans(index_t m, index_t n, const value_t* l,
                            index_t ldl, value_t* b, index_t ldb) {
  // X L^T = B, blocked over column panels of B: columns [0, j0) are final
  // when panel [j0, j0+nb) starts, so their contribution is one
  // register-tiled GEMM (ascending k — the _ref subtraction order), then
  // the panel solves against the diagonal block.
  for (index_t j0 = 0; j0 < n; j0 += kDiagBlock) {
    const index_t nb = std::min(kDiagBlock, n - j0);
    if (j0 > 0)
      gemm_nt_minus(m, nb, j0, b, ldb, l + j0, ldl, b + j0 * ldb, ldb);
    trsm_rlt_unblocked(m, nb, l + j0 + j0 * ldl, ldl, b + j0 * ldb, ldb);
  }
}

// ------------------------------------------------------------ gemm / syrk

void gemm_nt_minus(index_t m, index_t n, index_t k, const value_t* a,
                   index_t lda, const value_t* b, index_t ldb, value_t* c,
                   index_t ldc) {
  index_t j = 0;
  for (; j + kNr <= n; j += kNr)
    gemm_col_strip<kNr>(m, k, a, lda, b + j, ldb, c + j * ldc, ldc);
  if (j + 2 <= n) {
    gemm_col_strip<2>(m, k, a, lda, b + j, ldb, c + j * ldc, ldc);
    j += 2;
  }
  if (j < n) gemm_col_strip<1>(m, k, a, lda, b + j, ldb, c + j * ldc, ldc);
}

void syrk_lower_minus(index_t n, index_t k, const value_t* a, index_t lda,
                      value_t* c, index_t ldc) {
  // Column strips of kNr: a small triangular wedge at the diagonal in _ref
  // order, a register-tiled GEMM for everything below it.
  for (index_t j0 = 0; j0 < n; j0 += kNr) {
    const index_t nb = std::min(kNr, n - j0);
    for (index_t j = j0; j < j0 + nb; ++j) {
      value_t* cj = c + j * ldc;
      for (index_t p = 0; p < k; ++p) {
        const value_t ajp = a[j + p * lda];
        const value_t* ap = a + p * lda;
        for (index_t i = j; i < j0 + nb; ++i) cj[i] -= ap[i] * ajp;
      }
    }
    const index_t rem = n - (j0 + nb);
    if (rem > 0)
      gemm_nt_minus(rem, nb, k, a + j0 + nb, lda, a + j0, lda,
                    c + (j0 + nb) + j0 * ldc, ldc);
  }
}

// ------------------------------------------------------------------- gemv

void gemv_minus(index_t m, index_t n, const value_t* a, index_t lda,
                const value_t* x, value_t* y) {
  // Column groups of kNr share one pass over y (loaded and stored once per
  // group instead of once per column); per element the terms still apply
  // in ascending j — the _ref order.
  index_t j = 0;
  for (; j + kNr <= n; j += kNr) {
    const value_t* SYMPILER_RESTRICT c0 = a + j * lda;
    const value_t* SYMPILER_RESTRICT c1 = a + (j + 1) * lda;
    const value_t* SYMPILER_RESTRICT c2 = a + (j + 2) * lda;
    const value_t* SYMPILER_RESTRICT c3 = a + (j + 3) * lda;
    const value_t x0 = x[j], x1 = x[j + 1], x2 = x[j + 2], x3 = x[j + 3];
    value_t* SYMPILER_RESTRICT yp = y;
    for (index_t i = 0; i < m; ++i) {
      value_t t = yp[i];
      t -= c0[i] * x0;
      t -= c1[i] * x1;
      t -= c2[i] * x2;
      t -= c3[i] * x3;
      yp[i] = t;
    }
  }
  for (; j < n; ++j) {
    const value_t xj = x[j];
    const value_t* SYMPILER_RESTRICT col = a + j * lda;
    for (index_t i = 0; i < m; ++i) y[i] -= col[i] * xj;
  }
}

void gemv_trans_minus(index_t m, index_t n, const value_t* a, index_t lda,
                      const value_t* x, value_t* y) {
  // kNr independent accumulator chains at a time (x loaded once per group);
  // each chain accumulates ascending i then subtracts once — _ref order.
  index_t j = 0;
  for (; j + kNr <= n; j += kNr) {
    const value_t* SYMPILER_RESTRICT c0 = a + j * lda;
    const value_t* SYMPILER_RESTRICT c1 = a + (j + 1) * lda;
    const value_t* SYMPILER_RESTRICT c2 = a + (j + 2) * lda;
    const value_t* SYMPILER_RESTRICT c3 = a + (j + 3) * lda;
    value_t s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (index_t i = 0; i < m; ++i) {
      const value_t xi = x[i];
      s0 += c0[i] * xi;
      s1 += c1[i] * xi;
      s2 += c2[i] * xi;
      s3 += c3[i] * xi;
    }
    y[j] -= s0;
    y[j + 1] -= s1;
    y[j + 2] -= s2;
    y[j + 3] -= s3;
  }
  for (; j < n; ++j) {
    const value_t* col = a + j * lda;
    value_t s = 0.0;
    for (index_t i = 0; i < m; ++i) s += col[i] * x[i];
    y[j] -= s;
  }
}

// -------------------------------------------------------------- multi-RHS

void trsm_lower_multi(index_t n, index_t nrhs, const value_t* l, index_t lda,
                      value_t* x, index_t ldx) {
  SYMPILER_CHECK(nrhs <= kRhsBlockMax, "trsm multi: RHS block too wide");
  for (index_t j = 0; j < n; ++j) {
    const value_t piv = l[j + j * lda];
    if (piv == 0.0) throw numerical_error("trsm_lower_multi: zero diagonal");
    value_t* SYMPILER_RESTRICT xj = x + j * ldx;
    for (index_t r = 0; r < nrhs; ++r) xj[r] /= piv;
    const value_t* col = l + j * lda;
    for (index_t i = j + 1; i < n; ++i) {
      const value_t lij = col[i];
      value_t* SYMPILER_RESTRICT xi = x + i * ldx;
      for (index_t r = 0; r < nrhs; ++r) xi[r] -= lij * xj[r];
    }
  }
}

void trsm_lower_transpose_multi(index_t n, index_t nrhs, const value_t* l,
                                index_t lda, value_t* x, index_t ldx) {
  SYMPILER_CHECK(nrhs <= kRhsBlockMax, "trsm^T multi: RHS block too wide");
  value_t s[kRhsBlockMax];
  for (index_t j = n - 1; j >= 0; --j) {
    const value_t* col = l + j * lda;
    value_t* SYMPILER_RESTRICT xj = x + j * ldx;
    for (index_t r = 0; r < nrhs; ++r) s[r] = xj[r];
    for (index_t i = j + 1; i < n; ++i) {
      const value_t lij = col[i];
      const value_t* SYMPILER_RESTRICT xi = x + i * ldx;
      for (index_t r = 0; r < nrhs; ++r) s[r] -= lij * xi[r];
    }
    const value_t piv = col[j];
    if (piv == 0.0)
      throw numerical_error("trsm_lower_transpose_multi: zero diagonal");
    for (index_t r = 0; r < nrhs; ++r) xj[r] = s[r] / piv;
  }
}

namespace {

// Y(i, r0..r0+RV) -= sum_j A(i,j) X(j, r0..r0+RV): a register chunk of Y's
// row rides across the whole j sweep; per (i, r) the terms apply in
// ascending j, matching gemv_minus on that RHS column.
template <int RV>
void gemm_minus_multi_chunk(index_t m, index_t n, const value_t* a,
                            index_t lda, const value_t* SYMPILER_RESTRICT x,
                            index_t ldx, value_t* SYMPILER_RESTRICT y,
                            index_t ldy) {
  for (index_t i = 0; i < m; ++i) {
    value_t* SYMPILER_RESTRICT yi = y + i * ldy;
    const value_t* SYMPILER_RESTRICT ai = a + i;
    value_t acc[RV];
    for (int t = 0; t < RV; ++t) acc[t] = yi[t];
    for (index_t j = 0; j < n; ++j) {
      const value_t av = ai[j * lda];
      const value_t* SYMPILER_RESTRICT xj = x + j * ldx;
      for (int t = 0; t < RV; ++t) acc[t] -= av * xj[t];
    }
    for (int t = 0; t < RV; ++t) yi[t] = acc[t];
  }
}

// Y(j, r0..r0+RV) -= sum_i A(i,j) X(i, r0..r0+RV): per (j, r) an
// accumulator over ascending i then one subtraction, matching
// gemv_trans_minus on that RHS column.
template <int RV>
void gemm_trans_minus_multi_chunk(index_t m, index_t n, const value_t* a,
                                  index_t lda,
                                  const value_t* SYMPILER_RESTRICT x,
                                  index_t ldx, value_t* SYMPILER_RESTRICT y,
                                  index_t ldy) {
  for (index_t j = 0; j < n; ++j) {
    const value_t* SYMPILER_RESTRICT col = a + j * lda;
    value_t* SYMPILER_RESTRICT yj = y + j * ldy;
    value_t acc[RV] = {};
    for (index_t i = 0; i < m; ++i) {
      const value_t av = col[i];
      const value_t* SYMPILER_RESTRICT xi = x + i * ldx;
      for (int t = 0; t < RV; ++t) acc[t] += av * xi[t];
    }
    for (int t = 0; t < RV; ++t) yj[t] -= acc[t];
  }
}

}  // namespace

void gemm_minus_multi(index_t m, index_t n, index_t nrhs, const value_t* a,
                      index_t lda, const value_t* x, index_t ldx, value_t* y,
                      index_t ldy) {
  // Widest chunk first: at the full packed-block width the strided panel
  // column is swept once per row instead of once per 8-RHS subchunk.
  index_t r0 = 0;
  for (; r0 + kRhsBlockMax <= nrhs; r0 += kRhsBlockMax)
    gemm_minus_multi_chunk<kRhsBlockMax>(m, n, a, lda, x + r0, ldx, y + r0,
                                         ldy);
  for (; r0 + kRhsVec <= nrhs; r0 += kRhsVec)
    gemm_minus_multi_chunk<kRhsVec>(m, n, a, lda, x + r0, ldx, y + r0, ldy);
  for (; r0 < nrhs; ++r0)
    gemm_minus_multi_chunk<1>(m, n, a, lda, x + r0, ldx, y + r0, ldy);
}

void gemm_trans_minus_multi(index_t m, index_t n, index_t nrhs,
                            const value_t* a, index_t lda, const value_t* x,
                            index_t ldx, value_t* y, index_t ldy) {
  index_t r0 = 0;
  for (; r0 + kRhsBlockMax <= nrhs; r0 += kRhsBlockMax)
    gemm_trans_minus_multi_chunk<kRhsBlockMax>(m, n, a, lda, x + r0, ldx,
                                               y + r0, ldy);
  for (; r0 + kRhsVec <= nrhs; r0 += kRhsVec)
    gemm_trans_minus_multi_chunk<kRhsVec>(m, n, a, lda, x + r0, ldx, y + r0,
                                          ldy);
  for (; r0 < nrhs; ++r0)
    gemm_trans_minus_multi_chunk<1>(m, n, a, lda, x + r0, ldx, y + r0, ldy);
}

void pack_rhs(index_t n, index_t nrhs, const value_t* x, index_t col_stride,
              value_t* xp, index_t ldp) {
  for (index_t r = 0; r < nrhs; ++r) {
    const value_t* SYMPILER_RESTRICT xc = x + r * col_stride;
    value_t* SYMPILER_RESTRICT dst = xp + r;
    for (index_t i = 0; i < n; ++i) dst[i * ldp] = xc[i];
  }
}

void unpack_rhs(index_t n, index_t nrhs, const value_t* xp, index_t ldp,
                value_t* x, index_t col_stride) {
  for (index_t r = 0; r < nrhs; ++r) {
    const value_t* SYMPILER_RESTRICT src = xp + r;
    value_t* SYMPILER_RESTRICT xc = x + r * col_stride;
    for (index_t i = 0; i < n; ++i) xc[i] = src[i * ldp];
  }
}

}  // namespace sympiler::blas
