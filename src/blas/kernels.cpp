#include "blas/kernels.h"

#include <cmath>

namespace sympiler::blas {

namespace {

// ---------------------------------------------------------------------------
// Unrolled compile-time-sized kernels ("Sympiler-generated" small kernels).
// ---------------------------------------------------------------------------

template <int N>
void potrf_unrolled(value_t* a, index_t lda) {
  for (int j = 0; j < N; ++j) {
    value_t d = a[j + j * lda];
    for (int k = 0; k < j; ++k) d -= a[j + k * lda] * a[j + k * lda];
    if (!(d > 0.0)) throw numerical_error("potrf: non-positive pivot");
    const value_t djj = std::sqrt(d);
    a[j + j * lda] = djj;
    const value_t inv = 1.0 / djj;
    for (int i = j + 1; i < N; ++i) {
      value_t s = a[i + j * lda];
      for (int k = 0; k < j; ++k) s -= a[i + k * lda] * a[j + k * lda];
      a[i + j * lda] = s * inv;
    }
  }
}

template <int N>
void trsv_unrolled(const value_t* l, index_t lda, value_t* x) {
  for (int j = 0; j < N; ++j) {
    const value_t xj = x[j] / l[j + j * lda];
    x[j] = xj;
    for (int i = j + 1; i < N; ++i) x[i] -= l[i + j * lda] * xj;
  }
}

}  // namespace

void potrf_lower(index_t n, value_t* a, index_t lda) {
  // Unblocked left-looking; adequate for supernode diagonal blocks which
  // are capped by SupernodeOptions::max_width.
  for (index_t j = 0; j < n; ++j) {
    value_t d = a[j + j * lda];
    const value_t* aj = a + j;
    for (index_t k = 0; k < j; ++k) d -= aj[k * lda] * aj[k * lda];
    if (!(d > 0.0)) throw numerical_error("potrf: non-positive pivot");
    const value_t djj = std::sqrt(d);
    a[j + j * lda] = djj;
    const value_t inv = 1.0 / djj;
    // Rank-j update of the sub-column, then scale.
    for (index_t k = 0; k < j; ++k) {
      const value_t ljk = a[j + k * lda];
      const value_t* col = a + k * lda;
      value_t* dst = a + j * lda;
      for (index_t i = j + 1; i < n; ++i) dst[i] -= col[i] * ljk;
    }
    value_t* dst = a + j * lda;
    for (index_t i = j + 1; i < n; ++i) dst[i] *= inv;
  }
}

void potrf_lower_small(index_t n, value_t* a, index_t lda) {
  switch (n) {
    case 0: return;
    case 1: return potrf_unrolled<1>(a, lda);
    case 2: return potrf_unrolled<2>(a, lda);
    case 3: return potrf_unrolled<3>(a, lda);
    case 4: return potrf_unrolled<4>(a, lda);
    case 5: return potrf_unrolled<5>(a, lda);
    case 6: return potrf_unrolled<6>(a, lda);
    case 7: return potrf_unrolled<7>(a, lda);
    case 8: return potrf_unrolled<8>(a, lda);
    default: return potrf_lower(n, a, lda);
  }
}

void trsv_lower(index_t n, const value_t* l, index_t lda, value_t* x) {
  for (index_t j = 0; j < n; ++j) {
    const value_t piv = l[j + j * lda];
    if (piv == 0.0) throw numerical_error("trsv: zero diagonal");
    const value_t xj = x[j] / piv;
    x[j] = xj;
    const value_t* col = l + j * lda;
    for (index_t i = j + 1; i < n; ++i) x[i] -= col[i] * xj;
  }
}

void trsv_lower_small(index_t n, const value_t* l, index_t lda, value_t* x) {
  switch (n) {
    case 0: return;
    case 1:
      x[0] /= l[0];
      return;
    case 2: return trsv_unrolled<2>(l, lda, x);
    case 3: return trsv_unrolled<3>(l, lda, x);
    case 4: return trsv_unrolled<4>(l, lda, x);
    case 5: return trsv_unrolled<5>(l, lda, x);
    case 6: return trsv_unrolled<6>(l, lda, x);
    case 7: return trsv_unrolled<7>(l, lda, x);
    case 8: return trsv_unrolled<8>(l, lda, x);
    default: return trsv_lower(n, l, lda, x);
  }
}

void trsv_lower_transpose(index_t n, const value_t* l, index_t lda,
                          value_t* x) {
  for (index_t j = n - 1; j >= 0; --j) {
    const value_t* col = l + j * lda;
    value_t s = x[j];
    for (index_t i = j + 1; i < n; ++i) s -= col[i] * x[i];
    const value_t piv = col[j];
    if (piv == 0.0) throw numerical_error("trsv^T: zero diagonal");
    x[j] = s / piv;
  }
}

void trsm_right_lower_trans(index_t m, index_t n, const value_t* l,
                            index_t ldl, value_t* b, index_t ldb) {
  // X L^T = B  =>  X(:,j) = (B(:,j) - sum_{k<j} X(:,k) L(j,k)) / L(j,j)
  for (index_t j = 0; j < n; ++j) {
    value_t* bj = b + j * ldb;
    for (index_t k = 0; k < j; ++k) {
      const value_t ljk = l[j + k * ldl];
      if (ljk == 0.0) continue;
      const value_t* bk = b + k * ldb;
      for (index_t i = 0; i < m; ++i) bj[i] -= ljk * bk[i];
    }
    const value_t piv = l[j + j * ldl];
    if (piv == 0.0) throw numerical_error("trsm: zero diagonal");
    const value_t inv = 1.0 / piv;
    for (index_t i = 0; i < m; ++i) bj[i] *= inv;
  }
}

void gemm_nt_minus(index_t m, index_t n, index_t k, const value_t* a,
                   index_t lda, const value_t* b, index_t ldb, value_t* c,
                   index_t ldc) {
  // Register-tiled over 2 columns of C; the k-loop is the innermost
  // reduction over columns of A/B (unit-stride in i, so GCC vectorizes the
  // i-loop). Layout: C(i,j) -= sum_p A(i,p) * B(j,p).
  index_t j = 0;
  for (; j + 1 < n; j += 2) {
    value_t* c0 = c + j * ldc;
    value_t* c1 = c + (j + 1) * ldc;
    for (index_t p = 0; p < k; ++p) {
      const value_t b0 = b[j + p * ldb];
      const value_t b1 = b[j + 1 + p * ldb];
      const value_t* ap = a + p * lda;
      for (index_t i = 0; i < m; ++i) {
        const value_t av = ap[i];
        c0[i] -= av * b0;
        c1[i] -= av * b1;
      }
    }
  }
  for (; j < n; ++j) {
    value_t* c0 = c + j * ldc;
    for (index_t p = 0; p < k; ++p) {
      const value_t b0 = b[j + p * ldb];
      if (b0 == 0.0) continue;
      const value_t* ap = a + p * lda;
      for (index_t i = 0; i < m; ++i) c0[i] -= ap[i] * b0;
    }
  }
}

void syrk_lower_minus(index_t n, index_t k, const value_t* a, index_t lda,
                      value_t* c, index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    value_t* cj = c + j * ldc;
    for (index_t p = 0; p < k; ++p) {
      const value_t ajp = a[j + p * lda];
      if (ajp == 0.0) continue;
      const value_t* ap = a + p * lda;
      for (index_t i = j; i < n; ++i) cj[i] -= ap[i] * ajp;
    }
  }
}

void gemv_minus(index_t m, index_t n, const value_t* a, index_t lda,
                const value_t* x, value_t* y) {
  for (index_t j = 0; j < n; ++j) {
    const value_t xj = x[j];
    if (xj == 0.0) continue;
    const value_t* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) y[i] -= col[i] * xj;
  }
}

void gemv_trans_minus(index_t m, index_t n, const value_t* a, index_t lda,
                      const value_t* x, value_t* y) {
  for (index_t j = 0; j < n; ++j) {
    const value_t* col = a + j * lda;
    value_t s = 0.0;
    for (index_t i = 0; i < m; ++i) s += col[i] * x[i];
    y[j] -= s;
  }
}

}  // namespace sympiler::blas
