// Lock-step SIMD row-bundle kernels for the coarsened level-set schedules
// (parallel/schedule.h), with runtime ISA dispatch.
//
// A bundle is 2..kBundleLanesMax mutually independent columns of L with
// identical sparsity shape (same incoming-term count, same update count),
// scheduled at one aggregate level. The bundle kernel advances all lanes
// in lock step: gather the incoming privatized terms lane-by-lane per
// term index, divide by the pivots, scatter the scaled updates into each
// lane's plan-assigned slots. Per lane the operation sequence is exactly
// the scalar solve_column body — fold ascending term index, scale last —
// so lane parallelism changes data movement only, never any element's
// bits. `trisolve_bundle_ref` is the scalar twin of the two-tier contract
// (blas/kernels.h): it runs the lanes serially through the same per-lane
// sequence and the SIMD tiers must match it bit for bit.
//
// Runtime ISA dispatch. The kernel body (bundle_impl.inc) is compiled
// into three translation units — baseline, AVX2 (-mavx2), and AVX-512
// (-mavx512f), all with -mno-fma and the library-wide -ffp-contract=off —
// and one binary picks the widest CPU-supported tier via cpuid on first
// use (no -march=native of the build host baked into the dispatch).
// Wider vector lanes change no arithmetic: the same uncontracted
// mul/sub/div runs per element on every tier, so results are
// bit-identical across tiers (pinned in tests/test_blas.cpp). With
// SYMPILER_KERNEL_ISA=off all three TUs compile to baseline code and the
// dispatch degenerates harmlessly.
#pragma once

#include "util/common.h"

namespace sympiler::blas {

/// Widest bundle the kernels accept (mirrors parallel::kBundleMax).
inline constexpr index_t kBundleLanesMax = 8;

/// Vector-ISA tiers of the bundle kernel, ascending width.
enum class BundleIsa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

[[nodiscard]] const char* to_string(BundleIsa isa);

/// Widest tier this CPU supports (cpuid; detected once).
[[nodiscard]] BundleIsa bundle_isa_best();

/// Tier the dispatcher currently routes to: the forced tier if one was
/// set, else the best supported tier.
[[nodiscard]] BundleIsa bundle_isa_active();

/// Force a dispatch tier (tests / benches), clamped to the best supported
/// tier — forcing AVX-512 on an AVX2 machine selects AVX2. Returns the
/// tier actually selected. Pass the best tier to restore auto behavior.
BundleIsa bundle_isa_force(BundleIsa isa);

/// Lock-step forward-solve step of one column bundle. `cols` holds
/// `lanes` (<= kBundleLanesMax) column ids of identical shape: every lane
/// has `incount` incoming privatized terms and `outcount` off-diagonal
/// updates. `colptr`/`Lx` are the CSC structure/values of L, `slot` +
/// `row_ptr` the compacted UpdateSlotMap arrays, `x` the solution vector
/// and `terms` the privatized terms buffer. Dispatches to the active ISA
/// tier.
void trisolve_bundle(index_t lanes, index_t incount, index_t outcount,
                     const index_t* cols, const index_t* colptr,
                     const value_t* Lx, const index_t* slot,
                     const index_t* row_ptr, value_t* x, value_t* terms);

/// Scalar reference twin: lanes run serially, each through the exact
/// scalar solve_column sequence. The dispatch tiers must match this bit
/// for bit on every input.
void trisolve_bundle_ref(index_t lanes, index_t incount, index_t outcount,
                         const index_t* cols, const index_t* colptr,
                         const value_t* Lx, const index_t* slot,
                         const index_t* row_ptr, value_t* x, value_t* terms);

namespace detail {
/// Per-TU instantiations of the shared kernel body (bundle_impl.inc);
/// call through trisolve_bundle, never directly — only the dispatcher
/// knows which tiers the running CPU supports.
void trisolve_bundle_scalar(index_t lanes, index_t incount, index_t outcount,
                            const index_t* cols, const index_t* colptr,
                            const value_t* Lx, const index_t* slot,
                            const index_t* row_ptr, value_t* x,
                            value_t* terms);
void trisolve_bundle_avx2(index_t lanes, index_t incount, index_t outcount,
                          const index_t* cols, const index_t* colptr,
                          const value_t* Lx, const index_t* slot,
                          const index_t* row_ptr, value_t* x, value_t* terms);
void trisolve_bundle_avx512(index_t lanes, index_t incount, index_t outcount,
                            const index_t* cols, const index_t* colptr,
                            const value_t* Lx, const index_t* slot,
                            const index_t* row_ptr, value_t* x,
                            value_t* terms);
}  // namespace detail

}  // namespace sympiler::blas
