// Level-set (wavefront) parallel executors — the paper's stated extension
// direction ("the transformations ... should extend to improve performance
// on shared and distributed memory systems"; realized by the authors'
// ParSy follow-on). The symbolic inspector computes one more inspection
// set: a level schedule of the dependence structure; columns/supernodes
// within a level are independent and run in parallel (OpenMP when built
// with SYMPILER_HAS_OPENMP, sequentially otherwise).
#pragma once

#include <span>
#include <vector>

#include "core/inspector.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::parallel {

/// Level schedule: levels partition [0, count) items such that an item's
/// dependencies all live in strictly earlier levels.
struct LevelSchedule {
  std::vector<index_t> level_ptr;  ///< size nlevels + 1
  std::vector<index_t> items;      ///< permutation of items, bucketed
  [[nodiscard]] index_t levels() const {
    return static_cast<index_t>(level_ptr.size()) - 1;
  }
};

/// Levels of the column dependence graph DG_L (column j depends on every
/// column k with L(j,k) != 0).
[[nodiscard]] LevelSchedule level_schedule_columns(const CscMatrix& l);

/// Levels of the supernodal elimination forest.
[[nodiscard]] LevelSchedule level_schedule_supernodes(
    const SupernodePartition& sn, std::span<const index_t> parent);

/// Parallel full forward solve L x = b using a precomputed level schedule.
void parallel_trisolve(const CscMatrix& l, const LevelSchedule& schedule,
                       std::span<value_t> x);

/// Parallel supernodal left-looking Cholesky using the static inspection
/// sets plus a supernode level schedule. Writes the factor into `panels`
/// (layout in sets.layout). Each level's supernodes factor concurrently;
/// left-looking updates only read descendants, which live in earlier
/// levels.
void parallel_cholesky(const core::CholeskySets& sets,
                       const LevelSchedule& schedule,
                       const CscMatrix& a_lower, std::span<value_t> panels);

}  // namespace sympiler::parallel
