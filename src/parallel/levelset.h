// Level-set (wavefront) parallel executors — the paper's stated extension
// direction ("the transformations ... should extend to improve performance
// on shared and distributed memory systems"; realized by the authors'
// ParSy follow-on). The symbolic inspector computes one more inspection
// set: a level schedule of the dependence structure; columns/supernodes
// within a level are independent and run in parallel (OpenMP when built
// with SYMPILER_HAS_OPENMP, sequentially otherwise).
//
// Determinism. Two same-level items can update the same later row, which
// a naive wavefront would resolve with atomics — making result bits vary
// run to run and silently breaking the repo's bit-identity contract. The
// executors here instead use level-private accumulation: the symbolic
// phase assigns every cross-item update a private slot in a terms buffer
// (UpdateSlotMap — the row-major transpose of the update pattern), each
// producer writes its terms into its own slots with no synchronization,
// and the consumer row folds its incoming terms in ascending-source
// order when it is solved. That fold is exactly the serial subtraction
// sequence, so the parallel solve is bit-identical to the sequential
// executor and invariant to the thread count — by construction, not by
// tolerance.
//
// The level schedule and slot map are part of a core::ExecutionPlan: the
// Planner builds them once per pattern and the plan-driven overloads
// below interpret them.
//
// Failure domains. Every parallel region below contains exceptions with a
// util::AbortGuard — the first throw turns every remaining task body into
// a no-op (the level loops themselves never branch on the flag, keeping
// the worksharing sequence uniform across the team) and is rethrown once,
// outside the region, so a mid-sweep failure can never std::terminate the
// process or strand threads on mismatched barriers. The plan-driven overloads additionally
// degrade: an infrastructure fault (workspace growth, injected faults)
// triggers a serial re-execution of the same schedule — bit-identical by
// the determinism contract — and the overload reports the degradation to
// its caller instead of failing the solve. Numeric pivot failures in the
// Cholesky sweep are data errors (a serial re-run would hit the same
// pivot), so they propagate to the facade's shift-retry ladder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/inspector.h"
#include "parallel/schedule.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::core {
struct CholeskyPlan;   // core/execution_plan.h
struct TriSolvePlan;
class Workspace;       // core/workspace.h
}  // namespace sympiler::core

namespace sympiler::solvers {
struct SupernodalLayout;  // solvers/supernodal.h
}  // namespace sympiler::solvers

namespace sympiler::parallel {

// LevelSchedule / UpdateSlotMap and their builders live in
// parallel/schedule.h (shared with the planning layer); this header holds
// the executors that interpret them.

/// Parallel full forward solve L x = b using a precomputed level schedule
/// and slot map. `terms` is caller scratch of at least umap.slots()
/// values. Bit-identical to the sequential pruned solve and deterministic
/// across runs and thread counts (see the header comment).
void parallel_trisolve(const CscMatrix& l, const LevelSchedule& schedule,
                       const UpdateSlotMap& umap, std::span<value_t> x,
                       std::span<value_t> terms);

/// Coarsened-schedule variant: interprets an AggregateSchedule instead of
/// the flat levels — fused chains run sequentially on one thread, SIMD
/// bundles go through the ISA-dispatched bundle kernels (blas/bundle.h).
/// Same slot map, same fold order, so still bit-identical to the serial
/// solve at any thread count.
void parallel_trisolve(const CscMatrix& l, const AggregateSchedule& agg,
                       const UpdateSlotMap& umap, std::span<value_t> x,
                       std::span<value_t> terms);

/// Packed multi-RHS variant: X(i, r) at xp[r + i * ldp], nrhs <=
/// blas::kRhsBlockMax, `terms` holds umap.slots() RHS-major rows of ldp
/// values. Per RHS column the arithmetic is bit-identical to the
/// single-RHS parallel_trisolve (and hence to the serial pruned solve).
void parallel_trisolve_multi(const CscMatrix& l, const LevelSchedule& schedule,
                             const UpdateSlotMap& umap, value_t* xp,
                             index_t nrhs, index_t ldp, value_t* terms);

/// Coarsened-schedule multi-RHS variant: chain fusion collapses barriers;
/// bundle tasks run their lanes sequentially (the RHS loop is already the
/// vector direction), which is bit-identical by the bundle contract.
void parallel_trisolve_multi(const CscMatrix& l, const AggregateSchedule& agg,
                             const UpdateSlotMap& umap, value_t* xp,
                             index_t nrhs, index_t ldp, value_t* terms);

/// Plan-driven interpreter: runs the schedule + slot map carried by a
/// trisolve plan whose path is ExecutionPath::ParallelTriSolve. `ws` is
/// the caller's plan-sized workspace (holds the shared terms buffer plus a
/// one-column snapshot of x; grow-only, so a warm solve allocates
/// nothing). On a parallel-sweep failure the input is restored from the
/// snapshot and the sweep re-runs serially (bit-identical); returns true
/// when that fallback was taken, recording the triggering failure in
/// `*fallback_error` when non-null.
bool parallel_trisolve(const CscMatrix& l, const core::TriSolvePlan& plan,
                       std::span<value_t> x, core::Workspace& ws,
                       Status* fallback_error = nullptr);

/// Plan-driven blocked multi-RHS level-set solve: `xs` holds nrhs
/// column-major dense RHS of length n. RHS columns are tiled into packed
/// blocks (core::rhs_block_width) and each block sweeps the level schedule
/// once; per column the result is bit-identical to looped single-RHS
/// solves. `ws` carries the packed block and terms buffers. A failing
/// block is repacked from its (still pristine) input columns and re-swept
/// serially; returns true when any block degraded, recording the first
/// failure in `*fallback_error` when non-null.
bool parallel_trisolve_batch(const CscMatrix& l, const core::TriSolvePlan& plan,
                             std::span<value_t> xs, index_t nrhs,
                             core::Workspace& ws,
                             Status* fallback_error = nullptr);

/// Parallel supernodal left-looking Cholesky using the static inspection
/// sets plus a supernode level schedule. Writes the factor into `panels`
/// (layout in sets.layout). Each level's supernodes factor concurrently;
/// left-looking updates only read descendants, which live in earlier
/// levels. Deterministic: every panel's updates are applied by its owning
/// thread in static schedule order.
void parallel_cholesky(const core::CholeskySets& sets,
                       const LevelSchedule& schedule,
                       const CscMatrix& a_lower, std::span<value_t> panels);

/// Coarsened-schedule variant: fused supernode chains factor sequentially
/// on one thread, collapsing the barrier cascade of deep, narrow levels.
void parallel_cholesky(const core::CholeskySets& sets,
                       const AggregateSchedule& agg, const CscMatrix& a_lower,
                       std::span<value_t> panels);

/// Plan-driven interpreter: sets + schedule come from the plan (path must
/// be ExecutionPath::ParallelSupernodal); interprets the plan's coarsened
/// schedule when present, the flat levels otherwise. An infrastructure
/// fault re-scatters A and re-runs the schedule serially (bit-identical);
/// returns true when that fallback was taken, recording the failure in
/// `*fallback_error` when non-null. numerical_error propagates — a pivot
/// failure is a property of the data, not of the parallel execution.
bool parallel_cholesky(const core::CholeskyPlan& plan,
                       const CscMatrix& a_lower, std::span<value_t> panels,
                       Status* fallback_error = nullptr);

/// Plan-driven blocked multi-RHS solve over factored supernodal panels:
/// packed RHS blocks sweep the plan's supernode level schedule — forward
/// with slot-privatized tail updates, backward over reversed levels (which
/// races on nothing: each supernode writes only its own block rows). Per
/// RHS column, bit-identical to the sequential panel solves; parallel
/// inside each level. `ws` is the caller's shared workspace (packed block
/// + terms); per-thread tail scratch lives in grow-only thread_local
/// workspaces. Degrades on failure: if the shared workspace cannot grow,
/// the whole batch falls back to core::blocked_panel_solve_batch
/// (bit-identical per column); a block failing mid-sweep is repacked from
/// its pristine input columns and re-swept serially. Returns true when any
/// fallback was taken, recording the first failure in `*fallback_error`
/// when non-null.
bool parallel_panel_solve_batch(const core::CholeskyPlan& plan,
                                std::span<const value_t> panels,
                                std::span<value_t> bx, index_t nrhs,
                                core::Workspace& ws,
                                Status* fallback_error = nullptr);

}  // namespace sympiler::parallel
