// Level-set (wavefront) parallel executors — the paper's stated extension
// direction ("the transformations ... should extend to improve performance
// on shared and distributed memory systems"; realized by the authors'
// ParSy follow-on). The symbolic inspector computes one more inspection
// set: a level schedule of the dependence structure; columns/supernodes
// within a level are independent and run in parallel (OpenMP when built
// with SYMPILER_HAS_OPENMP, sequentially otherwise).
//
// The level schedule is part of a core::ExecutionPlan: the Planner builds
// it once per pattern and the plan-driven overloads below interpret it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/inspector.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::core {
struct CholeskyPlan;   // core/execution_plan.h
struct TriSolvePlan;
}  // namespace sympiler::core

namespace sympiler::parallel {

/// Level schedule: levels partition [0, count) items such that an item's
/// dependencies all live in strictly earlier levels.
struct LevelSchedule {
  std::vector<index_t> level_ptr;  ///< size nlevels + 1
  std::vector<index_t> items;      ///< permutation of items, bucketed
  [[nodiscard]] index_t levels() const {
    return level_ptr.empty()
               ? 0
               : static_cast<index_t>(level_ptr.size()) - 1;
  }
  [[nodiscard]] bool empty() const { return items.empty(); }
  /// Mean items per level; 0 for an empty schedule.
  [[nodiscard]] double avg_level_width() const {
    const index_t n = levels();
    return n > 0 ? static_cast<double>(items.size()) / static_cast<double>(n)
                 : 0.0;
  }
  /// Heap bytes of the schedule arrays (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return (level_ptr.size() + items.size()) * sizeof(index_t);
  }
};

/// Process-wide count of level schedules constructed so far. Regression
/// instrumentation: a warm plan-cache hit must do zero schedule work, which
/// tests assert by taking the counter's delta around a warm factor().
[[nodiscard]] std::uint64_t level_schedule_builds();

/// Levels of the column dependence graph DG_L (column j depends on every
/// column k with L(j,k) != 0).
[[nodiscard]] LevelSchedule level_schedule_columns(const CscMatrix& l);

/// Levels of the supernodal elimination forest.
[[nodiscard]] LevelSchedule level_schedule_supernodes(
    const SupernodePartition& sn, std::span<const index_t> parent);

/// Parallel full forward solve L x = b using a precomputed level schedule.
void parallel_trisolve(const CscMatrix& l, const LevelSchedule& schedule,
                       std::span<value_t> x);

/// Plan-driven interpreter: runs the schedule carried by a trisolve plan
/// whose path is ExecutionPath::ParallelTriSolve. Same-level columns
/// update shared rows with atomics, so result bits can vary run to run
/// (unlike every sequential path).
void parallel_trisolve(const CscMatrix& l, const core::TriSolvePlan& plan,
                       std::span<value_t> x);

/// Parallel supernodal left-looking Cholesky using the static inspection
/// sets plus a supernode level schedule. Writes the factor into `panels`
/// (layout in sets.layout). Each level's supernodes factor concurrently;
/// left-looking updates only read descendants, which live in earlier
/// levels. Deterministic: every panel's updates are applied by its owning
/// thread in static schedule order.
void parallel_cholesky(const core::CholeskySets& sets,
                       const LevelSchedule& schedule,
                       const CscMatrix& a_lower, std::span<value_t> panels);

/// Plan-driven interpreter: sets + schedule come from the plan (path must
/// be ExecutionPath::ParallelSupernodal).
void parallel_cholesky(const core::CholeskyPlan& plan,
                       const CscMatrix& a_lower, std::span<value_t> panels);

}  // namespace sympiler::parallel
