// Level-set schedule and privatized update-slot map — the pattern-pure
// symbolic products of the parallel executors, split out of levelset.h so
// the planning layer (core/inspector.h) can build them inside its parallel
// assembly region without an include cycle (levelset.h's executors consume
// core::CholeskySets and therefore include inspector.h).
//
// See levelset.h for the execution model these products drive and the
// determinism argument for the slot map.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/supernodes.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::solvers {
struct SupernodalLayout;  // solvers/supernodal.h
}  // namespace sympiler::solvers

namespace sympiler::parallel {

/// Level schedule: levels partition [0, count) items such that an item's
/// dependencies all live in strictly earlier levels.
struct LevelSchedule {
  std::vector<index_t> level_ptr;  ///< size nlevels + 1
  std::vector<index_t> items;      ///< permutation of items, bucketed
  [[nodiscard]] index_t levels() const {
    return level_ptr.empty()
               ? 0
               : static_cast<index_t>(level_ptr.size()) - 1;
  }
  [[nodiscard]] bool empty() const { return items.empty(); }
  /// Mean items per level; 0 for an empty schedule.
  [[nodiscard]] double avg_level_width() const {
    const index_t n = levels();
    return n > 0 ? static_cast<double>(items.size()) / static_cast<double>(n)
                 : 0.0;
  }
  /// Heap bytes of the schedule arrays (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return (level_ptr.size() + items.size()) * sizeof(index_t);
  }
};

/// Dependence-coarsened (aggregate) schedule: the flat level schedule
/// rewritten into super-tasks mined from the actual dependence DAG.
///
/// Two task kinds:
///  - **chain** (`bundle[t] == 0`): a run of items, one per consecutive
///    flat level, where every dependence of a member is either the run
///    member one flat level below it or lives at a flat level before the
///    run started. The run executes sequentially on one thread — the
///    barrier cascade of those flat levels collapses into ordinary
///    program order. A singleton item is a length-1 chain.
///  - **bundle** (`bundle[t] == 1`): 2..kBundleMax mutually independent
///    items of identical sparsity shape at the same aggregate level,
///    executed lock-step by the SIMD bundle kernels (blas/bundle.h).
///
/// Aggregate level of a task = the flat level of its first item; tasks
/// within an aggregate level are mutually independent (a dependence into
/// a chain implies a strictly earlier aggregate level — see
/// docs/architecture.md, "Schedule coarsening"), so levels keep the
/// barrier-per-level execution model of LevelSchedule. Backward sweeps
/// reverse both the level order and the item order inside each task.
/// Pattern-pure — built by the Planner, cached with the plan; bit-identity
/// is untouched because the UpdateSlotMap fold order never depends on the
/// execution schedule.
struct AggregateSchedule {
  std::vector<index_t> level_ptr;   ///< size nlevels + 1, into tasks
  std::vector<index_t> task_ptr;    ///< size ntasks + 1, into items
  std::vector<index_t> items;       ///< permutation of items, task-major
  std::vector<std::uint8_t> bundle; ///< per task: 1 = lock-step bundle

  [[nodiscard]] index_t levels() const {
    return level_ptr.empty()
               ? 0
               : static_cast<index_t>(level_ptr.size()) - 1;
  }
  [[nodiscard]] index_t tasks() const {
    return task_ptr.empty() ? 0 : static_cast<index_t>(task_ptr.size()) - 1;
  }
  [[nodiscard]] bool empty() const { return items.empty(); }
  [[nodiscard]] index_t bundles() const {
    index_t c = 0;
    for (const std::uint8_t b : bundle) c += b;
    return c;
  }
  /// Heap bytes of the schedule arrays (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return (level_ptr.size() + task_ptr.size() + items.size()) *
               sizeof(index_t) +
           bundle.size() * sizeof(std::uint8_t);
  }
};

/// Which coarsening rewrites to apply (bench ablations run them
/// separately; the Planner applies both).
struct CoarsenOptions {
  bool chains = true;   ///< fuse dependence runs into sequential chains
  bool bundles = true;  ///< group same-shape independent rows lock-step
};

/// Widest SIMD bundle the coarsener emits and the bundle kernels accept.
inline constexpr index_t kBundleMax = 8;
/// Narrowest group worth bundling (below this, lanes stay chain items).
inline constexpr index_t kBundleMin = 4;

/// Privatized cross-item update map: the symbolic product that makes the
/// level-set solves deterministic. Every off-diagonal update a source item
/// (column, or supernode tail row) will produce gets a dedicated slot in a
/// terms buffer; slots are grouped by target row and ordered by ascending
/// source within each row, so the consumer's fold replays the serial
/// update order exactly. Pattern-pure — built by the Planner, cached with
/// the plan.
struct UpdateSlotMap {
  /// Compact source position -> slot id. Positions that can never produce
  /// a cross-item update are squeezed out (they held -1 before PR 7): for
  /// the column map the array is indexed by *off-diagonal* CSC position —
  /// position p of column j maps to p - j - 1 (the j + 1 diagonals at or
  /// before p are dropped); for the supernodal map it is indexed by
  /// *below-diagonal* srows position — position srow_ptr[s] + u (u >=
  /// width(s)) maps to srow_ptr[s] + u - sn.start[s] - width(s) (the
  /// block rows of supernodes 0..s sum to sn.start[s] + width(s)).
  std::vector<index_t> slot;
  /// Incoming slots of row i are [row_ptr[i], row_ptr[i+1]), in ascending
  /// source order. Size n + 1.
  std::vector<index_t> row_ptr;

  [[nodiscard]] index_t slots() const {
    return row_ptr.empty() ? 0 : row_ptr.back();
  }
  [[nodiscard]] bool empty() const { return row_ptr.empty(); }
  /// Heap bytes of the map arrays (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return (slot.size() + row_ptr.size()) * sizeof(index_t);
  }
};

/// Slot map of the column update pattern of L: one slot per strictly-lower
/// nonzero. `order` is the column iteration order of the serial solve the
/// parallel one must replay — the plan's reach sequence for the pruned
/// executor, or empty for ascending column order (trisolve_naive). Rows
/// fold their updaters in that order.
[[nodiscard]] UpdateSlotMap update_slots_columns(
    const CscMatrix& l, std::span<const index_t> order = {});

/// Slot map of the supernodal forward-solve update pattern: one slot per
/// below-diagonal panel row, target rows fold their contributing
/// supernodes in ascending supernode order.
[[nodiscard]] UpdateSlotMap update_slots_supernodes(
    const solvers::SupernodalLayout& layout);

/// Process-wide count of level schedules constructed so far. Regression
/// instrumentation: a warm plan-cache hit must do zero schedule work, which
/// tests assert by taking the counter's delta around a warm factor().
[[nodiscard]] std::uint64_t level_schedule_builds();

/// Levels of the column dependence graph DG_L (column j depends on every
/// column k with L(j,k) != 0).
[[nodiscard]] LevelSchedule level_schedule_columns(const CscMatrix& l);

/// Levels of the supernodal elimination forest.
[[nodiscard]] LevelSchedule level_schedule_supernodes(
    const SupernodePartition& sn, std::span<const index_t> parent);

/// Coarsen a flat column level schedule of DG_L into chains + SIMD
/// bundles (see AggregateSchedule). Tasks within each aggregate level are
/// ordered by the postorder rank of their head column in the solve etree
/// (parent(j) = first off-diagonal row of column j), so runs and bundles
/// that execute together are contiguous in memory; bundles group
/// postorder-adjacent columns of equal (incoming-term, update) counts.
/// Deterministic pure pattern function — naive and fast plans share it.
[[nodiscard]] AggregateSchedule coarsen_schedule_columns(
    const CscMatrix& l, const LevelSchedule& flat,
    const CoarsenOptions& opt = {});

/// Coarsen the supernodal level schedule: chain fusion only (supernode
/// shapes are too irregular to lock-step), runs mined from the update
/// lists' dependence structure, tasks postordered by the supernodal
/// etree. Items are supernode ids; `updates` is the plan's static update
/// schedule (solvers::UpdateLists flattened as ptr/refs source ids).
[[nodiscard]] AggregateSchedule coarsen_schedule_supernodes(
    const SupernodePartition& sn, std::span<const index_t> parent,
    std::span<const index_t> dep_ptr, std::span<const index_t> dep_src,
    const LevelSchedule& flat, const CoarsenOptions& opt = {});

}  // namespace sympiler::parallel
