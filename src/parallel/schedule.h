// Level-set schedule and privatized update-slot map — the pattern-pure
// symbolic products of the parallel executors, split out of levelset.h so
// the planning layer (core/inspector.h) can build them inside its parallel
// assembly region without an include cycle (levelset.h's executors consume
// core::CholeskySets and therefore include inspector.h).
//
// See levelset.h for the execution model these products drive and the
// determinism argument for the slot map.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/supernodes.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::solvers {
struct SupernodalLayout;  // solvers/supernodal.h
}  // namespace sympiler::solvers

namespace sympiler::parallel {

/// Level schedule: levels partition [0, count) items such that an item's
/// dependencies all live in strictly earlier levels.
struct LevelSchedule {
  std::vector<index_t> level_ptr;  ///< size nlevels + 1
  std::vector<index_t> items;      ///< permutation of items, bucketed
  [[nodiscard]] index_t levels() const {
    return level_ptr.empty()
               ? 0
               : static_cast<index_t>(level_ptr.size()) - 1;
  }
  [[nodiscard]] bool empty() const { return items.empty(); }
  /// Mean items per level; 0 for an empty schedule.
  [[nodiscard]] double avg_level_width() const {
    const index_t n = levels();
    return n > 0 ? static_cast<double>(items.size()) / static_cast<double>(n)
                 : 0.0;
  }
  /// Heap bytes of the schedule arrays (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return (level_ptr.size() + items.size()) * sizeof(index_t);
  }
};

/// Privatized cross-item update map: the symbolic product that makes the
/// level-set solves deterministic. Every off-diagonal update a source item
/// (column, or supernode tail row) will produce gets a dedicated slot in a
/// terms buffer; slots are grouped by target row and ordered by ascending
/// source within each row, so the consumer's fold replays the serial
/// update order exactly. Pattern-pure — built by the Planner, cached with
/// the plan.
struct UpdateSlotMap {
  /// Source position -> slot id. For the column map, indexed by CSC
  /// position p of L (diagonal positions hold -1); for the supernodal map,
  /// indexed by global srows position (block-row positions hold -1).
  std::vector<index_t> slot;
  /// Incoming slots of row i are [row_ptr[i], row_ptr[i+1]), in ascending
  /// source order. Size n + 1.
  std::vector<index_t> row_ptr;

  [[nodiscard]] index_t slots() const {
    return row_ptr.empty() ? 0 : row_ptr.back();
  }
  [[nodiscard]] bool empty() const { return row_ptr.empty(); }
  /// Heap bytes of the map arrays (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return (slot.size() + row_ptr.size()) * sizeof(index_t);
  }
};

/// Slot map of the column update pattern of L: one slot per strictly-lower
/// nonzero. `order` is the column iteration order of the serial solve the
/// parallel one must replay — the plan's reach sequence for the pruned
/// executor, or empty for ascending column order (trisolve_naive). Rows
/// fold their updaters in that order.
[[nodiscard]] UpdateSlotMap update_slots_columns(
    const CscMatrix& l, std::span<const index_t> order = {});

/// Slot map of the supernodal forward-solve update pattern: one slot per
/// below-diagonal panel row, target rows fold their contributing
/// supernodes in ascending supernode order.
[[nodiscard]] UpdateSlotMap update_slots_supernodes(
    const solvers::SupernodalLayout& layout);

/// Process-wide count of level schedules constructed so far. Regression
/// instrumentation: a warm plan-cache hit must do zero schedule work, which
/// tests assert by taking the counter's delta around a warm factor().
[[nodiscard]] std::uint64_t level_schedule_builds();

/// Levels of the column dependence graph DG_L (column j depends on every
/// column k with L(j,k) != 0).
[[nodiscard]] LevelSchedule level_schedule_columns(const CscMatrix& l);

/// Levels of the supernodal elimination forest.
[[nodiscard]] LevelSchedule level_schedule_supernodes(
    const SupernodePartition& sn, std::span<const index_t> parent);

}  // namespace sympiler::parallel
