#include "parallel/levelset.h"

#include <algorithm>
#include <atomic>

#include "blas/kernels.h"
#include "core/execution_plan.h"
#include "core/workspace.h"
#include "solvers/supernodal.h"

namespace sympiler::parallel {

namespace {

std::atomic<std::uint64_t> g_schedule_builds{0};

LevelSchedule bucket_by_level(std::span<const index_t> level) {
  g_schedule_builds.fetch_add(1, std::memory_order_relaxed);
  LevelSchedule s;
  const auto count = static_cast<index_t>(level.size());
  index_t nlevels = 0;
  for (const index_t l : level) nlevels = std::max(nlevels, l + 1);
  s.level_ptr.assign(static_cast<std::size_t>(nlevels) + 1, 0);
  for (const index_t l : level) ++s.level_ptr[l + 1];
  for (index_t l = 0; l < nlevels; ++l) s.level_ptr[l + 1] += s.level_ptr[l];
  s.items.resize(static_cast<std::size_t>(count));
  std::vector<index_t> next(s.level_ptr.begin(), s.level_ptr.end() - 1);
  for (index_t i = 0; i < count; ++i) s.items[next[level[i]]++] = i;
  return s;
}

}  // namespace

std::uint64_t level_schedule_builds() {
  return g_schedule_builds.load(std::memory_order_relaxed);
}

LevelSchedule level_schedule_columns(const CscMatrix& l) {
  const index_t n = l.cols();
  std::vector<index_t> level(static_cast<std::size_t>(n), 0);
  // Edge j -> i for every off-diagonal L(i,j); a forward sweep sees j
  // before i because i > j in a lower-triangular matrix.
  for (index_t j = 0; j < n; ++j)
    for (index_t p = l.col_begin(j) + 1; p < l.col_end(j); ++p) {
      const index_t i = l.rowind[p];
      level[i] = std::max(level[i], level[j] + 1);
    }
  return bucket_by_level(level);
}

LevelSchedule level_schedule_supernodes(const SupernodePartition& sn,
                                        std::span<const index_t> parent) {
  const std::vector<index_t> sparent = supernode_etree(sn, parent);
  // A supernode may also be updated by non-child descendants, but every
  // updating descendant is a descendant in the supernodal etree, so etree
  // levels give a safe schedule.
  std::vector<index_t> level(sparent.size(), 0);
  for (index_t s = 0; s < static_cast<index_t>(sparent.size()); ++s)
    if (sparent[s] != -1) level[sparent[s]] =
        std::max(level[sparent[s]], level[s] + 1);
  return bucket_by_level(level);
}

void parallel_trisolve(const CscMatrix& l, const LevelSchedule& schedule,
                       std::span<value_t> x) {
  const index_t* Li = l.rowind.data();
  const value_t* Lx = l.values.data();
  value_t* xp = x.data();
  // One parallel region for the whole solve; each level is a static
  // omp-for whose implicit barrier realizes the wavefront dependence.
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel
#endif
  for (index_t lev = 0; lev < schedule.levels(); ++lev) {
    const index_t lo = schedule.level_ptr[lev];
    const index_t hi = schedule.level_ptr[lev + 1];
#ifdef SYMPILER_HAS_OPENMP
#pragma omp for schedule(static)
#endif
    for (index_t t = lo; t < hi; ++t) {
      const index_t j = schedule.items[t];
      const index_t p0 = l.col_begin(j);
      const value_t xj = xp[j] / Lx[p0];
      xp[j] = xj;
      for (index_t p = p0 + 1; p < l.col_end(j); ++p) {
        // Two same-level columns can update the same later row; atomics
        // make the concurrent -= safe.
#ifdef SYMPILER_HAS_OPENMP
#pragma omp atomic
#endif
        xp[Li[p]] -= Lx[p] * xj;
      }
    }
  }
}

void parallel_cholesky(const core::CholeskySets& sets,
                       const LevelSchedule& schedule,
                       const CscMatrix& a_lower, std::span<value_t> panels) {
  const solvers::SupernodalLayout& layout = sets.layout;
  // Plan-sized scratch dimensions (pure layout reads); each OS thread
  // keeps one grow-only workspace across calls and plans, so a warm
  // factorization allocates nothing on any thread. The same thread_local
  // serves the serial scatter (master thread's instance) and every
  // worker inside the parallel region (their own instances).
  core::WorkspaceDims dims = core::cholesky_workspace_dims(layout);
  dims.rhs_block = 0;
  dims.need_dense = false;  // factorization uses map + update tiles only
  static thread_local core::Workspace ws;
  ws.ensure(dims);
  scatter_into_panels(layout, a_lower, panels, ws.map());
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel
#endif
  {
    ws.ensure(dims);
    const std::span<value_t> work_span = ws.update();
    const std::span<index_t> map_span = ws.map();
    value_t* const work_data = work_span.data();
    index_t* const map_data = map_span.data();
    for (index_t lev = 0; lev < schedule.levels(); ++lev) {
      const index_t lo = schedule.level_ptr[lev];
      const index_t hi = schedule.level_ptr[lev + 1];
#ifdef SYMPILER_HAS_OPENMP
#pragma omp for schedule(dynamic, 4)
#endif
      for (index_t t = lo; t < hi; ++t) {
        const index_t s = schedule.items[t];
        const index_t c1 = layout.sn.start[s];
        const index_t w = layout.width(s);
        const index_t m = layout.nrows(s);
        const index_t* rows = layout.srows.data() + layout.srow_ptr[s];
        value_t* panel = panels.data() + layout.panel_ptr[s];
        for (index_t r = 0; r < m; ++r) map_data[rows[r]] = r;
        for (index_t u = sets.updates.ptr[s]; u < sets.updates.ptr[s + 1];
             ++u) {
          const solvers::UpdateRef ref = sets.updates.refs[u];
          const index_t* drows = layout.srows.data() + layout.srow_ptr[ref.d];
          const index_t dm = layout.nrows(ref.d);
          const index_t dw = layout.width(ref.d);
          const value_t* dpanel = panels.data() + layout.panel_ptr[ref.d];
          const index_t mu = dm - ref.p1;
          const index_t nu = ref.p2 - ref.p1;
          std::fill(work_data, work_data + static_cast<std::int64_t>(mu) * nu,
                    0.0);
          blas::gemm_nt_minus(mu, nu, dw, dpanel + ref.p1, dm,
                              dpanel + ref.p1, dm, work_data, mu);
          for (index_t cj = 0; cj < nu; ++cj) {
            value_t* dst =
                panel + static_cast<std::int64_t>(drows[ref.p1 + cj] - c1) * m;
            const value_t* src = work_data + static_cast<std::int64_t>(cj) * mu;
            for (index_t r = cj; r < mu; ++r)
              dst[map_data[drows[ref.p1 + r]]] += src[r];
          }
        }
        blas::potrf_lower(w, panel, m);
        if (m > w)
          blas::trsm_right_lower_trans(m - w, w, panel, m, panel + w, m);
      }
    }
  }
}

void parallel_trisolve(const CscMatrix& l, const core::TriSolvePlan& plan,
                       std::span<value_t> x) {
  SYMPILER_CHECK(plan.path == core::ExecutionPath::ParallelTriSolve,
                 "parallel_trisolve: plan path is not ParallelTriSolve");
  parallel_trisolve(l, plan.schedule, x);
}

void parallel_cholesky(const core::CholeskyPlan& plan,
                       const CscMatrix& a_lower, std::span<value_t> panels) {
  SYMPILER_CHECK(plan.path == core::ExecutionPath::ParallelSupernodal,
                 "parallel_cholesky: plan path is not ParallelSupernodal");
  parallel_cholesky(plan.sets, plan.schedule, a_lower, panels);
}

}  // namespace sympiler::parallel
