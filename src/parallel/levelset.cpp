#include "parallel/levelset.h"

#include <algorithm>
#include <atomic>
#include <string>

#ifdef SYMPILER_HAS_OPENMP
#include <omp.h>
#endif

#include "blas/bundle.h"
#include "blas/kernels.h"
#include "core/execution_plan.h"
#include "core/workspace.h"
#include "solvers/supernodal.h"
#include "util/abort_guard.h"
#include "util/fault.h"

namespace sympiler::parallel {

namespace {

std::atomic<std::uint64_t> g_schedule_builds{0};

#ifdef SYMPILER_HAS_OPENMP
/// Levels narrower than this many items per team thread run serially
/// under `omp single` instead of an `omp for`: spreading a handful of
/// items across the team costs more in worksharing setup and cache-line
/// handoff than the items themselves, and deep schedules (banded factors)
/// are almost entirely such levels. The `single`'s implicit barrier
/// publishes the level exactly like the for's would, so determinism and
/// the memory model are unchanged.
constexpr index_t kSerialLevelFactor = 4;

index_t serial_level_cutoff() {
  return kSerialLevelFactor * static_cast<index_t>(omp_get_num_threads());
}
#endif

/// Run one level [lo, hi) of a level-set sweep inside an active parallel
/// region: tiny levels run serially under `single`, wide levels under a
/// static `omp for`. Must be called by every thread of the team (both
/// branches are worksharing constructs). The sequential build compiles to
/// a plain loop.
template <typename Body>
inline void run_level(index_t lo, index_t hi, Body&& body) {
#ifdef SYMPILER_HAS_OPENMP
  if (hi - lo < serial_level_cutoff()) {
#pragma omp single
    for (index_t t = lo; t < hi; ++t) body(t);
  } else {
#pragma omp for schedule(static)
    for (index_t t = lo; t < hi; ++t) body(t);
  }
#else
  for (index_t t = lo; t < hi; ++t) body(t);
#endif
}

/// Same, but wide levels use dynamic scheduling (chunk 4) — the supernodal
/// factorization's levels mix panel sizes badly enough that static
/// assignment strands threads behind the big panels.
template <typename Body>
inline void run_level_dynamic(index_t lo, index_t hi, Body&& body) {
#ifdef SYMPILER_HAS_OPENMP
  if (hi - lo < serial_level_cutoff()) {
#pragma omp single
    for (index_t t = lo; t < hi; ++t) body(t);
  } else {
#pragma omp for schedule(dynamic, 4)
    for (index_t t = lo; t < hi; ++t) body(t);
  }
#else
  for (index_t t = lo; t < hi; ++t) body(t);
#endif
}

LevelSchedule bucket_by_level(std::span<const index_t> level) {
  g_schedule_builds.fetch_add(1, std::memory_order_relaxed);
  LevelSchedule s;
  const auto count = static_cast<index_t>(level.size());
  index_t nlevels = 0;
  for (const index_t l : level) nlevels = std::max(nlevels, l + 1);
  s.level_ptr.assign(static_cast<std::size_t>(nlevels) + 1, 0);
  for (const index_t l : level) ++s.level_ptr[l + 1];
  for (index_t l = 0; l < nlevels; ++l) s.level_ptr[l + 1] += s.level_ptr[l];
  s.items.resize(static_cast<std::size_t>(count));
  std::vector<index_t> next(s.level_ptr.begin(), s.level_ptr.end() - 1);
  for (index_t i = 0; i < count; ++i) s.items[next[level[i]]++] = i;
  return s;
}

}  // namespace

std::uint64_t level_schedule_builds() {
  return g_schedule_builds.load(std::memory_order_relaxed);
}

LevelSchedule level_schedule_columns(const CscMatrix& l) {
  const index_t n = l.cols();
  std::vector<index_t> level(static_cast<std::size_t>(n), 0);
  // Edge j -> i for every off-diagonal L(i,j); a forward sweep sees j
  // before i because i > j in a lower-triangular matrix.
  for (index_t j = 0; j < n; ++j)
    for (index_t p = l.col_begin(j) + 1; p < l.col_end(j); ++p) {
      const index_t i = l.rowind[p];
      level[i] = std::max(level[i], level[j] + 1);
    }
  return bucket_by_level(level);
}

LevelSchedule level_schedule_supernodes(const SupernodePartition& sn,
                                        std::span<const index_t> parent) {
  const std::vector<index_t> sparent = supernode_etree(sn, parent);
  // A supernode may also be updated by non-child descendants, but every
  // updating descendant is a descendant in the supernodal etree, so etree
  // levels give a safe schedule.
  std::vector<index_t> level(sparent.size(), 0);
  for (index_t s = 0; s < static_cast<index_t>(sparent.size()); ++s)
    if (sparent[s] != -1) level[sparent[s]] =
        std::max(level[sparent[s]], level[s] + 1);
  return bucket_by_level(level);
}

UpdateSlotMap update_slots_columns(const CscMatrix& l,
                                   std::span<const index_t> order) {
  const index_t n = l.cols();
  SYMPILER_CHECK(order.empty() || static_cast<index_t>(order.size()) == n,
                 "update_slots_columns: order must cover every column");
  UpdateSlotMap m;
  // Compact layout: diagonal positions can never produce a cross-column
  // update, so they are squeezed out instead of holding -1 — position p of
  // column j maps to p - j - 1 (see UpdateSlotMap::slot). Every compact
  // entry is written below, so no fill value is needed.
  m.slot.resize(static_cast<std::size_t>(l.nnz() - n));
  m.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j)
    for (index_t p = l.col_begin(j) + 1; p < l.col_end(j); ++p)
      ++m.row_ptr[l.rowind[p] + 1];
  for (index_t i = 0; i < n; ++i) m.row_ptr[i + 1] += m.row_ptr[i];
  // Scanning columns in the serial iteration order fills each row's slot
  // range in exactly the order the sequential solve subtracts its updates
  // — the consumer's fold replays it verbatim.
  std::vector<index_t> next(m.row_ptr.begin(), m.row_ptr.end() - 1);
  for (index_t k = 0; k < n; ++k) {
    const index_t j = order.empty() ? k : order[k];
    for (index_t p = l.col_begin(j) + 1; p < l.col_end(j); ++p)
      m.slot[p - j - 1] = next[l.rowind[p]]++;
  }
  return m;
}

UpdateSlotMap update_slots_supernodes(const solvers::SupernodalLayout& layout) {
  const index_t n = layout.n;
  UpdateSlotMap m;
  // Compact layout: a supernode's own diagonal-block rows never produce a
  // cross-supernode update, so they are squeezed out — srows position
  // srow_ptr[s] + u (u >= width(s)) maps to srow_ptr[s] + u - sn.start[s]
  // - width(s), valid because the block rows of supernodes 0..s sum to
  // exactly sn.start[s] + width(s). Every compact entry is written below.
  m.slot.resize(layout.srows.size() - static_cast<std::size_t>(n));
  m.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t s = 0; s < layout.nsuper(); ++s) {
    const index_t w = layout.width(s);
    for (index_t t = layout.srow_ptr[s] + w; t < layout.srow_ptr[s + 1]; ++t)
      ++m.row_ptr[layout.srows[t] + 1];
  }
  for (index_t i = 0; i < n; ++i) m.row_ptr[i + 1] += m.row_ptr[i];
  std::vector<index_t> next(m.row_ptr.begin(), m.row_ptr.end() - 1);
  for (index_t s = 0; s < layout.nsuper(); ++s) {
    const index_t w = layout.width(s);
    const index_t base = layout.sn.start[s] + w;
    for (index_t t = layout.srow_ptr[s] + w; t < layout.srow_ptr[s + 1]; ++t)
      m.slot[t - base] = next[layout.srows[t]]++;
  }
  return m;
}

namespace {

/// Injected parallel-path pivot failure (fault site pivot): throws on the
/// column a trigger selects, exercising the containment + serial-fallback
/// machinery of the plan-driven overloads.
inline void maybe_inject_pivot_fault(index_t j, value_t diag) {
  if (SYMPILER_FAULT_POINT(util::FaultSite::kPivot))
    throw numerical_error(
        "trisolve: injected pivot failure (fault site pivot, parallel)", j,
        diag);
}

void trisolve_levels(const CscMatrix& l, const LevelSchedule& schedule,
                     const UpdateSlotMap& umap, std::span<value_t> x,
                     std::span<value_t> terms, [[maybe_unused]] bool serial) {
  const value_t* Lx = l.values.data();
  const index_t* slot = umap.slot.data();
  const index_t* rptr = umap.row_ptr.data();
  value_t* xp = x.data();
  value_t* tp = terms.data();
  util::AbortGuard guard;
  // One parallel region for the whole solve; each level is a worksharing
  // loop whose implicit barrier realizes the wavefront dependence (and
  // publishes the level's slot writes to every later level). Tiny levels
  // skip the omp-for and run serially in-place (run_level).
  //
  // Worksharing uniformity: the level loop must NOT branch on
  // guard.failed() — a thread can observe the flag (set by a teammate
  // already inside level N's worksharing body) in the window between
  // level N-1's barrier and its own entry into level N, exit the loop,
  // and leave the team split across different barriers: a guaranteed
  // deadlock. Instead every thread always traverses the identical
  // construct sequence; after a failure guard.run turns the remaining
  // bodies into no-ops, so cancellation costs a sweep of empty barriers
  // (fine — failure is the rare path).
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel if (!serial)
#endif
  {
    const auto solve_column = [&](index_t t) {
      const index_t j = schedule.items[t];
      const index_t p0 = l.col_begin(j);
      maybe_inject_pivot_fault(j, Lx[p0]);
      // Fold the privatized incoming updates in ascending-column order —
      // the exact subtraction sequence of the serial solve.
      value_t xj = xp[j];
      for (index_t q = rptr[j]; q < rptr[j + 1]; ++q) xj -= tp[q];
      xj /= Lx[p0];
      xp[j] = xj;
      // Scatter this column's updates into its plan-assigned private
      // slots (compact off-diagonal indexing: position p maps to
      // p - j - 1); no two columns share a slot, so no atomics are needed.
      for (index_t p = p0 + 1; p < l.col_end(j); ++p)
        tp[slot[p - j - 1]] = Lx[p] * xj;
    };
    for (index_t lev = 0; lev < schedule.levels(); ++lev)
      run_level(schedule.level_ptr[lev], schedule.level_ptr[lev + 1],
                [&](index_t t) { guard.run([&] { solve_column(t); }); });
  }
  guard.rethrow_if_failed();
}

void trisolve_levels(const CscMatrix& l, const AggregateSchedule& agg,
                     const UpdateSlotMap& umap, std::span<value_t> x,
                     std::span<value_t> terms, [[maybe_unused]] bool serial) {
  const value_t* Lx = l.values.data();
  const index_t* colptr = l.colptr.data();
  const index_t* slot = umap.slot.data();
  const index_t* rptr = umap.row_ptr.data();
  value_t* xp = x.data();
  value_t* tp = terms.data();
  util::AbortGuard guard;
  // Same region/barrier/containment structure as the flat interpreter,
  // but the worksharing unit is a task: a fused chain runs its members in
  // flat-level order on one thread (the chain's internal barriers are
  // gone), and a bundle solves its lanes lock-step in the ISA-dispatched
  // kernel. Slot fold order is untouched, so results stay bit-identical
  // to the serial solve at any thread count.
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel if (!serial)
#endif
  {
    const auto run_task = [&](index_t t) {
      const index_t k0 = agg.task_ptr[t];
      const index_t k1 = agg.task_ptr[t + 1];
      const index_t j0 = agg.items[k0];
      maybe_inject_pivot_fault(j0, Lx[colptr[j0]]);
      if (agg.bundle[t]) {
        // All lanes share one (incoming-term, update) shape — the
        // coarsener grouped by it — so the counts of the first lane
        // describe every lane.
        blas::trisolve_bundle(k1 - k0, rptr[j0 + 1] - rptr[j0],
                              colptr[j0 + 1] - colptr[j0] - 1,
                              agg.items.data() + k0, colptr, Lx, slot, rptr,
                              xp, tp);
        return;
      }
      for (index_t k = k0; k < k1; ++k) {
        const index_t j = agg.items[k];
        value_t xj = xp[j];
        for (index_t q = rptr[j]; q < rptr[j + 1]; ++q) xj -= tp[q];
        const index_t p0 = colptr[j];
        xj /= Lx[p0];
        xp[j] = xj;
        for (index_t p = p0 + 1; p < colptr[j + 1]; ++p)
          tp[slot[p - j - 1]] = Lx[p] * xj;
      }
    };
    for (index_t lev = 0; lev < agg.levels(); ++lev)
      run_level(agg.level_ptr[lev], agg.level_ptr[lev + 1],
                [&](index_t t) { guard.run([&] { run_task(t); }); });
  }
  guard.rethrow_if_failed();
}

}  // namespace

void parallel_trisolve(const CscMatrix& l, const LevelSchedule& schedule,
                       const UpdateSlotMap& umap, std::span<value_t> x,
                       std::span<value_t> terms) {
  trisolve_levels(l, schedule, umap, x, terms, /*serial=*/false);
}

void parallel_trisolve(const CscMatrix& l, const AggregateSchedule& agg,
                       const UpdateSlotMap& umap, std::span<value_t> x,
                       std::span<value_t> terms) {
  trisolve_levels(l, agg, umap, x, terms, /*serial=*/false);
}

namespace {

void trisolve_multi_levels(const CscMatrix& l, const LevelSchedule& schedule,
                           const UpdateSlotMap& umap, value_t* xp,
                           index_t nrhs, index_t ldp, value_t* terms,
                           [[maybe_unused]] bool serial) {
  const value_t* Lx = l.values.data();
  const index_t* slot = umap.slot.data();
  const index_t* rptr = umap.row_ptr.data();
  util::AbortGuard guard;
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel if (!serial)
#endif
  {
    const auto solve_column = [&](index_t t) {
      const index_t j = schedule.items[t];
      const index_t p0 = l.col_begin(j);
      maybe_inject_pivot_fault(j, Lx[p0]);
      value_t* xj = xp + static_cast<std::int64_t>(j) * ldp;
      for (index_t q = rptr[j]; q < rptr[j + 1]; ++q) {
        const value_t* tq = terms + static_cast<std::int64_t>(q) * ldp;
        for (index_t r = 0; r < nrhs; ++r) xj[r] -= tq[r];
      }
      const value_t piv = Lx[p0];
      for (index_t r = 0; r < nrhs; ++r) xj[r] /= piv;
      for (index_t p = p0 + 1; p < l.col_end(j); ++p) {
        const value_t lv = Lx[p];
        value_t* tq = terms + static_cast<std::int64_t>(slot[p - j - 1]) * ldp;
        for (index_t r = 0; r < nrhs; ++r) tq[r] = lv * xj[r];
      }
    };
    for (index_t lev = 0; lev < schedule.levels(); ++lev)
      run_level(schedule.level_ptr[lev], schedule.level_ptr[lev + 1],
                [&](index_t t) { guard.run([&] { solve_column(t); }); });
  }
  guard.rethrow_if_failed();
}

void trisolve_multi_levels(const CscMatrix& l, const AggregateSchedule& agg,
                           const UpdateSlotMap& umap, value_t* xp,
                           index_t nrhs, index_t ldp, value_t* terms,
                           [[maybe_unused]] bool serial) {
  const value_t* Lx = l.values.data();
  const index_t* colptr = l.colptr.data();
  const index_t* slot = umap.slot.data();
  const index_t* rptr = umap.row_ptr.data();
  util::AbortGuard guard;
  // Chain fusion still pays here (fewer barriers), but bundles degenerate
  // to sequential lanes: the RHS loop is already the vector direction, and
  // serial lanes are bit-identical to lock-step by the bundle contract.
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel if (!serial)
#endif
  {
    const auto run_task = [&](index_t t) {
      const index_t jf = agg.items[agg.task_ptr[t]];
      maybe_inject_pivot_fault(jf, Lx[colptr[jf]]);
      for (index_t k = agg.task_ptr[t]; k < agg.task_ptr[t + 1]; ++k) {
        const index_t j = agg.items[k];
        value_t* xj = xp + static_cast<std::int64_t>(j) * ldp;
        for (index_t q = rptr[j]; q < rptr[j + 1]; ++q) {
          const value_t* tq = terms + static_cast<std::int64_t>(q) * ldp;
          for (index_t r = 0; r < nrhs; ++r) xj[r] -= tq[r];
        }
        const index_t p0 = colptr[j];
        const value_t piv = Lx[p0];
        for (index_t r = 0; r < nrhs; ++r) xj[r] /= piv;
        for (index_t p = p0 + 1; p < colptr[j + 1]; ++p) {
          const value_t lv = Lx[p];
          value_t* tq =
              terms + static_cast<std::int64_t>(slot[p - j - 1]) * ldp;
          for (index_t r = 0; r < nrhs; ++r) tq[r] = lv * xj[r];
        }
      }
    };
    for (index_t lev = 0; lev < agg.levels(); ++lev)
      run_level(agg.level_ptr[lev], agg.level_ptr[lev + 1],
                [&](index_t t) { guard.run([&] { run_task(t); }); });
  }
  guard.rethrow_if_failed();
}

}  // namespace

void parallel_trisolve_multi(const CscMatrix& l, const LevelSchedule& schedule,
                             const UpdateSlotMap& umap, value_t* xp,
                             index_t nrhs, index_t ldp, value_t* terms) {
  trisolve_multi_levels(l, schedule, umap, xp, nrhs, ldp, terms,
                        /*serial=*/false);
}

void parallel_trisolve_multi(const CscMatrix& l, const AggregateSchedule& agg,
                             const UpdateSlotMap& umap, value_t* xp,
                             index_t nrhs, index_t ldp, value_t* terms) {
  trisolve_multi_levels(l, agg, umap, xp, nrhs, ldp, terms, /*serial=*/false);
}

bool parallel_trisolve(const CscMatrix& l, const core::TriSolvePlan& plan,
                       std::span<value_t> x, core::Workspace& ws,
                       Status* fallback_error) {
  SYMPILER_CHECK(plan.path == core::ExecutionPath::ParallelTriSolve,
                 "parallel_trisolve: plan path is not ParallelTriSolve");
  core::WorkspaceDims dims = plan.workspace;
  dims.rhs_block = 1;  // one packed column: the pre-sweep snapshot of x
  ws.ensure(dims);
  // The sweep solves in place, so the serial fallback needs the input
  // back: snapshot it into the (otherwise idle) packed-RHS column.
  value_t* snap = ws.rhs_block();
  std::copy(x.begin(), x.end(), snap);
  const auto sweep = [&](bool serial) {
    if (!plan.agg.empty())
      trisolve_levels(l, plan.agg, plan.update_map, x, ws.terms(), serial);
    else
      trisolve_levels(l, plan.schedule, plan.update_map, x, ws.terms(),
                      serial);
  };
  try {
    sweep(/*serial=*/false);
    return false;
  } catch (const std::exception& e) {
    // Infrastructure fault mid-sweep: restore the input and re-run the
    // same schedule serially — bit-identical by the determinism contract.
    if (fallback_error != nullptr) *fallback_error = status_of(e);
    std::copy(snap, snap + x.size(), x.begin());
    sweep(/*serial=*/true);
    return true;
  }
}

bool parallel_trisolve_batch(const CscMatrix& l, const core::TriSolvePlan& plan,
                             std::span<value_t> xs, index_t nrhs,
                             core::Workspace& ws, Status* fallback_error) {
  SYMPILER_CHECK(plan.path == core::ExecutionPath::ParallelTriSolve,
                 "parallel_trisolve_batch: plan path is not ParallelTriSolve");
  if (nrhs <= 0) return false;
  const index_t n = l.cols();
  // Blocks sweep the level schedule sequentially (parallelism lives inside
  // each level), so no lane narrowing applies.
  const index_t bw =
      core::rhs_block_width(plan.workspace.rhs_block, nrhs, /*lanes=*/1);
  core::WorkspaceDims dims = plan.workspace;
  dims.rhs_block = std::min(bw, nrhs);
  ws.ensure(dims);
  value_t* xp = ws.rhs_block();
  value_t* terms = ws.terms().data();
  bool degraded = false;
  for (index_t r0 = 0; r0 < nrhs; r0 += bw) {
    const index_t nb = std::min(bw, nrhs - r0);
    value_t* x0 = xs.data() + static_cast<std::size_t>(r0) * n;
    blas::pack_rhs(n, nb, x0, n, xp, nb);
    const auto sweep = [&](bool serial) {
      if (!plan.agg.empty())
        trisolve_multi_levels(l, plan.agg, plan.update_map, xp, nb, nb, terms,
                              serial);
      else
        trisolve_multi_levels(l, plan.schedule, plan.update_map, xp, nb, nb,
                              terms, serial);
    };
    try {
      sweep(/*serial=*/false);
    } catch (const std::exception& e) {
      // The block's input columns are untouched until unpack — repack
      // them and re-sweep serially (bit-identical).
      if (!degraded && fallback_error != nullptr)
        *fallback_error = status_of(e);
      degraded = true;
      blas::pack_rhs(n, nb, x0, n, xp, nb);
      sweep(/*serial=*/true);
    }
    blas::unpack_rhs(n, nb, xp, nb, x0, n);
  }
  return degraded;
}

namespace {

/// Shared body of the flat and aggregate parallel Cholesky sweeps: one of
/// `flat` / `agg` is non-null and supplies the level structure. With an
/// aggregate schedule the worksharing unit is a fused chain of supernodes
/// executed in flat-level order on one thread (update sources of a chain
/// member are either earlier members or earlier aggregate levels).
void cholesky_levels(const core::CholeskySets& sets, const LevelSchedule* flat,
                     const AggregateSchedule* agg, const CscMatrix& a_lower,
                     std::span<value_t> panels,
                     [[maybe_unused]] bool serial) {
  const solvers::SupernodalLayout& layout = sets.layout;
  // Plan-sized scratch dimensions (pure layout reads); each OS thread
  // keeps one grow-only workspace across calls and plans, so a warm
  // factorization allocates nothing on any thread. The same thread_local
  // serves the serial scatter (master thread's instance) and every
  // worker inside the parallel region (their own instances).
  core::WorkspaceDims dims = core::cholesky_workspace_dims(layout);
  dims.rhs_block = 0;
  dims.need_dense = false;  // factorization uses map + update tiles only
  static thread_local core::Workspace ws;
  ws.ensure(dims);
  scatter_into_panels(layout, a_lower, panels, ws.map());
  util::AbortGuard guard;
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel if (!serial)
#endif
  {
    // Per-worker workspace growth can fail (allocation); contain it and
    // let the barrier below publish the flag before any level body runs
    // (a failed worker's spans stay empty but are never dereferenced —
    // guard.run skips every body once the flag is set).
    guard.run([&] { ws.ensure(dims); });
#ifdef SYMPILER_HAS_OPENMP
#pragma omp barrier
#endif
    const std::span<value_t> work_span = ws.update();
    const std::span<index_t> map_span = ws.map();
    value_t* const work_data = work_span.data();
    index_t* const map_data = map_span.data();
    const auto factor_supernode = [&](index_t s) {
      const index_t c1 = layout.sn.start[s];
      const index_t w = layout.width(s);
      const index_t m = layout.nrows(s);
      const index_t* rows = layout.srows.data() + layout.srow_ptr[s];
      value_t* panel = panels.data() + layout.panel_ptr[s];
      for (index_t r = 0; r < m; ++r) map_data[rows[r]] = r;
      for (index_t u = sets.updates.ptr[s]; u < sets.updates.ptr[s + 1]; ++u) {
        const solvers::UpdateRef ref = sets.updates.refs[u];
        const index_t* drows = layout.srows.data() + layout.srow_ptr[ref.d];
        const index_t dm = layout.nrows(ref.d);
        const index_t dw = layout.width(ref.d);
        const value_t* dpanel = panels.data() + layout.panel_ptr[ref.d];
        const index_t mu = dm - ref.p1;
        const index_t nu = ref.p2 - ref.p1;
        std::fill(work_data, work_data + static_cast<std::int64_t>(mu) * nu,
                  0.0);
        blas::gemm_nt_minus(mu, nu, dw, dpanel + ref.p1, dm, dpanel + ref.p1,
                            dm, work_data, mu);
        for (index_t cj = 0; cj < nu; ++cj) {
          value_t* dst =
              panel + static_cast<std::int64_t>(drows[ref.p1 + cj] - c1) * m;
          const value_t* src = work_data + static_cast<std::int64_t>(cj) * mu;
          for (index_t r = cj; r < mu; ++r)
            dst[map_data[drows[ref.p1 + r]]] += src[r];
        }
      }
      if (SYMPILER_FAULT_POINT(util::FaultSite::kPivot))
        throw numerical_error(
            "cholesky: injected pivot failure (fault site pivot, parallel)",
            c1, panel[0]);
      try {
        blas::potrf_lower(w, panel, m);
      } catch (const numerical_error& e) {
        // The dense kernel knows only the local column; re-anchor at the
        // supernode's global first column (matches the serial executor).
        throw numerical_error(std::string(e.what()) +
                                  " (supernode starting at column " +
                                  std::to_string(c1) + ")",
                              c1, panel[0]);
      }
      if (m > w)
        blas::trsm_right_lower_trans(m - w, w, panel, m, panel + w, m);
    };
    if (agg != nullptr) {
      for (index_t lev = 0; lev < agg->levels(); ++lev)
        run_level_dynamic(agg->level_ptr[lev], agg->level_ptr[lev + 1],
                          [&](index_t t) {
                            guard.run([&] {
                              for (index_t k = agg->task_ptr[t];
                                   k < agg->task_ptr[t + 1]; ++k)
                                factor_supernode(agg->items[k]);
                            });
                          });
    } else {
      for (index_t lev = 0; lev < flat->levels(); ++lev)
        run_level_dynamic(
            flat->level_ptr[lev], flat->level_ptr[lev + 1], [&](index_t t) {
              guard.run([&] { factor_supernode(flat->items[t]); });
            });
    }
  }
  guard.rethrow_if_failed();
}

}  // namespace

void parallel_cholesky(const core::CholeskySets& sets,
                       const LevelSchedule& schedule,
                       const CscMatrix& a_lower, std::span<value_t> panels) {
  cholesky_levels(sets, &schedule, nullptr, a_lower, panels,
                  /*serial=*/false);
}

void parallel_cholesky(const core::CholeskySets& sets,
                       const AggregateSchedule& agg, const CscMatrix& a_lower,
                       std::span<value_t> panels) {
  cholesky_levels(sets, nullptr, &agg, a_lower, panels, /*serial=*/false);
}

bool parallel_cholesky(const core::CholeskyPlan& plan,
                       const CscMatrix& a_lower, std::span<value_t> panels,
                       Status* fallback_error) {
  SYMPILER_CHECK(plan.path == core::ExecutionPath::ParallelSupernodal,
                 "parallel_cholesky: plan path is not ParallelSupernodal");
  const LevelSchedule* flat = plan.agg.empty() ? &plan.schedule : nullptr;
  const AggregateSchedule* agg = plan.agg.empty() ? nullptr : &plan.agg;
  try {
    cholesky_levels(plan.sets, flat, agg, a_lower, panels, /*serial=*/false);
    return false;
  } catch (const numerical_error&) {
    // A pivot failure is a property of the data: the serial re-run would
    // hit the same pivot, so surface it — the facade's shift-retry ladder
    // owns numeric recovery.
    throw;
  } catch (const std::exception& e) {
    // Infrastructure fault (workspace growth, injected fault): re-scatter
    // A and re-run the same schedule serially — bit-identical by the
    // determinism contract.
    if (fallback_error != nullptr) *fallback_error = status_of(e);
    cholesky_levels(plan.sets, flat, agg, a_lower, panels, /*serial=*/true);
    return true;
  }
}

namespace {

/// One grow-only per-thread tail workspace shared by the forward and
/// backward sweeps (they never overlap, and sharing halves the pinned
/// per-thread scratch).
core::Workspace& panel_tls_workspace() {
  static thread_local core::Workspace ws;
  return ws;
}

/// Per-thread tail scratch dims of the level sweeps. `max_tail` comes
/// from the plan (plan.workspace.max_tail) — no layout scan on the warm
/// path.
core::WorkspaceDims panel_tail_dims(index_t max_tail, index_t ldp) {
  core::WorkspaceDims dims;
  dims.max_tail = max_tail;
  dims.rhs_block = ldp;
  dims.need_map = false;
  dims.need_dense = false;
  return dims;
}

/// Forward level sweep over a packed RHS block: supernode s folds its own
/// rows' incoming terms (ascending contributing supernode — the serial
/// order), solves its diagonal block, and writes its below-diagonal tail
/// contributions into its private slots instead of racing on x.
void panel_forward_levels(const solvers::SupernodalLayout& layout,
                          const LevelSchedule& schedule,
                          const AggregateSchedule* agg,
                          const UpdateSlotMap& umap,
                          std::span<const value_t> panels, value_t* xp,
                          index_t nrhs, index_t ldp, value_t* terms,
                          index_t max_tail, [[maybe_unused]] bool serial) {
  const index_t* slot = umap.slot.data();
  const index_t* rptr = umap.row_ptr.data();
  const core::WorkspaceDims tail_dims = panel_tail_dims(max_tail, ldp);
  util::AbortGuard guard;
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel if (!serial)
#endif
  {
    core::Workspace& tls = panel_tls_workspace();
    guard.run([&] { tls.ensure(tail_dims); });
#ifdef SYMPILER_HAS_OPENMP
#pragma omp barrier
#endif
    value_t* tail = tls.tail().data();
    const auto solve_supernode = [&](index_t s) {
      if (SYMPILER_FAULT_POINT(util::FaultSite::kPivot))
        throw numerical_error(
            "panel solve: injected pivot failure (fault site pivot, "
            "parallel)",
            layout.sn.start[s], panels[layout.panel_ptr[s]]);
      const index_t c1 = layout.sn.start[s];
      const index_t w = layout.width(s);
      const index_t m = layout.nrows(s);
      const value_t* panel = panels.data() + layout.panel_ptr[s];
      for (index_t j = c1; j < c1 + w; ++j) {
        value_t* xj = xp + static_cast<std::int64_t>(j) * ldp;
        for (index_t q = rptr[j]; q < rptr[j + 1]; ++q) {
          const value_t* tq = terms + static_cast<std::int64_t>(q) * ldp;
          for (index_t r = 0; r < nrhs; ++r) xj[r] += tq[r];
        }
      }
      blas::trsm_lower_multi(w, nrhs, panel, m,
                             xp + static_cast<std::int64_t>(c1) * ldp, ldp);
      if (m > w) {
        std::fill(tail, tail + static_cast<std::int64_t>(m - w) * ldp, 0.0);
        blas::gemm_minus_multi(m - w, w, nrhs, panel + w, m,
                               xp + static_cast<std::int64_t>(c1) * ldp, ldp,
                               tail, ldp);
        // Compact below-diagonal slot indexing: srows position
        // srow_ptr[s] + u maps to srow_ptr[s] + u - c1 - w.
        const index_t sbase = layout.srow_ptr[s] - c1 - w;
        for (index_t u = w; u < m; ++u) {
          const value_t* src = tail + static_cast<std::int64_t>(u - w) * ldp;
          value_t* dst =
              terms + static_cast<std::int64_t>(slot[sbase + u]) * ldp;
          for (index_t r = 0; r < nrhs; ++r) dst[r] = src[r];
        }
      }
    };
    if (agg != nullptr) {
      for (index_t lev = 0; lev < agg->levels(); ++lev)
        run_level(agg->level_ptr[lev], agg->level_ptr[lev + 1],
                  [&](index_t t) {
                    guard.run([&] {
                      for (index_t k = agg->task_ptr[t];
                           k < agg->task_ptr[t + 1]; ++k)
                        solve_supernode(agg->items[k]);
                    });
                  });
    } else {
      for (index_t lev = 0; lev < schedule.levels(); ++lev)
        run_level(
            schedule.level_ptr[lev], schedule.level_ptr[lev + 1],
            [&](index_t t) {
              guard.run([&] { solve_supernode(schedule.items[t]); });
            });
    }
  }
  guard.rethrow_if_failed();
}

/// Backward sweep over reversed levels. No privatization needed: each
/// supernode writes only its own block rows and reads tail rows owned by
/// ancestors, which live in strictly later levels and are already final.
void panel_backward_levels(const solvers::SupernodalLayout& layout,
                           const LevelSchedule& schedule,
                           const AggregateSchedule* agg,
                           std::span<const value_t> panels, value_t* xp,
                           index_t nrhs, index_t ldp, index_t max_tail,
                           [[maybe_unused]] bool serial) {
  const core::WorkspaceDims tail_dims = panel_tail_dims(max_tail, ldp);
  util::AbortGuard guard;
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel if (!serial)
#endif
  {
    core::Workspace& tls = panel_tls_workspace();
    guard.run([&] { tls.ensure(tail_dims); });
#ifdef SYMPILER_HAS_OPENMP
#pragma omp barrier
#endif
    value_t* tail = tls.tail().data();
    const auto solve_supernode = [&](index_t s) {
      const index_t c1 = layout.sn.start[s];
      const index_t w = layout.width(s);
      const index_t m = layout.nrows(s);
      const index_t* rows = layout.srows.data() + layout.srow_ptr[s];
      const value_t* panel = panels.data() + layout.panel_ptr[s];
      if (m > w) {
        for (index_t u = w; u < m; ++u) {
          const value_t* src = xp + static_cast<std::int64_t>(rows[u]) * ldp;
          value_t* dst = tail + static_cast<std::int64_t>(u - w) * ldp;
          for (index_t r = 0; r < nrhs; ++r) dst[r] = src[r];
        }
        blas::gemm_trans_minus_multi(
            m - w, w, nrhs, panel + w, m, tail, ldp,
            xp + static_cast<std::int64_t>(c1) * ldp, ldp);
      }
      blas::trsm_lower_transpose_multi(
          w, nrhs, panel, m, xp + static_cast<std::int64_t>(c1) * ldp, ldp);
    };
    if (agg != nullptr) {
      // Backward validity needs both reversals: levels in reverse order,
      // and items inside each chain in reverse order (a chain member's
      // forward-dependent is either a later member of the same chain or
      // lives at a strictly later aggregate level).
      for (index_t lev = agg->levels() - 1; lev >= 0; --lev)
        run_level(agg->level_ptr[lev], agg->level_ptr[lev + 1],
                  [&](index_t t) {
                    guard.run([&] {
                      for (index_t k = agg->task_ptr[t + 1] - 1;
                           k >= agg->task_ptr[t]; --k)
                        solve_supernode(agg->items[k]);
                    });
                  });
    } else {
      for (index_t lev = schedule.levels() - 1; lev >= 0; --lev)
        run_level(
            schedule.level_ptr[lev], schedule.level_ptr[lev + 1],
            [&](index_t t) {
              guard.run([&] { solve_supernode(schedule.items[t]); });
            });
    }
  }
  guard.rethrow_if_failed();
}

}  // namespace

bool parallel_panel_solve_batch(const core::CholeskyPlan& plan,
                                std::span<const value_t> panels,
                                std::span<value_t> bx, index_t nrhs,
                                core::Workspace& ws, Status* fallback_error) {
  SYMPILER_CHECK(plan.path == core::ExecutionPath::ParallelSupernodal,
                 "parallel_panel_solve_batch: plan path is not "
                 "ParallelSupernodal");
  if (nrhs <= 0) return false;
  const solvers::SupernodalLayout& layout = plan.sets.layout;
  const index_t n = layout.n;
  const index_t bw =
      core::rhs_block_width(plan.workspace.rhs_block, nrhs, /*lanes=*/1);
  // The shared workspace carries only the packed block + terms; the
  // per-thread tail scratch lives in the sweeps' thread_local workspaces.
  core::WorkspaceDims dims = plan.workspace;
  dims.rhs_block = std::min(bw, nrhs);
  dims.max_panel_rows = 0;
  dims.max_panel_width = 0;
  dims.max_tail = 0;
  dims.need_map = false;
  dims.need_dense = false;
  try {
    ws.ensure(dims);
  } catch (const std::exception& e) {
    // No packed block, no level sweep — run the whole batch through the
    // sequential blocked driver instead (bit-identical per column, with
    // per-thread workspaces of its own). bx is untouched at this point.
    if (fallback_error != nullptr) *fallback_error = status_of(e);
    core::blocked_panel_solve_batch(layout, panels, plan.workspace, bx, nrhs);
    return true;
  }
  value_t* xp = ws.rhs_block();
  value_t* terms = ws.terms().data();
  bool degraded = false;
  const AggregateSchedule* agg = plan.agg.empty() ? nullptr : &plan.agg;
  for (index_t r0 = 0; r0 < nrhs; r0 += bw) {
    const index_t nb = std::min(bw, nrhs - r0);
    value_t* x0 = bx.data() + static_cast<std::size_t>(r0) * n;
    blas::pack_rhs(n, nb, x0, n, xp, nb);
    const auto sweep = [&](bool serial) {
      panel_forward_levels(layout, plan.schedule, agg, plan.solve_update_map,
                           panels, xp, nb, nb, terms, plan.workspace.max_tail,
                           serial);
      panel_backward_levels(layout, plan.schedule, agg, panels, xp, nb, nb,
                            plan.workspace.max_tail, serial);
    };
    try {
      sweep(/*serial=*/false);
    } catch (const std::exception& e) {
      // The block's input columns are untouched until unpack — repack
      // them and re-sweep serially (bit-identical).
      if (!degraded && fallback_error != nullptr)
        *fallback_error = status_of(e);
      degraded = true;
      blas::pack_rhs(n, nb, x0, n, xp, nb);
      sweep(/*serial=*/true);
    }
    blas::unpack_rhs(n, nb, xp, nb, x0, n);
  }
  return degraded;
}

}  // namespace sympiler::parallel
