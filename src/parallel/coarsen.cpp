// Schedule coarsening: rewrite a flat level schedule into the aggregate
// chain/bundle schedule (parallel/schedule.h) by mining the actual
// dependence DAG, in the spirit of dependency-driven trace analysis
// (Cetinic et al., PAPERS.md).
//
// Chain rule. A run is a sequence of items, one per consecutive flat
// level. Item i at flat level l extends the run R = [m_s .. m_{l-1}]
// (started at flat level s) iff every dependence of i is either a member
// of R or lives at a flat level < s. Placing R at aggregate level s keeps
// the barrier-per-level execution model valid:
//   - a dependence j of member i that is not in R has lev(j) < s, so j's
//     own run started at s_j <= lev(j) < s — strictly earlier aggregate
//     level;
//   - consequently two tasks at the same aggregate level can never depend
//     on each other, and a backward sweep stays valid when both the level
//     order and the item order inside each task are reversed (a forward
//     dependent w of member z is either later in the same run, or its run
//     starts past lev(z) and so sits at a strictly later aggregate
//     level).
// Determinism is untouched: the UpdateSlotMap fixes every row's fold
// order independently of the execution schedule, and a run executes its
// members in the exact flat-level order on one thread.
//
// Bundle rule. Within an aggregate level, singleton tasks are mutually
// independent; those with identical sparsity shape (incoming-term count,
// update count) are grouped into lock-step bundles of kBundleMax lanes
// (kBundleMin at the tail) for the SIMD bundle kernels (blas/bundle.h).
// Per lane the kernels replay the scalar operation sequence exactly, so
// lane parallelism changes data movement only, never any element's bits.
#include <algorithm>
#include <cstdint>
#include <numeric>

#include "graph/etree.h"
#include "graph/supernodes.h"
#include "parallel/schedule.h"

namespace sympiler::parallel {

namespace {

/// Flat level of every item, recovered from the schedule buckets.
std::vector<index_t> item_levels(const LevelSchedule& flat) {
  std::vector<index_t> lev(flat.items.size(), 0);
  for (index_t l = 0; l < flat.levels(); ++l)
    for (index_t t = flat.level_ptr[l]; t < flat.level_ptr[l + 1]; ++t)
      lev[flat.items[t]] = l;
  return lev;
}

/// Core coarsener over an explicit in-edge list. `rank` is a permutation
/// rank ordering tasks (and bundle lanes) within each aggregate level;
/// `shape` keys lock-step compatibility (shape < 0 exempts an item from
/// bundling — the supernodal caller exempts everything).
AggregateSchedule coarsen(const LevelSchedule& flat,
                          std::span<const index_t> dep_ptr,
                          std::span<const index_t> dep_src,
                          std::span<const index_t> rank,
                          std::span<const std::int64_t> shape,
                          const CoarsenOptions& opt) {
  AggregateSchedule agg;
  const auto count = static_cast<index_t>(flat.items.size());
  if (count == 0) return agg;
  const std::vector<index_t> lev = item_levels(flat);

  // --- chain construction: greedy run extension in flat-level order ----
  std::vector<index_t> run_of(static_cast<std::size_t>(count), -1);
  std::vector<index_t> run_start;  // aggregate level of each run
  std::vector<index_t> run_last;   // current last member
  run_start.reserve(static_cast<std::size_t>(count));
  run_last.reserve(static_cast<std::size_t>(count));
  const auto new_run = [&](index_t i) {
    run_of[i] = static_cast<index_t>(run_start.size());
    run_start.push_back(lev[i]);
    run_last.push_back(i);
  };
  for (index_t t = 0; t < count; ++t) {
    const index_t i = flat.items[t];  // level-major: deps already assigned
    if (!opt.chains || lev[i] == 0) {
      new_run(i);
      continue;
    }
    // The unique dependence one flat level below is the only possible
    // predecessor; every other dependence must be in its run or predate
    // the run's start level.
    index_t pred = -1;
    bool ok = true;
    for (index_t q = dep_ptr[i]; ok && q < dep_ptr[i + 1]; ++q) {
      const index_t j = dep_src[q];
      if (lev[j] == lev[i] - 1) {
        if (pred != -1 && pred != j) ok = false;
        pred = j;
      }
    }
    ok = ok && pred != -1 && run_last[run_of[pred]] == pred;
    if (ok) {
      const index_t r = run_of[pred];
      for (index_t q = dep_ptr[i]; ok && q < dep_ptr[i + 1]; ++q) {
        const index_t j = dep_src[q];
        if (lev[j] >= run_start[r] && run_of[j] != r) ok = false;
      }
      if (ok) {
        run_of[i] = r;
        run_last[r] = i;
        continue;
      }
    }
    new_run(i);
  }

  // --- gather run members (flat-level order within each run) ----------
  const auto nruns = static_cast<index_t>(run_start.size());
  std::vector<index_t> member_ptr(static_cast<std::size_t>(nruns) + 1, 0);
  for (index_t i = 0; i < count; ++i) ++member_ptr[run_of[i] + 1];
  for (index_t r = 0; r < nruns; ++r) member_ptr[r + 1] += member_ptr[r];
  std::vector<index_t> members(static_cast<std::size_t>(count));
  {
    std::vector<index_t> next(member_ptr.begin(), member_ptr.end() - 1);
    for (index_t t = 0; t < count; ++t) {
      const index_t i = flat.items[t];
      members[next[run_of[i]]++] = i;
    }
  }

  // --- bucket runs by aggregate level, ordered by head-item rank ------
  index_t nlevels = 0;
  for (index_t r = 0; r < nruns; ++r)
    nlevels = std::max(nlevels, run_start[r] + 1);
  std::vector<index_t> level_run_ptr(static_cast<std::size_t>(nlevels) + 1, 0);
  for (index_t r = 0; r < nruns; ++r) ++level_run_ptr[run_start[r] + 1];
  for (index_t l = 0; l < nlevels; ++l)
    level_run_ptr[l + 1] += level_run_ptr[l];
  std::vector<index_t> level_runs(static_cast<std::size_t>(nruns));
  {
    std::vector<index_t> next(level_run_ptr.begin(), level_run_ptr.end() - 1);
    for (index_t r = 0; r < nruns; ++r)
      level_runs[next[run_start[r]]++] = r;
  }
  const auto head = [&](index_t r) { return members[member_ptr[r]]; };
  for (index_t l = 0; l < nlevels; ++l)
    std::sort(level_runs.begin() + level_run_ptr[l],
              level_runs.begin() + level_run_ptr[l + 1],
              [&](index_t a, index_t b) { return rank[head(a)] < rank[head(b)]; });

  // --- emit tasks: chains in rank order, then lock-step bundles -------
  agg.level_ptr.assign(1, 0);
  agg.task_ptr.assign(1, 0);
  agg.items.reserve(static_cast<std::size_t>(count));
  std::vector<index_t> lanes;  // bundle candidates of the current level
  const auto emit_task = [&](std::span<const index_t> task_items,
                             bool is_bundle) {
    agg.items.insert(agg.items.end(), task_items.begin(), task_items.end());
    agg.task_ptr.push_back(static_cast<index_t>(agg.items.size()));
    agg.bundle.push_back(is_bundle ? 1 : 0);
  };
  for (index_t l = 0; l < nlevels; ++l) {
    lanes.clear();
    for (index_t t = level_run_ptr[l]; t < level_run_ptr[l + 1]; ++t) {
      const index_t r = level_runs[t];
      const index_t b0 = member_ptr[r], b1 = member_ptr[r + 1];
      if (opt.bundles && b1 - b0 == 1 && shape[members[b0]] >= 0)
        lanes.push_back(members[b0]);  // bundle candidate, decided below
      else
        emit_task({members.data() + b0, static_cast<std::size_t>(b1 - b0)},
                  false);
    }
    // Group candidates by shape (stable in rank order within a shape);
    // full-width bundles first, one tail bundle >= kBundleMin, leftovers
    // fall back to singleton chains.
    std::stable_sort(lanes.begin(), lanes.end(), [&](index_t a, index_t b) {
      return shape[a] < shape[b];
    });
    std::size_t g0 = 0;
    while (g0 < lanes.size()) {
      std::size_t g1 = g0;
      while (g1 < lanes.size() && shape[lanes[g1]] == shape[lanes[g0]]) ++g1;
      std::size_t k = g0;
      while (g1 - k >= static_cast<std::size_t>(kBundleMax)) {
        emit_task({lanes.data() + k, static_cast<std::size_t>(kBundleMax)},
                  true);
        k += static_cast<std::size_t>(kBundleMax);
      }
      if (g1 - k >= static_cast<std::size_t>(kBundleMin)) {
        emit_task({lanes.data() + k, g1 - k}, true);
        k = g1;
      }
      for (; k < g1; ++k) emit_task({lanes.data() + k, 1}, false);
      g0 = g1;
    }
    agg.level_ptr.push_back(static_cast<index_t>(agg.task_ptr.size()) - 1);
  }
  return agg;
}

}  // namespace

AggregateSchedule coarsen_schedule_columns(const CscMatrix& l,
                                           const LevelSchedule& flat,
                                           const CoarsenOptions& opt) {
  const index_t n = l.cols();
  SYMPILER_CHECK(static_cast<index_t>(flat.items.size()) == n,
                 "coarsen_schedule_columns: schedule does not cover L");
  // In-adjacency of DG_L (dependencies of column i = columns j with
  // L(i,j) != 0), by counting sort over the CSC out-edges.
  std::vector<index_t> dep_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j)
    for (index_t p = l.col_begin(j) + 1; p < l.col_end(j); ++p)
      ++dep_ptr[l.rowind[p] + 1];
  for (index_t i = 0; i < n; ++i) dep_ptr[i + 1] += dep_ptr[i];
  std::vector<index_t> dep_src(static_cast<std::size_t>(dep_ptr[n]));
  {
    std::vector<index_t> next(dep_ptr.begin(), dep_ptr.end() - 1);
    for (index_t j = 0; j < n; ++j)
      for (index_t p = l.col_begin(j) + 1; p < l.col_end(j); ++p)
        dep_src[next[l.rowind[p]]++] = j;
  }
  // Locality rank: postorder of the solve etree (parent = first
  // off-diagonal row — the lowest-numbered dependent of each column).
  std::vector<index_t> parent(static_cast<std::size_t>(n), -1);
  for (index_t j = 0; j < n; ++j)
    if (l.col_end(j) - l.col_begin(j) > 1)
      parent[j] = l.rowind[l.col_begin(j) + 1];
  const std::vector<index_t> post = postorder(parent);
  std::vector<index_t> rank(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) rank[post[k]] = k;
  // Lock-step shape: (incoming-term count, column update count).
  std::vector<std::int64_t> shape(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j)
    shape[j] = (static_cast<std::int64_t>(dep_ptr[j + 1] - dep_ptr[j]) << 32) |
               static_cast<std::int64_t>(l.col_end(j) - l.col_begin(j) - 1);
  return coarsen(flat, dep_ptr, dep_src, rank, shape, opt);
}

AggregateSchedule coarsen_schedule_supernodes(
    const SupernodePartition& sn, std::span<const index_t> parent,
    std::span<const index_t> dep_ptr, std::span<const index_t> dep_src,
    const LevelSchedule& flat, const CoarsenOptions& opt) {
  const auto nsuper = static_cast<index_t>(flat.items.size());
  SYMPILER_CHECK(static_cast<index_t>(dep_ptr.size()) == nsuper + 1,
                 "coarsen_schedule_supernodes: dependence list size mismatch");
  const std::vector<index_t> sparent = supernode_etree(sn, parent);
  const std::vector<index_t> post = postorder(sparent);
  std::vector<index_t> rank(static_cast<std::size_t>(nsuper));
  for (index_t k = 0; k < nsuper; ++k) rank[post[k]] = k;
  // Chains only: panel tasks are never lock-stepped (shape < 0 for all).
  const std::vector<std::int64_t> shape(static_cast<std::size_t>(nsuper), -1);
  CoarsenOptions chain_only = opt;
  chain_only.bundles = false;
  return coarsen(flat, dep_ptr, dep_src, rank, shape, chain_only);
}

}  // namespace sympiler::parallel
