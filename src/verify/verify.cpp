// Verifier driver + the schedule-shape validation shared by the passes.
#include "verify/verify.h"

#include <utility>

#include "util/fault.h"
#include "util/timer.h"
#include "verify/internal.h"

namespace sympiler::verify {

const char* to_string(Pass pass) {
  switch (pass) {
    case Pass::kStructure:
      return "structure";
    case Pass::kDependence:
      return "dependence";
    case Pass::kRaces:
      return "races";
    case Pass::kWorkspace:
      return "workspace";
    case Pass::kEmitted:
      return "emitted";
  }
  return "?";
}

std::string Report::to_string() const {
  std::ostringstream os;
  if (ok()) {
    os << "verify: PASS (" << checks << " checks, " << seconds * 1e3 << " ms)";
    return os.str();
  }
  os << "verify: FAIL (" << findings.size() << " finding"
     << (findings.size() == 1 ? "" : "s") << ", " << checks << " checks)";
  for (const Finding& f : findings) {
    os << "\n  [" << verify::to_string(f.pass) << "] " << f.check;
    if (f.item >= 0) os << " @" << f.item;
    os << ": " << f.message;
  }
  return os.str();
}

namespace detail {

ItemOrder check_flat_schedule(Checker& c,
                              const parallel::LevelSchedule& schedule,
                              index_t count) {
  ItemOrder order;
  c.note();
  if (schedule.level_ptr.empty() || schedule.level_ptr.front() != 0 ||
      schedule.level_ptr.back() != count) {
    c.fail("sched.level-ptr", -1,
           cat("level_ptr must start at 0 and end at ", count));
    return order;
  }
  for (std::size_t v = 1; v < schedule.level_ptr.size(); ++v) {
    if (schedule.level_ptr[v] < schedule.level_ptr[v - 1]) {
      c.fail("sched.level-ptr", static_cast<index_t>(v),
             cat("level_ptr decreases at level ", v - 1));
      return order;
    }
  }
  c.note();
  if (static_cast<index_t>(schedule.items.size()) != count) {
    c.fail("sched.partition", -1,
           cat("schedule holds ", schedule.items.size(), " items, expected ",
               count));
    return order;
  }
  order.level.assign(count, -1);
  order.task.assign(count, 0);
  order.pos.assign(count, 0);
  order.bundled.assign(count, 0);
  for (index_t lv = 0; lv < schedule.levels(); ++lv) {
    for (index_t p = schedule.level_ptr[lv]; p < schedule.level_ptr[lv + 1];
         ++p) {
      const index_t item = schedule.items[p];
      if (item < 0 || item >= count) {
        c.fail("sched.partition", item,
               cat("item id out of range at position ", p));
        return order;
      }
      if (order.level[item] >= 0) {
        c.fail("sched.partition", item,
               cat("item scheduled twice (levels ", order.level[item], " and ",
                   lv, ")"));
        return order;
      }
      order.level[item] = lv;
      // Flat same-level items are unordered: give each its own task so
      // before() never claims an intra-level ordering.
      order.task[item] = item;
    }
  }
  order.usable = true;
  return order;
}

ItemOrder check_agg_schedule(Checker& c,
                             const parallel::AggregateSchedule& agg,
                             index_t count) {
  ItemOrder order;
  const index_t ntasks = agg.tasks();
  c.note();
  if (agg.task_ptr.empty() || agg.task_ptr.front() != 0 ||
      agg.task_ptr.back() != count ||
      static_cast<index_t>(agg.bundle.size()) != ntasks) {
    c.fail("agg.task-ptr", -1,
           cat("task_ptr must start at 0 and end at ", count,
               " with one bundle flag per task"));
    return order;
  }
  for (std::size_t v = 1; v < agg.task_ptr.size(); ++v) {
    if (agg.task_ptr[v] < agg.task_ptr[v - 1]) {
      c.fail("agg.task-ptr", static_cast<index_t>(v),
             cat("task_ptr decreases at task ", v - 1));
      return order;
    }
  }
  c.note();
  if (agg.level_ptr.empty() || agg.level_ptr.front() != 0 ||
      agg.level_ptr.back() != ntasks) {
    c.fail("agg.level-ptr", -1,
           cat("level_ptr must start at 0 and end at ", ntasks, " tasks"));
    return order;
  }
  for (std::size_t v = 1; v < agg.level_ptr.size(); ++v) {
    if (agg.level_ptr[v] < agg.level_ptr[v - 1]) {
      c.fail("agg.level-ptr", static_cast<index_t>(v),
             cat("level_ptr decreases at level ", v - 1));
      return order;
    }
  }
  c.note();
  if (static_cast<index_t>(agg.items.size()) != count) {
    c.fail("agg.partition", -1,
           cat("schedule holds ", agg.items.size(), " items, expected ",
               count));
    return order;
  }
  order.level.assign(count, -1);
  order.task.assign(count, 0);
  order.pos.assign(count, 0);
  order.bundled.assign(count, 0);
  for (index_t lv = 0; lv < agg.levels(); ++lv) {
    for (index_t t = agg.level_ptr[lv]; t < agg.level_ptr[lv + 1]; ++t) {
      for (index_t q = agg.task_ptr[t]; q < agg.task_ptr[t + 1]; ++q) {
        const index_t item = agg.items[q];
        if (item < 0 || item >= count) {
          c.fail("agg.partition", item,
                 cat("item id out of range at position ", q, " (task ", t,
                     ")"));
          return order;
        }
        if (order.level[item] >= 0) {
          c.fail("agg.partition", item,
                 cat("item scheduled twice (levels ", order.level[item],
                     " and ", lv, ")"));
          return order;
        }
        order.level[item] = lv;
        order.task[item] = t;
        order.pos[item] = q - agg.task_ptr[t];
        order.bundled[item] = agg.bundle[t];
      }
    }
  }
  c.note();
  for (index_t t = 0; t < ntasks; ++t) {
    if (agg.bundle[t] == 0) continue;
    const index_t size = agg.task_ptr[t + 1] - agg.task_ptr[t];
    if (size < 2 || size > parallel::kBundleMax) {
      c.fail("agg.bundle-size", t,
             cat("bundle of ", size, " lanes outside [2, ",
                 parallel::kBundleMax, "]"));
      return order;
    }
  }
  order.usable = true;
  return order;
}

}  // namespace detail

namespace {

/// Synthetic finding for the kVerify fault site: lets the failure-domain
/// tests drive the Planner's verification-failure path without crafting a
/// genuinely broken plan.
bool inject_fault(Report& report) {
  if (!SYMPILER_FAULT_POINT(util::FaultSite::kVerify)) return false;
  report.checks = 1;
  report.findings.push_back(
      {Pass::kStructure, "fault.injected", -1,
       "injected verification failure (fault site verify)"});
  return true;
}

}  // namespace

Report verify_plan(const core::CholeskyPlan& plan, const VerifyOptions& opts) {
  Report report;
  const Timer timer;
  if (inject_fault(report)) {
    report.seconds = timer.seconds();
    return report;
  }
  detail::check_structure(report, plan);
  detail::check_dependence(report, plan);
  detail::check_races(report, plan);
  detail::check_workspace(report, plan);
  if (opts.audit_emitted_code) detail::check_emitted(report, plan);
  report.seconds = timer.seconds();
  return report;
}

Report verify_plan(const core::TriSolvePlan& plan, const CscMatrix& l,
                   std::span<const index_t> beta, const VerifyOptions& opts) {
  Report report;
  const Timer timer;
  if (inject_fault(report)) {
    report.seconds = timer.seconds();
    return report;
  }
  detail::check_structure(report, plan, l, beta);
  detail::check_dependence(report, plan, l);
  detail::check_races(report, plan, l);
  detail::check_workspace(report, plan, l);
  if (opts.audit_emitted_code) detail::check_emitted(report, plan, l);
  report.seconds = timer.seconds();
  return report;
}

}  // namespace sympiler::verify
