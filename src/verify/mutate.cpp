// Corruption seeding for the verifier's mutation-kill matrix. Every
// branch simulates a specific bug class at the data-structure level the
// real component owns: a scheduler that mis-levels an item, a slot-map
// builder that aliases two producers, a Planner that trims a workspace
// field the executor still touches. See mutate.h for the taxonomy.
#include "verify/mutate.h"

#include <algorithm>

namespace sympiler::verify {

namespace {

using core::ExecutionPath;

/// Swap one item between the first and last levels of a flat schedule.
/// Any item at the last level of a longest-path levelling has an incoming
/// dependence, so pulling it to level 0 always breaks an edge.
bool swap_flat_levels(parallel::LevelSchedule& schedule) {
  if (schedule.levels() < 2 || schedule.items.empty()) return false;
  const index_t last = schedule.level_ptr[schedule.levels() - 1];
  std::swap(schedule.items[0], schedule.items[last]);
  return true;
}

/// Same exchange across the coarsened schedule's level groups.
bool swap_agg_levels(parallel::AggregateSchedule& agg) {
  if (agg.levels() < 2 || agg.items.empty()) return false;
  const index_t q1 = agg.task_ptr[agg.level_ptr[0]];
  const index_t q2 = agg.task_ptr[agg.level_ptr[agg.levels() - 1]];
  if (q1 == q2) return false;
  std::swap(agg.items[q1], agg.items[q2]);
  return true;
}

/// Alias the second slot of the terms buffer onto the first: two
/// producers now write one cell — the cross-task race the map prevents.
bool alias_slots(parallel::UpdateSlotMap& m) {
  if (m.slot.size() < 2) return false;
  m.slot[1] = m.slot[0];
  return true;
}

/// Swap the slot ids of the first two producers feeding one row: both
/// still land inside the row's run (no alias), but the consumer's
/// ascending fold now applies them in the wrong serial order.
bool reorder_fold(parallel::UpdateSlotMap& m) {
  const index_t nrows = static_cast<index_t>(m.row_ptr.size()) - 1;
  for (index_t r = 0; r < nrows; ++r) {
    if (m.row_ptr[r + 1] - m.row_ptr[r] < 2) continue;
    index_t first = -1;
    for (std::size_t ci = 0; ci < m.slot.size(); ++ci) {
      if (m.slot[ci] < m.row_ptr[r] || m.slot[ci] >= m.row_ptr[r + 1])
        continue;
      if (first < 0) {
        first = static_cast<index_t>(ci);
      } else {
        std::swap(m.slot[first], m.slot[ci]);
        return true;
      }
    }
  }
  return false;
}

/// Flip a multi-item chain task into a bundle: its members occupy
/// consecutive levels precisely because they depend on each other, so the
/// "bundle" now runs dependent work lock-step.
bool flip_chain_to_bundle(parallel::AggregateSchedule& agg) {
  for (index_t t = 0; t < agg.tasks(); ++t) {
    if (agg.bundle[t] == 0 && agg.task_ptr[t + 1] - agg.task_ptr[t] >= 2) {
      agg.bundle[t] = 1;
      return true;
    }
  }
  return false;
}

/// Swap two adjacent members inside a multi-item chain task: the chain's
/// sequential execution now runs a consumer before the producer it was
/// fused with (the coarsener bug class races.chain-order diagnoses).
bool reorder_chain(parallel::AggregateSchedule& agg) {
  for (index_t t = 0; t < agg.tasks(); ++t) {
    if (agg.bundle[t] == 0 && agg.task_ptr[t + 1] - agg.task_ptr[t] >= 2) {
      std::swap(agg.items[agg.task_ptr[t]], agg.items[agg.task_ptr[t] + 1]);
      return true;
    }
  }
  return false;
}

/// Drop the last scheduled item: the schedule still looks well-formed but
/// silently loses work.
bool drop_schedule_item(parallel::LevelSchedule& schedule) {
  if (schedule.items.empty()) return false;
  schedule.items.pop_back();
  schedule.level_ptr.back() -= 1;
  return true;
}

}  // namespace

const char* to_string(Corruption c) {
  switch (c) {
    case Corruption::kDepViolation:
      return "dep-violation";
    case Corruption::kAliasedSlot:
      return "aliased-slot";
    case Corruption::kReorderedFold:
      return "reordered-fold";
    case Corruption::kCrossDependentBundle:
      return "cross-dependent-bundle";
    case Corruption::kOutOfBoundsIndex:
      return "out-of-bounds-index";
    case Corruption::kWorkspaceTrim:
      return "workspace-trim";
    case Corruption::kScheduleGap:
      return "schedule-gap";
    case Corruption::kChainReorder:
      return "chain-reorder";
  }
  return "?";
}

// ---------------------------------------------------------------- Cholesky

bool PlanMutator::apply(core::CholeskyPlan& plan, Corruption c) {
  auto& sets = plan.sets;
  const index_t n = sets.sym.l_pattern.cols();
  const bool has_layout = sets.layout.n != 0;

  switch (c) {
    case Corruption::kDepViolation: {
      if (swap_agg_levels(plan.agg)) return true;
      if (swap_flat_levels(plan.schedule)) return true;
      if (!sets.rowpat.empty()) {
        // Sequential simplicial: claim row i is updated by itself — a
        // dependence no elimination order can satisfy.
        for (index_t i = 0; i < n; ++i) {
          if (sets.rowpat_ptr[i + 1] > sets.rowpat_ptr[i]) {
            sets.rowpat[sets.rowpat_ptr[i]] = i;
            return true;
          }
        }
      }
      if (has_layout && !sets.updates.refs.empty()) {
        // Sequential supernodal: make a target its own descendant.
        for (index_t s = 0; s < sets.layout.nsuper(); ++s) {
          if (sets.updates.ptr[s + 1] > sets.updates.ptr[s]) {
            sets.updates.refs[sets.updates.ptr[s]].d = s;
            return true;
          }
        }
      }
      return false;
    }
    case Corruption::kAliasedSlot: {
      if (alias_slots(plan.solve_update_map)) return true;
      if (!sets.rowpat.empty()) {
        // Duplicate one updating column in a row pattern: the same
        // contribution would be subtracted twice.
        for (index_t i = 0; i < n; ++i) {
          if (sets.rowpat_ptr[i + 1] - sets.rowpat_ptr[i] >= 2) {
            sets.rowpat[sets.rowpat_ptr[i] + 1] =
                sets.rowpat[sets.rowpat_ptr[i]];
            return true;
          }
        }
      }
      if (has_layout) {
        // Duplicate a descendant ref in a target's update list.
        for (index_t s = 0; s < sets.layout.nsuper(); ++s) {
          if (sets.updates.ptr[s + 1] - sets.updates.ptr[s] >= 2) {
            sets.updates.refs[sets.updates.ptr[s] + 1] =
                sets.updates.refs[sets.updates.ptr[s]];
            return true;
          }
        }
      }
      return false;
    }
    case Corruption::kReorderedFold:
      return reorder_fold(plan.solve_update_map);
    case Corruption::kCrossDependentBundle:
      return !plan.agg.empty() && flip_chain_to_bundle(plan.agg);
    case Corruption::kOutOfBoundsIndex: {
      if (has_layout && !sets.layout.srows.empty()) {
        sets.layout.srows.back() = n + 5;
        return true;
      }
      if (!sets.rowpat.empty()) {
        sets.rowpat[0] = n + 7;
        return true;
      }
      if (!sets.sym.l_pattern.rowind.empty()) {
        sets.sym.l_pattern.rowind.back() = n + 3;
        return true;
      }
      return false;
    }
    case Corruption::kWorkspaceTrim: {
      if (plan.path == ExecutionPath::ParallelSupernodal &&
          !plan.solve_update_map.empty()) {
        plan.workspace.update_slots = plan.solve_update_map.slots() - 1;
        return true;
      }
      if (plan.path != ExecutionPath::Simplicial && has_layout) {
        plan.workspace.max_panel_rows = 0;
        return true;
      }
      if (plan.path == ExecutionPath::Simplicial) {
        plan.workspace.need_dense = false;
        return true;
      }
      return false;
    }
    case Corruption::kScheduleGap:
      return drop_schedule_item(plan.schedule);
    case Corruption::kChainReorder:
      return !plan.agg.empty() && reorder_chain(plan.agg);
  }
  return false;
}

// ---------------------------------------------------------------- TriSolve

bool PlanMutator::apply(core::TriSolvePlan& plan, const CscMatrix& l,
                        Corruption c) {
  auto& sets = plan.sets;
  const index_t n = l.cols();

  switch (c) {
    case Corruption::kDepViolation: {
      if (swap_agg_levels(plan.agg)) return true;
      if (swap_flat_levels(plan.schedule)) return true;
      if (!sets.reach.empty()) {
        // Sequential pruned: place a successor before its producer in the
        // reach sequence — find any DG_L edge inside the reach and invert
        // its order.
        std::vector<index_t> pos(static_cast<std::size_t>(n), -1);
        for (index_t k = 0; k < static_cast<index_t>(sets.reach.size()); ++k)
          if (sets.reach[k] >= 0 && sets.reach[k] < n) pos[sets.reach[k]] = k;
        for (index_t k = 0; k < static_cast<index_t>(sets.reach.size()); ++k) {
          const index_t j = sets.reach[k];
          if (j < 0 || j >= n) continue;
          for (index_t p = l.col_begin(j); p < l.col_end(j); ++p) {
            const index_t i = l.rowind[p];
            if (i > j && i < n && pos[i] > k) {
              std::swap(sets.reach[k], sets.reach[pos[i]]);
              return true;
            }
          }
        }
      }
      if (sets.sn_reach.size() >= 2) {
        // Blocked pruned: break the ascending (dependence) order of the
        // supernode prune-set.
        std::swap(sets.sn_reach[0], sets.sn_reach[1]);
        std::swap(sets.sn_first_col[0], sets.sn_first_col[1]);
        return true;
      }
      return false;
    }
    case Corruption::kAliasedSlot: {
      if (alias_slots(plan.update_map)) return true;
      if (sets.reach.size() >= 2) {
        sets.reach[1] = sets.reach[0];
        return true;
      }
      if (sets.sn_reach.size() >= 2) {
        sets.sn_reach[1] = sets.sn_reach[0];
        return true;
      }
      return false;
    }
    case Corruption::kReorderedFold:
      return reorder_fold(plan.update_map);
    case Corruption::kCrossDependentBundle:
      return !plan.agg.empty() && flip_chain_to_bundle(plan.agg);
    case Corruption::kOutOfBoundsIndex: {
      if (!sets.reach.empty()) {
        sets.reach[0] = n + 9;
        return true;
      }
      if (!sets.sn_reach.empty()) {
        sets.sn_reach[0] = sets.blocks.count() + 3;
        return true;
      }
      return false;
    }
    case Corruption::kWorkspaceTrim: {
      if (plan.path == ExecutionPath::ParallelTriSolve &&
          !plan.update_map.empty()) {
        plan.workspace.update_slots = plan.update_map.slots() - 1;
        return true;
      }
      if (plan.path == ExecutionPath::BlockedTriSolve) {
        plan.workspace.max_tail = -1;
        return true;
      }
      return false;
    }
    case Corruption::kScheduleGap: {
      if (drop_schedule_item(plan.schedule)) return true;
      if (plan.path == ExecutionPath::BlockedTriSolve &&
          plan.options.vi_prune && !sets.sn_reach.empty()) {
        sets.sn_reach.pop_back();
        sets.sn_first_col.pop_back();
        return true;
      }
      if (!sets.reach.empty()) {
        sets.reach.pop_back();
        return true;
      }
      return false;
    }
    case Corruption::kChainReorder:
      return !plan.agg.empty() && reorder_chain(plan.agg);
  }
  return false;
}

}  // namespace sympiler::verify
