// PlanMutator: targeted corruption seeding for the plan verifier's
// mutation-kill tests.
//
// Each Corruption is one class of invariant violation the verifier must
// catch — a schedule that runs a consumer before its producer, two
// producers aliased onto one slot, a fold sequence that diverges from the
// serial order, a bundle whose lanes depend on each other, a baked index
// past its extent, a workspace trimmed below what the executors touch, a
// schedule that silently drops work. apply() mutates the plan in place the
// way a real Planner/scheduler bug would, returning false when the class
// does not apply to the plan's execution path (a sequential plan has no
// slots to alias). The kill matrix in tests/test_verify.cpp asserts
// verify_plan flags every applicable (corruption x path) cell.
//
// Test-only by intent, but shipped in src/verify/ so the corruptions stay
// next to the invariants they violate: a new verifier check lands with the
// mutation that proves it fires.
#pragma once

#include "core/execution_plan.h"
#include "sparse/csc.h"

namespace sympiler::verify {

enum class Corruption {
  kDepViolation,          // consumer scheduled at/before its producer
  kAliasedSlot,           // two producers write one slot / duplicated dep
  kReorderedFold,         // fold sequence diverges from serial order
  kCrossDependentBundle,  // SIMD bundle lanes with a dependence edge
  kOutOfBoundsIndex,      // structural index past its extent
  kWorkspaceTrim,         // workspace dims below the executors' reach
  kScheduleGap,           // schedule silently drops an item
  kChainReorder,          // chain task members swapped out of dep order
};

const char* to_string(Corruption c);

struct PlanMutator {
  /// Seed `c` into `plan`; false when the class cannot apply to this
  /// plan's path (e.g. slot corruption on a sequential plan).
  static bool apply(core::CholeskyPlan& plan, Corruption c);
  static bool apply(core::TriSolvePlan& plan, const CscMatrix& l,
                    Corruption c);
};

}  // namespace sympiler::verify
