// Shared machinery of the verifier passes (verify.h is the public face).
//
// Conventions the passes follow:
//  * Checker::note() once per invariant *family*; each family's scan stops
//    at its first violation, so a corrupted plan yields one precise
//    finding per broken contract instead of a flood.
//  * Every index read out of plan data is bounds-checked before use — the
//    verifier's whole job is to run on corrupted plans, so it must never
//    itself index out of bounds.
//  * Passes take the plan by const reference and allocate only their own
//    scratch; nothing in the plan is touched.
#pragma once

#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/execution_plan.h"
#include "verify/verify.h"

namespace sympiler::verify::detail {

/// Small ostream-based formatter for finding messages.
template <typename... Args>
[[nodiscard]] std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

/// Accumulates findings for one pass into a Report.
class Checker {
 public:
  Checker(Report& report, Pass pass) : report_(report), pass_(pass) {}

  /// Count one invariant family as evaluated.
  void note() { ++report_.checks; }

  /// Record a violation. Returns false so scan loops can
  /// `return c.fail(...)` / `ok = c.fail(...)` and stop.
  bool fail(std::string check, index_t item, std::string message) {
    report_.findings.push_back(
        {pass_, std::move(check), item, std::move(message)});
    return false;
  }

  [[nodiscard]] bool clean() const { return report_.findings.empty(); }

 private:
  Report& report_;
  Pass pass_;
};

/// Happens-before order of schedule items, derived from a validated flat
/// or aggregate schedule. `before(a, b)` = a completes before b starts in
/// *every* execution of the schedule: a strictly earlier barrier level, or
/// an earlier position within the same sequential chain. Bundle members
/// run lock-step, so they are ordered only by level.
struct ItemOrder {
  std::vector<index_t> level;         ///< barrier level of each item
  std::vector<index_t> task;          ///< owning task (flat: == level)
  std::vector<index_t> pos;           ///< position within the task
  std::vector<std::uint8_t> bundled;  ///< item sits in a lock-step bundle
  bool usable = false;  ///< schedule was structurally valid

  [[nodiscard]] bool before(index_t a, index_t b) const {
    if (level[a] != level[b]) return level[a] < level[b];
    return task[a] == task[b] && bundled[a] == 0 && pos[a] < pos[b];
  }
};

/// Validate a flat LevelSchedule over `count` items (monotone level_ptr,
/// items a permutation of [0, count)) and build its ItemOrder. Findings go
/// under "sched.*"; order.usable is false when the structure is broken.
[[nodiscard]] ItemOrder check_flat_schedule(
    Checker& c, const parallel::LevelSchedule& schedule, index_t count);

/// Validate an AggregateSchedule over `count` items (level_ptr/task_ptr
/// monotone and aligned, items a permutation, bundle sizes within
/// [2, kBundleMax]) and build its ItemOrder. Findings go under "agg.*".
[[nodiscard]] ItemOrder check_agg_schedule(
    Checker& c, const parallel::AggregateSchedule& agg, index_t count);

// ---- pass entry points (one translation unit each) ----

void check_structure(Report& report, const core::CholeskyPlan& plan);
void check_dependence(Report& report, const core::CholeskyPlan& plan);
void check_races(Report& report, const core::CholeskyPlan& plan);
void check_workspace(Report& report, const core::CholeskyPlan& plan);
void check_emitted(Report& report, const core::CholeskyPlan& plan);

void check_structure(Report& report, const core::TriSolvePlan& plan,
                     const CscMatrix& l, std::span<const index_t> beta);
void check_dependence(Report& report, const core::TriSolvePlan& plan,
                      const CscMatrix& l);
void check_races(Report& report, const core::TriSolvePlan& plan,
                 const CscMatrix& l);
void check_workspace(Report& report, const core::TriSolvePlan& plan,
                     const CscMatrix& l);
void check_emitted(Report& report, const core::TriSolvePlan& plan,
                   const CscMatrix& l);

}  // namespace sympiler::verify::detail
