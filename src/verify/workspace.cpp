// kWorkspace pass: the plan's WorkspaceDims must cover the maximum
// extents the executors will index — the static form of the
// Workspace::Borrow guard. The Planner trims every field its chosen path
// never touches (workspace.h), so the checks here are one-sided: each
// buffer the path *does* read must be at least as large as the deepest
// index the plan's own sets imply. A Planner trim bug fails here, at plan
// time, instead of as a runtime overrun inside a numeric sweep.
#include <algorithm>

#include "verify/internal.h"

namespace sympiler::verify::detail {

void check_workspace(Report& report, const core::CholeskyPlan& plan) {
  Checker c(report, Pass::kWorkspace);
  const core::WorkspaceDims& d = plan.workspace;
  const index_t n = plan.sets.sym.l_pattern.cols();

  c.note();
  if (d.n < n) {
    c.fail("workspace.n", -1,
           cat("dims.n = ", d.n, " < problem order ", n));
    return;
  }

  if (plan.path == core::ExecutionPath::Simplicial) {
    // The simplicial sweep scatters into the dense accumulation column and
    // chases per-column cursors through the integer map.
    c.note();
    if (!d.need_dense || !d.need_map)
      c.fail("workspace.simplicial-buffers", -1,
             "simplicial path trimmed the dense column or the cursor map");
    return;
  }

  const solvers::SupernodalLayout& layout = plan.sets.layout;
  if (layout.n == 0 ||
      static_cast<index_t>(layout.srow_ptr.size()) != layout.nsuper() + 1)
    return;  // structure pass reports the missing layout

  c.note();
  index_t max_rows = 0, max_width = 0, max_tail = 0;
  for (index_t s = 0; s < layout.nsuper(); ++s) {
    const index_t rows = layout.srow_ptr[s + 1] - layout.srow_ptr[s];
    const index_t w = layout.width(s);
    max_rows = std::max(max_rows, rows);
    max_width = std::max(max_width, w);
    max_tail = std::max(max_tail, rows - w);
  }
  if (!d.need_map)
    c.fail("workspace.map", -1,
           "supernodal path trimmed the scatter map it gathers through");
  else if (d.max_panel_rows < max_rows || d.max_panel_width < max_width)
    c.fail("workspace.update-tile", -1,
           cat("update tile ", d.max_panel_rows, "x", d.max_panel_width,
               " smaller than the largest panel ", max_rows, "x", max_width));
  else if (d.max_tail < max_tail)
    c.fail("workspace.tail", -1,
           cat("tail scratch ", d.max_tail, " < deepest below-diagonal ",
               "panel ", max_tail));
  else if (d.rhs_block < 1)
    c.fail("workspace.rhs-block", -1,
           "supernodal panel solves need at least one packed RHS lane");

  if (plan.path == core::ExecutionPath::ParallelSupernodal &&
      !plan.solve_update_map.empty()) {
    c.note();
    if (d.update_slots < plan.solve_update_map.slots())
      c.fail("workspace.update-slots", -1,
             cat("terms buffer holds ", d.update_slots, " slots, the plan's ",
                 "slot map assigns ", plan.solve_update_map.slots()));
  }
}

void check_workspace(Report& report, const core::TriSolvePlan& plan,
                     const CscMatrix& l) {
  Checker c(report, Pass::kWorkspace);
  const core::WorkspaceDims& d = plan.workspace;
  const auto& sets = plan.sets;

  if (plan.path == core::ExecutionPath::BlockedTriSolve &&
      !sets.blocks.start.empty() &&
      static_cast<index_t>(sets.colcount.size()) == l.cols()) {
    // Deepest tail the blocked sweep gathers, over the blocks it actually
    // visits (the supernode prune-set when VI-Prune restricts the sweep).
    c.note();
    index_t required = 0;
    const bool pruned = plan.options.vi_prune && !sets.sn_reach.empty();
    const index_t count =
        pruned ? static_cast<index_t>(sets.sn_reach.size())
               : sets.blocks.count();
    for (index_t k = 0; k < count; ++k) {
      const index_t s = pruned ? sets.sn_reach[k] : k;
      if (s < 0 || s + 1 >= static_cast<index_t>(sets.blocks.start.size()))
        continue;  // structure pass reports this
      const index_t c1 = sets.blocks.start[s];
      const index_t w = sets.blocks.start[s + 1] - c1;
      if (c1 >= 0 && c1 < static_cast<index_t>(sets.colcount.size()))
        required = std::max(required, sets.colcount[c1] - w);
    }
    if (d.max_tail < required)
      c.fail("workspace.tail", -1,
             cat("tail scratch ", d.max_tail, " < deepest block tail ",
                 required));
    else if (d.rhs_block < 1)
      c.fail("workspace.rhs-block", -1,
             "blocked batch solves need at least one packed RHS lane");
  }

  if (plan.path == core::ExecutionPath::ParallelTriSolve &&
      !plan.update_map.empty()) {
    c.note();
    if (d.update_slots < plan.update_map.slots())
      c.fail("workspace.update-slots", -1,
             cat("terms buffer holds ", d.update_slots, " slots, the plan's ",
                 "slot map assigns ", plan.update_map.slots()));
    else if (d.n < l.cols())
      c.fail("workspace.n", -1,
             cat("dims.n = ", d.n, " < problem order ", l.cols(),
                 " (packed RHS block rows)"));
    else if (d.rhs_block < 1)
      c.fail("workspace.rhs-block", -1,
             "level-set batch solves need at least one packed RHS lane");
  }
}

}  // namespace sympiler::verify::detail
