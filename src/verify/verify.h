// Static plan verifier: machine-checked proofs that one concrete
// ExecutionPlan is safe to execute, derived entirely from the plan's own
// data structures — no numeric code runs.
//
// The pipeline's correctness argument is that every transformation —
// level scheduling, slot-map privatization, chain/bundle coarsening, JIT
// lowering — preserves the semantics fixed by the symbolic analysis.
// Those dependence facts are statically decidable from the inspection
// sets (Mohammadi et al., PAPERS.md), so instead of sampling them with
// bit-identity tests we can check them per plan:
//
//  * kStructure  — the inspection sets are internally consistent: L
//    pattern invariants, row patterns match the factor's transpose, reach
//    sets are topological closures of the RHS pattern, supernode layouts
//    tile correctly, update refs point at real panel rows.
//  * kDependence — the flat LevelSchedule and the coarsened
//    AggregateSchedule are legal topological refinements of the
//    dependence relation recomputed from the sets: every dependence lands
//    strictly earlier (level, or chain position within one task), chain
//    members sit on consecutive flat levels, bundle members are pairwise
//    independent and shape-homogeneous.
//  * kRaces      — a symbolic happens-before replay of the level-set
//    interpreters over the UpdateSlotMap: every cross-task write lands in
//    a private slot (write-once), every row's fold sequence equals the
//    serial executor's application order exactly (the determinism
//    contract), and no slot is read before the producer's barrier
//    publishes it.
//  * kWorkspace  — the plan's WorkspaceDims cover the maximum extents the
//    executors will index (the static form of the Workspace::Borrow
//    guard: a Planner trim bug fails here, not as a runtime overrun).
//  * kEmitted    — audit of the PlanCompiler's generated C before it
//    reaches the host compiler: baked arrays match the plan sets, baked
//    indices are in-bounds against baked extents, nothing re-enables FP
//    contraction, unroll/specialization constants agree with the plan,
//    and the JitSlot's source-size accounting is honest.
//
// Wiring: core::Planner runs verify_plan on every cold plan when
// SympilerOptions::verify_plan is set (debug default; see options.h) and
// throws plan_verification_error on findings. Warm cache hits skip
// planning entirely, so verification costs nothing on the steady state.
// verify::PlanMutator (mutate.h) seeds targeted corruptions the verifier
// must catch — the mutation-kill matrix in tests/test_verify.cpp.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::core {
struct CholeskyPlan;  // core/execution_plan.h
struct TriSolvePlan;
}  // namespace sympiler::core

namespace sympiler::verify {

/// Which analysis pass produced a finding.
enum class Pass {
  kStructure,   ///< inspection-set internal consistency
  kDependence,  ///< schedule legality vs the recomputed dependence relation
  kRaces,       ///< happens-before replay over the UpdateSlotMap
  kWorkspace,   ///< WorkspaceDims cover the executors' maximum extents
  kEmitted,     ///< audit of the PlanCompiler's generated C
};

[[nodiscard]] const char* to_string(Pass pass);

/// One violated invariant. `check` is a stable machine-readable id
/// ("races.fold-order"); `item` names the offending column / supernode /
/// slot when one exists (-1 otherwise); `message` carries the indices for
/// a human.
struct Finding {
  Pass pass = Pass::kStructure;
  std::string check;
  index_t item = -1;
  std::string message;
};

/// Machine-readable verification result: pass/fail per invariant. Each
/// invariant family counts toward `checks` whether or not it fired;
/// scanning stops at the first violation of each invariant, so one broken
/// contract yields one precise finding, not a flood.
struct Report {
  std::vector<Finding> findings;
  int checks = 0;        ///< invariant families evaluated
  double seconds = 0.0;  ///< wall time of verification

  [[nodiscard]] bool ok() const { return findings.empty(); }
  /// "verify: PASS (n checks, t ms)" or the findings, one per line.
  [[nodiscard]] std::string to_string() const;
};

struct VerifyOptions {
  /// Run the emitted-code auditor (kEmitted). Costs one PlanCompiler::emit
  /// of the full translation unit, so the Planner enables it only for
  /// jit-eligible plans under an active jit mode; tests and the CLI force
  /// it on.
  bool audit_emitted_code = false;
};

/// Verify a Cholesky plan. Everything the passes need (pattern of L,
/// layout, update lists, schedules, slot map) lives in the plan.
[[nodiscard]] Report verify_plan(const core::CholeskyPlan& plan,
                                 const VerifyOptions& opts = {});

/// Verify a triangular-solve plan. The plan stores no copy of L or of the
/// RHS pattern, so callers supply the same factor + beta the plan was
/// built from (the Planner has both in hand at plan time).
[[nodiscard]] Report verify_plan(const core::TriSolvePlan& plan,
                                 const CscMatrix& l,
                                 std::span<const index_t> beta,
                                 const VerifyOptions& opts = {});

}  // namespace sympiler::verify
