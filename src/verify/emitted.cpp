// kEmitted pass: audit the PlanCompiler's generated C before it reaches
// the host compiler.
//
// The emitted translation unit is a pure function of the plan, so the
// auditor re-emits it, parses every baked constant back out, and checks
// the result against the plan's own sets: baked arrays equal the
// inspection sets element for element, baked indices stay in-bounds
// against baked extents (the straight-line trisolve bakes thousands of
// literal x[]/Lx[] offsets), specialization/unroll constants agree with
// the plan's options, nothing in the source re-enables FP contraction
// (the bit-identity contract compiles at -ffp-contract=off), and the
// JitSlot's source-size accounting matches what was actually emitted.
//
// The audit runs only when every earlier pass was clean: emission indexes
// the plan's sets without defensive checks (it is entitled to — the
// verifier runs first), so handing it a corrupted plan would crash the
// verifier itself.
#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/plan_compiler.h"
#include "verify/internal.h"

namespace sympiler::verify::detail {

namespace {

/// Baked constants parsed back out of an emitted translation unit.
struct Baked {
  std::map<std::string, std::vector<long long>> arrays;
  std::map<std::string, long long> declared_len;
  std::map<std::string, long long> enums;
};

bool is_ident(char ch) {
  return std::isalnum(static_cast<unsigned char>(ch)) != 0 || ch == '_';
}

/// Emission is O(source bytes), so auditing a plan whose baked sets blow
/// the JIT source cap would cost far more than the cold planning it
/// checks — and the capped source can never reach the host compiler
/// anyway. Gate the audit on a cheap size estimate (~8 chars per baked
/// integer), with 2x slack so anything plausibly under the cap is still
/// audited end to end.
bool audit_within_cap(std::size_t baked_ints, const core::SympilerOptions& o) {
  const std::size_t cap = static_cast<std::size_t>(o.jit_max_source_kb) * 1024;
  return baked_ints * 8 <= 2 * cap;
}

/// Parse every `static const int/long long NAME[LEN] = {...};` array and
/// every `enum { NAME = VAL, ... };` constant. Returns false on a shape
/// the emitter never produces.
bool parse_baked(const std::string& src, Baked& out) {
  static constexpr const char* kPrefixes[] = {"static const int ",
                                              "static const long long "};
  for (const char* prefix : kPrefixes) {
    const std::size_t plen = std::string::traits_type::length(prefix);
    for (std::size_t pos = src.find(prefix); pos != std::string::npos;
         pos = src.find(prefix, pos + 1)) {
      std::size_t p = pos + plen;
      const std::size_t name_start = p;
      while (p < src.size() && is_ident(src[p])) ++p;
      if (p >= src.size() || src[p] != '[') return false;
      const std::string name = src.substr(name_start, p - name_start);
      char* end = nullptr;
      const long long len = std::strtoll(src.c_str() + p + 1, &end, 10);
      const std::size_t close = src.find(']', p);
      const std::size_t open = src.find('{', p);
      const std::size_t brace_end = src.find('}', p);
      if (close == std::string::npos || open == std::string::npos ||
          brace_end == std::string::npos || open < close)
        return false;
      std::vector<long long> values;
      for (std::size_t q = open + 1; q < brace_end;) {
        const char ch = src[q];
        if (ch == '-' || std::isdigit(static_cast<unsigned char>(ch)) != 0) {
          values.push_back(std::strtoll(src.c_str() + q, &end, 10));
          q = static_cast<std::size_t>(end - src.c_str());
          while (q < brace_end && src[q] == 'L') ++q;  // LL suffix
        } else {
          ++q;
        }
      }
      out.arrays[name] = std::move(values);
      out.declared_len[name] = len;
    }
  }
  for (std::size_t pos = src.find("enum {"); pos != std::string::npos;
       pos = src.find("enum {", pos + 1)) {
    const std::size_t brace_end = src.find('}', pos);
    if (brace_end == std::string::npos) return false;
    std::size_t q = pos + 6;
    while (q < brace_end) {
      while (q < brace_end && !is_ident(src[q])) ++q;
      if (q >= brace_end) break;
      const std::size_t name_start = q;
      while (q < brace_end && is_ident(src[q])) ++q;
      const std::string name = src.substr(name_start, q - name_start);
      while (q < brace_end && (src[q] == ' ' || src[q] == '=')) ++q;
      char* end = nullptr;
      out.enums[name] = std::strtoll(src.c_str() + q, &end, 10);
      q = static_cast<std::size_t>(end - src.c_str());
    }
  }
  return true;
}

template <typename T>
bool match_array(Checker& c, const Baked& b, const char* name,
                 std::span<const T> want) {
  const auto it = b.arrays.find(name);
  if (it == b.arrays.end())
    return c.fail("emitted.missing-array", -1,
                  cat("baked array ", name, " absent from the emitted code"));
  const auto lit = b.declared_len.find(name);
  const long long expect_len =
      want.empty() ? 1 : static_cast<long long>(want.size());
  if (lit == b.declared_len.end() || lit->second != expect_len)
    return c.fail("emitted.array-extent", -1,
                  cat("baked array ", name, " declared [",
                      lit == b.declared_len.end() ? -1 : lit->second,
                      "], plan implies [", expect_len, "]"));
  if (it->second.size() != want.size())
    return c.fail("emitted.array-content", -1,
                  cat("baked array ", name, " holds ", it->second.size(),
                      " values, plan has ", want.size()));
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (it->second[i] != static_cast<long long>(want[i]))
      return c.fail("emitted.array-content", static_cast<index_t>(i),
                    cat("baked ", name, "[", i, "] = ", it->second[i],
                        ", plan has ", static_cast<long long>(want[i])));
  }
  return true;
}

bool match_enum(Checker& c, const Baked& b, const char* name,
                long long want) {
  const auto it = b.enums.find(name);
  if (it == b.enums.end())
    return c.fail("emitted.missing-enum", -1,
                  cat("baked constant ", name, " absent"));
  if (it->second != want)
    return c.fail("emitted.enum-value", -1,
                  cat("baked ", name, " = ", it->second, ", plan implies ",
                      want));
  return true;
}

std::size_t count_occurrences(const std::string& src, const char* needle) {
  std::size_t count = 0;
  for (std::size_t pos = src.find(needle); pos != std::string::npos;
       pos = src.find(needle, pos + 1))
    ++count;
  return count;
}

/// No pragma and no flag string may re-enable FP contraction: the whole
/// bit-identity contract of compiled kernels rides on -ffp-contract=off
/// (the preamble's "-ffp-contract=off" comment is the one legal mention).
void check_fp_contract(Checker& c, const std::string& src) {
  c.note();
  static constexpr const char* kForbidden[] = {"#pragma", "ffast-math",
                                               "fp-contract=fast",
                                               "fp-contract=on"};
  for (const char* needle : kForbidden) {
    const std::size_t pos = src.find(needle);
    if (pos != std::string::npos) {
      c.fail("emitted.fp-contract", -1,
             cat("forbidden token \"", needle, "\" at source offset ", pos));
      return;
    }
  }
}

/// Every literal x[<int>] / Lx[<int>] subscript in the emitted source must
/// be in-bounds (straight-line trisolve bakes one literal per operation).
void check_literal_indices(Checker& c, const std::string& src, index_t n,
                           index_t nnz) {
  c.note();
  for (std::size_t pos = 0; pos + 2 < src.size(); ++pos) {
    if (src[pos] != 'x' || src[pos + 1] != '[') continue;
    const bool is_lx = pos >= 1 && src[pos - 1] == 'L' &&
                       (pos < 2 || !is_ident(src[pos - 2]));
    if (!is_lx && pos >= 1 && is_ident(src[pos - 1])) continue;
    const char first = src[pos + 2];
    if (std::isdigit(static_cast<unsigned char>(first)) == 0) continue;
    char* end = nullptr;
    const long long idx = std::strtoll(src.c_str() + pos + 2, &end, 10);
    if (*end != ']') continue;
    const long long bound = is_lx ? nnz : n;
    if (idx < 0 || idx >= bound) {
      c.fail("emitted.index-bounds", static_cast<index_t>(idx),
             cat("baked subscript ", (is_lx ? "Lx[" : "x["), idx,
                 "] out of bounds [0, ", bound, ") at source offset ", pos));
      return;
    }
  }
}

/// The JitSlot's accounting must match what emission actually produces:
/// a published kernel's source_bytes is the real translation-unit size,
/// and a source-cap rejection names that size honestly.
void check_cap_accounting(Checker& c, const core::JitSlot& slot,
                          const std::string& src) {
  c.note();
  if (const auto kernel = slot.kernel()) {
    if (kernel->source_bytes != src.size())
      c.fail("emitted.source-bytes", -1,
             cat("published kernel records ", kernel->source_bytes,
                 " source bytes, emission produces ", src.size()));
    return;
  }
  if (slot.failed()) {
    const std::string why = slot.failure();
    if (why.find("exceeds cap") != std::string::npos &&
        why.find(std::to_string(src.size())) == std::string::npos)
      c.fail("emitted.cap-accounting", -1,
             cat("cap rejection \"", why, "\" does not name the real ",
                 "source size ", src.size()));
  }
}

}  // namespace

// ---------------------------------------------------------------- Cholesky

void check_emitted(Report& report, const core::CholeskyPlan& plan) {
  if (!report.findings.empty()) return;  // audit only otherwise-clean plans
  Checker c(report, Pass::kEmitted);
  const CscMatrix& lp = plan.sets.sym.l_pattern;
  const index_t n = lp.cols();

  const bool simplicial = plan.path == core::ExecutionPath::Simplicial;
  c.note();
  if (simplicial &&
      static_cast<index_t>(plan.sets.rowpat_ptr.size()) != n + 1) {
    c.fail("emitted.missing-sets", -1,
           "simplicial emission needs the row patterns");
    return;
  }
  if (!simplicial && plan.sets.layout.n == 0) {
    c.fail("emitted.missing-sets", -1,
           "supernodal emission needs the panel layout");
    return;
  }

  const std::size_t baked_ints =
      simplicial ? lp.rowind.size() + plan.sets.rowpat.size() +
                       2 * (static_cast<std::size_t>(n) + 1) +
                       static_cast<std::size_t>(n)
                 : plan.sets.layout.srows.size() +
                       3 * plan.sets.updates.refs.size() +
                       2 * plan.sets.layout.srow_ptr.size() +
                       2 * plan.sets.layout.panel_ptr.size() +
                       plan.sets.updates.ptr.size() +
                       plan.schedule.items.size();
  if (!audit_within_cap(baked_ints, plan.options)) return;

  const std::string src = core::PlanCompiler::emit(plan);
  Baked baked;
  c.note();
  if (!parse_baked(src, baked)) {
    c.fail("emitted.unparsable", -1,
           "emitted source has a baked-constant shape the emitter never "
           "produces");
    return;
  }

  c.note();
  if (simplicial) {
    if (match_array<index_t>(c, baked, "Lp", lp.colptr) &&
        match_array<index_t>(c, baked, "Li", lp.rowind) &&
        match_array<index_t>(c, baked, "rowPatPtr", plan.sets.rowpat_ptr) &&
        match_array<index_t>(c, baked, "rowPat", plan.sets.rowpat) &&
        match_enum(c, baked, "N", n)) {
      // updStart[q] is the replayed column cursor: inside column k's
      // off-diagonal run, pointing at exactly the owning row's entry.
      c.note();
      const auto& upd = baked.arrays["updStart"];
      if (upd.size() != plan.sets.rowpat.size()) {
        c.fail("emitted.array-content", -1,
               cat("updStart holds ", upd.size(), " cursors, row patterns ",
                   "have ", plan.sets.rowpat.size(), " updates"));
      } else {
        for (index_t i = 0; i < n; ++i) {
          bool bad = false;
          for (index_t q = plan.sets.rowpat_ptr[i];
               q < plan.sets.rowpat_ptr[i + 1]; ++q) {
            const index_t k = plan.sets.rowpat[q];
            const long long pj = upd[static_cast<std::size_t>(q)];
            if (pj <= lp.colptr[k] || pj >= lp.colptr[k + 1] ||
                lp.rowind[static_cast<std::size_t>(pj)] != i) {
              c.fail("emitted.index-bounds", i,
                     cat("updStart[", q, "] = ", pj, " does not point at ",
                         "row ", i, " inside column ", k,
                         "'s off-diagonal run"));
              bad = true;
              break;
            }
          }
          if (bad) break;
        }
      }
    }
  } else {
    const solvers::SupernodalLayout& layout = plan.sets.layout;
    std::vector<index_t> upd_d, upd_p1, upd_p2;
    upd_d.reserve(plan.sets.updates.refs.size());
    for (const solvers::UpdateRef& ref : plan.sets.updates.refs) {
      upd_d.push_back(ref.d);
      upd_p1.push_back(ref.p1);
      upd_p2.push_back(ref.p2);
    }
    const bool specialized =
        plan.options.low_level &&
        plan.sets.avg_colcount < plan.options.blas_switch_colcount;
    if (match_array<index_t>(c, baked, "snStart", layout.sn.start) &&
        match_array<index_t>(c, baked, "srowPtr", layout.srow_ptr) &&
        match_array<index_t>(c, baked, "srows", layout.srows) &&
        match_array<std::int64_t>(c, baked, "panelPtr", layout.panel_ptr) &&
        match_array<index_t>(c, baked, "updPtr", plan.sets.updates.ptr) &&
        match_array<index_t>(c, baked, "updD", upd_d) &&
        match_array<index_t>(c, baked, "updP1", upd_p1) &&
        match_array<index_t>(c, baked, "updP2", upd_p2) &&
        match_enum(c, baked, "N", layout.n) &&
        match_enum(c, baked, "NSUPER", layout.nsuper()) &&
        match_enum(c, baked, "SPECIALIZED", specialized ? 1 : 0) &&
        !plan.schedule.empty()) {
      // A scheduled plan's sequential interpretation bakes the level
      // schedule: the item order verbatim, one phase comment per barrier.
      c.note();
      if (match_array<index_t>(c, baked, "snOrder", plan.schedule.items) &&
          static_cast<index_t>(count_occurrences(src, "/* phase ")) !=
              plan.schedule.levels())
        c.fail("emitted.phase-count", -1,
               cat("emitted ", count_occurrences(src, "/* phase "),
                   " phase markers, schedule has ", plan.schedule.levels(),
                   " levels"));
    }
  }

  check_fp_contract(c, src);
  check_cap_accounting(c, *plan.jit, src);
}

// ---------------------------------------------------------------- TriSolve

void check_emitted(Report& report, const core::TriSolvePlan& plan,
                   const CscMatrix& l) {
  if (!report.findings.empty()) return;  // audit only otherwise-clean plans
  Checker c(report, Pass::kEmitted);
  const index_t n = l.cols();
  const auto& sets = plan.sets;

  const bool blocked = plan.path == core::ExecutionPath::BlockedTriSolve;
  c.note();
  if (blocked && (sets.blocks.start.empty() ||
                  static_cast<index_t>(sets.colcount.size()) != n)) {
    c.fail("emitted.missing-sets", -1,
           "blocked emission needs the block-set and column counts");
    return;
  }

  const std::size_t baked_ints =
      blocked ? 4 * (plan.options.vi_prune
                         ? sets.sn_reach.size()
                         : static_cast<std::size_t>(sets.blocks.count()))
              : 3 * sets.reach.size();
  if (!audit_within_cap(baked_ints, plan.options)) return;

  const std::string src = core::PlanCompiler::emit(plan, l);
  Baked baked;
  c.note();
  if (!parse_baked(src, baked)) {
    c.fail("emitted.unparsable", -1,
           "emitted source has a baked-constant shape the emitter never "
           "produces");
    return;
  }

  c.note();
  if (blocked) {
    std::vector<index_t> blk_c1, blk_c2, blk_cr, blk_tail;
    const index_t nblocks =
        plan.options.vi_prune ? static_cast<index_t>(sets.sn_reach.size())
                              : sets.blocks.count();
    for (index_t k = 0; k < nblocks; ++k) {
      const index_t s = plan.options.vi_prune ? sets.sn_reach[k] : k;
      if (s < 0 || s + 1 >= static_cast<index_t>(sets.blocks.start.size())) {
        c.fail("emitted.missing-sets", s,
               "supernode prune-set references a block outside the "
               "partition");
        return;
      }
      blk_c1.push_back(sets.blocks.start[s]);
      blk_c2.push_back(sets.blocks.start[s + 1]);
      blk_cr.push_back(plan.options.vi_prune ? sets.sn_first_col[k]
                                             : blk_c1.back());
      blk_tail.push_back(sets.colcount[blk_c1.back()] -
                         (blk_c2.back() - blk_c1.back()));
    }
    if (match_array<index_t>(c, baked, "blkC1", blk_c1) &&
        match_array<index_t>(c, baked, "blkC2", blk_c2) &&
        match_array<index_t>(c, baked, "blkCr", blk_cr) &&
        match_array<index_t>(c, baked, "blkTail", blk_tail)) {
      match_enum(c, baked, "NBLOCKS", nblocks);
      match_enum(c, baked, "LOW_LEVEL", plan.options.low_level ? 1 : 0);
    }
  } else if (!plan.options.vi_prune) {
    // Naive form: no baked pattern at all, the runtime zero-skip loop over
    // every column.
    match_enum(c, baked, "N", n);
  } else {
    std::int64_t total_ops = 0;
    for (const index_t j : sets.reach)
      if (j >= 0 && j < n) total_ops += l.col_end(j) - l.col_begin(j);
    if (total_ops <= 1024 /* kStraightLineOps, plan_compiler.cpp */) {
      // Straight-line form: every operation fully unrolled — exactly one
      // pivot division per reach column, every subscript a literal.
      if (src.find("(void)Li;") == std::string::npos)
        c.fail("emitted.unroll-shape", -1,
               "straight-line form missing its no-index-loads marker");
      else if (static_cast<index_t>(count_occurrences(
                   src, "const double xj = x[")) !=
               static_cast<index_t>(sets.reach.size()))
        c.fail("emitted.unroll-count", -1,
               cat("emitted ", count_occurrences(src, "const double xj = x["),
                   " unrolled columns, reach has ", sets.reach.size()));
    } else {
      std::vector<index_t> col_begin, col_end;
      col_begin.reserve(sets.reach.size());
      for (const index_t j : sets.reach) {
        if (j < 0 || j >= n) {
          c.fail("emitted.missing-sets", j, "reach column out of range");
          return;
        }
        col_begin.push_back(l.col_begin(j));
        col_end.push_back(l.col_end(j));
      }
      if (match_array<index_t>(c, baked, "pruneSet", sets.reach) &&
          match_array<index_t>(c, baked, "colBegin", col_begin))
        match_array<index_t>(c, baked, "colEnd", col_end);
    }
  }

  check_literal_indices(c, src, n, l.nnz());
  check_fp_contract(c, src);
  check_cap_accounting(c, *plan.jit, src);
}

}  // namespace sympiler::verify::detail
