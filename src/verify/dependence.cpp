// kStructure + kDependence passes: inspection-set internal consistency,
// and legality of the flat/coarsened schedules against the dependence
// relation recomputed from those sets.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/supernodes.h"
#include "verify/internal.h"

namespace sympiler::verify::detail {

namespace {

/// xorshift-multiply mix of an index pair, for order-insensitive multiset
/// comparison of (row, column) sets via commutative accumulation. The
/// nonlinearity matters: a linear combination would miss entries swapped
/// across rows, the exact shape of a plausible transpose bug. One multiply
/// keeps the hot verification loops near memory speed.
std::uint64_t mix_pair(index_t i, index_t j) {
  std::uint64_t x =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i)) << 32) |
      static_cast<std::uint32_t>(j);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return x;
}

// The verifier's hot loops are branchless single-pass integer sweeps, but
// the 64-bit multiply in mix_pair only vectorizes from AVX2 up, and only
// AVX-512DQ (x86-64-v4) has a native 64-bit vector multiply (vpmullq) —
// worth another ~1.4x on the pattern hashes. Following the cpuid-gated
// ISA tiering of blas/bundle_scalar.cpp, clone just these helpers per
// ISA — ifunc dispatch picks the widest supported tier at load time and
// everything else stays baseline x86-64.
#if defined(__x86_64__)
#define SYMPILER_VERIFY_ISA \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v4")))
#else
#define SYMPILER_VERIFY_ISA
#endif

/// Count adjacent pairs of v that are non-ascending or reach `bound`.
/// Callers exempt the legal boundary pairs (column/panel/row starts) and
/// rescan with a per-element diagnostic only when the count is nonzero.
SYMPILER_VERIFY_ISA std::uint64_t pair_violations(
    const std::vector<index_t>& v, index_t bound) {
  std::uint64_t viol = 0;
  for (std::size_t p = 1; p < v.size(); ++p)
    viol += static_cast<std::uint64_t>(v[p] <= v[p - 1]) +
            static_cast<std::uint64_t>(v[p] >= bound);
  return viol;
}

/// Commutative pair hash over the off-diagonal (row, column) entries of a
/// shape-validated CSC pattern.
SYMPILER_VERIFY_ISA std::uint64_t hash_offdiag(
    const std::vector<index_t>& colptr, const std::vector<index_t>& rowind,
    index_t n) {
  std::uint64_t acc = 0;
  for (index_t j = 0; j < n; ++j)
    for (index_t p = colptr[j] + 1; p < colptr[j + 1]; ++p)
      acc += mix_pair(rowind[p], j);
  return acc;
}

/// Commutative pair hash over (row, column) row-pattern entries.
SYMPILER_VERIFY_ISA std::uint64_t hash_rowpat(
    const std::vector<index_t>& rp, const std::vector<index_t>& rows,
    index_t n) {
  std::uint64_t acc = 0;
  for (index_t i = 0; i < n; ++i)
    for (index_t p = rp[i]; p < rp[i + 1]; ++p)
      acc += mix_pair(i, rows[p]);
  return acc;
}

/// Validate a SupernodePartition tiles [0, n) and that col_to_super is the
/// inverse of start (valid() checks only the tiling).
bool check_partition(Checker& c, const SupernodePartition& sn, index_t n,
                     const char* check) {
  if (sn.start.empty() || sn.start.front() != 0 || sn.start.back() != n ||
      static_cast<index_t>(sn.col_to_super.size()) != n)
    return c.fail(check, -1, cat("partition must tile [0, ", n, ")"));
  for (index_t s = 0; s + 1 < static_cast<index_t>(sn.start.size()); ++s) {
    if (sn.start[s + 1] <= sn.start[s])
      return c.fail(check, s, "empty or decreasing supernode");
    for (index_t j = sn.start[s]; j < sn.start[s + 1]; ++j)
      if (sn.col_to_super[j] != s)
        return c.fail(check, j,
                      cat("col_to_super[", j, "] = ", sn.col_to_super[j],
                          ", owning supernode is ", s));
  }
  return true;
}

/// Validate the CSC invariants of a factor pattern: monotone colptr,
/// diagonal-first sorted in-bounds columns. When `offdiag_hash` is given,
/// also compute the commutative pair hash of every off-diagonal entry (for
/// the rowpat transpose check). Pass `check_sorted = false` when a later
/// check compares every column against an independently-validated sorted
/// row list (the supernodal panel compare), which subsumes the sweep.
bool check_lower_pattern(Checker& c, const CscMatrix& lp, const char* check,
                         std::uint64_t* offdiag_hash = nullptr,
                         bool check_sorted = true) {
  const index_t n = lp.cols();
  if (static_cast<index_t>(lp.colptr.size()) != n + 1 ||
      lp.colptr.front() != 0 ||
      static_cast<index_t>(lp.rowind.size()) != lp.colptr.back())
    return c.fail(check, -1, "colptr/rowind sizes inconsistent");
  for (index_t j = 0; j < n; ++j) {
    const index_t b = lp.colptr[j], e = lp.colptr[j + 1];
    if (e < b) return c.fail(check, j, "colptr decreases");
    if (e == b || lp.rowind[b] != j)
      return c.fail(check, j, "diagonal missing or not first in column");
  }
  const auto& ri = lp.rowind;
  if (check_sorted) {
    // Two-tier sortedness: the branchless sweep with the n-1
    // column-boundary pairs exempted; the per-element scan with a useful
    // message runs only when the sweep says something is wrong. A negative
    // interior entry is always <= its predecessor somewhere down the chain
    // to the (validated) diagonal, so the two sweep comparisons cover
    // bounds as well.
    std::uint64_t viol = pair_violations(ri, n);
    for (index_t j = 1; j < n; ++j) {
      const index_t b = lp.colptr[j];
      viol -= static_cast<std::uint64_t>(ri[b] <= ri[b - 1]);
    }
    if (viol != 0) {
      for (index_t j = 0; j < n; ++j)
        for (index_t p = lp.colptr[j] + 1; p < lp.colptr[j + 1]; ++p)
          if (ri[p] <= ri[p - 1] || ri[p] >= n)
            return c.fail(
                check, j,
                cat("row indices not strictly increasing in-bounds ",
                    "at position ", p));
      return c.fail(check, -1,
                    "row indices not strictly increasing in-bounds");
    }
  }
  if (offdiag_hash != nullptr) *offdiag_hash = hash_offdiag(lp.colptr, ri, n);
  return true;
}

/// Internal consistency of a SupernodalLayout (partition, row lists, panel
/// offsets, column counts). Does not touch the L pattern.
/// `panels_bound_to_l` marks that the caller will compare every panel's
/// row list against the verified L pattern column-by-column (the
/// supernode-invariant check). That compare, together with L's
/// diagonal-first invariant, already implies rows >= width and that the
/// first width(s) panel rows are the own columns, so those per-supernode
/// checks are skipped here — they are the layout pass's hottest loop on
/// meshes with thousands of narrow supernodes.
bool check_layout(Checker& c, const solvers::SupernodalLayout& layout,
                  index_t n, bool panels_bound_to_l) {
  if (layout.n != n)
    return c.fail("structure.layout", -1,
                  cat("layout order ", layout.n, " != pattern order ", n));
  if (!check_partition(c, layout.sn, n, "structure.layout")) return false;
  const index_t nsuper = layout.sn.count();
  if (static_cast<index_t>(layout.srow_ptr.size()) != nsuper + 1 ||
      layout.srow_ptr.front() != 0 ||
      static_cast<index_t>(layout.srows.size()) != layout.srow_ptr.back() ||
      static_cast<index_t>(layout.panel_ptr.size()) != nsuper + 1 ||
      layout.panel_ptr.front() != 0 ||
      static_cast<index_t>(layout.colcount.size()) != n)
    return c.fail("structure.layout", -1,
                  "srow_ptr/srows/panel_ptr/colcount sizes inconsistent");
  for (index_t s = 0; s < nsuper; ++s) {
    if (layout.srow_ptr[s + 1] < layout.srow_ptr[s])
      return c.fail("structure.layout", s, "srow_ptr decreases");
    const index_t rows = layout.srow_ptr[s + 1] - layout.srow_ptr[s];
    const index_t w = layout.width(s);
    if (!panels_bound_to_l) {
      if (rows < w)
        return c.fail("structure.layout", s,
                      cat("panel has ", rows, " rows < width ", w));
      const index_t base = layout.srow_ptr[s];
      for (index_t u = 0; u < w; ++u)
        if (layout.srows[base + u] != layout.sn.start[s] + u)
          return c.fail("structure.layout", s,
                        "first width(s) panel rows must be the own columns");
    }
    if (layout.colcount[layout.sn.start[s]] != rows)
      return c.fail("structure.layout", s,
                    cat("colcount[", layout.sn.start[s], "] = ",
                        layout.colcount[layout.sn.start[s]],
                        ", panel has ", rows, " rows"));
    if (layout.panel_ptr[s + 1] - layout.panel_ptr[s] !=
        static_cast<std::int64_t>(rows) * w)
      return c.fail("structure.layout", s,
                    cat("panel extent != nrows * width (", rows, " x ", w,
                        ")"));
  }
  // Two-tier tail check mirroring check_lower_pattern: branchless
  // ascending/bounds sweep over all panel rows with the panel-boundary
  // pairs exempted; the per-row diagnostic scan runs only on violation.
  // The first rows of every panel are its own columns (verified above,
  // or pinned through L's diagonal-first invariant by the caller's panel
  // compare when panels_bound_to_l), so they anchor bounds from below.
  const auto& sr = layout.srows;
  std::uint64_t viol = sr.empty() ? 0 : pair_violations(sr, n);
  for (index_t s = 1; s < nsuper; ++s) {
    const index_t b = layout.srow_ptr[s];
    viol -= static_cast<std::uint64_t>(sr[b] <= sr[b - 1]);
  }
  if (viol != 0) {
    for (index_t s = 0; s < nsuper; ++s) {
      const index_t base = layout.srow_ptr[s];
      const index_t rows = layout.srow_ptr[s + 1] - base;
      for (index_t u = 0; u < rows; ++u) {
        const index_t r = sr[base + u];
        if (r < 0 || r >= n)
          return c.fail("structure.layout", s,
                        cat("panel row ", r, " out of range"));
        if (u > 0 && r <= sr[base + u - 1])
          return c.fail("structure.layout", s,
                        "panel rows not strictly increasing");
      }
    }
    return c.fail("structure.layout", -1, "panel rows inconsistent");
  }
  return true;
}

/// Static update schedule points at real descendants and real target
/// columns, sources strictly ascending per target.
bool check_updates(Checker& c, const solvers::SupernodalLayout& layout,
                   const solvers::UpdateLists& updates) {
  const index_t nsuper = layout.nsuper();
  if (static_cast<index_t>(updates.ptr.size()) != nsuper + 1 ||
      updates.ptr.front() != 0 ||
      static_cast<index_t>(updates.refs.size()) != updates.ptr.back())
    return c.fail("structure.updates", -1, "ptr/refs sizes inconsistent");
  for (index_t s = 0; s < nsuper; ++s) {
    if (updates.ptr[s + 1] < updates.ptr[s])
      return c.fail("structure.updates", s, "ptr decreases");
    index_t prev_d = -1;
    const index_t c1 = layout.sn.start[s];
    const index_t c2 = layout.sn.start[s + 1];
    for (index_t q = updates.ptr[s]; q < updates.ptr[s + 1]; ++q) {
      const solvers::UpdateRef& ref = updates.refs[q];
      if (ref.d < 0 || ref.d >= s)
        return c.fail("structure.updates", s,
                      cat("descendant ", ref.d, " is not an earlier ",
                          "supernode"));
      if (ref.d <= prev_d)
        return c.fail("structure.updates", s,
                      cat("descendants not strictly ascending (", prev_d,
                          " then ", ref.d, ")"));
      prev_d = ref.d;
      const index_t dw = layout.width(ref.d);
      const index_t drows = layout.nrows(ref.d);
      if (ref.p1 < dw || ref.p2 < ref.p1 || ref.p2 > drows)
        return c.fail("structure.updates", s,
                      cat("row window [", ref.p1, ", ", ref.p2,
                          ") outside descendant ", ref.d, "'s tail"));
      // Panel rows are strictly ascending (check_layout runs first), so
      // window containment in the target's columns reduces to the two
      // endpoints — O(1) per ref instead of O(window).
      const index_t dbase = layout.srow_ptr[ref.d];
      if (ref.p2 > ref.p1 &&
          (layout.srows[dbase + ref.p1] < c1 ||
           layout.srows[dbase + ref.p2 - 1] >= c2))
        return c.fail("structure.updates", s,
                      cat("descendant ", ref.d, " rows [",
                          layout.srows[dbase + ref.p1], ", ",
                          layout.srows[dbase + ref.p2 - 1],
                          "] outside target columns [", c1, ", ", c2, ")"));
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------- Cholesky

void check_structure(Report& report, const core::CholeskyPlan& plan) {
  Checker c(report, Pass::kStructure);
  const CscMatrix& lp = plan.sets.sym.l_pattern;
  const index_t n = lp.cols();

  c.note();
  std::uint64_t offdiag_hash = 0;
  const bool has_layout = plan.sets.layout.n != 0;
  const bool lp_ok = check_lower_pattern(
      c, lp, "structure.l-pattern",
      plan.sets.rowpat_ptr.empty() ? nullptr : &offdiag_hash,
      /*check_sorted=*/!has_layout);
  c.note();
  if (lp_ok && static_cast<index_t>(plan.sets.sym.colcount.size()) == n) {
    for (index_t j = 0; j < n; ++j) {
      if (plan.sets.sym.colcount[j] != lp.colptr[j + 1] - lp.colptr[j]) {
        c.fail("structure.colcount", j,
               cat("colcount ", plan.sets.sym.colcount[j],
                   " != pattern column extent ",
                   lp.colptr[j + 1] - lp.colptr[j]));
        break;
      }
    }
  }

  if (!plan.sets.blocks.start.empty()) {
    c.note();
    check_partition(c, plan.sets.blocks, n, "structure.blocks");
  }

  // Simplicial prune-sets: rowpat must be exactly the off-diagonal CSR
  // transpose of the L pattern, rows in ascending-column (elimination)
  // order. Checked with streaming passes only (a literal cursor replay is
  // one random access per nonzero — measurably the verifier's hottest
  // loop on large factors): per-row entries strictly ascending in [0, i),
  // total count equal to the off-diagonal count, and a commutative
  // per-pair hash over both sides equal. Count + multiset equality +
  // per-row ordering pin the exact CSR transpose.
  if (!plan.sets.rowpat_ptr.empty() && lp_ok) {
    c.note();
    const auto& rp = plan.sets.rowpat_ptr;
    const auto& rows = plan.sets.rowpat;
    if (static_cast<index_t>(rp.size()) != n + 1 || rp.front() != 0 ||
        static_cast<index_t>(rows.size()) != rp.back()) {
      c.fail("structure.rowpat", -1, "rowpat_ptr/rowpat sizes inconsistent");
    } else if (rp.back() != lp.colptr.back() - n) {
      c.fail("structure.rowpat", -1,
             cat("rowpat lists ", rp.back(), " updates, the pattern has ",
                 lp.colptr.back() - n, " off-diagonal entries"));
    } else {
      bool ok = true;
      for (index_t i = 0; i < n && ok; ++i)
        if (rp[i + 1] < rp[i])
          ok = c.fail("structure.rowpat", i, "rowpat_ptr decreases");
      if (ok) {
        // Ascending/range two-tier: the global pair sweep plus one O(1)
        // fix-up per row (exempt the row-boundary pair; bound the first
        // entry below by 0 and the last by i — with interior ascending
        // that brackets the whole row into [0, i)).
        std::uint64_t viol = rows.empty() ? 0 : pair_violations(rows, n);
        for (index_t i = 0; i < n; ++i) {
          const index_t b = rp[i], e = rp[i + 1];
          if (b == e) continue;
          if (b > 0)
            viol -= static_cast<std::uint64_t>(rows[b] <= rows[b - 1]);
          viol += static_cast<std::uint64_t>(rows[b] < 0) +
                  static_cast<std::uint64_t>(rows[e - 1] >= i);
        }
        if (viol != 0) {
          for (index_t i = 0; i < n && ok; ++i) {
            index_t prev = -1;
            for (index_t p = rp[i]; p < rp[i + 1] && ok; ++p) {
              const index_t j = rows[p];
              if (j <= prev || j >= i)
                ok = c.fail("structure.rowpat", i,
                            cat("row pattern of row ", i, " entry ", j,
                                " not strictly ascending in [0, ", i, ")"));
              prev = j;
            }
          }
          if (ok)
            ok = c.fail("structure.rowpat", -1,
                        "row pattern entries inconsistent");
        }
        if (ok && hash_rowpat(rp, rows, n) != offdiag_hash)
          c.fail("structure.rowpat", -1,
                 "row patterns are not the transpose of the L pattern");
      }
    }
  }

  bool layout_ok = false;
  if (has_layout) {
    c.note();
    layout_ok = check_layout(c, plan.sets.layout, n,
                             /*panels_bound_to_l=*/lp_ok);
    if (layout_ok && lp_ok) {
      // Supernodal invariant, bound to the layout: every column of a
      // supernode must equal the suffix of its panel's row list starting
      // at its own diagonal. This subsumes supernodes_consistent (dense
      // diagonal block + shared tails) and additionally pins the srows
      // content to the L pattern, all as contiguous range compares.
      c.note();
      const solvers::SupernodalLayout& layout = plan.sets.layout;
      bool sn_ok = true;
      for (index_t s = 0; s < layout.nsuper() && sn_ok; ++s) {
        const index_t c1 = layout.sn.start[s];
        const index_t c2 = layout.sn.start[s + 1];
        const index_t base = layout.srow_ptr[s];
        const index_t rows = layout.srow_ptr[s + 1] - base;
        for (index_t j = c1; j < c2 && sn_ok; ++j) {
          const index_t off = j - c1;
          const index_t b = lp.colptr[j];
          if (lp.colptr[j + 1] - b != rows - off ||
              !std::equal(lp.rowind.begin() + b,
                          lp.rowind.begin() + lp.colptr[j + 1],
                          layout.srows.begin() + base + off))
            sn_ok = c.fail(
                "structure.supernode-invariant", j,
                cat("column ", j, " pattern is not the suffix of supernode ",
                    s, "'s panel rows"));
        }
      }
    }
  }
  if (layout_ok && !plan.sets.updates.ptr.empty()) {
    c.note();
    check_updates(c, plan.sets.layout, plan.sets.updates);
  }
}

void check_dependence(Report& report, const core::CholeskyPlan& plan) {
  Checker c(report, Pass::kDependence);
  if (plan.schedule.empty() && plan.agg.empty()) return;  // sequential plan

  const solvers::SupernodalLayout& layout = plan.sets.layout;
  c.note();
  if (layout.n == 0 || plan.sets.updates.ptr.empty()) {
    c.fail("dep.missing-sets", -1,
           "scheduled Cholesky plan carries no layout/update sets");
    return;
  }
  const index_t nsuper = layout.nsuper();
  if (static_cast<index_t>(plan.sets.updates.ptr.size()) != nsuper + 1 ||
      static_cast<index_t>(plan.sets.updates.refs.size()) !=
          plan.sets.updates.ptr.back()) {
    c.fail("dep.missing-sets", -1, "update lists inconsistent with layout");
    return;
  }

  const ItemOrder flat = check_flat_schedule(c, plan.schedule, nsuper);
  ItemOrder agg;
  const bool has_agg = !plan.agg.empty();
  if (has_agg) {
    agg = check_agg_schedule(c, plan.agg, nsuper);
    c.note();
    if (plan.agg.bundles() > 0)
      c.fail("agg.bundle-unsupported", -1,
             "supernodal coarsening is chain-only; no bundle kernels exist "
             "for supernode panels");
  }

  // Every update edge d -> s must complete strictly before its target
  // starts, under the flat barriers and under the coarsened ones.
  const auto check_edges = [&](const ItemOrder& order, const char* check) {
    c.note();
    for (index_t s = 0; s < nsuper; ++s) {
      for (index_t q = plan.sets.updates.ptr[s];
           q < plan.sets.updates.ptr[s + 1]; ++q) {
        const index_t d = plan.sets.updates.refs[q].d;
        if (d < 0 || d >= nsuper) continue;  // structure pass reports this
        if (!order.before(d, s)) {
          c.fail(check, s,
                 cat("descendant ", d, " (level ", order.level[d],
                     ") does not complete before target ", s, " (level ",
                     order.level[s], ")"));
          return;
        }
      }
    }
  };
  // Converse direction, from the layout instead of the update lists: the
  // owner of every below-diagonal panel row consumes s's tail, so it must
  // start strictly after s — catches a deleted update ref as well as a
  // mis-levelled supernode.
  const auto check_row_owners = [&](const ItemOrder& order,
                                    const char* check) {
    c.note();
    for (index_t s = 0; s < nsuper; ++s) {
      const index_t base = layout.srow_ptr[s];
      const index_t w = layout.width(s);
      const index_t rows = layout.nrows(s);
      for (index_t u = w; u < rows; ++u) {
        const index_t r = layout.srows[base + u];
        if (r < 0 || r >= layout.n) continue;  // structure pass reports this
        const index_t owner = layout.sn.col_to_super[r];
        if (owner < 0 || owner >= nsuper || owner == s) continue;
        if (!order.before(s, owner)) {
          c.fail(check, s,
                 cat("tail row ", r, "'s owner ", owner, " (level ",
                     order.level[owner], ") does not start after producer ",
                     s, " (level ", order.level[s], ")"));
          return;
        }
      }
    }
  };

  if (flat.usable) {
    check_edges(flat, "dep.update-edge");
    check_row_owners(flat, "dep.row-owner");
  }
  if (has_agg && agg.usable) {
    check_edges(agg, "dep.update-edge-agg");
    check_row_owners(agg, "dep.row-owner-agg");
    if (flat.usable) {
      // Chain fusion preserves program order: members occupy consecutive
      // flat levels, so running them back-to-back on one thread replays
      // the barrier sequence they were mined from.
      c.note();
      for (index_t t = 0; t < plan.agg.tasks(); ++t) {
        if (t < static_cast<index_t>(plan.agg.bundle.size()) &&
            plan.agg.bundle[t] != 0)
          continue;
        bool bad = false;
        for (index_t q = plan.agg.task_ptr[t] + 1;
             q < plan.agg.task_ptr[t + 1]; ++q) {
          const index_t a = plan.agg.items[q - 1];
          const index_t b = plan.agg.items[q];
          if (flat.level[b] != flat.level[a] + 1) {
            c.fail("agg.chain-consecutive", t,
                   cat("chain jumps flat levels ", flat.level[a], " -> ",
                       flat.level[b], " between items ", a, " and ", b));
            bad = true;
            break;
          }
        }
        if (bad) break;
      }
    }
  }
}

// ---------------------------------------------------------------- TriSolve

void check_structure(Report& report, const core::TriSolvePlan& plan,
                     const CscMatrix& l, std::span<const index_t> beta) {
  Checker c(report, Pass::kStructure);
  const index_t n = l.cols();
  const auto& sets = plan.sets;

  // Closure of beta under the DG_L successor relation — the reference the
  // reach and supernode prune-sets are checked against.
  std::vector<std::uint8_t> closed(static_cast<std::size_t>(n), 0);
  index_t closure_count = 0;
  {
    std::vector<index_t> stack;
    stack.reserve(beta.size());
    for (const index_t b : beta)
      if (b >= 0 && b < n) stack.push_back(b);
    while (!stack.empty()) {
      const index_t j = stack.back();
      stack.pop_back();
      if (closed[j]) continue;
      closed[j] = 1;
      ++closure_count;
      for (index_t p = l.col_begin(j); p < l.col_end(j); ++p) {
        const index_t i = l.rowind[p];
        if (i > j && i < n && !closed[i]) stack.push_back(i);
      }
    }
  }

  if (!sets.reach.empty()) {
    c.note();
    std::vector<index_t> pos(static_cast<std::size_t>(n), -1);
    bool ok = true;
    for (index_t k = 0; k < static_cast<index_t>(sets.reach.size()); ++k) {
      const index_t j = sets.reach[k];
      if (j < 0 || j >= n)
        ok = c.fail("structure.reach", j, "reach column out of range");
      else if (pos[j] >= 0)
        ok = c.fail("structure.reach", j,
                    cat("column appears twice (positions ", pos[j], " and ",
                        k, ")"));
      else
        pos[j] = k;
      if (!ok) break;
    }
    if (ok) {
      // Topological and closed: every DG_L successor of a reach member is
      // itself in the reach, at a strictly later position.
      c.note();
      for (index_t k = 0; k < static_cast<index_t>(sets.reach.size()) && ok;
           ++k) {
        const index_t j = sets.reach[k];
        for (index_t p = l.col_begin(j); p < l.col_end(j) && ok; ++p) {
          const index_t i = l.rowind[p];
          if (i <= j || i >= n) continue;
          if (pos[i] < 0)
            ok = c.fail("structure.reach-closure", j,
                        cat("successor ", i, " of reach column ", j,
                            " is not in the reach"));
          else if (pos[i] <= k)
            ok = c.fail("structure.reach-topo", j,
                        cat("successor ", i, " (position ", pos[i],
                            ") scheduled before column ", j, " (position ",
                            k, ")"));
        }
      }
      // Exactly Reach_L(beta): beta is covered, and nothing outside the
      // closure rides along.
      c.note();
      for (const index_t b : beta) {
        if (b >= 0 && b < n && pos[b] < 0) {
          ok = c.fail("structure.reach-beta", b,
                      cat("RHS pattern column ", b, " missing from reach"));
          break;
        }
      }
      if (ok &&
          static_cast<index_t>(sets.reach.size()) != closure_count)
        c.fail("structure.reach-minimal", -1,
               cat("reach holds ", sets.reach.size(), " columns, Reach_L(",
                   "beta) has ", closure_count));
    }
  }

  const bool has_blocks = !sets.blocks.start.empty();
  bool blocks_ok = false;
  if (has_blocks) {
    c.note();
    blocks_ok = check_partition(c, sets.blocks, n, "structure.blocks");
    if (blocks_ok && !sets.colcount.empty()) {
      c.note();
      if (static_cast<index_t>(sets.colcount.size()) != n) {
        c.fail("structure.colcount", -1, "colcount size != n");
      } else {
        for (index_t j = 0; j < n; ++j) {
          if (sets.colcount[j] != l.col_end(j) - l.col_begin(j)) {
            c.fail("structure.colcount", j,
                   cat("colcount ", sets.colcount[j], " != column extent ",
                       l.col_end(j) - l.col_begin(j)));
            break;
          }
        }
      }
    }
    if (blocks_ok && plan.path == core::ExecutionPath::BlockedTriSolve) {
      c.note();
      if (!supernodes_consistent(sets.blocks, l))
        c.fail("structure.supernode-invariant", -1,
               "block-set violates the supernodal invariant against L");
    }
  }

  if (!sets.sn_reach.empty() && blocks_ok) {
    c.note();
    const index_t nsuper = sets.blocks.count();
    bool ok = true;
    if (sets.sn_first_col.size() != sets.sn_reach.size())
      ok = c.fail("structure.sn-reach", -1,
                  "sn_reach/sn_first_col sizes differ");
    for (index_t k = 0; k < static_cast<index_t>(sets.sn_reach.size()) && ok;
         ++k) {
      const index_t s = sets.sn_reach[k];
      if (s < 0 || s >= nsuper)
        ok = c.fail("structure.sn-reach", s, "supernode id out of range");
      else if (k > 0 && s <= sets.sn_reach[k - 1])
        ok = c.fail("structure.sn-reach", s,
                    "supernode prune-set not strictly ascending");
      else if (sets.sn_first_col[k] < sets.blocks.start[s] ||
               sets.sn_first_col[k] >= sets.blocks.start[s + 1])
        ok = c.fail("structure.sn-reach", s,
                    cat("first reached column ", sets.sn_first_col[k],
                        " outside supernode's columns"));
    }
  }

  // The blocked pruned executor visits exactly the supernode suffixes in
  // sn_reach — every column of Reach_L(beta) must be covered or the solve
  // silently skips updates.
  if (plan.path == core::ExecutionPath::BlockedTriSolve &&
      plan.options.vi_prune && blocks_ok) {
    c.note();
    for (index_t j = 0; j < n; ++j) {
      if (!closed[j]) continue;
      const index_t s = sets.blocks.col_to_super[j];
      const auto it =
          std::lower_bound(sets.sn_reach.begin(), sets.sn_reach.end(), s);
      const bool covered =
          it != sets.sn_reach.end() && *it == s &&
          sets.sn_first_col[it - sets.sn_reach.begin()] <= j;
      if (!covered) {
        c.fail("structure.snreach-coverage", j,
               cat("column ", j, " of Reach_L(beta) not covered by the ",
                   "supernode prune-set"));
        break;
      }
    }
  }
}

void check_dependence(Report& report, const core::TriSolvePlan& plan,
                      const CscMatrix& l) {
  Checker c(report, Pass::kDependence);
  if (plan.schedule.empty() && plan.agg.empty()) return;

  const index_t n = l.cols();
  const ItemOrder flat = check_flat_schedule(c, plan.schedule, n);
  ItemOrder agg;
  const bool has_agg = !plan.agg.empty();
  if (has_agg) agg = check_agg_schedule(c, plan.agg, n);

  // Every DG_L edge j -> i (L(i, j) != 0, i > j) is a dependence of the
  // forward solve: x[j] must be final before column j updates x[i].
  const auto check_edges = [&](const ItemOrder& order, const char* check) {
    c.note();
    for (index_t j = 0; j < n; ++j) {
      for (index_t p = l.col_begin(j); p < l.col_end(j); ++p) {
        const index_t i = l.rowind[p];
        if (i <= j || i >= n) continue;
        if (!order.before(j, i)) {
          c.fail(check, i,
                 cat("column ", j, " (level ", order.level[j],
                     ") does not complete before dependent column ", i,
                     " (level ", order.level[i], ")"));
          return;
        }
      }
    }
  };

  if (flat.usable) check_edges(flat, "dep.edge");
  if (has_agg && agg.usable) {
    check_edges(agg, "dep.edge-agg");

    if (flat.usable) {
      c.note();
      bool clean = true;
      for (index_t t = 0; t < plan.agg.tasks() && clean; ++t) {
        const bool bundled = plan.agg.bundle[t] != 0;
        for (index_t q = plan.agg.task_ptr[t] + 1;
             q < plan.agg.task_ptr[t + 1] && clean; ++q) {
          const index_t a = plan.agg.items[q - 1];
          const index_t b = plan.agg.items[q];
          if (bundled && flat.level[b] != flat.level[a])
            clean = c.fail("agg.bundle-level", t,
                           cat("bundle lanes ", a, " and ", b,
                               " sit on different flat levels (", flat.level[a],
                               " vs ", flat.level[b], ")"));
          else if (!bundled && flat.level[b] != flat.level[a] + 1)
            clean = c.fail("agg.chain-consecutive", t,
                           cat("chain jumps flat levels ", flat.level[a],
                               " -> ", flat.level[b], " between columns ", a,
                               " and ", b));
        }
      }
    }

    // Bundle lanes run lock-step: they must be pairwise independent (no
    // DG_L edge between lanes) and shape-homogeneous (equal incoming-term
    // and update counts — the bundle kernels' layout contract).
    c.note();
    std::vector<index_t> indeg(static_cast<std::size_t>(n), 0);
    for (index_t j = 0; j < n; ++j)
      for (index_t p = l.col_begin(j); p < l.col_end(j); ++p) {
        const index_t i = l.rowind[p];
        if (i > j && i < n) ++indeg[i];
      }
    std::vector<index_t> member_of(static_cast<std::size_t>(n), -1);
    bool clean = true;
    for (index_t t = 0; t < plan.agg.tasks() && clean; ++t) {
      if (plan.agg.bundle[t] == 0) continue;
      const index_t qb = plan.agg.task_ptr[t], qe = plan.agg.task_ptr[t + 1];
      for (index_t q = qb; q < qe; ++q) {
        const index_t j = plan.agg.items[q];
        if (j >= 0 && j < n) member_of[j] = t;
      }
      index_t in0 = -1, out0 = -1;
      for (index_t q = qb; q < qe && clean; ++q) {
        const index_t j = plan.agg.items[q];
        if (j < 0 || j >= n) continue;
        const index_t out = l.col_end(j) - l.col_begin(j) - 1;
        if (q == qb) {
          in0 = indeg[j];
          out0 = out;
        } else if (indeg[j] != in0 || out != out0) {
          clean = c.fail("agg.bundle-shape", t,
                         cat("lane ", j, " shape (", indeg[j], " in, ", out,
                             " out) differs from lane ", plan.agg.items[qb],
                             " (", in0, " in, ", out0, " out)"));
        }
        for (index_t p = l.col_begin(j); p < l.col_end(j) && clean; ++p) {
          const index_t i = l.rowind[p];
          if (i > j && i < n && member_of[i] == t)
            clean = c.fail("agg.bundle-dependent", t,
                           cat("lane ", i, " depends on lane ", j,
                               " within one lock-step bundle"));
        }
      }
    }
  }
}

}  // namespace sympiler::verify::detail
