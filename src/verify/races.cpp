// kRaces pass: symbolic happens-before replay of the level-set
// interpreters over the UpdateSlotMap.
//
// The executors' determinism contract (parallel/levelset.h) rides on four
// properties of the slot map, all statically decidable:
//  * every compact source position maps into the slot run of the row it
//    updates (a producer can never scribble on another row's terms);
//  * each slot is written exactly once per sweep (write-once — two
//    producers sharing a slot is the data race the map exists to prevent);
//  * within each row, slots enumerate the producers in the serial
//    executor's application order, so the consumer's ascending fold
//    replays the serial subtraction sequence bit for bit;
//  * every producer's barrier level strictly precedes its consumer's
//    (happens-before: no slot is read before the level that publishes it).
//
// The first three fall out of one cursor simulation: walk the producers in
// serial order, and each emitted slot id must equal the target row's next
// cursor position. The fourth replays the schedule coordinates over the
// same producer/consumer pairs.
#include <vector>

#include "verify/internal.h"

namespace sympiler::verify::detail {

namespace {

/// Schedule coordinates for the happens-before replay, validated into a
/// scratch report: a structurally broken schedule is the dependence pass's
/// finding, not a second copy here — the replay simply skips.
ItemOrder quiet_flat(const parallel::LevelSchedule& schedule, index_t count) {
  Report scratch;
  Checker sc(scratch, Pass::kRaces);
  return check_flat_schedule(sc, schedule, count);
}

ItemOrder quiet_agg(const parallel::AggregateSchedule& agg, index_t count) {
  Report scratch;
  Checker sc(scratch, Pass::kRaces);
  return check_agg_schedule(sc, agg, count);
}

}  // namespace

// ---------------------------------------------------------------- Cholesky

void check_races(Report& report, const core::CholeskyPlan& plan) {
  Checker c(report, Pass::kRaces);
  const parallel::UpdateSlotMap& m = plan.solve_update_map;
  if (m.empty()) return;  // sequential plan: no shared terms buffer

  const solvers::SupernodalLayout& layout = plan.sets.layout;
  c.note();
  if (layout.n == 0 ||
      static_cast<index_t>(layout.srow_ptr.size()) != layout.nsuper() + 1 ||
      static_cast<index_t>(layout.srows.size()) != layout.srow_ptr.back()) {
    c.fail("races.missing-layout", -1,
           "slot map present but layout is absent or inconsistent");
    return;
  }
  const index_t n = layout.n;
  const index_t nsuper = layout.nsuper();
  // One term per below-diagonal panel row: total panel rows minus the n
  // own-column rows.
  const index_t expected = layout.srow_ptr.back() - n;
  if (static_cast<index_t>(m.row_ptr.size()) != n + 1 ||
      m.row_ptr.front() != 0 || m.row_ptr.back() != expected ||
      static_cast<index_t>(m.slot.size()) != expected || expected < 0) {
    c.fail("races.map-shape", -1,
           cat("slot map must hold exactly one slot per below-diagonal ",
               "panel row (", expected, ")"));
    return;
  }
  for (index_t r = 0; r < n; ++r) {
    if (m.row_ptr[r + 1] < m.row_ptr[r]) {
      c.fail("races.map-shape", r, "row_ptr decreases");
      return;
    }
  }

  // Cursor simulation over the serial producer order (ascending supernode,
  // the fold order the parallel batch solve replays).
  c.note();
  std::vector<index_t> cursor(m.row_ptr.begin(), m.row_ptr.end() - 1);
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(expected), 0);
  for (index_t s = 0; s < nsuper; ++s) {
    const index_t base = layout.srow_ptr[s];
    const index_t w = layout.width(s);
    const index_t rows = layout.nrows(s);
    for (index_t u = w; u < rows; ++u) {
      const index_t r = layout.srows[base + u];
      if (r < 0 || r >= n) return;  // structure pass reports this
      const index_t ci = base + u - layout.sn.start[s] - w;
      if (ci < 0 || ci >= expected) {
        c.fail("races.map-shape", s,
               cat("compact index ", ci, " of supernode ", s,
                   " outside the slot array"));
        return;
      }
      const index_t sid = m.slot[ci];
      if (sid < m.row_ptr[r] || sid >= m.row_ptr[r + 1]) {
        c.fail("races.slot-row", r,
               cat("supernode ", s, "'s term for row ", r, " lands in slot ",
                   sid, ", outside the row's run [", m.row_ptr[r], ", ",
                   m.row_ptr[r + 1], ")"));
        return;
      }
      if (seen[sid]) {
        c.fail("races.write-once", r,
               cat("slot ", sid, " written twice — two producers share a ",
                   "term (cross-task data race)"));
        return;
      }
      seen[sid] = 1;
      if (sid != cursor[r]) {
        c.fail("races.fold-order", r,
               cat("supernode ", s, " folds into row ", r, " at slot ", sid,
                   ", serial order expects ", cursor[r],
                   " — parallel fold would diverge from the serial ",
                   "subtraction sequence"));
        return;
      }
      ++cursor[r];
    }
  }
  c.note();
  for (index_t r = 0; r < n; ++r) {
    if (cursor[r] != m.row_ptr[r + 1]) {
      c.fail("races.coverage", r,
             cat("row ", r, " folds ", m.row_ptr[r + 1] - cursor[r],
                 " slots no producer ever writes"));
      return;
    }
  }

  // Happens-before: the supernode owning row r reads r's slots when it
  // factors, so every producer must sit at a strictly earlier barrier (or
  // earlier in the same sequential chain).
  const auto check_hb = [&](const ItemOrder& order, const char* check) {
    if (!order.usable) return;
    c.note();
    for (index_t s = 0; s < nsuper; ++s) {
      const index_t base = layout.srow_ptr[s];
      const index_t w = layout.width(s);
      const index_t rows = layout.nrows(s);
      for (index_t u = w; u < rows; ++u) {
        const index_t r = layout.srows[base + u];
        if (r < 0 || r >= n) return;
        const index_t owner = layout.sn.col_to_super[r];
        if (owner < 0 || owner >= nsuper || owner == s) continue;
        if (!order.before(s, owner)) {
          c.fail(check, r,
                 cat("row ", r, "'s slot is written by supernode ", s,
                     " (level ", order.level[s], ") but read by supernode ",
                     owner, " (level ", order.level[owner],
                     ") with no barrier between them"));
          return;
        }
      }
    }
  };
  // Intra-chain sequencing (ROADMAP verify follow-up 4): a producer and
  // its consumer may legally share one aggregate *chain* task — the chain
  // runs its members sequentially, so the dependence is honored by member
  // order instead of a barrier. Check that sequencing as its own family:
  // same-task pairs must sit in an unbundled task with the producer at a
  // strictly earlier member position. The generic happens-before check
  // subsumes the pass/fail, but this one names the chain task and member
  // positions — the coarsener bug class (PR 7) the flattened diagnosis
  // used to hide.
  const auto check_chain_order = [&](const ItemOrder& order) {
    if (!order.usable) return;
    c.note();
    for (index_t s = 0; s < nsuper; ++s) {
      const index_t base = layout.srow_ptr[s];
      const index_t w = layout.width(s);
      const index_t rows = layout.nrows(s);
      for (index_t u = w; u < rows; ++u) {
        const index_t r = layout.srows[base + u];
        if (r < 0 || r >= n) return;
        const index_t owner = layout.sn.col_to_super[r];
        if (owner < 0 || owner >= nsuper || owner == s) continue;
        if (order.task[s] != order.task[owner]) continue;
        if (order.bundled[s] != 0) {
          c.fail("races.chain-order", r,
                 cat("supernode ", s, " and its consumer ", owner,
                     " share lock-step bundle task ", order.task[s],
                     " — bundle lanes cannot sequence a dependence"));
          return;
        }
        if (order.pos[s] >= order.pos[owner]) {
          c.fail("races.chain-order", r,
                 cat("chain task ", order.task[s], " runs consumer supernode ",
                     owner, " (member ", order.pos[owner],
                     ") before its producer ", s, " (member ", order.pos[s],
                     ")"));
          return;
        }
      }
    }
  };
  if (!plan.schedule.empty())
    check_hb(quiet_flat(plan.schedule, nsuper), "races.read-before-publish");
  if (!plan.agg.empty()) {
    const ItemOrder agg_order = quiet_agg(plan.agg, nsuper);
    check_hb(agg_order, "races.read-before-publish-agg");
    check_chain_order(agg_order);
  }
}

// ---------------------------------------------------------------- TriSolve

void check_races(Report& report, const core::TriSolvePlan& plan,
                 const CscMatrix& l) {
  Checker c(report, Pass::kRaces);
  const parallel::UpdateSlotMap& m = plan.update_map;
  if (m.empty()) return;

  const index_t n = l.cols();
  c.note();
  // One slot per strictly-lower nonzero of L (each column stores one
  // diagonal).
  const index_t expected = l.nnz() - n;
  if (static_cast<index_t>(m.row_ptr.size()) != n + 1 ||
      m.row_ptr.front() != 0 || m.row_ptr.back() != expected ||
      static_cast<index_t>(m.slot.size()) != expected || expected < 0) {
    c.fail("races.map-shape", -1,
           cat("slot map must hold exactly one slot per strictly-lower ",
               "nonzero (", expected, ")"));
    return;
  }
  for (index_t r = 0; r < n; ++r) {
    if (m.row_ptr[r + 1] < m.row_ptr[r]) {
      c.fail("races.map-shape", r, "row_ptr decreases");
      return;
    }
  }

  // Serial column order the parallel fold must replay: the plan's reach
  // sequence when it covers every column, ascending order otherwise
  // (update_slots_columns' `order` contract).
  std::vector<index_t> order;
  if (static_cast<index_t>(plan.sets.reach.size()) == n) {
    order = plan.sets.reach;
    std::vector<std::uint8_t> used(static_cast<std::size_t>(n), 0);
    for (const index_t j : order) {
      if (j < 0 || j >= n || used[j]) return;  // structure pass reports this
      used[j] = 1;
    }
  } else {
    order.resize(static_cast<std::size_t>(n));
    for (index_t j = 0; j < n; ++j) order[j] = j;
  }

  c.note();
  std::vector<index_t> cursor(m.row_ptr.begin(), m.row_ptr.end() - 1);
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(expected), 0);
  for (const index_t j : order) {
    for (index_t p = l.col_begin(j); p < l.col_end(j); ++p) {
      const index_t i = l.rowind[p];
      if (i <= j || i >= n) continue;
      const index_t ci = p - j - 1;
      if (ci < 0 || ci >= expected) {
        c.fail("races.map-shape", j,
               cat("compact index ", ci, " of column ", j,
                   " outside the slot array"));
        return;
      }
      const index_t sid = m.slot[ci];
      if (sid < m.row_ptr[i] || sid >= m.row_ptr[i + 1]) {
        c.fail("races.slot-row", i,
               cat("column ", j, "'s update of row ", i, " lands in slot ",
                   sid, ", outside the row's run [", m.row_ptr[i], ", ",
                   m.row_ptr[i + 1], ")"));
        return;
      }
      if (seen[sid]) {
        c.fail("races.write-once", i,
               cat("slot ", sid, " written twice — two producers share a ",
                   "term (cross-task data race)"));
        return;
      }
      seen[sid] = 1;
      if (sid != cursor[i]) {
        c.fail("races.fold-order", i,
               cat("column ", j, " folds into row ", i, " at slot ", sid,
                   ", serial order expects ", cursor[i],
                   " — parallel fold would diverge from the serial ",
                   "subtraction sequence"));
        return;
      }
      ++cursor[i];
    }
  }
  c.note();
  for (index_t r = 0; r < n; ++r) {
    if (cursor[r] != m.row_ptr[r + 1]) {
      c.fail("races.coverage", r,
             cat("row ", r, " folds ", m.row_ptr[r + 1] - cursor[r],
                 " slots no producer ever writes"));
      return;
    }
  }

  // Happens-before: row i folds its incoming terms when its own level
  // solves it, so every producer column must complete strictly earlier.
  const auto check_hb = [&](const ItemOrder& ord, const char* check) {
    if (!ord.usable) return;
    c.note();
    for (index_t j = 0; j < n; ++j) {
      for (index_t p = l.col_begin(j); p < l.col_end(j); ++p) {
        const index_t i = l.rowind[p];
        if (i <= j || i >= n) continue;
        if (!ord.before(j, i)) {
          c.fail(check, i,
                 cat("row ", i, "'s slot is written by column ", j,
                     " (level ", ord.level[j], ") but folded at level ",
                     ord.level[i], " with no barrier between them"));
          return;
        }
      }
    }
  };
  // Intra-chain sequencing over DG_L (see the Cholesky counterpart):
  // producer column j and consumer row i sharing one chain task must be
  // sequenced by member position; a shared bundle can never sequence them.
  const auto check_chain_order = [&](const ItemOrder& ord) {
    if (!ord.usable) return;
    c.note();
    for (index_t j = 0; j < n; ++j) {
      for (index_t p = l.col_begin(j); p < l.col_end(j); ++p) {
        const index_t i = l.rowind[p];
        if (i <= j || i >= n) continue;
        if (ord.task[j] != ord.task[i]) continue;
        if (ord.bundled[j] != 0) {
          c.fail("races.chain-order", i,
                 cat("column ", j, " and its consumer row ", i,
                     " share lock-step bundle task ", ord.task[j],
                     " — bundle lanes cannot sequence a dependence"));
          return;
        }
        if (ord.pos[j] >= ord.pos[i]) {
          c.fail("races.chain-order", i,
                 cat("chain task ", ord.task[j], " runs consumer row ", i,
                     " (member ", ord.pos[i], ") before its producer column ",
                     j, " (member ", ord.pos[j], ")"));
          return;
        }
      }
    }
  };
  if (!plan.schedule.empty())
    check_hb(quiet_flat(plan.schedule, n), "races.read-before-publish");
  if (!plan.agg.empty()) {
    const ItemOrder agg_order = quiet_agg(plan.agg, n);
    check_hb(agg_order, "races.read-before-publish-agg");
    check_chain_order(agg_order);
  }
}

}  // namespace sympiler::verify::detail
