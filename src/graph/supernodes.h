// Supernode detection — the paper's VS-Block block-sets (Table 1).
//
// Two inspection strategies are implemented, matching the paper:
//  * Cholesky: etree + column counts ("up-traversal"). Columns j-1, j merge
//    when colcount(j-1) == colcount(j) + 1 (equal ignoring the diagonal of
//    j-1) and j-1 is the only child of j in the etree (paper section 3.2).
//  * Triangular solve: node equivalence on DG_L. Consecutive columns merge
//    when the off-diagonal pattern of column j-1 equals the full pattern of
//    column j (outgoing edges go to the same destinations, paper 3.1).
#pragma once

#include <span>
#include <vector>

#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler {

/// A partition of columns 0..n-1 into contiguous supernodes.
struct SupernodePartition {
  /// start[s]..start[s+1]-1 are the columns of supernode s; size nsuper+1.
  std::vector<index_t> start;
  /// column -> owning supernode; size n.
  std::vector<index_t> col_to_super;

  [[nodiscard]] index_t count() const {
    return static_cast<index_t>(start.size()) - 1;
  }
  [[nodiscard]] index_t width(index_t s) const {
    return start[s + 1] - start[s];
  }
  /// Mean supernode width in columns (paper's VS-Block threshold input
  /// is derived from participating supernode sizes).
  [[nodiscard]] double average_width() const;
  /// Mean width over supernodes of width >= 2 (the "participating" ones);
  /// 0 if none.
  [[nodiscard]] double average_width_participating() const;

  /// Check the partition tiles [0, n) contiguously.
  [[nodiscard]] bool valid(index_t n) const;

  /// Heap bytes of the partition arrays (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return (start.size() + col_to_super.size()) * sizeof(index_t);
  }
};

/// Options controlling supernode formation.
struct SupernodeOptions {
  index_t max_width = 256;  ///< cap panel width to bound temp storage
  /// Relaxed amalgamation (extension; the paper runs with this OFF):
  /// allow merging j into the current supernode if the number of extra
  /// fill entries introduced stays within relax_ratio of the panel.
  bool relax = false;
  double relax_ratio = 0.2;
};

/// Cholesky strategy: fundamental supernodes from the etree + colcounts.
[[nodiscard]] SupernodePartition supernodes_cholesky(
    std::span<const index_t> parent, std::span<const index_t> colcount,
    const SupernodeOptions& opt = {});

/// Triangular-solve strategy: node equivalence on DG_L of a given factor L.
[[nodiscard]] SupernodePartition supernodes_node_equivalence(
    const CscMatrix& l, const SupernodeOptions& opt = {});

/// Verify the supernodal invariant against an explicit L pattern: within a
/// supernode the diagonal block is full lower-triangular and all columns
/// share the same below-block row set.
[[nodiscard]] bool supernodes_consistent(const SupernodePartition& sn,
                                         const CscMatrix& l_pattern);

/// Supernodal elimination forest: parent supernode of s is the supernode
/// owning etree-parent of s's last column (-1 for roots). Input `parent`
/// is the column etree.
[[nodiscard]] std::vector<index_t> supernode_etree(
    const SupernodePartition& sn, std::span<const index_t> parent);

}  // namespace sympiler
