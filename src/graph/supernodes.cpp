#include "graph/supernodes.h"

#include <algorithm>

#include "graph/etree.h"

namespace sympiler {

double SupernodePartition::average_width() const {
  if (count() == 0) return 0.0;
  return static_cast<double>(start.back()) / static_cast<double>(count());
}

double SupernodePartition::average_width_participating() const {
  double total = 0.0;
  index_t participating = 0;
  for (index_t s = 0; s < count(); ++s) {
    if (width(s) >= 2) {
      total += width(s);
      ++participating;
    }
  }
  return participating == 0 ? 0.0 : total / participating;
}

bool SupernodePartition::valid(index_t n) const {
  if (start.empty() || start.front() != 0 || start.back() != n) return false;
  for (std::size_t s = 0; s + 1 < start.size(); ++s)
    if (start[s] >= start[s + 1]) return false;
  if (static_cast<index_t>(col_to_super.size()) != n) return false;
  for (index_t s = 0; s < count(); ++s)
    for (index_t j = start[s]; j < start[s + 1]; ++j)
      if (col_to_super[j] != s) return false;
  return true;
}

namespace {

SupernodePartition finalize(std::vector<index_t> boundaries, index_t n) {
  SupernodePartition sn;
  sn.start = std::move(boundaries);
  if (sn.start.empty() || sn.start.back() != n) sn.start.push_back(n);
  sn.col_to_super.assign(static_cast<std::size_t>(n), 0);
  for (index_t s = 0; s + 1 < static_cast<index_t>(sn.start.size()); ++s)
    for (index_t j = sn.start[s]; j < sn.start[s + 1]; ++j)
      sn.col_to_super[j] = s;
  return sn;
}

}  // namespace

SupernodePartition supernodes_cholesky(std::span<const index_t> parent,
                                       std::span<const index_t> colcount,
                                       const SupernodeOptions& opt) {
  const auto n = static_cast<index_t>(parent.size());
  SYMPILER_CHECK(colcount.size() == parent.size(),
                 "supernodes: colcount size mismatch");
  const std::vector<index_t> nchild = child_counts(parent);
  std::vector<index_t> boundaries;
  if (n == 0) return finalize(std::move(boundaries), 0);
  boundaries.push_back(0);
  index_t cur_start = 0;
  for (index_t j = 1; j < n; ++j) {
    const bool fundamental = parent[j - 1] == j && nchild[j] == 1 &&
                             colcount[j - 1] == colcount[j] + 1;
    bool merge = fundamental;
    if (!merge && opt.relax && parent[j - 1] == j && nchild[j] == 1) {
      // Relaxed amalgamation: merging j keeps the panel rows of the
      // supernode; extra explicit zeros are (colcount[j-1]-1) - colcount[j]
      // per merged column. Accept if within the relax budget.
      const double extra = colcount[cur_start] - (j - cur_start) -
                           static_cast<double>(colcount[j]);
      const double budget =
          opt.relax_ratio * static_cast<double>(colcount[cur_start]);
      merge = extra >= 0.0 && extra <= budget;
    }
    if (merge && j - cur_start >= opt.max_width) merge = false;
    if (!merge) {
      boundaries.push_back(j);
      cur_start = j;
    }
  }
  return finalize(std::move(boundaries), n);
}

SupernodePartition supernodes_node_equivalence(const CscMatrix& l,
                                               const SupernodeOptions& opt) {
  const index_t n = l.cols();
  SYMPILER_CHECK(l.rows() == n, "supernodes: L must be square");
  std::vector<index_t> boundaries;
  if (n == 0) return finalize(std::move(boundaries), 0);
  boundaries.push_back(0);
  index_t cur_start = 0;
  for (index_t j = 1; j < n; ++j) {
    // Node equivalence: the outgoing edges of j-1 (off-diagonal pattern of
    // column j-1) must match the full pattern of column j. Both lists are
    // sorted, so this is a linear scan.
    const index_t pa = l.col_begin(j - 1);
    const index_t pa_end = l.col_end(j - 1);
    const index_t pb = l.col_begin(j);
    const index_t pb_end = l.col_end(j);
    bool merge = false;
    // Skip the diagonal of column j-1 (first entry when sorted).
    if (pa < pa_end && l.rowind[pa] == j - 1) {
      const index_t len_a = pa_end - (pa + 1);
      const index_t len_b = pb_end - pb;
      if (len_a == len_b && len_a > 0) {
        merge = std::equal(l.rowind.begin() + pa + 1, l.rowind.begin() + pa_end,
                           l.rowind.begin() + pb);
      }
    }
    if (merge && j - cur_start >= opt.max_width) merge = false;
    if (!merge) {
      boundaries.push_back(j);
      cur_start = j;
    }
  }
  return finalize(std::move(boundaries), n);
}

bool supernodes_consistent(const SupernodePartition& sn,
                           const CscMatrix& l_pattern) {
  const index_t n = l_pattern.cols();
  if (!sn.valid(n)) return false;
  for (index_t s = 0; s < sn.count(); ++s) {
    const index_t c1 = sn.start[s];
    const index_t c2 = sn.start[s + 1];
    // Column j in [c1, c2) must contain rows j..c2-1 (dense diagonal
    // block), and its rows >= c2 must equal those of column c1.
    for (index_t j = c1; j < c2; ++j) {
      index_t p = l_pattern.col_begin(j);
      for (index_t r = j; r < c2; ++r, ++p) {
        if (p >= l_pattern.col_end(j) || l_pattern.rowind[p] != r)
          return false;
      }
      // Compare the below-block tail with column c1's tail.
      index_t q = l_pattern.col_begin(c1) + (c2 - c1);
      const index_t q_end = l_pattern.col_end(c1);
      const index_t p_end = l_pattern.col_end(j);
      if (q_end - q != p_end - p) return false;
      for (; p < p_end; ++p, ++q)
        if (l_pattern.rowind[p] != l_pattern.rowind[q]) return false;
    }
  }
  return true;
}

std::vector<index_t> supernode_etree(const SupernodePartition& sn,
                                     std::span<const index_t> parent) {
  std::vector<index_t> sparent(static_cast<std::size_t>(sn.count()), -1);
  for (index_t s = 0; s < sn.count(); ++s) {
    const index_t last = sn.start[s + 1] - 1;
    const index_t p = parent[last];
    if (p != -1) sparent[s] = sn.col_to_super[p];
  }
  return sparent;
}

}  // namespace sympiler
