// Elimination tree (Liu) and related traversals.
//
// The etree is the paper's inspection graph for Cholesky (Table 1):
// parent[j] = min{ i > j : L(i,j) != 0 }, a spanning forest of the filled
// graph G+(A). Inputs are symmetric matrices stored as their lower
// triangle.
#pragma once

#include <span>
#include <vector>

#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler {

/// Compute the elimination tree of a symmetric matrix stored lower.
/// Returns parent[], with -1 marking roots. O(nnz * alpha(n)) via path
/// compression on an ancestor array (Liu's algorithm). Transposes
/// internally; cold planning uses elimination_tree_from_upper instead so
/// one shared transpose serves every symbolic consumer.
[[nodiscard]] std::vector<index_t> elimination_tree(const CscMatrix& a_lower);

/// Same, consuming a precomputed `upper` = transpose(a_lower): column i of
/// `upper` holds the entries A(i, j), j <= i — row i of the lower
/// triangle, which is exactly what Liu's row-by-row sweep walks. Lets the
/// planner thread one shared transpose through the etree, the GNP column
/// counts, and the fused pattern sweep.
[[nodiscard]] std::vector<index_t> elimination_tree_from_upper(
    const CscMatrix& upper);

/// Postorder of the forest given by parent[] (children before parents,
/// siblings in index order). Returns a permutation `post` where post[k] is
/// the k-th node visited.
[[nodiscard]] std::vector<index_t> postorder(std::span<const index_t> parent);

/// Number of children of each node in the forest.
[[nodiscard]] std::vector<index_t> child_counts(
    std::span<const index_t> parent);

/// First-child / next-sibling representation of the forest.
struct ChildLists {
  std::vector<index_t> head;  ///< head[v]: first child of v, -1 if none
  std::vector<index_t> next;  ///< next[c]: next sibling of child c, -1 if last
  std::vector<index_t> roots;  ///< all roots in index order
};
[[nodiscard]] ChildLists build_child_lists(std::span<const index_t> parent);

/// True iff parent[] is a valid forest over n nodes with parent[j] > j
/// (etrees always satisfy this) and no cycles.
[[nodiscard]] bool is_valid_etree(std::span<const index_t> parent);

/// Level of each node counted from the leaves: leaf = 0,
/// level[v] = 1 + max(level of children). Used by the level-set parallel
/// scheduler extension.
[[nodiscard]] std::vector<index_t> levels_from_leaves(
    std::span<const index_t> parent);

}  // namespace sympiler
