// Symbolic Cholesky analysis: row patterns (ereach), the full fill pattern
// of L (paper Eq. 1), and column counts.
//
// These are the Cholesky inspection strategies of paper Table 1:
//   VI-Prune : etree + SP(A), single-node up-traversal -> prune-set SP(L_j*)
//   VS-Block : etree + ColCount(A), up-traversal        -> block-set
//
// Cold planning runs the near-linear pipeline: Gilbert–Ng–Peyton skeleton
// column counts (O(|A| alpha(n)), no ereach materialization) followed by
// one fused ereach sweep that writes the pattern of L straight into
// exact-presized flat arrays, already sorted, from one shared
// transpose(A). The retired two-pass ereach implementation is retained as
// symbolic_cholesky_naive, the bit-identical reference the equivalence
// tests pin the fast path against.
#pragma once

#include <span>
#include <vector>

#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler {

/// Work-space and precomputed structure for repeated ereach queries.
/// `upper` is transpose(a_lower): its column i holds the entries A(i, j),
/// j <= i, i.e. row i of the lower triangle.
class ERreach {
 public:
  ERreach(const CscMatrix& a_lower, std::span<const index_t> parent);

  /// Nonzero pattern of row i of L, *excluding* the diagonal, in
  /// topological (elimination) order: exactly the columns whose updates
  /// column i's factorization consumes. This is the Cholesky prune-set.
  /// The returned span aliases internal storage valid until the next call.
  [[nodiscard]] std::span<const index_t> row_pattern(index_t i);

 private:
  CscMatrix upper_;
  std::vector<index_t> parent_;
  std::vector<index_t> mark_;   // mark_[v] == stamp_ <=> visited this query
  index_t stamp_ = 0;           // per-query epoch; avoids clearing mark_
  std::vector<index_t> out_;    // result buffer
  std::vector<index_t> stack_;
};

/// Result of the full symbolic factorization.
struct SymbolicFactor {
  std::vector<index_t> parent;     ///< elimination tree
  std::vector<index_t> colcount;   ///< nnz(L(:,j)) including the diagonal
  CscMatrix l_pattern;             ///< pattern of L, values allocated = 0
  std::int64_t fill_nnz = 0;       ///< nnz(L)
  double flops = 0.0;              ///< factorization flops: sum cc_j^2

  /// Heap bytes of the symbolic product (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return (parent.size() + colcount.size()) * sizeof(index_t) +
           l_pattern.bytes();
  }
};

/// Gilbert–Ng–Peyton column counts: colcount[j] = nnz(L(:, j)) including
/// the diagonal, computed from the skeleton matrix without materializing
/// any row pattern. For each entry A(i, j) the leaf test (first-descendant
/// intervals) decides whether j starts a new path in row i's subtree; the
/// overlap with the previous leaf is charged to their least common
/// ancestor, found by path-compressed union-find. O(|A| * alpha(n)) — the
/// near-linear half of cold planning, replacing the naive
/// count-every-ereach pass. `post` must be a postorder of `parent`.
[[nodiscard]] std::vector<index_t> cholesky_counts(
    const CscMatrix& a_lower, std::span<const index_t> parent,
    std::span<const index_t> post);

/// Fill the pattern of L in one fused sweep into exact-presized flat
/// arrays: colptr comes from `colcount`, then one ereach-style row sweep
/// over `upper` (= transpose(a_lower)) emits every entry directly at its
/// final position. Visiting rows in ascending order makes every column's
/// row list come out sorted — no per-column buckets, no per-row sort, and
/// no intermediate row buffer (entries are written during the etree climb
/// itself). `with_values` controls whether the |L|-sized zero value array
/// is allocated (plans whose path never touches L values skip it). When
/// `row_offdiag` is non-null it receives each row's off-diagonal entry
/// count (size n) — the rowpat histogram, free from this sweep.
/// O(|A| + |L|) time.
[[nodiscard]] CscMatrix cholesky_fill_pattern(
    const CscMatrix& upper, std::span<const index_t> parent,
    std::span<const index_t> colcount, bool with_values = true,
    std::vector<index_t>* row_offdiag = nullptr);

/// Compute the elimination tree, GNP column counts, and the exact pattern
/// of L (paper Eq. 1) via the fused sweep above. O(|A| alpha(n) + |L|)
/// time, one transpose. The overload taking `upper` = transpose(a_lower)
/// reuses a caller-provided shared view and performs no transpose at all.
[[nodiscard]] SymbolicFactor symbolic_cholesky(const CscMatrix& a_lower);
[[nodiscard]] SymbolicFactor symbolic_cholesky(const CscMatrix& a_lower,
                                               const CscMatrix& upper);

/// The retired textbook implementation: count by materializing every
/// ereach (one full row-pattern pass with per-row sorts), then a second
/// ereach pass to fill. O(|L| log d) time, two transposes. Retained as
/// the `_naive` reference the equivalence tests pin the fused/GNP path
/// against, bit for bit.
[[nodiscard]] SymbolicFactor symbolic_cholesky_naive(const CscMatrix& a_lower);

/// Reference implementation of Eq. 1 directly: pattern of column j is
/// A(j:n, j) union of children patterns minus their diagonals. Quadratic
/// worst case; used by tests to cross-check symbolic_cholesky.
[[nodiscard]] CscMatrix symbolic_cholesky_reference(const CscMatrix& a_lower);

}  // namespace sympiler
