// Symbolic Cholesky analysis: row patterns (ereach), the full fill pattern
// of L (paper Eq. 1), and column counts.
//
// These are the Cholesky inspection strategies of paper Table 1:
//   VI-Prune : etree + SP(A), single-node up-traversal -> prune-set SP(L_j*)
//   VS-Block : etree + ColCount(A), up-traversal        -> block-set
#pragma once

#include <span>
#include <vector>

#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler {

/// Work-space and precomputed structure for repeated ereach queries.
/// `upper` is transpose(a_lower): its column i holds the entries A(i, j),
/// j <= i, i.e. row i of the lower triangle.
class ERreach {
 public:
  ERreach(const CscMatrix& a_lower, std::span<const index_t> parent);

  /// Nonzero pattern of row i of L, *excluding* the diagonal, in
  /// topological (elimination) order: exactly the columns whose updates
  /// column i's factorization consumes. This is the Cholesky prune-set.
  /// The returned span aliases internal storage valid until the next call.
  [[nodiscard]] std::span<const index_t> row_pattern(index_t i);

 private:
  CscMatrix upper_;
  std::vector<index_t> parent_;
  std::vector<index_t> mark_;   // mark_[v] == stamp_ <=> visited this query
  index_t stamp_ = 0;           // per-query epoch; avoids clearing mark_
  std::vector<index_t> out_;    // result buffer
  std::vector<index_t> stack_;
};

/// Result of the full symbolic factorization.
struct SymbolicFactor {
  std::vector<index_t> parent;     ///< elimination tree
  std::vector<index_t> colcount;   ///< nnz(L(:,j)) including the diagonal
  CscMatrix l_pattern;             ///< pattern of L, values allocated = 0
  std::int64_t fill_nnz = 0;       ///< nnz(L)
  double flops = 0.0;              ///< factorization flops: sum cc_j^2

  /// Heap bytes of the symbolic product (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return (parent.size() + colcount.size()) * sizeof(index_t) +
           l_pattern.bytes();
  }
};

/// Compute the elimination tree and the exact pattern of L (paper Eq. 1,
/// evaluated row-wise via ereach so every entry is produced exactly once,
/// already sorted). O(nnz(L)) time.
[[nodiscard]] SymbolicFactor symbolic_cholesky(const CscMatrix& a_lower);

/// Reference implementation of Eq. 1 directly: pattern of column j is
/// A(j:n, j) union of children patterns minus their diagonals. Quadratic
/// worst case; used by tests to cross-check symbolic_cholesky.
[[nodiscard]] CscMatrix symbolic_cholesky_reference(const CscMatrix& a_lower);

}  // namespace sympiler
