#include "graph/reach.h"

#include <algorithm>

namespace sympiler {

std::vector<index_t> reach(const CscMatrix& l, std::span<const index_t> beta) {
  const index_t n = l.cols();
  SYMPILER_CHECK(l.rows() == n, "reach: L must be square");
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<index_t> out;
  // Iterative DFS. node_stack holds the DFS path; edge_stack[k] is the next
  // position in column node_stack[k] still to be explored (CSparse's pstack).
  std::vector<index_t> node_stack;
  std::vector<index_t> edge_stack;
  for (const index_t root : beta) {
    SYMPILER_CHECK(root >= 0 && root < n, "reach: beta index out of range");
    if (visited[root]) continue;
    node_stack.assign(1, root);
    edge_stack.assign(1, l.col_begin(root));
    visited[root] = 1;
    while (!node_stack.empty()) {
      const index_t j = node_stack.back();
      index_t p = edge_stack.back();
      const index_t pend = l.col_end(j);
      bool descended = false;
      for (; p < pend; ++p) {
        const index_t i = l.rowind[p];
        if (i == j) continue;  // diagonal: no self edge
        if (!visited[i]) {
          visited[i] = 1;
          edge_stack.back() = p + 1;  // resume after this edge
          node_stack.push_back(i);
          edge_stack.push_back(l.col_begin(i));
          descended = true;
          break;
        }
      }
      if (!descended) {
        out.push_back(j);  // all successors done: j finishes
        node_stack.pop_back();
        edge_stack.pop_back();
      }
    }
  }
  // Nodes were emitted in DFS finish order (successors first); reversing
  // yields a topological order of the reach DAG.
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<index_t> reach_from_dense(const CscMatrix& l,
                                      std::span<const value_t> b) {
  std::vector<index_t> beta;
  for (index_t i = 0; i < static_cast<index_t>(b.size()); ++i)
    if (b[i] != 0.0) beta.push_back(i);
  return reach(l, beta);
}

std::vector<index_t> reach_reference(const CscMatrix& l,
                                     std::span<const index_t> beta) {
  const index_t n = l.cols();
  std::vector<char> in_set(static_cast<std::size_t>(n), 0);
  std::vector<index_t> work(beta.begin(), beta.end());
  for (const index_t b : work) in_set[b] = 1;
  while (!work.empty()) {
    const index_t j = work.back();
    work.pop_back();
    for (index_t p = l.col_begin(j); p < l.col_end(j); ++p) {
      const index_t i = l.rowind[p];
      if (i != j && !in_set[i]) {
        in_set[i] = 1;
        work.push_back(i);
      }
    }
  }
  // Column order is one valid topological order for a lower-triangular DG.
  std::vector<index_t> out;
  for (index_t j = 0; j < n; ++j)
    if (in_set[j]) out.push_back(j);
  return out;
}

bool is_topological_reach_order(const CscMatrix& l,
                                std::span<const index_t> order) {
  const index_t n = l.cols();
  std::vector<index_t> position(static_cast<std::size_t>(n), -1);
  for (index_t k = 0; k < static_cast<index_t>(order.size()); ++k) {
    const index_t j = order[k];
    if (j < 0 || j >= n || position[j] != -1) return false;  // dup/range
    position[j] = k;
  }
  for (const index_t j : order) {
    for (index_t p = l.col_begin(j); p < l.col_end(j); ++p) {
      const index_t i = l.rowind[p];
      if (i == j) continue;
      // Edge j -> i: if i is in the order it must come after j.
      if (position[i] != -1 && position[i] < position[j]) return false;
    }
  }
  return true;
}

}  // namespace sympiler
