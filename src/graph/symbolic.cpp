#include "graph/symbolic.h"

#include <algorithm>

#include "graph/etree.h"
#include "sparse/ops.h"

namespace sympiler {

ERreach::ERreach(const CscMatrix& a_lower, std::span<const index_t> parent)
    : upper_(transpose(a_lower)),
      parent_(parent.begin(), parent.end()),
      mark_(static_cast<std::size_t>(a_lower.cols()), -1) {
  SYMPILER_CHECK(a_lower.rows() == a_lower.cols(), "ereach: not square");
  SYMPILER_CHECK(parent.size() == static_cast<std::size_t>(a_lower.cols()),
                 "ereach: parent size mismatch");
}

std::span<const index_t> ERreach::row_pattern(index_t i) {
  out_.clear();
  ++stamp_;
  mark_[i] = stamp_;  // never include the diagonal
  for (index_t p = upper_.col_begin(i); p < upper_.col_end(i); ++p) {
    const index_t j = upper_.rowind[p];  // A(i, j) != 0, j <= i
    if (j == i) continue;
    // Climb the etree from j towards i (the first marked node), collecting
    // unmarked nodes. Every collected column k satisfies L(i,k) != 0.
    stack_.clear();
    index_t v = j;
    while (v != -1 && v < i && mark_[v] != stamp_) {
      stack_.push_back(v);
      mark_[v] = stamp_;
      v = parent_[v];
    }
    for (const index_t k : stack_) out_.push_back(k);
  }
  // out_ currently holds paths ordered root-ward; sort ascending to get the
  // elimination (topological) order. Paths are disjoint ascending chains;
  // ascending column order is a valid topological order for row updates.
  std::sort(out_.begin(), out_.end());
  return {out_.data(), out_.size()};
}

SymbolicFactor symbolic_cholesky(const CscMatrix& a_lower) {
  const index_t n = a_lower.cols();
  SYMPILER_CHECK(a_lower.rows() == n, "symbolic_cholesky: not square");
  SYMPILER_CHECK(a_lower.is_lower_triangular(),
                 "symbolic_cholesky: input must be the lower triangle");
  SymbolicFactor s;
  s.parent = elimination_tree(a_lower);
  s.colcount.assign(static_cast<std::size_t>(n), 1);  // diagonals
  ERreach er(a_lower, s.parent);

  // Pass 1: column counts. L(i,j) != 0 (i > j) iff j in ereach(i).
  for (index_t i = 0; i < n; ++i)
    for (const index_t j : er.row_pattern(i)) ++s.colcount[j];

  // Allocate the pattern.
  s.l_pattern = CscMatrix(n, n);
  s.l_pattern.colptr[0] = 0;
  for (index_t j = 0; j < n; ++j)
    s.l_pattern.colptr[j + 1] = s.l_pattern.colptr[j] + s.colcount[j];
  s.fill_nnz = s.l_pattern.colptr[n];
  s.l_pattern.rowind.assign(static_cast<std::size_t>(s.fill_nnz), 0);
  s.l_pattern.values.assign(static_cast<std::size_t>(s.fill_nnz), 0.0);

  // Pass 2: fill row indices. Row i contributes the diagonal of column i
  // plus one entry per ereach column; visiting i in ascending order emits
  // each column's rows already sorted.
  std::vector<index_t> next(s.l_pattern.colptr.begin(),
                            s.l_pattern.colptr.end() - 1);
  for (index_t i = 0; i < n; ++i) {
    s.l_pattern.rowind[next[i]++] = i;  // diagonal first
    for (const index_t j : er.row_pattern(i))
      s.l_pattern.rowind[next[j]++] = i;
  }

  for (index_t j = 0; j < n; ++j) {
    const double cc = s.colcount[j];
    s.flops += cc * cc;  // cc divisions + (cc^2 - cc) mul/add, ~cc^2
  }
  return s;
}

CscMatrix symbolic_cholesky_reference(const CscMatrix& a_lower) {
  const index_t n = a_lower.cols();
  const std::vector<index_t> parent = elimination_tree(a_lower);
  const ChildLists cl = build_child_lists(parent);
  // Column patterns built in order; Eq. 1: Lj = Aj  U {j}  U ( U_{T(s)=j}
  // Ls \ {s} ).
  std::vector<std::vector<index_t>> cols(static_cast<std::size_t>(n));
  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    std::vector<index_t>& col = cols[j];
    col.push_back(j);
    mark[j] = 1;
    for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p) {
      const index_t i = a_lower.rowind[p];
      if (!mark[i]) {
        mark[i] = 1;
        col.push_back(i);
      }
    }
    for (index_t c = cl.head[j]; c != -1; c = cl.next[c]) {
      for (const index_t i : cols[c]) {
        if (i == c) continue;  // Ls \ {s}
        if (!mark[i]) {
          mark[i] = 1;
          col.push_back(i);
        }
      }
    }
    std::sort(col.begin(), col.end());
    for (const index_t i : col) mark[i] = 0;
  }
  CscMatrix l(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (const index_t i : cols[j]) {
      l.rowind.push_back(i);
      l.values.push_back(0.0);
    }
    l.colptr[j + 1] = static_cast<index_t>(l.rowind.size());
  }
  return l;
}

}  // namespace sympiler
