#include "graph/symbolic.h"

#include <algorithm>

#ifdef SYMPILER_HAS_OPENMP
#include <omp.h>
#endif

#include "graph/etree.h"
#include "sparse/ops.h"

namespace sympiler {

ERreach::ERreach(const CscMatrix& a_lower, std::span<const index_t> parent)
    : upper_(transpose(a_lower)),
      parent_(parent.begin(), parent.end()),
      mark_(static_cast<std::size_t>(a_lower.cols()), -1) {
  SYMPILER_CHECK(a_lower.rows() == a_lower.cols(), "ereach: not square");
  SYMPILER_CHECK(parent.size() == static_cast<std::size_t>(a_lower.cols()),
                 "ereach: parent size mismatch");
}

std::span<const index_t> ERreach::row_pattern(index_t i) {
  out_.clear();
  ++stamp_;
  mark_[i] = stamp_;  // never include the diagonal
  for (index_t p = upper_.col_begin(i); p < upper_.col_end(i); ++p) {
    const index_t j = upper_.rowind[p];  // A(i, j) != 0, j <= i
    if (j == i) continue;
    // Climb the etree from j towards i (the first marked node), collecting
    // unmarked nodes. Every collected column k satisfies L(i,k) != 0.
    stack_.clear();
    index_t v = j;
    while (v != -1 && v < i && mark_[v] != stamp_) {
      stack_.push_back(v);
      mark_[v] = stamp_;
      v = parent_[v];
    }
    for (const index_t k : stack_) out_.push_back(k);
  }
  // out_ currently holds paths ordered root-ward; sort ascending to get the
  // elimination (topological) order. Paths are disjoint ascending chains;
  // ascending column order is a valid topological order for row updates.
  std::sort(out_.begin(), out_.end());
  return {out_.data(), out_.size()};
}

std::vector<index_t> cholesky_counts(const CscMatrix& a_lower,
                                     std::span<const index_t> parent,
                                     std::span<const index_t> post) {
  const index_t n = a_lower.cols();
  SYMPILER_CHECK(parent.size() == static_cast<std::size_t>(n) &&
                     post.size() == static_cast<std::size_t>(n),
                 "cholesky_counts: parent/post size mismatch");
  // delta[j]: this column's own contribution before the up-tree
  // accumulation; leaves start at 1 (their diagonal), every skeleton entry
  // adds 1, each child and each leaf-overlap LCA subtracts 1.
  std::vector<index_t> delta(static_cast<std::size_t>(n), 0);
  std::vector<index_t> first(static_cast<std::size_t>(n), -1);
  std::vector<index_t> maxfirst(static_cast<std::size_t>(n), -1);
  std::vector<index_t> prevleaf(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n));
  // first[j] = postorder rank of j's first (deepest-leftmost) descendant.
  for (index_t k = 0; k < n; ++k) {
    index_t j = post[k];
    delta[j] = first[j] == -1 ? 1 : 0;  // j is a leaf of the etree
    for (; j != -1 && first[j] == -1; j = parent[j]) first[j] = k;
  }
  for (index_t v = 0; v < n; ++v) ancestor[v] = v;
  for (index_t k = 0; k < n; ++k) {
    const index_t j = post[k];
    if (parent[j] != -1) --delta[parent[j]];  // j passes its count up later
    for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p) {
      const index_t i = a_lower.rowind[p];
      if (i <= j) continue;  // diagonal: no skeleton edge
      // Leaf test (GNP Lemma): A(i, j) is a skeleton entry iff j's subtree
      // is disjoint from everything row i has seen so far.
      if (first[j] <= maxfirst[i]) continue;
      maxfirst[i] = first[j];
      const index_t jprev = prevleaf[i];
      prevleaf[i] = j;
      ++delta[j];
      if (jprev == -1) continue;  // first leaf of row i's subtree
      // Subsequent leaf: the paths from jprev and j overlap above their
      // LCA; subtract the double count there. Path-compressed union-find.
      index_t q = jprev;
      while (q != ancestor[q]) q = ancestor[q];
      for (index_t s = jprev; s != q;) {
        const index_t s_next = ancestor[s];
        ancestor[s] = q;
        s = s_next;
      }
      --delta[q];
    }
    if (parent[j] != -1) ancestor[j] = parent[j];
  }
  // Accumulate child deltas up the tree; parent[j] > j makes the forward
  // sweep see every child's final count before its parent needs it.
  std::vector<index_t> colcount(delta);
  for (index_t j = 0; j < n; ++j)
    if (parent[j] != -1) colcount[parent[j]] += colcount[j];
  return colcount;
}

CscMatrix cholesky_fill_pattern(const CscMatrix& upper,
                                std::span<const index_t> parent,
                                std::span<const index_t> colcount,
                                bool with_values,
                                std::vector<index_t>* row_offdiag) {
  const index_t n = upper.cols();
  SYMPILER_CHECK(parent.size() == static_cast<std::size_t>(n) &&
                     colcount.size() == static_cast<std::size_t>(n),
                 "cholesky_fill_pattern: size mismatch");
  CscMatrix lp(n, n);
  lp.colptr[0] = 0;
  for (index_t j = 0; j < n; ++j)
    lp.colptr[j + 1] = lp.colptr[j] + colcount[j];
  const auto nnz = static_cast<std::size_t>(lp.colptr[n]);
  lp.rowind.assign(nnz, 0);
  if (with_values) lp.values.assign(nnz, 0.0);
  if (row_offdiag != nullptr)
    row_offdiag->assign(static_cast<std::size_t>(n), 0);

#ifdef SYMPILER_HAS_OPENMP
  // Parallel fused sweep: the serial loop below writes column v's rows in
  // ascending row order — a pure pattern property — so contiguous row
  // chunks can count (pass 1), prefix-sum per-column write cursors, and
  // write (pass 2) independently, producing the byte-identical arrays.
  // Each chunk re-climbs the etree in pass 2; stamps are globally unique
  // row ids (pass 2 offsets them by n), so one mark array per thread
  // serves every chunk and both passes without resets.
  const auto nchunks = static_cast<index_t>(omp_get_max_threads());
  constexpr index_t kParallelFillMinCols = 2048;
  if (nchunks > 1 && n >= kParallelFillMinCols) {
    const index_t chunk = (n + nchunks - 1) / nchunks;
    std::vector<index_t> counts(static_cast<std::size_t>(nchunks) * n, 0);
#pragma omp parallel
    {
      std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
#pragma omp for schedule(static, 1)
      for (index_t c = 0; c < nchunks; ++c) {
        index_t* cnt = counts.data() + static_cast<std::size_t>(c) * n;
        const index_t r1 = std::min(n, (c + 1) * chunk);
        for (index_t i = c * chunk; i < r1; ++i) {
          mark[i] = i;
          index_t emitted = 0;
          for (index_t p = upper.col_begin(i); p < upper.col_end(i); ++p)
            for (index_t v = upper.rowind[p];
                 v != -1 && v < i && mark[v] != i; v = parent[v]) {
              mark[v] = i;
              ++cnt[v];
              ++emitted;
            }
          if (row_offdiag != nullptr) (*row_offdiag)[i] = emitted;
        }
      }
      // Turn per-chunk counts into write cursors: chunk c's rows of column
      // v start after the diagonal plus every earlier chunk's rows —
      // exactly where the ascending serial sweep would put them.
#pragma omp for schedule(static)
      for (index_t v = 0; v < n; ++v) {
        index_t cur = lp.colptr[v] + 1;
        for (index_t c = 0; c < nchunks; ++c) {
          const index_t cc = counts[static_cast<std::size_t>(c) * n + v];
          counts[static_cast<std::size_t>(c) * n + v] = cur;
          cur += cc;
        }
        lp.rowind[lp.colptr[v]] = v;  // diagonal of column v first
      }
#pragma omp for schedule(static, 1)
      for (index_t c = 0; c < nchunks; ++c) {
        index_t* cursor = counts.data() + static_cast<std::size_t>(c) * n;
        const index_t r1 = std::min(n, (c + 1) * chunk);
        for (index_t i = c * chunk; i < r1; ++i) {
          const index_t tag = i + n;  // distinct from this row's pass-1 stamp
          mark[i] = tag;
          for (index_t p = upper.col_begin(i); p < upper.col_end(i); ++p)
            for (index_t v = upper.rowind[p];
                 v != -1 && v < i && mark[v] != tag; v = parent[v]) {
              mark[v] = tag;
              lp.rowind[cursor[v]++] = i;
            }
        }
      }
    }
    return lp;
  }
#endif
  std::vector<index_t> next(lp.colptr.begin(), lp.colptr.end() - 1);
  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
  for (index_t i = 0; i < n; ++i) {
    lp.rowind[next[i]++] = i;  // diagonal of column i first
    mark[i] = i;               // row stamp; never re-collect the diagonal
    index_t emitted = 0;
    for (index_t p = upper.col_begin(i); p < upper.col_end(i); ++p) {
      // Climb the etree from j towards i, emitting row i into every column
      // on the unvisited part of the path: exactly ereach(i), written at
      // its final position. Ascending i keeps each column's rows sorted.
      for (index_t v = upper.rowind[p]; v != -1 && v < i && mark[v] != i;
           v = parent[v]) {
        mark[v] = i;
        lp.rowind[next[v]++] = i;
        ++emitted;
      }
    }
    if (row_offdiag != nullptr) (*row_offdiag)[i] = emitted;
  }
  return lp;
}

namespace {

SymbolicFactor symbolic_cholesky_fused(const CscMatrix& a_lower,
                                       const CscMatrix& upper) {
  const index_t n = a_lower.cols();
  SYMPILER_CHECK(a_lower.rows() == n, "symbolic_cholesky: not square");
  SYMPILER_CHECK(a_lower.is_lower_triangular(),
                 "symbolic_cholesky: input must be the lower triangle");
  SymbolicFactor s;
  s.parent = elimination_tree_from_upper(upper);
  const std::vector<index_t> post = postorder(s.parent);
  s.colcount = cholesky_counts(a_lower, s.parent, post);
  s.l_pattern = cholesky_fill_pattern(upper, s.parent, s.colcount);
  s.fill_nnz = s.l_pattern.colptr[n];
  for (index_t j = 0; j < n; ++j) {
    const double cc = s.colcount[j];
    s.flops += cc * cc;  // cc divisions + (cc^2 - cc) mul/add, ~cc^2
  }
  return s;
}

}  // namespace

SymbolicFactor symbolic_cholesky(const CscMatrix& a_lower) {
  return symbolic_cholesky_fused(a_lower, transpose(a_lower));
}

SymbolicFactor symbolic_cholesky(const CscMatrix& a_lower,
                                 const CscMatrix& upper) {
  SYMPILER_CHECK(upper.cols() == a_lower.rows() &&
                     upper.rows() == a_lower.cols() &&
                     upper.nnz() == a_lower.nnz(),
                 "symbolic_cholesky: upper is not transpose(a_lower)");
  return symbolic_cholesky_fused(a_lower, upper);
}

SymbolicFactor symbolic_cholesky_naive(const CscMatrix& a_lower) {
  const index_t n = a_lower.cols();
  SYMPILER_CHECK(a_lower.rows() == n, "symbolic_cholesky: not square");
  SYMPILER_CHECK(a_lower.is_lower_triangular(),
                 "symbolic_cholesky: input must be the lower triangle");
  SymbolicFactor s;
  s.parent = elimination_tree(a_lower);
  s.colcount.assign(static_cast<std::size_t>(n), 1);  // diagonals
  ERreach er(a_lower, s.parent);

  // Pass 1: column counts. L(i,j) != 0 (i > j) iff j in ereach(i).
  for (index_t i = 0; i < n; ++i)
    for (const index_t j : er.row_pattern(i)) ++s.colcount[j];

  // Allocate the pattern.
  s.l_pattern = CscMatrix(n, n);
  s.l_pattern.colptr[0] = 0;
  for (index_t j = 0; j < n; ++j)
    s.l_pattern.colptr[j + 1] = s.l_pattern.colptr[j] + s.colcount[j];
  s.fill_nnz = s.l_pattern.colptr[n];
  s.l_pattern.rowind.assign(static_cast<std::size_t>(s.fill_nnz), 0);
  s.l_pattern.values.assign(static_cast<std::size_t>(s.fill_nnz), 0.0);

  // Pass 2: fill row indices. Row i contributes the diagonal of column i
  // plus one entry per ereach column; visiting i in ascending order emits
  // each column's rows already sorted.
  std::vector<index_t> next(s.l_pattern.colptr.begin(),
                            s.l_pattern.colptr.end() - 1);
  for (index_t i = 0; i < n; ++i) {
    s.l_pattern.rowind[next[i]++] = i;  // diagonal first
    for (const index_t j : er.row_pattern(i))
      s.l_pattern.rowind[next[j]++] = i;
  }

  for (index_t j = 0; j < n; ++j) {
    const double cc = s.colcount[j];
    s.flops += cc * cc;  // cc divisions + (cc^2 - cc) mul/add, ~cc^2
  }
  return s;
}

CscMatrix symbolic_cholesky_reference(const CscMatrix& a_lower) {
  const index_t n = a_lower.cols();
  const std::vector<index_t> parent = elimination_tree(a_lower);
  const ChildLists cl = build_child_lists(parent);
  // Column patterns built in order; Eq. 1: Lj = Aj  U {j}  U ( U_{T(s)=j}
  // Ls \ {s} ).
  std::vector<std::vector<index_t>> cols(static_cast<std::size_t>(n));
  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    std::vector<index_t>& col = cols[j];
    col.push_back(j);
    mark[j] = 1;
    for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p) {
      const index_t i = a_lower.rowind[p];
      if (!mark[i]) {
        mark[i] = 1;
        col.push_back(i);
      }
    }
    for (index_t c = cl.head[j]; c != -1; c = cl.next[c]) {
      for (const index_t i : cols[c]) {
        if (i == c) continue;  // Ls \ {s}
        if (!mark[i]) {
          mark[i] = 1;
          col.push_back(i);
        }
      }
    }
    std::sort(col.begin(), col.end());
    for (const index_t i : col) mark[i] = 0;
  }
  CscMatrix l(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (const index_t i : cols[j]) {
      l.rowind.push_back(i);
      l.values.push_back(0.0);
    }
    l.colptr[j + 1] = static_cast<index_t>(l.rowind.size());
  }
  return l;
}

}  // namespace sympiler
