// Reach-set computation on the dependence graph DG_L (Gilbert & Peierls).
//
// DG_L for a lower-triangular matrix L has an edge (j -> i) for every
// off-diagonal nonzero L(i,j): column i of the triangular solve consumes
// x[j]. The nonzero pattern of the solution of L x = b equals
// Reach_L(beta), beta = {i | b_i != 0} (numerical cancellation neglected).
// This is the paper's VI-Prune inspection set for triangular solve
// (Table 1: inspection graph DG + SP(RHS), strategy DFS, set = reach-set).
#pragma once

#include <span>
#include <vector>

#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler {

/// Depth-first search over DG_L from the nodes in `beta`.
/// Returns the reach-set in topological order: if DG_L has an edge
/// (j -> i) and both are in the set, j appears before i. Iterating the
/// result left-to-right is therefore a valid triangular-solve schedule.
///
/// L must be square lower-triangular CSC with sorted row indices and a
/// stored diagonal. Complexity: O(sum of out-degrees of reached nodes),
/// i.e. proportional to the number of edges traversed — independent of n.
[[nodiscard]] std::vector<index_t> reach(const CscMatrix& l,
                                         std::span<const index_t> beta);

/// Reach-set from the nonzero pattern of a sparse RHS column b
/// (convenience overload for dense b storage: beta = {i | b[i] != 0}).
[[nodiscard]] std::vector<index_t> reach_from_dense(
    const CscMatrix& l, std::span<const value_t> b);

/// Brute-force reference (simple BFS, then stable ordering by repeated
/// relaxation). Used only by tests.
[[nodiscard]] std::vector<index_t> reach_reference(
    const CscMatrix& l, std::span<const index_t> beta);

/// Verify `order` is a topological order of the sub-DAG of DG_L induced by
/// the set of its own nodes (each edge source precedes its target).
[[nodiscard]] bool is_topological_reach_order(const CscMatrix& l,
                                              std::span<const index_t> order);

}  // namespace sympiler
