#include "graph/etree.h"

#include <algorithm>

#include "sparse/ops.h"

namespace sympiler {

std::vector<index_t> elimination_tree(const CscMatrix& a_lower) {
  SYMPILER_CHECK(a_lower.rows() == a_lower.cols(),
                 "etree: matrix must be square");
  // Liu's algorithm consumes the *upper* triangle row-by-row; for lower
  // storage the transpose gives, in its column i, exactly the entries
  // A(i, j) with j <= i.
  return elimination_tree_from_upper(transpose(a_lower));
}

std::vector<index_t> elimination_tree_from_upper(const CscMatrix& upper) {
  const index_t n = upper.cols();
  SYMPILER_CHECK(upper.rows() == n, "etree: matrix must be square");
  std::vector<index_t> parent(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n), -1);
  for (index_t i = 0; i < n; ++i) {
    for (index_t p = upper.col_begin(i); p < upper.col_end(i); ++p) {
      index_t j = upper.rowind[p];  // A(i, j) != 0 with j <= i
      // Walk from j up to the root or to i, compressing the path onto i.
      while (j != -1 && j < i) {
        const index_t next = ancestor[j];
        ancestor[j] = i;
        if (next == -1) parent[j] = i;
        j = next;
      }
    }
  }
  return parent;
}

ChildLists build_child_lists(std::span<const index_t> parent) {
  const auto n = static_cast<index_t>(parent.size());
  ChildLists cl;
  cl.head.assign(static_cast<std::size_t>(n), -1);
  cl.next.assign(static_cast<std::size_t>(n), -1);
  // Iterate in reverse so lists come out in ascending child order.
  for (index_t v = n - 1; v >= 0; --v) {
    const index_t p = parent[v];
    if (p == -1) continue;
    cl.next[v] = cl.head[p];
    cl.head[p] = v;
  }
  for (index_t v = 0; v < n; ++v)
    if (parent[v] == -1) cl.roots.push_back(v);
  return cl;
}

std::vector<index_t> postorder(std::span<const index_t> parent) {
  const auto n = static_cast<index_t>(parent.size());
  const ChildLists cl = build_child_lists(parent);
  std::vector<index_t> post;
  post.reserve(static_cast<std::size_t>(n));
  // Iterative DFS; next_child[v] tracks the next unvisited child of v.
  std::vector<index_t> next_child(cl.head);
  std::vector<index_t> stack;
  for (const index_t root : cl.roots) {
    stack.push_back(root);
    while (!stack.empty()) {
      const index_t v = stack.back();
      const index_t c = next_child[v];
      if (c == -1) {
        post.push_back(v);
        stack.pop_back();
      } else {
        next_child[v] = cl.next[c];
        stack.push_back(c);
      }
    }
  }
  return post;
}

std::vector<index_t> child_counts(std::span<const index_t> parent) {
  std::vector<index_t> count(parent.size(), 0);
  for (const index_t p : parent)
    if (p != -1) ++count[p];
  return count;
}

bool is_valid_etree(std::span<const index_t> parent) {
  const auto n = static_cast<index_t>(parent.size());
  for (index_t v = 0; v < n; ++v) {
    const index_t p = parent[v];
    if (p == -1) continue;
    if (p <= v || p >= n) return false;  // parent > child rules out cycles
  }
  return true;
}

std::vector<index_t> levels_from_leaves(std::span<const index_t> parent) {
  const auto n = static_cast<index_t>(parent.size());
  std::vector<index_t> level(static_cast<std::size_t>(n), 0);
  // parent[v] > v, so a forward sweep sees children before parents.
  for (index_t v = 0; v < n; ++v) {
    const index_t p = parent[v];
    if (p != -1) level[p] = std::max(level[p], level[v] + 1);
  }
  return level;
}

}  // namespace sympiler
