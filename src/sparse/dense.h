// Column-major dense matrix used for reference algorithms in tests and for
// the temporary supernode panels of the blocked kernels.
#pragma once

#include <vector>

#include "util/common.h"

namespace sympiler {

class CscMatrix;

/// Column-major dense matrix (leading dimension == rows()).
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t nrows, index_t ncols)
      : data_(static_cast<std::size_t>(nrows) * static_cast<std::size_t>(ncols),
              0.0),
        nrows_(nrows),
        ncols_(ncols) {}

  [[nodiscard]] index_t rows() const { return nrows_; }
  [[nodiscard]] index_t cols() const { return ncols_; }

  [[nodiscard]] value_t& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(j) * nrows_ + i];
  }
  [[nodiscard]] value_t operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(j) * nrows_ + i];
  }

  [[nodiscard]] value_t* data() { return data_.data(); }
  [[nodiscard]] const value_t* data() const { return data_.data(); }

  /// Pointer to the top of column j.
  [[nodiscard]] value_t* col(index_t j) {
    return data_.data() + static_cast<std::size_t>(j) * nrows_;
  }
  [[nodiscard]] const value_t* col(index_t j) const {
    return data_.data() + static_cast<std::size_t>(j) * nrows_;
  }

  void fill(value_t v) { std::fill(data_.begin(), data_.end(), v); }

  /// Densify a CSC matrix.
  static DenseMatrix from_csc(const CscMatrix& a);

  /// Max-norm of (this - other); shapes must match.
  [[nodiscard]] value_t max_abs_diff(const DenseMatrix& other) const;

 private:
  std::vector<value_t> data_;
  index_t nrows_ = 0;
  index_t ncols_ = 0;
};

}  // namespace sympiler
