// Matrix Market (.mtx) I/O. The paper's suite comes from the SuiteSparse
// collection, which distributes matrices in this format; users with local
// copies can run every benchmark on the original inputs.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csc.h"

namespace sympiler {

/// Read a Matrix Market coordinate file. Supported qualifiers:
/// `matrix coordinate real|integer|pattern general|symmetric`.
/// Symmetric inputs are returned as their LOWER triangle (SuiteSparse
/// symmetric .mtx files store the lower triangle already; entries given in
/// the upper triangle are mirrored). Pattern matrices get value 1.0.
/// Throws invalid_matrix_error on malformed input.
[[nodiscard]] CscMatrix read_matrix_market(std::istream& in);
[[nodiscard]] CscMatrix read_matrix_market_file(const std::string& path);

/// Write a CSC matrix as `matrix coordinate real general` (1-based).
void write_matrix_market(std::ostream& out, const CscMatrix& a);
void write_matrix_market_file(const std::string& path, const CscMatrix& a);

}  // namespace sympiler
