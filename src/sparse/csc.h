// Compressed sparse column (CSC) storage — the format every kernel in the
// paper operates on ({n, Lp, Li, Lx} in the paper's notation).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/common.h"

namespace sympiler {

/// One (row, col, value) entry used during assembly.
struct Triplet {
  index_t row = 0;
  index_t col = 0;
  value_t value = 0.0;
};

/// Compressed sparse column matrix.
///
/// Invariants (checked by validate()):
///  * colptr.size() == ncols + 1, colptr.front() == 0, non-decreasing
///  * rowind.size() == values.size() == colptr.back()
///  * 0 <= rowind[p] < nrows
///  * row indices strictly increasing within each column (sorted, no dups)
///
/// Data members are public on purpose: symbolic inspectors and generated
/// kernels index the raw arrays directly, exactly like the code in the
/// paper's Figure 1.
class CscMatrix {
 public:
  CscMatrix() = default;

  /// Empty matrix of the given shape (no nonzeros).
  CscMatrix(index_t nrows, index_t ncols);

  /// Shape + preallocated nnz (indices/values value-initialized).
  CscMatrix(index_t nrows, index_t ncols, index_t nnz);

  /// Build from unordered triplets. Duplicate entries are summed,
  /// row indices sorted per column. Throws invalid_matrix_error on
  /// out-of-range indices.
  static CscMatrix from_triplets(index_t nrows, index_t ncols,
                                 std::span<const Triplet> triplets);

  /// n-by-n identity.
  static CscMatrix identity(index_t n);

  [[nodiscard]] index_t rows() const { return nrows_; }
  [[nodiscard]] index_t cols() const { return ncols_; }
  [[nodiscard]] index_t nnz() const {
    return colptr.empty() ? 0 : colptr.back();
  }

  /// Begin/end positions of column j in rowind/values.
  [[nodiscard]] index_t col_begin(index_t j) const { return colptr[j]; }
  [[nodiscard]] index_t col_end(index_t j) const { return colptr[j + 1]; }

  /// Value at (i, j), zero if not stored. O(log nnz(col j)).
  [[nodiscard]] value_t at(index_t i, index_t j) const;

  /// Throws invalid_matrix_error if any invariant is broken.
  void validate() const;

  /// True if all stored entries satisfy row >= col.
  [[nodiscard]] bool is_lower_triangular() const;

  /// True iff same shape, pattern, and values (exact comparison).
  [[nodiscard]] bool equals(const CscMatrix& other) const;

  /// True iff same shape and pattern (values ignored).
  [[nodiscard]] bool same_pattern(const CscMatrix& other) const;

  /// Human-readable summary, e.g. "CscMatrix 100x100, nnz=460".
  [[nodiscard]] std::string to_string() const;

  /// Heap bytes of the index/value arrays (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return colptr.size() * sizeof(index_t) + rowind.size() * sizeof(index_t) +
           values.size() * sizeof(value_t);
  }

  std::vector<index_t> colptr;  ///< size ncols + 1
  std::vector<index_t> rowind;  ///< size nnz
  std::vector<value_t> values;  ///< size nnz

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
};

}  // namespace sympiler
