// Structural and numerical operations on CSC matrices: transpose,
// permutation, triangle extraction, symmetrization, matrix-vector products,
// and the residual helpers the test-suite builds its properties on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler {

/// B = A^T (values transposed too). O(nnz + n).
[[nodiscard]] CscMatrix transpose(const CscMatrix& a);

/// Process-wide count of transpose() calls. Regression instrumentation in
/// the style of parallel::level_schedule_builds(): a cold Planner build
/// must perform exactly one transpose (the shared upper-triangle view
/// threaded through etree, column counts, and the fused pattern sweep) —
/// tests pin that by taking this counter's delta around plan_cholesky.
[[nodiscard]] std::uint64_t transpose_count();

/// Extract the lower triangle (entries with row >= col).
[[nodiscard]] CscMatrix lower_triangle(const CscMatrix& a);

/// Extract the strict upper triangle (entries with row < col).
[[nodiscard]] CscMatrix upper_triangle_strict(const CscMatrix& a);

/// Given a symmetric matrix stored as its lower triangle, reconstruct the
/// full symmetric matrix (both triangles stored).
[[nodiscard]] CscMatrix symmetric_full_from_lower(const CscMatrix& lower);

/// Symmetric permutation B = P A P^T of a symmetric matrix stored as its
/// lower triangle; the result is again lower triangular.
/// perm maps old index -> new index (i.e. new_i = perm[old_i]).
[[nodiscard]] CscMatrix permute_symmetric_lower(const CscMatrix& lower,
                                                std::span<const index_t> perm);

/// y = A * x for a general CSC matrix.
void matvec(const CscMatrix& a, std::span<const value_t> x,
            std::span<value_t> y);

/// y = A * x where A is symmetric and stored as its lower triangle.
void matvec_symmetric_lower(const CscMatrix& lower, std::span<const value_t> x,
                            std::span<value_t> y);

/// inf-norm of (L * x - b) with L a general CSC matrix.
[[nodiscard]] value_t residual_inf_norm(const CscMatrix& a,
                                        std::span<const value_t> x,
                                        std::span<const value_t> b);

/// inf-norm of (A * x - b) with A symmetric stored lower.
[[nodiscard]] value_t residual_inf_norm_symmetric_lower(
    const CscMatrix& lower, std::span<const value_t> x,
    std::span<const value_t> b);

/// max_{ij} |(L L^T - A)_{ij}| with both L and A lower-stored; A is treated
/// as symmetric. Computed column-by-column without densifying (O(n) extra).
[[nodiscard]] value_t llt_residual_inf_norm(const CscMatrix& l,
                                            const CscMatrix& a_lower);

/// True iff perm is a permutation of {0, ..., n-1}.
[[nodiscard]] bool is_permutation(std::span<const index_t> perm);

/// Inverse permutation: result[perm[i]] = i.
[[nodiscard]] std::vector<index_t> invert_permutation(
    std::span<const index_t> perm);

}  // namespace sympiler
