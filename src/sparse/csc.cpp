#include "sparse/csc.h"

#include <algorithm>
#include <sstream>

namespace sympiler {

CscMatrix::CscMatrix(index_t nrows, index_t ncols)
    : colptr(static_cast<std::size_t>(ncols) + 1, 0),
      nrows_(nrows),
      ncols_(ncols) {
  SYMPILER_CHECK(nrows >= 0 && ncols >= 0, "negative matrix dimension");
}

CscMatrix::CscMatrix(index_t nrows, index_t ncols, index_t nnz)
    : CscMatrix(nrows, ncols) {
  SYMPILER_CHECK(nnz >= 0, "negative nnz");
  rowind.resize(static_cast<std::size_t>(nnz));
  values.resize(static_cast<std::size_t>(nnz));
}

CscMatrix CscMatrix::from_triplets(index_t nrows, index_t ncols,
                                   std::span<const Triplet> triplets) {
  for (const Triplet& t : triplets) {
    SYMPILER_CHECK(t.row >= 0 && t.row < nrows && t.col >= 0 && t.col < ncols,
                   "triplet index out of range");
  }
  CscMatrix a(nrows, ncols);
  // Counting sort by column.
  std::vector<index_t> count(static_cast<std::size_t>(ncols) + 1, 0);
  for (const Triplet& t : triplets) ++count[static_cast<std::size_t>(t.col) + 1];
  for (index_t j = 0; j < ncols; ++j) count[j + 1] += count[j];
  std::vector<index_t> rows(triplets.size());
  std::vector<value_t> vals(triplets.size());
  {
    std::vector<index_t> next(count.begin(), count.end() - 1);
    for (const Triplet& t : triplets) {
      const index_t p = next[t.col]++;
      rows[p] = t.row;
      vals[p] = t.value;
    }
  }
  // Sort rows within each column and sum duplicates.
  a.colptr.assign(static_cast<std::size_t>(ncols) + 1, 0);
  std::vector<std::pair<index_t, value_t>> scratch;
  for (index_t j = 0; j < ncols; ++j) {
    scratch.clear();
    for (index_t p = count[j]; p < count[j + 1]; ++p)
      scratch.emplace_back(rows[p], vals[p]);
    std::sort(scratch.begin(), scratch.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    index_t kept = 0;
    for (std::size_t k = 0; k < scratch.size(); ++k) {
      if (kept > 0 &&
          a.rowind[a.rowind.size() - 1] == scratch[k].first) {
        a.values.back() += scratch[k].second;
      } else {
        a.rowind.push_back(scratch[k].first);
        a.values.push_back(scratch[k].second);
        ++kept;
      }
    }
    a.colptr[j + 1] = static_cast<index_t>(a.rowind.size());
  }
  return a;
}

CscMatrix CscMatrix::identity(index_t n) {
  CscMatrix a(n, n, n);
  for (index_t j = 0; j < n; ++j) {
    a.colptr[j] = j;
    a.rowind[j] = j;
    a.values[j] = 1.0;
  }
  a.colptr[n] = n;
  return a;
}

value_t CscMatrix::at(index_t i, index_t j) const {
  SYMPILER_CHECK(i >= 0 && i < nrows_ && j >= 0 && j < ncols_,
                 "at(): index out of range");
  const auto first = rowind.begin() + colptr[j];
  const auto last = rowind.begin() + colptr[j + 1];
  const auto it = std::lower_bound(first, last, i);
  if (it == last || *it != i) return 0.0;
  return values[static_cast<std::size_t>(it - rowind.begin())];
}

void CscMatrix::validate() const {
  SYMPILER_CHECK(colptr.size() == static_cast<std::size_t>(ncols_) + 1,
                 "colptr size mismatch");
  SYMPILER_CHECK(colptr.front() == 0, "colptr[0] != 0");
  for (index_t j = 0; j < ncols_; ++j)
    SYMPILER_CHECK(colptr[j] <= colptr[j + 1], "colptr not monotone");
  SYMPILER_CHECK(rowind.size() == values.size() &&
                     rowind.size() == static_cast<std::size_t>(colptr.back()),
                 "rowind/values size mismatch");
  for (index_t j = 0; j < ncols_; ++j) {
    for (index_t p = colptr[j]; p < colptr[j + 1]; ++p) {
      SYMPILER_CHECK(rowind[p] >= 0 && rowind[p] < nrows_,
                     "row index out of range");
      if (p > colptr[j])
        SYMPILER_CHECK(rowind[p - 1] < rowind[p],
                       "row indices not strictly increasing within column");
    }
  }
}

bool CscMatrix::is_lower_triangular() const {
  for (index_t j = 0; j < ncols_; ++j)
    for (index_t p = colptr[j]; p < colptr[j + 1]; ++p)
      if (rowind[p] < j) return false;
  return true;
}

bool CscMatrix::equals(const CscMatrix& other) const {
  return same_pattern(other) && values == other.values;
}

bool CscMatrix::same_pattern(const CscMatrix& other) const {
  return nrows_ == other.nrows_ && ncols_ == other.ncols_ &&
         colptr == other.colptr && rowind == other.rowind;
}

std::string CscMatrix::to_string() const {
  std::ostringstream os;
  os << "CscMatrix " << nrows_ << "x" << ncols_ << ", nnz=" << nnz();
  return os.str();
}

}  // namespace sympiler
