#include "sparse/dense.h"

#include <algorithm>
#include <cmath>

#include "sparse/csc.h"

namespace sympiler {

DenseMatrix DenseMatrix::from_csc(const CscMatrix& a) {
  DenseMatrix d(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t p = a.col_begin(j); p < a.col_end(j); ++p)
      d(a.rowind[p], j) = a.values[p];
  return d;
}

value_t DenseMatrix::max_abs_diff(const DenseMatrix& other) const {
  SYMPILER_CHECK(nrows_ == other.nrows_ && ncols_ == other.ncols_,
                 "max_abs_diff: shape mismatch");
  value_t m = 0.0;
  for (std::size_t k = 0; k < data_.size(); ++k)
    m = std::max(m, std::abs(data_[k] - other.data_[k]));
  return m;
}

}  // namespace sympiler
