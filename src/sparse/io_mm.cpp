#include "sparse/io_mm.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "sparse/ops.h"

namespace sympiler {

namespace {

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

CscMatrix read_matrix_market(std::istream& in) {
  std::string line;
  SYMPILER_CHECK(static_cast<bool>(std::getline(in, line)),
                 "matrix market: empty stream");
  std::istringstream header(lowercase(line));
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  SYMPILER_CHECK(banner == "%%matrixmarket", "matrix market: bad banner");
  SYMPILER_CHECK(object == "matrix", "matrix market: object must be matrix");
  SYMPILER_CHECK(format == "coordinate",
                 "matrix market: only coordinate format supported");
  SYMPILER_CHECK(field == "real" || field == "integer" || field == "pattern",
                 "matrix market: unsupported field type: " + field);
  SYMPILER_CHECK(symmetry == "general" || symmetry == "symmetric",
                 "matrix market: unsupported symmetry: " + symmetry);
  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  SYMPILER_CHECK(static_cast<bool>(in) && !line.empty() && line[0] != '%',
                 "matrix market: missing size line");
  std::istringstream dims(line);
  long long nrows = -1, ncols = -1, nentries = -1;
  dims >> nrows >> ncols >> nentries;
  SYMPILER_CHECK(!dims.fail() && nrows >= 0 && ncols >= 0 && nentries >= 0,
                 "matrix market: bad size line");
  // Dimensions must round-trip through index_t — a hostile header must
  // fail here with a structured error, not overflow downstream arithmetic.
  constexpr long long kIndexMax =
      static_cast<long long>(std::numeric_limits<index_t>::max());
  SYMPILER_CHECK(nrows <= kIndexMax && ncols <= kIndexMax &&
                     nentries <= kIndexMax,
                 "matrix market: dimensions exceed index range");
  if (symmetric)
    SYMPILER_CHECK(nrows == ncols, "matrix market: symmetric must be square");

  std::vector<Triplet> trip;
  // Cap the up-front reservation: nentries is untrusted until the entries
  // actually parse, and a lying header should hit "truncated entries"
  // below, not a multi-gigabyte allocation here.
  trip.reserve(static_cast<std::size_t>(
      std::min<long long>(nentries, 1LL << 22)));
  for (long long k = 0; k < nentries; ++k) {
    long long i = 0, j = 0;
    double v = 1.0;
    in >> i >> j;
    if (!pattern) in >> v;
    SYMPILER_CHECK(static_cast<bool>(in),
                   "matrix market: truncated or malformed entry " +
                       std::to_string(k + 1) + " of " +
                       std::to_string(nentries));
    SYMPILER_CHECK(i >= 1 && i <= nrows && j >= 1 && j <= ncols,
                   "matrix market: entry " + std::to_string(k + 1) +
                       " coordinates (" + std::to_string(i) + ", " +
                       std::to_string(j) + ") out of range");
    index_t r = static_cast<index_t>(i - 1);
    index_t c = static_cast<index_t>(j - 1);
    if (symmetric && r < c) std::swap(r, c);  // normalize to lower triangle
    trip.push_back({r, c, v});
  }
  return CscMatrix::from_triplets(static_cast<index_t>(nrows),
                                  static_cast<index_t>(ncols), trip);
}

CscMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  SYMPILER_CHECK(in.good(), "matrix market: cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CscMatrix& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << " " << a.cols() << " " << a.nnz() << "\n";
  out.precision(17);
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t p = a.col_begin(j); p < a.col_end(j); ++p)
      out << (a.rowind[p] + 1) << " " << (j + 1) << " " << a.values[p] << "\n";
}

void write_matrix_market_file(const std::string& path, const CscMatrix& a) {
  std::ofstream out(path);
  SYMPILER_CHECK(out.good(), "matrix market: cannot open " + path);
  write_matrix_market(out, a);
}

}  // namespace sympiler
