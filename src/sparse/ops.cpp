#include "sparse/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace sympiler {

namespace {
std::atomic<std::uint64_t> g_transpose_calls{0};
}  // namespace

std::uint64_t transpose_count() {
  return g_transpose_calls.load(std::memory_order_relaxed);
}

CscMatrix transpose(const CscMatrix& a) {
  g_transpose_calls.fetch_add(1, std::memory_order_relaxed);
  CscMatrix at(a.cols(), a.rows(), a.nnz());
  std::vector<index_t> count(static_cast<std::size_t>(a.rows()) + 1, 0);
  for (index_t p = 0; p < a.nnz(); ++p) ++count[a.rowind[p] + 1];
  for (index_t i = 0; i < a.rows(); ++i) count[i + 1] += count[i];
  at.colptr.assign(count.begin(), count.end());
  std::vector<index_t> next(count.begin(), count.end() - 1);
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      const index_t q = next[a.rowind[p]]++;
      at.rowind[q] = j;
      at.values[q] = a.values[p];
    }
  }
  return at;
}

namespace {

template <typename Keep>
CscMatrix filter_entries(const CscMatrix& a, Keep keep) {
  CscMatrix out(a.rows(), a.cols());
  out.rowind.reserve(a.rowind.size());
  out.values.reserve(a.values.size());
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      if (keep(a.rowind[p], j)) {
        out.rowind.push_back(a.rowind[p]);
        out.values.push_back(a.values[p]);
      }
    }
    out.colptr[j + 1] = static_cast<index_t>(out.rowind.size());
  }
  return out;
}

}  // namespace

CscMatrix lower_triangle(const CscMatrix& a) {
  return filter_entries(a, [](index_t i, index_t j) { return i >= j; });
}

CscMatrix upper_triangle_strict(const CscMatrix& a) {
  return filter_entries(a, [](index_t i, index_t j) { return i < j; });
}

CscMatrix symmetric_full_from_lower(const CscMatrix& lower) {
  SYMPILER_CHECK(lower.rows() == lower.cols(),
                 "symmetric_full_from_lower: matrix not square");
  std::vector<Triplet> trip;
  trip.reserve(static_cast<std::size_t>(lower.nnz()) * 2);
  for (index_t j = 0; j < lower.cols(); ++j) {
    for (index_t p = lower.col_begin(j); p < lower.col_end(j); ++p) {
      const index_t i = lower.rowind[p];
      SYMPILER_CHECK(i >= j, "symmetric_full_from_lower: input not lower");
      trip.push_back({i, j, lower.values[p]});
      if (i != j) trip.push_back({j, i, lower.values[p]});
    }
  }
  return CscMatrix::from_triplets(lower.rows(), lower.cols(), trip);
}

CscMatrix permute_symmetric_lower(const CscMatrix& lower,
                                  std::span<const index_t> perm) {
  SYMPILER_CHECK(lower.rows() == lower.cols(), "permute: matrix not square");
  SYMPILER_CHECK(static_cast<index_t>(perm.size()) == lower.rows(),
                 "permute: permutation size mismatch");
  SYMPILER_CHECK(is_permutation(perm), "permute: not a permutation");
  std::vector<Triplet> trip;
  trip.reserve(static_cast<std::size_t>(lower.nnz()));
  for (index_t j = 0; j < lower.cols(); ++j) {
    for (index_t p = lower.col_begin(j); p < lower.col_end(j); ++p) {
      index_t ni = perm[lower.rowind[p]];
      index_t nj = perm[j];
      if (ni < nj) std::swap(ni, nj);  // keep the lower triangle
      trip.push_back({ni, nj, lower.values[p]});
    }
  }
  return CscMatrix::from_triplets(lower.rows(), lower.cols(), trip);
}

void matvec(const CscMatrix& a, std::span<const value_t> x,
            std::span<value_t> y) {
  SYMPILER_CHECK(static_cast<index_t>(x.size()) == a.cols() &&
                     static_cast<index_t>(y.size()) == a.rows(),
                 "matvec: size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (index_t j = 0; j < a.cols(); ++j) {
    const value_t xj = x[j];
    if (xj == 0.0) continue;
    for (index_t p = a.col_begin(j); p < a.col_end(j); ++p)
      y[a.rowind[p]] += a.values[p] * xj;
  }
}

void matvec_symmetric_lower(const CscMatrix& lower, std::span<const value_t> x,
                            std::span<value_t> y) {
  SYMPILER_CHECK(lower.rows() == lower.cols(), "matvec_sym: not square");
  SYMPILER_CHECK(static_cast<index_t>(x.size()) == lower.cols() &&
                     static_cast<index_t>(y.size()) == lower.rows(),
                 "matvec_sym: size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (index_t j = 0; j < lower.cols(); ++j) {
    for (index_t p = lower.col_begin(j); p < lower.col_end(j); ++p) {
      const index_t i = lower.rowind[p];
      const value_t v = lower.values[p];
      y[i] += v * x[j];
      if (i != j) y[j] += v * x[i];
    }
  }
}

value_t residual_inf_norm(const CscMatrix& a, std::span<const value_t> x,
                          std::span<const value_t> b) {
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()), 0.0);
  matvec(a, x, y);
  value_t r = 0.0;
  for (index_t i = 0; i < a.rows(); ++i)
    r = std::max(r, std::abs(y[i] - b[i]));
  return r;
}

value_t residual_inf_norm_symmetric_lower(const CscMatrix& lower,
                                          std::span<const value_t> x,
                                          std::span<const value_t> b) {
  std::vector<value_t> y(static_cast<std::size_t>(lower.rows()), 0.0);
  matvec_symmetric_lower(lower, x, y);
  value_t r = 0.0;
  for (index_t i = 0; i < lower.rows(); ++i)
    r = std::max(r, std::abs(y[i] - b[i]));
  return r;
}

value_t llt_residual_inf_norm(const CscMatrix& l, const CscMatrix& a_lower) {
  SYMPILER_CHECK(l.rows() == l.cols() && a_lower.rows() == a_lower.cols() &&
                     l.rows() == a_lower.rows(),
                 "llt_residual: shape mismatch");
  const index_t n = l.rows();
  // Row-wise access to L: compute L^T once.
  const CscMatrix lt = transpose(l);
  // For each column j of (L L^T): sum_k L(:,k) * L(j,k) over k with
  // L(j,k) != 0, i.e. over the nonzeros of column j of L^T.
  std::vector<value_t> acc(static_cast<std::size_t>(n), 0.0);
  std::vector<index_t> touched;
  value_t err = 0.0;
  for (index_t j = 0; j < n; ++j) {
    touched.clear();
    for (index_t q = lt.col_begin(j); q < lt.col_end(j); ++q) {
      const index_t k = lt.rowind[q];  // L(j,k) != 0, k <= j
      const value_t ljk = lt.values[q];
      for (index_t p = l.col_begin(k); p < l.col_end(k); ++p) {
        const index_t i = l.rowind[p];
        if (i < j) continue;  // only check the lower triangle
        if (acc[i] == 0.0) touched.push_back(i);
        acc[i] += l.values[p] * ljk;
      }
    }
    // Subtract A(:,j) (lower part) and record the error.
    for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p) {
      const index_t i = a_lower.rowind[p];
      if (acc[i] == 0.0) touched.push_back(i);
      acc[i] -= a_lower.values[p];
    }
    for (const index_t i : touched) {
      err = std::max(err, std::abs(acc[i]));
      acc[i] = 0.0;
    }
  }
  return err;
}

bool is_permutation(std::span<const index_t> perm) {
  const auto n = static_cast<index_t>(perm.size());
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const index_t p : perm) {
    if (p < 0 || p >= n || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

std::vector<index_t> invert_permutation(std::span<const index_t> perm) {
  SYMPILER_CHECK(is_permutation(perm), "invert_permutation: not a permutation");
  std::vector<index_t> inv(perm.size());
  for (index_t i = 0; i < static_cast<index_t>(perm.size()); ++i)
    inv[perm[i]] = i;
  return inv;
}

}  // namespace sympiler
