// Supernodal storage layout and the CHOLMOD-like left-looking supernodal
// Cholesky baseline.
//
// The layout (rows lists + dense panels) is shared with the Sympiler
// executors in core/: the *data structure* is the same, what differs is
// how much of the schedule is precomputed symbolically (CHOLMOD discovers
// descendant supernodes with dynamic linked lists during the numeric
// phase; Sympiler's inspector emits the full static update schedule).
#pragma once

#include <span>
#include <vector>

#include "graph/supernodes.h"
#include "graph/symbolic.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::solvers {

/// Symbolic supernodal layout of the factor L.
struct SupernodalLayout {
  index_t n = 0;
  SupernodePartition sn;
  std::vector<index_t> parent;    ///< column elimination tree
  std::vector<index_t> colcount;  ///< per-column nnz of L
  /// Row indices of each supernode panel: srows[srow_ptr[s]..srow_ptr[s+1])
  /// are the rows of supernode s; the first width(s) of them are the
  /// supernode's own columns (dense triangular block).
  std::vector<index_t> srow_ptr;
  std::vector<index_t> srows;
  /// Dense panel of supernode s occupies values[panel_ptr[s] ..
  /// panel_ptr[s+1]) in column-major order with leading dim nrows(s).
  std::vector<std::int64_t> panel_ptr;
  double flops = 0.0;  ///< factorization flop estimate (sum colcount^2)

  [[nodiscard]] index_t nsuper() const { return sn.count(); }
  [[nodiscard]] index_t width(index_t s) const { return sn.width(s); }
  [[nodiscard]] index_t nrows(index_t s) const {
    return srow_ptr[s + 1] - srow_ptr[s];
  }
  [[nodiscard]] std::int64_t total_values() const { return panel_ptr.back(); }

  /// Heap bytes of the layout arrays (plan-size accounting; the numeric
  /// panels are owned by executors, not the layout).
  [[nodiscard]] std::size_t bytes() const {
    return sn.bytes() +
           (parent.size() + colcount.size() + srow_ptr.size() + srows.size()) *
               sizeof(index_t) +
           panel_ptr.size() * sizeof(std::int64_t);
  }

  /// Build from a symbolic factorization and a (fundamental) partition.
  /// The partition must satisfy the supernodal invariant w.r.t. the
  /// pattern in `sym` unless `allow_relaxed`; relaxed supernodes take the
  /// union pattern (pattern of the first column).
  static SupernodalLayout build(const SymbolicFactor& sym,
                                SupernodePartition partition);
};

/// One update: descendant supernode d contributes rows [p1, p2) of its row
/// list (indices relative to srow_ptr[d]) to the target's columns, and rows
/// [p1, end) to the target's rows.
struct UpdateRef {
  index_t d = 0;
  index_t p1 = 0;
  index_t p2 = 0;
};

/// Static per-supernode update schedule (what Sympiler's symbolic
/// inspector precomputes; CHOLMOD instead discovers this dynamically).
struct UpdateLists {
  std::vector<index_t> ptr;     ///< nsuper + 1
  std::vector<UpdateRef> refs;  ///< updates targeting supernode s in
                                ///< refs[ptr[s]..ptr[s+1])

  /// Heap bytes of the schedule (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return ptr.size() * sizeof(index_t) + refs.size() * sizeof(UpdateRef);
  }
};
[[nodiscard]] UpdateLists compute_update_lists(const SupernodalLayout& layout);

/// Scatter the lower triangle of A into zeroed panels. `map` is caller
/// scratch of at least layout.n entries (plan-sized workspace); the
/// convenience overload allocates it per call (library-baseline behavior).
void scatter_into_panels(const SupernodalLayout& layout,
                         const CscMatrix& a_lower, std::span<value_t> panels,
                         std::span<index_t> map);
void scatter_into_panels(const SupernodalLayout& layout,
                         const CscMatrix& a_lower,
                         std::span<value_t> panels);

/// Convert factored panels to a CSC lower-triangular factor. The exact nnz
/// is known from the layout, so the output arrays are sized once up front
/// (no push_back growth).
[[nodiscard]] CscMatrix panels_to_csc(const SupernodalLayout& layout,
                                      std::span<const value_t> panels);

/// Supernodal forward solve L y = b over panels; x: b in, y out. `scratch`
/// is caller workspace of at least max_tail(layout) entries; the 3-arg
/// overload allocates it per call.
void panel_forward_solve(const SupernodalLayout& layout,
                         std::span<const value_t> panels, std::span<value_t> x,
                         std::span<value_t> scratch);
void panel_forward_solve(const SupernodalLayout& layout,
                         std::span<const value_t> panels,
                         std::span<value_t> x);

/// Supernodal backward solve L^T x = y over panels.
void panel_backward_solve(const SupernodalLayout& layout,
                          std::span<const value_t> panels, std::span<value_t> x,
                          std::span<value_t> scratch);
void panel_backward_solve(const SupernodalLayout& layout,
                          std::span<const value_t> panels,
                          std::span<value_t> x);

/// Largest below-diagonal row count of any supernode (tail scratch size).
[[nodiscard]] index_t max_tail_rows(const SupernodalLayout& layout);

/// Multi-RHS supernodal solves over an RHS-major packed block: X(i, r) at
/// xp[r + i * ldp], nrhs <= blas::kRhsBlockMax. `tail` is caller scratch of
/// at least max_tail_rows(layout) * ldp values. Per RHS column the
/// arithmetic is bit-identical to the single-RHS panel solves — blocking
/// changes data movement (panels stream once per block instead of once per
/// RHS; the r-loop is the unit-stride SIMD direction), never the per-column
/// operation sequence.
void panel_forward_solve_multi(const SupernodalLayout& layout,
                               std::span<const value_t> panels, value_t* xp,
                               index_t nrhs, index_t ldp, value_t* tail);
void panel_backward_solve_multi(const SupernodalLayout& layout,
                                std::span<const value_t> panels, value_t* xp,
                                index_t nrhs, index_t ldp, value_t* tail);

/// CHOLMOD-like supernodal left-looking Cholesky.
///
/// The symbolic phase (constructor) is reusable across factorizations of
/// matrices with the same pattern — mirroring cholmod_analyze — but the
/// numeric phase retains the symbolic-flavoured work the paper calls out:
/// the transpose of A and the dynamic descendant-list traversal.
class SupernodalCholesky {
 public:
  explicit SupernodalCholesky(const CscMatrix& a_lower,
                              SupernodeOptions opt = {});

  /// Numeric factorization; pattern of a_lower must match the analyzed one.
  void factorize(const CscMatrix& a_lower);

  /// Solve A x = b in place (requires factorize() first).
  void solve(std::span<value_t> bx) const;

  [[nodiscard]] const SupernodalLayout& layout() const { return layout_; }
  [[nodiscard]] std::span<const value_t> panels() const { return panels_; }
  [[nodiscard]] CscMatrix factor_csc() const {
    return panels_to_csc(layout_, panels_);
  }
  [[nodiscard]] double flops() const { return layout_.flops; }

 private:
  SupernodalLayout layout_;
  std::vector<value_t> panels_;
  bool factorized_ = false;
};

}  // namespace sympiler::solvers
