// Eigen-like baseline: non-supernodal left-looking Cholesky with the
// symbolic work the paper attributes to the libraries' numeric phase left
// *inside* the numeric phase — the transpose of A and the per-column
// ereach row-pattern computation (paper section 4.2: "none of the
// libraries fully decouple the symbolic information from the numerical
// code").
//
// The constructor plays the role of Eigen's analyzePattern(): it computes
// the etree and allocates the factor, and is reusable across values.
#pragma once

#include <span>

#include "graph/symbolic.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::solvers {

class SimplicialCholesky {
 public:
  /// Symbolic set-up (etree + factor allocation), reusable across numeric
  /// factorizations with the same pattern.
  explicit SimplicialCholesky(const CscMatrix& a_lower);

  /// Numeric left-looking factorization. Recomputes A^T and the row
  /// patterns internally (the coupled-library behaviour).
  void factorize(const CscMatrix& a_lower);

  /// Solve A x = b in place (requires factorize()).
  void solve(std::span<value_t> bx) const;

  [[nodiscard]] const CscMatrix& factor() const { return l_; }
  [[nodiscard]] const SymbolicFactor& symbolic() const { return sym_; }
  [[nodiscard]] double flops() const { return sym_.flops; }

 private:
  SymbolicFactor sym_;
  CscMatrix l_;  // pattern fixed by the constructor, values by factorize()
  bool factorized_ = false;
};

}  // namespace sympiler::solvers
