#include "solvers/simplicial.h"

#include <cmath>

#include "solvers/trisolve.h"

namespace sympiler::solvers {

SimplicialCholesky::SimplicialCholesky(const CscMatrix& a_lower)
    : sym_(symbolic_cholesky(a_lower)) {
  l_ = sym_.l_pattern;  // copy pattern; values stay zero until factorize()
}

void SimplicialCholesky::factorize(const CscMatrix& a_lower) {
  const index_t n = l_.cols();
  SYMPILER_CHECK(a_lower.cols() == n, "factorize: pattern mismatch");
  // Coupled behaviour: the row patterns are recomputed per factorization.
  // ERreach's constructor computes transpose(A) — the same transpose the
  // paper observes Eigen/CHOLMOD performing in their numeric phase.
  ERreach er(a_lower, sym_.parent);

  std::vector<value_t> f(static_cast<std::size_t>(n), 0.0);
  // next[k]: position in column k of the next unconsumed off-diag row.
  std::vector<index_t> next(static_cast<std::size_t>(n), 0);

  for (index_t j = 0; j < n; ++j) {
    // Scatter A(j:n, j).
    for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p) {
      const index_t i = a_lower.rowind[p];
      if (i >= j) f[i] = a_lower.values[p];
    }
    // Update phase (paper Fig 4 lines 4-6): only the columns in the row
    // pattern of row j contribute.
    for (const index_t k : er.row_pattern(j)) {
      const index_t pj = next[k];  // L(j,k) lives here (rows consumed in order)
      const value_t lkj = l_.values[pj];
      for (index_t p = pj; p < l_.col_end(k); ++p)
        f[l_.rowind[p]] -= l_.values[p] * lkj;
      next[k] = pj + 1;
    }
    // Column factorization (paper Fig 4 lines 7-10).
    const value_t d = f[j];
    if (!(d > 0.0))
      throw numerical_error("simplicial cholesky: non-positive pivot at " +
                            std::to_string(j));
    const value_t ljj = std::sqrt(d);
    const index_t pdiag = l_.col_begin(j);
    l_.values[pdiag] = ljj;
    f[j] = 0.0;
    const value_t inv = 1.0 / ljj;
    for (index_t p = pdiag + 1; p < l_.col_end(j); ++p) {
      const index_t i = l_.rowind[p];
      l_.values[p] = f[i] * inv;
      f[i] = 0.0;
    }
    next[j] = pdiag + 1;
  }
  factorized_ = true;
}

void SimplicialCholesky::solve(std::span<value_t> bx) const {
  SYMPILER_CHECK(factorized_, "solve() before factorize()");
  trisolve_naive(l_, bx);
  trisolve_transpose(l_, bx);
}

}  // namespace sympiler::solvers
