// Sparse triangular solve variants — the paper's Figure 1 codes.
//
//  (b) trisolve_naive     : visits every column.
//  (c) trisolve_library   : skips columns whose x entry is zero (the Eigen
//                           implementation; symbolic coupled to numeric).
//  (d) trisolve_decoupled : iterates a precomputed reach-set only.
//
// The Sympiler-generated variants (VS-Block, VI-Prune, peeling, ...) live
// in core/trisolve_executor.h; these are the library baselines.
#pragma once

#include <span>

#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::solvers {

/// Figure 1b. x holds b on entry, the solution on exit.
/// Throws numerical_error on a zero diagonal.
void trisolve_naive(const CscMatrix& l, std::span<value_t> x);

/// Figure 1c: the guarded library loop (`if (x[j] != 0)`).
void trisolve_library(const CscMatrix& l, std::span<value_t> x);

/// Figure 1d: decoupled loop over a topologically ordered reach-set.
void trisolve_decoupled(const CscMatrix& l, std::span<const index_t> reach_set,
                        std::span<value_t> x);

/// Backward solve L^T x = b with L stored lower CSC (used to complete
/// A x = b after Cholesky). x holds b on entry, the solution on exit.
void trisolve_transpose(const CscMatrix& l, std::span<value_t> x);

/// Flop count of a sparse-RHS solve restricted to `reach_set`
/// (1 div + 2 flops per off-diagonal nonzero of each reached column).
[[nodiscard]] double trisolve_flops(const CscMatrix& l,
                                    std::span<const index_t> reach_set);

}  // namespace sympiler::solvers
