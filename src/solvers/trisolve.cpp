#include "solvers/trisolve.h"

namespace sympiler::solvers {

namespace {

inline void column_update(const CscMatrix& l, index_t j,
                          std::span<value_t> x) {
  const index_t pdiag = l.col_begin(j);
  const value_t piv = l.values[pdiag];
  if (piv == 0.0) throw numerical_error("trisolve: zero diagonal");
  const value_t xj = x[j] / piv;
  x[j] = xj;
  for (index_t p = pdiag + 1; p < l.col_end(j); ++p)
    x[l.rowind[p]] -= l.values[p] * xj;
}

}  // namespace

void trisolve_naive(const CscMatrix& l, std::span<value_t> x) {
  SYMPILER_CHECK(l.rows() == l.cols() &&
                     static_cast<index_t>(x.size()) == l.cols(),
                 "trisolve: size mismatch");
  for (index_t j = 0; j < l.cols(); ++j) column_update(l, j, x);
}

void trisolve_library(const CscMatrix& l, std::span<value_t> x) {
  SYMPILER_CHECK(l.rows() == l.cols() &&
                     static_cast<index_t>(x.size()) == l.cols(),
                 "trisolve: size mismatch");
  for (index_t j = 0; j < l.cols(); ++j) {
    if (x[j] != 0.0) column_update(l, j, x);
  }
}

void trisolve_decoupled(const CscMatrix& l, std::span<const index_t> reach_set,
                        std::span<value_t> x) {
  for (const index_t j : reach_set) column_update(l, j, x);
}

void trisolve_transpose(const CscMatrix& l, std::span<value_t> x) {
  for (index_t j = l.cols() - 1; j >= 0; --j) {
    const index_t pdiag = l.col_begin(j);
    value_t s = x[j];
    for (index_t p = pdiag + 1; p < l.col_end(j); ++p)
      s -= l.values[p] * x[l.rowind[p]];
    const value_t piv = l.values[pdiag];
    if (piv == 0.0) throw numerical_error("trisolve^T: zero diagonal");
    x[j] = s / piv;
  }
}

double trisolve_flops(const CscMatrix& l, std::span<const index_t> reach_set) {
  double flops = 0.0;
  for (const index_t j : reach_set)
    flops += 1.0 + 2.0 * static_cast<double>(l.col_end(j) - l.col_begin(j) - 1);
  return flops;
}

}  // namespace sympiler::solvers
