#include "solvers/supernodal.h"

#include <algorithm>

#include "blas/kernels.h"
#include "sparse/ops.h"

namespace sympiler::solvers {

SupernodalLayout SupernodalLayout::build(const SymbolicFactor& sym,
                                         SupernodePartition partition) {
  SupernodalLayout layout;
  layout.n = static_cast<index_t>(sym.parent.size());
  layout.sn = std::move(partition);
  layout.parent = sym.parent;
  layout.colcount = sym.colcount;
  layout.flops = sym.flops;
  SYMPILER_CHECK(layout.sn.valid(layout.n), "layout: invalid partition");

  const index_t nsuper = layout.sn.count();
  layout.srow_ptr.assign(static_cast<std::size_t>(nsuper) + 1, 0);
  layout.panel_ptr.assign(static_cast<std::size_t>(nsuper) + 1, 0);
  // The rows of supernode s are the pattern of its first column (the
  // supernodal invariant guarantees later columns' patterns are suffixes).
  for (index_t s = 0; s < nsuper; ++s) {
    const index_t c1 = layout.sn.start[s];
    const index_t nrow =
        sym.l_pattern.col_end(c1) - sym.l_pattern.col_begin(c1);
    const index_t w = layout.sn.width(s);
    SYMPILER_CHECK(nrow >= w, "layout: supernode shorter than its width");
    layout.srow_ptr[s + 1] = layout.srow_ptr[s] + nrow;
    layout.panel_ptr[s + 1] =
        layout.panel_ptr[s] + static_cast<std::int64_t>(nrow) * w;
  }
  layout.srows.resize(static_cast<std::size_t>(layout.srow_ptr[nsuper]));
  for (index_t s = 0; s < nsuper; ++s) {
    const index_t c1 = layout.sn.start[s];
    std::copy(sym.l_pattern.rowind.begin() + sym.l_pattern.col_begin(c1),
              sym.l_pattern.rowind.begin() + sym.l_pattern.col_end(c1),
              layout.srows.begin() + layout.srow_ptr[s]);
  }
  return layout;
}

UpdateLists compute_update_lists(const SupernodalLayout& layout) {
  const index_t nsuper = layout.nsuper();
  // Simulate the cursor walk of each descendant over its row list twice:
  // pass 1 counts the (d, p1, p2) segments per target supernode, pass 2
  // writes them into the flat ptr/refs arrays — no per-supernode bucket
  // vectors, two allocations total.
  UpdateLists lists;
  lists.ptr.assign(static_cast<std::size_t>(nsuper) + 1, 0);
  for (index_t d = 0; d < nsuper; ++d) {
    const index_t* rows = layout.srows.data() + layout.srow_ptr[d];
    const index_t nrow = layout.nrows(d);
    index_t p = layout.width(d);
    while (p < nrow) {
      const index_t target = layout.sn.col_to_super[rows[p]];
      const index_t c2 = layout.sn.start[target + 1];
      while (p < nrow && rows[p] < c2) ++p;
      ++lists.ptr[target + 1];
    }
  }
  for (index_t s = 0; s < nsuper; ++s) lists.ptr[s + 1] += lists.ptr[s];
  lists.refs.resize(static_cast<std::size_t>(lists.ptr[nsuper]));
  std::vector<index_t> next(lists.ptr.begin(), lists.ptr.end() - 1);
  for (index_t d = 0; d < nsuper; ++d) {
    const index_t* rows = layout.srows.data() + layout.srow_ptr[d];
    const index_t nrow = layout.nrows(d);
    index_t p = layout.width(d);
    while (p < nrow) {
      const index_t target = layout.sn.col_to_super[rows[p]];
      const index_t c2 = layout.sn.start[target + 1];
      index_t q = p;
      while (q < nrow && rows[q] < c2) ++q;
      lists.refs[next[target]++] = {d, p, q};
      p = q;
    }
  }
  return lists;
}

void scatter_into_panels(const SupernodalLayout& layout,
                         const CscMatrix& a_lower, std::span<value_t> panels,
                         std::span<index_t> map) {
  SYMPILER_CHECK(static_cast<index_t>(map.size()) >= layout.n,
                 "scatter: map scratch too small");
  std::fill(panels.begin(), panels.end(), 0.0);
  for (index_t s = 0; s < layout.nsuper(); ++s) {
    const index_t c1 = layout.sn.start[s];
    const index_t c2 = layout.sn.start[s + 1];
    const index_t m = layout.nrows(s);
    const index_t* rows = layout.srows.data() + layout.srow_ptr[s];
    for (index_t t = 0; t < m; ++t) map[rows[t]] = t;
    value_t* panel = panels.data() + layout.panel_ptr[s];
    for (index_t j = c1; j < c2; ++j) {
      value_t* col = panel + static_cast<std::int64_t>(j - c1) * m;
      for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p) {
        const index_t i = a_lower.rowind[p];
        if (i < j) continue;
        col[map[i]] = a_lower.values[p];
      }
    }
  }
}

void scatter_into_panels(const SupernodalLayout& layout,
                         const CscMatrix& a_lower,
                         std::span<value_t> panels) {
  std::vector<index_t> map(static_cast<std::size_t>(layout.n), 0);
  scatter_into_panels(layout, a_lower, panels, map);
}

CscMatrix panels_to_csc(const SupernodalLayout& layout,
                        std::span<const value_t> panels) {
  const index_t n = layout.n;
  CscMatrix l(n, n);
  // Exact per-column nnz from the layout (column j of supernode s holds
  // nrows(s) - local entries), so the output arrays are written once into
  // their final size instead of growing by push_back.
  l.colptr[0] = 0;
  for (index_t s = 0; s < layout.nsuper(); ++s) {
    const index_t c1 = layout.sn.start[s];
    const index_t c2 = layout.sn.start[s + 1];
    const index_t m = layout.nrows(s);
    for (index_t j = c1; j < c2; ++j)
      l.colptr[j + 1] = l.colptr[j] + (m - (j - c1));
  }
  l.rowind.resize(static_cast<std::size_t>(l.colptr[n]));
  l.values.resize(static_cast<std::size_t>(l.colptr[n]));
  index_t* li = l.rowind.data();
  value_t* lx = l.values.data();
  for (index_t s = 0; s < layout.nsuper(); ++s) {
    const index_t c1 = layout.sn.start[s];
    const index_t c2 = layout.sn.start[s + 1];
    const index_t m = layout.nrows(s);
    const index_t* rows = layout.srows.data() + layout.srow_ptr[s];
    const value_t* panel = panels.data() + layout.panel_ptr[s];
    for (index_t j = c1; j < c2; ++j) {
      const index_t local = j - c1;
      const value_t* col = panel + static_cast<std::int64_t>(local) * m;
      index_t* ldst = li + l.colptr[j];
      value_t* xdst = lx + l.colptr[j];
      for (index_t t = local; t < m; ++t) {
        *ldst++ = rows[t];
        *xdst++ = col[t];
      }
    }
  }
  return l;
}

index_t max_tail_rows(const SupernodalLayout& layout) {
  index_t max_tail = 0;
  for (index_t s = 0; s < layout.nsuper(); ++s)
    max_tail = std::max(max_tail, layout.nrows(s) - layout.width(s));
  return max_tail;
}

void panel_forward_solve(const SupernodalLayout& layout,
                         std::span<const value_t> panels, std::span<value_t> x,
                         std::span<value_t> scratch) {
  value_t* xs = scratch.data();  // gathered tail segment, plan-sized
  for (index_t s = 0; s < layout.nsuper(); ++s) {
    const index_t c1 = layout.sn.start[s];
    const index_t w = layout.width(s);
    const index_t m = layout.nrows(s);
    const index_t* rows = layout.srows.data() + layout.srow_ptr[s];
    const value_t* panel = panels.data() + layout.panel_ptr[s];
    blas::trsv_lower(w, panel, m, x.data() + c1);
    if (m > w) {
      std::fill(xs, xs + (m - w), 0.0);
      blas::gemv_minus(m - w, w, panel + w, m, x.data() + c1, xs);
      for (index_t t = w; t < m; ++t) x[rows[t]] += xs[t - w];
    }
  }
}

void panel_forward_solve(const SupernodalLayout& layout,
                         std::span<const value_t> panels,
                         std::span<value_t> x) {
  std::vector<value_t> scratch(
      static_cast<std::size_t>(max_tail_rows(layout)));
  panel_forward_solve(layout, panels, x, scratch);
}

void panel_backward_solve(const SupernodalLayout& layout,
                          std::span<const value_t> panels, std::span<value_t> x,
                          std::span<value_t> scratch) {
  value_t* xg = scratch.data();
  for (index_t s = layout.nsuper() - 1; s >= 0; --s) {
    const index_t c1 = layout.sn.start[s];
    const index_t w = layout.width(s);
    const index_t m = layout.nrows(s);
    const index_t* rows = layout.srows.data() + layout.srow_ptr[s];
    const value_t* panel = panels.data() + layout.panel_ptr[s];
    if (m > w) {
      for (index_t t = w; t < m; ++t) xg[t - w] = x[rows[t]];
      blas::gemv_trans_minus(m - w, w, panel + w, m, xg, x.data() + c1);
    }
    blas::trsv_lower_transpose(w, panel, m, x.data() + c1);
  }
}

void panel_backward_solve(const SupernodalLayout& layout,
                          std::span<const value_t> panels,
                          std::span<value_t> x) {
  std::vector<value_t> scratch(
      static_cast<std::size_t>(max_tail_rows(layout)));
  panel_backward_solve(layout, panels, x, scratch);
}

void panel_forward_solve_multi(const SupernodalLayout& layout,
                               std::span<const value_t> panels, value_t* xp,
                               index_t nrhs, index_t ldp, value_t* tail) {
  for (index_t s = 0; s < layout.nsuper(); ++s) {
    const index_t c1 = layout.sn.start[s];
    const index_t w = layout.width(s);
    const index_t m = layout.nrows(s);
    const index_t* rows = layout.srows.data() + layout.srow_ptr[s];
    const value_t* panel = panels.data() + layout.panel_ptr[s];
    blas::trsm_lower_multi(w, nrhs, panel, m, xp + c1 * ldp, ldp);
    if (m > w) {
      std::fill(tail, tail + static_cast<std::int64_t>(m - w) * ldp, 0.0);
      blas::gemm_minus_multi(m - w, w, nrhs, panel + w, m, xp + c1 * ldp, ldp,
                             tail, ldp);
      for (index_t t = w; t < m; ++t) {
        value_t* dst = xp + rows[t] * ldp;
        const value_t* src = tail + static_cast<std::int64_t>(t - w) * ldp;
        for (index_t r = 0; r < nrhs; ++r) dst[r] += src[r];
      }
    }
  }
}

void panel_backward_solve_multi(const SupernodalLayout& layout,
                                std::span<const value_t> panels, value_t* xp,
                                index_t nrhs, index_t ldp, value_t* tail) {
  for (index_t s = layout.nsuper() - 1; s >= 0; --s) {
    const index_t c1 = layout.sn.start[s];
    const index_t w = layout.width(s);
    const index_t m = layout.nrows(s);
    const index_t* rows = layout.srows.data() + layout.srow_ptr[s];
    const value_t* panel = panels.data() + layout.panel_ptr[s];
    if (m > w) {
      for (index_t t = w; t < m; ++t) {
        const value_t* src = xp + rows[t] * ldp;
        value_t* dst = tail + static_cast<std::int64_t>(t - w) * ldp;
        for (index_t r = 0; r < nrhs; ++r) dst[r] = src[r];
      }
      blas::gemm_trans_minus_multi(m - w, w, nrhs, panel + w, m, tail, ldp,
                                   xp + c1 * ldp, ldp);
    }
    blas::trsm_lower_transpose_multi(w, nrhs, panel, m, xp + c1 * ldp, ldp);
  }
}

SupernodalCholesky::SupernodalCholesky(const CscMatrix& a_lower,
                                       SupernodeOptions opt) {
  const SymbolicFactor sym = symbolic_cholesky(a_lower);
  SupernodePartition part =
      supernodes_cholesky(sym.parent, sym.colcount, opt);
  layout_ = SupernodalLayout::build(sym, std::move(part));
  panels_.resize(static_cast<std::size_t>(layout_.total_values()));
}

void SupernodalCholesky::factorize(const CscMatrix& a_lower) {
  // The paper (section 4.2) notes that the libraries' numeric phase still
  // computes the transpose of A (to reach upper-triangle entries) and
  // performs reach-style bookkeeping. We reproduce both: the transpose
  // below and the dynamic descendant linked lists in the main loop.
  const CscMatrix upper = transpose(a_lower);
  (void)upper;  // accessed only for parity with the library's numeric cost

  const index_t nsuper = layout_.nsuper();
  scatter_into_panels(layout_, a_lower, panels_);

  // Dynamic update discovery: head[s] is a linked list of descendant
  // supernodes whose next un-consumed row block lands in s; cursor[d] is
  // the position of that block in d's row list.
  std::vector<index_t> head(static_cast<std::size_t>(nsuper), -1);
  std::vector<index_t> list_next(static_cast<std::size_t>(nsuper), -1);
  std::vector<index_t> cursor(static_cast<std::size_t>(nsuper), 0);
  std::vector<index_t> map(static_cast<std::size_t>(layout_.n), 0);

  // Workspace for gather-GEMM-scatter updates: at most max(m) x max(w).
  index_t max_m = 0, max_w = 0;
  for (index_t s = 0; s < nsuper; ++s) {
    max_m = std::max(max_m, layout_.nrows(s));
    max_w = std::max(max_w, layout_.width(s));
  }
  std::vector<value_t> work(static_cast<std::size_t>(max_m) * max_w);

  for (index_t s = 0; s < nsuper; ++s) {
    const index_t c1 = layout_.sn.start[s];
    const index_t c2 = layout_.sn.start[s + 1];
    const index_t w = layout_.width(s);
    const index_t m = layout_.nrows(s);
    const index_t* rows = layout_.srows.data() + layout_.srow_ptr[s];
    value_t* panel = panels_.data() + layout_.panel_ptr[s];
    for (index_t t = 0; t < m; ++t) map[rows[t]] = t;

    // Drain the dynamic descendant list of s.
    index_t d = head[s];
    head[s] = -1;
    while (d != -1) {
      const index_t d_next = list_next[d];
      const index_t* drows = layout_.srows.data() + layout_.srow_ptr[d];
      const index_t dm = layout_.nrows(d);
      const index_t dw = layout_.width(d);
      const value_t* dpanel = panels_.data() + layout_.panel_ptr[d];
      const index_t p1 = cursor[d];
      index_t p2 = p1;
      while (p2 < dm && drows[p2] < c2) ++p2;
      // Update block: C(mu x nu) = Ld[p1..dm) * Ld[p1..p2)^T.
      const index_t mu = dm - p1;
      const index_t nu = p2 - p1;
      value_t* cwork = work.data();
      std::fill(cwork, cwork + static_cast<std::int64_t>(mu) * nu, 0.0);
      blas::gemm_nt_minus(mu, nu, dw, dpanel + p1, dm, dpanel + p1, dm,
                          cwork, mu);
      // Scatter-subtract: C is "minus the update", so add it in.
      for (index_t cjj = 0; cjj < nu; ++cjj) {
        const index_t gcol = drows[p1 + cjj];  // in [c1, c2)
        value_t* dst = panel + static_cast<std::int64_t>(gcol - c1) * m;
        const value_t* src = cwork + static_cast<std::int64_t>(cjj) * mu;
        for (index_t r = cjj; r < mu; ++r) dst[map[drows[p1 + r]]] += src[r];
      }
      // Re-queue d for its next target supernode.
      if (p2 < dm) {
        cursor[d] = p2;
        const index_t target = layout_.sn.col_to_super[drows[p2]];
        list_next[d] = head[target];
        head[target] = d;
      }
      d = d_next;
    }

    // Dense factorization of the diagonal block + panel solve.
    blas::potrf_lower(w, panel, m);
    if (m > w)
      blas::trsm_right_lower_trans(m - w, w, panel, m, panel + w, m);

    // Queue s for its first ancestor target.
    if (m > w) {
      cursor[s] = w;
      const index_t target = layout_.sn.col_to_super[rows[w]];
      list_next[s] = head[target];
      head[target] = s;
    }
    (void)c1;
  }
  factorized_ = true;
}

void SupernodalCholesky::solve(std::span<value_t> bx) const {
  SYMPILER_CHECK(factorized_, "solve() before factorize()");
  SYMPILER_CHECK(static_cast<index_t>(bx.size()) == layout_.n,
                 "solve: size mismatch");
  panel_forward_solve(layout_, panels_, bx);
  panel_backward_solve(layout_, panels_, bx);
}

}  // namespace sympiler::solvers
