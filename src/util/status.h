// Structured error taxonomy of the solver pipeline.
//
// Every failure the pipeline can surface is classified by an ErrorCode and
// carried by a Status — a code, a human-readable message, and (for numeric
// breakdowns) the pivot index/value that tripped it. Exceptions thrown
// across the public API derive from sympiler::Error, which wraps a Status,
// so callers can branch on code() instead of string-matching what().
//
// The legacy exception names (invalid_matrix_error, numerical_error) are
// preserved as Error subclasses with fixed codes: every pre-existing
// catch site keeps compiling and catching.
//
// The taxonomy pairs with the graceful-degradation ladder in the api
// facades (docs/robustness.md): kJitUnavailable and parallel-path faults
// degrade to interpreters/serial re-execution instead of escaping; only
// kInvalidInput and unrecovered kNumericBreakdown reach the caller on the
// default configuration.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sympiler {

/// Failure classification of the whole pipeline.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  /// Structurally invalid input: bad CSC, dimension/RHS mismatch,
  /// malformed MatrixMarket, facade misuse (solve before factor).
  kInvalidInput,
  /// A numerical method failed: non-SPD pivot, singular diagonal.
  kNumericBreakdown,
  /// The JIT tier cannot produce a kernel here: no host compiler, scratch
  /// dir not writable, compile/dlopen/dlsym failure. Always recoverable —
  /// the interpreters serve the same plan bit-identically.
  kJitUnavailable,
  /// A resource guard tripped: workspace borrowed concurrently, injected
  /// allocation failure.
  kResourceExhausted,
  /// The plan verifier (verify::verify_plan) found an invariant violation
  /// in a freshly built plan: an illegal schedule, an aliased update slot,
  /// corrupted inspection sets. Never a property of the user's input —
  /// always a planner/scheduler bug (or an injected fault); the plan is
  /// rejected before any numeric code runs on it.
  kPlanInvalid,
  /// A persisted plan file failed validation: bad magic, a CRC mismatch,
  /// an out-of-bounds section offset/count, or a loaded plan that fails
  /// re-verification. Always recoverable — rung 5 of the degradation
  /// ladder discards the file and replans from the matrix.
  kCorruptPlanFile,
  /// A persisted plan file is internally consistent but written by an
  /// incompatible layout: unknown format version, foreign endianness, or
  /// a different index/value ABI. Recovered exactly like kCorruptPlanFile
  /// (discard + replan + rewrite), but classified separately so fleets can
  /// tell rolling-upgrade churn from disk corruption.
  kStalePlanVersion,
};

[[nodiscard]] const char* to_string(ErrorCode code);

/// One classified failure (or kOk). detail_index/detail_value carry the
/// breaking pivot for kNumericBreakdown (-1 when unknown/irrelevant).
struct Status {
  ErrorCode code = ErrorCode::kOk;
  std::string message;
  std::int64_t detail_index = -1;
  double detail_value = 0.0;

  [[nodiscard]] bool ok() const { return code == ErrorCode::kOk; }
  [[nodiscard]] std::string to_string() const;
};

/// Base of every exception the pipeline throws. Derives from
/// std::runtime_error so pre-taxonomy catch sites keep working.
class Error : public std::runtime_error {
 public:
  explicit Error(Status status)
      : std::runtime_error(status.message), status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] ErrorCode code() const { return status_.code; }

 private:
  Status status_;
};

/// Thrown on structurally invalid inputs (bad CSC, dimension mismatch, ...).
class invalid_matrix_error : public Error {
 public:
  explicit invalid_matrix_error(const std::string& what)
      : Error({ErrorCode::kInvalidInput, what}) {}
};

/// Thrown when a numerical method fails (non-SPD pivot, singular
/// diagonal). Carries the breaking pivot when the thrower knows it.
class numerical_error : public Error {
 public:
  explicit numerical_error(const std::string& what)
      : Error({ErrorCode::kNumericBreakdown, what}) {}
  numerical_error(const std::string& what, std::int64_t pivot_index,
                  double pivot_value)
      : Error({ErrorCode::kNumericBreakdown, what, pivot_index, pivot_value}) {
  }

  /// Column of the breaking pivot, -1 when the thrower could not tell.
  [[nodiscard]] std::int64_t pivot_index() const {
    return status().detail_index;
  }
  /// Value of the breaking pivot (meaningful when pivot_index() >= 0).
  [[nodiscard]] double pivot_value() const { return status().detail_value; }
};

/// Thrown when the JIT tier cannot produce a kernel. Contained by
/// PlanCompiler::compile / the facades (mark_failed + interpreter); only
/// direct JitModule users see it escape.
class jit_unavailable_error : public Error {
 public:
  explicit jit_unavailable_error(const std::string& what)
      : Error({ErrorCode::kJitUnavailable, what}) {}
};

/// Thrown when a resource guard trips (concurrent workspace borrow,
/// injected allocation failure).
class resource_exhausted_error : public Error {
 public:
  explicit resource_exhausted_error(const std::string& what)
      : Error({ErrorCode::kResourceExhausted, what}) {}
};

/// Thrown by the Planner when verify::verify_plan rejects a freshly built
/// plan. what() carries the verifier's full report — one line per finding.
class plan_verification_error : public Error {
 public:
  explicit plan_verification_error(const std::string& what)
      : Error({ErrorCode::kPlanInvalid, what}) {}
};

/// Status classification of an arbitrary in-flight exception: the carried
/// Status when `e` is a sympiler::Error; otherwise kResourceExhausted with
/// the exception's message (the anonymous failures the numeric paths can
/// realistically hit are allocation failures — std::bad_alloc,
/// std::length_error from vector growth).
[[nodiscard]] Status status_of(const std::exception& e);

}  // namespace sympiler
