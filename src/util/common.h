// Common scalar/index typedefs and small helpers shared by every module.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace sympiler {

/// Index type used for matrix dimensions and sparse index arrays.
/// 32-bit indices cover every problem in the paper's suite (n <= 1e6,
/// nnz(L) well below 2^31) and halve the symbolic memory traffic.
using index_t = std::int32_t;

/// Numerical value type. The paper's suite is double precision throughout.
using value_t = double;

/// Thrown on structurally invalid inputs (bad CSC, dimension mismatch, ...).
class invalid_matrix_error : public std::runtime_error {
 public:
  explicit invalid_matrix_error(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown when a numerical method fails (non-SPD pivot, singular diagonal).
class numerical_error : public std::runtime_error {
 public:
  explicit numerical_error(const std::string& what)
      : std::runtime_error(what) {}
};

#define SYMPILER_CHECK(cond, msg)                      \
  do {                                                 \
    if (!(cond)) throw invalid_matrix_error(msg);      \
  } while (0)

}  // namespace sympiler
