// Common scalar/index typedefs and small helpers shared by every module.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace sympiler {

/// Index type used for matrix dimensions and sparse index arrays.
/// 32-bit indices cover every problem in the paper's suite (n <= 1e6,
/// nnz(L) well below 2^31) and halve the symbolic memory traffic.
using index_t = std::int32_t;

/// Numerical value type. The paper's suite is double precision throughout.
using value_t = double;

// The exception hierarchy (invalid_matrix_error, numerical_error,
// jit_unavailable_error, resource_exhausted_error — all deriving from
// sympiler::Error over a structured Status) lives in util/status.h.

#define SYMPILER_CHECK(cond, msg)                      \
  do {                                                 \
    if (!(cond)) throw invalid_matrix_error(msg);      \
  } while (0)

}  // namespace sympiler
