#include "util/fault.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

namespace sympiler::util {

// Constant-initialized, and defined before g_env_armed below so the
// static-init-time arm_from_env() call writes an already-live object.
std::atomic<bool> FaultInjector::armed_{false};

namespace {

struct SiteCounters {
  std::atomic<std::uint64_t> passes{0};
};

SiteCounters g_counters[kFaultSiteCount];
std::atomic<std::uint64_t> g_fired{0};

// The armed trigger. Written only by arm()/reset() (with armed_ false
// during the write), read by the slow path under armed_ == true; the
// release store to armed_ in arm() publishes the fields.
std::atomic<int> g_site{-1};
std::atomic<std::uint64_t> g_nth{0};
std::atomic<std::uint64_t> g_count{0};

const char* const kSiteNames[kFaultSiteCount] = {
    "alloc",  "jit-compile", "jit-load",   "pivot",         "cache-insert",
    "verify", "store-write", "store-read", "store-checksum"};

// Outcome of the last arm_from_env(). Function-local static so the
// static-init-time call below constructs it on first use regardless of TU
// order; guarded by no lock — written only from arm_from_env(), which is
// documented not to race with in-flight solves.
Status& env_status_storage() {
  static Status status;
  return status;
}

// Arm from SYMPILER_FAULT once, before main touches the library. A failed
// parse leaves the injector disarmed but is loud about it: a stderr
// diagnostic plus a sticky kInvalidInput in env_status() — a typo'd fault
// spec silently testing the happy path is itself a test bug.
const bool g_env_armed = FaultInjector::arm_from_env();

}  // namespace

bool FaultInjector::should_fail_slow(FaultSite site) {
  const int s = static_cast<int>(site);
  const std::uint64_t pass =
      1 + g_counters[s].passes.fetch_add(1, std::memory_order_relaxed);
  if (s != g_site.load(std::memory_order_acquire)) return false;
  const std::uint64_t nth = g_nth.load(std::memory_order_relaxed);
  const std::uint64_t count = g_count.load(std::memory_order_relaxed);
  // Overflow-safe window check: nth + count can wrap for "fire forever"
  // triggers (count = UINT64_MAX).
  if (pass < nth || pass - nth >= count) return false;
  g_fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultInjector::arm(FaultSite site, std::uint64_t nth,
                        std::uint64_t count) {
  if (nth == 0) nth = 1;
  armed_.store(false, std::memory_order_release);
  for (SiteCounters& c : g_counters)
    c.passes.store(0, std::memory_order_relaxed);
  g_fired.store(0, std::memory_order_relaxed);
  g_site.store(static_cast<int>(site), std::memory_order_relaxed);
  g_nth.store(nth, std::memory_order_relaxed);
  g_count.store(count == 0 ? 1 : count, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::reset() {
  armed_.store(false, std::memory_order_release);
  for (SiteCounters& c : g_counters)
    c.passes.store(0, std::memory_order_relaxed);
  g_fired.store(0, std::memory_order_relaxed);
  g_site.store(-1, std::memory_order_relaxed);
  g_nth.store(0, std::memory_order_relaxed);
  g_count.store(0, std::memory_order_relaxed);
}

bool FaultInjector::arm_from_env() {
  env_status_storage() = Status{};
  const char* spec = std::getenv("SYMPILER_FAULT");
  if (spec == nullptr || *spec == '\0') return false;
  FaultSite site{};
  std::uint64_t nth = 0, count = 0;
  if (!parse(spec, &site, &nth, &count)) {
    std::string sites;
    for (int s = 0; s < kFaultSiteCount; ++s) {
      if (s > 0) sites += ", ";
      sites += kSiteNames[s];
    }
    Status status;
    status.code = ErrorCode::kInvalidInput;
    status.message = "malformed SYMPILER_FAULT spec '" + std::string(spec) +
                     "': expected site:nth[:count] with site one of " + sites;
    std::fprintf(stderr, "sympiler: %s\n", status.message.c_str());
    env_status_storage() = std::move(status);
    return false;
  }
  arm(site, nth, count);
  return true;
}

Status FaultInjector::env_status() { return env_status_storage(); }

std::uint64_t FaultInjector::hits(FaultSite site) {
  return g_counters[static_cast<int>(site)].passes.load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::fired() {
  return g_fired.load(std::memory_order_relaxed);
}

const char* FaultInjector::name(FaultSite site) {
  const int s = static_cast<int>(site);
  if (s < 0 || s >= kFaultSiteCount) return "?";
  return kSiteNames[s];
}

bool FaultInjector::parse(const char* spec, FaultSite* site,
                          std::uint64_t* nth, std::uint64_t* count) {
  if (spec == nullptr) return false;
  const char* colon = std::strchr(spec, ':');
  if (colon == nullptr || colon == spec) return false;
  const std::string name(spec, colon);
  int found = -1;
  for (int s = 0; s < kFaultSiteCount; ++s)
    if (name == kSiteNames[s]) found = s;
  if (found < 0) return false;
  // strtoull alone is too lax for a fault spec: it skips leading
  // whitespace and wraps negative input ("pivot:-1" would arm ordinal
  // 2^64-1). Require the ordinal and count to start with a digit.
  if (colon[1] < '0' || colon[1] > '9') return false;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(colon + 1, &end, 10);
  if (end == colon + 1 || n == 0) return false;
  unsigned long long c = 1;
  if (*end == ':') {
    const char* cstart = end + 1;
    if (*cstart < '0' || *cstart > '9') return false;
    c = std::strtoull(cstart, &end, 10);
    if (end == cstart || c == 0) return false;
  }
  if (*end != '\0') return false;
  *site = static_cast<FaultSite>(found);
  *nth = static_cast<std::uint64_t>(n);
  *count = static_cast<std::uint64_t>(c);
  return true;
}

}  // namespace sympiler::util
