// Monotonic wall-clock timing helpers used by benchmarks and examples.
#pragma once

#include <chrono>

namespace sympiler {

/// Simple RAII-free stopwatch over std::chrono::steady_clock.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace sympiler
