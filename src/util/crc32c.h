// CRC-32C (Castagnoli, polynomial 0x82F63B78, reflected). The checksum
// the plan-file format uses for its header, section-table, and payload
// integrity checks (core/plan_serde.h). Castagnoli rather than the zlib
// polynomial because x86 has carried a dedicated CRC-32C instruction
// since SSE4.2: the load path CRCs every byte of a multi-megabyte plan
// file before trusting it, and the restart-warm budget (store load +
// re-verify <= 0.5x cold planning, bench/cache_reuse.cpp) leaves no room
// for a table-driven byte loop there.
//
// Dispatch follows the blas bundle-kernel idiom (blas/bundle_scalar.cpp):
// one runtime __builtin_cpu_supports probe selects the hardware path,
// falling back to portable slicing-by-8. Both paths compute the identical
// function — pinned by a known-answer test plus an equivalence sweep in
// tests/test_persistence.cpp — so files written on one machine validate
// on any other.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sympiler::util {

/// CRC-32C of `len` bytes (initial value/final xor 0xFFFFFFFF, the
/// standard whole-buffer convention). Check value: crc32c("123456789")
/// == 0xE3069283.
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t len);

/// The portable slicing-by-8 implementation, bypassing dispatch. Exposed
/// so tests can pin hardware/software equivalence; production callers use
/// crc32c().
[[nodiscard]] std::uint32_t crc32c_software(const void* data,
                                            std::size_t len);

}  // namespace sympiler::util
