// Small statistics helpers for benchmark reporting (paper reports medians
// of 5 runs; we do the same).
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace sympiler {

/// Median of a sample (copies; samples are tiny).
[[nodiscard]] inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const auto mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(),
                                      v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

[[nodiscard]] inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

/// Geometric mean; ignores non-positive entries (used for speedup summaries).
[[nodiscard]] inline double geomean(const std::vector<double>& v) {
  double log_sum = 0.0;
  std::size_t count = 0;
  for (double x : v) {
    if (x > 0.0) {
      log_sum += std::log(x);
      ++count;
    }
  }
  return count == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(count));
}

}  // namespace sympiler
