// Small statistics helpers for benchmark reporting (paper reports medians
// of 5 runs; we do the same), plus the counter block surfaced by the
// symbolic cache.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace sympiler {

/// Hit/miss/eviction counters of a SymbolicCache (core/symbolic_cache.h).
/// A snapshot — reading it is not synchronized with concurrent cache use.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = lookups();
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
  [[nodiscard]] std::string to_string() const {
    return "hits=" + std::to_string(hits) +
           " misses=" + std::to_string(misses) +
           " evictions=" + std::to_string(evictions);
  }
};

/// Median of a sample (copies; samples are tiny).
[[nodiscard]] inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const auto mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(),
                                      v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

[[nodiscard]] inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

/// Geometric mean; ignores non-positive entries (used for speedup summaries).
[[nodiscard]] inline double geomean(const std::vector<double>& v) {
  double log_sum = 0.0;
  std::size_t count = 0;
  for (double x : v) {
    if (x > 0.0) {
      log_sum += std::log(x);
      ++count;
    }
  }
  return count == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(count));
}

}  // namespace sympiler
