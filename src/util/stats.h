// Small statistics helpers for benchmark reporting (paper reports medians
// of 5 runs; we do the same), plus the counter block surfaced by the
// symbolic cache.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace sympiler {

/// Hit/miss/eviction counters of a plan cache (core/symbolic_cache.h).
/// A plain-value snapshot; per-shard live counters are AtomicCacheStats
/// below, and shard snapshots aggregate with operator+.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t evicted_bytes = 0;  ///< sum of bytes() over evicted plans

  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = lookups();
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
  [[nodiscard]] std::string to_string() const {
    std::string s = "hits=" + std::to_string(hits) +
                    " misses=" + std::to_string(misses) +
                    " evictions=" + std::to_string(evictions);
    if (evicted_bytes > 0)
      s += " evicted_bytes=" + std::to_string(evicted_bytes);
    return s;
  }

  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    evicted_bytes += o.evicted_bytes;
    return *this;
  }
  friend CacheStats operator+(CacheStats a, const CacheStats& b) {
    return a += b;
  }
};

/// Live counters of one cache shard. Mutations use relaxed ordering: each
/// counter is independently monotonic and nothing is published through
/// them, so shard snapshots can be read while other shards (or this one)
/// mutate, without taking any shard lock. Cross-counter invariants (e.g.
/// hits + misses == lookups issued) hold exactly once the mutating threads
/// are quiescent, which is when tests and reports read them.
struct AtomicCacheStats {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> evicted_bytes{0};

  void count_hit() { hits.fetch_add(1, std::memory_order_relaxed); }
  void count_miss() { misses.fetch_add(1, std::memory_order_relaxed); }
  void count_eviction(std::uint64_t bytes) {
    evictions.fetch_add(1, std::memory_order_relaxed);
    evicted_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  void reset() {
    hits.store(0, std::memory_order_relaxed);
    misses.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    evicted_bytes.store(0, std::memory_order_relaxed);
  }
  [[nodiscard]] CacheStats snapshot() const {
    CacheStats s;
    s.hits = hits.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.evicted_bytes = evicted_bytes.load(std::memory_order_relaxed);
    return s;
  }
};

/// Median of a sample (copies; samples are tiny).
[[nodiscard]] inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const auto mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(v.begin(),
                                      v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

[[nodiscard]] inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

/// Geometric mean; ignores non-positive entries (used for speedup summaries).
[[nodiscard]] inline double geomean(const std::vector<double>& v) {
  double log_sum = 0.0;
  std::size_t count = 0;
  for (double x : v) {
    if (x > 0.0) {
      log_sum += std::log(x);
      ++count;
    }
  }
  return count == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(count));
}

}  // namespace sympiler
