// Deterministic fault injection for the failure-domain tests.
//
// The pipeline's error paths (non-SPD pivots, JIT compile/dlopen failures,
// allocation failures, cache-insert failures) are rare by construction, so
// exercising them needs a way to make a specific site fail on a specific
// pass. FaultInjector provides that: each instrumented site calls
// SYMPILER_FAULT_POINT(site), which counts the pass and reports whether
// the armed trigger fires at this ordinal. Triggers are site-indexed and
// ordinal-addressed — "fail the 3rd pivot check" — so a faulted run is
// exactly reproducible.
//
// Arming:
//  * programmatic: FaultInjector::arm(site, nth, count) — fire `count`
//    consecutive passes starting at the nth pass (1-based) of `site`;
//  * environment: SYMPILER_FAULT="site:nth[:count]" (site names from
//    FaultInjector::name: alloc, jit-compile, jit-load, pivot,
//    cache-insert, verify, store-write, store-read, store-checksum),
//    parsed once at process start — re-apply after reset() with
//    arm_from_env(). A malformed spec rejects loudly: the injector stays
//    disarmed, a diagnostic goes to stderr, and env_status() carries a
//    structured kInvalidInput Status naming the bad spec.
//
// Cost when disarmed: one relaxed atomic load per site pass (no counting).
// Compiling with -DSYMPILER_DISABLE_FAULT_INJECTION turns every site into
// a constant false — zero code on the hot path.
//
// Thread safety: sites may be passed concurrently (the parallel
// interpreters do); counters are atomics and the armed trigger is
// immutable while armed. arm()/reset() themselves are not meant to race
// with in-flight solves.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/status.h"

namespace sympiler::util {

/// Instrumented failure sites (docs/robustness.md lists what each one
/// throws and how the pipeline degrades).
enum class FaultSite : int {
  kAlloc = 0,     ///< Workspace::ensure — resource_exhausted_error
  kJitCompile,    ///< JitModule::compile, before forking the host compiler
  kJitLoad,       ///< JitModule::compile, before dlopen of the artifact
  kPivot,         ///< numeric pivot checks — numerical_error
  kCacheInsert,   ///< PlanCache::get_or_build — degrades to uncached plan
  kVerify,        ///< verify::verify_plan — plan_verification_error
  kStoreWrite,    ///< PlanStore::save — degrades to unpersisted plan
  kStoreRead,     ///< PlanStore::load — degrades to cold replan
  kStoreChecksum, ///< plan_serde CRC check — degrades to rung-5 replan
  kSiteCount_,    ///< sentinel
};

inline constexpr int kFaultSiteCount = static_cast<int>(FaultSite::kSiteCount_);

class FaultInjector {
 public:
  /// Count one pass through `site`; true when the armed trigger fires at
  /// this ordinal. Disarmed cost: one relaxed atomic load.
  static bool should_fail(FaultSite site) {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return should_fail_slow(site);
  }

  /// Arm: fire `count` consecutive passes of `site` starting at the nth
  /// pass (1-based) counted from this call. Re-arming replaces the trigger
  /// and restarts the site counters.
  static void arm(FaultSite site, std::uint64_t nth, std::uint64_t count = 1);

  /// Disarm and zero all counters. Does not re-read the environment; call
  /// arm_from_env() to re-apply a SYMPILER_FAULT spec.
  static void reset();

  /// Parse SYMPILER_FAULT from the environment and arm accordingly; false
  /// when unset or unparsable. Called once automatically at process start.
  /// A malformed spec is rejected loudly: a diagnostic is printed to
  /// stderr and env_status() records a kInvalidInput Status.
  static bool arm_from_env();

  /// Outcome of the most recent arm_from_env(): kOk when SYMPILER_FAULT
  /// was unset or parsed cleanly, kInvalidInput (message naming the bad
  /// spec) when it was malformed. Sticky until the next arm_from_env().
  [[nodiscard]] static Status env_status();

  /// Passes counted through `site` since the last arm/reset.
  [[nodiscard]] static std::uint64_t hits(FaultSite site);

  /// Number of times any armed trigger has fired since the last arm/reset.
  [[nodiscard]] static std::uint64_t fired();

  [[nodiscard]] static const char* name(FaultSite site);

  /// Parse a "site:nth[:count]" spec (as in SYMPILER_FAULT). Returns false
  /// without touching the outputs on malformed input.
  static bool parse(const char* spec, FaultSite* site, std::uint64_t* nth,
                    std::uint64_t* count);

 private:
  static bool should_fail_slow(FaultSite site);

  static std::atomic<bool> armed_;
};

}  // namespace sympiler::util

#if defined(SYMPILER_DISABLE_FAULT_INJECTION)
#define SYMPILER_FAULT_POINT(site) false
#else
/// One instrumented failure site. Usage:
///   if (SYMPILER_FAULT_POINT(util::FaultSite::kPivot)) throw ...;
#define SYMPILER_FAULT_POINT(site) \
  (::sympiler::util::FaultInjector::should_fail(site))
#endif
