// Exception containment for OpenMP parallel regions.
//
// An exception escaping an OpenMP worksharing construct is undefined
// behavior (in practice std::terminate), so every parallel region in the
// pipeline wraps its per-item body in an AbortGuard: the first exception
// is captured, the failed flag cancels the remaining work (later items
// see it and return immediately), and the caller rethrows once, outside
// the region.
//
// Determinism of the cancellation: the flag is written before the level's
// implicit barrier and every level starts with a fresh check after a
// barrier, so all threads of the team make the same keep-going decision
// per level — the worksharing constructs stay encountered uniformly, as
// OpenMP requires. Within the failing level, items that already started
// finish normally; items not yet started may or may not run (their output
// is discarded by the rethrow anyway).
#pragma once

#include <atomic>
#include <exception>
#include <mutex>
#include <utility>

namespace sympiler::util {

class AbortGuard {
 public:
  /// Run one work item; never throws out (required inside worksharing
  /// constructs). Skips the item when a previous one already failed.
  template <typename F>
  void run(F&& f) noexcept {
    if (failed()) return;
    try {
      std::forward<F>(f)();
    } catch (...) {
      capture(std::current_exception());
    }
  }

  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }

  /// Record the first exception; later captures are dropped (one region,
  /// one rethrow).
  void capture(std::exception_ptr e) noexcept {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (error_ == nullptr) error_ = std::move(e);
    }
    failed_.store(true, std::memory_order_release);
  }

  /// Call after the parallel region has joined.
  void rethrow_if_failed() {
    if (error_ != nullptr) std::rethrow_exception(error_);
  }

 private:
  std::atomic<bool> failed_{false};
  std::mutex mu_;
  std::exception_ptr error_;
};

}  // namespace sympiler::util
