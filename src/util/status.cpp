#include "util/status.h"

#include <sstream>

namespace sympiler {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "Ok";
    case ErrorCode::kInvalidInput:
      return "InvalidInput";
    case ErrorCode::kNumericBreakdown:
      return "NumericBreakdown";
    case ErrorCode::kJitUnavailable:
      return "JitUnavailable";
    case ErrorCode::kResourceExhausted:
      return "ResourceExhausted";
    case ErrorCode::kPlanInvalid:
      return "PlanInvalid";
    case ErrorCode::kCorruptPlanFile:
      return "CorruptPlanFile";
    case ErrorCode::kStalePlanVersion:
      return "StalePlanVersion";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  if (ok()) return "Ok";
  std::ostringstream os;
  os << sympiler::to_string(code) << ": " << message;
  if (detail_index >= 0)
    os << " (index " << detail_index << ", value " << detail_value << ")";
  return os.str();
}

Status status_of(const std::exception& e) {
  if (const auto* err = dynamic_cast<const Error*>(&e)) return err->status();
  return Status{ErrorCode::kResourceExhausted, e.what()};
}

}  // namespace sympiler
