// CRC-32C implementation (crc32c.h): SSE4.2 hardware path dispatched at
// first use, portable slicing-by-8 fallback. The hardware loop folds
// eight bytes per crc32q instruction; slicing-by-8 looks up eight tables
// per eight-byte word, which breaks the one-table loop's serial
// table[crc ^ byte] dependence chain.
#include "util/crc32c.h"

#include <bit>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define SYMPILER_CRC32C_HW 1
#endif

namespace sympiler::util {

namespace {

// Eight slicing tables: t[0] is the classic byte table for the reflected
// Castagnoli polynomial; t[k][b] advances t[k-1][b] by one more zero
// byte, so eight lookups jointly advance the CRC across a 64-bit word.
struct Tables {
  std::uint32_t t[8][256];
};

const Tables& tables() {
  static const Tables tables = [] {
    Tables s{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      s.t[0][i] = c;
    }
    for (int k = 1; k < 8; ++k)
      for (std::uint32_t i = 0; i < 256; ++i)
        s.t[k][i] = s.t[0][s.t[k - 1][i] & 0xFFu] ^ (s.t[k - 1][i] >> 8);
    return s;
  }();
  return tables;
}

std::uint32_t crc_software(const std::uint8_t* p, std::size_t len,
                           std::uint32_t crc) {
  const Tables& s = tables();
  // The word loop reinterprets eight bytes as two little-endian u32s; on
  // a big-endian host only the (correct, slower) byte loop runs.
  if constexpr (std::endian::native == std::endian::little) {
    while (len >= 8) {
      std::uint32_t lo = 0, hi = 0;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= crc;
      crc = s.t[7][lo & 0xFFu] ^ s.t[6][(lo >> 8) & 0xFFu] ^
            s.t[5][(lo >> 16) & 0xFFu] ^ s.t[4][lo >> 24] ^
            s.t[3][hi & 0xFFu] ^ s.t[2][(hi >> 8) & 0xFFu] ^
            s.t[1][(hi >> 16) & 0xFFu] ^ s.t[0][hi >> 24];
      p += 8;
      len -= 8;
    }
  }
  while (len-- != 0) crc = s.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  return crc;
}

#if defined(SYMPILER_CRC32C_HW)
__attribute__((target("sse4.2"))) std::uint32_t crc_hardware(
    const std::uint8_t* p, std::size_t len, std::uint32_t crc) {
  std::uint64_t c = crc;
  while (len >= 8) {
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    c = _mm_crc32_u64(c, v);
    p += 8;
    len -= 8;
  }
  auto c32 = static_cast<std::uint32_t>(c);
  while (len-- != 0) c32 = _mm_crc32_u8(c32, *p++);
  return c32;
}
#endif

using CrcFn = std::uint32_t (*)(const std::uint8_t*, std::size_t,
                                std::uint32_t);

CrcFn detect() {
#if defined(SYMPILER_CRC32C_HW)
  if (__builtin_cpu_supports("sse4.2")) return crc_hardware;
#endif
  return crc_software;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len) {
  static const CrcFn fn = detect();
  return fn(static_cast<const std::uint8_t*>(data), len, 0xFFFFFFFFu) ^
         0xFFFFFFFFu;
}

std::uint32_t crc32c_software(const void* data, std::size_t len) {
  return crc_software(static_cast<const std::uint8_t*>(data), len,
                      0xFFFFFFFFu) ^
         0xFFFFFFFFu;
}

}  // namespace sympiler::util
