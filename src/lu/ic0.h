// Incomplete Cholesky IC(0) — another section-3.3 method: the same
// prune-set machinery (row patterns) drives a factorization restricted to
// the pattern of A (no fill). Used as a preconditioner; the repeated
// triangular solves it implies are the paper's motivating workload for
// the specialized trisolve.
#pragma once

#include <span>

#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::lu {

/// Zero-fill incomplete Cholesky factor of a symmetric positive definite
/// matrix stored lower: L has exactly the pattern of tril(A) and
/// minimizes (LL^T - A) on that pattern column by column.
/// Throws numerical_error if a pivot becomes non-positive (IC(0) can break
/// down on general SPD matrices; the generators' diagonally dominant
/// matrices are safe).
class IncompleteCholesky0 {
 public:
  explicit IncompleteCholesky0(const CscMatrix& a_lower);  // symbolic
  void factorize(const CscMatrix& a_lower);                // numeric
  [[nodiscard]] const CscMatrix& factor() const { return l_; }
  /// Apply the preconditioner: z = (L L^T)^{-1} r, in place.
  void apply(std::span<value_t> rz) const;

 private:
  CscMatrix l_;  // pattern == tril(A)
  // Prune-sets: row pattern of each row of tril(A) (CSR of the strictly
  // lower triangle), precomputed by the symbolic phase.
  std::vector<index_t> rowpat_ptr_;
  std::vector<index_t> rowpat_;
  bool factorized_ = false;
};

}  // namespace sympiler::lu
