// Sparse LU via the Gilbert-Peierls left-looking algorithm — the paper's
// section 3.3 "other matrix methods": every column factorization is a
// sparse triangular solve whose iteration space is a reach-set, so the
// same symbolic machinery (DFS over the dependence graph of the partial
// factor) applies.
//
// This is the static-pattern variant (no pivoting), matching Sympiler's
// fixed-sparsity model: the full patterns of L and U are computed once by
// the symbolic phase (symbolic GP), and the numeric phase consumes the
// precomputed column reach-sets. Suitable for diagonally dominant /
// SPD-like systems (the KLU use case the paper cites for circuit
// simulation).
#pragma once

#include <span>

#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::lu {

/// Symbolic LU: patterns of L (unit lower, diagonal stored) and U (upper,
/// diagonal stored), column by column via reachability on the partial L.
struct LuSymbolic {
  CscMatrix l_pattern;  ///< values allocated, zero
  CscMatrix u_pattern;
  std::int64_t flops = 0;  ///< numeric flop estimate
};

[[nodiscard]] LuSymbolic symbolic_lu(const CscMatrix& a);

/// Numeric Gilbert-Peierls factorization into the symbolic patterns.
/// Throws numerical_error on a zero pivot. L has a unit diagonal (stored).
class LuFactor {
 public:
  explicit LuFactor(const CscMatrix& a);  // symbolic phase
  void factorize(const CscMatrix& a);     // numeric phase (reusable)
  /// Solve A x = b in place.
  void solve(std::span<value_t> bx) const;
  [[nodiscard]] const CscMatrix& lower() const { return l_; }
  [[nodiscard]] const CscMatrix& upper() const { return u_; }
  [[nodiscard]] double flops() const { return static_cast<double>(flops_); }

 private:
  CscMatrix l_;  // pattern from symbolic, values from numeric
  CscMatrix u_;
  std::int64_t flops_ = 0;
  bool factorized_ = false;
};

}  // namespace sympiler::lu
