#include "lu/lu.h"

#include <algorithm>
#include <vector>

#include "solvers/trisolve.h"

namespace sympiler::lu {

LuSymbolic symbolic_lu(const CscMatrix& a) {
  const index_t n = a.cols();
  SYMPILER_CHECK(a.rows() == n, "symbolic_lu: matrix must be square");
  LuSymbolic sym;
  // Column patterns of L (rows >= j) and U (rows <= j), built left to
  // right. The pattern of column j is Reach_{L(:,0:j-1)}(pattern A(:,j)),
  // computed by DFS over the partial L using per-column adjacency into the
  // growing structure.
  std::vector<std::vector<index_t>> lcols(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> ucols(static_cast<std::size_t>(n));
  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
  std::vector<index_t> node_stack, edge_stack, found;
  for (index_t j = 0; j < n; ++j) {
    found.clear();
    for (index_t p = a.col_begin(j); p < a.col_end(j); ++p) {
      const index_t root = a.rowind[p];
      if (mark[root] == j) continue;
      // DFS through columns k < j (each visited column k contributes its
      // L-column rows as further reachable vertices).
      node_stack.assign(1, root);
      edge_stack.assign(1, 0);
      mark[root] = j;
      while (!node_stack.empty()) {
        const index_t v = node_stack.back();
        bool descended = false;
        if (v < j) {
          const auto& lv = lcols[v];
          for (index_t e = edge_stack.back();
               e < static_cast<index_t>(lv.size()); ++e) {
            const index_t i = lv[e];
            if (i != v && mark[i] != j) {
              mark[i] = j;
              edge_stack.back() = e + 1;
              node_stack.push_back(i);
              edge_stack.push_back(0);
              descended = true;
              break;
            }
          }
        }
        if (!descended) {
          found.push_back(v);
          node_stack.pop_back();
          edge_stack.pop_back();
        }
      }
    }
    std::sort(found.begin(), found.end());
    bool has_diag = false;
    for (const index_t i : found) {
      if (i < j) {
        ucols[j].push_back(i);
      } else {
        if (i == j) has_diag = true;
        lcols[j].push_back(i);
      }
    }
    if (!has_diag) {
      // Structural zero pivot would make U singular; keep the slot so the
      // numeric phase reports it cleanly.
      lcols[j].insert(lcols[j].begin(), j);
    }
    ucols[j].push_back(j);  // U diagonal = pivot position
    // Flops: for each k in U(:,j) off-diag, 2*|L(:,k)| updates.
    for (const index_t k : ucols[j])
      if (k != j)
        sym.flops += 2 * static_cast<std::int64_t>(lcols[k].size());
  }
  auto build = [&](const std::vector<std::vector<index_t>>& cols) {
    CscMatrix m(n, n);
    for (index_t j = 0; j < n; ++j) {
      for (const index_t i : cols[j]) {
        m.rowind.push_back(i);
        m.values.push_back(0.0);
      }
      m.colptr[j + 1] = static_cast<index_t>(m.rowind.size());
    }
    return m;
  };
  sym.l_pattern = build(lcols);
  sym.u_pattern = build(ucols);
  return sym;
}

LuFactor::LuFactor(const CscMatrix& a) {
  LuSymbolic sym = symbolic_lu(a);
  l_ = std::move(sym.l_pattern);
  u_ = std::move(sym.u_pattern);
  flops_ = sym.flops;
}

void LuFactor::factorize(const CscMatrix& a) {
  const index_t n = a.cols();
  SYMPILER_CHECK(a.cols() == l_.cols(), "lu: pattern mismatch");
  std::vector<value_t> x(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    // Scatter A(:,j).
    for (index_t p = a.col_begin(j); p < a.col_end(j); ++p)
      x[a.rowind[p]] = a.values[p];
    // Sparse lower solve restricted to the precomputed U-column pattern
    // (ascending order is topological for a lower-triangular dependence
    // graph). L has unit diagonal: no division in the elimination.
    for (index_t q = u_.col_begin(j); q < u_.col_end(j); ++q) {
      const index_t k = u_.rowind[q];
      if (k == j) continue;
      const value_t xk = x[k];
      if (xk == 0.0) continue;
      for (index_t p = l_.col_begin(k); p < l_.col_end(k); ++p) {
        const index_t i = l_.rowind[p];
        if (i != k) x[i] -= l_.values[p] * xk;
      }
    }
    // Gather U(:,j) and L(:,j).
    for (index_t q = u_.col_begin(j); q < u_.col_end(j); ++q) {
      const index_t i = u_.rowind[q];
      u_.values[q] = x[i];
      if (i != j) x[i] = 0.0;
    }
    const value_t pivot = x[j];
    if (pivot == 0.0)
      throw numerical_error("lu: zero pivot at column " + std::to_string(j));
    x[j] = 0.0;
    for (index_t p = l_.col_begin(j); p < l_.col_end(j); ++p) {
      const index_t i = l_.rowind[p];
      if (i == j) {
        l_.values[p] = 1.0;
      } else {
        l_.values[p] = x[i] / pivot;
        x[i] = 0.0;
      }
    }
  }
  factorized_ = true;
}

void LuFactor::solve(std::span<value_t> bx) const {
  SYMPILER_CHECK(factorized_, "lu solve() before factorize()");
  // L y = b (unit lower), then U x = y (upper: transpose-style backward
  // substitution over columns).
  solvers::trisolve_naive(l_, bx);
  for (index_t j = u_.cols() - 1; j >= 0; --j) {
    const index_t pdiag = u_.col_end(j) - 1;  // diagonal is the last row
    const value_t piv = u_.values[pdiag];
    if (piv == 0.0) throw numerical_error("lu solve: zero diagonal in U");
    const value_t xj = bx[j] / piv;
    bx[j] = xj;
    for (index_t p = u_.col_begin(j); p < pdiag; ++p)
      bx[u_.rowind[p]] -= u_.values[p] * xj;
  }
}

}  // namespace sympiler::lu
