#include "lu/ic0.h"

#include <cmath>
#include <string>
#include <vector>

#include "solvers/trisolve.h"

namespace sympiler::lu {

IncompleteCholesky0::IncompleteCholesky0(const CscMatrix& a_lower) {
  SYMPILER_CHECK(a_lower.rows() == a_lower.cols(), "ic0: not square");
  SYMPILER_CHECK(a_lower.is_lower_triangular(), "ic0: input must be lower");
  l_ = a_lower;  // copy pattern; values overwritten by factorize
  const index_t n = a_lower.cols();
  rowpat_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j)
    for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p)
      if (a_lower.rowind[p] > j) ++rowpat_ptr_[a_lower.rowind[p] + 1];
  for (index_t i = 0; i < n; ++i) rowpat_ptr_[i + 1] += rowpat_ptr_[i];
  rowpat_.resize(static_cast<std::size_t>(rowpat_ptr_[n]));
  std::vector<index_t> next(rowpat_ptr_.begin(), rowpat_ptr_.end() - 1);
  for (index_t j = 0; j < n; ++j)
    for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p)
      if (a_lower.rowind[p] > j) rowpat_[next[a_lower.rowind[p]]++] = j;
}

void IncompleteCholesky0::factorize(const CscMatrix& a_lower) {
  SYMPILER_CHECK(a_lower.same_pattern(l_), "ic0: pattern mismatch");
  const index_t n = l_.cols();
  std::vector<value_t> f(static_cast<std::size_t>(n), 0.0);
  std::vector<index_t> cursor(static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    // Scatter A(j:n, j).
    for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p)
      f[a_lower.rowind[p]] = a_lower.values[p];
    // Left-looking updates restricted to the static pattern: for each k in
    // the row pattern of j, subtract L(j:n,k)*L(j,k) but only at positions
    // present in column j of the pattern (drop the rest — the IC(0) rule).
    for (index_t q = rowpat_ptr_[j]; q < rowpat_ptr_[j + 1]; ++q) {
      const index_t k = rowpat_[q];
      const index_t pj = cursor[k];
      const value_t lkj = l_.values[pj];
      for (index_t p = pj; p < l_.col_end(k); ++p) {
        const index_t i = l_.rowind[p];
        // Dropping: only apply where tril(A) has an entry. A membership
        // probe against column j's pattern would be O(log); instead apply
        // everywhere and re-zero dropped positions below, which keeps the
        // kernel branch-free. Positions outside col j's pattern are reset
        // when gathering.
        f[i] -= l_.values[p] * lkj;
      }
      cursor[k] = pj + 1;
    }
    const value_t d = f[j];
    if (!(d > 0.0))
      throw numerical_error("ic0: non-positive pivot at column " +
                            std::to_string(j));
    const value_t ljj = std::sqrt(d);
    const index_t pdiag = l_.col_begin(j);
    l_.values[pdiag] = ljj;
    f[j] = 0.0;
    const value_t inv = 1.0 / ljj;
    for (index_t p = pdiag + 1; p < l_.col_end(j); ++p) {
      const index_t i = l_.rowind[p];
      l_.values[p] = f[i] * inv;
      f[i] = 0.0;
    }
    cursor[j] = pdiag + 1;
    // Reset dropped fill positions (anything still nonzero in f whose
    // index lies in the union of updating columns). Cheap rescan of the
    // updating columns keeps f clean for the next iteration.
    for (index_t q = rowpat_ptr_[j]; q < rowpat_ptr_[j + 1]; ++q) {
      const index_t k = rowpat_[q];
      for (index_t p = l_.col_begin(k); p < l_.col_end(k); ++p)
        f[l_.rowind[p]] = 0.0;
    }
  }
  factorized_ = true;
}

void IncompleteCholesky0::apply(std::span<value_t> rz) const {
  SYMPILER_CHECK(factorized_, "ic0 apply() before factorize()");
  solvers::trisolve_naive(l_, rz);
  solvers::trisolve_transpose(l_, rz);
}

}  // namespace sympiler::lu
