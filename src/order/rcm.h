// Fill-reducing orderings. The paper's library baselines run on top of
// fill-reducing permutations (AMD in Eigen/CHOLMOD); offline we provide
// reverse Cuthill-McKee plus the generators' built-in nested-dissection
// numbering, and benchmark the choice in bench/ablation_ordering.
#pragma once

#include <vector>

#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::order {

/// Reverse Cuthill-McKee ordering of a symmetric matrix stored lower.
/// Returns perm with new_index = perm[old_index]. Each connected component
/// is started from a pseudo-peripheral vertex.
[[nodiscard]] std::vector<index_t> rcm(const CscMatrix& a_lower);

/// Minimum-degree ordering (classic quotient-graph-free variant: repeated
/// minimum-degree vertex elimination on an explicit adjacency structure
/// with degree buckets). Intended for the moderate-size suite problems.
[[nodiscard]] std::vector<index_t> minimum_degree(const CscMatrix& a_lower);

}  // namespace sympiler::order
