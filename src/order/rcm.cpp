#include "order/rcm.h"

#include <algorithm>
#include <queue>

#include "sparse/ops.h"

namespace sympiler::order {

namespace {

/// Adjacency of the symmetric pattern (both triangles, no diagonal).
struct Adjacency {
  std::vector<index_t> ptr;
  std::vector<index_t> adj;
  [[nodiscard]] index_t degree(index_t v) const { return ptr[v + 1] - ptr[v]; }
};

Adjacency build_adjacency(const CscMatrix& a_lower) {
  const index_t n = a_lower.cols();
  Adjacency g;
  g.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p) {
      const index_t i = a_lower.rowind[p];
      if (i == j) continue;
      ++g.ptr[i + 1];
      ++g.ptr[j + 1];
    }
  }
  for (index_t v = 0; v < n; ++v) g.ptr[v + 1] += g.ptr[v];
  g.adj.resize(static_cast<std::size_t>(g.ptr[n]));
  std::vector<index_t> next(g.ptr.begin(), g.ptr.end() - 1);
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p) {
      const index_t i = a_lower.rowind[p];
      if (i == j) continue;
      g.adj[next[i]++] = j;
      g.adj[next[j]++] = i;
    }
  }
  return g;
}

/// BFS computing levels; returns the last-level vertex of minimum degree
/// (one pseudo-peripheral sweep) and the visit count.
index_t bfs_far_vertex(const Adjacency& g, index_t start,
                       std::vector<index_t>& level, index_t stamp) {
  std::queue<index_t> q;
  q.push(start);
  level[start] = stamp;
  index_t last = start;
  while (!q.empty()) {
    const index_t v = q.front();
    q.pop();
    last = v;
    for (index_t p = g.ptr[v]; p < g.ptr[v + 1]; ++p) {
      const index_t w = g.adj[p];
      if (level[w] != stamp) {
        level[w] = stamp;
        q.push(w);
      }
    }
  }
  return last;
}

}  // namespace

std::vector<index_t> rcm(const CscMatrix& a_lower) {
  const index_t n = a_lower.cols();
  const Adjacency g = build_adjacency(a_lower);
  std::vector<index_t> order;  // Cuthill-McKee order (reversed at the end)
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> placed(static_cast<std::size_t>(n), 0);
  std::vector<index_t> level(static_cast<std::size_t>(n), -1);
  std::vector<index_t> neighbors;

  for (index_t seed = 0; seed < n; ++seed) {
    if (placed[seed]) continue;
    // Two BFS sweeps to approximate a peripheral start vertex.
    index_t start = bfs_far_vertex(g, seed, level, 2 * seed);
    start = bfs_far_vertex(g, start, level, 2 * seed + 1);
    // Standard CM: BFS, neighbors appended in increasing-degree order.
    std::size_t head = order.size();
    order.push_back(start);
    placed[start] = 1;
    while (head < order.size()) {
      const index_t v = order[head++];
      neighbors.clear();
      for (index_t p = g.ptr[v]; p < g.ptr[v + 1]; ++p) {
        const index_t w = g.adj[p];
        if (!placed[w]) {
          placed[w] = 1;
          neighbors.push_back(w);
        }
      }
      std::sort(neighbors.begin(), neighbors.end(),
                [&](index_t a, index_t b) {
                  return g.degree(a) < g.degree(b);
                });
      order.insert(order.end(), neighbors.begin(), neighbors.end());
    }
  }
  // order[k] = old vertex placed k-th; reverse and convert to perm form.
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) perm[order[k]] = n - 1 - k;
  return perm;
}

std::vector<index_t> minimum_degree(const CscMatrix& a_lower) {
  const index_t n = a_lower.cols();
  // Straightforward minimum-degree on a growing elimination graph with
  // lazily cleaned adjacency sets. Suitable up to mid-size problems;
  // quadratic worst cases are avoided by the bucket structure.
  std::vector<std::vector<index_t>> adj(static_cast<std::size_t>(n));
  {
    const Adjacency g = build_adjacency(a_lower);
    for (index_t v = 0; v < n; ++v)
      adj[v].assign(g.adj.begin() + g.ptr[v], g.adj.begin() + g.ptr[v + 1]);
  }
  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  std::vector<index_t> degree(static_cast<std::size_t>(n), 0);
  // Degree buckets: bucket[d] = vertices with current (stale-allowed) degree d.
  std::vector<std::vector<index_t>> bucket(static_cast<std::size_t>(n) + 1);
  for (index_t v = 0; v < n; ++v) {
    degree[v] = static_cast<index_t>(adj[v].size());
    bucket[degree[v]].push_back(v);
  }
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  index_t next_num = 0;
  index_t d = 0;
  while (next_num < n) {
    while (d <= n && bucket[d].empty()) ++d;
    if (d > n) break;
    const index_t v = bucket[d].back();
    bucket[d].pop_back();
    if (eliminated[v]) continue;
    if (degree[v] != d) continue;  // stale bucket entry
    // Eliminate v: its live neighbors become a clique.
    eliminated[v] = 1;
    perm[v] = next_num++;
    // Collect live neighborhood.
    std::vector<index_t> live;
    for (const index_t w : adj[v])
      if (!eliminated[w] && !mark[w]) {
        mark[w] = 1;
        live.push_back(w);
      }
    for (const index_t w : live) mark[w] = 0;
    // Update each live neighbor: drop dead vertices, add clique edges.
    for (const index_t w : live) {
      auto& aw = adj[w];
      aw.erase(std::remove_if(aw.begin(), aw.end(),
                              [&](index_t u) { return eliminated[u]; }),
               aw.end());
      for (const index_t u : aw) mark[u] = 1;
      mark[w] = 1;
      for (const index_t u : live)
        if (!mark[u]) aw.push_back(u);
      for (const index_t u : aw) mark[u] = 0;
      mark[w] = 0;
      const auto nd = static_cast<index_t>(aw.size());
      if (nd != degree[w]) {
        degree[w] = nd;
        bucket[nd].push_back(w);
        d = std::min(d, nd);  // may need to revisit a lower bucket
      }
    }
  }
  return perm;
}

}  // namespace sympiler::order
