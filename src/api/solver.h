// Public facade over the Sympiler pipeline: every solve enters through
// here, and every symbolic inspection is looked up in a pattern-keyed
// SymbolicCache before it is run.
//
// The paper's decoupling makes inspection a pure function of the sparsity
// pattern; this layer turns that into operational leverage for services
// that solve many systems with recurring patterns (FEM Newton steps,
// circuit transients): the first factor() of a pattern pays the inspector,
// every later factor() of the same pattern — from this Solver or any other
// sharing the context — is numeric-only. The cache holds
// shared_ptr<const Sets>, so cached sets outlive any one matrix or Solver
// instance.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/cholesky_executor.h"
#include "core/options.h"
#include "core/symbolic_cache.h"
#include "core/trisolve_executor.h"
#include "parallel/levelset.h"
#include "sparse/csc.h"
#include "util/common.h"
#include "util/stats.h"

namespace sympiler::api {

/// Which numeric path a factor() ended up on. Chosen from the cached sets'
/// profitability fields, not rediscovered per call.
enum class ExecutionPath {
  Simplicial,          ///< VI-Prune-only left-looking (VS-Block unprofitable)
  Supernodal,          ///< sequential supernodal executor
  ParallelSupernodal,  ///< level-set parallel supernodal (OpenMP builds)
};

[[nodiscard]] const char* to_string(ExecutionPath path);

/// Facade configuration: the inspection options plus the knobs that steer
/// the numeric-path choice.
struct SolverConfig {
  core::SympilerOptions options;

  /// Allow the level-set parallel Cholesky when it looks profitable.
  /// Meaningless (always sequential) without SYMPILER_HAS_OPENMP.
  bool enable_parallel = true;
  /// Parallel profitability gates: enough supernodes to schedule, and wide
  /// enough average levels to beat the barrier cost per level.
  index_t parallel_min_supernodes = 256;
  double parallel_min_avg_level_width = 8.0;

  /// Capacity of the private SymbolicContext a Solver creates when it is
  /// constructed with an explicitly null context. Ignored on the default
  /// path (sharing SymbolicContext::global() or a caller-supplied context,
  /// whose capacity was fixed at that context's construction).
  std::size_t cache_capacity = core::CholeskyCache::kDefaultCapacity;
};

/// A bundle of the two symbolic caches. Solvers sharing a context share
/// inspection results; the process-wide default context makes that the
/// out-of-the-box behavior.
class SymbolicContext {
 public:
  explicit SymbolicContext(
      std::size_t capacity = core::CholeskyCache::kDefaultCapacity)
      : cholesky_(capacity), trisolve_(capacity) {}

  [[nodiscard]] core::CholeskyCache& cholesky_cache() { return cholesky_; }
  [[nodiscard]] core::TriSolveCache& trisolve_cache() { return trisolve_; }

  /// Process-wide default context (created on first use, never destroyed
  /// before its borrowers thanks to shared_ptr ownership).
  [[nodiscard]] static std::shared_ptr<SymbolicContext> global();

 private:
  core::CholeskyCache cholesky_;
  core::TriSolveCache trisolve_;
};

/// SPD solver facade: factor() + solve()/solve_batch() with cached
/// symbolic analysis. One Solver holds one factorization at a time;
/// factor() with a new pattern re-routes automatically (and usually still
/// hits the cache if the pattern recurred).
class Solver {
 public:
  explicit Solver(SolverConfig config = {},
                  std::shared_ptr<SymbolicContext> context =
                      SymbolicContext::global());

  /// Symbolic (cache lookup, inspect on miss) + numeric factorization of
  /// the lower triangle of an SPD matrix. Repeated calls with the same
  /// pattern skip every symbolic step except the O(nnz) key hash.
  void factor(const CscMatrix& a_lower);

  /// Solve A x = b in place (requires factor()).
  void solve(std::span<value_t> bx) const;

  /// Multi-RHS solve: `bx` holds nrhs column-major dense right-hand sides
  /// of length n; solutions overwrite them. RHS columns are independent
  /// and solved in parallel under OpenMP builds.
  void solve_batch(std::span<value_t> bx, index_t nrhs) const;

  /// Convenience multi-RHS overload.
  void solve_batch(std::vector<std::vector<value_t>>& rhs) const;

  /// Extract L as CSC (requires factor()).
  [[nodiscard]] CscMatrix factor_csc() const;

  /// True when the last factor() ran no inspection: its symbolic phase was
  /// served from the cache or from this Solver's standing same-pattern
  /// state.
  [[nodiscard]] bool symbolic_cached() const { return symbolic_cached_; }
  /// Numeric path the last factor() ran (valid after factor()).
  [[nodiscard]] ExecutionPath path() const { return path_; }
  /// Inspection sets backing the current factorization.
  [[nodiscard]] const core::CholeskySets& sets() const;
  /// Counters of the underlying Cholesky cache.
  [[nodiscard]] CacheStats cache_stats() const;
  [[nodiscard]] const std::shared_ptr<SymbolicContext>& context() const {
    return context_;
  }

 private:
  void prepare_symbolic(const CscMatrix& a_lower);
  [[nodiscard]] bool parallel_profitable() const;

  SolverConfig config_;
  std::shared_ptr<SymbolicContext> context_;

  core::PatternKey key_;  ///< key of the current symbolic state
  bool has_key_ = false;
  bool symbolic_cached_ = false;
  ExecutionPath path_ = ExecutionPath::Simplicial;
  std::shared_ptr<const core::CholeskySets> sets_;

  // Sequential paths run through the executor; the parallel path factors
  // into panels_ directly with the level schedule.
  std::unique_ptr<core::CholeskyExecutor> executor_;
  parallel::LevelSchedule schedule_;
  std::vector<value_t> panels_;
  bool factorized_ = false;
};

/// Triangular-solve facade: the Lx = b pipeline (paper Figure 1) with the
/// reach/block sets cached per (pattern of L, pattern of b). `l` is
/// borrowed and must outlive the TriangularSolver; the sets are shared
/// with the cache and outlive both.
class TriangularSolver {
 public:
  TriangularSolver(const CscMatrix& l, std::span<const index_t> beta,
                   SolverConfig config = {},
                   std::shared_ptr<SymbolicContext> context =
                       SymbolicContext::global());

  /// Numeric solve: x holds b on entry, the solution on exit.
  void solve(std::span<value_t> x) const { executor_.solve(x); }

  /// Multi-RHS variant; every column must carry the inspected pattern.
  void solve_batch(std::span<value_t> xs, index_t nrhs) const;

  [[nodiscard]] bool symbolic_cached() const { return symbolic_cached_; }
  [[nodiscard]] const core::TriSolveSets& sets() const {
    return executor_.sets();
  }
  [[nodiscard]] CacheStats cache_stats() const;

 private:
  std::shared_ptr<SymbolicContext> context_;
  index_t n_ = 0;
  bool symbolic_cached_ = false;
  core::TriSolveExecutor executor_;
};

}  // namespace sympiler::api
