// Public facade over the Sympiler pipeline: every solve enters through
// here, and every symbolic product is looked up in the sharded plan cache
// before any planning runs.
//
// The paper's decoupling makes the entire structure-specific strategy a
// pure function of the sparsity pattern: inspection sets, the level-set
// schedule, and the execution-path choice are bundled by core::Planner
// into one immutable core::ExecutionPlan. This layer turns that into
// operational leverage for services that solve many systems with
// recurring patterns (FEM Newton steps, circuit transients): the first
// factor() of a pattern pays the Planner, every later factor() of the
// same pattern — from this Solver or any other sharing the context — is
// numeric-only, schedule-free included. The cache holds
// shared_ptr<const Plan>, so cached plans outlive any one matrix or
// Solver instance; Solver itself is a thin dispatch on plan->path.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/cholesky_executor.h"
#include "core/execution_plan.h"
#include "core/options.h"
#include "core/planner.h"
#include "core/symbolic_cache.h"
#include "core/trisolve_executor.h"
#include "core/workspace.h"
#include "sparse/csc.h"
#include "util/common.h"
#include "util/stats.h"

namespace sympiler::api {

/// Numeric path of a plan (see core/execution_plan.h). Re-exported: the
/// facade's callers dispatch and report on it.
using core::ExecutionPath;
using core::to_string;

/// Facade configuration: the planner inputs plus the cache geometry a
/// Solver uses when it creates a private context.
struct SolverConfig {
  core::SympilerOptions options;

  /// Allow the level-set parallel paths when they look profitable.
  /// Meaningless (always sequential) without SYMPILER_HAS_OPENMP.
  bool enable_parallel = true;
  /// Parallel profitability gates: enough supernodes to schedule, and wide
  /// enough average levels to beat the barrier cost per level.
  index_t parallel_min_supernodes = 256;
  double parallel_min_avg_level_width = 8.0;
  /// Coarsen committed parallel schedules into chains + SIMD bundles
  /// (core::PlannerConfig::coarsen_schedule).
  bool coarsen_schedule = true;

  /// Byte budget and shard count of the private SymbolicContext a Solver
  /// creates when it is constructed with an explicitly null context.
  /// Ignored on the default path (sharing SymbolicContext::global() or a
  /// caller-supplied context, whose geometry was fixed at construction).
  std::size_t cache_byte_budget = core::CholeskyCache::kDefaultByteBudget;
  std::size_t cache_shards = core::CholeskyCache::kDefaultShards;

  /// Planner view of this config.
  [[nodiscard]] core::PlannerConfig planner_config() const {
    core::PlannerConfig pc;
    pc.options = options;
    pc.enable_parallel = enable_parallel;
    pc.parallel_min_supernodes = parallel_min_supernodes;
    pc.parallel_min_avg_level_width = parallel_min_avg_level_width;
    pc.coarsen_schedule = coarsen_schedule;
    return pc;
  }
};

/// What the graceful-degradation ladder did on the most recent
/// factor()/solve() of a facade (docs/robustness.md). A degraded run still
/// produced a correct result — via the interpreter instead of the JIT
/// kernel, a serial re-execution instead of the parallel sweep, or a
/// diagonally shifted factorization — and this record says which rung
/// served it and what failure it absorbed.
struct FactorReport {
  /// The JIT tier failed (compile/load error, injected fault) and the
  /// plan interpreter served the call instead. Sticky per plan: the slot
  /// remembers the failure, so later calls degrade without retrying.
  bool jit_degraded = false;
  /// A parallel sweep hit an infrastructure fault and the same schedule
  /// was re-executed serially (bit-identical by the determinism contract).
  bool serial_fallback = false;
  /// Diagonal-shift retries consumed before the factorization succeeded
  /// (0 = the unshifted matrix factored).
  index_t shift_attempts_used = 0;
  /// The shift added to every diagonal entry on the successful attempt
  /// (0 when no shift was needed). The factorization is of A + shift * I.
  value_t shift_applied = 0.0;
  /// The symbolic phase was served by loading a persisted plan from the
  /// on-disk PlanStore (and re-verifying it) instead of replanning.
  /// Informational, not a degradation — the loaded plan is bit-identical
  /// to what the Planner would build.
  bool store_loaded = false;
  /// A persisted plan file was found but rejected — corrupt, stale, or
  /// failed load-time re-verification. Rung 5 discarded the file,
  /// replanned from the matrix, and queued a rewrite; last_error carries
  /// the rejection.
  bool store_recovered = false;
  /// The failure the ladder absorbed (the last one, when several rungs
  /// fired). kOk when nothing degraded.
  Status last_error;

  [[nodiscard]] bool degraded() const {
    return jit_degraded || serial_fallback || shift_attempts_used > 0 ||
           store_recovered;
  }
  /// One-line summary for logs and --explain.
  [[nodiscard]] std::string to_string() const;
};

/// Input validation run at the factor() boundary when
/// SympilerOptions::validate_input is set: full CSC structure check
/// (sorted in-bounds indices, monotone colptr), squareness, a present
/// diagonal as each column's first stored entry (i.e. a lower triangle),
/// and — when `scan_values` — an O(nnz) NaN/Inf scan. Throws
/// invalid_matrix_error (kInvalidInput) describing the first violation.
void validate_factor_input(const CscMatrix& a_lower, bool scan_values);

/// TriangularSolver-boundary counterpart: CSC structure, squareness,
/// diagonal-first columns of L, RHS pattern indices in range, and the
/// optional value scan.
void validate_trisolve_input(const CscMatrix& l, std::span<const index_t> beta,
                             bool scan_values);

/// A bundle of the two plan caches. Solvers sharing a context share whole
/// execution plans — sets, schedule, and path; the process-wide default
/// context makes that the out-of-the-box behavior.
class SymbolicContext {
 public:
  explicit SymbolicContext(
      std::size_t byte_budget = core::CholeskyCache::kDefaultByteBudget,
      std::size_t shards = core::CholeskyCache::kDefaultShards)
      : cholesky_(byte_budget, shards), trisolve_(byte_budget, shards) {}

  [[nodiscard]] core::CholeskyCache& cholesky_cache() { return cholesky_; }
  [[nodiscard]] core::TriSolveCache& trisolve_cache() { return trisolve_; }

  /// Process-wide default context (created on first use, never destroyed
  /// before its borrowers thanks to shared_ptr ownership).
  [[nodiscard]] static std::shared_ptr<SymbolicContext> global();

 private:
  core::CholeskyCache cholesky_;
  core::TriSolveCache trisolve_;
};

/// SPD solver facade: factor() + solve()/solve_batch() with cached
/// execution plans. One Solver holds one factorization at a time;
/// factor() with a new pattern re-routes automatically (and usually still
/// hits the cache if the pattern recurred).
class Solver {
 public:
  explicit Solver(SolverConfig config = {},
                  std::shared_ptr<SymbolicContext> context =
                      SymbolicContext::global());

  /// Symbolic (plan-cache lookup, plan on miss) + numeric factorization of
  /// the lower triangle of an SPD matrix. Repeated calls with the same
  /// pattern skip every symbolic step — inspection AND scheduling — except
  /// the O(nnz) key hash.
  void factor(const CscMatrix& a_lower);

  /// Solve A x = b in place (requires factor()). Borrows the Solver's
  /// plan-sized workspace: logically const but not concurrently callable
  /// on one Solver — use solve_batch for many RHS.
  void solve(std::span<value_t> bx) const;

  /// Multi-RHS solve: `bx` holds nrhs column-major dense right-hand sides
  /// of length n; solutions overwrite them. On the supernodal paths the
  /// batch is tiled into packed RHS blocks lowered onto the multi-RHS
  /// panel kernels (trsm_lower_multi + gemm_minus_multi), bit-identical
  /// per column to looped solve() calls and parallel over blocks under
  /// OpenMP builds.
  void solve_batch(std::span<value_t> bx, index_t nrhs) const;

  /// Convenience multi-RHS overload: gathers the scattered columns into
  /// one contiguous batch (allocating O(n * nrhs) per call), runs the
  /// blocked span overload, and scatters the solutions back. Prefer the
  /// span overload on hot paths.
  void solve_batch(std::vector<std::vector<value_t>>& rhs) const;

  /// Extract L as CSC (requires factor()).
  [[nodiscard]] CscMatrix factor_csc() const;

  /// True when the last factor() ran no planning: its symbolic phase was
  /// served from the cache or from this Solver's standing same-pattern
  /// state.
  [[nodiscard]] bool symbolic_cached() const { return symbolic_cached_; }
  /// Numeric path the last factor() ran (valid after factor()).
  [[nodiscard]] ExecutionPath path() const { return plan()->path; }
  /// The execution plan backing the current factorization. Pointer
  /// identity across Solvers proves shared symbolic state.
  [[nodiscard]] const std::shared_ptr<const core::CholeskyPlan>& plan() const;
  /// Inspection sets backing the current factorization.
  [[nodiscard]] const core::CholeskySets& sets() const { return plan()->sets; }
  /// Aggregated counters of the underlying Cholesky plan cache.
  [[nodiscard]] CacheStats cache_stats() const;
  [[nodiscard]] const std::shared_ptr<SymbolicContext>& context() const {
    return context_;
  }
  /// Degradation record of the most recent factor() (and any solve_batch()
  /// serial fallback since). Reset at each factor().
  [[nodiscard]] const FactorReport& report() const { return report_; }

 private:
  void prepare_symbolic(const CscMatrix& a_lower);
  /// Numeric phase behind the shift-retry ladder: one attempt at the given
  /// matrix, dispatching parallel plans to the level-set interpreter (with
  /// its serial fallback recorded) and everything else to the executor.
  void run_numeric(const CscMatrix& a_lower);
  /// The ladder itself: factor a_lower; on numeric breakdown with
  /// SympilerOptions::shift_attempts > 0, retry with growing diagonal
  /// shifts, recording the shift that succeeded in report().
  void factor_numeric(const CscMatrix& a_lower);
  /// JitMode dispatch tier: count this facade use of the plan and, when
  /// the mode's gate passes, lower the plan to a compiled kernel
  /// (core/plan_compiler.h). The executor adopts the published kernel on
  /// the same call; later factor() calls skip straight to it.
  void maybe_compile_kernel();

  SolverConfig config_;
  std::shared_ptr<SymbolicContext> context_;

  core::PatternKey key_;  ///< key of the current symbolic state
  bool has_key_ = false;
  bool symbolic_cached_ = false;
  std::shared_ptr<const core::CholeskyPlan> plan_;

  // Sequential paths run through the executor; the parallel path
  // interprets the plan's level schedule into panels_ directly and uses
  // ws_ for its panel-solve scratch (mutable: solve() is logically const).
  std::unique_ptr<core::CholeskyExecutor> executor_;
  std::vector<value_t> panels_;
  mutable core::Workspace ws_;
  bool factorized_ = false;
  /// Mutable: solve_batch() is logically const but records its serial
  /// fallback here.
  mutable FactorReport report_;
};

/// Triangular-solve facade: the Lx = b pipeline (paper Figure 1) with the
/// whole plan cached per (pattern of L, pattern of b). `l` is borrowed
/// and must outlive the TriangularSolver; the plan is shared with the
/// cache and outlives both.
class TriangularSolver {
 public:
  TriangularSolver(const CscMatrix& l, std::span<const index_t> beta,
                   SolverConfig config = {},
                   std::shared_ptr<SymbolicContext> context =
                       SymbolicContext::global());

  /// Numeric solve: x holds b on entry, the solution on exit. Thin
  /// dispatch on plan->path (the ParallelTriSolve path is only planned
  /// for dense RHS patterns under OpenMP builds).
  void solve(std::span<value_t> x) const;

  /// Multi-RHS variant; every column must carry the planned pattern.
  void solve_batch(std::span<value_t> xs, index_t nrhs) const;

  [[nodiscard]] bool symbolic_cached() const { return symbolic_cached_; }
  [[nodiscard]] ExecutionPath path() const { return executor_.plan().path; }
  [[nodiscard]] const std::shared_ptr<const core::TriSolvePlan>& plan() const {
    return executor_.plan_ptr();
  }
  [[nodiscard]] const core::TriSolveSets& sets() const {
    return executor_.sets();
  }
  [[nodiscard]] CacheStats cache_stats() const;
  /// Degradation record of the most recent solve()/solve_batch().
  [[nodiscard]] const FactorReport& report() const { return report_; }

 private:
  /// JitMode dispatch tier (see Solver::maybe_compile_kernel). Logically
  /// const: compilation mutates only the plan's JitSlot and the cache
  /// ledger, never this solver.
  void maybe_compile_kernel() const;
  /// maybe_compile_kernel with the ladder's belt-and-braces containment:
  /// an escaping JIT failure marks the slot failed (sticky) and the
  /// interpreter serves the call; records jit_degraded in report().
  void prepare_jit() const;

  std::shared_ptr<SymbolicContext> context_;
  SolverConfig config_;
  const CscMatrix* l_;
  index_t n_ = 0;
  bool symbolic_cached_ = false;
  /// Mutable: solve()/solve_batch() are logically const but record their
  /// degradations here. Declared before executor_ on purpose: the plan
  /// lookup in executor_'s member initializer records store outcomes
  /// (store_loaded / store_recovered) into an already-constructed report.
  mutable FactorReport report_;
  core::TriSolveExecutor executor_;
  /// Plan-sized scratch of the level-set parallel interpreters: the
  /// privatized update terms and the packed RHS block (shared across the
  /// level threads; slots are disjoint by construction). Grow-only, so
  /// warm parallel solves allocate nothing. Mutable: solve() is logically
  /// const. Guarded against concurrent borrow in debug builds.
  mutable core::Workspace pws_;
};

}  // namespace sympiler::api
