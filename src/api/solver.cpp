#include "api/solver.h"

#include <utility>

#include "core/inspector.h"
#include "solvers/supernodal.h"

namespace sympiler::api {

const char* to_string(ExecutionPath path) {
  switch (path) {
    case ExecutionPath::Simplicial: return "simplicial";
    case ExecutionPath::Supernodal: return "supernodal";
    case ExecutionPath::ParallelSupernodal: return "parallel-supernodal";
  }
  return "?";
}

std::shared_ptr<SymbolicContext> SymbolicContext::global() {
  static const std::shared_ptr<SymbolicContext> instance =
      std::make_shared<SymbolicContext>();
  return instance;
}

// ------------------------------------------------------------------ Solver

Solver::Solver(SolverConfig config, std::shared_ptr<SymbolicContext> context)
    : config_(config),
      context_(context ? std::move(context)
                       : std::make_shared<SymbolicContext>(
                             config.cache_capacity)) {}

void Solver::factor(const CscMatrix& a_lower) {
  SYMPILER_CHECK(a_lower.rows() == a_lower.cols(),
                 "solver: matrix must be square");
  // Invalidate up front: a numeric failure below (non-SPD pivot) must not
  // leave a half-overwritten factor reachable through solve().
  factorized_ = false;
  prepare_symbolic(a_lower);
  if (path_ == ExecutionPath::ParallelSupernodal) {
    parallel::parallel_cholesky(*sets_, schedule_, a_lower, panels_);
  } else {
    executor_->factorize(a_lower);
  }
  factorized_ = true;
}

void Solver::prepare_symbolic(const CscMatrix& a_lower) {
  const core::PatternKey key =
      core::cholesky_pattern_key(a_lower, config_.options);
  if (has_key_ && key == key_) {
    // Same pattern: the standing symbolic state serves this factor with no
    // inspection at all — report it as cached reuse.
    symbolic_cached_ = true;
    return;
  }

  auto lookup = context_->cholesky_cache().get_or_build(
      key, [&] { return core::inspect_cholesky(a_lower, config_.options); });
  key_ = key;
  has_key_ = true;
  symbolic_cached_ = lookup.hit;
  sets_ = std::move(lookup.sets);
  factorized_ = false;

  if (!sets_->vs_block_profitable) {
    path_ = ExecutionPath::Simplicial;
  } else {
    path_ = ExecutionPath::Supernodal;
    if (config_.enable_parallel && parallel_profitable()) {
      // The level schedule is cheap relative to inspection (one pass over
      // the supernodal forest) and is memoized per pattern by this Solver.
      schedule_ = parallel::level_schedule_supernodes(sets_->blocks,
                                                      sets_->sym.parent);
      const index_t levels = schedule_.levels();
      const double avg_width =
          levels > 0 ? static_cast<double>(sets_->layout.nsuper()) / levels
                     : 0.0;
      if (avg_width >= config_.parallel_min_avg_level_width)
        path_ = ExecutionPath::ParallelSupernodal;
    }
  }

  if (path_ == ExecutionPath::ParallelSupernodal) {
    panels_.assign(static_cast<std::size_t>(sets_->layout.total_values()),
                   0.0);
    executor_.reset();
  } else {
    executor_ =
        std::make_unique<core::CholeskyExecutor>(sets_, config_.options);
    panels_.clear();
    panels_.shrink_to_fit();
  }
}

bool Solver::parallel_profitable() const {
#ifdef SYMPILER_HAS_OPENMP
  return sets_->layout.nsuper() >= config_.parallel_min_supernodes;
#else
  return false;  // level-set execution degenerates to sequential + barriers
#endif
}

void Solver::solve(std::span<value_t> bx) const {
  SYMPILER_CHECK(factorized_, "solver: solve() before factor()");
  SYMPILER_CHECK(static_cast<index_t>(bx.size()) ==
                     static_cast<index_t>(sets_->sym.parent.size()),
                 "solver: RHS size mismatch");
  if (path_ == ExecutionPath::ParallelSupernodal) {
    solvers::panel_forward_solve(sets_->layout, panels_, bx);
    solvers::panel_backward_solve(sets_->layout, panels_, bx);
  } else {
    executor_->solve(bx);
  }
}

void Solver::solve_batch(std::span<value_t> bx, index_t nrhs) const {
  SYMPILER_CHECK(factorized_, "solver: solve_batch() before factor()");
  SYMPILER_CHECK(nrhs >= 0, "solver: negative RHS count");
  const std::size_t n = sets_->sym.parent.size();
  SYMPILER_CHECK(bx.size() == n * static_cast<std::size_t>(nrhs),
                 "solver: batch size mismatch");
  // RHS columns are independent; every solve path reads only immutable
  // factor state (the panel solves use local scratch), so the batch
  // parallelizes embarrassingly.
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (index_t r = 0; r < nrhs; ++r)
    solve(bx.subspan(static_cast<std::size_t>(r) * n, n));
}

void Solver::solve_batch(std::vector<std::vector<value_t>>& rhs) const {
  SYMPILER_CHECK(factorized_, "solver: solve_batch() before factor()");
  for (const std::vector<value_t>& r : rhs)
    SYMPILER_CHECK(r.size() == sets_->sym.parent.size(),
                   "solver: RHS size mismatch");
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t r = 0; r < rhs.size(); ++r)
    solve(std::span<value_t>(rhs[r]));
}

CscMatrix Solver::factor_csc() const {
  SYMPILER_CHECK(factorized_, "solver: factor_csc() before factor()");
  if (path_ == ExecutionPath::ParallelSupernodal)
    return solvers::panels_to_csc(sets_->layout, panels_);
  return executor_->factor_csc();
}

const core::CholeskySets& Solver::sets() const {
  SYMPILER_CHECK(sets_ != nullptr, "solver: sets() before factor()");
  return *sets_;
}

CacheStats Solver::cache_stats() const {
  return context_->cholesky_cache().stats();
}

// -------------------------------------------------------- TriangularSolver

namespace {

std::shared_ptr<const core::TriSolveSets> lookup_trisolve_sets(
    const CscMatrix& l, std::span<const index_t> beta,
    const SolverConfig& config, SymbolicContext& context,
    bool& symbolic_cached) {
  const core::PatternKey key =
      core::trisolve_pattern_key(l, beta, config.options);
  auto lookup = context.trisolve_cache().get_or_build(
      key, [&] { return core::inspect_trisolve(l, beta, config.options); });
  symbolic_cached = lookup.hit;
  return std::move(lookup.sets);
}

}  // namespace

TriangularSolver::TriangularSolver(const CscMatrix& l,
                                   std::span<const index_t> beta,
                                   SolverConfig config,
                                   std::shared_ptr<SymbolicContext> context)
    : context_(context ? std::move(context)
                       : std::make_shared<SymbolicContext>(
                             config.cache_capacity)),
      n_(l.cols()),
      executor_(lookup_trisolve_sets(l, beta, config, *context_,
                                     symbolic_cached_),
                l, config.options) {}

void TriangularSolver::solve_batch(std::span<value_t> xs, index_t nrhs) const {
  SYMPILER_CHECK(nrhs >= 0, "triangular solver: negative RHS count");
  const std::size_t n = static_cast<std::size_t>(n_);
  SYMPILER_CHECK(xs.size() == n * static_cast<std::size_t>(nrhs),
                 "triangular solver: batch size mismatch");
  // TriSolveExecutor::solve shares a mutable gather buffer; the batch runs
  // sequentially (the executor is not one-solver-many-threads safe).
  for (index_t r = 0; r < nrhs; ++r)
    executor_.solve(xs.subspan(static_cast<std::size_t>(r) * n, n));
}

CacheStats TriangularSolver::cache_stats() const {
  return context_->trisolve_cache().stats();
}

}  // namespace sympiler::api
