#include "api/solver.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "core/plan_compiler.h"
#include "core/plan_store.h"
#include "parallel/levelset.h"
#include "solvers/supernodal.h"
#include "verify/verify.h"

namespace sympiler::api {

std::shared_ptr<SymbolicContext> SymbolicContext::global() {
  static const std::shared_ptr<SymbolicContext> instance =
      std::make_shared<SymbolicContext>();
  return instance;
}

std::string FactorReport::to_string() const {
  if (!degraded())
    return store_loaded ? "ok (plan loaded from store)"
                        : "ok (no degradation)";
  std::ostringstream os;
  os << "degraded:";
  if (jit_degraded) os << " jit->interpreter";
  if (serial_fallback) os << " parallel->serial";
  if (store_recovered) os << " store->replan";
  if (shift_attempts_used > 0)
    os << " diagonal-shift(+" << shift_applied << ", attempt "
       << shift_attempts_used << ")";
  if (!last_error.ok()) os << " [" << last_error.to_string() << "]";
  return os.str();
}

// ------------------------------------------------------- input validation

namespace {

/// Diagonal-first check shared by both validators: in a validated CSC
/// lower triangle (strictly increasing rows per column) column j must
/// store the diagonal as its first entry — a first row above j means an
/// upper-triangle entry, below j a missing diagonal.
void check_diagonal_first(const CscMatrix& m, const char* who) {
  for (index_t j = 0; j < m.cols(); ++j) {
    SYMPILER_CHECK(m.col_end(j) > m.col_begin(j),
                   std::string(who) + ": column " + std::to_string(j) +
                       " is empty (missing diagonal)");
    const index_t r0 = m.rowind[static_cast<std::size_t>(m.col_begin(j))];
    if (r0 > j)
      throw invalid_matrix_error(std::string(who) +
                                 ": missing diagonal entry in column " +
                                 std::to_string(j));
    if (r0 < j)
      throw invalid_matrix_error(
          std::string(who) + ": entry above the diagonal at (" +
          std::to_string(r0) + ", " + std::to_string(j) +
          ") — pass the lower triangle only");
  }
}

/// Optional O(nnz) value scan (SympilerOptions::scan_values): NaN/Inf in
/// the input would otherwise surface much later as a mysterious numeric
/// breakdown (or propagate silently through a solve).
void check_values_finite(const CscMatrix& m, const char* who) {
  for (std::size_t p = 0; p < m.values.size(); ++p)
    if (!std::isfinite(m.values[p]))
      throw invalid_matrix_error(std::string(who) +
                                 ": non-finite value at entry " +
                                 std::to_string(p));
}

}  // namespace

void validate_factor_input(const CscMatrix& a_lower, bool scan_values) {
  a_lower.validate();
  SYMPILER_CHECK(a_lower.rows() == a_lower.cols(),
                 "solver: matrix must be square");
  check_diagonal_first(a_lower, "solver");
  if (scan_values) check_values_finite(a_lower, "solver");
}

void validate_trisolve_input(const CscMatrix& l, std::span<const index_t> beta,
                             bool scan_values) {
  l.validate();
  SYMPILER_CHECK(l.rows() == l.cols(), "triangular solver: L must be square");
  check_diagonal_first(l, "triangular solver");
  for (const index_t i : beta)
    SYMPILER_CHECK(i >= 0 && i < l.cols(),
                   "triangular solver: RHS pattern index " +
                       std::to_string(i) + " out of range");
  if (scan_values) check_values_finite(l, "triangular solver");
}

// ------------------------------------------------------------------ Solver

Solver::Solver(SolverConfig config, std::shared_ptr<SymbolicContext> context)
    : config_(config),
      context_(context ? std::move(context)
                       : std::make_shared<SymbolicContext>(
                             config.cache_byte_budget, config.cache_shards)) {}

void Solver::factor(const CscMatrix& a_lower) {
  SYMPILER_CHECK(a_lower.rows() == a_lower.cols(),
                 "solver: matrix must be square");
  if (config_.options.validate_input)
    validate_factor_input(a_lower, config_.options.scan_values);
  // Invalidate up front: a numeric failure below (non-SPD pivot) must not
  // leave a half-overwritten factor reachable through solve().
  factorized_ = false;
  report_ = {};
  prepare_symbolic(a_lower);
  // JIT tier, first rung of the degradation ladder: PlanCompiler contains
  // its own failures via JitSlot::mark_failed, and anything that still
  // escapes is contained here — the slot goes sticky-failed and the plan
  // interpreter (bit-identical by contract) serves every later call.
  try {
    maybe_compile_kernel();
  } catch (const std::exception& e) {
    plan_->jit->mark_failed(e.what());
  }
  if (config_.options.jit != core::JitMode::kOff &&
      plan_->evidence.jit_eligible && plan_->jit->failed()) {
    report_.jit_degraded = true;
    if (report_.last_error.ok())
      report_.last_error =
          Status{ErrorCode::kJitUnavailable, plan_->jit->failure()};
  }
  factor_numeric(a_lower);
  factorized_ = true;
}

void Solver::run_numeric(const CscMatrix& a_lower) {
  // Thin dispatch on the plan's path — every decision was made at plan
  // time and cached with the plan. When a plan-compiled kernel has been
  // published, the executor adopts it internally (same buffers, pinned
  // bit-identical).
  if (plan_->path == ExecutionPath::ParallelSupernodal) {
    Status fallback;
    if (parallel::parallel_cholesky(*plan_, a_lower, panels_, &fallback)) {
      report_.serial_fallback = true;
      report_.last_error = fallback;
    }
  } else {
    executor_->factorize(a_lower);
  }
}

void Solver::factor_numeric(const CscMatrix& a_lower) {
  try {
    run_numeric(a_lower);
    return;
  } catch (const numerical_error& e) {
    if (config_.options.shift_attempts <= 0) throw;
    report_.last_error = e.status();
  }
  // Shift-retry rung: the pivot broke down, the caller opted into
  // regularization. Retry factoring A + sigma*I with sigma growing from
  // ~1e-10 * max|diag| by 1000x per attempt (the CHOLMOD/LDL folklore
  // ladder: a tiny shift rescues near-singular matrices without visibly
  // perturbing the solution; a few decades of growth give up quickly on
  // genuinely indefinite ones). The shift used is recorded in report() —
  // the caller knows it solved a perturbed system.
  value_t max_diag = 0.0;
  for (index_t j = 0; j < a_lower.cols(); ++j) {
    const index_t p = a_lower.col_begin(j);
    if (p < a_lower.col_end(j) && a_lower.rowind[p] == j)
      max_diag = std::max(max_diag, std::abs(a_lower.values[p]));
  }
  CscMatrix shifted = a_lower;
  value_t sigma = (max_diag > 0.0 ? max_diag : 1.0) * 1e-10;
  for (index_t attempt = 1;; ++attempt, sigma *= 1000.0) {
    for (index_t j = 0; j < shifted.cols(); ++j) {
      const index_t p = shifted.col_begin(j);
      if (p < shifted.col_end(j) && shifted.rowind[p] == j)
        shifted.values[p] = a_lower.values[p] + sigma;
    }
    try {
      run_numeric(shifted);
      report_.shift_attempts_used = attempt;
      report_.shift_applied = sigma;
      return;
    } catch (const numerical_error& e) {
      report_.last_error = e.status();
      if (attempt >= config_.options.shift_attempts) throw;
    }
  }
}

void Solver::prepare_symbolic(const CscMatrix& a_lower) {
  const core::Planner planner(config_.planner_config());
  const core::PatternKey key = planner.cholesky_key(a_lower);
  if (has_key_ && key == key_) {
    // Same pattern: the standing plan serves this factor with no symbolic
    // work at all — report it as cached reuse.
    symbolic_cached_ = true;
    return;
  }

  // Re-route: drop the standing key before any step that can throw (plan
  // build, workspace growth). Otherwise a failed re-route would leave the
  // old key paired with a half-prepared executor, and the next factor()
  // of that old pattern would take the early return above into it.
  has_key_ = false;
  core::CholeskyCache::Lookup lookup;
  if (config_.options.plan_store_dir.empty()) {
    lookup = context_->cholesky_cache().get_or_build(
        key, [&] { return planner.plan_cholesky(a_lower); });
  } else {
    // Persistence tier (core/plan_store.h, docs/persistence.md): on a
    // cache miss, try the on-disk store before replanning. Every loaded
    // plan is re-verified before publication; a rejected file — corrupt,
    // stale, or failing re-verification — takes rung 5 of the degradation
    // ladder: discard it, replan from the matrix, and let the write-behind
    // below rewrite a good file.
    auto store = core::PlanStore::open(config_.options.plan_store_dir);
    lookup = context_->cholesky_cache().get_or_build_stored(
        key,
        [&]() -> std::shared_ptr<const core::CholeskyPlan> {
          core::CholeskyPlan from_disk;
          core::PlanStore::Loaded loaded = store->load(key, &from_disk);
          if (!loaded.found) return nullptr;
          if (loaded.status.ok()) {
            const verify::Report check = verify::verify_plan(from_disk);
            if (!check.ok())
              loaded.status = Status{ErrorCode::kCorruptPlanFile,
                                     "persisted plan failed load-time "
                                     "re-verification:\n" +
                                         check.to_string()};
          }
          if (!loaded.status.ok()) {
            report_.store_recovered = true;
            report_.last_error = loaded.status;
            store->discard(key, /*cholesky=*/true);
            return nullptr;
          }
          report_.store_loaded = true;
          return std::make_shared<const core::CholeskyPlan>(
              std::move(from_disk));
        },
        [&] { return planner.plan_cholesky(a_lower); },
        [&](const std::shared_ptr<const core::CholeskyPlan>& built) {
          // Write-behind, gated: plans whose estimated load cost exceeds
          // half their measured build time are cheaper to replan after a
          // restart than to load — the store declines them (counted in
          // its stats) instead of pessimizing every future warm start.
          store->save_async_if_profitable(built);
        });
  }
  symbolic_cached_ = lookup.hit;
  plan_ = std::move(lookup.plan);
  factorized_ = false;
  ws_.set_guard(config_.options.guard_workspace);

  if (plan_->path == ExecutionPath::ParallelSupernodal) {
    panels_.assign(
        static_cast<std::size_t>(plan_->sets.layout.total_values()), 0.0);
    // Single-RHS panel-solve tail scratch only; the batch path grows the
    // shared packed-block + privatized-terms buffers on its first call
    // (per-thread tail scratch lives in the sweeps' thread_local
    // workspaces, and the parallel factorization in its own).
    core::WorkspaceDims dims = plan_->workspace;
    dims.rhs_block = 0;
    dims.update_slots = 0;
    dims.max_panel_rows = 0;
    dims.max_panel_width = 0;
    dims.need_map = false;
    dims.need_dense = false;
    ws_.ensure(dims);
    executor_.reset();
  } else {
    executor_ = std::make_unique<core::CholeskyExecutor>(plan_);
    panels_.clear();
    panels_.shrink_to_fit();
  }
  // Commit the key last: everything above succeeded, the executor state is
  // coherent, and the early-return fast path may now trust it.
  key_ = key;
  has_key_ = true;
}

void Solver::maybe_compile_kernel() {
  const core::SympilerOptions& opt = config_.options;
  if (opt.jit == core::JitMode::kOff) return;
  // Eligibility was decided at plan time (sequential paths only; the
  // parallel interpreters keep parallel plans). The gates below are the
  // dynamic part: has the pattern recurred enough to amortize the compile?
  if (!plan_->evidence.jit_eligible) return;
  const core::JitSlot& slot = *plan_->jit;
  if (slot.failed()) return;
  if (slot.kernel() != nullptr) return;  // executor adopts it at dispatch
  const std::uint64_t uses = slot.note_use();
  if (opt.jit == core::JitMode::kWarm &&
      uses < static_cast<std::uint64_t>(opt.jit_warm_calls))
    return;
  const std::size_t cap =
      opt.jit_max_source_kb > 0
          ? static_cast<std::size_t>(opt.jit_max_source_kb) * 1024
          : 0;
  if (core::PlanCompiler::compile(*plan_, cap) != nullptr)
    // The plan just grew by the artifact: tell the cache ledger so the
    // kernel is budgeted — and evicted — with its plan.
    context_->cholesky_cache().refresh_bytes(key_);
}

void Solver::solve(std::span<value_t> bx) const {
  SYMPILER_CHECK(factorized_, "solver: solve() before factor()");
  SYMPILER_CHECK(static_cast<index_t>(bx.size()) ==
                     static_cast<index_t>(plan_->sets.sym.parent.size()),
                 "solver: RHS size mismatch");
  if (plan_->path == ExecutionPath::ParallelSupernodal) {
    const core::Workspace::Borrow guard(ws_);
    solvers::panel_forward_solve(plan_->sets.layout, panels_, bx, ws_.tail());
    solvers::panel_backward_solve(plan_->sets.layout, panels_, bx, ws_.tail());
  } else {
    executor_->solve(bx);
  }
}

void Solver::solve_batch(std::span<value_t> bx, index_t nrhs) const {
  SYMPILER_CHECK(factorized_, "solver: solve_batch() before factor()");
  SYMPILER_CHECK(nrhs >= 0, "solver: negative RHS count");
  const std::size_t n = plan_->sets.sym.parent.size();
  SYMPILER_CHECK(bx.size() == n * static_cast<std::size_t>(nrhs),
                 "solver: batch size mismatch");
  // Thin dispatch on the plan's path: a parallel plan sweeps packed RHS
  // blocks through its level schedule (parallel inside each level,
  // slot-privatized forward updates — bit-identical per column to looped
  // solve()); the sequential supernodal path tiles blocks over the
  // multi-RHS panel kernels.
  if (plan_->path == ExecutionPath::ParallelSupernodal) {
    const core::Workspace::Borrow guard(ws_);
    Status fallback;
    if (parallel::parallel_panel_solve_batch(*plan_, panels_, bx, nrhs, ws_,
                                             &fallback)) {
      report_.serial_fallback = true;
      report_.last_error = fallback;
    }
  } else {
    executor_->solve_batch(bx, nrhs);
  }
}

void Solver::solve_batch(std::vector<std::vector<value_t>>& rhs) const {
  SYMPILER_CHECK(factorized_, "solver: solve_batch() before factor()");
  const std::size_t n = plan_->sets.sym.parent.size();
  for (const std::vector<value_t>& r : rhs)
    SYMPILER_CHECK(r.size() == n, "solver: RHS size mismatch");
  // Gather the scattered columns into one contiguous batch so they ride
  // the blocked (and OpenMP-parallel) span path; one O(n * nrhs) copy
  // each way is noise next to the solves.
  std::vector<value_t> flat(n * rhs.size());
  for (std::size_t r = 0; r < rhs.size(); ++r)
    std::copy(rhs[r].begin(), rhs[r].end(), flat.begin() + r * n);
  solve_batch(flat, static_cast<index_t>(rhs.size()));
  for (std::size_t r = 0; r < rhs.size(); ++r)
    std::copy(flat.begin() + r * n, flat.begin() + (r + 1) * n,
              rhs[r].begin());
}

CscMatrix Solver::factor_csc() const {
  SYMPILER_CHECK(factorized_, "solver: factor_csc() before factor()");
  if (plan_->path == ExecutionPath::ParallelSupernodal)
    return solvers::panels_to_csc(plan_->sets.layout, panels_);
  return executor_->factor_csc();
}

const std::shared_ptr<const core::CholeskyPlan>& Solver::plan() const {
  SYMPILER_CHECK(plan_ != nullptr, "solver: plan() before factor()");
  return plan_;
}

CacheStats Solver::cache_stats() const {
  return context_->cholesky_cache().stats();
}

// -------------------------------------------------------- TriangularSolver

namespace {

std::shared_ptr<const core::TriSolvePlan> lookup_trisolve_plan(
    const CscMatrix& l, std::span<const index_t> beta,
    const SolverConfig& config, SymbolicContext& context,
    bool& symbolic_cached, FactorReport& report) {
  // Validation runs here — in the member initializer, before any planning
  // touches the (possibly malformed) structure arrays.
  if (config.options.validate_input)
    validate_trisolve_input(l, beta, config.options.scan_values);
  const core::Planner planner(config.planner_config());
  const core::PatternKey key = planner.trisolve_key(l, beta);
  core::TriSolveCache::Lookup lookup;
  if (config.options.plan_store_dir.empty()) {
    lookup = context.trisolve_cache().get_or_build(
        key, [&] { return planner.plan_trisolve(l, beta); });
  } else {
    // Same persistence tier as Solver::prepare_symbolic: load + mandatory
    // re-verification on a cache miss, rung-5 discard/replan/rewrite on a
    // rejected file, write-behind for fresh builds.
    auto store = core::PlanStore::open(config.options.plan_store_dir);
    lookup = context.trisolve_cache().get_or_build_stored(
        key,
        [&]() -> std::shared_ptr<const core::TriSolvePlan> {
          core::TriSolvePlan from_disk;
          core::PlanStore::Loaded loaded = store->load(key, &from_disk);
          if (!loaded.found) return nullptr;
          if (loaded.status.ok()) {
            const verify::Report check = verify::verify_plan(from_disk, l, beta);
            if (!check.ok())
              loaded.status = Status{ErrorCode::kCorruptPlanFile,
                                     "persisted plan failed load-time "
                                     "re-verification:\n" +
                                         check.to_string()};
          }
          if (!loaded.status.ok()) {
            report.store_recovered = true;
            report.last_error = loaded.status;
            store->discard(key, /*cholesky=*/false);
            return nullptr;
          }
          report.store_loaded = true;
          return std::make_shared<const core::TriSolvePlan>(
              std::move(from_disk));
        },
        [&] { return planner.plan_trisolve(l, beta); },
        [&](const std::shared_ptr<const core::TriSolvePlan>& built) {
          // Same profitability gate as the Cholesky write-behind.
          store->save_async_if_profitable(built);
        });
  }
  symbolic_cached = lookup.hit;
  return std::move(lookup.plan);
}

}  // namespace

TriangularSolver::TriangularSolver(const CscMatrix& l,
                                   std::span<const index_t> beta,
                                   SolverConfig config,
                                   std::shared_ptr<SymbolicContext> context)
    : context_(context ? std::move(context)
                       : std::make_shared<SymbolicContext>(
                             config.cache_byte_budget, config.cache_shards)),
      config_(config),
      l_(&l),
      n_(l.cols()),
      executor_(lookup_trisolve_plan(l, beta, config, *context_,
                                     symbolic_cached_, report_),
                l) {
  pws_.set_guard(config.options.guard_workspace);
  if (executor_.plan().path == ExecutionPath::ParallelTriSolve) {
    // Pre-grow the parallel interpreter's terms buffer plus the one-column
    // snapshot the serial-fallback rung restores from, so the first
    // solve() is already allocation-free (the packed batch block still
    // grows on the first solve_batch, sized to the batch actually used).
    core::WorkspaceDims dims = executor_.plan().workspace;
    dims.rhs_block = 1;
    pws_.ensure(dims);
  }
}

void TriangularSolver::maybe_compile_kernel() const {
  const core::SympilerOptions& opt = config_.options;
  if (opt.jit == core::JitMode::kOff) return;
  const core::TriSolvePlan& plan = executor_.plan();
  if (!plan.evidence.jit_eligible) return;
  const core::JitSlot& slot = *plan.jit;
  if (slot.failed()) return;
  if (slot.kernel() != nullptr) return;  // executor adopts it at dispatch
  const std::uint64_t uses = slot.note_use();
  if (opt.jit == core::JitMode::kWarm &&
      uses < static_cast<std::uint64_t>(opt.jit_warm_calls))
    return;
  const std::size_t cap =
      opt.jit_max_source_kb > 0
          ? static_cast<std::size_t>(opt.jit_max_source_kb) * 1024
          : 0;
  if (core::PlanCompiler::compile(plan, *l_, cap) != nullptr)
    context_->trisolve_cache().refresh_bytes(plan.key);
}

void TriangularSolver::prepare_jit() const {
  // JIT rung of the degradation ladder (mirrors Solver::factor): contain
  // any compile-path escape in the slot, then record the sticky
  // degradation — the interpreter serves every call bit-identically.
  try {
    maybe_compile_kernel();
  } catch (const std::exception& e) {
    executor_.plan().jit->mark_failed(e.what());
  }
  if (config_.options.jit != core::JitMode::kOff &&
      executor_.plan().evidence.jit_eligible && executor_.plan().jit->failed()) {
    report_.jit_degraded = true;
    if (report_.last_error.ok())
      report_.last_error = Status{ErrorCode::kJitUnavailable,
                                  executor_.plan().jit->failure()};
  }
}

void TriangularSolver::solve(std::span<value_t> x) const {
  SYMPILER_CHECK(static_cast<index_t>(x.size()) == n_,
                 "triangular solver: size mismatch");
  prepare_jit();
  if (executor_.plan().path == ExecutionPath::ParallelTriSolve) {
    // Level-set interpreter with the plan's privatized update slots:
    // atomic-free, bit-identical to executor_.solve() at any thread count.
    // The Borrow sits outside the try: a concurrent-borrow trip is caller
    // misuse and must propagate, not degrade.
    const core::Workspace::Borrow guard(pws_);
    try {
      Status fallback;
      if (parallel::parallel_trisolve(*l_, executor_.plan(), x, pws_,
                                      &fallback)) {
        report_.serial_fallback = true;
        report_.last_error = fallback;
      }
    } catch (const resource_exhausted_error& e) {
      // The interpreter's own entry ensure failed before x was touched —
      // the sequential executor (its workspace already grown at plan
      // adoption) is the last rung.
      report_.serial_fallback = true;
      report_.last_error = e.status();
      executor_.solve(x);
    } catch (const std::bad_alloc& e) {
      report_.serial_fallback = true;
      report_.last_error = Status{ErrorCode::kResourceExhausted, e.what()};
      executor_.solve(x);
    }
  } else {
    executor_.solve(x);
  }
}

void TriangularSolver::solve_batch(std::span<value_t> xs, index_t nrhs) const {
  SYMPILER_CHECK(nrhs >= 0, "triangular solver: negative RHS count");
  const std::size_t n = static_cast<std::size_t>(n_);
  SYMPILER_CHECK(xs.size() == n * static_cast<std::size_t>(nrhs),
                 "triangular solver: batch size mismatch");
  prepare_jit();
  if (executor_.plan().path == ExecutionPath::ParallelTriSolve) {
    // Blocked level-set path: packed RHS blocks sweep the level schedule
    // (parallel inside each level), per column bit-identical to looped
    // solve().
    const core::Workspace::Borrow guard(pws_);
    try {
      Status fallback;
      if (parallel::parallel_trisolve_batch(*l_, executor_.plan(), xs, nrhs,
                                            pws_, &fallback)) {
        report_.serial_fallback = true;
        report_.last_error = fallback;
      }
    } catch (const resource_exhausted_error& e) {
      // Entry ensure failure: xs is untouched (packing happens after the
      // grow), so the executor's looped solve is a clean last rung.
      report_.serial_fallback = true;
      report_.last_error = e.status();
      executor_.solve_batch(xs, nrhs);
    } catch (const std::bad_alloc& e) {
      report_.serial_fallback = true;
      report_.last_error = Status{ErrorCode::kResourceExhausted, e.what()};
      executor_.solve_batch(xs, nrhs);
    }
    return;
  }
  // Sequential paths: the executor tiles the batch into packed RHS blocks
  // on its BlockedTriSolve path (bit-identical per column to looped
  // solve()), and loops on the pruned path.
  executor_.solve_batch(xs, nrhs);
}

CacheStats TriangularSolver::cache_stats() const {
  return context_->trisolve_cache().stats();
}

}  // namespace sympiler::api
