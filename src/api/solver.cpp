#include "api/solver.h"

#include <algorithm>
#include <utility>

#include "core/plan_compiler.h"
#include "parallel/levelset.h"
#include "solvers/supernodal.h"

namespace sympiler::api {

std::shared_ptr<SymbolicContext> SymbolicContext::global() {
  static const std::shared_ptr<SymbolicContext> instance =
      std::make_shared<SymbolicContext>();
  return instance;
}

// ------------------------------------------------------------------ Solver

Solver::Solver(SolverConfig config, std::shared_ptr<SymbolicContext> context)
    : config_(config),
      context_(context ? std::move(context)
                       : std::make_shared<SymbolicContext>(
                             config.cache_byte_budget, config.cache_shards)) {}

void Solver::factor(const CscMatrix& a_lower) {
  SYMPILER_CHECK(a_lower.rows() == a_lower.cols(),
                 "solver: matrix must be square");
  // Invalidate up front: a numeric failure below (non-SPD pivot) must not
  // leave a half-overwritten factor reachable through solve().
  factorized_ = false;
  prepare_symbolic(a_lower);
  maybe_compile_kernel();
  // Thin dispatch on the plan's path — every decision was made at plan
  // time and cached with the plan. When a plan-compiled kernel has been
  // published, the executor adopts it internally (same buffers, pinned
  // bit-identical).
  if (plan_->path == ExecutionPath::ParallelSupernodal) {
    parallel::parallel_cholesky(*plan_, a_lower, panels_);
  } else {
    executor_->factorize(a_lower);
  }
  factorized_ = true;
}

void Solver::prepare_symbolic(const CscMatrix& a_lower) {
  const core::Planner planner(config_.planner_config());
  const core::PatternKey key = planner.cholesky_key(a_lower);
  if (has_key_ && key == key_) {
    // Same pattern: the standing plan serves this factor with no symbolic
    // work at all — report it as cached reuse.
    symbolic_cached_ = true;
    return;
  }

  auto lookup = context_->cholesky_cache().get_or_build(
      key, [&] { return planner.plan_cholesky(a_lower); });
  key_ = key;
  has_key_ = true;
  symbolic_cached_ = lookup.hit;
  plan_ = std::move(lookup.plan);
  factorized_ = false;

  if (plan_->path == ExecutionPath::ParallelSupernodal) {
    panels_.assign(
        static_cast<std::size_t>(plan_->sets.layout.total_values()), 0.0);
    // Single-RHS panel-solve tail scratch only; the batch path grows the
    // shared packed-block + privatized-terms buffers on its first call
    // (per-thread tail scratch lives in the sweeps' thread_local
    // workspaces, and the parallel factorization in its own).
    core::WorkspaceDims dims = plan_->workspace;
    dims.rhs_block = 0;
    dims.update_slots = 0;
    dims.max_panel_rows = 0;
    dims.max_panel_width = 0;
    dims.need_map = false;
    dims.need_dense = false;
    ws_.ensure(dims);
    executor_.reset();
  } else {
    executor_ = std::make_unique<core::CholeskyExecutor>(plan_);
    panels_.clear();
    panels_.shrink_to_fit();
  }
}

void Solver::maybe_compile_kernel() {
  const core::SympilerOptions& opt = config_.options;
  if (opt.jit == core::JitMode::kOff) return;
  // Eligibility was decided at plan time (sequential paths only; the
  // parallel interpreters keep parallel plans). The gates below are the
  // dynamic part: has the pattern recurred enough to amortize the compile?
  if (!plan_->evidence.jit_eligible) return;
  const core::JitSlot& slot = *plan_->jit;
  if (slot.failed()) return;
  if (slot.kernel() != nullptr) return;  // executor adopts it at dispatch
  const std::uint64_t uses = slot.note_use();
  if (opt.jit == core::JitMode::kWarm &&
      uses < static_cast<std::uint64_t>(opt.jit_warm_calls))
    return;
  const std::size_t cap =
      opt.jit_max_source_kb > 0
          ? static_cast<std::size_t>(opt.jit_max_source_kb) * 1024
          : 0;
  if (core::PlanCompiler::compile(*plan_, cap) != nullptr)
    // The plan just grew by the artifact: tell the cache ledger so the
    // kernel is budgeted — and evicted — with its plan.
    context_->cholesky_cache().refresh_bytes(key_);
}

void Solver::solve(std::span<value_t> bx) const {
  SYMPILER_CHECK(factorized_, "solver: solve() before factor()");
  SYMPILER_CHECK(static_cast<index_t>(bx.size()) ==
                     static_cast<index_t>(plan_->sets.sym.parent.size()),
                 "solver: RHS size mismatch");
  if (plan_->path == ExecutionPath::ParallelSupernodal) {
    const core::Workspace::Borrow guard(ws_);
    solvers::panel_forward_solve(plan_->sets.layout, panels_, bx, ws_.tail());
    solvers::panel_backward_solve(plan_->sets.layout, panels_, bx, ws_.tail());
  } else {
    executor_->solve(bx);
  }
}

void Solver::solve_batch(std::span<value_t> bx, index_t nrhs) const {
  SYMPILER_CHECK(factorized_, "solver: solve_batch() before factor()");
  SYMPILER_CHECK(nrhs >= 0, "solver: negative RHS count");
  const std::size_t n = plan_->sets.sym.parent.size();
  SYMPILER_CHECK(bx.size() == n * static_cast<std::size_t>(nrhs),
                 "solver: batch size mismatch");
  // Thin dispatch on the plan's path: a parallel plan sweeps packed RHS
  // blocks through its level schedule (parallel inside each level,
  // slot-privatized forward updates — bit-identical per column to looped
  // solve()); the sequential supernodal path tiles blocks over the
  // multi-RHS panel kernels.
  if (plan_->path == ExecutionPath::ParallelSupernodal) {
    const core::Workspace::Borrow guard(ws_);
    parallel::parallel_panel_solve_batch(*plan_, panels_, bx, nrhs, ws_);
  } else {
    executor_->solve_batch(bx, nrhs);
  }
}

void Solver::solve_batch(std::vector<std::vector<value_t>>& rhs) const {
  SYMPILER_CHECK(factorized_, "solver: solve_batch() before factor()");
  const std::size_t n = plan_->sets.sym.parent.size();
  for (const std::vector<value_t>& r : rhs)
    SYMPILER_CHECK(r.size() == n, "solver: RHS size mismatch");
  // Gather the scattered columns into one contiguous batch so they ride
  // the blocked (and OpenMP-parallel) span path; one O(n * nrhs) copy
  // each way is noise next to the solves.
  std::vector<value_t> flat(n * rhs.size());
  for (std::size_t r = 0; r < rhs.size(); ++r)
    std::copy(rhs[r].begin(), rhs[r].end(), flat.begin() + r * n);
  solve_batch(flat, static_cast<index_t>(rhs.size()));
  for (std::size_t r = 0; r < rhs.size(); ++r)
    std::copy(flat.begin() + r * n, flat.begin() + (r + 1) * n,
              rhs[r].begin());
}

CscMatrix Solver::factor_csc() const {
  SYMPILER_CHECK(factorized_, "solver: factor_csc() before factor()");
  if (plan_->path == ExecutionPath::ParallelSupernodal)
    return solvers::panels_to_csc(plan_->sets.layout, panels_);
  return executor_->factor_csc();
}

const std::shared_ptr<const core::CholeskyPlan>& Solver::plan() const {
  SYMPILER_CHECK(plan_ != nullptr, "solver: plan() before factor()");
  return plan_;
}

CacheStats Solver::cache_stats() const {
  return context_->cholesky_cache().stats();
}

// -------------------------------------------------------- TriangularSolver

namespace {

std::shared_ptr<const core::TriSolvePlan> lookup_trisolve_plan(
    const CscMatrix& l, std::span<const index_t> beta,
    const SolverConfig& config, SymbolicContext& context,
    bool& symbolic_cached) {
  const core::Planner planner(config.planner_config());
  auto lookup = context.trisolve_cache().get_or_build(
      planner.trisolve_key(l, beta),
      [&] { return planner.plan_trisolve(l, beta); });
  symbolic_cached = lookup.hit;
  return std::move(lookup.plan);
}

}  // namespace

TriangularSolver::TriangularSolver(const CscMatrix& l,
                                   std::span<const index_t> beta,
                                   SolverConfig config,
                                   std::shared_ptr<SymbolicContext> context)
    : context_(context ? std::move(context)
                       : std::make_shared<SymbolicContext>(
                             config.cache_byte_budget, config.cache_shards)),
      config_(config),
      l_(&l),
      n_(l.cols()),
      executor_(lookup_trisolve_plan(l, beta, config, *context_,
                                     symbolic_cached_),
                l) {
  if (executor_.plan().path == ExecutionPath::ParallelTriSolve) {
    // Pre-grow the parallel interpreter's terms buffer so the first
    // solve() is already allocation-free (the packed batch block still
    // grows on the first solve_batch, sized to the batch actually used).
    core::WorkspaceDims dims = executor_.plan().workspace;
    dims.rhs_block = 0;
    pws_.ensure(dims);
  }
}

void TriangularSolver::maybe_compile_kernel() const {
  const core::SympilerOptions& opt = config_.options;
  if (opt.jit == core::JitMode::kOff) return;
  const core::TriSolvePlan& plan = executor_.plan();
  if (!plan.evidence.jit_eligible) return;
  const core::JitSlot& slot = *plan.jit;
  if (slot.failed()) return;
  if (slot.kernel() != nullptr) return;  // executor adopts it at dispatch
  const std::uint64_t uses = slot.note_use();
  if (opt.jit == core::JitMode::kWarm &&
      uses < static_cast<std::uint64_t>(opt.jit_warm_calls))
    return;
  const std::size_t cap =
      opt.jit_max_source_kb > 0
          ? static_cast<std::size_t>(opt.jit_max_source_kb) * 1024
          : 0;
  if (core::PlanCompiler::compile(plan, *l_, cap) != nullptr)
    context_->trisolve_cache().refresh_bytes(plan.key);
}

void TriangularSolver::solve(std::span<value_t> x) const {
  SYMPILER_CHECK(static_cast<index_t>(x.size()) == n_,
                 "triangular solver: size mismatch");
  maybe_compile_kernel();
  if (executor_.plan().path == ExecutionPath::ParallelTriSolve) {
    // Level-set interpreter with the plan's privatized update slots:
    // atomic-free, bit-identical to executor_.solve() at any thread count.
    const core::Workspace::Borrow guard(pws_);
    parallel::parallel_trisolve(*l_, executor_.plan(), x, pws_);
  } else {
    executor_.solve(x);
  }
}

void TriangularSolver::solve_batch(std::span<value_t> xs, index_t nrhs) const {
  SYMPILER_CHECK(nrhs >= 0, "triangular solver: negative RHS count");
  const std::size_t n = static_cast<std::size_t>(n_);
  SYMPILER_CHECK(xs.size() == n * static_cast<std::size_t>(nrhs),
                 "triangular solver: batch size mismatch");
  maybe_compile_kernel();
  if (executor_.plan().path == ExecutionPath::ParallelTriSolve) {
    // Blocked level-set path: packed RHS blocks sweep the level schedule
    // (parallel inside each level), per column bit-identical to looped
    // solve().
    const core::Workspace::Borrow guard(pws_);
    parallel::parallel_trisolve_batch(*l_, executor_.plan(), xs, nrhs, pws_);
    return;
  }
  // Sequential paths: the executor tiles the batch into packed RHS blocks
  // on its BlockedTriSolve path (bit-identical per column to looped
  // solve()), and loops on the pruned path.
  executor_.solve_batch(xs, nrhs);
}

CacheStats TriangularSolver::cache_stats() const {
  return context_->trisolve_cache().stats();
}

}  // namespace sympiler::api
