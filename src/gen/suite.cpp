#include "gen/suite.h"

#include "gen/generators.h"

namespace sympiler::gen {

const std::vector<SuiteSpec>& suite() {
  static const std::vector<SuiteSpec> problems = {
      {1, "cbuckle", "block_structural 68x68x3 dofs, nested dissection", 14,
       0.677,
       [] { return block_structural(68, 68, 3, 101, GridOrder::NestedDissection); }},
      {2, "Pres_Poisson", "grid2d 122x122 Laplacian, nested dissection", 15,
       0.716,
       [] { return grid2d_laplacian(122, 122, GridOrder::NestedDissection); }},
      {3, "gyro", "block_structural 76x76x3 dofs, natural (banded)", 17, 1.02,
       [] { return block_structural(76, 76, 3, 103, GridOrder::Natural); }},
      {4, "gyro_k", "block_structural 76x76x3 dofs, natural, other values", 17,
       1.02,
       [] { return block_structural(76, 76, 3, 104, GridOrder::Natural); }},
      {5, "Dubcova2", "grid2d 50x1300 strip Laplacian, natural (banded)", 65,
       1.03,
       [] { return grid2d_laplacian(50, 1300, GridOrder::Natural); }},
      {6, "msc23052", "block_structural 88x88x3 dofs, nested dissection", 23,
       1.14,
       [] { return block_structural(88, 88, 3, 106, GridOrder::NestedDissection); }},
      {7, "thermomech_dM", "grid2d 40x2500 strip Laplacian, natural", 204,
       1.42,
       [] { return grid2d_laplacian(40, 2500, GridOrder::Natural); }},
      {8, "Dubcova3", "grid3d 26x26x26 Laplacian, nested dissection", 147,
       3.64,
       [] {
         return grid3d_laplacian(26, 26, 26, GridOrder::NestedDissection);
       }},
      {9, "parabolic_fem", "grid2d 36x3600 strip Laplacian, natural", 526,
       3.67,
       [] { return grid2d_laplacian(36, 3600, GridOrder::Natural); }},
      {10, "ecology2", "grid2d 400x400 Laplacian, nested dissection", 1000,
       5.00,
       [] { return grid2d_laplacian(400, 400, GridOrder::NestedDissection); }},
      {11, "tmt_sym", "grid2d 430x430 Laplacian, nested dissection", 727, 5.08,
       [] { return grid2d_laplacian(430, 430, GridOrder::NestedDissection); }},
  };
  return problems;
}

const SuiteSpec& suite_problem(int id) {
  for (const SuiteSpec& s : suite())
    if (s.id == id) return s;
  throw invalid_matrix_error("suite: no problem with id " +
                             std::to_string(id));
}

}  // namespace sympiler::gen
