#include "gen/generators.h"

#include <algorithm>
#include <random>

namespace sympiler::gen {

namespace {

/// Recursive nested-dissection numbering of an nx-by-ny-by-nz grid.
/// Cells of the two halves are numbered first, the separator plane last,
/// so separator columns eliminate late and form large supernodes.
class GridNumberer {
 public:
  GridNumberer(index_t nx, index_t ny, index_t nz)
      : nx_(nx), ny_(ny), nz_(nz),
        order_(static_cast<std::size_t>(nx) * ny * nz, -1) {}

  std::vector<index_t> number(GridOrder order) {
    counter_ = 0;
    if (order == GridOrder::Natural) {
      for (index_t k = 0; k < static_cast<index_t>(order_.size()); ++k)
        order_[k] = k;
    } else {
      dissect(0, nx_, 0, ny_, 0, nz_);
    }
    return std::move(order_);
  }

 private:
  [[nodiscard]] index_t cell(index_t x, index_t y, index_t z) const {
    return (z * ny_ + y) * nx_ + x;
  }

  void number_box(index_t x0, index_t x1, index_t y0, index_t y1, index_t z0,
                  index_t z1) {
    for (index_t z = z0; z < z1; ++z)
      for (index_t y = y0; y < y1; ++y)
        for (index_t x = x0; x < x1; ++x) order_[cell(x, y, z)] = counter_++;
  }

  void dissect(index_t x0, index_t x1, index_t y0, index_t y1, index_t z0,
               index_t z1) {
    const index_t dx = x1 - x0, dy = y1 - y0, dz = z1 - z0;
    if (dx <= 0 || dy <= 0 || dz <= 0) return;
    constexpr index_t kLeaf = 6;  // stop when the box is small
    if (dx <= kLeaf && dy <= kLeaf && dz <= kLeaf) {
      number_box(x0, x1, y0, y1, z0, z1);
      return;
    }
    // Split the longest dimension with a one-cell-thick separator.
    if (dx >= dy && dx >= dz) {
      const index_t mid = x0 + dx / 2;
      dissect(x0, mid, y0, y1, z0, z1);
      dissect(mid + 1, x1, y0, y1, z0, z1);
      number_box(mid, mid + 1, y0, y1, z0, z1);
    } else if (dy >= dz) {
      const index_t mid = y0 + dy / 2;
      dissect(x0, x1, y0, mid, z0, z1);
      dissect(x0, x1, mid + 1, y1, z0, z1);
      number_box(x0, x1, mid, mid + 1, z0, z1);
    } else {
      const index_t mid = z0 + dz / 2;
      dissect(x0, x1, y0, y1, z0, mid);
      dissect(x0, x1, y0, y1, mid + 1, z1);
      number_box(x0, x1, y0, y1, mid, mid + 1);
    }
  }

  index_t nx_, ny_, nz_;
  index_t counter_ = 0;
  std::vector<index_t> order_;
};

CscMatrix laplacian(index_t nx, index_t ny, index_t nz, GridOrder order) {
  SYMPILER_CHECK(nx > 0 && ny > 0 && nz > 0, "laplacian: bad grid dims");
  const index_t n = nx * ny * nz;
  const std::vector<index_t> num = GridNumberer(nx, ny, nz).number(order);
  const value_t diag = 2.0 * ((nx > 1) + (ny > 1) + (nz > 1));
  std::vector<Triplet> trip;
  trip.reserve(static_cast<std::size_t>(n) * 4);
  auto cell = [&](index_t x, index_t y, index_t z) {
    return num[(z * ny + y) * nx + x];
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t c = cell(x, y, z);
        trip.push_back({c, c, diag});
        auto link = [&](index_t o) {
          index_t i = std::max(c, o), j = std::min(c, o);
          trip.push_back({i, j, -1.0});
        };
        if (x + 1 < nx) link(cell(x + 1, y, z));
        if (y + 1 < ny) link(cell(x, y + 1, z));
        if (z + 1 < nz) link(cell(x, y, z + 1));
      }
    }
  }
  return CscMatrix::from_triplets(n, n, trip);
}

}  // namespace

CscMatrix grid2d_laplacian(index_t nx, index_t ny, GridOrder order) {
  return laplacian(nx, ny, 1, order);
}

CscMatrix grid3d_laplacian(index_t nx, index_t ny, index_t nz,
                           GridOrder order) {
  return laplacian(nx, ny, nz, order);
}

CscMatrix block_structural(index_t nx, index_t ny, index_t dofs,
                           std::uint64_t seed, GridOrder order) {
  SYMPILER_CHECK(nx > 0 && ny > 0 && dofs > 0, "block_structural: bad dims");
  const index_t nnodes = nx * ny;
  const index_t n = nnodes * dofs;
  const std::vector<index_t> num = GridNumberer(nx, ny, 1).number(order);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(0.1, 1.0);
  auto node = [&](index_t x, index_t y) { return num[y * nx + x]; };

  std::vector<Triplet> trip;
  std::vector<value_t> dominance(static_cast<std::size_t>(n), 0.0);
  auto couple = [&](index_t a, index_t b) {
    // Dense dofs-by-dofs block between nodes a < b (new numbering).
    for (index_t da = 0; da < dofs; ++da) {
      for (index_t db = 0; db < dofs; ++db) {
        const index_t i = b * dofs + db;
        const index_t j = a * dofs + da;
        const value_t v = -dist(rng);
        trip.push_back({i, j, v});
        dominance[i] += -v;
        dominance[j] += -v;
      }
    }
  };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      const index_t c = node(x, y);
      // 9-point neighborhood, handled once per unordered pair.
      for (index_t ddy = -1; ddy <= 1; ++ddy) {
        for (index_t ddx = -1; ddx <= 1; ++ddx) {
          if (ddx == 0 && ddy == 0) continue;
          const index_t xx = x + ddx, yy = y + ddy;
          if (xx < 0 || xx >= nx || yy < 0 || yy >= ny) continue;
          const index_t o = node(xx, yy);
          if (o > c) couple(c, o);
        }
      }
      // In-node dense coupling (lower part).
      for (index_t da = 0; da < dofs; ++da) {
        for (index_t db = da + 1; db < dofs; ++db) {
          const index_t i = c * dofs + db;
          const index_t j = c * dofs + da;
          const value_t v = -dist(rng);
          trip.push_back({i, j, v});
          dominance[i] += -v;
          dominance[j] += -v;
        }
      }
    }
  }
  for (index_t i = 0; i < n; ++i)
    trip.push_back({i, i, dominance[i] + 1.0});
  return CscMatrix::from_triplets(n, n, trip);
}

CscMatrix random_spd(index_t n, double avg_offdiag_per_col,
                     std::uint64_t seed) {
  SYMPILER_CHECK(n > 0, "random_spd: n must be positive");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(0.1, 1.0);
  std::uniform_int_distribution<index_t> row_of(0, n - 1);
  const auto total =
      static_cast<std::int64_t>(avg_offdiag_per_col * static_cast<double>(n));
  std::vector<Triplet> trip;
  std::vector<value_t> dominance(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t e = 0; e < total; ++e) {
    index_t i = row_of(rng);
    index_t j = row_of(rng);
    if (i == j) continue;
    if (i < j) std::swap(i, j);
    const value_t v = -dist(rng);
    trip.push_back({i, j, v});  // duplicates sum; dominance still covers them
    dominance[i] += -v;
    dominance[j] += -v;
  }
  for (index_t i = 0; i < n; ++i)
    trip.push_back({i, i, dominance[i] + 1.0});
  return CscMatrix::from_triplets(n, n, trip);
}

CscMatrix banded_spd(index_t n, index_t half_bandwidth, std::uint64_t seed) {
  SYMPILER_CHECK(n > 0 && half_bandwidth >= 0, "banded_spd: bad parameters");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(0.1, 1.0);
  std::vector<Triplet> trip;
  std::vector<value_t> dominance(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    const index_t last = std::min<index_t>(n - 1, j + half_bandwidth);
    for (index_t i = j + 1; i <= last; ++i) {
      const value_t v = -dist(rng);
      trip.push_back({i, j, v});
      dominance[i] += -v;
      dominance[j] += -v;
    }
  }
  for (index_t i = 0; i < n; ++i)
    trip.push_back({i, i, dominance[i] + 1.0});
  return CscMatrix::from_triplets(n, n, trip);
}

CscMatrix power_grid(index_t n, index_t extra_edges, std::uint64_t seed) {
  SYMPILER_CHECK(n > 1, "power_grid: n must be > 1");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(0.1, 1.0);
  std::vector<Triplet> trip;
  std::vector<value_t> dominance(static_cast<std::size_t>(n), 0.0);
  auto add_edge = [&](index_t a, index_t b) {
    if (a == b) return;
    const index_t i = std::max(a, b), j = std::min(a, b);
    const value_t v = -dist(rng);
    trip.push_back({i, j, v});
    dominance[i] += -v;
    dominance[j] += -v;
  };
  // Random spanning tree: attach node i to a random earlier node.
  for (index_t i = 1; i < n; ++i) {
    std::uniform_int_distribution<index_t> earlier(0, i - 1);
    add_edge(i, earlier(rng));
  }
  std::uniform_int_distribution<index_t> any(0, n - 1);
  for (index_t e = 0; e < extra_edges; ++e) add_edge(any(rng), any(rng));
  for (index_t i = 0; i < n; ++i)
    trip.push_back({i, i, dominance[i] + 1.0});
  return CscMatrix::from_triplets(n, n, trip);
}

std::vector<value_t> rhs_from_column(const CscMatrix& a_lower, index_t j,
                                     std::uint64_t seed) {
  SYMPILER_CHECK(j >= 0 && j < a_lower.cols(), "rhs_from_column: bad column");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(0.5, 1.5);
  std::vector<value_t> b(static_cast<std::size_t>(a_lower.rows()), 0.0);
  for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p)
    b[a_lower.rowind[p]] = dist(rng);
  // Mirror the symmetric part: entries A(j, k) with k < j.
  for (index_t k = 0; k < j; ++k) {
    if (a_lower.at(j, k) != 0.0) b[k] = dist(rng);
  }
  return b;
}

std::vector<value_t> sparse_rhs(index_t n, index_t nnz, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(0.5, 1.5);
  std::uniform_int_distribution<index_t> pos(0, n - 1);
  std::vector<value_t> b(static_cast<std::size_t>(n), 0.0);
  for (index_t k = 0; k < nnz; ++k) b[pos(rng)] = dist(rng);
  return b;
}

std::vector<value_t> dense_rhs(index_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
  std::vector<value_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = dist(rng);
  return b;
}

}  // namespace sympiler::gen
