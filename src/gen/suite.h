// The Table-2 analogue suite: eleven SPD problems mirroring the regimes of
// the paper's SuiteSparse selection (see DESIGN.md section 3 for the
// substitution table and EXPERIMENTS.md for measured structure).
//
// Sizes are scaled to laptop/CI scale (n ~ 14k..185k instead of 14k..1M);
// the suite deliberately spans the structural regimes the paper's
// heuristics key on: nested-dissection mesh problems with large separator
// supernodes, banded problems with unit supernodes and large column
// counts, and block-structural problems with dof-block supernodes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::gen {

struct SuiteSpec {
  int id = 0;                 ///< 1-based, matching Table 2 rows
  std::string paper_name;     ///< SuiteSparse name in the paper
  std::string generator;      ///< description of our synthetic analogue
  index_t paper_n_thousands;  ///< Table 2 "n (10^3)"
  double paper_nnz_millions;  ///< Table 2 "nnz (10^6)"
  std::function<CscMatrix()> make;  ///< builds the lower triangle
};

/// All eleven problems in Table 2 order.
[[nodiscard]] const std::vector<SuiteSpec>& suite();

/// Lookup by 1-based id; throws if out of range.
[[nodiscard]] const SuiteSpec& suite_problem(int id);

}  // namespace sympiler::gen
