// Synthetic SPD matrix generators — stand-ins for the SuiteSparse matrices
// of paper Table 2 (the collection is not reachable offline; see DESIGN.md
// section 3 for the substitution argument). Every generator returns the
// LOWER triangle of a symmetric positive-definite matrix.
//
// Node numbering is controlled by GridOrder: Natural produces banded
// factors with tiny supernodes and large column counts (the regime where
// the paper's VS-Block is skipped), NestedDissection produces separator
// supernodes that grow toward the root (the regime where supernodal codes
// shine).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::gen {

enum class GridOrder {
  Natural,           ///< lexicographic numbering (banded factor)
  NestedDissection,  ///< recursive-bisection numbering (separator supernodes)
};

/// 5-point Dirichlet Laplacian on an nx-by-ny grid (n = nx*ny). SPD.
[[nodiscard]] CscMatrix grid2d_laplacian(index_t nx, index_t ny,
                                         GridOrder order = GridOrder::NestedDissection);

/// 7-point Dirichlet Laplacian on an nx-by-ny-by-nz grid. SPD.
[[nodiscard]] CscMatrix grid3d_laplacian(index_t nx, index_t ny, index_t nz,
                                         GridOrder order = GridOrder::NestedDissection);

/// Structural-mechanics-style assembly: a 2-D grid of nodes with `dofs`
/// unknowns per node; node coupling follows the 9-point stencil and every
/// node pair couples densely across dofs (like the element blocks of
/// cbuckle/gyro/msc23052). Values are randomized but symmetric diagonally
/// dominant, hence SPD.
[[nodiscard]] CscMatrix block_structural(index_t nx, index_t ny, index_t dofs,
                                         std::uint64_t seed,
                                         GridOrder order = GridOrder::NestedDissection);

/// Random sparse SPD: Erdos-Renyi-ish lower pattern with about
/// `avg_offdiag_per_col` strictly-lower entries per column, symmetric
/// diagonally dominant values (circuit-simulation-like irregularity).
[[nodiscard]] CscMatrix random_spd(index_t n, double avg_offdiag_per_col,
                                   std::uint64_t seed);

/// Banded SPD matrix with the given half-bandwidth (dense band).
[[nodiscard]] CscMatrix banded_spd(index_t n, index_t half_bandwidth,
                                   std::uint64_t seed);

/// Power-grid-like topology: a random spanning tree over n buses plus
/// `extra_edges` cross links (the motivating scenario of paper section
/// 1.2: Jacobians of power-flow problems). Very low fill-in.
[[nodiscard]] CscMatrix power_grid(index_t n, index_t extra_edges,
                                   std::uint64_t seed);

/// Dense RHS vector b whose nonzero pattern is the pattern of column j of
/// `a_lower` mirrored symmetrically (the paper picks RHS sparsity "close
/// to the sparsity of the columns of a sparse matrix").
[[nodiscard]] std::vector<value_t> rhs_from_column(const CscMatrix& a_lower,
                                                   index_t j,
                                                   std::uint64_t seed);

/// Dense RHS with `nnz` random nonzero positions.
[[nodiscard]] std::vector<value_t> sparse_rhs(index_t n, index_t nnz,
                                              std::uint64_t seed);

/// Dense random RHS (all entries nonzero), used by Cholesky solve tests.
[[nodiscard]] std::vector<value_t> dense_rhs(index_t n, std::uint64_t seed);

}  // namespace sympiler::gen
