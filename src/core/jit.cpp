#include "core/jit.h"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/fault.h"
#include "util/status.h"
#include "util/timer.h"

#ifndef SYMPILER_HOST_CXX
#define SYMPILER_HOST_CXX "c++"
#endif

namespace sympiler::core {

namespace {

std::string scratch_dir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string base = tmp ? tmp : "/tmp";
  static std::atomic<int> counter{0};
  std::ostringstream os;
  os << base << "/sympiler-jit-" << ::getpid() << "-"
     << counter.fetch_add(1);
  return os.str();
}

}  // namespace

JitModule::JitModule(JitModule&& other) noexcept
    : handle_(other.handle_),
      fn_(other.fn_),
      compile_seconds_(other.compile_seconds_) {
  other.handle_ = nullptr;
  other.fn_ = nullptr;
}

JitModule& JitModule::operator=(JitModule&& other) noexcept {
  if (this != &other) {
    if (handle_ != nullptr) ::dlclose(handle_);
    handle_ = other.handle_;
    fn_ = other.fn_;
    compile_seconds_ = other.compile_seconds_;
    other.handle_ = nullptr;
    other.fn_ = nullptr;
  }
  return *this;
}

JitModule::~JitModule() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

bool JitModule::compiler_available() {
  static const bool available = [] {
    const std::string cmd =
        std::string(SYMPILER_HOST_CXX) + " --version > /dev/null 2>&1";
    return std::system(cmd.c_str()) == 0;
  }();
  return available;
}

JitModule JitModule::compile(const std::string& source,
                             const std::string& symbol) {
  // Every failure below is a jit_unavailable_error (kJitUnavailable):
  // PlanCompiler::compile contains it via JitSlot::mark_failed and the
  // facades fall back to the interpreters — a scratch-dir or compiler
  // failure degrades the JIT tier, it never aborts a solve.
  if (SYMPILER_FAULT_POINT(util::FaultSite::kJitCompile))
    throw jit_unavailable_error(
        "jit: injected compile failure (fault site jit-compile)");
  const std::string dir = scratch_dir();
  if (std::system(("mkdir -p " + dir).c_str()) != 0)
    throw jit_unavailable_error("jit: cannot create scratch dir " + dir);
  const std::string src_path = dir + "/kernel.cpp";
  const std::string so_path = dir + "/kernel.so";
  const std::string err_path = dir + "/cc.err";
  {
    std::ofstream src(src_path);
    src << source;
    if (!src.good())
      throw jit_unavailable_error("jit: cannot write " + src_path);
  }

  Timer timer;
  // -ffp-contract=off: the generated code must be bit-identical to the
  // executor schedule (tests assert this); fused multiply-add contraction
  // under -march=native would reassociate the rounding.
  const std::string cmd =
      std::string(SYMPILER_HOST_CXX) +
      " -O3 -march=native -ffp-contract=off -fopenmp-simd -shared -fPIC " +
      src_path + " -o " + so_path + " 2> " + err_path;
  const int rc = std::system(cmd.c_str());
  JitModule mod;
  mod.compile_seconds_ = timer.seconds();
  if (rc != 0) {
    std::ifstream err(err_path);
    std::ostringstream msg;
    msg << "jit: compiler failed (rc=" << rc << "):\n" << err.rdbuf();
    throw jit_unavailable_error(msg.str());
  }
  if (SYMPILER_FAULT_POINT(util::FaultSite::kJitLoad))
    throw jit_unavailable_error(
        "jit: injected dlopen failure (fault site jit-load)");
  mod.handle_ = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (mod.handle_ == nullptr)
    throw jit_unavailable_error(std::string("jit: dlopen failed: ") +
                                ::dlerror());
  mod.fn_ = ::dlsym(mod.handle_, symbol.c_str());
  if (mod.fn_ == nullptr)
    throw jit_unavailable_error("jit: symbol not found: " + symbol);
  // Scratch files are kept for post-mortem inspection; they live under the
  // process-specific directory and are tiny.
  return mod;
}

}  // namespace sympiler::core
