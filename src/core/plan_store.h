// Durable, corruption-tolerant on-disk store of serialized ExecutionPlans.
//
// A PlanStore roots a directory of plan files (plan_serde.h format), one
// per (PatternKey, plan kind), named by the key's hashes. It gives the
// plan cache a restart-warm tier: after a process restart, a cache miss
// loads the persisted plan (milliseconds) instead of replanning from the
// matrix (the cold symbolic cost the paper moves to compile time).
//
// Crash safety: save() serializes to a unique temp file in the same
// directory, fsyncs it, atomically rename()s it over the final name, then
// fsyncs the directory. A crash at any point leaves either the old file,
// the new file, or a stray *.tmp.* — never a torn final file. Stray temps
// are invisible to load() (it opens exact final names only).
//
// Corruption tolerance: load() trusts nothing. The serde layer CRC-checks
// and bounds-checks every byte (kCorruptPlanFile / kStalePlanVersion);
// this layer additionally cross-checks the loaded plan's PatternKey
// against the requested one, so a renamed or hash-colliding file cannot
// serve the wrong pattern. Callers (api facades) must re-verify every
// loaded plan via verify::verify_plan before publication and, on any
// rejection, discard() the file and replan — rung 5 of the degradation
// ladder (docs/robustness.md). Threat model and format details:
// docs/persistence.md.
//
// Write-behind: save_async() queues the plan on a lazily started writer
// thread so persistence never blocks a solve; flush() drains the queue
// (tests and process shutdown). All entry points are thread-safe.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <condition_variable>
#include <atomic>
#include <functional>
#include <vector>

#include "core/execution_plan.h"
#include "util/status.h"

namespace sympiler::core {

class PlanStore {
 public:
  /// Outcome of a load. `found` distinguishes "no file for this key"
  /// (a plain cold miss) from "a file existed": when found && !status.ok()
  /// the file was rejected (corrupt/stale/injected fault) and the caller
  /// should take rung 5 — discard, replan, rewrite.
  struct Loaded {
    bool found = false;
    Status status;
    [[nodiscard]] bool ok() const { return found && status.ok(); }
  };

  /// Monotonic store-level counters (surfaced by sympiler_cli --explain).
  struct Stats {
    std::uint64_t loads = 0;          ///< successful load()s
    std::uint64_t load_failures = 0;  ///< files found but rejected
    std::uint64_t writes = 0;         ///< successful save()s
    std::uint64_t write_failures = 0; ///< save()s that returned an error
    std::uint64_t discards = 0;       ///< rung-5 file discards
    std::uint64_t declines = 0;       ///< plans the profitability gate skipped
  };

  /// Persistence profitability gate. Persisting is only worth it when a
  /// future restart would load the file faster than it could replan:
  /// loading costs roughly bytes/bandwidth (CRC + copy + re-verify,
  /// all memory-speed), while replanning costs the plan's measured
  /// `evidence.build_seconds`. Three rules, in order:
  ///   1. Plans at or under a byte floor always persist — their load
  ///      cost is noise, and a byte threshold (unlike the noisy timer)
  ///      keeps small-pattern behavior deterministic across machines.
  ///   2. Above the floor, a plan whose planner itself runs at memory
  ///      speed (`memory_bound_planning` — the simplicial / pruned
  ///      paths, whose symbolic phase is a pattern fill) never
  ///      persists: a load that moves the same bytes through the same
  ///      memory system cannot beat replanning by the profit margin,
  ///      no matter what the (noisy, first-touch-inflated) build timer
  ///      said. Measured load/replan ratios for these sit at 0.9-1.1x.
  ///   3. Otherwise (compute-bound planning: supernodal assembly,
  ///      update scheduling) persist when the estimated load time is
  ///      comfortably under the measured build time.
  /// Constants and rationale: plan_store.cpp; measured ratios: the
  /// restart_warm table in BENCH_cache.json.
  [[nodiscard]] static bool should_persist(std::size_t plan_bytes,
                                           double build_seconds,
                                           bool memory_bound_planning);

  /// Shared handle to the store rooted at `dir`. One PlanStore instance
  /// per directory per process (a registry keyed by the literal dir
  /// string), so concurrent facades pointing at one directory share a
  /// writer thread and serialize their renames through one object.
  [[nodiscard]] static std::shared_ptr<PlanStore> open(const std::string& dir);

  explicit PlanStore(std::string dir);
  ~PlanStore();  ///< drains the write-behind queue, then joins the writer

  PlanStore(const PlanStore&) = delete;
  PlanStore& operator=(const PlanStore&) = delete;

  /// Load the persisted plan for `key`, re-checking every byte (see class
  /// comment). On Loaded::ok(), `*out` is a complete plan with a fresh
  /// JitSlot. The caller still owns re-verification.
  [[nodiscard]] Loaded load(const PatternKey& key, CholeskyPlan* out);
  [[nodiscard]] Loaded load(const PatternKey& key, TriSolvePlan* out);

  /// Crash-safely persist `plan` (temp + fsync + rename + dir fsync),
  /// replacing any existing file for its key. I/O failures (including the
  /// injected kStoreWrite fault) return kResourceExhausted — the caller
  /// keeps the in-memory plan and degrades to "unpersisted".
  [[nodiscard]] Status save(const CholeskyPlan& plan);
  [[nodiscard]] Status save(const TriSolvePlan& plan);

  /// Queue `plan` for persistence on the writer thread and return
  /// immediately. Failures are absorbed into stats() (write_failures) —
  /// write-behind has no caller to report to.
  void save_async(std::shared_ptr<const CholeskyPlan> plan);
  void save_async(std::shared_ptr<const TriSolvePlan> plan);

  /// save_async() behind the profitability gate: plans that
  /// should_persist() rejects are counted in stats().declines and never
  /// touch disk. The facades' write-behind path.
  void save_async_if_profitable(std::shared_ptr<const CholeskyPlan> plan);
  void save_async_if_profitable(std::shared_ptr<const TriSolvePlan> plan);

  /// Block until every save_async() queued so far has been attempted.
  void flush();

  /// Delete the persisted file for `key` (rung 5, or tests). Missing file
  /// is not an error.
  void discard(const PatternKey& key, bool cholesky);

  /// Final on-disk path load()/save() use for `key`.
  [[nodiscard]] std::string path_for(const PatternKey& key,
                                     bool cholesky) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] Stats stats() const;

 private:
  /// A loaded file image. `view` points into `backing` — an mmap'ed
  /// read-only view on the fast path (zero copies before validation), a
  /// heap buffer when mapping is unavailable. Mapping a store file is
  /// safe against concurrent saves: writers replace via rename, never
  /// truncate in place, so a mapped inode is immutable once opened.
  struct LoadedBytes {
    bool found = false;
    Status status;
    std::span<const std::uint8_t> view;
    std::shared_ptr<const void> backing;
  };
  [[nodiscard]] LoadedBytes read_file(const std::string& path);
  [[nodiscard]] Status write_file(const std::string& path,
                                  const std::vector<std::uint8_t>& bytes);
  template <typename Plan>
  [[nodiscard]] Loaded load_impl(const PatternKey& key, bool cholesky,
                                 Plan* out);
  template <typename Plan>
  [[nodiscard]] Status save_impl(const Plan& plan, bool cholesky);
  void enqueue(std::function<void()> job);
  void writer_main();

  const std::string dir_;

  std::atomic<std::uint64_t> loads_{0};
  std::atomic<std::uint64_t> load_failures_{0};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> write_failures_{0};
  std::atomic<std::uint64_t> discards_{0};
  std::atomic<std::uint64_t> declines_{0};
  std::atomic<std::uint64_t> tmp_seq_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;    ///< wakes the writer
  std::condition_variable drained_cv_;  ///< wakes flush()
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< jobs popped but not yet finished
  bool stopping_ = false;
  bool writer_started_ = false;
  std::thread writer_;
};

}  // namespace sympiler::core
