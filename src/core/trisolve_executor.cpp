#include "core/trisolve_executor.h"

#include <algorithm>

#include "core/planner.h"

namespace sympiler::core {

namespace {

std::shared_ptr<const TriSolvePlan> plan_sequential(
    const CscMatrix& l, std::span<const index_t> beta, SympilerOptions opt,
    const SupernodePartition* known_blocks) {
  PlannerConfig config;
  config.options = opt;
  config.enable_parallel = false;  // direct executors interpret sequentially
  // No cache involved, so skip stamping the key (O(nnz) hashing).
  return std::make_shared<const TriSolvePlan>(
      Planner(config).plan_trisolve(l, beta, known_blocks,
                                    /*with_key=*/false));
}

}  // namespace

TriSolveExecutor::TriSolveExecutor(const CscMatrix& l,
                                   std::span<const index_t> beta,
                                   SympilerOptions opt,
                                   const SupernodePartition* known_blocks)
    : TriSolveExecutor(plan_sequential(l, beta, opt, known_blocks), l) {}

TriSolveExecutor::TriSolveExecutor(std::shared_ptr<const TriSolvePlan> plan,
                                   const CscMatrix& l)
    : l_(&l), plan_(std::move(plan)) {
  SYMPILER_CHECK(plan_ != nullptr, "trisolve executor: null plan");
  sets_ = &plan_->sets;
  // Size the single-RHS tail scratch from the plan's dimensions (largest
  // block tail over all supernodes: the VS-Block-only configuration
  // traverses every block). The packed multi-RHS buffers grow on the first
  // solve_batch and are reused after. A ParallelTriSolve plan is
  // interpreted sequentially here, so its privatized terms stay unpinned
  // (the parallel interpreter carries its own workspace).
  WorkspaceDims dims = plan_->workspace;
  dims.rhs_block = 0;
  dims.update_slots = 0;
  ws_.set_guard(plan_->options.guard_workspace);
  ws_.ensure(dims);
}

void TriSolveExecutor::solve(std::span<value_t> x) const {
  SYMPILER_CHECK(static_cast<index_t>(x.size()) == l_->cols(),
                 "trisolve executor: size mismatch");
  // Pure plan dispatch: the path was decided at plan time. ParallelTriSolve
  // plans run the pruned interpretation when executed sequentially here.
  // A published plan-compiled kernel (plan_compiler.h) takes over the whole
  // solve — it reads the same L arrays and the same tail scratch, so
  // adopting it costs one mutex peek and no allocation, and it is pinned
  // bit-identical to the interpreters below.
  if (const auto kernel = plan_->jit->kernel()) {
    const Workspace::Borrow guard(ws_);
    kernel->entry<PlanTriSolveFn>()(l_->colptr.data(), l_->rowind.data(),
                                    l_->values.data(), x.data(),
                                    ws_.tail().data());
    return;
  }
  if (plan_->path == ExecutionPath::BlockedTriSolve) {
    const Workspace::Borrow guard(ws_);
    solve_blocked(x);
  } else {
    solve_pruned(x);
  }
}

void TriSolveExecutor::solve_pruned(std::span<value_t> x) const {
  // VI-Prune only (paper Figure 1d/1e without blocking): iterate the
  // reach-set; with low-level transformations on, iterations whose column
  // count exceeds the peel threshold take the unrolled "peeled" body.
  const CscMatrix& l = *l_;
  const index_t* Li = l.rowind.data();
  const value_t* Lx = l.values.data();
  if (!plan_->options.vi_prune) {
    // Neither transformation applied: the naive library loop.
    for (index_t j = 0; j < l.cols(); ++j) {
      if (x[j] == 0.0) continue;
      const index_t p0 = l.col_begin(j);
      const value_t xj = x[j] / Lx[p0];
      x[j] = xj;
      for (index_t p = p0 + 1; p < l.col_end(j); ++p)
        x[Li[p]] -= Lx[p] * xj;
    }
    return;
  }
  for (const index_t j : sets_->reach) {
    const index_t p0 = l.col_begin(j);
    const index_t p1 = l.col_end(j);
    const value_t xj = x[j] / Lx[p0];
    x[j] = xj;
    if (plan_->options.low_level &&
        p1 - p0 - 1 > plan_->options.peel_colcount) {
      // Peeled body: 4-way unrolled update (the generated code emits this
      // with literal bounds; see codegen.cpp).
      index_t p = p0 + 1;
      for (; p + 3 < p1; p += 4) {
        x[Li[p]] -= Lx[p] * xj;
        x[Li[p + 1]] -= Lx[p + 1] * xj;
        x[Li[p + 2]] -= Lx[p + 2] * xj;
        x[Li[p + 3]] -= Lx[p + 3] * xj;
      }
      for (; p < p1; ++p) x[Li[p]] -= Lx[p] * xj;
    } else {
      for (index_t p = p0 + 1; p < p1; ++p) x[Li[p]] -= Lx[p] * xj;
    }
  }
}

void TriSolveExecutor::solve_blocked(std::span<value_t> x) const {
  // VS-Block (+ VI-Prune): supernodal traversal. The diagonal block is
  // solved with direct indexing (rows inside a block are consecutive — no
  // Li lookups), and the below-block tail is accumulated densely in a
  // gather buffer and scattered once per block.
  const CscMatrix& l = *l_;
  const index_t* Li = l.rowind.data();
  const value_t* Lx = l.values.data();
  const index_t nblocks = plan_->options.vi_prune
                              ? static_cast<index_t>(sets_->sn_reach.size())
                              : sets_->blocks.count();
  value_t* tail = ws_.tail().data();
  for (index_t k = 0; k < nblocks; ++k) {
    const index_t s = plan_->options.vi_prune ? sets_->sn_reach[k] : k;
    const index_t c1 = sets_->blocks.start[s];
    const index_t c2 = sets_->blocks.start[s + 1];
    const index_t cr = plan_->options.vi_prune ? sets_->sn_first_col[k] : c1;
    const index_t tail_len = sets_->colcount[c1] - (c2 - c1);

    if (plan_->options.low_level && c2 - cr == 1 && cr == c1) {
      // Peeled single-column supernode: straight scalar column, no gather
      // buffer traffic.
      const index_t p0 = l.col_begin(cr);
      const value_t xj = x[cr] / Lx[p0];
      x[cr] = xj;
      for (index_t p = p0 + 1; p < l.col_end(cr); ++p)
        x[Li[p]] -= Lx[p] * xj;
      continue;
    }

    // Diagonal block: dense forward substitution over columns cr..c2-1.
    // Within the block, the update targets are x[j+1..c2): consecutive.
    for (index_t j = cr; j < c2; ++j) {
      const index_t p0 = l.col_begin(j);
      const value_t xj = x[j] / Lx[p0];
      x[j] = xj;
      const value_t* col = Lx + p0 + 1;
      value_t* xrow = x.data() + j + 1;
      const index_t blen = c2 - j - 1;
      for (index_t t = 0; t < blen; ++t) xrow[t] -= col[t] * xj;
    }
    if (tail_len == 0) continue;

    // Tail: tail[t] = sum_j L(tail_t, j) * x[j], accumulated densely.
    std::fill(tail, tail + tail_len, 0.0);
    index_t j = cr;
    if (plan_->options.low_level) {
      // Process two columns at a time (register reuse / ILP — the
      // "vectorization" the VS-Block pass annotates).
      for (; j + 1 < c2; j += 2) {
        const value_t xa = x[j];
        const value_t xb = x[j + 1];
        const value_t* ca = Lx + l.col_begin(j) + (c2 - j);
        const value_t* cb = Lx + l.col_begin(j + 1) + (c2 - j - 1);
        for (index_t t = 0; t < tail_len; ++t)
          tail[t] += ca[t] * xa + cb[t] * xb;
      }
    }
    for (; j < c2; ++j) {
      const value_t xj = x[j];
      const value_t* cj = Lx + l.col_begin(j) + (c2 - j);
      for (index_t t = 0; t < tail_len; ++t) tail[t] += cj[t] * xj;
    }
    // One indirect scatter per block (row list of the first column).
    const index_t* rows = Li + l.col_begin(c1) + (c2 - c1);
    for (index_t t = 0; t < tail_len; ++t) x[rows[t]] -= tail[t];
  }
}

void TriSolveExecutor::solve_batch(std::span<value_t> xs, index_t nrhs) const {
  SYMPILER_CHECK(nrhs >= 0, "trisolve solve_batch: negative RHS count");
  const auto n = static_cast<std::size_t>(l_->cols());
  SYMPILER_CHECK(xs.size() == n * static_cast<std::size_t>(nrhs),
                 "trisolve solve_batch: batch size mismatch");
  if (plan_->path != ExecutionPath::BlockedTriSolve) {
    for (index_t r = 0; r < nrhs; ++r)
      solve(xs.subspan(static_cast<std::size_t>(r) * n, n));
    return;
  }
  // Blocked path: pack RHS blocks and run the supernodal traversal once
  // per block. Blocks are swept sequentially, so no lane narrowing. The
  // packed buffers grow on first use, then are steady.
  const Workspace::Borrow guard(ws_);
  const index_t bw =
      rhs_block_width(plan_->workspace.rhs_block, nrhs, /*lanes=*/1);
  WorkspaceDims dims = plan_->workspace;
  dims.rhs_block = std::min(bw, nrhs);  // grow to the batch actually used
  dims.update_slots = 0;
  ws_.ensure(dims);
  for (index_t r0 = 0; r0 < nrhs; r0 += bw) {
    const index_t nb = std::min(bw, nrhs - r0);
    value_t* xp = ws_.rhs_block();
    value_t* x0 = xs.data() + static_cast<std::size_t>(r0) * n;
    blas::pack_rhs(static_cast<index_t>(n), nb, x0, static_cast<index_t>(n),
                   xp, nb);
    solve_blocked_multi(xp, nb, nb, ws_.tail().data());
    blas::unpack_rhs(static_cast<index_t>(n), nb, xp, nb, x0,
                     static_cast<index_t>(n));
  }
}

void TriSolveExecutor::solve_blocked_multi(value_t* xp, index_t nrhs,
                                           index_t ldp, value_t* tail) const {
  // The multi-RHS mirror of solve_blocked: identical traversal, identical
  // per-column operation sequence (including the two-column pairing of the
  // tail accumulation), with the RHS index as the unit-stride inner loop.
  // Looped solve() and solve_batch() are therefore bit-identical per
  // column — pinned by tests/test_batch.cpp.
  const CscMatrix& l = *l_;
  const index_t* Li = l.rowind.data();
  const value_t* Lx = l.values.data();
  const index_t nblocks = plan_->options.vi_prune
                              ? static_cast<index_t>(sets_->sn_reach.size())
                              : sets_->blocks.count();
  for (index_t k = 0; k < nblocks; ++k) {
    const index_t s = plan_->options.vi_prune ? sets_->sn_reach[k] : k;
    const index_t c1 = sets_->blocks.start[s];
    const index_t c2 = sets_->blocks.start[s + 1];
    const index_t cr = plan_->options.vi_prune ? sets_->sn_first_col[k] : c1;
    const index_t tail_len = sets_->colcount[c1] - (c2 - c1);

    if (plan_->options.low_level && c2 - cr == 1 && cr == c1) {
      // Peeled single-column supernode.
      const index_t p0 = l.col_begin(cr);
      const value_t piv = Lx[p0];
      value_t* xc = xp + cr * ldp;
      for (index_t r = 0; r < nrhs; ++r) xc[r] /= piv;
      for (index_t p = p0 + 1; p < l.col_end(cr); ++p) {
        const value_t lv = Lx[p];
        value_t* xi = xp + Li[p] * ldp;
        for (index_t r = 0; r < nrhs; ++r) xi[r] -= lv * xc[r];
      }
      continue;
    }

    // Diagonal block: dense forward substitution, consecutive targets.
    for (index_t j = cr; j < c2; ++j) {
      const index_t p0 = l.col_begin(j);
      const value_t piv = Lx[p0];
      value_t* xj = xp + j * ldp;
      for (index_t r = 0; r < nrhs; ++r) xj[r] /= piv;
      const value_t* col = Lx + p0 + 1;
      const index_t blen = c2 - j - 1;
      for (index_t t = 0; t < blen; ++t) {
        const value_t lv = col[t];
        value_t* xrow = xp + (j + 1 + t) * ldp;
        for (index_t r = 0; r < nrhs; ++r) xrow[r] -= lv * xj[r];
      }
    }
    if (tail_len == 0) continue;

    // Tail accumulation, mirroring solve_blocked's column pairing.
    std::fill(tail, tail + static_cast<std::int64_t>(tail_len) * ldp, 0.0);
    index_t j = cr;
    if (plan_->options.low_level) {
      for (; j + 1 < c2; j += 2) {
        const value_t* xa = xp + j * ldp;
        const value_t* xb = xp + (j + 1) * ldp;
        const value_t* ca = Lx + l.col_begin(j) + (c2 - j);
        const value_t* cb = Lx + l.col_begin(j + 1) + (c2 - j - 1);
        for (index_t t = 0; t < tail_len; ++t) {
          const value_t la = ca[t], lb = cb[t];
          value_t* tr = tail + static_cast<std::int64_t>(t) * ldp;
          for (index_t r = 0; r < nrhs; ++r) tr[r] += la * xa[r] + lb * xb[r];
        }
      }
    }
    for (; j < c2; ++j) {
      const value_t* xj = xp + j * ldp;
      const value_t* cj = Lx + l.col_begin(j) + (c2 - j);
      for (index_t t = 0; t < tail_len; ++t) {
        const value_t lv = cj[t];
        value_t* tr = tail + static_cast<std::int64_t>(t) * ldp;
        for (index_t r = 0; r < nrhs; ++r) tr[r] += lv * xj[r];
      }
    }
    // One indirect scatter per block.
    const index_t* rows = Li + l.col_begin(c1) + (c2 - c1);
    for (index_t t = 0; t < tail_len; ++t) {
      const value_t* tr = tail + static_cast<std::int64_t>(t) * ldp;
      value_t* xi = xp + rows[t] * ldp;
      for (index_t r = 0; r < nrhs; ++r) xi[r] -= tr[r];
    }
  }
}

}  // namespace sympiler::core
