// JIT for the generated C code: write the translation unit to a scratch
// directory, invoke the host compiler to produce a shared object, dlopen
// it, and hand back the kernel entry point.
//
// The paper reports this cost explicitly (section 4.3: code generation and
// compilation cost 6-197x one numeric triangular solve, <= 0.3x one
// numeric Cholesky); bench/inspector_overhead reproduces that measurement.
#pragma once

#include <memory>
#include <string>

#include "util/common.h"

namespace sympiler::core {

class JitModule {
 public:
  JitModule() = default;
  JitModule(JitModule&&) noexcept;
  JitModule& operator=(JitModule&&) noexcept;
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;
  ~JitModule();

  /// True if a host compiler is available (checked once, cached).
  [[nodiscard]] static bool compiler_available();

  /// Compile `source` and resolve `symbol`. Throws std::runtime_error on
  /// compiler or loader failure (with the compiler's stderr in the
  /// message).
  [[nodiscard]] static JitModule compile(const std::string& source,
                                         const std::string& symbol);

  /// The resolved entry point, cast to the kernel's function type.
  template <typename Fn>
  [[nodiscard]] Fn entry() const {
    return reinterpret_cast<Fn>(fn_);
  }

  [[nodiscard]] bool loaded() const { return handle_ != nullptr; }
  /// Wall-clock seconds spent in the external compiler.
  [[nodiscard]] double compile_seconds() const { return compile_seconds_; }

 private:
  void* handle_ = nullptr;
  void* fn_ = nullptr;
  double compile_seconds_ = 0.0;
};

using TriSolveFn = void (*)(const int*, const int*, const double*, double*);
using CholeskyFn = int (*)(const int*, const int*, const double*, double*,
                           double*, int*);

}  // namespace sympiler::core
