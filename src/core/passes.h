// Inspector-guided and low-level AST passes (paper sections 2.3 / 2.4).
//
//  * VI-Prune (Figure 3 top): replace an annotated loop's iteration space
//    with an inspection set.
//  * VS-Block (Figure 3 bottom): replace the annotated loop nest with the
//    blocked form (structured rewrite using the block-set symbols).
//  * Peel: extract chosen iterations of a pruned loop as straight-line
//    code with constants folded through the inspection sets (Figure 1e).
//  * Unroll: fully unroll constant-trip loops up to a limit.
//  * Vectorize: annotate innermost loops for simd emission.
#pragma once

#include <span>

#include "core/ir.h"

namespace sympiler::core {

/// Replace the first loop marked vi_prune_candidate:
///   for(v in lo..hi) body   ->   for(vp in 0..<size_sym>) {
///                                  let v = <set_sym>[vp]; body }
/// The loop keeps its annotations (so Peel can target it).
[[nodiscard]] StmtPtr apply_vi_prune(const StmtPtr& root,
                                     const std::string& set_sym,
                                     const std::string& size_sym);

/// Replace the first loop marked vs_block_candidate with `blocked`
/// (the structured blocked form built by the kernel builders — the
/// "synthesized loops contain information about the block location").
[[nodiscard]] StmtPtr apply_vs_block(const StmtPtr& root,
                                     const StmtPtr& blocked);

/// Peel the given iteration positions of the first vi-pruned loop (the
/// loop whose variable is `loop_var`). Peeled bodies are constant-folded
/// through `bindings` (inspection sets + index arrays); inner loops whose
/// folded trip count is <= full_unroll_limit are fully unrolled.
/// Remaining iterations run in residual loops over the untouched ranges.
[[nodiscard]] StmtPtr apply_peel(const StmtPtr& root,
                                 const std::string& loop_var,
                                 std::span<const std::int64_t> positions,
                                 const Bindings& bindings,
                                 std::int64_t full_unroll_limit);

/// Fold constants everywhere and fully unroll any loop with constant
/// bounds and trip count <= limit.
[[nodiscard]] StmtPtr apply_unroll_and_fold(const StmtPtr& root,
                                            const Bindings& bindings,
                                            std::int64_t limit);

/// Mark every innermost loop for simd emission.
[[nodiscard]] StmtPtr annotate_vectorize(const StmtPtr& root);

/// Count loops in the tree (testing helper).
[[nodiscard]] int count_loops(const StmtPtr& root);

}  // namespace sympiler::core
