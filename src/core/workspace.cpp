#include "core/workspace.h"

#include <algorithm>

#ifdef SYMPILER_HAS_OPENMP
#include <omp.h>
#endif

namespace sympiler::core {

index_t rhs_block_width(index_t plan_block, index_t nrhs,
                        index_t parallel_lanes) {
  index_t bw = std::min<index_t>(plan_block > 0 ? plan_block : kRhsBlockWidth,
                                 blas::kRhsBlockMax);
  // Narrow the blocks when a full-width tiling would leave parallel lanes
  // idle (e.g. 64 RHS on 8 lanes: 8 blocks of 8 beat 2 blocks of 32);
  // below 8 columns the packed kernels stop paying for the pack traffic.
  if (parallel_lanes > 1 && nrhs > 0) {
    const index_t per_lane = (nrhs + parallel_lanes - 1) / parallel_lanes;
    bw = std::max<index_t>(std::min(bw, per_lane), std::min<index_t>(8, bw));
  }
  return bw;
}

WorkspaceDims cholesky_workspace_dims(const solvers::SupernodalLayout& layout) {
  WorkspaceDims dims;
  dims.n = layout.n;
  for (index_t s = 0; s < layout.nsuper(); ++s) {
    dims.max_panel_rows = std::max(dims.max_panel_rows, layout.nrows(s));
    dims.max_panel_width = std::max(dims.max_panel_width, layout.width(s));
  }
  dims.max_tail = solvers::max_tail_rows(layout);
  return dims;
}

void blocked_panel_solve_batch(const solvers::SupernodalLayout& layout,
                               std::span<const value_t> panels,
                               const WorkspaceDims& dims,
                               std::span<value_t> bx, index_t nrhs) {
  if (nrhs <= 0) return;
  const index_t n = layout.n;
#ifdef SYMPILER_HAS_OPENMP
  const index_t lanes = static_cast<index_t>(omp_get_max_threads());
#else
  const index_t lanes = 1;
#endif
  const index_t bw = rhs_block_width(dims.rhs_block, nrhs, lanes);
  // Workspaces grow to the batch actually requested, not the maximum block
  // width a plan allows — a 2-RHS batch must not pin an n x 32 buffer. The
  // per-thread workspaces touch only the packed RHS and tail buffers.
  WorkspaceDims sized = dims;
  sized.rhs_block = std::min(bw, nrhs);
  sized.max_panel_rows = 0;
  sized.max_panel_width = 0;
  sized.update_slots = 0;
  sized.need_map = false;
  sized.need_dense = false;
  const index_t nblocks = (nrhs + bw - 1) / bw;
  // Blocks are independent and uniform; each packs its RHS columns into a
  // thread's grow-only workspace, so a warm steady state allocates
  // nothing. The static schedule keeps the block -> thread mapping
  // reproducible, so a warm-up batch warms exactly the workspaces a later
  // identical batch touches.
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (index_t blk = 0; blk < nblocks; ++blk) {
    static thread_local Workspace ws;
    ws.ensure(sized);
    const index_t r0 = blk * bw;
    const index_t nb = std::min(bw, nrhs - r0);
    value_t* xp = ws.rhs_block();
    value_t* bx0 = bx.data() + static_cast<std::size_t>(r0) * n;
    blas::pack_rhs(n, nb, bx0, n, xp, nb);
    solvers::panel_forward_solve_multi(layout, panels, xp, nb, nb,
                                       ws.tail().data());
    solvers::panel_backward_solve_multi(layout, panels, xp, nb, nb,
                                        ws.tail().data());
    blas::unpack_rhs(n, nb, xp, nb, bx0, n);
  }
}

}  // namespace sympiler::core
