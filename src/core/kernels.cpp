#include "core/kernels.h"

namespace sympiler::core {

StmtPtr build_trisolve_ast() {
  // Inner loop: for p in Lp[j0]+1 .. Lp[j0+1]: x[Li[p]] -= Lx[p] * x[j0]
  LoopInfo inner;
  inner.var = "p";
  inner.lo = add(load("Lp", var("j0")), icon(1));
  inner.hi = load("Lp", add(var("j0"), icon(1)));
  StmtPtr inner_loop = for_loop(
      inner, {store("x", load("Li", var("p")),
                    mul(load("Lx", var("p")), load("x", var("j0"))), '-')});

  LoopInfo outer;
  outer.var = "j0";
  outer.lo = icon(0);
  outer.hi = var("n");
  outer.vi_prune_candidate = true;
  outer.prune_set_name = "pruneSet";
  outer.vs_block_candidate = true;
  return block({for_loop(
      outer, {store("x", var("j0"), load("Lx", load("Lp", var("j0"))), '/'),
              inner_loop})});
}

StmtPtr build_blocked_trisolve_ast() {
  std::vector<StmtPtr> body;
  body.push_back(let("c1", load("snStart", var("b"))));
  body.push_back(let("c2", load("snEnd", var("b"))));
  body.push_back(let("tl", load("tailLen", var("b"))));

  // Diagonal block: forward substitution with direct (consecutive) rows.
  {
    LoopInfo jl;
    jl.var = "j";
    jl.lo = var("c1");
    jl.hi = var("c2");
    LoopInfo tl;
    tl.var = "t";
    tl.lo = icon(1);
    tl.hi = sub(var("c2"), var("j"));
    tl.vectorize = true;
    StmtPtr upd = for_loop(
        tl, {store("x", add(var("j"), var("t")),
                   mul(load("Lx", add(load("Lp", var("j")), var("t"))),
                       load("x", var("j"))),
                   '-')});
    body.push_back(comment("dense diagonal block (no Li indirection)"));
    body.push_back(for_loop(
        jl, {store("x", var("j"), load("Lx", load("Lp", var("j"))), '/'),
             upd}));
  }

  // Tail: zero the gather buffer, accumulate per column, scatter once.
  body.push_back(comment("below-block tail via gather buffer"));
  {
    LoopInfo z;
    z.var = "t";
    z.lo = icon(0);
    z.hi = var("tl");
    z.vectorize = true;
    body.push_back(for_loop(z, {store("tail", var("t"), fcon(0.0))}));
  }
  {
    LoopInfo jl;
    jl.var = "j";
    jl.lo = var("c1");
    jl.hi = var("c2");
    LoopInfo acc;
    acc.var = "t";
    acc.lo = icon(0);
    acc.hi = var("tl");
    acc.vectorize = true;
    StmtPtr inner = for_loop(
        acc,
        {store("tail", var("t"),
               mul(load("Lx", add(add(load("Lp", var("j")),
                                      sub(var("c2"), var("j"))),
                                  var("t"))),
                   load("x", var("j"))),
               '+')});
    body.push_back(for_loop(jl, {inner}));
  }
  {
    LoopInfo sc;
    sc.var = "t";
    sc.lo = icon(0);
    sc.hi = var("tl");
    StmtPtr scatter = for_loop(
        sc, {store("x",
                   load("Li", add(add(load("Lp", var("c1")),
                                      sub(var("c2"), var("c1"))),
                                  var("t"))),
                   load("tail", var("t")), '-')});
    body.push_back(scatter);
  }

  LoopInfo outer;
  outer.var = "b";
  outer.lo = icon(0);
  outer.hi = var("numBlocks");
  outer.vi_prune_candidate = true;
  outer.prune_set_name = "snReach";
  return block({for_loop(outer, std::move(body))});
}

StmtPtr build_cholesky_ast() {
  // Column-form left-looking Cholesky (Figure 4). The update loop over k
  // carries the VI-Prune candidacy: its untransformed iteration space is
  // all columns k < j, pruned to the row pattern of row j.
  std::vector<StmtPtr> col_body;
  col_body.push_back(comment("scatter A(:,j) into f (runtime gather)"));
  col_body.push_back(call("scatter_column", {var("j")}));

  LoopInfo upd;
  upd.var = "k";
  upd.lo = icon(0);
  upd.hi = var("j");
  upd.vi_prune_candidate = true;
  upd.prune_set_name = "rowPattern";
  LoopInfo updi;
  updi.var = "p";
  updi.lo = var("pk");  // set by the pruned body (cursor into column k)
  updi.hi = load("Lp", add(var("k"), icon(1)));
  StmtPtr upd_inner = for_loop(
      updi, {store("f", load("Li", var("p")),
                   mul(load("Lx", var("p")), var("lkj")), '-')});
  col_body.push_back(comment("update phase (Figure 4 lines 4-6)"));
  col_body.push_back(
      for_loop(upd, {let("pk", load("next", var("k"))),
                     let("lkj", icon(0)),  // placeholder: Lx[pk]
                     upd_inner}));

  col_body.push_back(comment("column factorization (Figure 4 lines 7-10)"));
  col_body.push_back(call("factor_column", {var("j")}));

  LoopInfo outer;
  outer.var = "j";
  outer.lo = icon(0);
  outer.hi = var("n");
  outer.vs_block_candidate = true;  // VS-Block converts to supernode loop
  return block({for_loop(outer, std::move(col_body))});
}

}  // namespace sympiler::core
