#include "core/passes.h"

#include <algorithm>

namespace sympiler::core {

namespace {

/// Apply fn to the first loop satisfying pred (pre-order); returns the
/// rewritten tree and sets `found`.
template <typename Pred, typename Fn>
StmtPtr rewrite_first_loop(const StmtPtr& s, Pred pred, Fn fn, bool& found) {
  if (!s) return nullptr;
  if (!found && s->kind == StmtKind::For && pred(*s)) {
    found = true;
    return fn(s);
  }
  StmtPtr c = std::make_shared<Stmt>(*s);
  c->body.clear();
  for (const StmtPtr& b : s->body)
    c->body.push_back(rewrite_first_loop(b, pred, fn, found));
  return c;
}

}  // namespace

StmtPtr apply_vi_prune(const StmtPtr& root, const std::string& set_sym,
                       const std::string& size_sym) {
  bool found = false;
  StmtPtr out = rewrite_first_loop(
      root, [](const Stmt& s) { return s.loop.vi_prune_candidate; },
      [&](const StmtPtr& loop) {
        const std::string v = loop->loop.var;
        const std::string vp = v + "_p";
        LoopInfo pruned;
        pruned.var = vp;
        pruned.lo = icon(0);
        pruned.hi = var(size_sym);
        pruned.vi_prune_candidate = false;
        // Keep low-level annotations for later passes.
        pruned.peel = loop->loop.peel;
        pruned.unroll = loop->loop.unroll;
        std::vector<StmtPtr> body;
        body.push_back(let(v, load(set_sym, var(vp))));
        for (const StmtPtr& b : loop->body) body.push_back(clone(b));
        return for_loop(std::move(pruned), std::move(body));
      },
      found);
  SYMPILER_CHECK(found, "apply_vi_prune: no VI-Prune candidate loop");
  return out;
}

StmtPtr apply_vs_block(const StmtPtr& root, const StmtPtr& blocked) {
  bool found = false;
  StmtPtr out = rewrite_first_loop(
      root, [](const Stmt& s) { return s.loop.vs_block_candidate; },
      [&](const StmtPtr&) { return clone(blocked); }, found);
  SYMPILER_CHECK(found, "apply_vs_block: no VS-Block candidate loop");
  return out;
}

namespace {

StmtPtr fold_stmt(const StmtPtr& s, const Bindings& bindings,
                  std::int64_t unroll_limit);

/// Fold a statement sequence. Lets whose value folds to an integer
/// constant are propagated into the following statements and dropped —
/// this is what turns peeled bodies into fully-literal code (Figure 1e).
std::vector<StmtPtr> fold_children(std::vector<StmtPtr> work,
                                   const Bindings& bindings,
                                   std::int64_t unroll_limit) {
  std::vector<StmtPtr> out;
  for (std::size_t i = 0; i < work.size(); ++i) {
    StmtPtr f = fold_stmt(work[i], bindings, unroll_limit);
    if (f && f->kind == StmtKind::Let && is_int_const(f->value)) {
      for (std::size_t k = i + 1; k < work.size(); ++k) {
        if (work[k] && work[k]->kind == StmtKind::Let &&
            work[k]->target == f->target) {
          // Redefinition shadows the binding: substitute into its RHS
          // (which may reference the old value) and stop.
          StmtPtr redef = clone(work[k]);
          redef->value = substitute(redef->value, f->target, f->value);
          work[k] = redef;
          break;
        }
        work[k] = substitute(work[k], f->target, f->value);
      }
      continue;
    }
    out.push_back(std::move(f));
  }
  return out;
}

/// Fold expressions in a statement tree; fully unroll constant-trip loops.
StmtPtr fold_stmt(const StmtPtr& s, const Bindings& bindings,
                  std::int64_t unroll_limit) {
  if (!s) return nullptr;
  StmtPtr c = std::make_shared<Stmt>(*s);
  c->body.clear();
  c->loop.lo = fold(s->loop.lo, bindings);
  c->loop.hi = fold(s->loop.hi, bindings);
  c->index = fold(s->index, bindings);
  c->value = fold(s->value, bindings);
  c->cond = fold(s->cond, bindings);
  for (ExprPtr& a : c->call_args) a = fold(a, bindings);

  if (s->kind == StmtKind::For && is_int_const(c->loop.lo) &&
      is_int_const(c->loop.hi)) {
    const std::int64_t lo = eval_int(c->loop.lo);
    const std::int64_t hi = eval_int(c->loop.hi);
    if (hi - lo <= unroll_limit) {
      // Full unroll: emit the body once per iteration with the loop
      // variable substituted by its constant value (Figure 1e bodies).
      std::vector<StmtPtr> unrolled;
      for (std::int64_t it = lo; it < hi; ++it)
        for (const StmtPtr& b : s->body)
          unrolled.push_back(substitute(b, s->loop.var, icon(it)));
      return block(fold_children(std::move(unrolled), bindings, unroll_limit));
    }
  }
  std::vector<StmtPtr> body(s->body.begin(), s->body.end());
  c->body = fold_children(std::move(body), bindings, unroll_limit);
  return c;
}

}  // namespace

StmtPtr apply_peel(const StmtPtr& root, const std::string& loop_var,
                   std::span<const std::int64_t> positions,
                   const Bindings& bindings,
                   std::int64_t full_unroll_limit) {
  std::vector<std::int64_t> pos(positions.begin(), positions.end());
  std::sort(pos.begin(), pos.end());
  bool found = false;
  StmtPtr out = rewrite_first_loop(
      root,
      [&](const Stmt& s) { return s.loop.var == loop_var; },
      [&](const StmtPtr& loop) {
        SYMPILER_CHECK(is_int_const(fold(loop->loop.lo, bindings)),
                       "apply_peel: loop lower bound must fold to constant");
        const std::int64_t lo = eval_int(fold(loop->loop.lo, bindings));
        const ExprPtr hi = fold(loop->loop.hi, bindings);
        std::vector<StmtPtr> seq;
        std::int64_t cursor = lo;
        auto residual = [&](std::int64_t from, ExprPtr to) {
          LoopInfo li = loop->loop;
          li.peel.clear();
          li.lo = icon(from);
          li.hi = std::move(to);
          std::vector<StmtPtr> body;
          for (const StmtPtr& b : loop->body) body.push_back(clone(b));
          seq.push_back(for_loop(std::move(li), std::move(body)));
        };
        for (const std::int64_t p : pos) {
          if (p < cursor) continue;
          if (p > cursor) residual(cursor, icon(p));
          // Peeled iteration: substitute, fold, unroll (Figure 1e).
          seq.push_back(comment("peeled iteration " + std::to_string(p) +
                                " of " + loop_var));
          std::vector<StmtPtr> peeled;
          for (const StmtPtr& b : loop->body)
            peeled.push_back(substitute(b, loop->loop.var, icon(p)));
          for (StmtPtr& f :
               fold_children(std::move(peeled), bindings, full_unroll_limit))
            seq.push_back(std::move(f));
          cursor = p + 1;
        }
        residual(cursor, clone(hi));
        return block(std::move(seq));
      },
      found);
  SYMPILER_CHECK(found, "apply_peel: loop not found: " + loop_var);
  return out;
}

StmtPtr apply_unroll_and_fold(const StmtPtr& root, const Bindings& bindings,
                              std::int64_t limit) {
  return fold_stmt(root, bindings, limit);
}

namespace {

/// Returns true if the subtree contains a loop.
bool contains_loop(const StmtPtr& s) {
  if (!s) return false;
  if (s->kind == StmtKind::For) return true;
  return std::any_of(s->body.begin(), s->body.end(), contains_loop);
}

StmtPtr vectorize_rec(const StmtPtr& s) {
  if (!s) return nullptr;
  StmtPtr c = std::make_shared<Stmt>(*s);
  c->body.clear();
  for (const StmtPtr& b : s->body) c->body.push_back(vectorize_rec(b));
  if (c->kind == StmtKind::For &&
      std::none_of(c->body.begin(), c->body.end(), contains_loop)) {
    c->loop.vectorize = true;
  }
  return c;
}

}  // namespace

StmtPtr annotate_vectorize(const StmtPtr& root) { return vectorize_rec(root); }

int count_loops(const StmtPtr& root) {
  if (!root) return 0;
  int n = root->kind == StmtKind::For ? 1 : 0;
  for (const StmtPtr& b : root->body) n += count_loops(b);
  return n;
}

}  // namespace sympiler::core
