// Domain-specific AST for sparse kernels (paper section 2.1/Figure 2).
//
// Sympiler lowers a numerical method to an annotated loop AST, then applies
// inspector-guided transformations (VI-Prune, VS-Block) followed by enabled
// low-level transformations (peel, unroll, vectorize, distribute, scalar
// replacement), and finally emits C. The IR here is deliberately small but
// complete enough to express every transformation in the paper:
//
//   Expr := IntConst | FloatConst | Var | Load(array, idx) | Binary(op,l,r)
//   Stmt := Block | For | Store | Let | If | Call | Comment
//
// Loops carry the annotations of Figure 2a (VI-Prune / VS-Block candidacy)
// and the low-level hints added by the inspector-guided passes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/common.h"

namespace sympiler::core {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind { IntConst, FloatConst, Var, Load, Binary };

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

struct Expr {
  ExprKind kind{};
  std::int64_t ival = 0;      ///< IntConst payload
  double fval = 0.0;          ///< FloatConst payload
  std::string name;           ///< Var name or Load array name
  char op = 0;                ///< Binary operator: + - * / %
  std::vector<ExprPtr> kids;  ///< Load: {index}; Binary: {lhs, rhs}
};

[[nodiscard]] ExprPtr icon(std::int64_t v);
[[nodiscard]] ExprPtr fcon(double v);
[[nodiscard]] ExprPtr var(std::string name);
[[nodiscard]] ExprPtr load(std::string array, ExprPtr index);
[[nodiscard]] ExprPtr bin(char op, ExprPtr lhs, ExprPtr rhs);
[[nodiscard]] ExprPtr add(ExprPtr l, ExprPtr r);
[[nodiscard]] ExprPtr sub(ExprPtr l, ExprPtr r);
[[nodiscard]] ExprPtr mul(ExprPtr l, ExprPtr r);

[[nodiscard]] ExprPtr clone(const ExprPtr& e);

/// Render as a C expression.
[[nodiscard]] std::string to_c(const ExprPtr& e);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind { Block, For, Store, Let, If, Call, Comment };

struct Stmt;
using StmtPtr = std::shared_ptr<Stmt>;

/// Loop header + the paper's annotations.
struct LoopInfo {
  std::string var;
  ExprPtr lo;  ///< inclusive
  ExprPtr hi;  ///< exclusive
  // Inspector-guided candidacy markers (set by the kernel builders,
  // consumed by the VI-Prune / VS-Block passes — Figure 2a annotations).
  bool vi_prune_candidate = false;
  std::string prune_set_name;  ///< inspection-set symbol for VI-Prune
  bool vs_block_candidate = false;
  // Low-level hints (added by inspector-guided passes, consumed by the
  // low-level pipeline — Figure 2b annotations like peel(0,3), vec(0)).
  std::vector<std::int64_t> peel;  ///< iteration positions to peel
  int unroll = 0;                  ///< full-unroll limit hint (0 = off)
  bool vectorize = false;          ///< emit a simd pragma
};

struct Stmt {
  StmtKind kind{};
  std::vector<StmtPtr> body;       ///< Block / For / If(then)
  LoopInfo loop;                   ///< For
  std::string target;              ///< Store array / Let var / Call name
  ExprPtr index;                   ///< Store index
  ExprPtr value;                   ///< Store value / Let value
  char store_op = '=';             ///< '=' plain, '+' +=, '-' -=, '/' /=
  ExprPtr cond;                    ///< If condition
  std::vector<ExprPtr> call_args;  ///< Call arguments
  std::string text;                ///< Comment
};

[[nodiscard]] StmtPtr block(std::vector<StmtPtr> stmts);
[[nodiscard]] StmtPtr for_loop(LoopInfo info, std::vector<StmtPtr> body);
[[nodiscard]] StmtPtr store(std::string array, ExprPtr index, ExprPtr value,
                            char op = '=');
[[nodiscard]] StmtPtr let(std::string name, ExprPtr value);
[[nodiscard]] StmtPtr if_then(ExprPtr cond, std::vector<StmtPtr> then_body);
[[nodiscard]] StmtPtr call(std::string name, std::vector<ExprPtr> args);
[[nodiscard]] StmtPtr comment(std::string text);

[[nodiscard]] StmtPtr clone(const StmtPtr& s);

/// Render a statement tree as C (indent = leading spaces).
[[nodiscard]] std::string to_c(const StmtPtr& s, int indent = 0);

// ---------------------------------------------------------------------------
// Constant folding / substitution — what makes peeled iterations become
// straight-line code with literal bounds (Figure 1e).
// ---------------------------------------------------------------------------

/// Integer arrays the folder may read through (the inspection sets plus
/// the matrix index arrays: pruneSet, blockSet, Lp, ...).
class Bindings {
 public:
  void bind(std::string name, std::span<const index_t> data);
  /// nullptr if unbound.
  [[nodiscard]] const index_t* find(const std::string& name,
                                    std::int64_t index) const;

 private:
  std::unordered_map<std::string, std::span<const index_t>> arrays_;
};

/// Recursively fold: Binary of constants, and Load of a bound array at a
/// constant index. Returns a new expression (input unchanged).
[[nodiscard]] ExprPtr fold(const ExprPtr& e, const Bindings& bindings);

/// Substitute Var(name) -> replacement throughout an expression.
[[nodiscard]] ExprPtr substitute(const ExprPtr& e, const std::string& name,
                                 const ExprPtr& replacement);

/// Substitute within a statement tree (clones).
[[nodiscard]] StmtPtr substitute(const StmtPtr& s, const std::string& name,
                                 const ExprPtr& replacement);

/// Evaluate a fully-constant integer expression; throws if not constant.
[[nodiscard]] std::int64_t eval_int(const ExprPtr& e);

/// True if the expression folded to an integer constant.
[[nodiscard]] bool is_int_const(const ExprPtr& e);

}  // namespace sympiler::core
