// Planner: (sparsity pattern, options, config) -> ExecutionPlan.
//
// The planning layer absorbs every decision that used to be scattered
// across api::Solver and the executors: it runs the inspector (the
// near-linear single-transpose cold pipeline of inspect_cholesky_planned),
// builds the level-set schedule when the parallel gates clear, and commits
// to one ExecutionPath with the profitability evidence recorded in the
// plan. Planning is a pure function of (pattern, PlannerConfig), which is
// what makes plans cacheable and shareable across Solvers and threads.
//
// A finished plan has two kinds of consumer: the interpreters (executors
// and the parallel level-set sweeps) read its sets from memory, and the
// PlanCompiler (plan_compiler.h) lowers the same sets into
// pattern-specialized compiled kernels — the evidence records which plans
// are eligible for the latter (jit_eligible), and summary() reports the
// slot's dynamic compile state.
#pragma once

#include <span>

#include "core/execution_plan.h"
#include "core/options.h"
#include "core/pattern_key.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::core {

/// Everything that steers planning: the inspection options plus the knobs
/// gating the parallel paths. Participates in the plan cache key — two
/// configs that could plan differently never share a cache entry.
struct PlannerConfig {
  SympilerOptions options;

  /// Allow the level-set parallel paths when they look profitable.
  /// Meaningless (always sequential) without SYMPILER_HAS_OPENMP.
  bool enable_parallel = true;
  /// Parallel profitability gates: enough supernodes to schedule, and wide
  /// enough average levels to beat the barrier cost per level.
  index_t parallel_min_supernodes = 256;
  double parallel_min_avg_level_width = 8.0;
  /// Rewrite committed parallel schedules into the dependence-coarsened
  /// AggregateSchedule (chain fusion + SIMD row bundles — see
  /// parallel/schedule.h). Off keeps the flat schedule, which the bench
  /// ablations and bit-identity tests compare against.
  bool coarsen_schedule = true;
};

class Planner {
 public:
  explicit Planner(PlannerConfig config = {}) : config_(config) {}

  [[nodiscard]] const PlannerConfig& config() const { return config_; }

  /// Cache key of the plan plan_cholesky would build: the pattern key of
  /// a_lower with the planner gates folded into the config hash.
  [[nodiscard]] PatternKey cholesky_key(const CscMatrix& a_lower) const;

  /// Cache key of the plan plan_trisolve would build.
  [[nodiscard]] PatternKey trisolve_key(const CscMatrix& l,
                                        std::span<const index_t> beta) const;

  /// Full Cholesky planning: inspect, schedule if profitable, pick a path.
  /// `with_key` stamps the plan's cache key — skip it (plan.key stays
  /// default) when the plan will never meet a cache, e.g. the direct
  /// executors' convenience constructors, to keep their "inspection time"
  /// free of O(nnz) key-hashing the caller throws away.
  [[nodiscard]] CholeskyPlan plan_cholesky(const CscMatrix& a_lower,
                                           bool with_key = true) const;

  /// Reference cold planning: the retained naive symbolic pipeline
  /// (count-by-materializing-every-ereach, per-row sorts, private
  /// transposes) with strictly serial assembly. Product-for-product
  /// bit-identical to plan_cholesky by contract — the equivalence tests
  /// pin that — and the bench baseline the fast path is measured against.
  [[nodiscard]] CholeskyPlan plan_cholesky_naive(const CscMatrix& a_lower,
                                                 bool with_key = true) const;

  /// Full triangular-solve planning. Pass `known_blocks` when L came out
  /// of the Cholesky inspector (supernodes need not be re-derived). The
  /// ParallelTriSolve path is only picked for a dense RHS (|beta| == n)
  /// under vi_prune: with a sparse RHS the pruned sequential solve does
  /// strictly less work than a full level sweep, and the !vi_prune naive
  /// loop's skip-exact-zero special case cannot be replayed from the
  /// pattern alone. A parallel plan also carries the
  /// privatized update-slot map that keeps the level-set solve
  /// bit-identical to the sequential one.
  [[nodiscard]] TriSolvePlan plan_trisolve(
      const CscMatrix& l, std::span<const index_t> beta,
      const SupernodePartition* known_blocks = nullptr,
      bool with_key = true) const;

  /// Whether this build can run the level-set paths in parallel at all
  /// (compile-time: SYMPILER_HAS_OPENMP).
  [[nodiscard]] static bool parallel_enabled();

 private:
  [[nodiscard]] std::uint64_t gate_hash() const;
  [[nodiscard]] CholeskyPlan plan_cholesky_impl(const CscMatrix& a_lower,
                                                bool with_key,
                                                bool naive) const;

  PlannerConfig config_;
};

/// Process-wide count of transpose() calls, in the style of
/// parallel::level_schedule_builds(): regression tests pin that one cold
/// plan_cholesky performs exactly one transpose — the shared upper view
/// threaded through etree, GNP counts, and the fused pattern sweep —
/// instead of the one-per-consumer transposes of the naive pipeline.
[[nodiscard]] std::uint64_t planner_transpose_count();

}  // namespace sympiler::core
