#include "core/plan_compiler.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

namespace sympiler::core {

namespace {

// ------------------------------------------------------------------ helpers

void emit_array(std::ostringstream& os, const char* name,
                std::span<const index_t> data) {
  os << "static const int " << name << "["
     << std::max<std::size_t>(data.size(), 1) << "] = {";
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 16 == 0) os << "\n  ";
    os << data[i] << (i + 1 < data.size() ? "," : "");
  }
  os << "};\n";
}

void emit_array64(std::ostringstream& os, const char* name,
                  std::span<const std::int64_t> data) {
  os << "static const long long " << name << "["
     << std::max<std::size_t>(data.size(), 1) << "] = {";
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 12 == 0) os << "\n  ";
    os << data[i] << "LL" << (i + 1 < data.size() ? "," : "");
  }
  os << "};\n";
}

/// Reach chains below this many update operations are emitted as fully
/// unrolled straight-line code (every index a literal); above it, the
/// baked-array loop form is used (same operation order either way).
constexpr std::int64_t kStraightLineOps = 1024;

// ------------------------------------------------- Cholesky: simplicial

/// Replay the simplicial interpreter's per-row cursors symbolically: the
/// position `next[k]` the executor reads when column j consumes column k
/// is a pure pattern function (Lp[k]+1, bumped once per consumer in
/// ascending-j order), so the compiled kernel bakes it per update and
/// drops the cursor array — and its dependent load chain — entirely.
std::vector<index_t> replay_update_starts(const CscMatrix& l,
                                          std::span<const index_t> rowpat_ptr,
                                          std::span<const index_t> rowpat) {
  const index_t n = l.cols();
  std::vector<index_t> cursor(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) cursor[k] = l.col_begin(k) + 1;
  std::vector<index_t> start(rowpat.size());
  for (index_t j = 0; j < n; ++j)
    for (index_t q = rowpat_ptr[j]; q < rowpat_ptr[j + 1]; ++q)
      start[q] = cursor[rowpat[q]]++;
  return start;
}

void emit_cholesky_simplicial(std::ostringstream& os,
                              const CholeskyPlan& plan) {
  const CscMatrix& l = plan.sets.sym.l_pattern;
  const index_t n = l.cols();
  const std::vector<index_t> upd_start = replay_update_starts(
      l, plan.sets.rowpat_ptr, plan.sets.rowpat);

  os << "// simplicial left-looking Cholesky, pattern-specialized: the\n"
        "// ereach chains (rowPat) and the replayed column cursors\n"
        "// (updStart) are baked, so the numeric loop chases no cursor\n"
        "// array. Operation order mirrors\n"
        "// CholeskyExecutor::factorize_simplicial exactly.\n";
  emit_array(os, "Lp", l.colptr);
  emit_array(os, "Li", l.rowind);
  emit_array(os, "rowPatPtr", plan.sets.rowpat_ptr);
  emit_array(os, "rowPat", plan.sets.rowpat);
  emit_array(os, "updStart", upd_start);
  os << "enum { N = " << n << " };\n\n";

  os << "extern \"C\" int " << PlanCompiler::kCholeskySymbol
     << "(const int* Ap, const int* Ai, const double* Ax,\n"
        "    double* Lx, double* f, int* iwork) {\n"
        "  (void)iwork;\n"
        "  for (int i = 0; i < N; ++i) f[i] = 0.0;\n"
        "  for (int j = 0; j < N; ++j) {\n"
        "    for (int p = Ap[j]; p < Ap[j + 1]; ++p) {\n"
        "      const int i = Ai[p];\n"
        "      if (i >= j) f[i] = Ax[p];\n"
        "    }\n"
        "    for (int q = rowPatPtr[j]; q < rowPatPtr[j + 1]; ++q) {\n"
        "      const int k = rowPat[q];\n"
        "      const int pj = updStart[q];\n"
        "      const double lkj = Lx[pj];\n"
        "      for (int p = pj; p < Lp[k + 1]; ++p) f[Li[p]] -= Lx[p] * lkj;\n"
        "    }\n"
        "    const double d = f[j];\n"
        "    if (!(d > 0.0)) return -1;\n"
        "    const double ljj = std::sqrt(d);\n"
        "    const int pdiag = Lp[j];\n"
        "    Lx[pdiag] = ljj;\n"
        "    f[j] = 0.0;\n"
        "    const double inv = 1.0 / ljj;\n"
        "    for (int p = pdiag + 1; p < Lp[j + 1]; ++p) {\n"
        "      const int i = Li[p];\n"
        "      Lx[p] = f[i] * inv;\n"
        "      f[i] = 0.0;\n"
        "    }\n"
        "  }\n"
        "  return 0;\n"
        "}\n";
}

// ------------------------------------------------- Cholesky: supernodal

/// _ref-order dense helpers (blas/kernels_ref.cpp): the blocked blas tier
/// is pinned bit-identical to these scalar loop nests, so emitting them
/// keeps the compiled kernel bit-identical to the interpreter across the
/// small-kernel / blocked dispatch (including the w==1 peel, whose scalar
/// sequence equals potrf(1) + trsm(m-1, 1)).
void emit_dense_helpers(std::ostringstream& os) {
  os << "static int potrf_lower(const int n, double* a, const int lda) {\n"
        "  for (int j = 0; j < n; ++j) {\n"
        "    double d = a[j + j * lda];\n"
        "    const double* aj = a + j;\n"
        "    for (int k = 0; k < j; ++k) d -= aj[k * lda] * aj[k * lda];\n"
        "    if (!(d > 0.0)) return 0;\n"
        "    const double djj = std::sqrt(d);\n"
        "    a[j + j * lda] = djj;\n"
        "    const double inv = 1.0 / djj;\n"
        "    for (int k = 0; k < j; ++k) {\n"
        "      const double ljk = a[j + k * lda];\n"
        "      const double* col = a + k * lda;\n"
        "      double* dst = a + j * lda;\n"
        "      for (int i = j + 1; i < n; ++i) dst[i] -= col[i] * ljk;\n"
        "    }\n"
        "    double* dst = a + j * lda;\n"
        "    for (int i = j + 1; i < n; ++i) dst[i] *= inv;\n"
        "  }\n"
        "  return 1;\n"
        "}\n\n"
        "static void trsm_rlt(const int m, const int n, const double* l,\n"
        "                     const int ldl, double* b, const int ldb) {\n"
        "  for (int j = 0; j < n; ++j) {\n"
        "    double* bj = b + j * ldb;\n"
        "    for (int k = 0; k < j; ++k) {\n"
        "      const double ljk = l[j + k * ldl];\n"
        "      const double* bk = b + k * ldb;\n"
        "      for (int i = 0; i < m; ++i) bj[i] -= ljk * bk[i];\n"
        "    }\n"
        "    const double inv = 1.0 / l[j + j * ldl];\n"
        "    for (int i = 0; i < m; ++i) bj[i] *= inv;\n"
        "  }\n"
        "}\n\n"
        "static void gemm_nt_minus(const int m, const int n, const int k,\n"
        "                          const double* a, const int lda,\n"
        "                          const double* b, const int ldb, double* c,\n"
        "                          const int ldc) {\n"
        "  for (int j = 0; j < n; ++j) {\n"
        "    double* cj = c + j * ldc;\n"
        "    for (int p = 0; p < k; ++p) {\n"
        "      const double bv = b[j + p * ldb];\n"
        "      const double* ap = a + p * lda;\n"
        "      for (int i = 0; i < m; ++i) cj[i] -= ap[i] * bv;\n"
        "    }\n"
        "  }\n"
        "}\n\n";
}

void emit_cholesky_supernodal(std::ostringstream& os,
                              const CholeskyPlan& plan) {
  const solvers::SupernodalLayout& layout = plan.sets.layout;
  const index_t nsuper = layout.nsuper();
  const bool specialized =
      plan.options.low_level &&
      plan.sets.avg_colcount < plan.options.blas_switch_colcount;

  std::vector<index_t> upd_d, upd_p1, upd_p2;
  upd_d.reserve(plan.sets.updates.refs.size());
  for (const solvers::UpdateRef& ref : plan.sets.updates.refs) {
    upd_d.push_back(ref.d);
    upd_p1.push_back(ref.p1);
    upd_p2.push_back(ref.p2);
  }

  os << "// supernodal left-looking Cholesky, pattern-specialized: the\n"
        "// supernode extents, panel offsets, and the static update\n"
        "// schedule are baked"
     << (plan.schedule.empty()
             ? "; natural supernode order.\n"
             : ", and the level schedule is flattened\n"
               "// into straight-line phases (any topological order is\n"
               "// bit-identical for left-looking updates).\n")
     << "// Operation order mirrors\n"
        "// CholeskyExecutor::factorize_supernodal exactly, including the\n"
        "// peeled single-target-column update when SPECIALIZED.\n";
  emit_dense_helpers(os);
  emit_array(os, "snStart", layout.sn.start);
  emit_array(os, "srowPtr", layout.srow_ptr);
  emit_array(os, "srows", layout.srows);
  emit_array64(os, "panelPtr", layout.panel_ptr);
  emit_array(os, "updPtr", plan.sets.updates.ptr);
  emit_array(os, "updD", upd_d);
  emit_array(os, "updP1", upd_p1);
  emit_array(os, "updP2", upd_p2);
  os << "enum { N = " << layout.n << ", NSUPER = " << nsuper
     << ", SPECIALIZED = " << (specialized ? 1 : 0) << " };\n\n";

  os << "static int factor_one(const int s, const double* Ax, double* panels,\n"
        "                      double* work, int* map) {\n"
        "  (void)Ax;\n"
        "  const int c1 = snStart[s];\n"
        "  const int w = snStart[s + 1] - c1;\n"
        "  const int m = srowPtr[s + 1] - srowPtr[s];\n"
        "  const int* rows = srows + srowPtr[s];\n"
        "  double* panel = panels + panelPtr[s];\n"
        "  for (int t = 0; t < m; ++t) map[rows[t]] = t;\n"
        "  for (int u = updPtr[s]; u < updPtr[s + 1]; ++u) {\n"
        "    const int d = updD[u];\n"
        "    const int p1 = updP1[u];\n"
        "    const int nu = updP2[u] - p1;\n"
        "    const int* drows = srows + srowPtr[d];\n"
        "    const int dm = srowPtr[d + 1] - srowPtr[d];\n"
        "    const int dw = snStart[d + 1] - snStart[d];\n"
        "    const double* dpanel = panels + panelPtr[d];\n"
        "    const int mu = dm - p1;\n"
        "    if (SPECIALIZED && nu == 1) {\n"
        "      double* dst = panel + (long long)(drows[p1] - c1) * m;\n"
        "      for (int p = 0; p < dw; ++p) {\n"
        "        const double* dcol = dpanel + (long long)p * dm;\n"
        "        const double fv = dcol[p1];\n"
        "        if (fv == 0.0) continue;\n"
        "        for (int r = 0; r < mu; ++r)\n"
        "          dst[map[drows[p1 + r]]] -= dcol[p1 + r] * fv;\n"
        "      }\n"
        "      continue;\n"
        "    }\n"
        "    for (long long t = 0; t < (long long)mu * nu; ++t) work[t] = "
        "0.0;\n"
        "    gemm_nt_minus(mu, nu, dw, dpanel + p1, dm, dpanel + p1, dm, "
        "work, mu);\n"
        "    for (int cjj = 0; cjj < nu; ++cjj) {\n"
        "      const int gcol = drows[p1 + cjj];\n"
        "      double* dst = panel + (long long)(gcol - c1) * m;\n"
        "      const double* src = work + (long long)cjj * mu;\n"
        "      for (int r = cjj; r < mu; ++r) dst[map[drows[p1 + r]]] += "
        "src[r];\n"
        "    }\n"
        "  }\n"
        "  if (!potrf_lower(w, panel, m)) return -1;\n"
        "  if (m > w) trsm_rlt(m - w, w, panel, m, panel + w, m);\n"
        "  return 0;\n"
        "}\n\n";

  os << "extern \"C\" int " << PlanCompiler::kCholeskySymbol
     << "(const int* Ap, const int* Ai, const double* Ax,\n"
        "    double* panels, double* work, int* map) {\n"
        "  for (long long t = 0; t < "
     << layout.total_values()
     << "LL; ++t) panels[t] = 0.0;\n"
        "  for (int s = 0; s < NSUPER; ++s) {\n"
        "    const int c1 = snStart[s];\n"
        "    const int m = srowPtr[s + 1] - srowPtr[s];\n"
        "    const int* rows = srows + srowPtr[s];\n"
        "    for (int t = 0; t < m; ++t) map[rows[t]] = t;\n"
        "    double* panel = panels + panelPtr[s];\n"
        "    for (int j = c1; j < snStart[s + 1]; ++j) {\n"
        "      double* col = panel + (long long)(j - c1) * m;\n"
        "      for (int p = Ap[j]; p < Ap[j + 1]; ++p) {\n"
        "        const int i = Ai[p];\n"
        "        if (i < j) continue;\n"
        "        col[map[i]] = Ax[p];\n"
        "      }\n"
        "    }\n"
        "  }\n";
  if (plan.schedule.empty()) {
    os << "  for (int s = 0; s < NSUPER; ++s)\n"
          "    if (factor_one(s, Ax, panels, work, map) != 0) return -1;\n";
  } else {
    // Level-flattened straight-line phases: one loop per level over the
    // baked topological order, dependencies resolved by construction.
    emit_array(os, "snOrder", plan.schedule.items);
    const index_t levels = plan.schedule.levels();
    for (index_t lv = 0; lv < levels; ++lv) {
      const index_t b = plan.schedule.level_ptr[lv];
      const index_t e = plan.schedule.level_ptr[lv + 1];
      os << "  /* phase " << lv << ": " << (e - b) << " supernode(s) */\n"
         << "  for (int t = " << b << "; t < " << e
         << "; ++t)\n"
            "    if (factor_one(snOrder[t], Ax, panels, work, map) != 0) "
            "return -1;\n";
    }
  }
  os << "  return 0;\n}\n";
}

// ------------------------------------------------------ trisolve shapes

void emit_trisolve_pruned(std::ostringstream& os, const TriSolvePlan& plan,
                          const CscMatrix& l) {
  if (!plan.options.vi_prune) {
    os << "// naive forward solve (no transformations): the runtime\n"
          "// exact-zero skip mirrors TriSolveExecutor::solve_pruned's\n"
          "// library loop.\n"
          "enum { N = "
       << l.cols()
       << " };\n\n"
          "extern \"C\" void "
       << PlanCompiler::kTriSolveSymbol
       << "(const int* Lp, const int* Li, const double* Lx, double* x,\n"
          "    double* tail) {\n"
          "  (void)tail;\n"
          "  for (int j = 0; j < N; ++j) {\n"
          "    if (x[j] == 0.0) continue;\n"
          "    const int p0 = Lp[j];\n"
          "    const double xj = x[j] / Lx[p0];\n"
          "    x[j] = xj;\n"
          "    for (int p = p0 + 1; p < Lp[j + 1]; ++p) x[Li[p]] -= Lx[p] * "
          "xj;\n"
          "  }\n"
          "}\n";
    return;
  }

  const std::vector<index_t>& reach = plan.sets.reach;
  std::int64_t total_ops = 0;
  for (const index_t j : reach) total_ops += l.col_end(j) - l.col_begin(j);

  os << "// pruned forward solve over the baked reach-set. Operation order\n"
        "// mirrors TriSolveExecutor::solve_pruned (the executor's 4-way\n"
        "// peel reorders nothing).\n";
  os << "extern \"C\" void " << PlanCompiler::kTriSolveSymbol
     << "(const int* Lp, const int* Li, const double* Lx, double* x,\n"
        "    double* tail) {\n"
        "  (void)Lp; (void)tail;\n";
  if (total_ops <= kStraightLineOps) {
    // Fully unrolled ereach chains: every row index and value offset a
    // literal — no index loads at all.
    os << "  (void)Li;\n";
    for (const index_t j : reach) {
      const index_t p0 = l.col_begin(j);
      const index_t p1 = l.col_end(j);
      os << "  {\n    const double xj = x[" << j << "] / Lx[" << p0
         << "];\n    x[" << j << "] = xj;\n";
      for (index_t p = p0 + 1; p < p1; ++p)
        os << "    x[" << l.rowind[p] << "] -= Lx[" << p << "] * xj;\n";
      os << "  }\n";
    }
  } else {
    std::vector<index_t> col_begin, col_end;
    col_begin.reserve(reach.size());
    for (const index_t j : reach) {
      col_begin.push_back(l.col_begin(j));
      col_end.push_back(l.col_end(j));
    }
    emit_array(os, "pruneSet", reach);
    emit_array(os, "colBegin", col_begin);
    emit_array(os, "colEnd", col_end);
    os << "  for (int k = 0; k < " << reach.size()
       << "; ++k) {\n"
          "    const int j = pruneSet[k];\n"
          "    const int p0 = colBegin[k];\n"
          "    const double xj = x[j] / Lx[p0];\n"
          "    x[j] = xj;\n"
          "    for (int p = p0 + 1; p < colEnd[k]; ++p) x[Li[p]] -= Lx[p] * "
          "xj;\n"
          "  }\n";
  }
  os << "}\n";
}

void emit_trisolve_blocked(std::ostringstream& os, const TriSolvePlan& plan,
                           const CscMatrix& l) {
  (void)l;
  const TriSolveSets& sets = plan.sets;
  std::vector<index_t> blk_c1, blk_c2, blk_cr, blk_tail;
  const index_t nblocks = plan.options.vi_prune
                              ? static_cast<index_t>(sets.sn_reach.size())
                              : sets.blocks.count();
  for (index_t k = 0; k < nblocks; ++k) {
    const index_t s = plan.options.vi_prune ? sets.sn_reach[k] : k;
    blk_c1.push_back(sets.blocks.start[s]);
    blk_c2.push_back(sets.blocks.start[s + 1]);
    blk_cr.push_back(plan.options.vi_prune ? sets.sn_first_col[k]
                                           : blk_c1.back());
    blk_tail.push_back(sets.colcount[blk_c1.back()] -
                       (blk_c2.back() - blk_c1.back()));
  }

  os << "// VS-Block supernodal forward solve over the baked block-set\n"
        "// (restricted to the supernode-level prune-set when VI-Prune is\n"
        "// on). Operation order mirrors TriSolveExecutor::solve_blocked\n"
        "// exactly, including the LOW_LEVEL column pairing of the tail\n"
        "// accumulation and the peeled single-column supernodes.\n";
  emit_array(os, "blkC1", blk_c1);
  emit_array(os, "blkC2", blk_c2);
  emit_array(os, "blkCr", blk_cr);
  emit_array(os, "blkTail", blk_tail);
  os << "enum { NBLOCKS = " << nblocks
     << ", LOW_LEVEL = " << (plan.options.low_level ? 1 : 0) << " };\n\n";

  os << "extern \"C\" void " << PlanCompiler::kTriSolveSymbol
     << "(const int* Lp, const int* Li, const double* Lx, double* x,\n"
        "    double* tail) {\n"
        "  for (int k = 0; k < NBLOCKS; ++k) {\n"
        "    const int c1 = blkC1[k];\n"
        "    const int c2 = blkC2[k];\n"
        "    const int cr = blkCr[k];\n"
        "    const int tail_len = blkTail[k];\n"
        "    if (LOW_LEVEL && c2 - cr == 1 && cr == c1) {\n"
        "      const int p0 = Lp[cr];\n"
        "      const double xj = x[cr] / Lx[p0];\n"
        "      x[cr] = xj;\n"
        "      for (int p = p0 + 1; p < Lp[cr + 1]; ++p) x[Li[p]] -= Lx[p] * "
        "xj;\n"
        "      continue;\n"
        "    }\n"
        "    for (int j = cr; j < c2; ++j) {\n"
        "      const int p0 = Lp[j];\n"
        "      const double xj = x[j] / Lx[p0];\n"
        "      x[j] = xj;\n"
        "      const double* col = Lx + p0 + 1;\n"
        "      double* xrow = x + j + 1;\n"
        "      const int blen = c2 - j - 1;\n"
        "      for (int t = 0; t < blen; ++t) xrow[t] -= col[t] * xj;\n"
        "    }\n"
        "    if (tail_len == 0) continue;\n"
        "    for (int t = 0; t < tail_len; ++t) tail[t] = 0.0;\n"
        "    int j = cr;\n"
        "    if (LOW_LEVEL) {\n"
        "      for (; j + 1 < c2; j += 2) {\n"
        "        const double xa = x[j];\n"
        "        const double xb = x[j + 1];\n"
        "        const double* ca = Lx + Lp[j] + (c2 - j);\n"
        "        const double* cb = Lx + Lp[j + 1] + (c2 - j - 1);\n"
        "        for (int t = 0; t < tail_len; ++t)\n"
        "          tail[t] += ca[t] * xa + cb[t] * xb;\n"
        "      }\n"
        "    }\n"
        "    for (; j < c2; ++j) {\n"
        "      const double xj = x[j];\n"
        "      const double* cj = Lx + Lp[j] + (c2 - j);\n"
        "      for (int t = 0; t < tail_len; ++t) tail[t] += cj[t] * xj;\n"
        "    }\n"
        "    const int* rows = Li + Lp[c1] + (c2 - c1);\n"
        "    for (int t = 0; t < tail_len; ++t) x[rows[t]] -= tail[t];\n"
        "  }\n"
        "}\n";
}

std::string preamble(const char* what, const PatternKey& key) {
  std::ostringstream os;
  os << "// Generated by Sympiler-repro: plan-compiled " << what << "\n"
        "// specialized for one sparsity pattern ("
     << key.rows << "x" << key.cols << ", nnz=" << key.nnz;
  if (key.rhs_nnz > 0) os << ", rhs_nnz=" << key.rhs_nnz;
  os << ")\n"
        "// Compile with -ffp-contract=off: bit-identity with the\n"
        "// interpreters requires uncontracted rounding (see jit.cpp).\n"
        "#include <cmath>\n\n";
  return os.str();
}

template <class Plan, class EmitFn>
std::shared_ptr<const CompiledKernel> compile_impl(
    const Plan& plan, const char* symbol, std::size_t max_source_bytes,
    EmitFn&& emit_fn) {
  const JitSlot& slot = *plan.jit;
  if (auto existing = slot.kernel()) return existing;
  if (slot.failed()) return nullptr;
  if (!JitModule::compiler_available()) {
    slot.mark_failed("no host compiler");
    return nullptr;
  }
  const std::string source = emit_fn();
  if (max_source_bytes > 0 && source.size() > max_source_bytes) {
    std::ostringstream why;
    why << "source " << source.size() << " bytes exceeds cap "
        << max_source_bytes;
    slot.mark_failed(why.str());
    return nullptr;
  }
  try {
    auto kernel = std::make_shared<CompiledKernel>();
    kernel->module = JitModule::compile(source, symbol);
    kernel->symbol = symbol;
    kernel->source_bytes = source.size();
    kernel->compile_seconds = kernel->module.compile_seconds();
    std::shared_ptr<const CompiledKernel> shared = std::move(kernel);
    if (!slot.publish(shared)) return slot.kernel();  // lost a publish race
    return shared;
  } catch (const std::exception& e) {
    slot.mark_failed(e.what());
    return nullptr;
  } catch (...) {
    slot.mark_failed("unknown jit failure");
    return nullptr;
  }
}

}  // namespace

bool PlanCompiler::eligible(const CholeskyPlan& plan) {
  return plan.path == ExecutionPath::Simplicial ||
         plan.path == ExecutionPath::Supernodal;
}

bool PlanCompiler::eligible(const TriSolvePlan& plan) {
  return plan.path == ExecutionPath::PrunedTriSolve ||
         plan.path == ExecutionPath::BlockedTriSolve;
}

std::string PlanCompiler::emit(const CholeskyPlan& plan) {
  std::ostringstream os;
  os << preamble("sparse Cholesky", plan.key);
  if (plan.path == ExecutionPath::Simplicial) {
    emit_cholesky_simplicial(os, plan);
  } else {
    // Supernodal and ParallelSupernodal: one supernodal emission; the
    // parallel plan's level schedule is flattened into phases.
    emit_cholesky_supernodal(os, plan);
  }
  return os.str();
}

std::string PlanCompiler::emit(const TriSolvePlan& plan, const CscMatrix& l) {
  std::ostringstream os;
  os << preamble("sparse triangular solve", plan.key);
  if (plan.path == ExecutionPath::BlockedTriSolve) {
    emit_trisolve_blocked(os, plan, l);
  } else {
    // Pruned and ParallelTriSolve (whose sequential interpretation is the
    // pruned solve).
    emit_trisolve_pruned(os, plan, l);
  }
  return os.str();
}

std::shared_ptr<const CompiledKernel> PlanCompiler::compile(
    const CholeskyPlan& plan, std::size_t max_source_bytes) {
  return compile_impl(plan, kCholeskySymbol, max_source_bytes,
                      [&] { return emit(plan); });
}

std::shared_ptr<const CompiledKernel> PlanCompiler::compile(
    const TriSolvePlan& plan, const CscMatrix& l,
    std::size_t max_source_bytes) {
  return compile_impl(plan, kTriSolveSymbol, max_source_bytes,
                      [&] { return emit(plan, l); });
}

}  // namespace sympiler::core
