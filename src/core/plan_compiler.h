// PlanCompiler: lower a cached ExecutionPlan to pattern-specialized C and
// compile it through the existing JIT machinery.
//
// This is the codegen half of the paper pointed at the planning layer
// built in PRs 1-5: instead of re-running the inspectors (codegen.h's
// legacy entry points), emission consumes the plan's own inspection sets —
// the ereach/update chains, supernode extents, panel offsets, and the
// level schedule are baked into the instruction stream as constants. The
// pruned-trisolve shape additionally bakes the replayed per-update column
// cursors (updStart) that the simplicial interpreter chases through its
// `next` array at run time, so the compiled kernel does strictly less
// memory traffic than the interpreter on the identical arithmetic.
//
// Bit-identity contract: every emitted loop nest reproduces the exact
// operation order of the interpreting executor (cholesky_executor.cpp /
// trisolve_executor.cpp), including the specialized peels; the blocked
// blas tier is pinned bit-identical to the _ref scalar order
// (blas/kernels.h), so emitting _ref-order dense helpers and compiling at
// -ffp-contract=off (jit.cpp) makes compiled results bit-identical to the
// interpreters — pinned by tests/test_codegen.cpp.
//
// Compiled kernels are published into the plan's JitSlot
// (compiled_kernel.h): compiled once per PatternKey, shared by every
// executor interpreting the plan, weighed and evicted with the plan by the
// PlanCache (symbolic_cache.h::refresh_bytes).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "core/compiled_kernel.h"
#include "core/execution_plan.h"
#include "sparse/csc.h"

namespace sympiler::core {

class PlanCompiler {
 public:
  static constexpr const char* kCholeskySymbol = "sym_plan_cholesky";
  static constexpr const char* kTriSolveSymbol = "sym_plan_trisolve";

  /// Whether the facades should lower this plan at all: sequential paths
  /// only. Parallel plans keep their level-set interpreters — a serial
  /// compiled kernel would forfeit the parallelism (their sequential
  /// interpretation still compiles via compile(), for tests and tools).
  [[nodiscard]] static bool eligible(const CholeskyPlan& plan);
  [[nodiscard]] static bool eligible(const TriSolvePlan& plan);

  /// Emit the pattern-specialized C for a plan (no compilation). The
  /// trisolve shapes bake literal column offsets of L, so the factor the
  /// plan was built against must be supplied.
  [[nodiscard]] static std::string emit(const CholeskyPlan& plan);
  [[nodiscard]] static std::string emit(const TriSolvePlan& plan,
                                        const CscMatrix& l);

  /// Emit + compile + publish into plan.jit (first publisher wins). On
  /// any failure — no host compiler, source over `max_source_bytes`
  /// (0 = uncapped), compiler error — the slot records a permanent
  /// failure and null is returned; numeric execution falls back to the
  /// interpreter, never throws. Idempotent: returns the already-published
  /// kernel when one exists.
  static std::shared_ptr<const CompiledKernel> compile(
      const CholeskyPlan& plan, std::size_t max_source_bytes = 0);
  static std::shared_ptr<const CompiledKernel> compile(
      const TriSolvePlan& plan, const CscMatrix& l,
      std::size_t max_source_bytes = 0);
};

}  // namespace sympiler::core
