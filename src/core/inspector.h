// Compile-time symbolic inspectors (paper section 2.2, Table 1).
//
// For each numerical method the inspector builds an inspection graph from
// the sparsity pattern, traverses it with a method-specific strategy, and
// produces inspection sets that drive the inspector-guided transformations:
//
//   method     graph          strategy           sets
//   --------   ------------   ----------------   -----------------------------
//   trisolve   DG_L + SP(b)   DFS                prune-set (reach-set)
//   trisolve   DG_L           node equivalence   block-set (supernodes)
//   cholesky   etree + SP(A)  up-traversal       prune-sets (row patterns)
//   cholesky   etree+colcnt   up-traversal       block-set (supernodes)
//
// Everything here runs once per sparsity pattern ("compile time"). The
// sets have three symbolic-work-free consumers: the interpreting executors
// read them from memory, the legacy codegen entry points (codegen.h) bake
// them into standalone C, and the PlanCompiler (plan_compiler.h) bakes
// them — as part of a whole cached ExecutionPlan — into the plan's
// compiled kernel. The cold pipeline itself is near-linear: one shared
// transpose(A) feeds the etree, the GNP column counts, and the fused
// pattern sweep (inspect_cholesky_planned).
#pragma once

#include <span>
#include <vector>

#include "core/options.h"
#include "graph/supernodes.h"
#include "graph/symbolic.h"
#include "parallel/schedule.h"
#include "solvers/supernodal.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::core {

/// Wall seconds of each cold-planning phase, recorded in PlanEvidence and
/// emitted by bench/cache_reuse as the per-phase cold breakdown. Phases
/// built inside the parallel assembly region (updates, rowpat) are folded
/// into `assemble`, which is the region's wall time — under OpenMP the
/// named phases can overlap it, so the parts need not sum to
/// build_seconds.
struct PlanPhaseTimes {
  double transpose = 0.0;  ///< the one shared transpose(A)
  double etree = 0.0;      ///< elimination tree (Liu, from the upper view)
  double counts = 0.0;     ///< postorder + GNP skeleton column counts
  double pattern = 0.0;    ///< fused single-sweep pattern fill
  double assemble = 0.0;   ///< layout/updates/rowpat region wall time
  double schedule = 0.0;   ///< supernode level schedule (parallel gate)
  double slotmap = 0.0;    ///< privatized update-slot map (parallel gate)
  double verify = 0.0;     ///< static plan verification (verify/verify.h)
};

/// Inspection sets for sparse triangular solve L x = b.
struct TriSolveSets {
  /// Column-level prune-set: Reach_L(beta) in topological order.
  std::vector<index_t> reach;
  /// Block-set: node-equivalence supernodes of DG_L.
  SupernodePartition blocks;
  /// Supernode-level prune-set (ascending supernode ids; ascending is
  /// topological because DG_L edges always increase the column index).
  std::vector<index_t> sn_reach;
  /// First reached column within each sn_reach entry (reached columns of a
  /// supernode always form a suffix of its columns, because supernode
  /// diagonal blocks are dense).
  std::vector<index_t> sn_first_col;
  /// Per-column nnz of L (drives the peel decisions, paper Figure 1e).
  std::vector<index_t> colcount;
  /// Average participating supernode size (rows) — VS-Block threshold input.
  double avg_supernode_size = 0.0;
  /// Whether VS-Block passes its profitability threshold.
  bool vs_block_profitable = false;
  /// Useful flops of the pruned solve.
  double flops = 0.0;

  /// Heap bytes of the inspection sets (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return (reach.size() + sn_reach.size() + sn_first_col.size() +
            colcount.size()) *
               sizeof(index_t) +
           blocks.bytes();
  }
};

/// Run the triangular-solve inspector on pattern of L and RHS pattern
/// beta. When L came out of the Cholesky inspector, pass its block-set as
/// `known_blocks` — the supernodes of L are a byproduct of factorization
/// symbolic analysis and need not be re-derived by node equivalence (this
/// is what keeps the trisolve symbolic phase proportional to the reach,
/// paper section 4.3).
[[nodiscard]] TriSolveSets inspect_trisolve(
    const CscMatrix& l, std::span<const index_t> beta,
    const SympilerOptions& opt = {},
    const SupernodePartition* known_blocks = nullptr);

/// Convenience: beta from a dense b's nonzeros.
[[nodiscard]] TriSolveSets inspect_trisolve_dense_rhs(
    const CscMatrix& l, std::span<const value_t> b,
    const SympilerOptions& opt = {});

/// Inspection sets for sparse Cholesky A = L L^T.
struct CholeskySets {
  SymbolicFactor sym;                 ///< etree, colcounts, pattern of L
  SupernodePartition blocks;          ///< fundamental supernodes
  solvers::SupernodalLayout layout;   ///< panel layout of the factor
  solvers::UpdateLists updates;       ///< static update schedule (decoupled)
  /// Simplicial prune-sets: row pattern of every row of L (CSR-style),
  /// excluding diagonals — the update-loop iteration spaces of Figure 4.
  std::vector<index_t> rowpat_ptr;    ///< size n+1
  std::vector<index_t> rowpat;
  double avg_supernode_size = 0.0;    ///< rows, over width>=2 supernodes
  double avg_colcount = 0.0;          ///< BLAS-switch threshold input
  bool vs_block_profitable = false;
  [[nodiscard]] double flops() const { return sym.flops; }

  /// Heap bytes of the inspection sets (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return sym.bytes() + blocks.bytes() + layout.bytes() + updates.bytes() +
           (rowpat_ptr.size() + rowpat.size()) * sizeof(index_t);
  }
};

/// Run the Cholesky inspector on the pattern of A (lower triangle).
/// Builds every inspection set (pattern with values, rowpat, layout,
/// updates) — the ungated contract direct callers (executor convenience
/// constructors, tests) rely on. The Planner goes through
/// inspect_cholesky_planned instead.
[[nodiscard]] CholeskySets inspect_cholesky(const CscMatrix& a_lower,
                                            const SympilerOptions& opt = {});

/// What plan_cholesky asks the inspector for beyond the plain sets.
struct CholeskyPlanRequest {
  /// Build only the sets the profitability-chosen path will consume:
  /// simplicial plans get rowpat + L values and skip layout/updates;
  /// supernodal plans get layout/updates and skip rowpat + the |L|-sized
  /// zero value array. The gate decision (colcount + block-set) is made
  /// before the pattern fill, so skipped products cost nothing.
  bool gate_products = false;
  /// Build the supernode level schedule — and, if the width gate passes,
  /// the forward-solve slot map — inside the same assembly region.
  bool build_schedule = false;
  index_t parallel_min_supernodes = 0;
  double parallel_min_avg_level_width = 0.0;
  /// Also coarsen a committed schedule into the aggregate (chain-fused)
  /// form — see parallel/schedule.h.
  bool coarsen = false;
  /// Use the retained naive reference pipeline: symbolic_cholesky_naive
  /// plus strictly serial assembly. The equivalence tests pin the fast
  /// path bit-identical to this.
  bool naive = false;
};

/// Schedule products of a planned inspection (meaningful only when the
/// request set build_schedule).
struct CholeskyPlanProducts {
  bool scheduled = false;  ///< supernode-count gate passed; schedule built
  bool committed = false;  ///< level-width gate passed; slot map built
  parallel::LevelSchedule schedule;
  parallel::UpdateSlotMap solve_update_map;
  /// Dependence-coarsened rewrite of `schedule` (empty unless committed
  /// and the request asked to coarsen).
  parallel::AggregateSchedule agg;
};

/// Planner entry point: the near-linear cold pipeline. One shared
/// transpose(A) threads through the etree, the GNP column counts, and the
/// fused pattern sweep; the independent assembly products (rowpat,
/// layout -> updates, schedule -> slot map) run as OpenMP tasks over the
/// shared symbolic factor. Product content is identical to the serial
/// naive pipeline on every build — only wall time differs.
[[nodiscard]] CholeskySets inspect_cholesky_planned(
    const CscMatrix& a_lower, const SympilerOptions& opt,
    const CholeskyPlanRequest& req, CholeskyPlanProducts& products,
    PlanPhaseTimes* phases = nullptr);

}  // namespace sympiler::core
