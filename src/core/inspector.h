// Compile-time symbolic inspectors (paper section 2.2, Table 1).
//
// For each numerical method the inspector builds an inspection graph from
// the sparsity pattern, traverses it with a method-specific strategy, and
// produces inspection sets that drive the inspector-guided transformations:
//
//   method     graph          strategy           sets
//   --------   ------------   ----------------   -----------------------------
//   trisolve   DG_L + SP(b)   DFS                prune-set (reach-set)
//   trisolve   DG_L           node equivalence   block-set (supernodes)
//   cholesky   etree + SP(A)  up-traversal       prune-sets (row patterns)
//   cholesky   etree+colcnt   up-traversal       block-set (supernodes)
//
// Everything here runs once per sparsity pattern ("compile time"); the
// executors/generated code consume the sets without any symbolic work.
#pragma once

#include <span>
#include <vector>

#include "core/options.h"
#include "graph/supernodes.h"
#include "graph/symbolic.h"
#include "solvers/supernodal.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::core {

/// Inspection sets for sparse triangular solve L x = b.
struct TriSolveSets {
  /// Column-level prune-set: Reach_L(beta) in topological order.
  std::vector<index_t> reach;
  /// Block-set: node-equivalence supernodes of DG_L.
  SupernodePartition blocks;
  /// Supernode-level prune-set (ascending supernode ids; ascending is
  /// topological because DG_L edges always increase the column index).
  std::vector<index_t> sn_reach;
  /// First reached column within each sn_reach entry (reached columns of a
  /// supernode always form a suffix of its columns, because supernode
  /// diagonal blocks are dense).
  std::vector<index_t> sn_first_col;
  /// Per-column nnz of L (drives the peel decisions, paper Figure 1e).
  std::vector<index_t> colcount;
  /// Average participating supernode size (rows) — VS-Block threshold input.
  double avg_supernode_size = 0.0;
  /// Whether VS-Block passes its profitability threshold.
  bool vs_block_profitable = false;
  /// Useful flops of the pruned solve.
  double flops = 0.0;

  /// Heap bytes of the inspection sets (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return (reach.size() + sn_reach.size() + sn_first_col.size() +
            colcount.size()) *
               sizeof(index_t) +
           blocks.bytes();
  }
};

/// Run the triangular-solve inspector on pattern of L and RHS pattern
/// beta. When L came out of the Cholesky inspector, pass its block-set as
/// `known_blocks` — the supernodes of L are a byproduct of factorization
/// symbolic analysis and need not be re-derived by node equivalence (this
/// is what keeps the trisolve symbolic phase proportional to the reach,
/// paper section 4.3).
[[nodiscard]] TriSolveSets inspect_trisolve(
    const CscMatrix& l, std::span<const index_t> beta,
    const SympilerOptions& opt = {},
    const SupernodePartition* known_blocks = nullptr);

/// Convenience: beta from a dense b's nonzeros.
[[nodiscard]] TriSolveSets inspect_trisolve_dense_rhs(
    const CscMatrix& l, std::span<const value_t> b,
    const SympilerOptions& opt = {});

/// Inspection sets for sparse Cholesky A = L L^T.
struct CholeskySets {
  SymbolicFactor sym;                 ///< etree, colcounts, pattern of L
  SupernodePartition blocks;          ///< fundamental supernodes
  solvers::SupernodalLayout layout;   ///< panel layout of the factor
  solvers::UpdateLists updates;       ///< static update schedule (decoupled)
  /// Simplicial prune-sets: row pattern of every row of L (CSR-style),
  /// excluding diagonals — the update-loop iteration spaces of Figure 4.
  std::vector<index_t> rowpat_ptr;    ///< size n+1
  std::vector<index_t> rowpat;
  double avg_supernode_size = 0.0;    ///< rows, over width>=2 supernodes
  double avg_colcount = 0.0;          ///< BLAS-switch threshold input
  bool vs_block_profitable = false;
  [[nodiscard]] double flops() const { return sym.flops; }

  /// Heap bytes of the inspection sets (plan-size accounting).
  [[nodiscard]] std::size_t bytes() const {
    return sym.bytes() + blocks.bytes() + layout.bytes() + updates.bytes() +
           (rowpat_ptr.size() + rowpat.size()) * sizeof(index_t);
  }
};

/// Run the Cholesky inspector on the pattern of A (lower triangle).
[[nodiscard]] CholeskySets inspect_cholesky(const CscMatrix& a_lower,
                                            const SympilerOptions& opt = {});

}  // namespace sympiler::core
