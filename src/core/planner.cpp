#include "core/planner.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "sparse/ops.h"
#include "util/status.h"
#include "util/timer.h"
#include "verify/verify.h"

namespace sympiler::core {

const char* to_string(ExecutionPath path) {
  switch (path) {
    case ExecutionPath::Simplicial: return "simplicial";
    case ExecutionPath::Supernodal: return "supernodal";
    case ExecutionPath::ParallelSupernodal: return "parallel-supernodal";
    case ExecutionPath::PrunedTriSolve: return "pruned-trisolve";
    case ExecutionPath::BlockedTriSolve: return "blocked-trisolve";
    case ExecutionPath::ParallelTriSolve: return "parallel-trisolve";
  }
  return "?";
}

namespace {

std::string summarize(const char* kind, const PatternKey& key,
                      ExecutionPath path, const PlanEvidence& ev,
                      const JitSlot& jit, std::size_t bytes,
                      std::size_t workspace_bytes) {
  std::ostringstream os;
  os << kind << " plan for " << key.rows << "x" << key.cols
     << " nnz=" << key.nnz;
  if (key.rhs_nnz > 0) os << " rhs_nnz=" << key.rhs_nnz;
  os << "\n  path: " << to_string(path)
     << (ev.vs_block_profitable ? " (VS-Block profitable)"
                                : " (VS-Block below threshold)");
  os << "\n  supernodes: " << ev.supernodes
     << ", avg participating size: " << ev.avg_supernode_size;
  if (ev.parallel_considered) {
    os << "\n  levels: " << ev.levels
       << ", avg level width: " << ev.avg_level_width;
    if (ev.agg_levels > 0)
      os << "\n  coarsened: " << ev.agg_levels << " levels, " << ev.agg_tasks
         << " tasks, " << ev.agg_bundles << " SIMD bundles";
  } else {
    os << "\n  levels: not scheduled (parallel gates closed)";
  }
  // Dynamic JIT state lives in the plan's slot, not the evidence: a plan
  // may be explained before, after, or instead of being compiled.
  if (const auto kernel = jit.kernel()) {
    os << "\n  jit: compiled (" << kernel->compile_seconds * 1e3 << " ms, "
       << kernel->source_bytes / 1024 << " KiB source)";
  } else if (jit.failed()) {
    os << "\n  jit: failed (" << jit.failure() << ")";
  } else {
    os << "\n  jit: "
       << (ev.jit_eligible ? "eligible (interpreting until compiled)"
                           : "ineligible (parallel plan stays interpreted)");
  }
  os << "\n  plan bytes: " << bytes
     << ", executor workspace bytes: " << workspace_bytes
     << ", planning time: " << ev.build_seconds * 1e3 << " ms";
  const PlanPhaseTimes& t = ev.phases;
  if (t.transpose + t.etree + t.counts + t.pattern + t.assemble > 0.0) {
    os << "\n  cold phases (ms): transpose " << t.transpose * 1e3
       << ", etree " << t.etree * 1e3 << ", counts " << t.counts * 1e3
       << ", pattern " << t.pattern * 1e3 << ", assemble " << t.assemble * 1e3
       << ", schedule " << t.schedule * 1e3 << ", slotmap "
       << t.slotmap * 1e3;
    if (t.verify > 0.0) os << ", verify " << t.verify * 1e3;
  }
  return os.str();
}

/// Emitted-code audit is worth its O(source) cost only when the plan is
/// actually headed for the JIT tier.
bool audit_worthwhile(const PlanEvidence& ev, const SympilerOptions& opt) {
  return ev.jit_eligible && opt.jit != JitMode::kOff;
}

/// Static verification of a freshly built plan (see verify/verify.h). A
/// finding is always a planner/scheduler bug, never an input property, so
/// it throws kPlanInvalid from plan time — before the plan can reach the
/// cache or an executor. Warm cache hits skip planning entirely and so
/// are never re-verified (the zero-alloc warm contract holds).
void verify_fresh(CholeskyPlan& plan) {
  if (!plan.options.verify_plan) return;
  const Timer vt;
  verify::VerifyOptions vo;
  vo.audit_emitted_code = audit_worthwhile(plan.evidence, plan.options);
  const verify::Report report = verify::verify_plan(plan, vo);
  plan.evidence.phases.verify = vt.seconds();
  if (!report.ok()) throw plan_verification_error(report.to_string());
}

void verify_fresh(TriSolvePlan& plan, const CscMatrix& l,
                  std::span<const index_t> beta) {
  if (!plan.options.verify_plan) return;
  const Timer vt;
  verify::VerifyOptions vo;
  vo.audit_emitted_code = audit_worthwhile(plan.evidence, plan.options);
  const verify::Report report = verify::verify_plan(plan, l, beta, vo);
  plan.evidence.phases.verify = vt.seconds();
  if (!report.ok()) throw plan_verification_error(report.to_string());
}

}  // namespace

std::string CholeskyPlan::summary() const {
  return summarize("cholesky", key, path, evidence, *jit, bytes(),
                   workspace.bytes());
}

std::string TriSolvePlan::summary() const {
  return summarize("trisolve", key, path, evidence, *jit, bytes(),
                   workspace.bytes());
}

std::uint64_t Planner::gate_hash() const {
  // FNV-1a over the planner gates, folded into the key's config hash so
  // configs that could plan differently never share a cache entry.
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = 0x504c414eULL;  // "PLAN"
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= kPrime;
    }
  };
  mix(static_cast<std::uint64_t>(config_.enable_parallel));
  mix(static_cast<std::uint64_t>(config_.coarsen_schedule));
  mix(static_cast<std::uint64_t>(config_.parallel_min_supernodes));
  std::uint64_t width_bits = 0;
  static_assert(sizeof(width_bits) ==
                sizeof(config_.parallel_min_avg_level_width));
  std::memcpy(&width_bits, &config_.parallel_min_avg_level_width,
              sizeof(width_bits));
  mix(width_bits);
  return h;
}

PatternKey Planner::cholesky_key(const CscMatrix& a_lower) const {
  PatternKey key = cholesky_pattern_key(a_lower, config_.options);
  key.config_hash ^= gate_hash();
  return key;
}

PatternKey Planner::trisolve_key(const CscMatrix& l,
                                 std::span<const index_t> beta) const {
  PatternKey key = trisolve_pattern_key(l, beta, config_.options);
  key.config_hash ^= gate_hash();
  return key;
}

CholeskyPlan Planner::plan_cholesky(const CscMatrix& a_lower,
                                    bool with_key) const {
  return plan_cholesky_impl(a_lower, with_key, /*naive=*/false);
}

CholeskyPlan Planner::plan_cholesky_naive(const CscMatrix& a_lower,
                                          bool with_key) const {
  return plan_cholesky_impl(a_lower, with_key, /*naive=*/true);
}

CholeskyPlan Planner::plan_cholesky_impl(const CscMatrix& a_lower,
                                         bool with_key, bool naive) const {
  Timer timer;
  CholeskyPlan plan;
  if (with_key) plan.key = cholesky_key(a_lower);
  plan.options = config_.options;

  // The inspector runs the whole cold pipeline: one shared transpose, GNP
  // counts, the fused pattern sweep, and the parallel assembly of the
  // path-gated products — including the level schedule + slot map when
  // the parallel gates are open (the schedule is cheap relative to
  // inspection; building it at plan time makes every warm factor()
  // schedule-free, across all Solvers sharing a cache).
  CholeskyPlanRequest req;
  req.gate_products = true;
  req.build_schedule = parallel_enabled() && config_.enable_parallel;
  req.parallel_min_supernodes = config_.parallel_min_supernodes;
  req.parallel_min_avg_level_width = config_.parallel_min_avg_level_width;
  req.coarsen = config_.coarsen_schedule;
  req.naive = naive;
  CholeskyPlanProducts products;
  plan.sets = inspect_cholesky_planned(a_lower, config_.options, req,
                                       products, &plan.evidence.phases);

  PlanEvidence& ev = plan.evidence;
  ev.vs_block_profitable = plan.sets.vs_block_profitable;
  ev.supernodes = plan.sets.blocks.count();
  ev.avg_supernode_size = plan.sets.avg_supernode_size;

  if (!plan.sets.vs_block_profitable) {
    plan.path = ExecutionPath::Simplicial;
    // Simplicial scratch: the dense accumulation column + per-row cursor
    // map only. No packed RHS blocks — the simplicial batch loops solve().
    plan.workspace.n = a_lower.cols();
    plan.workspace.rhs_block = 0;
  } else {
    plan.workspace = cholesky_workspace_dims(plan.sets.layout);
    plan.workspace.need_dense = false;  // dense column is simplicial-only
    plan.path = ExecutionPath::Supernodal;
    if (products.scheduled) {
      ev.parallel_considered = true;
      ev.levels = products.schedule.levels();
      ev.avg_level_width = products.schedule.avg_level_width();
      if (products.committed) {
        plan.path = ExecutionPath::ParallelSupernodal;
        plan.schedule = std::move(products.schedule);
        // Slot map of the forward panel solve: privatizes the tail
        // updates so the level-set batch solve needs no atomics and is
        // bit-identical to the serial panel solves (levelset.h).
        plan.solve_update_map = std::move(products.solve_update_map);
        plan.workspace.update_slots = plan.solve_update_map.slots();
        // Dependence-coarsened rewrite (chain fusion over the supernodal
        // update dependences) — interpreted in place of the flat levels.
        plan.agg = std::move(products.agg);
        ev.agg_levels = plan.agg.levels();
        ev.agg_tasks = plan.agg.tasks();
        ev.agg_bundles = plan.agg.bundles();
      }
    }
  }
  // JIT eligibility is a path property: sequential plans may be lowered to
  // a plan-compiled kernel (plan_compiler.h); the parallel interpreter
  // keeps ParallelSupernodal plans.
  ev.jit_eligible = plan.path == ExecutionPath::Simplicial ||
                    plan.path == ExecutionPath::Supernodal;
  verify_fresh(plan);
  ev.build_seconds = timer.seconds();
  return plan;
}

std::uint64_t planner_transpose_count() { return transpose_count(); }

TriSolvePlan Planner::plan_trisolve(const CscMatrix& l,
                                    std::span<const index_t> beta,
                                    const SupernodePartition* known_blocks,
                                    bool with_key) const {
  Timer timer;
  TriSolvePlan plan;
  if (with_key) plan.key = trisolve_key(l, beta);
  plan.options = config_.options;
  plan.sets = inspect_trisolve(l, beta, config_.options, known_blocks);

  PlanEvidence& ev = plan.evidence;
  ev.vs_block_profitable = plan.sets.vs_block_profitable;
  ev.supernodes = plan.sets.blocks.count();
  ev.avg_supernode_size = plan.sets.avg_supernode_size;

  plan.path = plan.sets.vs_block_profitable ? ExecutionPath::BlockedTriSolve
                                            : ExecutionPath::PrunedTriSolve;
  // The CSC traversals need no scatter map or dense column on any path,
  // and only the blocked path gathers block tails or packs RHS blocks —
  // per workspace.h, a plan must not pin never-read scratch.
  plan.workspace.n = l.cols();
  plan.workspace.need_map = false;
  plan.workspace.need_dense = false;
  if (plan.path == ExecutionPath::BlockedTriSolve) {
    for (index_t s = 0; s < plan.sets.blocks.count(); ++s) {
      const index_t c1 = plan.sets.blocks.start[s];
      const index_t w = plan.sets.blocks.width(s);
      plan.workspace.max_tail =
          std::max(plan.workspace.max_tail, plan.sets.colcount[c1] - w);
    }
  } else {
    plan.workspace.rhs_block = 0;  // pruned batches loop solve()
  }
  const bool dense_rhs = static_cast<index_t>(beta.size()) == l.cols();
  // The parallel path also requires vi_prune: its serial reference is the
  // reach-order pruned solve. The naive (!vi_prune) loop skips exact-zero
  // x[j] columns entirely, a data-dependent special case the level sweep
  // cannot replay from the pattern alone without breaking bit identity on
  // signed zeros.
  if (parallel_enabled() && config_.enable_parallel && dense_rhs &&
      config_.options.vi_prune &&
      plan.path == ExecutionPath::PrunedTriSolve) {
    ev.parallel_considered = true;
    parallel::LevelSchedule schedule = parallel::level_schedule_columns(l);
    ev.levels = schedule.levels();
    ev.avg_level_width = schedule.avg_level_width();
    if (ev.avg_level_width >= config_.parallel_min_avg_level_width) {
      plan.path = ExecutionPath::ParallelTriSolve;
      plan.schedule = std::move(schedule);
      // Slot map privatizing the column updates: the level-set solve
      // scatters into plan-assigned slots and folds them in serial order,
      // so it is deterministic and atomic-free (levelset.h). The packed
      // multi-RHS level sweep reuses the same map. The serial order to
      // replay is the pruned executor's iteration order: the reach
      // sequence.
      plan.update_map = parallel::update_slots_columns(l, plan.sets.reach);
      plan.workspace.update_slots = plan.update_map.slots();
      plan.workspace.rhs_block = kRhsBlockWidth;
      if (config_.coarsen_schedule) {
        // Coarsen the committed flat schedule: chain fusion + SIMD row
        // bundles mined from DG_L. Pattern-pure, so cached with the plan;
        // the flat schedule stays as provenance and ablation baseline.
        plan.agg = parallel::coarsen_schedule_columns(l, plan.schedule);
        ev.agg_levels = plan.agg.levels();
        ev.agg_tasks = plan.agg.tasks();
        ev.agg_bundles = plan.agg.bundles();
      }
    }
  }
  ev.jit_eligible = plan.path == ExecutionPath::PrunedTriSolve ||
                    plan.path == ExecutionPath::BlockedTriSolve;
  verify_fresh(plan, l, beta);
  ev.build_seconds = timer.seconds();
  return plan;
}

bool Planner::parallel_enabled() {
#ifdef SYMPILER_HAS_OPENMP
  return true;
#else
  return false;  // level-set execution degenerates to sequential + barriers
#endif
}

}  // namespace sympiler::core
