// Code generation: drive the AST pipeline (build -> inspector-guided
// transformations -> low-level transformations) and emit a complete C
// translation unit specialized to one sparsity pattern, with the
// inspection sets baked in as static arrays (paper Figures 1e / 2c).
#pragma once

#include <span>
#include <string>

#include "core/inspector.h"
#include "core/ir.h"
#include "core/options.h"
#include "sparse/csc.h"

namespace sympiler::core {

struct GeneratedKernel {
  std::string source;  ///< complete compilable C translation unit
  std::string symbol;  ///< exported (extern "C") function name
  StmtPtr final_ast;   ///< transformed AST (null for the direct emitters)
  TriSolveSets trisolve_sets;  ///< populated by generate_trisolve
};

/// Generate specialized triangular-solve code for the pattern of L and the
/// RHS pattern beta. Exported symbol:
///   void sym_trisolve(const int* Lp, const int* Li, const double* Lx,
///                     double* x);
/// The reach-set / block-set are baked into the code; x holds b on entry.
[[nodiscard]] GeneratedKernel generate_trisolve(const CscMatrix& l,
                                                std::span<const index_t> beta,
                                                const SympilerOptions& opt = {});

/// Same, consuming inspection sets that already exist (e.g. from a cached
/// ExecutionPlan) instead of re-running the inspector — the decoupled
/// entry point: symbolic analysis happens once, emission is a pure
/// function of its products. The beta overload above delegates here.
[[nodiscard]] GeneratedKernel generate_trisolve(const CscMatrix& l,
                                                TriSolveSets sets,
                                                const SympilerOptions& opt = {});

/// Generate specialized Cholesky code for the inspected pattern. Exported
/// symbol (returns 0 on success, -1 on a non-positive pivot):
///   int sym_cholesky(const int* Ap, const int* Ai, const double* Ax,
///                    double* Lx_or_panels, double* fwork, int* iwork);
/// For the supernodal variant the factor is written into the panel buffer
/// (layout in sets.layout); for the simplicial variant into CSC values of
/// the pattern in sets.sym.l_pattern. fwork: n doubles (simplicial) or
/// max-update scratch (supernodal); iwork: n ints.
[[nodiscard]] GeneratedKernel generate_cholesky(const CholeskySets& sets,
                                                const SympilerOptions& opt = {});

}  // namespace sympiler::core
