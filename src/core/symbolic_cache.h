// Thread-safe LRU cache of symbolic inspection sets, keyed by PatternKey.
//
// This is the reuse layer the paper's decoupling enables: inspection sets
// are immutable once built (the executors only read them), so a service
// solving many systems with recurring sparsity patterns — Newton steps on
// a fixed mesh, circuit transients on a fixed topology — pays the
// inspector once per pattern and shares the sets through
// shared_ptr<const Sets>. Cached sets outlive any one matrix or executor:
// an entry stays alive as long as the cache or any borrower holds it, even
// across eviction.
//
// Concurrency: a single mutex guards the map + LRU list. Lookups are
// O(1) under the lock; building the sets on a miss happens OUTSIDE the
// lock so concurrent misses on different patterns inspect in parallel.
// Racing builders of the same key are resolved first-writer-wins: the
// losers discard their build and adopt the resident entry, so every caller
// that asked for one key holds the same sets object.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/inspector.h"
#include "core/pattern_key.h"
#include "util/stats.h"

namespace sympiler::core {

template <class Sets>
class SymbolicCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit SymbolicCache(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  SymbolicCache(const SymbolicCache&) = delete;
  SymbolicCache& operator=(const SymbolicCache&) = delete;

  /// Result of a cache lookup: the resident sets plus whether the lookup
  /// was served from the cache (the facade surfaces this to callers and
  /// benchmarks).
  struct Lookup {
    std::shared_ptr<const Sets> sets;
    bool hit = false;
  };

  /// Hit: bump to most-recently-used and return the entry. Miss: return
  /// {nullptr, false} and count a miss.
  [[nodiscard]] Lookup find(const PatternKey& key) {
    std::lock_guard<std::mutex> lock(mu_);
    return find_locked(key);
  }

  /// Insert (first-writer-wins). If the key is already resident the
  /// existing entry is returned untouched — callers racing to insert the
  /// same pattern all end up sharing one sets object.
  std::shared_ptr<const Sets> insert(const PatternKey& key,
                                     std::shared_ptr<const Sets> sets) {
    std::lock_guard<std::mutex> lock(mu_);
    return insert_locked(key, std::move(sets));
  }

  /// The cache's main entry point: one lookup, and on a miss one build of
  /// the sets (outside the lock) followed by an insert. `build` must
  /// return Sets by value and be safe to run concurrently with other
  /// builds.
  template <class BuildFn>
  [[nodiscard]] Lookup get_or_build(const PatternKey& key, BuildFn&& build) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      Lookup found = find_locked(key);
      if (found.hit) return found;
    }
    auto built = std::make_shared<const Sets>(build());
    std::lock_guard<std::mutex> lock(mu_);
    return {insert_locked(key, std::move(built)), false};
  }

  [[nodiscard]] CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Drop every entry (borrowed shared_ptrs stay valid) and zero counters.
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
    stats_ = CacheStats{};
  }

 private:
  using Entry = std::pair<PatternKey, std::shared_ptr<const Sets>>;
  using List = std::list<Entry>;

  Lookup find_locked(const PatternKey& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return {nullptr, false};
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
    ++stats_.hits;
    return {it->second->second, true};
  }

  std::shared_ptr<const Sets> insert_locked(const PatternKey& key,
                                            std::shared_ptr<const Sets> sets) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      // Lost a build race; adopt the resident entry.
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    lru_.emplace_front(key, std::move(sets));
    index_.emplace(key, lru_.begin());
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.evictions;
    }
    return lru_.front().second;
  }

  mutable std::mutex mu_;
  std::size_t capacity_;
  List lru_;  ///< front = most recently used
  std::unordered_map<PatternKey, typename List::iterator, PatternKeyHash>
      index_;
  CacheStats stats_;
};

// The two instantiations the solver pipeline uses (definitions in
// symbolic_cache.cpp).
extern template class SymbolicCache<CholeskySets>;
extern template class SymbolicCache<TriSolveSets>;

using CholeskyCache = SymbolicCache<CholeskySets>;
using TriSolveCache = SymbolicCache<TriSolveSets>;

}  // namespace sympiler::core
