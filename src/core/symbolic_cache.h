// Sharded, byte-budgeted cache of ExecutionPlans, keyed by PatternKey.
//
// This is the reuse layer the paper's decoupling enables: a plan is
// immutable once built (executors only interpret it), so a service solving
// many systems with recurring sparsity patterns — Newton steps on a fixed
// mesh, circuit transients on a fixed topology — pays the Planner once per
// pattern and shares the whole strategy (sets + schedule + path) through
// shared_ptr<const Plan>. Cached plans outlive any one matrix or executor:
// an entry stays alive as long as the cache or any borrower holds it, even
// across eviction.
//
// Concurrency: the key space is striped across independent shards, each
// with its own mutex, LRU list, and byte ledger — concurrent warm lookups
// on different shards never contend. Per-shard counters are atomics with
// relaxed ordering (util/stats.h), so stats() aggregates across shards
// without taking any lock. Building a plan on a miss happens OUTSIDE the
// shard lock, so concurrent misses on different patterns plan in parallel;
// racing builders of the same key resolve first-writer-wins.
//
// Eviction is byte-budgeted, not entry-counted: every plan reports its
// bytes(), each shard holds budget/shards, and under pressure the shard
// drops, among its least-recently-used entries, the one with the highest
// bytes-per-recompute-second score — the biggest, cheapest-to-rebuild
// plan goes first, keeping expensive symbolic work resident longest.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/execution_plan.h"
#include "core/pattern_key.h"
#include "util/fault.h"
#include "util/stats.h"
#include "util/timer.h"

namespace sympiler::core {

template <class Plan>
class PlanCache {
 public:
  static constexpr std::size_t kDefaultByteBudget = 256u << 20;  // 256 MiB
  static constexpr std::size_t kDefaultShards = 8;
  /// LRU-tail window the eviction score is computed over.
  static constexpr std::size_t kEvictionWindow = 4;

  explicit PlanCache(std::size_t byte_budget = kDefaultByteBudget,
                     std::size_t shards = kDefaultShards)
      : byte_budget_(byte_budget == 0 ? 1 : byte_budget),
        shards_(shards == 0 ? 1 : shards) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Result of a cache lookup: the resident plan plus whether the lookup
  /// was served from the cache (the facade surfaces this to callers and
  /// benchmarks).
  struct Lookup {
    std::shared_ptr<const Plan> plan;
    bool hit = false;
  };

  /// Hit: bump to most-recently-used and return the entry. Miss: return
  /// {nullptr, false} and count a miss.
  [[nodiscard]] Lookup find(const PatternKey& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    return find_locked(shard, key);
  }

  /// Insert (first-writer-wins). If the key is already resident the
  /// existing entry is returned untouched — callers racing to insert the
  /// same pattern all end up sharing one plan object. The cost of
  /// recomputing the plan (eviction keeps expensive plans resident
  /// longer) defaults to the plan's own planning time; pass
  /// `rebuild_seconds` to override it.
  std::shared_ptr<const Plan> insert(const PatternKey& key,
                                     std::shared_ptr<const Plan> plan,
                                     double rebuild_seconds = -1.0) {
    if (rebuild_seconds < 0.0) rebuild_seconds = plan->evidence.build_seconds;
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    return insert_locked(shard, key, std::move(plan), rebuild_seconds);
  }

  /// The cache's main entry point: one lookup, and on a miss one build of
  /// the plan (outside the shard lock, timed for the eviction policy)
  /// followed by an insert. `build` must return Plan by value and be safe
  /// to run concurrently with other builds.
  template <class BuildFn>
  [[nodiscard]] Lookup get_or_build(const PatternKey& key, BuildFn&& build) {
    Shard& shard = shard_for(key);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      Lookup found = find_locked(shard, key);
      if (found.hit) return found;
    }
    Timer timer;
    auto built = std::make_shared<const Plan>(build());
    const double seconds = timer.seconds();
    // Injected insert failure: degrade to serving the freshly built plan
    // uncached — the caller's solve proceeds normally, only reuse is lost
    // (and the cache is never poisoned by a half-inserted entry).
    if (SYMPILER_FAULT_POINT(util::FaultSite::kCacheInsert))
      return {std::move(built), false};
    std::lock_guard<std::mutex> lock(shard.mu);
    return {insert_locked(shard, key, std::move(built), seconds), false};
  }

  /// Store-aware variant of get_or_build (core/plan_store.h): on a miss,
  /// try `load` (a callable returning shared_ptr<const Plan> — a persisted
  /// plan already re-verified by the caller, or nullptr) before paying
  /// `build`; freshly *built* plans are handed to `save` (write-behind) so
  /// the next process starts warm. Loaded plans are NOT re-saved — the
  /// file they came from is already current. Both load and build run
  /// outside the shard lock; a loaded plan's measured load time stands in
  /// for its rebuild cost in the eviction score, which keeps the economics
  /// honest — a store-resident plan is nearly free to bring back, so it is
  /// a preferred eviction victim over plans that must be replanned.
  template <class LoadFn, class BuildFn, class SaveFn>
  [[nodiscard]] Lookup get_or_build_stored(const PatternKey& key,
                                           LoadFn&& load, BuildFn&& build,
                                           SaveFn&& save) {
    Shard& shard = shard_for(key);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      Lookup found = find_locked(shard, key);
      if (found.hit) return found;
    }
    Timer load_timer;
    std::shared_ptr<const Plan> plan = load();
    double seconds = load_timer.seconds();
    if (plan == nullptr) {
      Timer build_timer;
      plan = std::make_shared<const Plan>(build());
      seconds = build_timer.seconds();
      save(plan);
    }
    // Same degradation as get_or_build: an injected insert failure serves
    // the plan uncached instead of poisoning the shard.
    if (SYMPILER_FAULT_POINT(util::FaultSite::kCacheInsert))
      return {std::move(plan), false};
    std::lock_guard<std::mutex> lock(shard.mu);
    return {insert_locked(shard, key, std::move(plan), seconds), false};
  }

  /// Re-sample plan->bytes() for a resident entry. Call after attaching a
  /// compiled kernel to a cached plan's JitSlot (core/plan_compiler.h):
  /// entry weight was sampled at insert, so the ledger must be told the
  /// plan grew — the artifact then counts against the byte budget and is
  /// evicted together with its plan. No-op when the key is not resident;
  /// may itself evict (the artifact can push the shard over budget).
  void refresh_bytes(const PatternKey& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return;
    Entry& entry = *it->second;
    const std::size_t now = entry.plan->bytes();
    shard.resident_bytes = shard.resident_bytes - entry.bytes + now;
    entry.bytes = now;
    evict_locked(shard);
  }

  /// Aggregated counters over all shards. Lock-free: shard counters are
  /// relaxed atomics, readable while other shards mutate.
  [[nodiscard]] CacheStats stats() const {
    CacheStats total;
    for (const Shard& shard : shards_) total += shard.stats.snapshot();
    return total;
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  [[nodiscard]] CacheStats shard_stats(std::size_t i) const {
    return shards_[i].stats.snapshot();
  }

  /// Shard a key routes to (exposed for tests and shard-balance reports).
  [[nodiscard]] std::size_t shard_of(const PatternKey& key) const {
    // Upper hash bits: the per-shard maps consume the lower ones.
    return (PatternKeyHash{}(key) >> 17) % shards_.size();
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.lru.size();
    }
    return total;
  }

  /// Sum of bytes() over resident plans.
  [[nodiscard]] std::size_t resident_bytes() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.resident_bytes;
    }
    return total;
  }

  [[nodiscard]] std::size_t byte_budget() const { return byte_budget_; }

  /// Per-shard slice of the byte budget (eviction threshold).
  [[nodiscard]] std::size_t shard_budget() const {
    const std::size_t per_shard = byte_budget_ / shards_.size();
    return per_shard == 0 ? 1 : per_shard;
  }

  /// Drop every entry (borrowed shared_ptrs stay valid) and zero counters.
  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.lru.clear();
      shard.index.clear();
      shard.resident_bytes = 0;
      shard.stats.reset();
    }
  }

 private:
  struct Entry {
    PatternKey key;
    std::shared_ptr<const Plan> plan;
    std::size_t bytes = 0;           ///< plan->bytes() at insert
    double rebuild_seconds = 0.0;    ///< cost to recompute
  };
  using List = std::list<Entry>;

  /// Cache-line aligned so neighboring shards' mutexes and counters never
  /// false-share under cross-shard traffic.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    List lru;  ///< front = most recently used
    std::unordered_map<PatternKey, typename List::iterator, PatternKeyHash>
        index;
    std::size_t resident_bytes = 0;
    AtomicCacheStats stats;
  };

  Shard& shard_for(const PatternKey& key) { return shards_[shard_of(key)]; }

  Lookup find_locked(Shard& shard, const PatternKey& key) {
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      shard.stats.count_miss();
      return {nullptr, false};
    }
    if (it->second != shard.lru.begin())  // bump to MRU
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    shard.stats.count_hit();
    return {it->second->plan, true};
  }

  std::shared_ptr<const Plan> insert_locked(Shard& shard, const PatternKey& key,
                                            std::shared_ptr<const Plan> plan,
                                            double rebuild_seconds) {
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Lost a build race; adopt the resident entry.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->plan;
    }
    const std::size_t entry_bytes = plan->bytes();
    shard.lru.push_front(
        Entry{key, std::move(plan), entry_bytes, rebuild_seconds});
    shard.index.emplace(key, shard.lru.begin());
    shard.resident_bytes += entry_bytes;
    evict_locked(shard);
    return shard.lru.front().plan;
  }

  /// Byte-budget eviction: while over budget, drop — among the LRU-tail
  /// window — the entry with the highest bytes-per-recompute-second score
  /// (largest and cheapest to rebuild first). Near-ties go to the least
  /// recently used entry, and the MRU entry is never evicted, so a single
  /// over-budget plan still gets served.
  void evict_locked(Shard& shard) {
    const std::size_t budget = shard_budget();
    while (shard.resident_bytes > budget && shard.lru.size() > 1) {
      auto victim = std::prev(shard.lru.end());
      double victim_score = score(*victim);
      auto probe = victim;
      for (std::size_t i = 1; i < kEvictionWindow; ++i) {
        if (probe == shard.lru.begin()) break;
        --probe;
        if (probe == shard.lru.begin()) break;  // never the MRU entry
        const double s = score(*probe);
        if (s > victim_score * kScoreMargin) {
          victim = probe;
          victim_score = s;
        }
      }
      shard.resident_bytes -= victim->bytes;
      shard.stats.count_eviction(victim->bytes);
      shard.index.erase(victim->key);
      shard.lru.erase(victim);
    }
  }

  /// Eviction priority: bytes relative to recompute cost. The floor keeps
  /// instantly-rebuildable plans from dividing by ~zero.
  [[nodiscard]] static double score(const Entry& e) {
    constexpr double kCostFloorSeconds = 1e-3;
    return static_cast<double>(e.bytes) /
           (e.rebuild_seconds + kCostFloorSeconds);
  }

  /// A fresher entry must beat the older candidate by this factor to
  /// displace it — recency wins near-ties, so equal-weight workloads
  /// degrade to plain LRU instead of jittering on timing noise.
  static constexpr double kScoreMargin = 1.25;

  std::size_t byte_budget_;
  std::vector<Shard> shards_;
};

// The two instantiations the solver pipeline uses (definitions in
// symbolic_cache.cpp).
extern template class PlanCache<CholeskyPlan>;
extern template class PlanCache<TriSolvePlan>;

using CholeskyCache = PlanCache<CholeskyPlan>;
using TriSolveCache = PlanCache<TriSolvePlan>;

}  // namespace sympiler::core
