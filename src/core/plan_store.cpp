#include "core/plan_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>

#include "core/plan_serde.h"
#include "util/fault.h"

namespace sympiler::core {

namespace {

Status io_error(const std::string& what, const std::string& path) {
  return {ErrorCode::kResourceExhausted,
          what + " '" + path + "': " + std::strerror(errno)};
}

/// fsync the directory containing `path` so the rename itself is durable.
void fsync_parent_dir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best-effort: some filesystems refuse dir fsync
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::shared_ptr<PlanStore> PlanStore::open(const std::string& dir) {
  static std::mutex registry_mutex;
  static std::map<std::string, std::weak_ptr<PlanStore>> registry;
  std::lock_guard<std::mutex> lock(registry_mutex);
  if (auto existing = registry[dir].lock()) return existing;
  auto store = std::make_shared<PlanStore>(dir);
  registry[dir] = store;
  return store;
}

PlanStore::PlanStore(std::string dir) : dir_(std::move(dir)) {}

PlanStore::~PlanStore() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

// ----------------------------------------------------------------- file IO

PlanStore::LoadedBytes PlanStore::read_file(const std::string& path) {
  LoadedBytes r;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return r;  // plain cold miss
    r.found = true;
    r.status = io_error("cannot open plan file", path);
    return r;
  }
  r.found = true;
  if (SYMPILER_FAULT_POINT(util::FaultSite::kStoreRead)) {
    ::close(fd);
    r.status = {ErrorCode::kCorruptPlanFile,
                "injected store-read fault on '" + path + "'"};
    return r;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    r.status = {ErrorCode::kCorruptPlanFile,
                "plan path '" + path + "' is not a regular file"};
    return r;
  }
  const auto len = static_cast<std::size_t>(st.st_size);

  // Fast path: map the file read-only and validate in place — the flat
  // format was laid out for this (no pointer fixups, everything
  // offset-addressed), and it skips a full-file copy the restart-warm
  // budget would otherwise pay. Safe against concurrent saves: they
  // replace the name via rename() and never truncate the old inode.
  if (len > 0) {
    void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr != MAP_FAILED) {
      ::close(fd);
      r.backing = std::shared_ptr<const void>(
          addr, [len](const void* p) { ::munmap(const_cast<void*>(p), len); });
      r.view = {static_cast<const std::uint8_t*>(addr), len};
      return r;
    }
  }

  // Fallback (mmap unavailable, or the degenerate empty file the
  // deserializer will reject anyway): buffered read.
  auto buf = std::make_shared<std::vector<std::uint8_t>>(len);
  std::size_t done = 0;
  while (done < len) {
    const ssize_t got = ::read(fd, buf->data() + done, len - done);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      ::close(fd);
      r.status = io_error("cannot read plan file", path);
      return r;
    }
    done += static_cast<std::size_t>(got);
  }
  ::close(fd);
  r.view = {buf->data(), buf->size()};
  r.backing = std::move(buf);
  return r;
}

Status PlanStore::write_file(const std::string& path,
                             const std::vector<std::uint8_t>& bytes) {
  if (SYMPILER_FAULT_POINT(util::FaultSite::kStoreWrite))
    return {ErrorCode::kResourceExhausted,
            "injected store-write fault on '" + path + "'"};

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    return {ErrorCode::kResourceExhausted,
            "cannot create plan store dir '" + dir_ + "': " + ec.message()};

  // Unique temp in the same directory so rename() is atomic (same fs).
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(tmp_seq_.fetch_add(1, std::memory_order_relaxed));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return io_error("cannot create plan temp file", tmp);

  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t put = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (put < 0 && errno == EINTR) continue;
    if (put <= 0) {
      const Status status = io_error("cannot write plan temp file", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    done += static_cast<std::size_t>(put);
  }
  if (::fsync(fd) != 0) {
    const Status status = io_error("cannot fsync plan temp file", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = io_error("cannot publish plan file", path);
    ::unlink(tmp.c_str());
    return status;
  }
  fsync_parent_dir(path);
  return {};
}

// ------------------------------------------------------------- load / save

template <typename Plan>
PlanStore::Loaded PlanStore::load_impl(const PatternKey& key, bool cholesky,
                                       Plan* out) {
  Loaded result;
  const std::string path = path_for(key, cholesky);
  LoadedBytes file = read_file(path);
  result.found = file.found;
  if (!file.found) return result;
  result.status = std::move(file.status);
  if (result.status.ok()) result.status = deserialize_plan(file.view, out);
  if (result.status.ok() && !(out->key == key)) {
    result.status = {ErrorCode::kCorruptPlanFile,
                     "plan file '" + path + "' is for " +
                         out->key.to_string() + ", requested " +
                         key.to_string()};
  }
  if (result.status.ok())
    loads_.fetch_add(1, std::memory_order_relaxed);
  else
    load_failures_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

PlanStore::Loaded PlanStore::load(const PatternKey& key, CholeskyPlan* out) {
  return load_impl(key, /*cholesky=*/true, out);
}

PlanStore::Loaded PlanStore::load(const PatternKey& key, TriSolvePlan* out) {
  return load_impl(key, /*cholesky=*/false, out);
}

template <typename Plan>
Status PlanStore::save_impl(const Plan& plan, bool cholesky) {
  const Status status =
      write_file(path_for(plan.key, cholesky), serialize_plan(plan));
  if (status.ok())
    writes_.fetch_add(1, std::memory_order_relaxed);
  else
    write_failures_.fetch_add(1, std::memory_order_relaxed);
  return status;
}

Status PlanStore::save(const CholeskyPlan& plan) {
  return save_impl(plan, /*cholesky=*/true);
}

Status PlanStore::save(const TriSolvePlan& plan) {
  return save_impl(plan, /*cholesky=*/false);
}

void PlanStore::save_async(std::shared_ptr<const CholeskyPlan> plan) {
  enqueue([this, plan = std::move(plan)] { (void)save(*plan); });
}

void PlanStore::save_async(std::shared_ptr<const TriSolvePlan> plan) {
  enqueue([this, plan = std::move(plan)] { (void)save(*plan); });
}

// The gate's constants. Loading costs CRC + copy + re-verify — all
// memory-speed passes over the image; 2 GB/s is a conservative
// end-to-end figure for that pipeline on commodity hardware (the
// hardware-CRC path alone runs several times faster). The 0.75 profit
// fraction looks generous next to the 0.5x restart-warm acceptance
// budget, but it gates an *estimate* against a build timer that is
// first-touch-inflated on a cold process — by the time this branch is
// reached the planner is known compute-bound, and the measured
// load/replan ratios for such plans land well under 0.5x (the
// restart_warm table in BENCH_cache.json). The 4 MiB floor persists
// small plans unconditionally — their load cost is a rounding error,
// and a byte threshold (unlike the measured, noisy build_seconds) keeps
// small-pattern behavior deterministic across machines, which the
// facade round-trip tests rely on.
namespace {
constexpr std::size_t kAlwaysPersistBytes = std::size_t{4} << 20;
constexpr double kAssumedLoadBytesPerSecond = 2e9;
constexpr double kProfitFraction = 0.75;

/// Whether this plan's symbolic phase is itself a memory-speed pattern
/// fill (see should_persist rule 2). Simplicial Cholesky and the pruned
/// column solve build their sets in one near-linear sweep; the
/// supernodal / blocked / level-set paths add real compute (block
/// assembly, update scheduling, slot maps) on top of the bytes.
bool memory_bound_path(ExecutionPath path) {
  return path == ExecutionPath::Simplicial ||
         path == ExecutionPath::PrunedTriSolve;
}

}  // namespace

bool PlanStore::should_persist(std::size_t plan_bytes, double build_seconds,
                               bool memory_bound_planning) {
  if (plan_bytes <= kAlwaysPersistBytes) return true;
  if (memory_bound_planning) return false;
  const double estimated_load_seconds =
      static_cast<double>(plan_bytes) / kAssumedLoadBytesPerSecond;
  return estimated_load_seconds <= kProfitFraction * build_seconds;
}

void PlanStore::save_async_if_profitable(
    std::shared_ptr<const CholeskyPlan> plan) {
  if (!should_persist(plan->bytes(), plan->evidence.build_seconds,
                      memory_bound_path(plan->path))) {
    declines_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  save_async(std::move(plan));
}

void PlanStore::save_async_if_profitable(
    std::shared_ptr<const TriSolvePlan> plan) {
  if (!should_persist(plan->bytes(), plan->evidence.build_seconds,
                      memory_bound_path(plan->path))) {
    declines_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  save_async(std::move(plan));
}

void PlanStore::discard(const PatternKey& key, bool cholesky) {
  if (::unlink(path_for(key, cholesky).c_str()) == 0)
    discards_.fetch_add(1, std::memory_order_relaxed);
}

std::string PlanStore::path_for(const PatternKey& key, bool cholesky) const {
  char name[96];
  std::snprintf(name, sizeof(name), "%s-%016llx-%016llx-%016llx.plan",
                cholesky ? "chol" : "tris",
                static_cast<unsigned long long>(key.structure_hash),
                static_cast<unsigned long long>(key.structure_hash2),
                static_cast<unsigned long long>(key.config_hash));
  return dir_ + "/" + name;
}

PlanStore::Stats PlanStore::stats() const {
  Stats s;
  s.loads = loads_.load(std::memory_order_relaxed);
  s.load_failures = load_failures_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.write_failures = write_failures_.load(std::memory_order_relaxed);
  s.discards = discards_.load(std::memory_order_relaxed);
  s.declines = declines_.load(std::memory_order_relaxed);
  return s;
}

// ------------------------------------------------------------ write-behind

void PlanStore::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(job));
    if (!writer_started_) {
      writer_started_ = true;
      writer_ = std::thread([this] { writer_main(); });
    }
  }
  queue_cv_.notify_one();
}

void PlanStore::flush() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  drained_cv_.wait(lock,
                   [this] { return queue_.empty() && in_flight_ == 0; });
}

void PlanStore::writer_main() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stopping_ with a drained queue
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    job();
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) drained_cv_.notify_all();
  }
}

}  // namespace sympiler::core
