#include "core/inspector.h"

#include <algorithm>
#include <exception>

#ifdef SYMPILER_HAS_OPENMP
#include <omp.h>
#endif

#include "graph/etree.h"
#include "graph/reach.h"
#include "solvers/trisolve.h"
#include "sparse/ops.h"
#include "util/timer.h"

namespace sympiler::core {

namespace {

// The paper gates VS-Block on "the average size of the participating
// supernodes" with a hand-tuned threshold of 160 on its SuiteSparse
// suite. Our recalibrated form of the same heuristic weights the average
// panel rows of participating (width >= 2) supernodes by the fraction of
// columns they cover — a matrix whose only wide supernode is the trailing
// dense block should not trigger blocking. The default threshold in
// SympilerOptions is hand-tuned on the synthetic suite exactly like the
// paper tunes theirs; bench/ablation_thresholds sweeps it.
double participating_avg_rows(const SupernodePartition& sn,
                              std::span<const index_t> colcount) {
  double total_rows = 0.0;
  double covered_cols = 0.0;
  index_t participating = 0;
  for (index_t s = 0; s < sn.count(); ++s) {
    if (sn.width(s) < 2) continue;
    total_rows += static_cast<double>(colcount[sn.start[s]]);  // panel rows
    covered_cols += sn.width(s);
    ++participating;
  }
  if (participating == 0 || sn.start.back() == 0) return 0.0;
  const double avg_rows = total_rows / participating;
  const double coverage = covered_cols / static_cast<double>(sn.start.back());
  return avg_rows * coverage;
}

double participating_avg_width(const SupernodePartition& sn) {
  double covered_cols = 0.0;
  index_t participating = 0;
  for (index_t s = 0; s < sn.count(); ++s) {
    if (sn.width(s) < 2) continue;
    covered_cols += sn.width(s);
    ++participating;
  }
  return participating == 0 ? 0.0 : covered_cols / participating;
}

}  // namespace

namespace {

/// Run the given product builders concurrently (OpenMP sections when
/// available, serially otherwise). Exceptions thrown inside a section are
/// captured and the first one rethrown after the join — a worksharing
/// construct must not leak.
template <typename F1, typename F2, typename F3>
void run_parallel_products(F1&& f1, F2&& f2, F3&& f3) {
#ifdef SYMPILER_HAS_OPENMP
  std::exception_ptr errors[3] = {nullptr, nullptr, nullptr};
#pragma omp parallel sections
  {
#pragma omp section
    {
      try {
        f1();
      } catch (...) {
        errors[0] = std::current_exception();
      }
    }
#pragma omp section
    {
      try {
        f2();
      } catch (...) {
        errors[1] = std::current_exception();
      }
    }
#pragma omp section
    {
      try {
        f3();
      } catch (...) {
        errors[2] = std::current_exception();
      }
    }
  }
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
#else
  f1();
  f2();
  f3();
#endif
}

}  // namespace

TriSolveSets inspect_trisolve(const CscMatrix& l,
                              std::span<const index_t> beta,
                              const SympilerOptions& opt,
                              const SupernodePartition* known_blocks) {
  SYMPILER_CHECK(l.rows() == l.cols(), "inspect_trisolve: L not square");
  if (known_blocks != nullptr)
    SYMPILER_CHECK(known_blocks->valid(l.cols()),
                   "inspect_trisolve: invalid known block-set");
  TriSolveSets sets;
  const index_t n = l.cols();

  // The three inspection products below are independent pattern reads;
  // run them concurrently (each is deterministic, so the result is the
  // same on every build and thread count).
  run_parallel_products(
      [&] {
        // VI-Prune inspection: DFS over DG_L (Table 1 row 1).
        sets.reach = reach(l, beta);
      },
      [&] {
        // Column counts (peel decisions and thresholds).
        sets.colcount.resize(static_cast<std::size_t>(n));
        for (index_t j = 0; j < n; ++j)
          sets.colcount[j] = l.col_end(j) - l.col_begin(j);
      },
      [&] {
        // VS-Block inspection: node equivalence on DG_L (Table 1 row 2),
        // unless the factorization inspector already produced the
        // block-set.
        if (known_blocks != nullptr) {
          sets.blocks = *known_blocks;
        } else {
          SupernodeOptions sn_opt;
          sn_opt.max_width = opt.max_supernode_width;
          sets.blocks = supernodes_node_equivalence(l, sn_opt);
        }
      });
  sets.avg_supernode_size =
      participating_avg_rows(sets.blocks, sets.colcount);
  sets.vs_block_profitable =
      opt.vs_block && sets.avg_supernode_size >= opt.vsblock_min_avg_size &&
      participating_avg_width(sets.blocks) >= opt.vsblock_min_avg_width;

  // Supernode-level prune-set: reached columns of a supernode form a
  // suffix, so one (supernode, first column) pair per touched supernode.
  std::vector<index_t> first_col(static_cast<std::size_t>(sets.blocks.count()),
                                 -1);
  for (const index_t j : sets.reach) {
    const index_t s = sets.blocks.col_to_super[j];
    if (first_col[s] == -1 || j < first_col[s]) first_col[s] = j;
  }
  for (index_t s = 0; s < sets.blocks.count(); ++s) {
    if (first_col[s] != -1) {
      sets.sn_reach.push_back(s);
      sets.sn_first_col.push_back(first_col[s]);
    }
  }

  sets.flops = solvers::trisolve_flops(l, sets.reach);
  return sets;
}

TriSolveSets inspect_trisolve_dense_rhs(const CscMatrix& l,
                                        std::span<const value_t> b,
                                        const SympilerOptions& opt) {
  std::vector<index_t> beta;
  for (index_t i = 0; i < static_cast<index_t>(b.size()); ++i)
    if (b[i] != 0.0) beta.push_back(i);
  return inspect_trisolve(l, beta, opt);
}

CholeskySets inspect_cholesky(const CscMatrix& a_lower,
                              const SympilerOptions& opt) {
  CholeskyPlanProducts products;  // no schedule requested: stays empty
  return inspect_cholesky_planned(a_lower, opt, CholeskyPlanRequest{},
                                  products);
}

CholeskySets inspect_cholesky_planned(const CscMatrix& a_lower,
                                      const SympilerOptions& opt,
                                      const CholeskyPlanRequest& req,
                                      CholeskyPlanProducts& products,
                                      PlanPhaseTimes* phases) {
  PlanPhaseTimes local_phases;
  PlanPhaseTimes& ph = phases != nullptr ? *phases : local_phases;
  CholeskySets sets;
  const index_t n = a_lower.cols();

  // --- symbolic factorization: etree, column counts -----------------------
  CscMatrix upper;  // the one shared transpose (fast pipeline only)
  if (req.naive) {
    Timer t;
    sets.sym = symbolic_cholesky_naive(a_lower);
    ph.pattern = t.seconds();  // undifferentiated two-pass reference
  } else {
    SYMPILER_CHECK(a_lower.rows() == n, "inspect_cholesky: not square");
    SYMPILER_CHECK(a_lower.is_lower_triangular(),
                   "inspect_cholesky: input must be the lower triangle");
    Timer t_tr;
    upper = transpose(a_lower);
    ph.transpose = t_tr.seconds();
    Timer t_et;
    sets.sym.parent = elimination_tree_from_upper(upper);
    ph.etree = t_et.seconds();
    Timer t_cc;
    const std::vector<index_t> post = postorder(sets.sym.parent);
    sets.sym.colcount = cholesky_counts(a_lower, sets.sym.parent, post);
    ph.counts = t_cc.seconds();
  }

  // --- block-set + profitability (cheap: colcount + etree reads) ----------
  // Deciding the path here, before the pattern fill, is what lets the
  // gated pipeline skip products the path never reads.
  SupernodeOptions sn_opt;
  sn_opt.max_width = opt.max_supernode_width;
  sn_opt.relax = opt.relax_supernodes;
  sn_opt.relax_ratio = opt.relax_ratio;
  sets.blocks = supernodes_cholesky(sets.sym.parent, sets.sym.colcount, sn_opt);
  sets.avg_supernode_size =
      participating_avg_rows(sets.blocks, sets.sym.colcount);
  double cc = 0.0;
  for (index_t j = 0; j < n; ++j) cc += sets.sym.colcount[j];
  sets.avg_colcount = n > 0 ? cc / n : 0.0;
  sets.vs_block_profitable =
      opt.vs_block && sets.avg_supernode_size >= opt.vsblock_min_avg_size &&
      participating_avg_width(sets.blocks) >= opt.vsblock_min_avg_width;

  // Which product families the chosen path consumes. Ungated requests
  // build both (the inspect_cholesky contract).
  const bool want_simplicial = !req.gate_products || !sets.vs_block_profitable;
  const bool want_supernodal = !req.gate_products || sets.vs_block_profitable;

  // --- pattern of L: one fused sweep into exact-presized arrays -----------
  std::vector<index_t> row_offdiag;  // rowpat histogram, free from the sweep
  if (!req.naive) {
    Timer t_pat;
    sets.sym.l_pattern = cholesky_fill_pattern(
        upper, sets.sym.parent, sets.sym.colcount,
        /*with_values=*/want_simplicial,
        want_simplicial ? &row_offdiag : nullptr);
    sets.sym.fill_nnz = sets.sym.l_pattern.colptr[n];
    for (index_t j = 0; j < n; ++j) {
      const double c = sets.sym.colcount[j];
      sets.sym.flops += c * c;
    }
    ph.pattern += t_pat.seconds();
  } else if (!want_simplicial) {
    // Match the gated fast plan bit for bit: supernodal plans carry no
    // |L|-sized zero value array.
    sets.sym.l_pattern.values = {};
  }

  // --- assembly: independent products over the shared symbolic factor ----
  // rowpat (simplicial prune-sets), layout -> updates (supernodal), and
  // schedule -> slot map (parallel gates) have no cross-dependencies
  // beyond layout, so they run as tasks; every product is a deterministic
  // pattern function, so the assembly is bit-reproducible regardless of
  // which thread builds what.
  Timer t_asm;
  const auto build_rowpat = [&] {
    // Simplicial prune-sets: the row pattern of L row-by-row — a
    // transpose walk of the pattern (row pattern of i = columns j < i
    // with L(i,j) != 0, ascending). The counting pass comes free from
    // the fused sweep when available.
    sets.rowpat_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
    const CscMatrix& lp = sets.sym.l_pattern;
    if (!row_offdiag.empty()) {
      for (index_t i = 0; i < n; ++i)
        sets.rowpat_ptr[i + 1] = sets.rowpat_ptr[i] + row_offdiag[i];
    } else {
      for (index_t j = 0; j < n; ++j)
        for (index_t p = lp.col_begin(j) + 1; p < lp.col_end(j); ++p)
          ++sets.rowpat_ptr[lp.rowind[p] + 1];
      for (index_t i = 0; i < n; ++i)
        sets.rowpat_ptr[i + 1] += sets.rowpat_ptr[i];
    }
    sets.rowpat.resize(static_cast<std::size_t>(sets.rowpat_ptr[n]));
    std::vector<index_t> next(sets.rowpat_ptr.begin(),
                              sets.rowpat_ptr.end() - 1);
    for (index_t j = 0; j < n; ++j)
      for (index_t p = lp.col_begin(j) + 1; p < lp.col_end(j); ++p)
        sets.rowpat[next[lp.rowind[p]]++] = j;
  };
  const auto build_layout = [&] {
    sets.layout = solvers::SupernodalLayout::build(sets.sym, sets.blocks);
  };
  const auto build_updates = [&] {
    sets.updates = solvers::compute_update_lists(sets.layout);
  };
  const auto build_schedule = [&] {
    // Gates mirror the historical planner: enough supernodes to schedule,
    // then wide enough average levels to commit to the parallel path.
    if (!req.build_schedule ||
        sets.blocks.count() < req.parallel_min_supernodes)
      return;
    Timer t_sched;
    products.schedule =
        parallel::level_schedule_supernodes(sets.blocks, sets.sym.parent);
    ph.schedule = t_sched.seconds();
    products.scheduled = true;
    if (products.schedule.avg_level_width() >=
        req.parallel_min_avg_level_width) {
      Timer t_slot;
      products.solve_update_map =
          parallel::update_slots_supernodes(sets.layout);
      ph.slotmap = t_slot.seconds();
      products.committed = true;
    }
  };

#ifdef SYMPILER_HAS_OPENMP
  if (!req.naive) {
    std::exception_ptr errors[3] = {nullptr, nullptr, nullptr};
#pragma omp parallel
#pragma omp single
    {
      if (want_simplicial) {
#pragma omp task shared(sets, row_offdiag, errors)
        {
          try {
            build_rowpat();
          } catch (...) {
            errors[0] = std::current_exception();
          }
        }
      }
      if (want_supernodal) {
        try {
          build_layout();  // critical path: updates + slot map read it
#pragma omp task shared(sets, errors)
          {
            try {
              build_updates();
            } catch (...) {
              errors[1] = std::current_exception();
            }
          }
          build_schedule();
        } catch (...) {
          errors[2] = std::current_exception();
        }
      }
    }  // implicit barrier: all tasks complete
    for (const std::exception_ptr& e : errors)
      if (e) std::rethrow_exception(e);
  } else {
    // Reference pipeline: strictly serial, fixed order.
    if (want_simplicial) build_rowpat();
    if (want_supernodal) {
      build_layout();
      build_updates();
      build_schedule();
    }
  }
#else
  if (want_simplicial) build_rowpat();
  if (want_supernodal) {
    build_layout();
    build_updates();
    build_schedule();
  }
#endif
  if (products.committed && req.coarsen) {
    // Coarsening reads the update lists, which may still be under
    // construction while build_schedule runs as a task sibling — so it
    // happens here, after the assembly barrier, in both pipelines
    // (deterministic pattern function: naive and fast agree bit for bit).
    Timer t_coarsen;
    std::vector<index_t> dep_src(sets.updates.refs.size());
    for (std::size_t u = 0; u < sets.updates.refs.size(); ++u)
      dep_src[u] = sets.updates.refs[u].d;
    products.agg = parallel::coarsen_schedule_supernodes(
        sets.blocks, sets.sym.parent, sets.updates.ptr, dep_src,
        products.schedule);
    ph.schedule += t_coarsen.seconds();
  }
  ph.assemble = t_asm.seconds();
  return sets;
}

}  // namespace sympiler::core
