#include "core/inspector.h"

#include <algorithm>

#include "graph/reach.h"
#include "solvers/trisolve.h"

namespace sympiler::core {

namespace {

// The paper gates VS-Block on "the average size of the participating
// supernodes" with a hand-tuned threshold of 160 on its SuiteSparse
// suite. Our recalibrated form of the same heuristic weights the average
// panel rows of participating (width >= 2) supernodes by the fraction of
// columns they cover — a matrix whose only wide supernode is the trailing
// dense block should not trigger blocking. The default threshold in
// SympilerOptions is hand-tuned on the synthetic suite exactly like the
// paper tunes theirs; bench/ablation_thresholds sweeps it.
double participating_avg_rows(const SupernodePartition& sn,
                              std::span<const index_t> colcount) {
  double total_rows = 0.0;
  double covered_cols = 0.0;
  index_t participating = 0;
  for (index_t s = 0; s < sn.count(); ++s) {
    if (sn.width(s) < 2) continue;
    total_rows += static_cast<double>(colcount[sn.start[s]]);  // panel rows
    covered_cols += sn.width(s);
    ++participating;
  }
  if (participating == 0 || sn.start.back() == 0) return 0.0;
  const double avg_rows = total_rows / participating;
  const double coverage = covered_cols / static_cast<double>(sn.start.back());
  return avg_rows * coverage;
}

double participating_avg_width(const SupernodePartition& sn) {
  double covered_cols = 0.0;
  index_t participating = 0;
  for (index_t s = 0; s < sn.count(); ++s) {
    if (sn.width(s) < 2) continue;
    covered_cols += sn.width(s);
    ++participating;
  }
  return participating == 0 ? 0.0 : covered_cols / participating;
}

}  // namespace

TriSolveSets inspect_trisolve(const CscMatrix& l,
                              std::span<const index_t> beta,
                              const SympilerOptions& opt,
                              const SupernodePartition* known_blocks) {
  SYMPILER_CHECK(l.rows() == l.cols(), "inspect_trisolve: L not square");
  TriSolveSets sets;

  // VI-Prune inspection: DFS over DG_L (Table 1 row 1).
  sets.reach = reach(l, beta);

  // Column counts (peel decisions and thresholds).
  const index_t n = l.cols();
  sets.colcount.resize(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j)
    sets.colcount[j] = l.col_end(j) - l.col_begin(j);

  // VS-Block inspection: node equivalence on DG_L (Table 1 row 2), unless
  // the factorization inspector already produced the block-set.
  if (known_blocks != nullptr) {
    SYMPILER_CHECK(known_blocks->valid(n),
                   "inspect_trisolve: invalid known block-set");
    sets.blocks = *known_blocks;
  } else {
    SupernodeOptions sn_opt;
    sn_opt.max_width = opt.max_supernode_width;
    sets.blocks = supernodes_node_equivalence(l, sn_opt);
  }
  sets.avg_supernode_size =
      participating_avg_rows(sets.blocks, sets.colcount);
  sets.vs_block_profitable =
      opt.vs_block && sets.avg_supernode_size >= opt.vsblock_min_avg_size &&
      participating_avg_width(sets.blocks) >= opt.vsblock_min_avg_width;

  // Supernode-level prune-set: reached columns of a supernode form a
  // suffix, so one (supernode, first column) pair per touched supernode.
  std::vector<index_t> first_col(static_cast<std::size_t>(sets.blocks.count()),
                                 -1);
  for (const index_t j : sets.reach) {
    const index_t s = sets.blocks.col_to_super[j];
    if (first_col[s] == -1 || j < first_col[s]) first_col[s] = j;
  }
  for (index_t s = 0; s < sets.blocks.count(); ++s) {
    if (first_col[s] != -1) {
      sets.sn_reach.push_back(s);
      sets.sn_first_col.push_back(first_col[s]);
    }
  }

  sets.flops = solvers::trisolve_flops(l, sets.reach);
  return sets;
}

TriSolveSets inspect_trisolve_dense_rhs(const CscMatrix& l,
                                        std::span<const value_t> b,
                                        const SympilerOptions& opt) {
  std::vector<index_t> beta;
  for (index_t i = 0; i < static_cast<index_t>(b.size()); ++i)
    if (b[i] != 0.0) beta.push_back(i);
  return inspect_trisolve(l, beta, opt);
}

CholeskySets inspect_cholesky(const CscMatrix& a_lower,
                              const SympilerOptions& opt) {
  CholeskySets sets;
  sets.sym = symbolic_cholesky(a_lower);
  const index_t n = a_lower.cols();

  // Block-set: fundamental supernodes from etree + colcounts.
  SupernodeOptions sn_opt;
  sn_opt.max_width = opt.max_supernode_width;
  sn_opt.relax = opt.relax_supernodes;
  sn_opt.relax_ratio = opt.relax_ratio;
  sets.blocks = supernodes_cholesky(sets.sym.parent, sets.sym.colcount, sn_opt);
  sets.layout = solvers::SupernodalLayout::build(sets.sym, sets.blocks);
  sets.updates = solvers::compute_update_lists(sets.layout);

  // Simplicial prune-sets: the row pattern of L row-by-row. The pattern of
  // L is already available, so the row patterns are a transpose walk: row
  // pattern of i = columns j < i with L(i,j) != 0.
  sets.rowpat_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  const CscMatrix& lp = sets.sym.l_pattern;
  for (index_t j = 0; j < n; ++j)
    for (index_t p = lp.col_begin(j) + 1; p < lp.col_end(j); ++p)
      ++sets.rowpat_ptr[lp.rowind[p] + 1];
  for (index_t i = 0; i < n; ++i) sets.rowpat_ptr[i + 1] += sets.rowpat_ptr[i];
  sets.rowpat.resize(static_cast<std::size_t>(sets.rowpat_ptr[n]));
  {
    std::vector<index_t> next(sets.rowpat_ptr.begin(),
                              sets.rowpat_ptr.end() - 1);
    for (index_t j = 0; j < n; ++j)
      for (index_t p = lp.col_begin(j) + 1; p < lp.col_end(j); ++p)
        sets.rowpat[next[lp.rowind[p]]++] = j;
  }

  sets.avg_supernode_size =
      participating_avg_rows(sets.blocks, sets.sym.colcount);
  double cc = 0.0;
  for (index_t j = 0; j < n; ++j) cc += sets.sym.colcount[j];
  sets.avg_colcount = n > 0 ? cc / n : 0.0;
  sets.vs_block_profitable =
      opt.vs_block && sets.avg_supernode_size >= opt.vsblock_min_avg_size &&
      participating_avg_width(sets.blocks) >= opt.vsblock_min_avg_width;
  return sets;
}

}  // namespace sympiler::core
