// Flat plan serialization (plan_serde.h). The writer is straight-line
// append; the reader is a cursor that bounds-checks every scalar and
// count before touching memory, and maps violations onto the taxonomy via
// two internal exceptions (corrupt vs stale) caught at the entry points.
#include "core/plan_serde.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>

#include "util/crc32c.h"
#include "util/fault.h"

namespace sympiler::core {

namespace {

constexpr char kMagic[8] = {'S', 'Y', 'M', 'P', 'L', 'A', 'N', '1'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint16_t kKindCholesky = 1;
constexpr std::uint16_t kKindTriSolve = 2;

// Fixed header: magic(8) version(4) endian(4) index/value/kind/sections
// (4 x 2) options_hash(8) key(7 x 8) file_bytes(8) crc(4) pad(4).
constexpr std::size_t kHeaderSize = 104;
constexpr std::size_t kHeaderCrcOffset = 96;
// Section table entry: id(4) crc(4) offset(8) length(8).
constexpr std::size_t kTableEntrySize = 24;
// Table checksum: crc(4) pad(4), appended after the entries.
constexpr std::size_t kTableCrcSize = 8;

enum SectionId : std::uint32_t {
  kSecMeta = 1,      ///< options, path, evidence, workspace, set scalars
  kSecSymbolic = 2,  ///< Cholesky: etree, colcounts, L pattern
  kSecBlocks = 3,    ///< supernode partition (+ layout for Cholesky)
  kSecUpdates = 4,   ///< Cholesky: static update schedule
  kSecRowpat = 5,    ///< Cholesky: simplicial row patterns
  kSecSchedule = 6,  ///< flat level schedule
  kSecAgg = 7,       ///< coarsened aggregate schedule
  kSecSlotMap = 8,   ///< privatized update-slot map
  kSecReach = 9,     ///< trisolve: prune-sets + colcounts
};

constexpr std::uint32_t kCholeskySections[] = {
    kSecMeta,   kSecSymbolic, kSecBlocks, kSecUpdates,
    kSecRowpat, kSecSchedule, kSecAgg,    kSecSlotMap};
constexpr std::uint32_t kTriSolveSections[] = {
    kSecMeta, kSecReach, kSecBlocks, kSecSchedule, kSecAgg, kSecSlotMap};

/// File fails validation: torn write, bit flip, truncation, hostile count.
struct CorruptError {
  std::string message;
};
/// File is internally consistent but written by an incompatible layout.
struct StaleError {
  std::string message;
};

[[noreturn]] void corrupt(std::string message) {
  throw CorruptError{std::move(message)};
}

// CRC32 lives in util/crc32c.h (hardware-dispatched CRC-32C); serde_crc32
// below is the format's pinned alias for it.

// ------------------------------------------------------------ byte cursors

class Writer {
 public:
  void raw(const void* data, std::size_t len) {
    if (len == 0) return;  // empty vectors hand over data() == nullptr
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }
  template <typename T>
  void scalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(&v, sizeof(v));
  }
  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    scalar<std::uint64_t>(v.size());
    raw(v.data(), v.size() * sizeof(T));
  }
  void str(const std::string& s) {
    scalar<std::uint64_t>(s.size());
    raw(s.data(), s.size());
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked cursor over an untrusted byte span. Every read verifies
/// the remaining length first; a violation throws CorruptError with the
/// caller-supplied field name.
class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes, const char* what)
      : bytes_(bytes), what_(what) {}

  void raw(void* out, std::size_t len, const char* field) {
    if (len > bytes_.size() - pos_)
      corrupt(std::string(what_) + ": " + field + " runs past the end");
    // len == 0 happens for empty vectors, whose data() may be null —
    // and memcpy's pointer arguments must be non-null even then.
    if (len != 0) std::memcpy(out, bytes_.data() + pos_, len);
    pos_ += len;
  }
  template <typename T>
  [[nodiscard]] T scalar(const char* field) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    raw(&v, sizeof(v), field);
    return v;
  }
  template <typename T>
  void vec(std::vector<T>* out, const char* field) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto count = scalar<std::uint64_t>(field);
    if (count > (bytes_.size() - pos_) / sizeof(T))
      corrupt(std::string(what_) + ": " + field + " count " +
              std::to_string(count) + " exceeds the section");
    const auto n = static_cast<std::size_t>(count);
    const std::uint8_t* src = bytes_.data() + pos_;
    if (reinterpret_cast<std::uintptr_t>(src) % alignof(T) == 0) {
      // Aligned (the common case: sections are 8-aligned and counts are
      // u64): assign straight from the image — one copy, no
      // value-initializing resize(). The multi-megabyte pattern arrays
      // make that second pass real money on the restart-warm load path.
      const T* first = reinterpret_cast<const T*>(src);
      out->assign(first, first + n);
      pos_ += n * sizeof(T);
    } else {
      out->resize(n);
      raw(out->data(), n * sizeof(T), field);
    }
  }
  void str(std::string* out, const char* field) {
    const auto count = scalar<std::uint64_t>(field);
    if (count > bytes_.size() - pos_)
      corrupt(std::string(what_) + ": " + field + " length " +
              std::to_string(count) + " exceeds the section");
    out->assign(reinterpret_cast<const char*>(bytes_.data() + pos_),
                static_cast<std::size_t>(count));
    pos_ += static_cast<std::size_t>(count);
  }
  /// Every section parser must consume its payload exactly — leftover
  /// bytes mean the content is not what the section id claims (the
  /// section-swap corruption shape).
  void expect_done() const {
    if (pos_ != bytes_.size())
      corrupt(std::string(what_) + ": " +
              std::to_string(bytes_.size() - pos_) + " trailing bytes");
  }

 private:
  std::span<const std::uint8_t> bytes_;
  const char* what_;
  std::size_t pos_ = 0;
};

// -------------------------------------------------- component serializers

void put_options(Writer& w, const SympilerOptions& o) {
  w.scalar<std::uint8_t>(o.vs_block);
  w.scalar<std::uint8_t>(o.vi_prune);
  w.scalar<std::uint8_t>(o.low_level);
  w.scalar<double>(o.vsblock_min_avg_size);
  w.scalar<double>(o.vsblock_min_avg_width);
  w.scalar<double>(o.blas_switch_colcount);
  w.scalar<index_t>(o.peel_colcount);
  w.scalar<index_t>(o.max_supernode_width);
  w.scalar<std::uint8_t>(o.relax_supernodes);
  w.scalar<double>(o.relax_ratio);
  w.scalar<std::uint32_t>(static_cast<std::uint32_t>(o.jit));
  w.scalar<index_t>(o.jit_warm_calls);
  w.scalar<index_t>(o.jit_max_source_kb);
  w.scalar<std::uint8_t>(o.validate_input);
  w.scalar<std::uint8_t>(o.scan_values);
  w.scalar<index_t>(o.shift_attempts);
  w.scalar<std::uint8_t>(o.guard_workspace);
  w.scalar<std::uint8_t>(o.verify_plan);
  w.str(o.plan_store_dir);
}

void get_options(Reader& r, SympilerOptions* o) {
  o->vs_block = r.scalar<std::uint8_t>("vs_block") != 0;
  o->vi_prune = r.scalar<std::uint8_t>("vi_prune") != 0;
  o->low_level = r.scalar<std::uint8_t>("low_level") != 0;
  o->vsblock_min_avg_size = r.scalar<double>("vsblock_min_avg_size");
  o->vsblock_min_avg_width = r.scalar<double>("vsblock_min_avg_width");
  o->blas_switch_colcount = r.scalar<double>("blas_switch_colcount");
  o->peel_colcount = r.scalar<index_t>("peel_colcount");
  o->max_supernode_width = r.scalar<index_t>("max_supernode_width");
  o->relax_supernodes = r.scalar<std::uint8_t>("relax_supernodes") != 0;
  o->relax_ratio = r.scalar<double>("relax_ratio");
  const auto jit = r.scalar<std::uint32_t>("jit");
  if (jit > static_cast<std::uint32_t>(JitMode::kAlways))
    corrupt("meta: jit mode " + std::to_string(jit) + " out of range");
  o->jit = static_cast<JitMode>(jit);
  o->jit_warm_calls = r.scalar<index_t>("jit_warm_calls");
  o->jit_max_source_kb = r.scalar<index_t>("jit_max_source_kb");
  o->validate_input = r.scalar<std::uint8_t>("validate_input") != 0;
  o->scan_values = r.scalar<std::uint8_t>("scan_values") != 0;
  o->shift_attempts = r.scalar<index_t>("shift_attempts");
  o->guard_workspace = r.scalar<std::uint8_t>("guard_workspace") != 0;
  o->verify_plan = r.scalar<std::uint8_t>("verify_plan") != 0;
  r.str(&o->plan_store_dir, "plan_store_dir");
}

void put_evidence(Writer& w, const PlanEvidence& e) {
  w.scalar<std::uint8_t>(e.vs_block_profitable);
  w.scalar<std::uint8_t>(e.parallel_considered);
  w.scalar<double>(e.avg_supernode_size);
  w.scalar<index_t>(e.supernodes);
  w.scalar<index_t>(e.levels);
  w.scalar<double>(e.avg_level_width);
  w.scalar<index_t>(e.agg_levels);
  w.scalar<index_t>(e.agg_tasks);
  w.scalar<index_t>(e.agg_bundles);
  w.scalar<double>(e.build_seconds);
  w.scalar<std::uint8_t>(e.jit_eligible);
  w.scalar<PlanPhaseTimes>(e.phases);  // 8 doubles, trivially copyable
}

void get_evidence(Reader& r, PlanEvidence* e) {
  e->vs_block_profitable = r.scalar<std::uint8_t>("vs_block_profitable") != 0;
  e->parallel_considered = r.scalar<std::uint8_t>("parallel_considered") != 0;
  e->avg_supernode_size = r.scalar<double>("avg_supernode_size");
  e->supernodes = r.scalar<index_t>("supernodes");
  e->levels = r.scalar<index_t>("levels");
  e->avg_level_width = r.scalar<double>("avg_level_width");
  e->agg_levels = r.scalar<index_t>("agg_levels");
  e->agg_tasks = r.scalar<index_t>("agg_tasks");
  e->agg_bundles = r.scalar<index_t>("agg_bundles");
  e->build_seconds = r.scalar<double>("build_seconds");
  e->jit_eligible = r.scalar<std::uint8_t>("jit_eligible") != 0;
  e->phases = r.scalar<PlanPhaseTimes>("phases");
}

void put_workspace(Writer& w, const WorkspaceDims& d) {
  w.scalar<index_t>(d.n);
  w.scalar<index_t>(d.max_panel_rows);
  w.scalar<index_t>(d.max_panel_width);
  w.scalar<index_t>(d.max_tail);
  w.scalar<index_t>(d.rhs_block);
  w.scalar<index_t>(d.update_slots);
  w.scalar<std::uint8_t>(d.need_map);
  w.scalar<std::uint8_t>(d.need_dense);
}

void get_workspace(Reader& r, WorkspaceDims* d) {
  d->n = r.scalar<index_t>("ws.n");
  d->max_panel_rows = r.scalar<index_t>("ws.max_panel_rows");
  d->max_panel_width = r.scalar<index_t>("ws.max_panel_width");
  d->max_tail = r.scalar<index_t>("ws.max_tail");
  d->rhs_block = r.scalar<index_t>("ws.rhs_block");
  d->update_slots = r.scalar<index_t>("ws.update_slots");
  d->need_map = r.scalar<std::uint8_t>("ws.need_map") != 0;
  d->need_dense = r.scalar<std::uint8_t>("ws.need_dense") != 0;
}

void put_csc(Writer& w, const CscMatrix& m) {
  w.scalar<index_t>(m.rows());
  w.scalar<index_t>(m.cols());
  w.vec(m.colptr);
  w.vec(m.rowind);
  w.scalar<std::uint8_t>(!m.values.empty());
  if (!m.values.empty()) w.vec(m.values);
}

void get_csc(Reader& r, CscMatrix* out) {
  const auto nrows = r.scalar<index_t>("csc.nrows");
  const auto ncols = r.scalar<index_t>("csc.ncols");
  if (nrows < 0 || ncols < 0)
    corrupt("csc: negative shape " + std::to_string(nrows) + "x" +
            std::to_string(ncols));
  CscMatrix m(nrows, ncols);
  r.vec(&m.colptr, "csc.colptr");
  r.vec(&m.rowind, "csc.rowind");
  if (r.scalar<std::uint8_t>("csc.has_values") != 0)
    r.vec(&m.values, "csc.values");
  else
    m.values.clear();
  *out = std::move(m);
}

// ------------------------------------------------------------- file layout

struct Header {
  std::uint16_t kind = 0;
  std::uint16_t section_count = 0;
  std::uint64_t options_hash = 0;
  PatternKey key;
};

struct TableEntry {
  std::uint32_t id = 0;
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

void pad_to_8(std::vector<std::uint8_t>& buf) {
  while (buf.size() % 8 != 0) buf.push_back(0);
}

std::vector<std::uint8_t> assemble(
    std::uint16_t kind, const PatternKey& key, std::uint64_t options_hash,
    std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>
        sections) {
  const std::size_t table_size =
      sections.size() * kTableEntrySize + kTableCrcSize;
  std::vector<std::uint8_t> file(kHeaderSize + table_size, 0);
  pad_to_8(file);
  const std::size_t table_offset = kHeaderSize;

  std::vector<TableEntry> table(sections.size());
  for (std::size_t s = 0; s < sections.size(); ++s) {
    pad_to_8(file);
    table[s].id = sections[s].first;
    table[s].offset = file.size();
    table[s].length = sections[s].second.size();
    table[s].crc =
        serde_crc32(sections[s].second.data(), sections[s].second.size());
    file.insert(file.end(), sections[s].second.begin(),
                sections[s].second.end());
  }

  Writer hw;
  hw.raw(kMagic, sizeof(kMagic));
  hw.scalar<std::uint32_t>(kPlanFormatVersion);
  hw.scalar<std::uint32_t>(kEndianTag);
  hw.scalar<std::uint16_t>(static_cast<std::uint16_t>(sizeof(index_t)));
  hw.scalar<std::uint16_t>(static_cast<std::uint16_t>(sizeof(value_t)));
  hw.scalar<std::uint16_t>(kind);
  hw.scalar<std::uint16_t>(static_cast<std::uint16_t>(sections.size()));
  hw.scalar<std::uint64_t>(options_hash);
  hw.scalar<std::int64_t>(key.rows);
  hw.scalar<std::int64_t>(key.cols);
  hw.scalar<std::int64_t>(key.nnz);
  hw.scalar<std::int64_t>(key.rhs_nnz);
  hw.scalar<std::uint64_t>(key.structure_hash);
  hw.scalar<std::uint64_t>(key.structure_hash2);
  hw.scalar<std::uint64_t>(key.config_hash);
  hw.scalar<std::uint64_t>(file.size());
  const std::vector<std::uint8_t> head = hw.take();
  std::memcpy(file.data(), head.data(), kHeaderCrcOffset);
  const std::uint32_t header_crc = serde_crc32(file.data(), kHeaderCrcOffset);
  std::memcpy(file.data() + kHeaderCrcOffset, &header_crc,
              sizeof(header_crc));

  Writer tw;
  for (const TableEntry& e : table) {
    tw.scalar<std::uint32_t>(e.id);
    tw.scalar<std::uint32_t>(e.crc);
    tw.scalar<std::uint64_t>(e.offset);
    tw.scalar<std::uint64_t>(e.length);
  }
  const std::vector<std::uint8_t> tbl = tw.take();
  std::memcpy(file.data() + table_offset, tbl.data(), tbl.size());
  const std::uint32_t table_crc =
      serde_crc32(file.data() + table_offset, tbl.size());
  std::memcpy(file.data() + table_offset + tbl.size(), &table_crc,
              sizeof(table_crc));
  return file;
}

/// Validate magic, CRCs, version/ABI tags, and the section table against
/// the taxonomy, returning the per-id section payload spans.
Header parse_envelope(
    std::span<const std::uint8_t> bytes,
    std::span<const std::uint32_t> expected_sections,
    std::vector<std::span<const std::uint8_t>>* sections_by_id) {
  if (bytes.size() < kHeaderSize) corrupt("file shorter than the header");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    corrupt("bad magic — not a plan file");
  std::uint32_t header_crc = 0;
  std::memcpy(&header_crc, bytes.data() + kHeaderCrcOffset,
              sizeof(header_crc));
  if (serde_crc32(bytes.data(), kHeaderCrcOffset) != header_crc)
    corrupt("header checksum mismatch");

  Reader r(bytes.subspan(sizeof(kMagic), kHeaderCrcOffset - sizeof(kMagic)),
           "header");
  const auto version = r.scalar<std::uint32_t>("format_version");
  const auto endian = r.scalar<std::uint32_t>("endian_tag");
  const auto index_size = r.scalar<std::uint16_t>("index_size");
  const auto value_size = r.scalar<std::uint16_t>("value_size");
  if (version != kPlanFormatVersion)
    throw StaleError{"format version " + std::to_string(version) +
                     ", this build reads " +
                     std::to_string(kPlanFormatVersion)};
  if (endian != kEndianTag) {
    char hex[16];
    std::snprintf(hex, sizeof(hex), "%08x", endian);
    throw StaleError{"foreign endianness (tag 0x" + std::string(hex) + ")"};
  }
  if (index_size != sizeof(index_t) || value_size != sizeof(value_t))
    throw StaleError{"index/value ABI " + std::to_string(index_size) + "/" +
                     std::to_string(value_size) + ", this build uses " +
                     std::to_string(sizeof(index_t)) + "/" +
                     std::to_string(sizeof(value_t))};

  Header h;
  h.kind = r.scalar<std::uint16_t>("kind");
  h.section_count = r.scalar<std::uint16_t>("section_count");
  h.options_hash = r.scalar<std::uint64_t>("options_hash");
  h.key.rows = static_cast<index_t>(r.scalar<std::int64_t>("key.rows"));
  h.key.cols = static_cast<index_t>(r.scalar<std::int64_t>("key.cols"));
  h.key.nnz = static_cast<index_t>(r.scalar<std::int64_t>("key.nnz"));
  h.key.rhs_nnz = static_cast<index_t>(r.scalar<std::int64_t>("key.rhs_nnz"));
  h.key.structure_hash = r.scalar<std::uint64_t>("key.structure_hash");
  h.key.structure_hash2 = r.scalar<std::uint64_t>("key.structure_hash2");
  h.key.config_hash = r.scalar<std::uint64_t>("key.config_hash");
  const auto file_bytes = r.scalar<std::uint64_t>("file_bytes");
  if (file_bytes != bytes.size())
    corrupt("file is " + std::to_string(bytes.size()) +
            " bytes, header records " + std::to_string(file_bytes));
  if (h.section_count != expected_sections.size())
    corrupt("section count " + std::to_string(h.section_count) +
            ", this kind has " + std::to_string(expected_sections.size()));

  const std::size_t table_size =
      h.section_count * kTableEntrySize + kTableCrcSize;
  if (bytes.size() - kHeaderSize < table_size)
    corrupt("section table runs past the end");
  const std::size_t table_end =
      kHeaderSize + h.section_count * kTableEntrySize;
  std::uint32_t table_crc = 0;
  std::memcpy(&table_crc, bytes.data() + table_end, sizeof(table_crc));
  if (serde_crc32(bytes.data() + kHeaderSize,
                  h.section_count * kTableEntrySize) != table_crc)
    corrupt("section table checksum mismatch");

  sections_by_id->assign(kSecReach + 1, {});
  Reader tr(bytes.subspan(kHeaderSize, h.section_count * kTableEntrySize),
            "section table");
  for (std::uint16_t s = 0; s < h.section_count; ++s) {
    TableEntry e;
    e.id = tr.scalar<std::uint32_t>("id");
    e.crc = tr.scalar<std::uint32_t>("crc");
    e.offset = tr.scalar<std::uint64_t>("offset");
    e.length = tr.scalar<std::uint64_t>("length");
    const std::string label = "section " + std::to_string(e.id);
    if (e.id == 0 || e.id > kSecReach) corrupt(label + ": unknown id");
    if ((*sections_by_id)[e.id].data() != nullptr)
      corrupt(label + ": duplicate id");
    if (e.offset < table_end + kTableCrcSize || e.offset > bytes.size() ||
        e.length > bytes.size() - e.offset)
      corrupt(label + ": extent [" + std::to_string(e.offset) + ", +" +
              std::to_string(e.length) + ") outside the file");
    const auto payload =
        bytes.subspan(static_cast<std::size_t>(e.offset),
                      static_cast<std::size_t>(e.length));
    if (serde_crc32(payload.data(), payload.size()) != e.crc ||
        SYMPILER_FAULT_POINT(util::FaultSite::kStoreChecksum))
      corrupt(label + ": checksum mismatch");
    (*sections_by_id)[e.id] = payload;
  }
  for (const std::uint32_t id : expected_sections)
    if ((*sections_by_id)[id].data() == nullptr)
      corrupt("section " + std::to_string(id) + ": missing");
  return h;
}

Reader section_reader(
    const std::vector<std::span<const std::uint8_t>>& sections,
    std::uint32_t id, const char* what) {
  return {sections[id], what};
}

// The deserialized options must hash to the header's options-hash — a
// mismatch means the meta section decoded to different plan-shaping knobs
// than the file was written under. The header key's config_hash is NOT
// compared here: the Planner folds its gate configuration into it on top
// of hash_options (planner.cpp gate_hash), and the store's load path
// cross-checks the whole key against the caller's request instead.
void check_options_hash(const Header& h, const SympilerOptions& options) {
  if (hash_options(options) != h.options_hash)
    corrupt("meta: options do not hash to the header's options-hash");
}

Status run_deserialize(void (*body)(void*), void* ctx) {
  try {
    body(ctx);
    return {};
  } catch (const CorruptError& e) {
    return {ErrorCode::kCorruptPlanFile, e.message};
  } catch (const StaleError& e) {
    return {ErrorCode::kStalePlanVersion, e.message};
  }
}

}  // namespace

std::uint32_t serde_crc32(const void* data, std::size_t len) {
  return util::crc32c(data, len);
}

// ---------------------------------------------------------------- Cholesky

std::vector<std::uint8_t> serialize_plan(const CholeskyPlan& plan) {
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> sections;

  Writer meta;
  put_options(meta, plan.options);
  meta.scalar<std::uint32_t>(static_cast<std::uint32_t>(plan.path));
  put_evidence(meta, plan.evidence);
  put_workspace(meta, plan.workspace);
  meta.scalar<double>(plan.sets.avg_supernode_size);
  meta.scalar<double>(plan.sets.avg_colcount);
  meta.scalar<std::uint8_t>(plan.sets.vs_block_profitable);
  meta.scalar<std::int64_t>(plan.sets.sym.fill_nnz);
  meta.scalar<double>(plan.sets.sym.flops);
  meta.scalar<index_t>(plan.sets.layout.n);
  meta.scalar<double>(plan.sets.layout.flops);
  sections.emplace_back(kSecMeta, meta.take());

  Writer sym;
  sym.vec(plan.sets.sym.parent);
  sym.vec(plan.sets.sym.colcount);
  put_csc(sym, plan.sets.sym.l_pattern);
  sections.emplace_back(kSecSymbolic, sym.take());

  Writer blocks;
  blocks.vec(plan.sets.blocks.start);
  blocks.vec(plan.sets.blocks.col_to_super);
  blocks.vec(plan.sets.layout.sn.start);
  blocks.vec(plan.sets.layout.sn.col_to_super);
  blocks.vec(plan.sets.layout.parent);
  blocks.vec(plan.sets.layout.colcount);
  blocks.vec(plan.sets.layout.srow_ptr);
  blocks.vec(plan.sets.layout.srows);
  blocks.vec(plan.sets.layout.panel_ptr);
  sections.emplace_back(kSecBlocks, blocks.take());

  Writer updates;
  updates.vec(plan.sets.updates.ptr);
  updates.vec(plan.sets.updates.refs);
  sections.emplace_back(kSecUpdates, updates.take());

  Writer rowpat;
  rowpat.vec(plan.sets.rowpat_ptr);
  rowpat.vec(plan.sets.rowpat);
  sections.emplace_back(kSecRowpat, rowpat.take());

  Writer sched;
  sched.vec(plan.schedule.level_ptr);
  sched.vec(plan.schedule.items);
  sections.emplace_back(kSecSchedule, sched.take());

  Writer agg;
  agg.vec(plan.agg.level_ptr);
  agg.vec(plan.agg.task_ptr);
  agg.vec(plan.agg.items);
  agg.vec(plan.agg.bundle);
  sections.emplace_back(kSecAgg, agg.take());

  Writer slots;
  slots.vec(plan.solve_update_map.slot);
  slots.vec(plan.solve_update_map.row_ptr);
  sections.emplace_back(kSecSlotMap, slots.take());

  return assemble(kKindCholesky, plan.key, hash_options(plan.options),
                  std::move(sections));
}

Status deserialize_plan(std::span<const std::uint8_t> bytes,
                        CholeskyPlan* out) {
  struct Ctx {
    std::span<const std::uint8_t> bytes;
    CholeskyPlan* out;
  } ctx{bytes, out};
  return run_deserialize([](void* vc) {
    auto& c = *static_cast<Ctx*>(vc);
    std::vector<std::span<const std::uint8_t>> sections;
    const Header h = parse_envelope(c.bytes, kCholeskySections, &sections);
    if (h.kind != kKindCholesky)
      corrupt("header kind " + std::to_string(h.kind) +
              " is not a Cholesky plan");

    CholeskyPlan plan;
    plan.key = h.key;

    Reader meta = section_reader(sections, kSecMeta, "meta");
    get_options(meta, &plan.options);
    const auto path = meta.scalar<std::uint32_t>("path");
    if (path > static_cast<std::uint32_t>(ExecutionPath::ParallelSupernodal))
      corrupt("meta: path " + std::to_string(path) +
              " is not a Cholesky path");
    plan.path = static_cast<ExecutionPath>(path);
    get_evidence(meta, &plan.evidence);
    get_workspace(meta, &plan.workspace);
    plan.sets.avg_supernode_size = meta.scalar<double>("avg_supernode_size");
    plan.sets.avg_colcount = meta.scalar<double>("avg_colcount");
    plan.sets.vs_block_profitable =
        meta.scalar<std::uint8_t>("vs_block_profitable") != 0;
    plan.sets.sym.fill_nnz = meta.scalar<std::int64_t>("fill_nnz");
    plan.sets.sym.flops = meta.scalar<double>("sym.flops");
    plan.sets.layout.n = meta.scalar<index_t>("layout.n");
    plan.sets.layout.flops = meta.scalar<double>("layout.flops");
    meta.expect_done();
    check_options_hash(h, plan.options);

    Reader sym = section_reader(sections, kSecSymbolic, "symbolic");
    sym.vec(&plan.sets.sym.parent, "parent");
    sym.vec(&plan.sets.sym.colcount, "colcount");
    get_csc(sym, &plan.sets.sym.l_pattern);
    sym.expect_done();

    Reader blocks = section_reader(sections, kSecBlocks, "blocks");
    blocks.vec(&plan.sets.blocks.start, "blocks.start");
    blocks.vec(&plan.sets.blocks.col_to_super, "blocks.col_to_super");
    blocks.vec(&plan.sets.layout.sn.start, "layout.sn.start");
    blocks.vec(&plan.sets.layout.sn.col_to_super, "layout.sn.col_to_super");
    blocks.vec(&plan.sets.layout.parent, "layout.parent");
    blocks.vec(&plan.sets.layout.colcount, "layout.colcount");
    blocks.vec(&plan.sets.layout.srow_ptr, "layout.srow_ptr");
    blocks.vec(&plan.sets.layout.srows, "layout.srows");
    blocks.vec(&plan.sets.layout.panel_ptr, "layout.panel_ptr");
    blocks.expect_done();

    Reader updates = section_reader(sections, kSecUpdates, "updates");
    updates.vec(&plan.sets.updates.ptr, "updates.ptr");
    updates.vec(&plan.sets.updates.refs, "updates.refs");
    updates.expect_done();

    Reader rowpat = section_reader(sections, kSecRowpat, "rowpat");
    rowpat.vec(&plan.sets.rowpat_ptr, "rowpat_ptr");
    rowpat.vec(&plan.sets.rowpat, "rowpat");
    rowpat.expect_done();

    Reader sched = section_reader(sections, kSecSchedule, "schedule");
    sched.vec(&plan.schedule.level_ptr, "level_ptr");
    sched.vec(&plan.schedule.items, "items");
    sched.expect_done();

    Reader agg = section_reader(sections, kSecAgg, "agg");
    agg.vec(&plan.agg.level_ptr, "agg.level_ptr");
    agg.vec(&plan.agg.task_ptr, "agg.task_ptr");
    agg.vec(&plan.agg.items, "agg.items");
    agg.vec(&plan.agg.bundle, "agg.bundle");
    agg.expect_done();

    Reader slots = section_reader(sections, kSecSlotMap, "slotmap");
    slots.vec(&plan.solve_update_map.slot, "slot");
    slots.vec(&plan.solve_update_map.row_ptr, "row_ptr");
    slots.expect_done();

    *c.out = std::move(plan);
  }, &ctx);
}

// ---------------------------------------------------------------- TriSolve

std::vector<std::uint8_t> serialize_plan(const TriSolvePlan& plan) {
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> sections;

  Writer meta;
  put_options(meta, plan.options);
  meta.scalar<std::uint32_t>(static_cast<std::uint32_t>(plan.path));
  put_evidence(meta, plan.evidence);
  put_workspace(meta, plan.workspace);
  meta.scalar<double>(plan.sets.avg_supernode_size);
  meta.scalar<std::uint8_t>(plan.sets.vs_block_profitable);
  meta.scalar<double>(plan.sets.flops);
  sections.emplace_back(kSecMeta, meta.take());

  Writer reach;
  reach.vec(plan.sets.reach);
  reach.vec(plan.sets.sn_reach);
  reach.vec(plan.sets.sn_first_col);
  reach.vec(plan.sets.colcount);
  sections.emplace_back(kSecReach, reach.take());

  Writer blocks;
  blocks.vec(plan.sets.blocks.start);
  blocks.vec(plan.sets.blocks.col_to_super);
  sections.emplace_back(kSecBlocks, blocks.take());

  Writer sched;
  sched.vec(plan.schedule.level_ptr);
  sched.vec(plan.schedule.items);
  sections.emplace_back(kSecSchedule, sched.take());

  Writer agg;
  agg.vec(plan.agg.level_ptr);
  agg.vec(plan.agg.task_ptr);
  agg.vec(plan.agg.items);
  agg.vec(plan.agg.bundle);
  sections.emplace_back(kSecAgg, agg.take());

  Writer slots;
  slots.vec(plan.update_map.slot);
  slots.vec(plan.update_map.row_ptr);
  sections.emplace_back(kSecSlotMap, slots.take());

  return assemble(kKindTriSolve, plan.key, hash_options(plan.options),
                  std::move(sections));
}

Status deserialize_plan(std::span<const std::uint8_t> bytes,
                        TriSolvePlan* out) {
  struct Ctx {
    std::span<const std::uint8_t> bytes;
    TriSolvePlan* out;
  } ctx{bytes, out};
  return run_deserialize([](void* vc) {
    auto& c = *static_cast<Ctx*>(vc);
    std::vector<std::span<const std::uint8_t>> sections;
    const Header h = parse_envelope(c.bytes, kTriSolveSections, &sections);
    if (h.kind != kKindTriSolve)
      corrupt("header kind " + std::to_string(h.kind) +
              " is not a trisolve plan");

    TriSolvePlan plan;
    plan.key = h.key;

    Reader meta = section_reader(sections, kSecMeta, "meta");
    get_options(meta, &plan.options);
    const auto path = meta.scalar<std::uint32_t>("path");
    if (path < static_cast<std::uint32_t>(ExecutionPath::PrunedTriSolve) ||
        path > static_cast<std::uint32_t>(ExecutionPath::ParallelTriSolve))
      corrupt("meta: path " + std::to_string(path) +
              " is not a trisolve path");
    plan.path = static_cast<ExecutionPath>(path);
    get_evidence(meta, &plan.evidence);
    get_workspace(meta, &plan.workspace);
    plan.sets.avg_supernode_size = meta.scalar<double>("avg_supernode_size");
    plan.sets.vs_block_profitable =
        meta.scalar<std::uint8_t>("vs_block_profitable") != 0;
    plan.sets.flops = meta.scalar<double>("flops");
    meta.expect_done();
    check_options_hash(h, plan.options);

    Reader reach = section_reader(sections, kSecReach, "reach");
    reach.vec(&plan.sets.reach, "reach");
    reach.vec(&plan.sets.sn_reach, "sn_reach");
    reach.vec(&plan.sets.sn_first_col, "sn_first_col");
    reach.vec(&plan.sets.colcount, "colcount");
    reach.expect_done();

    Reader blocks = section_reader(sections, kSecBlocks, "blocks");
    blocks.vec(&plan.sets.blocks.start, "blocks.start");
    blocks.vec(&plan.sets.blocks.col_to_super, "blocks.col_to_super");
    blocks.expect_done();

    Reader sched = section_reader(sections, kSecSchedule, "schedule");
    sched.vec(&plan.schedule.level_ptr, "level_ptr");
    sched.vec(&plan.schedule.items, "items");
    sched.expect_done();

    Reader agg = section_reader(sections, kSecAgg, "agg");
    agg.vec(&plan.agg.level_ptr, "agg.level_ptr");
    agg.vec(&plan.agg.task_ptr, "agg.task_ptr");
    agg.vec(&plan.agg.items, "agg.items");
    agg.vec(&plan.agg.bundle, "agg.bundle");
    agg.expect_done();

    Reader slots = section_reader(sections, kSecSlotMap, "slotmap");
    slots.vec(&plan.update_map.slot, "slot");
    slots.vec(&plan.update_map.row_ptr, "row_ptr");
    slots.expect_done();

    *c.out = std::move(plan);
  }, &ctx);
}

}  // namespace sympiler::core
