// Compiled-kernel artifact riding on a cached ExecutionPlan.
//
// PlanCompiler (plan_compiler.h) lowers a plan to pattern-specialized C
// and compiles it once per PatternKey; the resulting module is published
// into the plan's JitSlot. The slot is the one mutable corner of an
// otherwise immutable plan: write-once (first publisher wins, permanent
// failure recorded the same way), guarded by its own mutex so executors on
// any thread can adopt the kernel mid-stream. Because the plan's bytes()
// counts the slot, the artifact is weighed by the PlanCache and evicted
// together with its plan — dropping the plan drops the dlopen'd module.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "core/jit.h"

namespace sympiler::core {

/// Entry point of a plan-compiled Cholesky kernel. Arguments:
/// (Ap, Ai, Ax) of the lower triangle of A, the factor value storage
/// (simplicial: L values in pattern order; supernodal: the dense panels),
/// value scratch (simplicial: the length-n accumulation column;
/// supernodal: the max_panel_rows x max_panel_width update tile), and the
/// length-n integer scatter map. Returns 0, or -1 on a non-positive pivot.
/// These are exactly the buffers CholeskyExecutor's plan-sized Workspace
/// already holds, so dispatching to the kernel allocates nothing.
using PlanCholeskyFn = int (*)(const int*, const int*, const double*, double*,
                               double*, int*);

/// Entry point of a plan-compiled triangular solve: (Lp, Li, Lx) of L, the
/// RHS/solution vector, and the max_tail gather scratch (unused — and
/// possibly null — on the pruned shape).
using PlanTriSolveFn = void (*)(const int*, const int*, const double*,
                                double*, double*);

/// One compiled plan kernel: the loaded module plus its provenance.
struct CompiledKernel {
  JitModule module;
  std::string symbol;
  std::size_t source_bytes = 0;   ///< size of the emitted translation unit
  double compile_seconds = 0.0;   ///< wall time in the host compiler
  index_t threads = 1;            ///< always 1: compiled kernels are serial

  template <typename Fn>
  [[nodiscard]] Fn entry() const {
    return module.entry<Fn>();
  }

  /// Eviction weight of the artifact. The mapped .so size is not portably
  /// observable, so the source size stands in — the two track each other
  /// (both scale with the baked pattern arrays).
  [[nodiscard]] std::size_t bytes() const {
    return sizeof(CompiledKernel) + symbol.size() + source_bytes;
  }
};

/// Write-once, thread-safe kernel slot embedded in every plan (via
/// shared_ptr so plans stay movable). All methods are const: the slot is
/// logically a compile cache, mutable inside an immutable plan.
class JitSlot {
 public:
  /// The published kernel, or null while interpreting.
  [[nodiscard]] std::shared_ptr<const CompiledKernel> kernel() const {
    std::lock_guard<std::mutex> lock(mu_);
    return kernel_;
  }

  /// First publisher wins; later publishes (and publishes after a recorded
  /// failure) are dropped. Returns whether this call installed the kernel.
  bool publish(std::shared_ptr<const CompiledKernel> kernel) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (kernel_ != nullptr || failed_) return false;
    kernel_ = std::move(kernel);
    return true;
  }

  /// Record a permanent compile failure (missing compiler, source over the
  /// size cap, compiler error) so dispatch policies stop retrying.
  void mark_failed(std::string reason) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (kernel_ != nullptr || failed_) return;
    failed_ = true;
    reason_ = std::move(reason);
  }

  [[nodiscard]] bool failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failed_;
  }

  [[nodiscard]] std::string failure() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reason_;
  }

  /// Count one facade-level use of the plan (the kWarm profitability
  /// gate's input) and return the new total.
  std::uint64_t note_use() const {
    return uses_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  [[nodiscard]] std::uint64_t uses() const {
    return uses_.load(std::memory_order_relaxed);
  }

  /// Artifact weight for the owning plan's bytes() (0 until published).
  [[nodiscard]] std::size_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return kernel_ != nullptr ? kernel_->bytes() : 0;
  }

 private:
  mutable std::mutex mu_;
  mutable std::shared_ptr<const CompiledKernel> kernel_;
  mutable bool failed_ = false;
  mutable std::string reason_;
  mutable std::atomic<std::uint64_t> uses_{0};
};

}  // namespace sympiler::core
