// Versioned flat serialization of ExecutionPlan (docs/persistence.md).
//
// A plan is a pure function of (pattern, options), so its serialized form
// is a cacheable artifact: PlanStore (plan_store.h) writes these files
// crash-safely and loads them on cache misses to skip cold planning after
// a restart. The layout is a fixed little-host-endian header (magic,
// format version, endianness/ABI tag, options hash, PatternKey), a section
// table of {id, CRC32, offset, length} entries, then 8-aligned flat
// sections — mmap-friendly: every array is a contiguous count-prefixed
// run at a table-addressed offset, nothing is position-dependent beyond
// the table.
//
// The deserializer treats every on-disk offset, count, and index as
// hostile: all reads are cursor-bounds-checked, every section must land
// inside the file and match its CRC, and every array count must fit the
// remaining section bytes. A violation returns a structured Status —
// kCorruptPlanFile for torn/flipped/truncated data, kStalePlanVersion for
// internally consistent files written by an incompatible layout (unknown
// format version, foreign endianness, different index/value ABI). The
// loader checks *shape*; semantic invariants (schedule legality, slot-map
// race freedom) are the verifier's job — PlanStore consumers re-verify
// every loaded plan via verify::verify_plan before publication.
//
// Not serialized: JitSlot (compiled kernels are process-local artifacts —
// loaded plans start with a fresh empty slot and re-warm through the
// normal JIT dispatch).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/execution_plan.h"
#include "util/status.h"

namespace sympiler::core {

/// Bumped on any layout change; a mismatch loads as kStalePlanVersion.
inline constexpr std::uint32_t kPlanFormatVersion = 1;

/// Serialize a plan into its flat file image (header + section table +
/// sections). Pure function of the plan; never fails.
[[nodiscard]] std::vector<std::uint8_t> serialize_plan(
    const CholeskyPlan& plan);
[[nodiscard]] std::vector<std::uint8_t> serialize_plan(
    const TriSolvePlan& plan);

/// Deserialize a file image into `*out`. On success `*out` is a complete
/// plan (fresh empty JitSlot) and the Status is kOk. On failure `*out` is
/// unspecified and the Status carries kCorruptPlanFile or
/// kStalePlanVersion with a message naming the first violated check.
[[nodiscard]] Status deserialize_plan(std::span<const std::uint8_t> bytes,
                                      CholeskyPlan* out);
[[nodiscard]] Status deserialize_plan(std::span<const std::uint8_t> bytes,
                                      TriSolvePlan* out);

/// The checksum the format uses for header and section integrity:
/// CRC-32C (Castagnoli, polynomial 0x82F63B78; util/crc32c.h, hardware
/// SSE4.2 path with a portable fallback). Exposed so tests can craft
/// internally consistent header lies (e.g. an out-of-file section offset
/// with a fixed-up CRC).
[[nodiscard]] std::uint32_t serde_crc32(const void* data, std::size_t len);

}  // namespace sympiler::core
