// Sympiler triangular-solve executor: the numeric-only solver driven by
// the inspection sets (paper Figure 1e semantics).
//
// The executor runs exactly the schedule the generated C code runs — the
// VS-Block supernodal traversal restricted to the supernode-level
// prune-set, with peeled single-column supernodes and unrolled/vectorized
// inner loops — but reads the sets from memory instead of having them
// baked into the instruction stream. codegen.h emits the baked-constant C
// version; tests assert both produce identical results.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/inspector.h"
#include "core/options.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::core {

class TriSolveExecutor {
 public:
  /// Symbolic inspection happens here ("compile time"). `l` is borrowed
  /// and must outlive the executor; its pattern and the pattern of beta
  /// are fixed from this point on. Pass `known_blocks` when L came out of
  /// the Cholesky inspector (its supernodes are already known).
  TriSolveExecutor(const CscMatrix& l, std::span<const index_t> beta,
                   SympilerOptions opt = {},
                   const SupernodePartition* known_blocks = nullptr);

  /// Numeric-only construction from precomputed (typically cached) sets:
  /// no symbolic work happens here. `sets` must have been produced by
  /// inspect_trisolve on the pattern of `l` (and the intended beta) with
  /// options equivalent to `opt` — the SymbolicCache key guarantees this.
  /// (Sets come first so that `{...}` beta literals in the other overload
  /// stay unambiguous.)
  TriSolveExecutor(std::shared_ptr<const TriSolveSets> sets,
                   const CscMatrix& l, SympilerOptions opt = {});

  /// Numeric solve: x holds b on entry (with the inspected pattern), the
  /// solution on exit. No symbolic work happens here.
  void solve(std::span<value_t> x) const;

  [[nodiscard]] const TriSolveSets& sets() const { return *sets_; }
  [[nodiscard]] bool vs_block_applied() const {
    return sets_->vs_block_profitable;
  }
  [[nodiscard]] double flops() const { return sets_->flops; }

 private:
  void solve_pruned(std::span<value_t> x) const;
  void solve_blocked(std::span<value_t> x) const;

  const CscMatrix* l_;
  SympilerOptions opt_;
  std::shared_ptr<const TriSolveSets> sets_;  ///< shared with the cache
  mutable std::vector<value_t> tail_;  ///< gather buffer for block tails
};

}  // namespace sympiler::core
