// Sympiler triangular-solve executor: the numeric-only solver driven by a
// precomputed ExecutionPlan (paper Figure 1e semantics).
//
// The executor runs exactly the schedule the generated C code runs — the
// VS-Block supernodal traversal restricted to the supernode-level
// prune-set, with peeled single-column supernodes and unrolled/vectorized
// inner loops — but reads the sets from memory instead of having them
// baked into the instruction stream. codegen.h emits the baked-constant C
// version; tests assert both produce identical results.
//
// A plan whose path is ParallelTriSolve is interpreted sequentially here
// (via the pruned path); parallel::parallel_trisolve is its parallel
// interpreter.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/execution_plan.h"
#include "core/options.h"
#include "core/workspace.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::core {

class TriSolveExecutor {
 public:
  /// Convenience: plan on the spot ("compile time"). `l` is borrowed and
  /// must outlive the executor; its pattern and the pattern of beta are
  /// fixed from this point on. Pass `known_blocks` when L came out of the
  /// Cholesky inspector (its supernodes are already known).
  TriSolveExecutor(const CscMatrix& l, std::span<const index_t> beta,
                   SympilerOptions opt = {},
                   const SupernodePartition* known_blocks = nullptr);

  /// Pure interpreter over a precomputed (typically cached) plan: no
  /// symbolic work, no decisions. `plan` must have been produced by
  /// core::Planner on the pattern of `l` (and the intended beta) — the
  /// plan cache key guarantees this.
  TriSolveExecutor(std::shared_ptr<const TriSolvePlan> plan,
                   const CscMatrix& l);

  /// Numeric solve: x holds b on entry (with the planned pattern), the
  /// solution on exit. No symbolic work happens here.
  void solve(std::span<value_t> x) const;

  /// Blocked multi-RHS solve: `xs` holds nrhs column-major dense RHS of
  /// length n, every column carrying the planned pattern. On the
  /// BlockedTriSolve path the batch is tiled into packed RHS blocks and
  /// swept through the supernodal traversal once per block (bit-identical
  /// per column to looped solve() calls); other paths loop.
  void solve_batch(std::span<value_t> xs, index_t nrhs) const;

  [[nodiscard]] const TriSolvePlan& plan() const { return *plan_; }
  [[nodiscard]] const std::shared_ptr<const TriSolvePlan>& plan_ptr() const {
    return plan_;
  }
  [[nodiscard]] const TriSolveSets& sets() const { return plan_->sets; }
  [[nodiscard]] bool vs_block_applied() const {
    return plan_->path == ExecutionPath::BlockedTriSolve;
  }
  [[nodiscard]] double flops() const { return plan_->sets.flops; }

 private:
  void solve_pruned(std::span<value_t> x) const;
  void solve_blocked(std::span<value_t> x) const;
  void solve_blocked_multi(value_t* xp, index_t nrhs, index_t ldp,
                           value_t* tail) const;

  const CscMatrix* l_;
  std::shared_ptr<const TriSolvePlan> plan_;  ///< shared with the cache
  const TriSolveSets* sets_ = nullptr;        ///< &plan_->sets
  /// Plan-sized scratch: single-RHS tail buffer up front, packed RHS block
  /// + tail block grown on the first solve_batch (then reused, zero
  /// steady-state allocation). Mutable: solve() is logically const.
  mutable Workspace ws_;
};

}  // namespace sympiler::core
