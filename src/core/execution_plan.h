// ExecutionPlan: the complete structure-specific strategy for one sparse
// kernel, as a single immutable artifact.
//
// The paper's decoupling makes symbolic analysis a pure function of the
// sparsity pattern — but the inspection sets are only part of what that
// function produces. The level-set schedule and the choice of numeric
// path (simplicial vs supernodal vs parallel) are equally pattern-pure,
// so they belong in the same compile-time product. A plan bundles all of
// it: inspection sets, schedule, the chosen ExecutionPath, the
// profitability evidence that picked it, the options snapshot it was
// planned under, and a bytes() accounting that drives the plan cache's
// byte-budget eviction.
//
// Plans are built by core::Planner (planner.h), cached by the sharded
// PlanCache (symbolic_cache.h) as shared_ptr<const Plan>, and interpreted
// by the executors — which do no symbolic work and make no decisions.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "core/compiled_kernel.h"
#include "core/inspector.h"
#include "core/options.h"
#include "core/pattern_key.h"
#include "core/workspace.h"
#include "parallel/levelset.h"

namespace sympiler::core {

/// Numeric interpreter a plan selects. Chosen once at plan time from the
/// profitability evidence; executors dispatch on it without rediscovery.
enum class ExecutionPath {
  Simplicial,          ///< VI-Prune-only left-looking (VS-Block unprofitable)
  Supernodal,          ///< sequential supernodal Cholesky executor
  ParallelSupernodal,  ///< level-set parallel supernodal (OpenMP builds)
  PrunedTriSolve,      ///< reach-set column solve (VS-Block unprofitable)
  BlockedTriSolve,     ///< VS-Block supernodal triangular solve
  ParallelTriSolve,    ///< level-set parallel column solve (dense RHS)
};

[[nodiscard]] const char* to_string(ExecutionPath path);

/// Why the Planner picked the path it picked — kept in the plan so the
/// decision is auditable (sympiler_cli --explain) and so cache eviction
/// can weigh recompute cost.
struct PlanEvidence {
  bool vs_block_profitable = false;   ///< inspection profitability gate
  bool parallel_considered = false;   ///< parallel gates were evaluated
  double avg_supernode_size = 0.0;    ///< rows, participating supernodes
  index_t supernodes = 0;             ///< block-set size
  index_t levels = 0;                 ///< level-set depth (0 = no schedule)
  double avg_level_width = 0.0;       ///< items per level
  index_t agg_levels = 0;             ///< coarsened barrier count (0 = flat)
  index_t agg_tasks = 0;              ///< chains + bundles after coarsening
  index_t agg_bundles = 0;            ///< lock-step SIMD bundles among tasks
  double build_seconds = 0.0;         ///< wall time spent planning (cost to
                                      ///< recompute; weighs eviction)
  /// Whether the facades may lower this plan to a compiled kernel
  /// (plan_compiler.h): sequential paths only — the parallel interpreters
  /// beat any serial compiled kernel, so parallel plans stay interpreted.
  /// The dynamic compile state (compiled / failed, compile seconds) lives
  /// in the plan's JitSlot and is surfaced by summary().
  bool jit_eligible = false;
  /// Per-phase cold-planning breakdown (etree / counts / pattern /
  /// schedule / slotmap seconds — the cache_reuse bench emits these).
  PlanPhaseTimes phases;
};

/// Plan for sparse Cholesky A = L L^T over one sparsity pattern.
struct CholeskyPlan {
  PatternKey key;                    ///< identity of (pattern, config)
  SympilerOptions options;           ///< snapshot the plan was built under
  CholeskySets sets;                 ///< inspection sets (owned)
  parallel::LevelSchedule schedule;  ///< supernode levels; empty unless
                                     ///< path == ParallelSupernodal
  /// Privatized tail-update slots of the parallel forward panel solve
  /// (one per below-diagonal panel row); empty unless path ==
  /// ParallelSupernodal. Makes the level-set batch solve deterministic
  /// without atomics.
  parallel::UpdateSlotMap solve_update_map;
  /// Dependence-coarsened rewrite of `schedule` (chain fusion over the
  /// supernodal update dependences); empty unless path ==
  /// ParallelSupernodal and coarsening is enabled. When non-empty the
  /// parallel executors interpret it instead of the flat schedule; the
  /// flat schedule stays in the plan as the coarsener's provenance and
  /// for ablation benchmarks.
  parallel::AggregateSchedule agg;
  ExecutionPath path = ExecutionPath::Simplicial;
  PlanEvidence evidence;
  /// Numeric scratch sizes this plan implies (executors size their
  /// Workspace from these once, before the first numeric call).
  WorkspaceDims workspace;
  /// Write-once slot for the plan-compiled kernel (plan_compiler.h) — the
  /// one mutable corner of the plan, held by shared_ptr so plans stay
  /// movable. Executors adopt a published kernel on their next call.
  std::shared_ptr<JitSlot> jit = std::make_shared<JitSlot>();

  /// Total heap footprint of the artifact — the plan cache's eviction
  /// weight (entries are weighed by bytes, not counted). Includes the
  /// compiled kernel once published; PlanCache::refresh_bytes re-samples
  /// the resident entry so eviction drops the artifact with its plan.
  [[nodiscard]] std::size_t bytes() const {
    return sizeof(CholeskyPlan) + sets.bytes() + schedule.bytes() +
           agg.bytes() + solve_update_map.bytes() + jit->bytes();
  }

  /// One-paragraph human summary (CLI --explain).
  [[nodiscard]] std::string summary() const;
};

/// Plan for sparse triangular solve L x = b over one (pattern of L,
/// pattern of b) pair.
struct TriSolvePlan {
  PatternKey key;
  SympilerOptions options;
  TriSolveSets sets;
  parallel::LevelSchedule schedule;  ///< column levels; empty unless
                                     ///< path == ParallelTriSolve
  /// Privatized column-update slots (one per strictly-lower nonzero of L);
  /// empty unless path == ParallelTriSolve. The level-set solve scatters
  /// into these instead of racing on x, so it is bit-identical to the
  /// serial pruned solve at any thread count.
  parallel::UpdateSlotMap update_map;
  /// Dependence-coarsened rewrite of `schedule` (chain fusion + SIMD row
  /// bundles over DG_L); empty unless path == ParallelTriSolve and
  /// coarsening is enabled. Interpreted in place of the flat schedule
  /// when non-empty (parallel/levelset.h); the flat schedule is retained
  /// for ablation and evidence.
  parallel::AggregateSchedule agg;
  ExecutionPath path = ExecutionPath::PrunedTriSolve;
  PlanEvidence evidence;
  /// Numeric scratch sizes this plan implies.
  WorkspaceDims workspace;
  /// Write-once slot for the plan-compiled kernel (see CholeskyPlan::jit).
  std::shared_ptr<JitSlot> jit = std::make_shared<JitSlot>();

  [[nodiscard]] std::size_t bytes() const {
    return sizeof(TriSolvePlan) + sets.bytes() + schedule.bytes() +
           agg.bytes() + update_map.bytes() + jit->bytes();
  }

  [[nodiscard]] std::string summary() const;
};

}  // namespace sympiler::core
