// Tuning knobs of the code generator — the thresholds the paper describes
// (and that bench/ablation_thresholds sweeps).
#pragma once

#include <string>

#include "util/common.h"

namespace sympiler::core {

/// Dispatch tier of the plan-compiled kernels (core/plan_compiler.h): when
/// a facade lowers a cached plan to pattern-specialized C and routes the
/// numeric phase through the compiled kernel instead of the interpreter.
/// Deliberately excluded from the plan cache key (pattern_key.cpp): the
/// plan's *content* is identical under every mode — only who executes it
/// differs — so Solvers with different modes share one cached plan.
enum class JitMode {
  /// Interpreters only (default). Compiling forks the host compiler and
  /// allocates, which would break the zero-alloc warm-path contract if it
  /// ever ran inside a steady-state factor() — so compilation is opt-in.
  kOff,
  /// Compile once a pattern's facade-use count reaches jit_warm_calls:
  /// the pattern has proven it recurs, so the one-time compile cost
  /// amortizes (the paper's regime — compile <= 0.3x one numeric
  /// Cholesky, repaid over repeated factors).
  kWarm,
  /// Compile on first use, before the first numeric call.
  kAlways,
};

struct SympilerOptions {
  // Inspector-guided transformations (paper section 2.3).
  bool vs_block = true;
  bool vi_prune = true;
  // Enabled low-level transformations (paper section 2.4): peeling,
  // unrolling/vectorized small kernels, scalar replacement.
  bool low_level = true;

  /// VS-Block is applied only when the participating-supernode size
  /// metric (average panel rows of width>=2 supernodes, weighted by the
  /// fraction of columns they cover — see inspector.cpp) reaches this
  /// threshold. The paper hand-tunes its variant of this knob to 160 on
  /// the SuiteSparse suite (section 4.2); this default is hand-tuned the
  /// same way on the synthetic suite and swept by
  /// bench/ablation_thresholds.
  double vsblock_min_avg_size = 4.0;

  /// Companion VS-Block condition: mean width (columns) of participating
  /// supernodes. Width-2..3 supernodes do not amortize the gather-buffer
  /// traffic of the blocked kernels (the paper's gyro/gyro_k case: "the
  /// average supernode size is too small and thus does not improve
  /// performance").
  double vsblock_min_avg_width = 4.0;

  /// Average column-count threshold below which Cholesky uses the
  /// generated specialized dense kernels; above it the generic blocked
  /// ("BLAS") routines are used (paper section 4.2: the column-count
  /// decides when to switch to BLAS).
  double blas_switch_colcount = 40.0;

  /// Peel loop iterations whose column count exceeds this (paper Figure 1e
  /// uses 2: peeled columns get unrolled/vectorized bodies).
  index_t peel_colcount = 2;

  /// Cap on supernode panel width (bounds temporary storage).
  index_t max_supernode_width = 256;

  /// Relaxed amalgamation (extension; paper evaluates with this off).
  bool relax_supernodes = false;
  double relax_ratio = 0.2;

  /// Plan-compiled kernel dispatch (api::Solver / api::TriangularSolver).
  JitMode jit = JitMode::kOff;
  /// kWarm compiles when the pattern's facade-use count reaches this.
  index_t jit_warm_calls = 2;
  /// Skip compiling plans whose emitted translation unit exceeds this
  /// (baked pattern arrays scale with nnz(L); very large patterns would
  /// pay minutes of host-compiler time for a serial kernel). 0 = no cap.
  index_t jit_max_source_kb = 4096;

  // Failure-domain knobs (docs/robustness.md). None of these are hashed
  // into the plan cache key: they change how a numeric call fails or
  // retries, never what the plan contains.

  /// Validate CSC structure at the facade boundary (sorted in-bounds
  /// indices, present diagonal, lower-triangular shape) and reject with
  /// kInvalidInput instead of corrupting deep in an executor. O(nnz) per
  /// facade factor()/construction, allocation-free.
  bool validate_input = true;
  /// Additionally scan numeric values for NaN/Inf at the boundary (every
  /// facade factor() pays one pass over the values; off by default).
  bool scan_values = false;
  /// Diagonal-shift retry ladder: when factor() hits a numeric breakdown,
  /// retry on A + sigma*I up to this many times with a growing sigma (the
  /// classic near-singular rescue; the applied shift is recorded in the
  /// FactorReport). 0 = fail fast. Retries allocate (one shifted copy) —
  /// acceptable on the degraded path, which is off the steady state.
  index_t shift_attempts = 0;
  /// Promote the debug-only Workspace borrow guard to release builds for
  /// facades configured with it: concurrent solve() on one instance then
  /// throws kResourceExhausted instead of silently corrupting scratch.
  bool guard_workspace = false;

  /// Run the static plan verifier (verify/verify.h) on every freshly built
  /// plan: dependence closure of the schedules, symbolic happens-before
  /// replay of the slot maps, workspace coverage, emitted-code audit when
  /// the plan is headed for the JIT. A finding throws kPlanInvalid from
  /// plan time — before any numeric code touches the plan. O(plan) work on
  /// the cold path only; warm cache hits never re-verify. On by default in
  /// Debug builds, opt-in for Release. Not hashed into the cache key: it
  /// changes whether a plan is checked, never what the plan contains.
#ifndef NDEBUG
  bool verify_plan = true;
#else
  bool verify_plan = false;
#endif

  /// Directory of the on-disk plan store (core/plan_store.h). Empty =
  /// persistence off. When set, cache misses first try to load a persisted
  /// plan (re-verified before publication) and freshly built plans are
  /// written behind the facade's back. Not hashed into the cache key:
  /// where a plan is stored never changes what the plan contains — two
  /// Solvers with different store dirs must share one in-memory plan per
  /// pattern.
  std::string plan_store_dir;
};

}  // namespace sympiler::core
