#include "core/symbolic_cache.h"

namespace sympiler::core {

template class SymbolicCache<CholeskySets>;
template class SymbolicCache<TriSolveSets>;

}  // namespace sympiler::core
