#include "core/symbolic_cache.h"

#include "core/execution_plan.h"

namespace sympiler::core {

template class PlanCache<CholeskyPlan>;
template class PlanCache<TriSolvePlan>;

}  // namespace sympiler::core
