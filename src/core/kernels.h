// Kernel builders: lower a numerical method to the initial annotated AST
// (paper Figure 2a). The AST references the runtime symbols Lp/Li/Lx/x and
// the inspection-set symbols (pruneSet, ...) that the passes and the
// emitter resolve.
#pragma once

#include "core/ir.h"
#include "core/options.h"

namespace sympiler::core {

/// Initial AST of sparse triangular solve (Figure 2a):
///
///   for j0 in 0..n              <- VI-Prune candidate (pruneSet),
///                                  VS-Block candidate
///     x[j0] /= Lx[Lp[j0]]
///     for p in Lp[j0]+1 .. Lp[j0+1]
///       x[Li[p]] -= Lx[p] * x[j0]
[[nodiscard]] StmtPtr build_trisolve_ast();

/// Blocked (VS-Block) triangular-solve AST over the block-set symbols
/// snStart/snEnd/tailLen (one entry per block in traversal order):
///
///   for b in 0..numBlocks       <- VI-Prune candidate (block-level)
///     // dense diagonal block: direct indexing, no Li loads
///     for j in snStart[b]..snEnd[b]
///       x[j] /= Lx[Lp[j]]
///       for t in 1..snEnd[b]-j
///         x[j+t] -= Lx[Lp[j]+t] * x[j]
///     // tail: accumulate into the gather buffer, scatter once
///     for t in 0..tailLen[b]    (zero)
///     for j ...                 (accumulate)
///     for t ...                 (scatter)
[[nodiscard]] StmtPtr build_blocked_trisolve_ast();

/// Initial AST of left-looking Cholesky (paper Figure 4), column form:
///
///   for j in 0..n
///     (scatter A(:,j))
///     for k in <row pattern of j>     <- VI-Prune candidate (pruneSet)
///       f -= L(j:n,k) * L(j,k)
///     L(j,j) = sqrt(f(j))             <- VS-Block candidate (diag)
///     for offdiag: L(:,j) = f / L(j,j)
[[nodiscard]] StmtPtr build_cholesky_ast();

}  // namespace sympiler::core
