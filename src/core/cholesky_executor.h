// Sympiler Cholesky executor: numeric-only left-looking factorization
// driven entirely by precomputed inspection sets.
//
// Differences from the library baselines (what "fully decoupled" buys,
// paper section 4.2):
//  * no transpose of A in the numeric phase — the prune-sets (row
//    patterns) were computed by the inspector;
//  * no reach/ereach traversals at numeric time — the supernodal update
//    schedule is a static list;
//  * specialized small dense kernels (unrolled potrf/trsv) and peeled
//    single-column supernodes when the low-level transformations are on,
//    with the column-count heuristic switching to the generic blocked
//    ("BLAS") kernels for large panels.
//
// When VS-Block does not pass its profitability threshold the executor
// runs the VI-Prune-only simplicial code (the paper's Figure 7 baseline:
// "The VI-Prune transformation is already applied to the baseline code").
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/inspector.h"
#include "core/options.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::core {

class CholeskyExecutor {
 public:
  /// Full symbolic inspection ("compile time"); pattern is fixed after.
  explicit CholeskyExecutor(const CscMatrix& a_lower, SympilerOptions opt = {});

  /// Numeric-only construction from precomputed (typically cached) sets:
  /// no symbolic work happens here. `sets` must have been produced by
  /// inspect_cholesky on the pattern of the matrices later passed to
  /// factorize(), with options equivalent to `opt` — the SymbolicCache key
  /// guarantees this.
  CholeskyExecutor(std::shared_ptr<const CholeskySets> sets,
                   SympilerOptions opt = {});

  /// Numeric factorization of a matrix with the inspected pattern.
  void factorize(const CscMatrix& a_lower);

  /// Solve A x = b in place (requires factorize()).
  void solve(std::span<value_t> bx) const;

  /// Extract L as CSC (for inspection and the triangular-solve pipeline).
  [[nodiscard]] CscMatrix factor_csc() const;

  [[nodiscard]] const CholeskySets& sets() const { return *sets_; }
  [[nodiscard]] bool vs_block_applied() const {
    return sets_->vs_block_profitable;
  }
  /// True when the generated small kernels are used instead of the generic
  /// blocked routines (the paper's column-count BLAS switch).
  [[nodiscard]] bool specialized_kernels() const { return specialized_; }
  [[nodiscard]] double flops() const { return sets_->flops(); }

 private:
  void factorize_supernodal(const CscMatrix& a_lower);
  void factorize_simplicial(const CscMatrix& a_lower);

  SympilerOptions opt_;
  std::shared_ptr<const CholeskySets> sets_;  ///< shared with the cache
  bool specialized_ = false;
  std::vector<value_t> panels_;  ///< supernodal factor storage
  CscMatrix l_;                  ///< simplicial factor storage
  std::vector<value_t> work_;    ///< update scratch (supernodal)
  std::vector<index_t> map_;     ///< row -> local row scratch
  bool factorized_ = false;
};

}  // namespace sympiler::core
