// Sympiler Cholesky executor: numeric-only left-looking factorization
// driven entirely by a precomputed ExecutionPlan.
//
// Differences from the library baselines (what "fully decoupled" buys,
// paper section 4.2):
//  * no transpose of A in the numeric phase — the prune-sets (row
//    patterns) were computed by the Planner;
//  * no reach/ereach traversals at numeric time — the supernodal update
//    schedule is a static list;
//  * no path decisions at numeric time — the plan already committed to
//    simplicial vs supernodal from its profitability evidence;
//  * specialized small dense kernels (unrolled potrf/trsv) and peeled
//    single-column supernodes when the low-level transformations are on,
//    with the column-count heuristic switching to the generic blocked
//    ("BLAS") kernels for large panels.
//
// A plan whose path is ParallelSupernodal is interpreted sequentially here
// (the sets and layout are identical); parallel::parallel_cholesky is its
// parallel interpreter.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/execution_plan.h"
#include "core/options.h"
#include "core/workspace.h"
#include "sparse/csc.h"
#include "util/common.h"

namespace sympiler::core {

class CholeskyExecutor {
 public:
  /// Convenience: plan on the spot ("compile time"), sequential paths
  /// only. Pattern is fixed after.
  explicit CholeskyExecutor(const CscMatrix& a_lower, SympilerOptions opt = {});

  /// Pure interpreter over a precomputed (typically cached) plan: no
  /// symbolic work, no decisions. `plan` must have been produced by
  /// core::Planner on the pattern of the matrices later passed to
  /// factorize() — the plan cache key guarantees this.
  explicit CholeskyExecutor(std::shared_ptr<const CholeskyPlan> plan);

  /// Numeric factorization of a matrix with the planned pattern. A warm
  /// call (same executor, pattern already planned) performs zero heap
  /// allocations: all scratch lives in the plan-sized Workspace.
  void factorize(const CscMatrix& a_lower);

  /// Solve A x = b in place (requires factorize()). Borrows the executor's
  /// workspace: logically const, but not concurrently callable on one
  /// executor — use solve_batch for many RHS.
  void solve(std::span<value_t> bx) const;

  /// Blocked multi-RHS solve: `bx` holds nrhs column-major dense RHS of
  /// length n, overwritten by the solutions. On the supernodal path the
  /// batch is tiled into packed RHS blocks driven through the multi-RHS
  /// panel kernels (bit-identical per column to looped solve() calls, and
  /// parallel over blocks under OpenMP); the simplicial path loops.
  void solve_batch(std::span<value_t> bx, index_t nrhs) const;

  /// Extract L as CSC (for inspection and the triangular-solve pipeline).
  [[nodiscard]] CscMatrix factor_csc() const;

  [[nodiscard]] const CholeskyPlan& plan() const { return *plan_; }
  [[nodiscard]] const std::shared_ptr<const CholeskyPlan>& plan_ptr() const {
    return plan_;
  }
  [[nodiscard]] const CholeskySets& sets() const { return plan_->sets; }
  [[nodiscard]] bool vs_block_applied() const {
    return plan_->path != ExecutionPath::Simplicial;
  }
  /// True when the generated small kernels are used instead of the generic
  /// blocked routines (the paper's column-count BLAS switch).
  [[nodiscard]] bool specialized_kernels() const { return specialized_; }
  [[nodiscard]] double flops() const { return plan_->sets.flops(); }

 private:
  void factorize_supernodal(const CscMatrix& a_lower);
  void factorize_simplicial(const CscMatrix& a_lower);

  std::shared_ptr<const CholeskyPlan> plan_;  ///< shared with the cache
  const CholeskySets* sets_ = nullptr;        ///< &plan_->sets
  bool specialized_ = false;
  std::vector<value_t> panels_;  ///< supernodal factor storage
  CscMatrix l_;                  ///< simplicial factor storage
  /// Plan-sized numeric scratch (update tiles, scatter map, solve tails);
  /// mutable because solve() is logically const but borrows it.
  mutable Workspace ws_;
  bool factorized_ = false;
};

}  // namespace sympiler::core
