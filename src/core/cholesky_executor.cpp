#include "core/cholesky_executor.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "blas/kernels.h"
#include "core/planner.h"
#include "solvers/trisolve.h"
#include "util/fault.h"

namespace sympiler::core {

namespace {

std::shared_ptr<const CholeskyPlan> plan_sequential(const CscMatrix& a_lower,
                                                    SympilerOptions opt) {
  PlannerConfig config;
  config.options = opt;
  config.enable_parallel = false;  // direct executors interpret sequentially
  // No cache involved, so skip stamping the key (O(nnz) hashing).
  return std::make_shared<const CholeskyPlan>(
      Planner(config).plan_cholesky(a_lower, /*with_key=*/false));
}

}  // namespace

CholeskyExecutor::CholeskyExecutor(const CscMatrix& a_lower,
                                   SympilerOptions opt)
    : CholeskyExecutor(plan_sequential(a_lower, opt)) {}

CholeskyExecutor::CholeskyExecutor(std::shared_ptr<const CholeskyPlan> plan)
    : plan_(std::move(plan)) {
  SYMPILER_CHECK(plan_ != nullptr, "cholesky executor: null plan");
  sets_ = &plan_->sets;
  const SympilerOptions& opt = plan_->options;
  ws_.set_guard(opt.guard_workspace);
  specialized_ =
      opt.low_level && sets_->avg_colcount < opt.blas_switch_colcount;
  // Size all numeric scratch once, from the plan's dimensions: factorize()
  // and solve() never allocate after this point. The executor's own
  // workspace skips the packed-RHS block (solve_batch uses per-thread
  // workspaces sized with it).
  WorkspaceDims dims = plan_->workspace;
  dims.rhs_block = 0;  // packed-RHS blocks live in solve_batch's per-thread
                       // workspaces; the tail keeps its single-RHS row
  dims.update_slots = 0;  // privatized terms belong to the parallel
                          // interpreters' workspaces, not this executor
  if (vs_block_applied()) {
    panels_.resize(static_cast<std::size_t>(sets_->layout.total_values()));
    dims.need_dense = false;  // dense column is simplicial-only scratch
  } else {
    l_ = sets_->sym.l_pattern;  // simplicial factor storage
  }
  ws_.ensure(dims);
}

void CholeskyExecutor::factorize(const CscMatrix& a_lower) {
  // Invalidate up front: a numeric failure below must not leave a
  // previously successful factorization reachable through solve() with
  // half-overwritten values (factor-after-failure then starts clean).
  factorized_ = false;
  // Pure plan dispatch: the path was decided at plan time. A published
  // plan-compiled kernel (plan_compiler.h) takes over the whole numeric
  // phase — it consumes exactly the buffers sized here, so adopting it
  // costs one mutex peek and no allocation, and it is pinned bit-identical
  // to the interpreters below.
  const Workspace::Borrow guard(ws_);
  if (const auto kernel = plan_->jit->kernel()) {
    if (SYMPILER_FAULT_POINT(util::FaultSite::kPivot))
      throw numerical_error(
          "cholesky: injected pivot failure (fault site pivot, jit path)");
    const auto fn = kernel->entry<PlanCholeskyFn>();
    value_t* values = vs_block_applied() ? panels_.data() : l_.values.data();
    value_t* scratch =
        vs_block_applied() ? ws_.update().data() : ws_.dense().data();
    if (fn(a_lower.colptr.data(), a_lower.rowind.data(),
           a_lower.values.data(), values, scratch, ws_.map().data()) != 0)
      throw numerical_error("cholesky: non-positive pivot");
    factorized_ = true;
    return;
  }
  if (vs_block_applied()) {
    factorize_supernodal(a_lower);
  } else {
    factorize_simplicial(a_lower);
  }
  factorized_ = true;
}

void CholeskyExecutor::factorize_supernodal(const CscMatrix& a_lower) {
  const solvers::SupernodalLayout& layout = sets_->layout;
  scatter_into_panels(layout, a_lower, panels_, ws_.map());
  const index_t nsuper = layout.nsuper();
  value_t* work = ws_.update().data();
  index_t* map = ws_.map().data();

  for (index_t s = 0; s < nsuper; ++s) {
    const index_t c1 = layout.sn.start[s];
    const index_t w = layout.width(s);
    const index_t m = layout.nrows(s);
    const index_t* rows = layout.srows.data() + layout.srow_ptr[s];
    value_t* panel = panels_.data() + layout.panel_ptr[s];
    for (index_t t = 0; t < m; ++t) map[rows[t]] = t;

    // Static update schedule — no dynamic discovery (fully decoupled).
    for (index_t u = sets_->updates.ptr[s]; u < sets_->updates.ptr[s + 1];
         ++u) {
      const solvers::UpdateRef ref = sets_->updates.refs[u];
      const index_t* drows = layout.srows.data() + layout.srow_ptr[ref.d];
      const index_t dm = layout.nrows(ref.d);
      const index_t dw = layout.width(ref.d);
      const value_t* dpanel = panels_.data() + layout.panel_ptr[ref.d];
      const index_t mu = dm - ref.p1;
      const index_t nu = ref.p2 - ref.p1;
      if (specialized_ && nu == 1) {
        // Peeled single-target-column update: subtract directly, no
        // scratch buffer (scalar-replacement style).
        value_t* dst =
            panel + static_cast<std::int64_t>(drows[ref.p1] - c1) * m;
        for (index_t p = 0; p < dw; ++p) {
          const value_t* dcol = dpanel + static_cast<std::int64_t>(p) * dm;
          const value_t f = dcol[ref.p1];
          if (f == 0.0) continue;
          for (index_t r = 0; r < mu; ++r)
            dst[map[drows[ref.p1 + r]]] -= dcol[ref.p1 + r] * f;
        }
        continue;
      }
      std::fill(work, work + static_cast<std::int64_t>(mu) * nu, 0.0);
      blas::gemm_nt_minus(mu, nu, dw, dpanel + ref.p1, dm, dpanel + ref.p1,
                          dm, work, mu);
      for (index_t cjj = 0; cjj < nu; ++cjj) {
        const index_t gcol = drows[ref.p1 + cjj];
        value_t* dst = panel + static_cast<std::int64_t>(gcol - c1) * m;
        const value_t* src = work + static_cast<std::int64_t>(cjj) * mu;
        for (index_t r = cjj; r < mu; ++r)
          dst[map[drows[ref.p1 + r]]] += src[r];
      }
    }

    // Dense factorization of the diagonal block + panel solve, with the
    // generated small kernels when the column-count heuristic says so.
    // Pivot failures surface with the supernode's first column and its
    // current diagonal value (detail of the numerical_error).
    if (SYMPILER_FAULT_POINT(util::FaultSite::kPivot))
      throw numerical_error(
          "cholesky: injected pivot failure (fault site pivot, supernodal)",
          c1, panel[0]);
    if (specialized_ && w == 1) {
      // Peeled single-column supernode: scalar sqrt + column scale.
      const value_t d = panel[0];
      if (!(d > 0.0))
        throw numerical_error(
            "cholesky: non-positive pivot at column " + std::to_string(c1),
            c1, d);
      const value_t ljj = std::sqrt(d);
      panel[0] = ljj;
      const value_t inv = 1.0 / ljj;
      for (index_t t = 1; t < m; ++t) panel[t] *= inv;
    } else {
      try {
        if (specialized_ && w <= blas::kSmallKernelMax)
          blas::potrf_lower_small(w, panel, m);
        else
          blas::potrf_lower(w, panel, m);
      } catch (const numerical_error& e) {
        // The dense kernels know only the local column; re-anchor at the
        // supernode's global first column.
        throw numerical_error(std::string(e.what()) +
                                  " (supernode starting at column " +
                                  std::to_string(c1) + ")",
                              c1, panel[0]);
      }
      if (m > w)
        blas::trsm_right_lower_trans(m - w, w, panel, m, panel + w, m);
    }
  }
}

void CholeskyExecutor::factorize_simplicial(const CscMatrix& a_lower) {
  // VI-Prune-only path: Figure 4 with the update iteration space pruned by
  // the precomputed row patterns. No transpose, no ereach. The dense
  // accumulation column and the per-row cursors are plan-sized workspace.
  const index_t n = l_.cols();
  value_t* f = ws_.dense().data();
  index_t* next = ws_.map().data();
  std::fill(f, f + n, 0.0);
  std::fill(next, next + n, 0);
  const index_t* rowpat = sets_->rowpat.data();

  for (index_t j = 0; j < n; ++j) {
    for (index_t p = a_lower.col_begin(j); p < a_lower.col_end(j); ++p) {
      const index_t i = a_lower.rowind[p];
      if (i >= j) f[i] = a_lower.values[p];
    }
    for (index_t q = sets_->rowpat_ptr[j]; q < sets_->rowpat_ptr[j + 1]; ++q) {
      const index_t k = rowpat[q];
      const index_t pj = next[k];
      const value_t lkj = l_.values[pj];
      for (index_t p = pj; p < l_.col_end(k); ++p)
        f[l_.rowind[p]] -= l_.values[p] * lkj;
      next[k] = pj + 1;
    }
    const value_t d = f[j];
    if (SYMPILER_FAULT_POINT(util::FaultSite::kPivot))
      throw numerical_error(
          "cholesky: injected pivot failure (fault site pivot, simplicial)",
          j, d);
    if (!(d > 0.0))
      throw numerical_error(
          "cholesky: non-positive pivot at column " + std::to_string(j), j, d);
    const value_t ljj = std::sqrt(d);
    const index_t pdiag = l_.col_begin(j);
    l_.values[pdiag] = ljj;
    f[j] = 0.0;
    const value_t inv = 1.0 / ljj;
    for (index_t p = pdiag + 1; p < l_.col_end(j); ++p) {
      const index_t i = l_.rowind[p];
      l_.values[p] = f[i] * inv;
      f[i] = 0.0;
    }
    next[j] = pdiag + 1;
  }
}

void CholeskyExecutor::solve(std::span<value_t> bx) const {
  SYMPILER_CHECK(factorized_, "solve() before factorize()");
  if (vs_block_applied()) {
    // solve() borrows the shared tail scratch — loud in debug builds if
    // two threads enter one executor (use solve_batch instead).
    const Workspace::Borrow guard(ws_);
    panel_forward_solve(sets_->layout, panels_, bx, ws_.tail());
    panel_backward_solve(sets_->layout, panels_, bx, ws_.tail());
  } else {
    solvers::trisolve_naive(l_, bx);
    solvers::trisolve_transpose(l_, bx);
  }
}

void CholeskyExecutor::solve_batch(std::span<value_t> bx, index_t nrhs) const {
  SYMPILER_CHECK(factorized_, "solve_batch() before factorize()");
  SYMPILER_CHECK(nrhs >= 0, "solve_batch: negative RHS count");
  const auto n = static_cast<std::size_t>(sets_->sym.parent.size());
  SYMPILER_CHECK(bx.size() == n * static_cast<std::size_t>(nrhs),
                 "solve_batch: batch size mismatch");
  if (vs_block_applied()) {
    blocked_panel_solve_batch(sets_->layout, panels_, plan_->workspace, bx,
                              nrhs);
  } else {
    // Simplicial solves read only the immutable factor (no workspace), so
    // the independent RHS columns parallelize directly.
#ifdef SYMPILER_HAS_OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (index_t r = 0; r < nrhs; ++r)
      solve(bx.subspan(static_cast<std::size_t>(r) * n, n));
  }
}

CscMatrix CholeskyExecutor::factor_csc() const {
  SYMPILER_CHECK(factorized_, "factor_csc() before factorize()");
  if (vs_block_applied())
    return panels_to_csc(sets_->layout, panels_);
  return l_;
}

}  // namespace sympiler::core
