#include "core/pattern_key.h"

#include <cstring>
#include <sstream>

namespace sympiler::core {

namespace {

// FNV-1a, 64-bit. Two streams with different offset bases give the key its
// effective 128 bits of structural identity.
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::uint64_t kFnvOffset1 = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvOffset2 = 0x9e3779b97f4a7c15ULL;

void fnv_mix(std::uint64_t& h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

// One FNV step per index instead of per byte: keys are hashed on every
// facade entry (the warm path's only symbolic cost), so hashing must stay
// a small fraction of a numeric solve even at millions of nonzeros.
void fnv_mix_indices(std::uint64_t& h, std::span<const index_t> v) {
  for (const index_t x : v) {
    h ^= static_cast<std::uint32_t>(x);
    h *= kFnvPrime;
  }
}

void fnv_mix_u64(std::uint64_t& h, std::uint64_t v) {
  fnv_mix(h, &v, sizeof(v));
}

void fnv_mix_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  fnv_mix_u64(h, bits);
}

// Domain tags keep a trisolve key from ever equaling a Cholesky key over
// the same factor pattern (the caches are separate, but the keys should be
// self-describing regardless).
constexpr std::uint64_t kTagCholesky = 0x43484f4cULL;  // "CHOL"
constexpr std::uint64_t kTagTriSolve = 0x54524953ULL;  // "TRIS"

PatternKey structural_key(std::uint64_t tag, const CscMatrix& m,
                          std::span<const index_t> beta,
                          const SympilerOptions& opt) {
  PatternKey key;
  key.rows = m.rows();
  key.cols = m.cols();
  key.nnz = m.nnz();
  key.rhs_nnz = static_cast<index_t>(beta.size());

  std::uint64_t h1 = kFnvOffset1;
  std::uint64_t h2 = kFnvOffset2;
  fnv_mix_u64(h1, tag);
  fnv_mix_u64(h2, ~tag);
  fnv_mix_indices(h1, m.colptr);
  fnv_mix_indices(h1, m.rowind);
  fnv_mix_indices(h1, beta);
  fnv_mix_indices(h2, m.rowind);
  fnv_mix_indices(h2, m.colptr);
  fnv_mix_indices(h2, beta);
  key.structure_hash = h1;
  key.structure_hash2 = h2;
  key.config_hash = hash_options(opt);
  return key;
}

}  // namespace

std::uint64_t hash_options(const SympilerOptions& opt) {
  std::uint64_t h = kFnvOffset1;
  fnv_mix_u64(h, static_cast<std::uint64_t>(opt.vs_block));
  fnv_mix_u64(h, static_cast<std::uint64_t>(opt.vi_prune));
  fnv_mix_u64(h, static_cast<std::uint64_t>(opt.low_level));
  fnv_mix_double(h, opt.vsblock_min_avg_size);
  fnv_mix_double(h, opt.vsblock_min_avg_width);
  fnv_mix_double(h, opt.blas_switch_colcount);
  fnv_mix_u64(h, static_cast<std::uint64_t>(opt.peel_colcount));
  fnv_mix_u64(h, static_cast<std::uint64_t>(opt.max_supernode_width));
  fnv_mix_u64(h, static_cast<std::uint64_t>(opt.relax_supernodes));
  fnv_mix_double(h, opt.relax_ratio);
  // The jit dispatch fields (jit / jit_warm_calls / jit_max_source_kb) are
  // deliberately NOT hashed: they change who executes a plan, never what
  // the plan contains, so Solvers with different dispatch modes must share
  // one cached plan (and its compiled kernel) per pattern. The robustness
  // knobs (validate_input .. guard_workspace) and verify_plan are excluded
  // for the same reason: verification checks a plan, it never changes one,
  // so a Debug build (verify on) and a Release build (verify off) agree on
  // every cache key. plan_store_dir likewise: where a plan is persisted
  // never changes what the plan contains.
  return h;
}

PatternKey cholesky_pattern_key(const CscMatrix& a_lower,
                                const SympilerOptions& opt) {
  return structural_key(kTagCholesky, a_lower, {}, opt);
}

PatternKey trisolve_pattern_key(const CscMatrix& l,
                                std::span<const index_t> beta,
                                const SympilerOptions& opt) {
  return structural_key(kTagTriSolve, l, beta, opt);
}

std::size_t PatternKeyHash::operator()(const PatternKey& k) const noexcept {
  // structure_hash already mixes every structural field except the shape;
  // fold the rest in so unordered_map buckets spread even under adversarial
  // equal-hash patterns.
  std::uint64_t h = k.structure_hash;
  h ^= k.structure_hash2 + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= k.config_hash + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.cols)) << 32) |
       static_cast<std::uint32_t>(k.nnz);
  return static_cast<std::size_t>(h);
}

std::string PatternKey::to_string() const {
  std::ostringstream os;
  os << "PatternKey{" << rows << "x" << cols << ", nnz=" << nnz;
  if (rhs_nnz > 0) os << ", rhs_nnz=" << rhs_nnz;
  os << ", 0x" << std::hex << structure_hash << "/0x" << structure_hash2
     << ", cfg=0x" << config_hash << "}";
  return os.str();
}

}  // namespace sympiler::core
